#include "dmv/serve/server.hpp"

#include <condition_variable>
#include <cstdio>
#include <map>
#include <mutex>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "dmv/ir/json_reader.hpp"
#include "dmv/par/par.hpp"
#include "dmv/store/artifact_store.hpp"
#include "dmv/util/json.hpp"
#include "dmv/workloads/workloads.hpp"

namespace dmv::serve {

namespace {

using json::Value;

/// Dispatch-level failure with a protocol error code; everything a
/// handler throws is mapped onto one of these before it reaches the
/// response writer.
class RequestError : public std::runtime_error {
 public:
  RequestError(std::string code, const std::string& message)
      : std::runtime_error(message), code_(std::move(code)) {}
  const std::string& code() const { return code_; }

 private:
  std::string code_;
};

std::string hex64(std::uint64_t value) {
  char buffer[19];
  std::snprintf(buffer, sizeof(buffer), "0x%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

const Value& param(const Value& params, const char* name) {
  if (!params.has(name)) {
    throw RequestError("bad_request",
                       std::string("missing param '") + name + "'");
  }
  return params.at(name);
}

symbolic::SymbolMap parse_binding(const Value& value) {
  if (value.type != Value::Type::Object) {
    throw RequestError("bad_request",
                       "binding must be an object of symbol -> integer");
  }
  symbolic::SymbolMap binding;
  for (const auto& [symbol, v] : value.object) binding[symbol] = v.as_int();
  return binding;
}

Value binding_json(const symbolic::SymbolMap& binding) {
  Value object = Value::make_object();
  for (const auto& [symbol, value] : binding) {
    object[symbol] = Value::of(value);
  }
  return object;
}

Value strings_json(const std::set<std::string>& strings) {
  Value array = Value::make_array();
  for (const std::string& s : strings) array.push(Value::of(s));
  return array;
}

/// One connected client: its Session plus the bookkeeping `subscribe`
/// needs to rebuild it. The mutex serializes this client's requests;
/// different clients' requests run concurrently.
struct Client {
  std::mutex mutex;
  std::string program_name;
  std::unique_ptr<session::Session> session;
};

/// An in-flight computation of one artifact key. The leader (first
/// requester) computes and publishes to the shared tier, then flips
/// `done`; followers wait here and are then served from the shared
/// tier — so exactly one simulation runs per distinct key no matter
/// how many sessions step onto it concurrently.
struct Flight {
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
};

}  // namespace

struct Server::Impl {
  ServerConfig config;
  std::shared_ptr<session::SharedArtifactCache> shared;

  mutable std::mutex sessions_mutex;
  std::map<std::string, std::shared_ptr<Client>> sessions;

  std::mutex flights_mutex;
  std::unordered_map<session::ArtifactKey, std::shared_ptr<Flight>,
                     session::ArtifactKeyHash>
      flights;

  mutable std::mutex state_mutex;
  std::condition_variable drained;
  bool accepting = true;
  int in_flight = 0;
  std::int64_t requests = 0;
  std::int64_t errors = 0;
  std::int64_t steps = 0;
  std::int64_t coalesced = 0;

  explicit Impl(ServerConfig server_config)
      : config(std::move(server_config)) {
    if (!config.shared_cache.disk_dir.empty()) {
      // Persistent tier: register the codec for the metrics bundle —
      // the one artifact whose recomputation costs a simulation — so a
      // restarted server re-serves prior sweeps from the cache dir.
      config.shared_cache.codecs.emplace_back(
          session::metrics_artifact_kind(), store::pipeline_result_codec());
    }
    shared = std::make_shared<session::SharedArtifactCache>(
        config.shared_cache);
  }

  std::shared_ptr<Client> client_for(const std::string& name) {
    std::lock_guard<std::mutex> lock(sessions_mutex);
    auto it = sessions.find(name);
    if (it == sessions.end()) {
      throw RequestError("unknown_session", "no session named '" + name +
                                                "' — open_program first");
    }
    return it->second;
  }

  // --- Handlers (one per protocol method) ----------------------------

  ir::Sdfg load_program(const Value& params, std::string* name_out) {
    if (params.has("workload")) {
      const std::string& name = params.at("workload").as_string();
      try {
        ir::Sdfg program = workload_by_name(name);
        *name_out = name;
        return program;
      } catch (const std::invalid_argument& error) {
        throw RequestError("bad_program", error.what());
      }
    }
    if (params.has("sdfg")) {
      try {
        ir::Sdfg program = ir::from_json(json::dump(params.at("sdfg")));
        *name_out = program.name();
        return program;
      } catch (const ir::JsonError& error) {
        throw RequestError("bad_program", error.what());
      }
    }
    throw RequestError("bad_request",
                       "open_program needs 'workload' or 'sdfg'");
  }

  Value program_info(const Client& client) {
    Value result = Value::make_object();
    result["program"] = Value::of(client.program_name);
    result["program_hash"] =
        Value::of(hex64(client.session->metrics_cache_key().program_hash));
    result["symbols"] = strings_json(client.session->program().symbols());
    result["metric_symbols"] = strings_json(client.session->metric_symbols());
    return result;
  }

  Value do_open_program(const Value& params) {
    const std::string name = param(params, "session").as_string();
    auto client = std::make_shared<Client>();
    ir::Sdfg program = load_program(params, &client->program_name);
    session::SessionConfig session_config = config.session_defaults;
    session_config.shared_cache = shared;
    client->session = std::make_unique<session::Session>(
        std::move(program), std::move(session_config));
    if (params.has("binding")) {
      client->session->set_binding(parse_binding(params.at("binding")));
    }
    {
      std::lock_guard<std::mutex> lock(sessions_mutex);
      sessions[name] = client;  // Reopening replaces the old session.
    }
    return program_info(*client);
  }

  Value do_edit_program(const Value& params) {
    auto client = client_for(param(params, "session").as_string());
    std::lock_guard<std::mutex> lock(client->mutex);
    std::string name;
    ir::Sdfg program = load_program(params, &name);
    // set_program keeps the memoized artifacts of the old version
    // cached under its content hash — switching back stays cheap.
    client->session->set_program(std::move(program));
    client->program_name = name;
    return program_info(*client);
  }

  Value do_bind(const Value& params) {
    auto client = client_for(param(params, "session").as_string());
    std::lock_guard<std::mutex> lock(client->mutex);
    client->session->set_binding(parse_binding(param(params, "binding")));
    Value result = Value::make_object();
    result["binding"] = binding_json(client->session->binding());
    return result;
  }

  Value do_subscribe(const Value& params) {
    auto client = client_for(param(params, "session").as_string());
    std::lock_guard<std::mutex> lock(client->mutex);
    session::SessionConfig cfg = client->session->config();
    cfg.shared_cache = shared;
    if (params.has("streaming")) cfg.streaming = params.at("streaming").as_bool();
    if (params.has("delta")) cfg.delta = params.at("delta").as_bool();
    if (params.has("prefetch")) cfg.prefetch = params.at("prefetch").as_bool();
    if (params.has("prefetch_depth")) {
      cfg.prefetch_depth = static_cast<int>(params.at("prefetch_depth").as_int());
    }
    if (params.has("cache_budget_bytes")) {
      cfg.cache_budget_bytes =
          static_cast<std::size_t>(params.at("cache_budget_bytes").as_int());
    }
    if (params.has("line_size")) {
      cfg.pipeline.line_size = static_cast<int>(params.at("line_size").as_int());
    }
    if (params.has("counts")) cfg.pipeline.counts = params.at("counts").as_bool();
    if (params.has("miss_threshold_lines")) {
      cfg.pipeline.miss_threshold_lines =
          params.at("miss_threshold_lines").as_int();
    }
    if (params.has("keep_distances")) {
      cfg.pipeline.keep_distances = params.at("keep_distances").as_bool();
    }
    if (params.has("element_stats")) {
      cfg.pipeline.element_stats = params.at("element_stats").as_bool();
    }
    if (params.has("movement")) {
      cfg.pipeline.movement = params.at("movement").as_bool();
    }
    // The subscription set is part of every cache key (the config
    // hash), so a Session's config is immutable: rebuild it around the
    // same program and binding. Artifacts survive in the shared tier.
    ir::Sdfg program = client->session->program();
    symbolic::SymbolMap binding = client->session->binding();
    client->session =
        std::make_unique<session::Session>(std::move(program), cfg);
    client->session->set_binding(std::move(binding));

    Value result = Value::make_object();
    result["streaming"] = Value::of(cfg.streaming);
    result["delta"] = Value::of(cfg.delta);
    result["prefetch"] = Value::of(cfg.prefetch);
    result["prefetch_depth"] = Value::of(cfg.prefetch_depth);
    result["cache_budget_bytes"] =
        Value::of(static_cast<std::int64_t>(cfg.cache_budget_bytes));
    result["line_size"] = Value::of(cfg.pipeline.line_size);
    result["counts"] = Value::of(cfg.pipeline.counts);
    result["miss_threshold_lines"] =
        Value::of(cfg.pipeline.miss_threshold_lines);
    result["keep_distances"] = Value::of(cfg.pipeline.keep_distances);
    result["element_stats"] = Value::of(cfg.pipeline.element_stats);
    result["movement"] = Value::of(cfg.pipeline.movement);
    return result;
  }

  Value do_step(const Value& params) {
    auto client = client_for(param(params, "session").as_string());
    std::lock_guard<std::mutex> lock(client->mutex);
    if (params.has("symbol")) {
      client->session->set_symbol(param(params, "symbol").as_string(),
                                  param(params, "value").as_int());
    } else if (params.has("binding")) {
      client->session->set_binding(parse_binding(params.at("binding")));
    } else {
      throw RequestError("bad_request",
                         "step needs 'symbol' + 'value' or 'binding'");
    }

    const session::ArtifactKey key = client->session->metrics_cache_key();
    const session::SessionStats before = client->session->stats();

    // Coalescing: first requester of a key becomes the leader and
    // computes; concurrent requesters of the SAME key wait for the
    // leader's flight, then hit the shared tier. A leader whose key is
    // already cached just hits the cache — registering the flight is
    // cheap and unconditional, which keeps the map race-free.
    std::shared_ptr<Flight> flight;
    bool leader = false;
    {
      std::lock_guard<std::mutex> flights_lock(flights_mutex);
      auto it = flights.find(key);
      if (it != flights.end()) {
        flight = it->second;
      } else {
        flight = std::make_shared<Flight>();
        flights.emplace(key, flight);
        leader = true;
      }
    }
    bool coalesced_request = false;
    if (!leader) {
      std::unique_lock<std::mutex> flight_lock(flight->mutex);
      flight->cv.wait(flight_lock, [&] { return flight->done; });
      coalesced_request = true;
    }

    std::shared_ptr<const sim::PipelineResult> result;
    if (leader) {
      // The guard signals even if metrics() throws — a follower must
      // never wait forever on a failed leader (it will recompute and
      // surface its own error).
      struct FlightGuard {
        Impl* impl;
        const session::ArtifactKey& key;
        const std::shared_ptr<Flight>& flight;
        ~FlightGuard() {
          {
            std::lock_guard<std::mutex> lock(impl->flights_mutex);
            impl->flights.erase(key);
          }
          {
            std::lock_guard<std::mutex> lock(flight->mutex);
            flight->done = true;
          }
          flight->cv.notify_all();
        }
      } guard{this, key, flight};
      result = client->session->metrics();
    } else {
      result = client->session->metrics();
    }

    const session::SessionStats after = client->session->stats();
    const char* served_by = "cache";
    if (after.misses > before.misses) {
      served_by = "compute";
    } else if (after.shared_hits > before.shared_hits) {
      served_by = "shared_cache";
    }
    {
      std::lock_guard<std::mutex> lock(state_mutex);
      ++steps;
      if (coalesced_request) ++coalesced;
    }

    Value response = Value::make_object();
    response["checksum"] = Value::of(std::to_string(result_checksum(*result)));
    response["executions"] = Value::of(result->executions);
    response["cache_misses"] = Value::of(result->misses.total.misses());
    response["movement_bytes"] = Value::of(client->session->movement_bytes());
    response["served_by"] = Value::of(served_by);
    response["coalesced"] = Value::of(coalesced_request);
    return response;
  }

  Value session_stats_json(const session::SessionStats& stats) {
    Value result = Value::make_object();
    result["hits"] = Value::of(stats.hits);
    result["misses"] = Value::of(stats.misses);
    result["shared_hits"] = Value::of(stats.shared_hits);
    result["prefetch_issued"] = Value::of(stats.prefetch_issued);
    result["prefetch_hits"] = Value::of(stats.prefetch_hits);
    result["evictions"] = Value::of(stats.evictions);
    result["cache_bytes"] =
        Value::of(static_cast<std::int64_t>(stats.cache_bytes));
    result["cache_entries"] =
        Value::of(static_cast<std::int64_t>(stats.cache_entries));
    result["prefetch"] = Value::of(stats.prefetch);
    result["steps_full_hit"] = Value::of(stats.steps_full_hit);
    result["steps_symbolic"] = Value::of(stats.steps_symbolic);
    result["steps_chunk_delta"] = Value::of(stats.steps_chunk_delta);
    result["steps_cold"] = Value::of(stats.steps_cold);
    result["simulate_ms"] = Value::of(stats.simulate_ms);
    result["metrics_ms"] = Value::of(stats.metrics_ms);
    result["metric_partitions"] = Value::of(stats.metric_partitions);
    return result;
  }

  Value do_stats(const Value& params) {
    Value result = Value::make_object();
    {
      Value server = Value::make_object();
      std::size_t session_count;
      {
        std::lock_guard<std::mutex> lock(sessions_mutex);
        session_count = sessions.size();
      }
      {
        std::lock_guard<std::mutex> lock(state_mutex);
        server["requests"] = Value::of(requests);
        server["errors"] = Value::of(errors);
        server["steps"] = Value::of(steps);
        server["coalesced"] = Value::of(coalesced);
      }
      server["sessions"] = Value::of(static_cast<std::int64_t>(session_count));
      server["pool_busy_fallbacks"] =
          Value::of(static_cast<std::int64_t>(par::busy_fallbacks()));
      server["threads"] = Value::of(par::num_threads());
      result["server"] = std::move(server);
    }
    {
      const session::SharedCacheStats cache = shared->stats();
      Value tier = Value::make_object();
      tier["hits"] = Value::of(cache.hits);
      tier["misses"] = Value::of(cache.misses);
      tier["insertions"] = Value::of(cache.insertions);
      tier["evictions"] = Value::of(cache.evictions);
      tier["bytes"] = Value::of(static_cast<std::int64_t>(cache.bytes));
      tier["entries"] = Value::of(static_cast<std::int64_t>(cache.entries));
      tier["disk_hits"] = Value::of(cache.disk_hits);
      tier["disk_misses"] = Value::of(cache.disk_misses);
      tier["disk_writes"] = Value::of(cache.disk_writes);
      tier["disk_bytes"] = Value::of(static_cast<std::int64_t>(cache.disk_bytes));
      tier["disk_entries"] =
          Value::of(static_cast<std::int64_t>(cache.disk_entries));
      result["shared_cache"] = std::move(tier);
    }
    if (params.has("session")) {
      auto client = client_for(params.at("session").as_string());
      std::lock_guard<std::mutex> lock(client->mutex);
      result["session"] = session_stats_json(client->session->stats());
    }
    return result;
  }

  Value do_shutdown() {
    {
      std::lock_guard<std::mutex> lock(state_mutex);
      accepting = false;
    }
    Value result = Value::make_object();
    result["stopping"] = Value::of(true);
    return result;
  }

  Value dispatch(const std::string& method, const Value& params) {
    if (method == "open_program") return do_open_program(params);
    if (method == "edit_program") return do_edit_program(params);
    if (method == "bind") return do_bind(params);
    if (method == "subscribe") return do_subscribe(params);
    if (method == "step") return do_step(params);
    if (method == "stats") return do_stats(params);
    if (method == "shutdown") return do_shutdown();
    throw RequestError("unknown_method", "unknown method '" + method + "'");
  }
};

namespace {

std::string respond_result(const Value& id, Value result) {
  Value response = Value::make_object();
  response["id"] = id;
  response["result"] = std::move(result);
  return json::dump(response);
}

std::string respond_error(const Value& id, const std::string& code,
                          const std::string& message) {
  Value error = Value::make_object();
  error["code"] = Value::of(code);
  error["message"] = Value::of(message);
  Value response = Value::make_object();
  response["id"] = id;
  response["error"] = std::move(error);
  return json::dump(response);
}

}  // namespace

Server::Server(ServerConfig config)
    : impl_(std::make_unique<Impl>(std::move(config))) {}

Server::~Server() { shutdown(); }

std::string Server::handle(const std::string& line) {
  Value id = Value::null();
  {
    std::lock_guard<std::mutex> lock(impl_->state_mutex);
    ++impl_->requests;
    if (!impl_->accepting) {
      ++impl_->errors;
      return respond_error(id, "shutting_down",
                           "server is shutting down; request rejected");
    }
    ++impl_->in_flight;
  }
  struct InFlightGuard {
    Impl* impl;
    ~InFlightGuard() {
      std::lock_guard<std::mutex> lock(impl->state_mutex);
      if (--impl->in_flight == 0) impl->drained.notify_all();
    }
  } guard{impl_.get()};

  std::string code;
  std::string message;
  try {
    Value request = json::parse(line);
    if (request.has("id")) id = request.at("id");
    const std::string& method = param(request, "method").as_string();
    const Value params =
        request.has("params") ? request.at("params") : Value::make_object();
    try {
      return respond_result(id, impl_->dispatch(method, params));
    } catch (const json::ParseError& error) {
      // A type/key mismatch inside params is the client's fault, not a
      // malformed line.
      throw RequestError("bad_request", error.what());
    }
  } catch (const RequestError& error) {
    code = error.code();
    message = error.what();
  } catch (const json::ParseError& error) {
    code = "parse_error";
    message = error.what();
  } catch (const std::exception& error) {
    code = "internal";
    message = error.what();
  }
  {
    std::lock_guard<std::mutex> lock(impl_->state_mutex);
    ++impl_->errors;
  }
  return respond_error(id, code, message);
}

void Server::shutdown() {
  std::unique_lock<std::mutex> lock(impl_->state_mutex);
  impl_->accepting = false;
  impl_->drained.wait(lock, [&] { return impl_->in_flight == 0; });
}

bool Server::shutting_down() const {
  std::lock_guard<std::mutex> lock(impl_->state_mutex);
  return !impl_->accepting;
}

ServerStats Server::stats() const {
  ServerStats stats;
  {
    std::lock_guard<std::mutex> lock(impl_->state_mutex);
    stats.requests = impl_->requests;
    stats.errors = impl_->errors;
    stats.steps = impl_->steps;
    stats.coalesced = impl_->coalesced;
  }
  {
    std::lock_guard<std::mutex> lock(impl_->sessions_mutex);
    stats.sessions = static_cast<std::int64_t>(impl_->sessions.size());
  }
  stats.pool_busy_fallbacks = par::busy_fallbacks();
  return stats;
}

session::SharedCacheStats Server::shared_cache_stats() const {
  return impl_->shared->stats();
}

const std::shared_ptr<session::SharedArtifactCache>& Server::shared_cache()
    const {
  return impl_->shared;
}

std::int64_t result_checksum(const sim::PipelineResult& result) {
  std::int64_t checksum = result.misses.total.misses() + result.executions;
  for (std::size_t c = 0; c < result.element_stats.size(); ++c) {
    for (std::int64_t cold : result.element_stats[c].cold_count) {
      checksum += cold;
    }
    // Guarded: the sweep benchmark always enables counts alongside
    // element_stats; a serve subscription may not.
    if (c < result.counts.reads.size()) {
      for (std::int64_t count : result.counts.reads[c]) checksum += count;
    }
  }
  return checksum;
}

ir::Sdfg workload_by_name(const std::string& name) {
  using workloads::BertStage;
  using workloads::HdiffVariant;
  if (name == "hdiff") return workloads::hdiff(HdiffVariant::Baseline);
  if (name == "hdiff_reshaped") return workloads::hdiff(HdiffVariant::Reshaped);
  if (name == "hdiff_reordered") {
    return workloads::hdiff(HdiffVariant::Reordered);
  }
  if (name == "hdiff_padded") return workloads::hdiff(HdiffVariant::Padded);
  if (name == "bert") return workloads::bert_encoder(BertStage::Baseline);
  if (name == "bert_fused1") return workloads::bert_encoder(BertStage::Fused1);
  if (name == "bert_fused2") return workloads::bert_encoder(BertStage::Fused2);
  if (name == "matmul") return workloads::matmul();
  if (name == "conv2d") return workloads::conv2d();
  if (name == "outer_product") return workloads::outer_product();
  throw std::invalid_argument("unknown workload '" + name + "'");
}

}  // namespace dmv::serve
