// dmv_serve — the line-delimited JSON analysis server (docs/serving.md).
//
// Transports:
//   dmv_serve                 stdio: one request line in, one response
//                             line out; exits on EOF or `shutdown`.
//   dmv_serve --port 7777     TCP on 127.0.0.1: one thread per
//                             connection, same line protocol; exits on
//                             `shutdown` from any client.
//
// Knobs:
//   --threads N               par::set_num_threads(N); DMV_NUM_THREADS
//                             is the environment equivalent.
//   --cache-mb N              shared artifact tier budget (default 256).
//   --shards N                shared tier shard count (default 16).
//   --cache-dir PATH          persistent warm-start tier: metric
//                             artifacts are written to PATH and a
//                             restarted server re-serves them without
//                             re-simulating (docs/storage.md).

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "dmv/par/par.hpp"
#include "dmv/serve/server.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--port N] [--threads N] [--cache-mb N] [--shards N]"
               " [--cache-dir PATH]\n";
  return 2;
}

void run_stdio(dmv::serve::Server& server) {
  std::string line;
  while (!server.shutting_down() && std::getline(std::cin, line)) {
    if (line.empty()) continue;
    std::cout << server.handle(line) << "\n" << std::flush;
  }
  server.shutdown();
}

// Reads newline-delimited requests from one accepted connection and
// writes one response line per request. Short writes are looped;
// failure just ends the connection (the session state stays — the
// client may reconnect).
void serve_connection(dmv::serve::Server& server, int fd) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (;;) {
      const std::size_t newline = buffer.find('\n', start);
      if (newline == std::string::npos) break;
      std::string line = buffer.substr(start, newline - start);
      start = newline + 1;
      if (line.empty()) continue;
      std::string response = server.handle(line);
      response += '\n';
      std::size_t written = 0;
      while (written < response.size()) {
        const ssize_t w = ::write(fd, response.data() + written,
                                  response.size() - written);
        if (w <= 0) {
          ::close(fd);
          return;
        }
        written += static_cast<std::size_t>(w);
      }
    }
    buffer.erase(0, start);
    if (server.shutting_down()) break;
  }
  ::close(fd);
}

int run_tcp(dmv::serve::Server& server, int port) {
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) {
    std::cerr << "dmv_serve: socket() failed\n";
    return 1;
  }
  const int one = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listener, reinterpret_cast<sockaddr*>(&address),
             sizeof(address)) < 0 ||
      ::listen(listener, 64) < 0) {
    std::cerr << "dmv_serve: cannot listen on 127.0.0.1:" << port << "\n";
    ::close(listener);
    return 1;
  }
  std::cout << "dmv_serve: listening on 127.0.0.1:" << port << "\n"
            << std::flush;
  std::vector<std::thread> connections;
  while (!server.shutting_down()) {
    // Poll accept with a timeout so `shutdown` from one connection
    // stops the accept loop promptly.
    timeval tv{};
    tv.tv_sec = 0;
    tv.tv_usec = 200 * 1000;
    ::setsockopt(listener, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) continue;
    connections.emplace_back(
        [&server, fd] { serve_connection(server, fd); });
  }
  ::close(listener);
  server.shutdown();
  for (std::thread& connection : connections) connection.join();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int port = -1;
  dmv::serve::ServerConfig config;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (std::strcmp(arg, "--port") == 0 && has_value) {
      port = std::atoi(argv[++i]);
    } else if (std::strcmp(arg, "--threads") == 0 && has_value) {
      dmv::par::set_num_threads(std::atoi(argv[++i]));
    } else if (std::strcmp(arg, "--cache-mb") == 0 && has_value) {
      config.shared_cache.budget_bytes =
          static_cast<std::size_t>(std::atoll(argv[++i])) << 20;
    } else if (std::strcmp(arg, "--shards") == 0 && has_value) {
      config.shared_cache.shards =
          static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(arg, "--cache-dir") == 0 && has_value) {
      config.shared_cache.disk_dir = argv[++i];
    } else {
      return usage(argv[0]);
    }
  }
  dmv::serve::Server server(config);
  if (port >= 0) return run_tcp(server, port);
  run_stdio(server);
  return 0;
}
