#include <algorithm>
#include <set>
#include <stdexcept>

#include "dmv/layout/layout.hpp"

namespace dmv::layout {

namespace {

void require_line_size(int line_size) {
  if (line_size <= 0) {
    throw std::invalid_argument("cache line size must be positive");
  }
}

// Visits every logical element of the layout in row-major order.
template <typename Fn>
void for_each_element(const ConcreteLayout& layout, Fn&& fn) {
  const std::int64_t total = layout.total_elements();
  for (std::int64_t flat = 0; flat < total; ++flat) {
    fn(layout.unflatten(flat));
  }
}

}  // namespace

std::int64_t cache_line_of(const ConcreteLayout& layout,
                           std::span<const std::int64_t> indices,
                           int line_size) {
  require_line_size(line_size);
  return layout.byte_address(indices) / line_size;
}

std::vector<Index> elements_sharing_line(
    const ConcreteLayout& layout, std::span<const std::int64_t> indices,
    int line_size) {
  require_line_size(line_size);
  const std::int64_t line = cache_line_of(layout, indices, line_size);
  std::vector<std::pair<std::int64_t, Index>> found;
  for_each_element(layout, [&](Index element) {
    const std::int64_t address = layout.byte_address(element);
    if (address / line_size == line) {
      found.emplace_back(address, std::move(element));
    }
  });
  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<Index> result;
  result.reserve(found.size());
  for (auto& [address, element] : found) result.push_back(std::move(element));
  return result;
}

std::int64_t lines_spanned(const ConcreteLayout& layout, int line_size) {
  require_line_size(line_size);
  std::set<std::int64_t> lines;
  for_each_element(layout, [&](const Index& element) {
    lines.insert(layout.byte_address(element) / line_size);
  });
  return static_cast<std::int64_t>(lines.size());
}

std::vector<Index> rows_with_line_wraparound(const ConcreteLayout& layout,
                                             int dim, int line_size) {
  require_line_size(line_size);
  if (dim < 0 || dim >= layout.rank()) {
    throw std::invalid_argument("rows_with_line_wraparound: bad dimension");
  }
  // A "row" is a 1-D slice varying along `dim` with all other indices
  // fixed. Enumerate the fixed prefixes (all dims except `dim`).
  std::vector<Index> affected;
  std::vector<std::int64_t> outer_shape;
  for (int d = 0; d < layout.rank(); ++d) {
    if (d != dim) outer_shape.push_back(layout.shape[d]);
  }
  std::int64_t outer_total = 1;
  for (std::int64_t extent : outer_shape) outer_total *= extent;

  auto outer_to_index = [&](std::int64_t flat, std::int64_t along) {
    Index indices(layout.rank(), 0);
    for (int d = layout.rank() - 1; d >= 0; --d) {
      if (d == dim) continue;
      const std::int64_t extent = layout.shape[d];
      indices[d] = flat % extent;
      flat /= extent;
    }
    indices[dim] = along;
    return indices;
  };

  for (std::int64_t outer = 1; outer < outer_total; ++outer) {
    const Index head = outer_to_index(outer, 0);
    const Index previous_tail =
        outer_to_index(outer - 1, layout.shape[dim] - 1);
    const std::int64_t head_line =
        layout.byte_address(head) / line_size;
    const std::int64_t tail_line =
        layout.byte_address(previous_tail) / line_size;
    if (head_line == tail_line) affected.push_back(head);
  }
  return affected;
}

}  // namespace dmv::layout
