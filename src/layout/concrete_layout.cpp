#include <cassert>
#include <stdexcept>

#include "dmv/layout/layout.hpp"

namespace dmv::layout {

std::int64_t ConcreteLayout::total_elements() const {
  std::int64_t total = 1;
  for (std::int64_t extent : shape) total *= extent;
  return total;
}

std::int64_t ConcreteLayout::allocated_elements() const {
  std::int64_t last = start_offset;
  for (std::size_t d = 0; d < shape.size(); ++d) {
    last += (shape[d] - 1) * strides[d];
  }
  return last + 1;
}

std::int64_t ConcreteLayout::allocated_bytes() const {
  return allocated_elements() * element_size;
}

std::int64_t ConcreteLayout::element_offset(
    std::span<const std::int64_t> indices) const {
  if (indices.size() != shape.size()) {
    throw std::invalid_argument("ConcreteLayout: rank mismatch for '" + name +
                                "'");
  }
  std::int64_t offset = start_offset;
  for (std::size_t d = 0; d < indices.size(); ++d) {
    offset += indices[d] * strides[d];
  }
  return offset;
}

std::int64_t ConcreteLayout::byte_address(
    std::span<const std::int64_t> indices) const {
  return base_address + element_offset(indices) * element_size;
}

std::int64_t ConcreteLayout::flat_index(
    std::span<const std::int64_t> indices) const {
  if (indices.size() != shape.size()) {
    throw std::invalid_argument("ConcreteLayout: rank mismatch for '" + name +
                                "'");
  }
  std::int64_t flat = 0;
  for (std::size_t d = 0; d < indices.size(); ++d) {
    flat = flat * shape[d] + indices[d];
  }
  return flat;
}

Index ConcreteLayout::unflatten(std::int64_t flat) const {
  Index indices(shape.size(), 0);
  for (int d = rank() - 1; d >= 0; --d) {
    indices[d] = flat % shape[d];
    flat /= shape[d];
  }
  return indices;
}

bool ConcreteLayout::in_bounds(std::span<const std::int64_t> indices) const {
  if (indices.size() != shape.size()) return false;
  for (std::size_t d = 0; d < indices.size(); ++d) {
    if (indices[d] < 0 || indices[d] >= shape[d]) return false;
  }
  return true;
}

ConcreteLayout ConcreteLayout::from(const ir::DataDescriptor& descriptor,
                                    const symbolic::SymbolMap& symbols) {
  ConcreteLayout layout;
  layout.name = descriptor.name;
  layout.element_size = descriptor.element_size;
  layout.start_offset = descriptor.start_offset.evaluate(symbols);
  layout.shape.reserve(descriptor.shape.size());
  layout.strides.reserve(descriptor.strides.size());
  for (const symbolic::Expr& extent : descriptor.shape) {
    const std::int64_t value = extent.evaluate(symbols);
    if (value <= 0) {
      throw std::invalid_argument("ConcreteLayout: non-positive extent in '" +
                                  descriptor.name + "'");
    }
    layout.shape.push_back(value);
  }
  for (const symbolic::Expr& stride : descriptor.strides) {
    layout.strides.push_back(stride.evaluate(symbols));
  }
  return layout;
}

AddressSpace::AddressSpace(std::int64_t alignment) : alignment_(alignment) {
  if (alignment <= 0) {
    throw std::invalid_argument("AddressSpace: alignment must be positive");
  }
}

std::int64_t AddressSpace::place(ConcreteLayout& layout) {
  next_ = (next_ + alignment_ - 1) / alignment_ * alignment_;
  layout.base_address = next_;
  next_ += layout.allocated_bytes();
  return layout.base_address;
}

}  // namespace dmv::layout
