#pragma once

// Mergeable parallel metric engine (internal; include only from src/sim).
//
// The serial FusedPass in pipeline.cpp advances every enabled consumer
// with one per-event consume() call — exact, but the last serial stage
// of a cold slider step. This module re-expresses the same pass as
// independently computable, deterministically mergeable pieces:
//
//   * line-id derivation — a vectorization-friendly affine kernel over
//     the SoA columns (per-container base/element-size tables, shift
//     instead of hardware division for power-of-two line sizes);
//   * stack distances — two phases: a parallel previous-occurrence pass
//     (per-slice local last-seen tables stitched left to right), then
//     parallel Fenwick counting over disjoint event segments, each
//     segment bulk-rebuilding the exact serial Fenwick state at its
//     start from the next-occurrence array;
//   * exact LRU cache — partitioned by cache set: a line maps to
//     exactly one set, so each worker scans the whole line column but
//     touches only its sets and per-set LRU order is preserved exactly;
//   * order-insensitive consumers (counts, miss classification,
//     element-stat pairs) — per-segment partial tallies reduced in
//     ascending segment order by integer addition.
//
// Exactness, not approximation: every piece computes the same integers
// the serial pass computes, and every reduction is an order-fixed
// integer merge — so results are bit-identical to FusedPass at any
// (thread, segment, partition) combination. pipeline.cpp owns engine
// selection and falls back to FusedPass when the engine cannot run
// (see MetricPipeline and docs/simulation.md).

#include <cstddef>
#include <cstdint>
#include <list>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dmv/sim/pipeline.hpp"
#include "dmv/sim/sim.hpp"
#include "metric_detail.hpp"

namespace dmv::sim::merge {

// Fenwick tree with an int32 node type (marks sum to at most the event
// count, which the engine caps at INT32_MAX) and an O(capacity) bulk
// initializer — half the cache footprint of detail::Fenwick and no
// per-mark tree walks when reconstructing a segment's start state.
class Fenwick32 {
 public:
  /// Zeroes and guarantees capacity for positions [0, n), then marks
  /// every position j < marked_prefix with next[j] >= threshold — the
  /// exact serial invariant "j carries a mark iff j is the most recent
  /// occurrence of its line among the first `threshold` events". Linear
  /// build: leaf values then parent propagation. `next` may be null
  /// when marked_prefix == 0.
  void reset_marked(std::size_t n, const std::int64_t* next,
                    std::size_t marked_prefix, std::int64_t threshold) {
    if (n > capacity_) capacity_ = std::max<std::size_t>(n, 1024);
    marks_.assign(capacity_, 0);
    tree_.assign(capacity_ + 1, 0);
    for (std::size_t j = 0; j < marked_prefix; ++j) {
      if (next[j] >= threshold) marks_[j] = 1;
    }
    for (std::size_t i = 1; i <= capacity_; ++i) tree_[i] += marks_[i - 1];
    for (std::size_t i = 1; i <= capacity_; ++i) {
      const std::size_t parent = i + (i & (~i + 1));
      if (parent <= capacity_) tree_[parent] += tree_[i];
    }
  }

  // marks_ is only a staging buffer for reset_marked's linear build;
  // queries read tree_ alone, so add() does not maintain it.
  void add(std::size_t position, int delta) {
    for (std::size_t i = position + 1; i < tree_.size(); i += i & (~i + 1)) {
      tree_[i] += delta;
    }
  }

  /// Sum of marks in [0, position].
  std::int64_t prefix(std::size_t position) const {
    std::int64_t sum = 0;
    for (std::size_t i = position + 1; i > 0; i -= i & (~i + 1)) {
      sum += tree_[i];
    }
    return sum;
  }

  /// Sum of marks in [from, to] (inclusive).
  std::int64_t range(std::size_t from, std::size_t to) const {
    if (from > to) return 0;
    return prefix(to) - (from == 0 ? 0 : prefix(from - 1));
  }

 private:
  std::vector<std::int32_t> tree_;  ///< 1-based; size capacity_ + 1.
  std::vector<std::int8_t> marks_;
  std::size_t capacity_ = 0;
};

/// Balanced contiguous split of [0, n): at most max_parts parts, none
/// smaller than min_grain (fewer parts for small n, never 0 for n > 0).
inline std::size_t segment_count(std::size_t n, std::size_t max_parts,
                                 std::size_t min_grain) {
  if (n == 0) return 0;
  if (min_grain == 0) min_grain = 1;
  const std::size_t cap = (n + min_grain - 1) / min_grain;
  return std::max<std::size_t>(1, std::min(max_parts, cap));
}

/// k-th boundary of the balanced split of [0, n) into `parts` parts:
/// segment k is [segment_begin(n, parts, k), segment_begin(n, parts,
/// k + 1)). Depends only on (n, parts).
inline std::size_t segment_begin(std::size_t n, std::size_t parts,
                                 std::size_t k) {
  return n / parts * k + std::min(k, n % parts);
}

// One distinct line's first and last occurrence inside a slice — the
// only state the left-to-right stitch needs from a slice.
struct Boundary {
  std::int64_t line = 0;
  std::int64_t first = 0;
  std::int64_t last = 0;
};

// Slice-local line -> most recent position table. Dense over the line
// span when the per-slot memory is reasonable, hash otherwise.
class LocalSeen {
 public:
  void reset_dense(std::int64_t lo, std::int64_t span) {
    dense_ = true;
    lo_ = lo;
    values_.assign(static_cast<std::size_t>(span), -1);
    hash_.clear();
  }
  void reset_hash(std::size_t expected) {
    dense_ = false;
    values_.clear();
    hash_.clear();
    hash_.reserve(expected);
  }
  /// Stores `value` for `line`, returning the previous value (-1 when
  /// the line was not seen in this slice yet).
  std::int64_t exchange(std::int64_t line, std::int64_t value) {
    std::int64_t& slot =
        dense_ ? values_[static_cast<std::size_t>(line - lo_)]
               : hash_.try_emplace(line, -1).first->second;
    const std::int64_t previous = slot;
    slot = value;
    return previous;
  }
  std::int64_t get(std::int64_t line) const {
    if (dense_) return values_[static_cast<std::size_t>(line - lo_)];
    const auto it = hash_.find(line);
    return it == hash_.end() ? -1 : it->second;
  }

 private:
  bool dense_ = true;
  std::int64_t lo_ = 0;
  std::vector<std::int64_t> values_;
  std::unordered_map<std::int64_t, std::int64_t> hash_;
};

// Per-segment partial state of the order-insensitive consumers; merged
// into the result by integer addition in ascending segment order
// (finite element-stat pairs concatenate in the same order, which
// reproduces the serial event order exactly).
struct ConsumerPartial {
  std::vector<std::vector<std::int64_t>> reads;           // [container][elem]
  std::vector<std::vector<std::int64_t>> writes;          // [container][elem]
  std::vector<std::vector<std::int64_t>> element_misses;  // [container][elem]
  std::vector<std::vector<std::int64_t>> cold;            // [container][elem]
  std::vector<MissStats> misses;                          // [container]
  std::vector<std::vector<std::pair<std::int64_t, std::int64_t>>>
      finite;                                             // [container]
};

// Exact LRU state of the contiguous set range owned by one cache
// partition. Small associativities use a flat MRU-first array per set
// (line ids are non-negative, -1 marks an empty way); larger ones fall
// back to the list + hash structure of the serial consumer.
struct WideSet {
  std::list<std::int64_t> lru;
  std::unordered_map<std::int64_t, std::list<std::int64_t>::iterator> where;
};
struct CachePartition {
  std::vector<MissStats> per_container;
  std::vector<std::int64_t> small;  ///< [local_set * ways + way].
  std::vector<WideSet> wide;        ///< [local_set].
};

// All engine scratch, owned by the pipeline arena so slider sweeps pay
// the allocations once. Contents are meaningless between calls.
struct Scratch {
  std::vector<std::int64_t> lines;        ///< Distance-granularity ids.
  std::vector<std::int64_t> cache_lines;  ///< Only for a second line size.
  std::vector<std::int64_t> prev;         ///< Previous occurrence or -1.
  std::vector<std::int64_t> next;         ///< Next occurrence or INT64_MAX.
  std::vector<std::int64_t> distances;
  std::vector<std::int64_t> global_last;  ///< Stitch table, dense over span.
  std::vector<LocalSeen> local_seen;              // Per slot.
  std::vector<std::vector<Boundary>> boundaries;  // Per slot.
  std::vector<Fenwick32> fenwicks;                // Per distance segment.
  std::vector<ConsumerPartial> partials;          // Per consumer segment.
  std::vector<CachePartition> cache_parts;        // Per cache partition.
  std::vector<std::uint8_t> seen;                 ///< Cache line ever resident.
  /// Merged (flat, distance) pairs per container + counting-sort scratch.
  std::vector<std::vector<std::pair<std::int64_t, std::int64_t>>> finite;
  std::vector<std::int64_t> offsets;
  std::vector<std::int64_t> sorted;
};

// Per-event line-id derivation with a vectorization-friendly fast path:
// when every layout is contiguous at a non-negative base and the line
// size is a power of two, line = (base[c] + flat * esize[c]) >> shift —
// a branchless affine gather loop the compiler can unroll and
// vectorize, with no hardware division. Other layouts take the general
// ContainerAddressing path per event.
class LineDeriver {
 public:
  void reset(const std::vector<layout::ConcreteLayout>& layouts,
             int line_size);
  void derive(const std::int32_t* containers, const std::int64_t* flats,
              std::size_t begin, std::size_t end, std::int64_t* out) const;

 private:
  std::vector<detail::ContainerAddressing> addressing_;
  std::vector<std::int64_t> base_;
  std::vector<std::int64_t> esize_;
  int line_size_ = 64;
  int shift_ = -1;  ///< >= 0 selects the affine fast path.
};

// Phase A of the two-phase stack distances: prev[i] = position of the
// previous access to event i's line, or -1. Slices are processed in
// parallel (local_slice, any order, disjoint writes); stitch_slice then
// runs once per slice in ascending slice order on one thread, resolving
// each slice's first-occurrence boundaries against the running global
// last-seen table. The fused-generation driver calls the two halves
// from ordered_pipeline's produce/consume; compute_prev below is the
// standalone driver for materialized traces.
class PrevBuilder {
 public:
  /// `slots` = number of concurrently live local tables (window size
  /// for the fused driver, one per segment for the standalone pass).
  void begin(Scratch& scratch, std::size_t n, std::int64_t lo,
             std::int64_t span, std::size_t slots);
  void local_slice(Scratch& scratch, const std::int64_t* lines,
                   std::size_t begin, std::size_t end,
                   std::size_t slot) const;
  void stitch_slice(Scratch& scratch, std::size_t slot) const;

 private:
  std::int64_t lo_ = 0;
  std::int64_t span_ = 0;
  bool dense_local_ = true;
};

/// Standalone phase-A driver over a materialized line column.
void compute_prev(Scratch& scratch, std::span<const std::int64_t> lines,
                  std::int64_t lo, std::int64_t span);

/// True when finish_pass will split phase B into more than one segment
/// for `n` events at the current thread count — i.e. when phase A's
/// prev array is actually read. At one distance segment finish_pass
/// runs a fused last-seen Olken loop directly over the line column and
/// never touches `prev`, so callers skip compute_prev entirely (one
/// full event scan saved — the 1-worker bench case).
bool needs_prev_pass(std::size_t n);

/// Widens layout-derived dense bounds [lo, hi] to the observed line ids
/// (parallel min/max reduce) — the mergeable counterpart of the serial
/// path's widening scan for hand-built traces.
void widen_bounds(std::span<const std::int64_t> lines, std::int64_t& lo,
                  std::int64_t& hi);

/// Runs everything after phase A — distance counting (phase B), the
/// set-partitioned cache, the order-insensitive consumer segments, the
/// ordered merge, and finalization — and fills `result` completely
/// (identical to FusedPass::finish on the same trace). `scratch.prev`
/// must already hold phase A's output when the config needs distances
/// and needs_prev_pass(n) is true; with one distance segment the pass
/// counts straight off `lines` (over [distance_lo, distance_lo +
/// distance_span)) and prev is never read. `lines`/`cache_lines` must
/// hold the derived ids for the consumers that need them. `partitions`
/// reports the largest worker-partition count used by any phase (1 =
/// everything ran as a single segment).
void finish_pass(const PipelineConfig& config, const AccessTrace& header,
                 std::span<const std::int32_t> containers,
                 std::span<const std::int64_t> flats,
                 std::span<const std::uint8_t> writes,
                 std::span<const std::int64_t> lines,
                 std::int64_t distance_lo, std::int64_t distance_span,
                 std::span<const std::int64_t> cache_lines,
                 std::int64_t cache_lo, std::int64_t cache_span,
                 std::int64_t executions, Scratch& scratch,
                 PipelineResult& result, int& partitions);

}  // namespace dmv::sim::merge
