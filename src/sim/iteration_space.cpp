#include <stdexcept>

#include "dmv/sim/sim.hpp"

namespace dmv::sim {

namespace detail {

CompiledSpaceBounds::CompiledSpaceBounds(const IterationSpace& space) {
  // Parameters first, so every param has a slot even if no bound reads it.
  param_slots_.reserve(space.params.size());
  for (const std::string& param : space.params) {
    param_slots_.push_back(table_.intern(param));
  }
  dims_.reserve(space.ranges.size());
  for (const ir::Range& range : space.ranges) {
    Dim dim;
    dim.begin = symbolic::CompiledExpr::compile(range.begin, table_);
    dim.end = symbolic::CompiledExpr::compile(range.end, table_);
    dim.step = symbolic::CompiledExpr::compile(range.step, table_);
    dim.invariant = !dim.begin.reads_any(param_slots_) &&
                    !dim.end.reads_any(param_slots_) &&
                    !dim.step.reads_any(param_slots_);
    dims_.push_back(std::move(dim));
  }
  table_.bind(space.base, values_, bound_);
  // The space's own parameters start unbound even if the base binding
  // mentions them: iteration owns these names (mirrors the interpreted
  // evaluator, which erased them from its environment).
  for (int slot : param_slots_) bound_[slot] = 0;
}

CompiledSpaceBounds::Triple CompiledSpaceBounds::eval(std::size_t dim) {
  Dim& d = dims_[dim];
  if (d.invariant && d.cached) return d.cache;
  // Parameters of this and inner dimensions are out of scope for this
  // bound; clear any value a previous sibling subtree left behind so
  // forward references fail exactly like the interpreted evaluator.
  for (std::size_t q = dim; q < param_slots_.size(); ++q) {
    bound_[param_slots_[q]] = 0;
  }
  Triple triple;
  const std::vector<std::string>& names = table_.names();
  triple.begin = d.begin.evaluate(values_.data(), bound_.data(), &names);
  triple.end = d.end.evaluate(values_.data(), bound_.data(), &names);
  triple.step = d.step.evaluate(values_.data(), bound_.data(), &names);
  if (d.invariant) {
    d.cache = triple;
    d.cached = true;
  }
  return triple;
}

void CompiledSpaceBounds::set_param(std::size_t dim, std::int64_t value) {
  const int slot = param_slots_[dim];
  values_[slot] = value;
  bound_[slot] = 1;
}

}  // namespace detail

std::int64_t IterationSpace::size() const {
  // Fast path: when no range reads the space's own parameters, the point
  // count is the product of per-dimension trip counts — no enumeration.
  // Dimensions are checked in order and a zero-trip dimension
  // short-circuits, so errors surface (or don't) exactly as they would
  // during iteration.
  bool independent = true;
  for (const ir::Range& range : ranges) {
    std::set<std::string> free;
    range.begin.collect_free_symbols(free);
    range.end.collect_free_symbols(free);
    range.step.collect_free_symbols(free);
    for (const std::string& param : params) {
      if (free.count(param)) {
        independent = false;
        break;
      }
    }
    if (!independent) break;
  }
  if (independent) {
    std::int64_t count = 1;
    for (const ir::Range& range : ranges) {
      const std::int64_t begin = range.begin.evaluate(base);
      const std::int64_t end = range.end.evaluate(base);
      const std::int64_t step = range.step.evaluate(base);
      if (step <= 0) {
        throw std::invalid_argument("IterationSpace: non-positive step");
      }
      if (end < begin) return 0;
      count *= (end - begin) / step + 1;
    }
    return count;
  }
  std::int64_t count = 0;
  for_each([&](std::span<const std::int64_t>) { ++count; });
  return count;
}

IterationSpace IterationSpace::from(const ir::MapInfo& info,
                                    const SymbolMap& symbols) {
  if (info.params.size() != info.ranges.size()) {
    throw std::invalid_argument("IterationSpace: malformed map '" +
                                info.label + "'");
  }
  IterationSpace space;
  space.params = info.params;
  space.ranges = info.ranges;
  space.base = symbols;
  return space;
}

}  // namespace dmv::sim
