#include <stdexcept>

#include "dmv/sim/sim.hpp"

namespace dmv::sim {

std::int64_t IterationSpace::size() const {
  std::int64_t count = 0;
  for_each([&](std::span<const std::int64_t>) { ++count; });
  return count;
}

IterationSpace IterationSpace::from(const ir::MapInfo& info,
                                    const SymbolMap& symbols) {
  if (info.params.size() != info.ranges.size()) {
    throw std::invalid_argument("IterationSpace: malformed map '" +
                                info.label + "'");
  }
  IterationSpace space;
  space.params = info.params;
  space.ranges = info.ranges;
  space.base = symbols;
  return space;
}

}  // namespace dmv::sim
