#include <stdexcept>

#include "dmv/par/par.hpp"
#include "dmv/sim/sim.hpp"
#include "metric_detail.hpp"

namespace dmv::sim {

void build_line_table(const AccessTrace& trace, int line_size,
                      LineTable& out) {
  if (line_size <= 0) {
    throw std::invalid_argument("build_line_table: bad line size");
  }
  out.line_size = line_size;
  detail::line_range_of(trace.layouts, line_size, out.first_line,
                        out.line_span, &out.per_container);

  const std::vector<detail::ContainerAddressing> addressing =
      detail::addressing_for(trace.layouts);
  const std::size_t n = trace.events.size();
  out.lines.resize(n);
  const std::span<const std::int32_t> containers =
      trace.events.container_column();
  const std::span<const std::int64_t> flats = trace.events.flat_column();
  par::parallel_for(n, 1 << 14, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      out.lines[i] = addressing[static_cast<std::size_t>(containers[i])]
                         .line_of(flats[i], line_size);
    }
  });
}

LineTable build_line_table(const AccessTrace& trace, int line_size) {
  LineTable table;
  build_line_table(trace, line_size, table);
  return table;
}

}  // namespace dmv::sim
