#include <algorithm>
#include <unordered_map>

#include "dmv/par/par.hpp"
#include "dmv/sim/sim.hpp"

namespace dmv::sim {

namespace {

// Fenwick tree over event positions; a mark at position p means "some
// cache line's most recent access happened at p".
class Fenwick {
 public:
  explicit Fenwick(std::size_t n) : tree_(n + 1, 0) {}

  void add(std::size_t position, int delta) {
    for (std::size_t i = position + 1; i < tree_.size(); i += i & (~i + 1)) {
      tree_[i] += delta;
    }
  }

  // Sum of marks in [0, position].
  std::int64_t prefix(std::size_t position) const {
    std::int64_t sum = 0;
    for (std::size_t i = position + 1; i > 0; i -= i & (~i + 1)) {
      sum += tree_[i];
    }
    return sum;
  }

  // Sum of marks in [from, to] (inclusive).
  std::int64_t range(std::size_t from, std::size_t to) const {
    if (from > to) return 0;
    return prefix(to) - (from == 0 ? 0 : prefix(from - 1));
  }

 private:
  std::vector<std::int64_t> tree_;
};

// Cache line id of an event in the global simulated address space.
std::int64_t line_of(const AccessTrace& trace, const AccessEvent& event,
                     int line_size) {
  const ConcreteLayout& layout = trace.layouts[event.container];
  const layout::Index indices = layout.unflatten(event.flat);
  return layout.byte_address(indices) / line_size;
}

}  // namespace

StackDistanceResult stack_distances(const AccessTrace& trace, int line_size) {
  StackDistanceResult result;
  result.line_size = line_size;
  result.distances.resize(trace.events.size());

  // Olken's algorithm, Fenwick formulation: the reuse distance of an
  // access is the number of distinct lines whose latest access falls
  // strictly between this line's previous access and now.
  Fenwick marks(trace.events.size());
  std::unordered_map<std::int64_t, std::size_t> last_position;
  last_position.reserve(trace.events.size());

  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    const std::int64_t line = line_of(trace, trace.events[i], line_size);
    auto it = last_position.find(line);
    if (it == last_position.end()) {
      result.distances[i] = kInfiniteDistance;
    } else {
      result.distances[i] = marks.range(it->second + 1, i);
      marks.add(it->second, -1);
    }
    marks.add(i, +1);
    last_position[line] = i;
  }
  return result;
}

StackDistanceResult stack_distances_naive(const AccessTrace& trace,
                                          int line_size) {
  StackDistanceResult result;
  result.line_size = line_size;
  result.distances.resize(trace.events.size());

  // LRU stack as a vector, most recent first; distance = depth found.
  std::vector<std::int64_t> stack;
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    const std::int64_t line = line_of(trace, trace.events[i], line_size);
    auto it = std::find(stack.begin(), stack.end(), line);
    if (it == stack.end()) {
      result.distances[i] = kInfiniteDistance;
    } else {
      result.distances[i] = it - stack.begin();
      stack.erase(it);
    }
    stack.insert(stack.begin(), line);
  }
  return result;
}

ElementDistanceStats element_distance_stats(const AccessTrace& trace,
                                            const StackDistanceResult& result,
                                            int container) {
  const std::int64_t elements =
      trace.layouts[container].total_elements();
  ElementDistanceStats stats;
  stats.min.assign(elements, kInfiniteDistance);
  stats.median.assign(elements, kInfiniteDistance);
  stats.max.assign(elements, kInfiniteDistance);
  stats.cold_count.assign(elements, 0);

  // Events pass, sharded over contiguous blocks. Per-block lists are
  // concatenated in ascending block order, which reproduces the serial
  // per-element event order exactly; cold counts sum.
  struct Partial {
    std::vector<std::vector<std::int64_t>> finite;
    std::vector<std::int64_t> cold;
  };
  const std::size_t n = trace.events.size();
  const std::size_t grain =
      par::grain_for(n, static_cast<std::size_t>(par::num_threads()),
                     std::size_t{1} << 15);
  Partial merged = par::parallel_reduce(
      n, grain,
      Partial{std::vector<std::vector<std::int64_t>>(elements),
              std::vector<std::int64_t>(elements, 0)},
      [&](std::size_t begin, std::size_t end) {
        Partial local{std::vector<std::vector<std::int64_t>>(elements),
                      std::vector<std::int64_t>(elements, 0)};
        for (std::size_t i = begin; i < end; ++i) {
          const AccessEvent& event = trace.events[i];
          if (event.container != container) continue;
          const std::int64_t distance = result.distances[i];
          if (distance == kInfiniteDistance) {
            ++local.cold[event.flat];
          } else {
            local.finite[event.flat].push_back(distance);
          }
        }
        return local;
      },
      [](Partial& acc, Partial&& block) {
        for (std::size_t e = 0; e < acc.finite.size(); ++e) {
          acc.finite[e].insert(acc.finite[e].end(), block.finite[e].begin(),
                               block.finite[e].end());
          acc.cold[e] += block.cold[e];
        }
      });
  stats.cold_count = std::move(merged.cold);

  // Per-element statistics: disjoint writes, parallel over elements.
  par::parallel_for(
      static_cast<std::size_t>(elements), 4096,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t e = begin; e < end; ++e) {
          std::vector<std::int64_t>& distances = merged.finite[e];
          if (distances.empty()) continue;
          std::sort(distances.begin(), distances.end());
          stats.min[e] = distances.front();
          stats.max[e] = distances.back();
          stats.median[e] = distances[distances.size() / 2];
        }
      });
  return stats;
}

DistanceHistogram distance_histogram(const AccessTrace& trace,
                                     const StackDistanceResult& result,
                                     int container, std::int64_t flat) {
  DistanceHistogram histogram;
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    const AccessEvent& event = trace.events[i];
    if (event.container != container) continue;
    if (flat >= 0 && event.flat != flat) continue;
    const std::int64_t distance = result.distances[i];
    if (distance == kInfiniteDistance) {
      ++histogram.cold_misses;
    } else {
      histogram.distances.push_back(distance);
    }
  }
  std::sort(histogram.distances.begin(), histogram.distances.end());
  return histogram;
}

}  // namespace dmv::sim
