#include <algorithm>
#include <unordered_map>
#include <utility>

#include "dmv/par/par.hpp"
#include "dmv/sim/sim.hpp"
#include "metric_detail.hpp"

namespace dmv::sim {

namespace {

// Cache line id of an event in the global simulated address space.
std::int64_t line_of(const AccessTrace& trace, const AccessEvent& event,
                     int line_size) {
  const ConcreteLayout& layout = trace.layouts[event.container];
  const layout::Index indices = layout.unflatten(event.flat);
  return layout.byte_address(indices) / line_size;
}

// Dense per-line state is worth it only while the line-id range stays
// proportional to the data actually traced; beyond this, fall back to a
// hash map (hand-built traces can place containers at arbitrary bases).
constexpr std::int64_t kMaxDenseSpan = std::int64_t{1} << 26;

// Olken's algorithm, Fenwick formulation: the reuse distance of an
// access is the number of distinct lines whose latest access falls
// strictly between this line's previous access and now. LastPosition
// abstracts the line -> previous-position lookup (dense array over the
// LineTable's span, or hash map fallback).
template <typename LastPosition>
void olken_pass(std::span<const std::int64_t> lines,
                detail::Fenwick& marks, LastPosition&& last_position,
                std::vector<std::int64_t>& distances) {
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::int64_t& previous = last_position(lines[i]);
    if (previous < 0) {
      distances[i] = kInfiniteDistance;
    } else {
      const std::size_t p = static_cast<std::size_t>(previous);
      distances[i] = marks.range(p + 1, i);
      marks.add(p, -1);
    }
    marks.add(i, +1);
    previous = static_cast<std::int64_t>(i);
  }
}

}  // namespace

StackDistanceResult stack_distances(const AccessTrace& trace,
                                    const LineTable& table) {
  StackDistanceResult result;
  result.line_size = table.line_size;
  const std::size_t n = trace.events.size();
  result.distances.resize(n);

  detail::Fenwick marks;
  marks.reset(n);

  // Dense bounds: the table's container span, widened to the actual
  // line ids in case the trace was hand-built with out-of-buffer
  // addresses.
  std::int64_t lo = table.first_line;
  std::int64_t hi = table.first_line + table.line_span - 1;
  for (const std::int64_t line : table.lines) {
    lo = std::min(lo, line);
    hi = std::max(hi, line);
  }
  const std::int64_t span = n == 0 ? 0 : hi - lo + 1;
  if (span >= 0 && span <= kMaxDenseSpan) {
    std::vector<std::int64_t> last(static_cast<std::size_t>(span), -1);
    olken_pass(
        table.lines, marks,
        [&](std::int64_t line) -> std::int64_t& {
          return last[static_cast<std::size_t>(line - lo)];
        },
        result.distances);
  } else {
    std::unordered_map<std::int64_t, std::int64_t> last;
    last.reserve(n);
    olken_pass(
        table.lines, marks,
        [&](std::int64_t line) -> std::int64_t& {
          return last.try_emplace(line, -1).first->second;
        },
        result.distances);
  }
  return result;
}

StackDistanceResult stack_distances(const AccessTrace& trace, int line_size) {
  return stack_distances(trace, build_line_table(trace, line_size));
}

StackDistanceResult stack_distances_naive(const AccessTrace& trace,
                                          int line_size) {
  StackDistanceResult result;
  result.line_size = line_size;
  result.distances.resize(trace.events.size());

  // LRU stack as a vector, most recent first; distance = depth found.
  std::vector<std::int64_t> stack;
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    const std::int64_t line = line_of(trace, trace.events[i], line_size);
    auto it = std::find(stack.begin(), stack.end(), line);
    if (it == stack.end()) {
      result.distances[i] = kInfiniteDistance;
    } else {
      result.distances[i] = it - stack.begin();
      stack.erase(it);
    }
    stack.insert(stack.begin(), line);
  }
  return result;
}

ElementDistanceStats element_distance_stats(const AccessTrace& trace,
                                            const StackDistanceResult& result,
                                            int container) {
  const std::int64_t elements =
      trace.layouts[container].total_elements();
  ElementDistanceStats stats;
  stats.cold_count.assign(static_cast<std::size_t>(elements), 0);

  // Pass 1 (parallel): pre-filter this container's events into
  // (flat, distance) pairs — finite and cold kept separately — in event
  // order (per-block lists concatenate in ascending block order, which
  // reproduces the serial order exactly). Peak memory is
  // O(container events + events/threads), NOT O(threads x elements):
  // blocks no longer allocate elements-sized arrays that stay mostly
  // empty when the container filters most events out.
  struct Partial {
    std::vector<std::pair<std::int64_t, std::int64_t>> finite;
    std::vector<std::int64_t> cold;  ///< Flat indices of cold accesses.
  };
  const std::size_t n = trace.events.size();
  const std::span<const std::int32_t> containers =
      trace.events.container_column();
  const std::span<const std::int64_t> flats = trace.events.flat_column();
  const std::size_t grain =
      par::grain_for(n, static_cast<std::size_t>(par::num_threads()),
                     std::size_t{1} << 15);
  Partial merged = par::parallel_reduce(
      n, grain, Partial{},
      [&](std::size_t begin, std::size_t end) {
        Partial local;
        for (std::size_t i = begin; i < end; ++i) {
          if (containers[i] != container) continue;
          const std::int64_t distance = result.distances[i];
          if (distance == kInfiniteDistance) {
            local.cold.push_back(flats[i]);
          } else {
            local.finite.emplace_back(flats[i], distance);
          }
        }
        return local;
      },
      [](Partial& acc, Partial&& block) {
        acc.finite.insert(acc.finite.end(), block.finite.begin(),
                          block.finite.end());
        acc.cold.insert(acc.cold.end(), block.cold.begin(),
                        block.cold.end());
      });
  for (const std::int64_t flat : merged.cold) {
    ++stats.cold_count[static_cast<std::size_t>(flat)];
  }

  // Pass 2: counting sort by element + per-element order statistics
  // (parallel over elements inside the helper).
  std::vector<std::int64_t> offsets;
  std::vector<std::int64_t> sorted;
  detail::finalize_element_stats(elements, merged.finite, offsets, sorted,
                                 stats);
  return stats;
}

DistanceHistogram distance_histogram(const AccessTrace& trace,
                                     const StackDistanceResult& result,
                                     int container, std::int64_t flat) {
  DistanceHistogram histogram;
  const std::size_t n = trace.events.size();
  const std::span<const std::int32_t> containers =
      trace.events.container_column();
  const std::span<const std::int64_t> flats = trace.events.flat_column();
  for (std::size_t i = 0; i < n; ++i) {
    if (containers[i] != container) continue;
    if (flat >= 0 && flats[i] != flat) continue;
    const std::int64_t distance = result.distances[i];
    if (distance == kInfiniteDistance) {
      ++histogram.cold_misses;
    } else {
      histogram.distances.push_back(distance);
    }
  }
  std::sort(histogram.distances.begin(), histogram.distances.end());
  return histogram;
}

}  // namespace dmv::sim
