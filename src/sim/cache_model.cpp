#include <list>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "dmv/par/par.hpp"
#include "dmv/sim/sim.hpp"

namespace dmv::sim {

MissReport classify_misses(const AccessTrace& trace,
                           const StackDistanceResult& distances,
                           std::int64_t threshold_lines) {
  if (threshold_lines <= 0) {
    throw std::invalid_argument(
        "classify_misses: threshold must be positive");
  }
  MissReport report;
  report.threshold_lines = threshold_lines;
  report.per_container.resize(trace.layouts.size());
  report.element_misses.reserve(trace.layouts.size());
  for (const ConcreteLayout& layout : trace.layouts) {
    report.element_misses.emplace_back(layout.total_elements(), 0);
  }

  // Sharded over event blocks with one accumulator per block (block
  // count capped by the thread knob; integer sums commute, so any
  // partition reproduces the serial tallies bit for bit).
  struct Partial {
    std::vector<MissStats> per_container;
    std::vector<std::vector<std::int64_t>> element_misses;
  };
  auto zero = [&] {
    Partial partial;
    partial.per_container.resize(trace.layouts.size());
    partial.element_misses.reserve(trace.layouts.size());
    for (const ConcreteLayout& layout : trace.layouts) {
      partial.element_misses.emplace_back(layout.total_elements(), 0);
    }
    return partial;
  };
  const std::size_t n = trace.events.size();
  const std::size_t grain =
      par::grain_for(n, static_cast<std::size_t>(par::num_threads()),
                     std::size_t{1} << 15);
  const std::span<const std::int32_t> containers =
      trace.events.container_column();
  const std::span<const std::int64_t> flats = trace.events.flat_column();
  Partial merged = par::parallel_reduce(
      n, grain, zero(),
      [&](std::size_t begin, std::size_t end) {
        Partial local = zero();
        for (std::size_t i = begin; i < end; ++i) {
          const std::int32_t container = containers[i];
          MissStats& stats = local.per_container[container];
          const std::int64_t distance = distances.distances[i];
          if (distance == kInfiniteDistance) {
            ++stats.cold;
            ++local.element_misses[container][flats[i]];
          } else if (distance >= threshold_lines) {
            // LRU with `threshold_lines` resident lines would have
            // evicted this line before the re-reference: capacity miss
            // (paper §V-F b).
            ++stats.capacity;
            ++local.element_misses[container][flats[i]];
          } else {
            ++stats.hits;
          }
        }
        return local;
      },
      [](Partial& acc, Partial&& block) {
        for (std::size_t c = 0; c < acc.per_container.size(); ++c) {
          acc.per_container[c].cold += block.per_container[c].cold;
          acc.per_container[c].capacity += block.per_container[c].capacity;
          acc.per_container[c].hits += block.per_container[c].hits;
          for (std::size_t e = 0; e < acc.element_misses[c].size(); ++e) {
            acc.element_misses[c][e] += block.element_misses[c][e];
          }
        }
      });
  report.per_container = std::move(merged.per_container);
  report.element_misses = std::move(merged.element_misses);
  for (const MissStats& stats : report.per_container) {
    report.total.cold += stats.cold;
    report.total.capacity += stats.capacity;
    report.total.hits += stats.hits;
  }
  return report;
}

namespace {

struct CacheSet {
  std::list<std::int64_t> lru;  ///< Front = most recently used.
  std::unordered_map<std::int64_t, std::list<std::int64_t>::iterator> where;
};

// One set's LRU simulation over its own (time-ordered) event slice.
// A line maps to exactly one set, so cold/capacity classification and
// residency are fully independent per set — this is what makes the
// per-set parallel pass below exact, not an approximation.
void simulate_set(std::span<const std::int32_t> containers,
                  const std::vector<std::size_t>& event_indices,
                  std::span<const std::int64_t> lines, std::int64_t ways,
                  std::vector<MissStats>& per_container) {
  CacheSet set;
  std::unordered_set<std::int64_t> ever_seen;
  for (std::size_t index : event_indices) {
    const std::int64_t line = lines[index];
    MissStats& stats = per_container[containers[index]];
    auto it = set.where.find(line);
    if (it != set.where.end()) {
      ++stats.hits;
      set.lru.splice(set.lru.begin(), set.lru, it->second);
      continue;
    }
    // Miss: cold if this line was never resident before.
    if (ever_seen.insert(line).second) {
      ++stats.cold;
    } else {
      ++stats.capacity;  // Includes conflict misses when num_sets > 1.
    }
    set.lru.push_front(line);
    set.where[line] = set.lru.begin();
    if (static_cast<std::int64_t>(set.lru.size()) > ways) {
      set.where.erase(set.lru.back());
      set.lru.pop_back();
    }
  }
}

// Resolved cache geometry shared by both entry points.
struct Geometry {
  std::int64_t ways = 0;
  std::int64_t num_sets = 1;
};

Geometry resolve_geometry(const CacheConfig& config) {
  if (config.line_size <= 0 || config.total_size <= 0) {
    throw std::invalid_argument("simulate_cache: bad cache geometry");
  }
  const std::int64_t total_lines = config.total_size / config.line_size;
  if (total_lines <= 0) {
    throw std::invalid_argument("simulate_cache: cache smaller than a line");
  }
  Geometry geometry;
  geometry.ways = config.ways;
  if (geometry.ways == 0) {
    geometry.ways = total_lines;  // Fully associative.
  } else {
    geometry.num_sets = total_lines / geometry.ways;
    if (geometry.num_sets <= 0) {
      throw std::invalid_argument(
          "simulate_cache: associativity exceeds cache size");
    }
  }
  return geometry;
}

CacheSimResult simulate_cache_lines(const AccessTrace& trace,
                                    const CacheConfig& config,
                                    std::span<const std::int64_t> lines) {
  const Geometry geometry = resolve_geometry(config);
  const std::int64_t num_sets = geometry.num_sets;

  CacheSimResult result;
  result.config = config;
  result.per_container.resize(trace.layouts.size());

  // Bucket events by cache set (serial; time order preserved per set).
  const std::size_t n = trace.events.size();
  const std::span<const std::int32_t> containers =
      trace.events.container_column();
  std::vector<std::vector<std::size_t>> set_events(num_sets);
  for (std::size_t i = 0; i < n; ++i) {
    set_events[lines[i] % num_sets].push_back(i);
  }

  // Per-set LRU simulation, parallel over sets. Stats reduce by addition
  // in set order; sums commute, so the result matches the interleaved
  // serial simulation exactly.
  std::vector<std::vector<MissStats>> per_set(num_sets);
  par::parallel_for(
      static_cast<std::size_t>(num_sets), 1,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t s = begin; s < end; ++s) {
          per_set[s].resize(trace.layouts.size());
          simulate_set(containers, set_events[s], lines, geometry.ways,
                       per_set[s]);
        }
      });
  for (const std::vector<MissStats>& stats : per_set) {
    for (std::size_t c = 0; c < stats.size(); ++c) {
      result.per_container[c].cold += stats[c].cold;
      result.per_container[c].capacity += stats[c].capacity;
      result.per_container[c].hits += stats[c].hits;
    }
  }

  for (const MissStats& stats : result.per_container) {
    result.total.cold += stats.cold;
    result.total.capacity += stats.capacity;
    result.total.hits += stats.hits;
  }
  return result;
}

}  // namespace

CacheSimResult simulate_cache(const AccessTrace& trace,
                              const CacheConfig& config) {
  resolve_geometry(config);  // Geometry errors before any line work.
  // Line resolution happens once in the shared LineTable materializer
  // (parallel over events), then the per-set simulation consumes it.
  const LineTable table = build_line_table(trace, config.line_size);
  return simulate_cache_lines(trace, config, table.lines);
}

CacheSimResult simulate_cache(const AccessTrace& trace,
                              const CacheConfig& config,
                              const LineTable& table) {
  if (table.line_size != config.line_size) {
    throw std::invalid_argument(
        "simulate_cache: LineTable line size does not match cache config");
  }
  return simulate_cache_lines(trace, config, table.lines);
}

}  // namespace dmv::sim
