#include <list>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "dmv/sim/sim.hpp"

namespace dmv::sim {

MissReport classify_misses(const AccessTrace& trace,
                           const StackDistanceResult& distances,
                           std::int64_t threshold_lines) {
  if (threshold_lines <= 0) {
    throw std::invalid_argument(
        "classify_misses: threshold must be positive");
  }
  MissReport report;
  report.threshold_lines = threshold_lines;
  report.per_container.resize(trace.layouts.size());
  report.element_misses.reserve(trace.layouts.size());
  for (const ConcreteLayout& layout : trace.layouts) {
    report.element_misses.emplace_back(layout.total_elements(), 0);
  }

  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    const AccessEvent& event = trace.events[i];
    MissStats& stats = report.per_container[event.container];
    const std::int64_t distance = distances.distances[i];
    if (distance == kInfiniteDistance) {
      ++stats.cold;
      ++report.element_misses[event.container][event.flat];
    } else if (distance >= threshold_lines) {
      // LRU with `threshold_lines` resident lines would have evicted this
      // line before the re-reference: capacity miss (paper §V-F b).
      ++stats.capacity;
      ++report.element_misses[event.container][event.flat];
    } else {
      ++stats.hits;
    }
  }
  for (const MissStats& stats : report.per_container) {
    report.total.cold += stats.cold;
    report.total.capacity += stats.capacity;
    report.total.hits += stats.hits;
  }
  return report;
}

CacheSimResult simulate_cache(const AccessTrace& trace,
                              const CacheConfig& config) {
  if (config.line_size <= 0 || config.total_size <= 0) {
    throw std::invalid_argument("simulate_cache: bad cache geometry");
  }
  const std::int64_t total_lines = config.total_size / config.line_size;
  if (total_lines <= 0) {
    throw std::invalid_argument("simulate_cache: cache smaller than a line");
  }
  std::int64_t ways = config.ways;
  std::int64_t num_sets = 1;
  if (ways == 0) {
    ways = total_lines;  // Fully associative.
  } else {
    num_sets = total_lines / ways;
    if (num_sets <= 0) {
      throw std::invalid_argument(
          "simulate_cache: associativity exceeds cache size");
    }
  }

  struct CacheSet {
    std::list<std::int64_t> lru;  ///< Front = most recently used.
    std::unordered_map<std::int64_t, std::list<std::int64_t>::iterator>
        where;
  };
  std::vector<CacheSet> sets(num_sets);
  std::unordered_set<std::int64_t> ever_seen;

  CacheSimResult result;
  result.config = config;
  result.per_container.resize(trace.layouts.size());

  for (const AccessEvent& event : trace.events) {
    const ConcreteLayout& layout = trace.layouts[event.container];
    const std::int64_t address =
        layout.byte_address(layout.unflatten(event.flat));
    const std::int64_t line = address / config.line_size;
    CacheSet& set = sets[line % num_sets];
    MissStats& stats = result.per_container[event.container];

    auto it = set.where.find(line);
    if (it != set.where.end()) {
      ++stats.hits;
      set.lru.splice(set.lru.begin(), set.lru, it->second);
      continue;
    }
    // Miss: cold if this line was never resident anywhere before.
    if (ever_seen.insert(line).second) {
      ++stats.cold;
    } else {
      ++stats.capacity;  // Includes conflict misses when num_sets > 1.
    }
    set.lru.push_front(line);
    set.where[line] = set.lru.begin();
    if (static_cast<std::int64_t>(set.lru.size()) > ways) {
      set.where.erase(set.lru.back());
      set.lru.pop_back();
    }
  }

  for (const MissStats& stats : result.per_container) {
    result.total.cold += stats.cold;
    result.total.capacity += stats.capacity;
    result.total.hits += stats.hits;
  }
  return result;
}

}  // namespace dmv::sim
