#include <map>
#include <set>

#include "dmv/analysis/analysis.hpp"
#include "dmv/sim/sim.hpp"

namespace dmv::sim {

std::map<std::size_t, std::int64_t> physical_edge_bytes(
    const State& state, const AccessTrace& trace, const MissReport& report,
    const SymbolMap& symbols, int line_size) {
  // Logical traffic per container over this state, used to apportion the
  // container's physical bytes across its edges.
  std::map<std::string, std::int64_t> logical_total;
  std::vector<std::int64_t> edge_logical(state.edges().size(), 0);
  for (std::size_t e = 0; e < state.edges().size(); ++e) {
    const ir::Edge& edge = state.edges()[e];
    if (edge.memlet.is_empty()) continue;
    edge_logical[e] =
        analysis::total_edge_elements(state, edge).evaluate(symbols);
    logical_total[edge.memlet.data] += edge_logical[e];
  }
  std::map<std::size_t, std::int64_t> result;
  for (std::size_t e = 0; e < state.edges().size(); ++e) {
    const ir::Edge& edge = state.edges()[e];
    if (edge.memlet.is_empty()) continue;
    const int container = trace.container_id(edge.memlet.data);
    const std::int64_t physical =
        report.per_container[container].misses() * line_size;
    const std::int64_t total = logical_total[edge.memlet.data];
    result[e] = total == 0 ? 0 : physical * edge_logical[e] / total;
  }
  return result;
}

IterationLineStats iteration_line_stats(const AccessTrace& trace,
                                        int container,
                                        const LineTable& table) {
  const int line_size = table.line_size;
  const ConcreteLayout& layout = trace.layouts[container];
  const std::int64_t elements_per_line =
      std::max<std::int64_t>(1, line_size / layout.element_size);

  // Group this container's events by tasklet execution, reusing the
  // table's per-event line ids.
  std::map<std::int64_t, std::map<std::int64_t, std::set<std::int64_t>>>
      per_execution;  // execution -> line -> distinct elements used
  const std::size_t n = trace.events.size();
  const std::span<const std::int32_t> containers =
      trace.events.container_column();
  const std::span<const std::int64_t> flats = trace.events.flat_column();
  const std::span<const std::int64_t> executions =
      trace.events.execution_column();
  for (std::size_t i = 0; i < n; ++i) {
    if (containers[i] != container) continue;
    per_execution[executions[i]][table.lines[i]].insert(flats[i]);
  }

  IterationLineStats stats;
  double line_sum = 0;
  double utilization_sum = 0;
  for (const auto& [execution, lines] : per_execution) {
    line_sum += static_cast<double>(lines.size());
    std::int64_t used = 0;
    for (const auto& [line, elements] : lines) {
      used += static_cast<std::int64_t>(elements.size());
    }
    utilization_sum +=
        static_cast<double>(used) /
        static_cast<double>(elements_per_line *
                            static_cast<std::int64_t>(lines.size()));
    ++stats.executions;
  }
  if (stats.executions > 0) {
    stats.mean_lines_per_execution =
        line_sum / static_cast<double>(stats.executions);
    stats.mean_line_utilization =
        utilization_sum / static_cast<double>(stats.executions);
  }
  return stats;
}

IterationLineStats iteration_line_stats(const AccessTrace& trace,
                                        int container, int line_size) {
  return iteration_line_stats(trace, container,
                              build_line_table(trace, line_size));
}

MovementEstimate physical_movement(const AccessTrace& trace,
                                   const MissReport& report, int line_size) {
  MovementEstimate estimate;
  estimate.line_size = line_size;
  estimate.bytes_per_container.reserve(trace.layouts.size());
  for (std::size_t c = 0; c < trace.layouts.size(); ++c) {
    // Every predicted miss pulls one full line from main memory (§V-F:
    // "multiplying the number of misses ... with the number of bytes per
    // cache line").
    const std::int64_t bytes =
        report.per_container[c].misses() * line_size;
    estimate.bytes_per_container.push_back(bytes);
    estimate.total_bytes += bytes;
  }
  return estimate;
}

}  // namespace dmv::sim
