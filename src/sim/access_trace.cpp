#include <algorithm>
#include <stdexcept>

#include "dmv/sim/sim.hpp"

namespace dmv::sim {

namespace {

using ir::Edge;
using ir::Node;
using ir::NodeId;
using ir::NodeKind;
using ir::Subset;

// Enumerates the concrete element index tuples of an evaluated subset in
// row-major order.
std::vector<layout::Index> subset_elements(const Subset& subset,
                                           const SymbolMap& env) {
  std::vector<std::array<std::int64_t, 3>> bounds;
  bounds.reserve(subset.ranges.size());
  for (const ir::Range& range : subset.ranges) {
    bounds.push_back({range.begin.evaluate(env), range.end.evaluate(env),
                      range.step.evaluate(env)});
  }
  std::vector<layout::Index> elements;
  // Iterative odometer over the (tiny) subset.
  std::vector<std::int64_t> cursor(bounds.size());
  for (std::size_t d = 0; d < bounds.size(); ++d) cursor[d] = bounds[d][0];
  if (bounds.empty()) return {layout::Index{}};
  for (;;) {
    elements.emplace_back(cursor);
    int d = static_cast<int>(bounds.size()) - 1;
    for (; d >= 0; --d) {
      cursor[d] += bounds[d][2];
      if (cursor[d] <= bounds[d][1]) break;
      cursor[d] = bounds[d][0];
    }
    if (d < 0) break;
  }
  return elements;
}

class Simulator {
 public:
  Simulator(const Sdfg& sdfg, const SymbolMap& symbols,
            const SimulationOptions& options)
      : sdfg_(sdfg), symbols_(symbols), options_(options) {}

  AccessTrace run() {
    place_containers();
    for (const State& state : sdfg_.states()) {
      order_ = state.topological_order();
      // Adjacency index: in_edges/out_edges scan all edges, which would
      // be paid once per tasklet per iteration otherwise.
      in_adjacency_.assign(state.num_nodes(), {});
      out_adjacency_.assign(state.num_nodes(), {});
      for (const Edge& edge : state.edges()) {
        out_adjacency_[edge.src].push_back(&edge);
        in_adjacency_[edge.dst].push_back(&edge);
      }
      execute_scope(state, ir::kNoNode, symbols_);
    }
    trace_.executions = execution_;
    return std::move(trace_);
  }

 private:
  void place_containers() {
    layout::AddressSpace space(options_.placement_alignment);
    for (const auto& [name, descriptor] : sdfg_.arrays()) {
      ConcreteLayout layout = ConcreteLayout::from(descriptor, symbols_);
      space.place(layout);
      container_ids_.emplace(name, static_cast<int>(trace_.layouts.size()));
      trace_.containers.push_back(name);
      trace_.layouts.push_back(std::move(layout));
    }
  }

  void emit(int container, const layout::Index& indices, bool is_write,
            NodeId tasklet) {
    const ConcreteLayout& layout = trace_.layouts[container];
    if (!layout.in_bounds(indices)) {
      std::string text;
      for (std::int64_t i : indices) text += std::to_string(i) + ",";
      throw std::out_of_range("simulate: access out of bounds on '" +
                              layout.name + "' at [" + text + "]");
    }
    AccessEvent event;
    event.container = container;
    event.flat = layout.flat_index(indices);
    event.is_write = is_write;
    event.timestep = timestep_++;
    event.execution = execution_;
    event.tasklet = tasklet;
    trace_.events.push_back(event);
  }

  void emit_subset(const ir::Memlet& memlet, const SymbolMap& env,
                   bool is_write, NodeId tasklet) {
    const int container = container_ids_.at(memlet.data);
    for (const layout::Index& element : subset_elements(memlet.subset, env)) {
      if (is_write && memlet.wcr != ir::Wcr::None && options_.wcr_reads) {
        emit(container, element, /*is_write=*/false, tasklet);
      }
      emit(container, element, is_write, tasklet);
    }
  }

  void execute_scope(const State& state, NodeId scope, const SymbolMap& env) {
    for (NodeId id : order_) {
      const Node& node = state.node(id);
      if (node.scope_parent != scope) continue;
      switch (node.kind) {
        case NodeKind::MapEntry: {
          IterationSpace space = IterationSpace::from(node.map, env);
          space.for_each([&](std::span<const std::int64_t> values) {
            SymbolMap inner = env;
            for (std::size_t p = 0; p < space.params.size(); ++p) {
              inner[space.params[p]] = values[p];
            }
            execute_scope(state, node.id, inner);
          });
          break;
        }
        case NodeKind::Tasklet:
          execute_tasklet(state, node, env);
          break;
        case NodeKind::Access:
          execute_copies(state, node, env);
          break;
        case NodeKind::MapExit:
          break;  // Writes are emitted at the producing tasklet.
      }
    }
  }

  void execute_tasklet(const State& state, const Node& node,
                       const SymbolMap& env) {
    (void)state;
    for (const Edge* edge : in_adjacency_[node.id]) {
      if (edge->memlet.is_empty()) continue;
      emit_subset(edge->memlet, env, /*is_write=*/false, node.id);
    }
    for (const Edge* edge : out_adjacency_[node.id]) {
      if (edge->memlet.is_empty()) continue;
      emit_subset(edge->memlet, env, /*is_write=*/true, node.id);
    }
    ++execution_;
  }

  // Access -> access copy edges: element-wise read of the source subset
  // paired with a write of the destination subset.
  void execute_copies(const State& state, const Node& node,
                      const SymbolMap& env) {
    for (const Edge* edge : out_adjacency_[node.id]) {
      if (edge->memlet.is_empty()) continue;
      const Node& dst = state.node(edge->dst);
      if (dst.kind != NodeKind::Access) continue;
      const int src_container = container_ids_.at(edge->memlet.data);
      const int dst_container = container_ids_.at(dst.data);
      const Subset& dst_subset = edge->memlet.other_subset.ranges.empty()
                                     ? edge->memlet.subset
                                     : edge->memlet.other_subset;
      std::vector<layout::Index> sources =
          subset_elements(edge->memlet.subset, env);
      std::vector<layout::Index> destinations =
          subset_elements(dst_subset, env);
      if (sources.size() != destinations.size()) {
        throw std::logic_error("simulate: copy subset size mismatch on '" +
                               edge->memlet.data + "'");
      }
      for (std::size_t i = 0; i < sources.size(); ++i) {
        emit(src_container, sources[i], /*is_write=*/false, ir::kNoNode);
        emit(dst_container, destinations[i], /*is_write=*/true, ir::kNoNode);
        ++execution_;
      }
    }
  }

  const Sdfg& sdfg_;
  const SymbolMap& symbols_;
  const SimulationOptions& options_;
  AccessTrace trace_;
  std::map<std::string, int> container_ids_;
  std::vector<NodeId> order_;
  std::vector<std::vector<const Edge*>> in_adjacency_;
  std::vector<std::vector<const Edge*>> out_adjacency_;
  std::int64_t timestep_ = 0;
  std::int64_t execution_ = 0;
};

}  // namespace

int AccessTrace::container_id(const std::string& name) const {
  for (std::size_t i = 0; i < containers.size(); ++i) {
    if (containers[i] == name) return static_cast<int>(i);
  }
  throw std::out_of_range("AccessTrace: unknown container '" + name + "'");
}

const ConcreteLayout& AccessTrace::layout_of(const std::string& name) const {
  return layouts[container_id(name)];
}

AccessTrace simulate(const Sdfg& sdfg, const SymbolMap& symbols,
                     const SimulationOptions& options) {
  return Simulator(sdfg, symbols, options).run();
}

}  // namespace dmv::sim
