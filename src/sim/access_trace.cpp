#include <algorithm>
#include <array>
#include <stdexcept>

#include "dmv/par/par.hpp"
#include "dmv/sim/sim.hpp"
#include "dmv/sim/trace_plan.hpp"
#include "dmv/symbolic/batched.hpp"

namespace dmv::sim {

namespace {

using ir::Edge;
using ir::Node;
using ir::NodeId;
using ir::NodeKind;
using ir::Subset;
using symbolic::BatchedCompiledExpr;
using symbolic::CompiledExpr;
using symbolic::LaneEnv;
using symbolic::SymbolTable;

// Enumerates the concrete element index tuples of an evaluated subset in
// row-major order.
std::vector<layout::Index> subset_elements(const Subset& subset,
                                           const SymbolMap& env) {
  std::vector<std::array<std::int64_t, 3>> bounds;
  bounds.reserve(subset.ranges.size());
  for (const ir::Range& range : subset.ranges) {
    bounds.push_back({range.begin.evaluate(env), range.end.evaluate(env),
                      range.step.evaluate(env)});
  }
  std::vector<layout::Index> elements;
  // Iterative odometer over the (tiny) subset.
  std::vector<std::int64_t> cursor(bounds.size());
  for (std::size_t d = 0; d < bounds.size(); ++d) cursor[d] = bounds[d][0];
  if (bounds.empty()) return {layout::Index{}};
  for (;;) {
    elements.emplace_back(cursor);
    int d = static_cast<int>(bounds.size()) - 1;
    for (; d >= 0; --d) {
      cursor[d] += bounds[d][2];
      if (cursor[d] <= bounds[d][1]) break;
      cursor[d] = bounds[d][0];
    }
    if (d < 0) break;
  }
  return elements;
}

// Container placement shared by the serial simulator and the parallel
// drivers (which place once up front and hand the layouts to every
// chunk). Iterates sdfg.arrays() — an ordered map — so the container
// index assignment is deterministic.
void place_containers_into(const Sdfg& sdfg, const SymbolMap& symbols,
                           const SimulationOptions& options,
                           AccessTrace& trace,
                           std::map<std::string, int>* ids) {
  layout::AddressSpace space(options.placement_alignment);
  for (const auto& [name, descriptor] : sdfg.arrays()) {
    ConcreteLayout layout = ConcreteLayout::from(descriptor, symbols);
    space.place(layout);
    if (ids) ids->emplace(name, static_cast<int>(trace.layouts.size()));
    trace.containers.push_back(name);
    trace.layouts.push_back(std::move(layout));
  }
}

class Simulator {
 public:
  Simulator(const Sdfg& sdfg, const SymbolMap& symbols,
            const SimulationOptions& options, EventSink* sink = nullptr)
      : sdfg_(sdfg), symbols_(symbols), options_(options), sink_(sink) {}

  AccessTrace run() {
    AccessTrace trace;
    run_into(trace);
    return trace;
  }

  void run_into(AccessTrace& trace) {
    // Reuse the caller's buffers: clear() keeps the event columns'
    // capacity, so a sweep pays the event allocation once.
    trace.containers.clear();
    trace.layouts.clear();
    trace.events.clear();
    trace.executions = 0;
    trace_ = &trace;
    place_containers_into(sdfg_, symbols_, options_, trace, &container_ids_);
    layouts_ = &trace.layouts;
    if (sink_) sink_->on_trace_header(trace);
    for (const State& state : sdfg_.states()) {
      // Topo order + adjacency built once per state (in_edges/out_edges
      // scan all edges, which would be paid per tasklet per iteration).
      schedule_ = ir::StateSchedule(state);
      if (options_.compiled) {
        compile_state(state);
        execute_scope_compiled(state, ir::kNoNode);
      } else {
        execute_scope(state, ir::kNoNode, symbols_);
      }
    }
    trace.executions = execution_;
    if (sink_) sink_->on_trace_end(execution_);
  }

  /// Generates exactly one plan chunk, starting mid-iteration-space with
  /// absolute timestep/execution stamps from the plan. `header` supplies
  /// the placed layouts; events go to `out` — written at their absolute
  /// slice indices when `absolute` (the pre-sized disjoint-slice path),
  /// appended otherwise (streaming chunk buffers, test validation).
  void run_chunk(const AccessTrace& header, const TraceChunk& chunk,
                 EventList& out, bool absolute) {
    layouts_ = &header.layouts;
    container_ids_.clear();
    for (std::size_t i = 0; i < header.containers.size(); ++i) {
      container_ids_.emplace(header.containers[i], static_cast<int>(i));
    }
    const State& state =
        sdfg_.states().at(static_cast<std::size_t>(chunk.state));
    schedule_ = ir::StateSchedule(state);
    timestep_ = chunk.event_offset;
    execution_ = chunk.execution_offset;
    out_ = &out;
    out_absolute_ = absolute;
    chunk_limit_ = chunk.event_offset + chunk.event_count;
    const Node& node = state.node(chunk.node);
    if (options_.compiled) {
      compile_state(state);
      switch (node.kind) {
        case NodeKind::MapEntry:
          execute_map_compiled(state, node, chunk.outer_begin,
                               chunk.outer_count);
          break;
        case NodeKind::Tasklet:
          execute_tasklet_compiled(state, node);
          break;
        case NodeKind::Access:
          execute_copies_compiled(state, node);
          break;
        case NodeKind::MapExit:
          break;
      }
    } else {
      switch (node.kind) {
        case NodeKind::MapEntry:
          execute_map(state, node, symbols_, chunk.outer_begin,
                      chunk.outer_count);
          break;
        case NodeKind::Tasklet:
          execute_tasklet(state, node, symbols_);
          break;
        case NodeKind::Access:
          execute_copies(state, node, symbols_);
          break;
        case NodeKind::MapExit:
          break;
      }
    }
    if (timestep_ != chunk.event_offset + chunk.event_count ||
        execution_ != chunk.execution_offset + chunk.execution_count) {
      throw std::logic_error(
          "simulate: trace plan chunk count mismatch (planner bug)");
    }
  }

 private:
  // -- Compiled execution engine -------------------------------------
  //
  // All map bounds and memlet subsets of a state are flattened ONCE to
  // CompiledExpr over a single slot table; iteration then runs against a
  // flat int64 environment with no SymbolMap copies and no per-element
  // allocation. Traversal order is identical to the interpreted engine,
  // so the emitted trace is bit-identical.

  struct CompiledRange {
    CompiledExpr begin, end, step;
  };
  struct CompiledSubset {
    std::vector<CompiledRange> ranges;
    int container = -1;
  };
  struct CompiledEdge {
    CompiledSubset subset;
    CompiledSubset other;  ///< other_subset; used by copy edges.
    bool has_other = false;
  };
  struct CompiledMap {
    std::vector<int> param_slots;
    std::vector<CompiledRange> bounds;
  };

  // -- Lane-batched innermost loops ----------------------------------
  //
  // For a map whose scope is pure tasklets, the innermost loop advances
  // `lane_width_` iteration points per step: every subset-bound
  // expression that reads the innermost parameter is evaluated for all
  // W lanes in one batched pass (symbolic/batched.hpp), expressions
  // invariant in that parameter are evaluated once per loop entry, and
  // the lanes are then drained in serial order through the ordinary
  // emit path — so the event stream is bit-identical to the scalar
  // loop. Expressions are deduplicated by interned node, which collapses
  // e.g. every "k" bound of a stencil's memlets into one batched
  // evaluation. Batches where any active lane would throw are replayed
  // through the scalar engine so the exception (and every event before
  // it) lands exactly where serial order puts it.

  /// Where a subset bound's value lives during the drain: lane-varying
  /// results sit in `lane_out_` (index * W + lane), invariants in
  /// `invariant_vals_` (index).
  struct BatchedRef {
    std::int32_t index = 0;
    bool varying = false;
  };
  struct BatchedRangeRef {
    BatchedRef begin, end, step;
  };
  /// One memlet of one tasklet, in emission order.
  struct BatchedRun {
    int container = -1;
    bool is_write = false;
    bool wcr_read = false;
    std::vector<BatchedRangeRef> ranges;
  };
  struct BatchedTasklet {
    NodeId id = ir::kNoNode;
    std::vector<BatchedRun> runs;
  };
  struct BatchedScope {
    bool enabled = false;
    int lane_slot = -1;  ///< Innermost map parameter's slot.
    std::vector<BatchedCompiledExpr> varying;
    std::vector<CompiledExpr> invariant;
    std::vector<BatchedTasklet> tasklets;
  };

  /// Analyzes `node`'s scope for lane batching; leaves the scope
  /// disabled (scalar fallback) on any construct the drain cannot
  /// reproduce exactly: nested maps, access-node copies, or an empty
  /// iteration signature.
  void build_batched_scope(const State& state, const Node& node) {
    const CompiledMap& map = compiled_maps_[node.id];
    if (map.bounds.empty()) return;
    BatchedScope& scope = batched_scopes_[node.id];
    for (NodeId id : schedule_.order) {
      const Node& child = state.node(id);
      if (child.scope_parent != node.id) continue;
      if (child.kind == NodeKind::MapExit) continue;
      if (child.kind != NodeKind::Tasklet) return;
    }
    const int lane_slot = map.param_slots.back();
    // Dedup by interned node: one evaluation per distinct expression,
    // shared by every memlet bound that names it.
    std::unordered_map<const symbolic::ExprNode*, BatchedRef> seen;
    auto ref_of = [&](const symbolic::Expr& expr) {
      const symbolic::ExprNode* key = &expr.node();
      auto it = seen.find(key);
      if (it != seen.end()) return it->second;
      CompiledExpr compiled = CompiledExpr::compile(expr, table_);
      BatchedRef ref;
      if (compiled.reads_any({lane_slot})) {
        ref.varying = true;
        ref.index = static_cast<std::int32_t>(scope.varying.size());
        scope.varying.emplace_back(std::move(compiled));
      } else {
        ref.varying = false;
        ref.index = static_cast<std::int32_t>(scope.invariant.size());
        scope.invariant.push_back(std::move(compiled));
      }
      seen.emplace(key, ref);
      return ref;
    };
    auto add_run = [&](BatchedTasklet& tasklet, const Edge* edge,
                       bool is_write) {
      BatchedRun run;
      run.container = container_ids_.at(edge->memlet.data);
      run.is_write = is_write;
      run.wcr_read = is_write && edge->memlet.wcr != ir::Wcr::None &&
                     options_.wcr_reads;
      run.ranges.reserve(edge->memlet.subset.ranges.size());
      for (const ir::Range& range : edge->memlet.subset.ranges) {
        run.ranges.push_back(
            {ref_of(range.begin), ref_of(range.end), ref_of(range.step)});
      }
      tasklet.runs.push_back(std::move(run));
    };
    // Tasklets in schedule order, each memlet in execute_tasklet_compiled
    // order (in-edges then out-edges, empty memlets skipped) — the drain
    // replays this list verbatim.
    for (NodeId id : schedule_.order) {
      const Node& child = state.node(id);
      if (child.scope_parent != node.id ||
          child.kind != NodeKind::Tasklet) {
        continue;
      }
      BatchedTasklet tasklet;
      tasklet.id = id;
      for (const Edge* edge : schedule_.in_adjacency[id]) {
        if (edge->memlet.is_empty()) continue;
        add_run(tasklet, edge, /*is_write=*/false);
      }
      for (const Edge* edge : schedule_.out_adjacency[id]) {
        if (edge->memlet.is_empty()) continue;
        add_run(tasklet, edge, /*is_write=*/true);
      }
      scope.tasklets.push_back(std::move(tasklet));
    }
    scope.lane_slot = lane_slot;
    scope.enabled = true;
  }

  CompiledRange compile_range(const ir::Range& range) {
    CompiledRange compiled;
    compiled.begin = CompiledExpr::compile(range.begin, table_);
    compiled.end = CompiledExpr::compile(range.end, table_);
    compiled.step = CompiledExpr::compile(range.step, table_);
    return compiled;
  }

  CompiledSubset compile_subset(const Subset& subset,
                                const std::string& data) {
    CompiledSubset compiled;
    compiled.ranges.reserve(subset.ranges.size());
    for (const ir::Range& range : subset.ranges) {
      compiled.ranges.push_back(compile_range(range));
    }
    compiled.container = container_ids_.at(data);
    return compiled;
  }

  void compile_state(const State& state) {
    table_ = SymbolTable();
    compiled_maps_.assign(state.num_nodes(), {});
    compiled_edges_.assign(state.edges().size(), {});
    for (const Node& node : state.nodes()) {
      if (node.kind != NodeKind::MapEntry) continue;
      CompiledMap& map = compiled_maps_[node.id];
      map.param_slots.reserve(node.map.params.size());
      for (const std::string& param : node.map.params) {
        map.param_slots.push_back(table_.intern(param));
      }
      map.bounds.reserve(node.map.ranges.size());
      for (const ir::Range& range : node.map.ranges) {
        map.bounds.push_back(compile_range(range));
      }
    }
    for (std::size_t e = 0; e < state.edges().size(); ++e) {
      const Edge& edge = state.edges()[e];
      if (edge.memlet.is_empty()) continue;
      CompiledEdge& compiled = compiled_edges_[e];
      compiled.subset = compile_subset(edge.memlet.subset, edge.memlet.data);
      const Node& dst = state.node(edge.dst);
      if (!edge.memlet.other_subset.ranges.empty() &&
          dst.kind == NodeKind::Access) {
        compiled.other =
            compile_subset(edge.memlet.other_subset, dst.data);
        compiled.has_other = true;
      }
    }
    lane_width_ = std::clamp(options_.lane_width, 1, symbolic::kMaxLaneWidth);
    batched_scopes_.assign(state.num_nodes(), {});
    if (lane_width_ > 1) {
      for (const Node& node : state.nodes()) {
        if (node.kind != NodeKind::MapEntry) continue;
        build_batched_scope(state, node);
      }
    }
    table_.bind(symbols_, env_values_, env_bound_);
  }

  std::size_t edge_index(const State& state, const Edge* edge) const {
    return static_cast<std::size_t>(edge - state.edges().data());
  }

  std::int64_t eval(const CompiledExpr& expr) {
    return expr.evaluate(env_values_.data(), env_bound_.data(),
                         &table_.names());
  }

  void execute_scope_compiled(const State& state, NodeId scope) {
    for (NodeId id : schedule_.order) {
      const Node& node = state.node(id);
      if (node.scope_parent != scope) continue;
      switch (node.kind) {
        case NodeKind::MapEntry:
          execute_map_compiled(state, node);
          break;
        case NodeKind::Tasklet:
          execute_tasklet_compiled(state, node);
          break;
        case NodeKind::Access:
          execute_copies_compiled(state, node);
          break;
        case NodeKind::MapExit:
          break;  // Writes are emitted at the producing tasklet.
      }
    }
  }

  /// `outer_count` < 0 runs the full map; otherwise only the outermost
  /// dimension's ordinals [outer_begin, outer_begin + outer_count) run —
  /// the chunked writers' mid-iteration-space entry. The full run over
  /// ordinal slices partitioning [0, trips) visits the identical point
  /// sequence, which is what makes chunked output bit-identical.
  void execute_map_compiled(const State& state, const Node& node,
                            std::int64_t outer_begin = 0,
                            std::int64_t outer_count = -1) {
    const CompiledMap& map = compiled_maps_[node.id];
    // Save the parameter slots' outer bindings: a nested map may reuse a
    // parameter name, and the outer value must survive the inner scope
    // (the interpreted engine gets this from its per-scope env copies).
    std::vector<std::pair<std::int64_t, char>> saved;
    saved.reserve(map.param_slots.size());
    for (int slot : map.param_slots) {
      saved.emplace_back(env_values_[slot], env_bound_[slot]);
    }
    if (outer_count < 0) {
      iterate_map_compiled(state, node, map, 0);
    } else if (map.bounds.empty()) {
      // Zero-dimensional map: the planner models it as one outer ordinal.
      if (outer_begin == 0 && outer_count > 0) {
        execute_scope_compiled(state, node.id);
      }
    } else {
      for (std::size_t q = 0; q < map.param_slots.size(); ++q) {
        env_bound_[map.param_slots[q]] = 0;
      }
      const std::int64_t begin = eval(map.bounds[0].begin);
      const std::int64_t step = eval(map.bounds[0].step);
      if (step <= 0) {
        throw std::invalid_argument("IterationSpace: non-positive step");
      }
      const int slot = map.param_slots[0];
      const BatchedScope& scope = batched_scopes_[node.id];
      if (map.bounds.size() == 1 && scope.enabled) {
        // A 1-D chunk's outer-ordinal slice IS an innermost slice.
        execute_innermost_batched(state, node, scope,
                                  begin + outer_begin * step, outer_count,
                                  step);
      } else {
        for (std::int64_t o = outer_begin; o < outer_begin + outer_count;
             ++o) {
          env_values_[slot] = begin + o * step;
          env_bound_[slot] = 1;
          iterate_map_compiled(state, node, map, 1);
        }
      }
    }
    for (std::size_t p = 0; p < map.param_slots.size(); ++p) {
      env_values_[map.param_slots[p]] = saved[p].first;
      env_bound_[map.param_slots[p]] = saved[p].second;
    }
  }

  void iterate_map_compiled(const State& state, const Node& node,
                            const CompiledMap& map, std::size_t dim) {
    if (dim == map.bounds.size()) {
      execute_scope_compiled(state, node.id);
      return;
    }
    // This and inner parameters are out of scope while evaluating this
    // dimension's bounds (matches the interpreted env, which only holds
    // outer parameters here).
    for (std::size_t q = dim; q < map.param_slots.size(); ++q) {
      env_bound_[map.param_slots[q]] = 0;
    }
    const std::int64_t begin = eval(map.bounds[dim].begin);
    const std::int64_t end = eval(map.bounds[dim].end);
    const std::int64_t step = eval(map.bounds[dim].step);
    if (step <= 0) {
      throw std::invalid_argument("IterationSpace: non-positive step");
    }
    const int slot = map.param_slots[dim];
    const BatchedScope& scope = batched_scopes_[node.id];
    if (dim + 1 == map.bounds.size() && scope.enabled) {
      const std::int64_t trips =
          end >= begin ? (end - begin) / step + 1 : 0;
      execute_innermost_batched(state, node, scope, begin, trips, step);
      return;
    }
    for (std::int64_t v = begin; v <= end; v += step) {
      env_values_[slot] = v;
      env_bound_[slot] = 1;
      iterate_map_compiled(state, node, map, dim + 1);
    }
  }

  /// The scalar innermost loop over `count` points starting at `first`:
  /// the replay target when a batch would throw, and the exact loop the
  /// batched path must match byte for byte.
  void run_innermost_scalar(const State& state, const Node& node, int slot,
                            std::int64_t first, std::int64_t count,
                            std::int64_t step) {
    for (std::int64_t i = 0; i < count; ++i) {
      env_values_[slot] = first + i * step;
      env_bound_[slot] = 1;
      execute_scope_compiled(state, node.id);
    }
  }

  /// Runs `count` innermost iteration points (values first, first+step,
  /// ...) of a batchable scope, `lane_width_` lanes at a time. Bounds
  /// invariant in the lane parameter are evaluated once per entry (the
  /// scalar loop recomputes them per point against an identical
  /// environment, so the values — and any exception — are the same);
  /// lane-varying bounds are evaluated W lanes per dispatch; events then
  /// drain lane by lane through emit(), preserving serial order. The
  /// tail batch pads inactive lanes with the last active point's value —
  /// never out of the loop's domain — and ignores their faults.
  void execute_innermost_batched(const State& state, const Node& node,
                                 const BatchedScope& scope,
                                 std::int64_t begin, std::int64_t count,
                                 std::int64_t step) {
    if (count <= 0) return;
    const int W = lane_width_;
    const int slot = scope.lane_slot;
    invariant_vals_.resize(scope.invariant.size());
    try {
      for (std::size_t e = 0; e < scope.invariant.size(); ++e) {
        invariant_vals_[e] = eval(scope.invariant[e]);
      }
    } catch (...) {
      // An invariant bound throws on every point; the scalar loop
      // throws it at the first point, after zero events.
      run_innermost_scalar(state, node, slot, begin, count, step);
      return;
    }
    lane_env_.reset(env_values_, env_bound_, W);
    lane_out_.resize(scope.varying.size() * static_cast<std::size_t>(W));
    lane_param_.resize(static_cast<std::size_t>(W));
    for (std::int64_t base = 0; base < count; base += W) {
      const int active =
          static_cast<int>(std::min<std::int64_t>(W, count - base));
      for (int l = 0; l < W; ++l) {
        const std::int64_t o =
            base + std::min<std::int64_t>(l, active - 1);
        lane_param_[static_cast<std::size_t>(l)] = begin + o * step;
      }
      lane_env_.set_lanes(slot, lane_param_);
      std::uint32_t faults = 0;
      for (std::size_t e = 0; e < scope.varying.size(); ++e) {
        faults |= scope.varying[e].evaluate(
            lane_env_, lane_out_.data() + e * static_cast<std::size_t>(W));
      }
      const std::uint32_t active_mask =
          active >= 32 ? 0xffffffffu
                       : ((std::uint32_t{1} << active) - 1u);
      if ((faults & active_mask) != 0) {
        // Some active lane would throw: replay the batch scalar so the
        // exception fires at the exact point — after the exact events —
        // serial order produces.
        run_innermost_scalar(state, node, slot, begin + base * step, active,
                             step);
        continue;
      }
      for (int l = 0; l < active; ++l) {
        drain_lane(scope, l, W);
      }
    }
    // Leave the parameter as the scalar loop does: bound to the last
    // point (re-unbound by the next bounds evaluation anyway).
    env_values_[slot] = begin + (count - 1) * step;
    env_bound_[slot] = 1;
  }

  /// Emits one lane's events: every tasklet's memlet runs in order,
  /// bounds read from the batched results, elements walked by the same
  /// odometer as enumerate_subset.
  void drain_lane(const BatchedScope& scope, int lane, int width) {
    for (const BatchedTasklet& tasklet : scope.tasklets) {
      for (const BatchedRun& run : tasklet.runs) {
        auto& bounds = bounds_scratch_;
        bounds.clear();
        for (const BatchedRangeRef& range : run.ranges) {
          bounds.push_back({lane_value(range.begin, lane, width),
                            lane_value(range.end, lane, width),
                            lane_value(range.step, lane, width)});
        }
        layout::Index& cursor = cursor_scratch_;
        cursor.assign(bounds.size(), 0);
        for (std::size_t d = 0; d < bounds.size(); ++d) {
          cursor[d] = bounds[d][0];
        }
        if (bounds.empty()) {
          emit_run_element(run, cursor, tasklet.id);
          continue;
        }
        for (;;) {
          emit_run_element(run, cursor, tasklet.id);
          int d = static_cast<int>(bounds.size()) - 1;
          for (; d >= 0; --d) {
            cursor[d] += bounds[d][2];
            if (cursor[d] <= bounds[d][1]) break;
            cursor[d] = bounds[d][0];
          }
          if (d < 0) break;
        }
      }
      ++execution_;
    }
  }

  std::int64_t lane_value(const BatchedRef& ref, int lane, int width) const {
    return ref.varying
               ? lane_out_[static_cast<std::size_t>(ref.index) * width + lane]
               : invariant_vals_[static_cast<std::size_t>(ref.index)];
  }

  void emit_run_element(const BatchedRun& run, const layout::Index& element,
                        NodeId tasklet) {
    if (run.wcr_read) {
      emit(run.container, element, /*is_write=*/false, tasklet);
    }
    emit(run.container, element, run.is_write, tasklet);
  }

  // Evaluates a compiled subset's bounds into scratch and emits every
  // element directly — the allocation-free analogue of subset_elements.
  template <typename PerElement>
  void enumerate_subset(const CompiledSubset& subset, PerElement&& emit_at) {
    auto& bounds = bounds_scratch_;
    bounds.clear();
    for (const CompiledRange& range : subset.ranges) {
      bounds.push_back(
          {eval(range.begin), eval(range.end), eval(range.step)});
    }
    layout::Index& cursor = cursor_scratch_;
    cursor.assign(bounds.size(), 0);
    for (std::size_t d = 0; d < bounds.size(); ++d) cursor[d] = bounds[d][0];
    if (bounds.empty()) {
      emit_at(cursor);
      return;
    }
    for (;;) {
      emit_at(cursor);
      int d = static_cast<int>(bounds.size()) - 1;
      for (; d >= 0; --d) {
        cursor[d] += bounds[d][2];
        if (cursor[d] <= bounds[d][1]) break;
        cursor[d] = bounds[d][0];
      }
      if (d < 0) break;
    }
  }

  void emit_subset_compiled(const State& state, const Edge* edge,
                            bool is_write, NodeId tasklet) {
    const CompiledEdge& compiled =
        compiled_edges_[edge_index(state, edge)];
    const bool wcr_read = is_write && edge->memlet.wcr != ir::Wcr::None &&
                          options_.wcr_reads;
    const int container = compiled.subset.container;
    enumerate_subset(compiled.subset, [&](const layout::Index& element) {
      if (wcr_read) emit(container, element, /*is_write=*/false, tasklet);
      emit(container, element, is_write, tasklet);
    });
  }

  void execute_tasklet_compiled(const State& state, const Node& node) {
    for (const Edge* edge : schedule_.in_adjacency[node.id]) {
      if (edge->memlet.is_empty()) continue;
      emit_subset_compiled(state, edge, /*is_write=*/false, node.id);
    }
    for (const Edge* edge : schedule_.out_adjacency[node.id]) {
      if (edge->memlet.is_empty()) continue;
      emit_subset_compiled(state, edge, /*is_write=*/true, node.id);
    }
    ++execution_;
  }

  void execute_copies_compiled(const State& state, const Node& node) {
    for (const Edge* edge : schedule_.out_adjacency[node.id]) {
      if (edge->memlet.is_empty()) continue;
      const Node& dst = state.node(edge->dst);
      if (dst.kind != NodeKind::Access) continue;
      const CompiledEdge& compiled =
          compiled_edges_[edge_index(state, edge)];
      const CompiledSubset& src_subset = compiled.subset;
      const CompiledSubset& dst_subset =
          compiled.has_other ? compiled.other : compiled.subset;
      const int dst_container = compiled.has_other
                                    ? compiled.other.container
                                    : container_ids_.at(dst.data);
      // Enumerate both sides (copies are rare and top-level; the
      // simplicity of materializing them beats a dual odometer).
      std::vector<layout::Index> sources;
      enumerate_subset(src_subset, [&](const layout::Index& element) {
        sources.push_back(element);
      });
      std::vector<layout::Index> destinations;
      enumerate_subset(dst_subset, [&](const layout::Index& element) {
        destinations.push_back(element);
      });
      if (sources.size() != destinations.size()) {
        throw std::logic_error("simulate: copy subset size mismatch on '" +
                               edge->memlet.data + "'");
      }
      for (std::size_t i = 0; i < sources.size(); ++i) {
        emit(src_subset.container, sources[i], /*is_write=*/false,
             ir::kNoNode);
        emit(dst_container, destinations[i], /*is_write=*/true, ir::kNoNode);
        ++execution_;
      }
    }
  }

  // -- Shared infrastructure -----------------------------------------

  void emit(int container, const layout::Index& indices, bool is_write,
            NodeId tasklet) {
    const ConcreteLayout& layout = (*layouts_)[container];
    if (!layout.in_bounds(indices)) {
      std::string text;
      for (std::int64_t i : indices) text += std::to_string(i) + ",";
      throw std::out_of_range("simulate: access out of bounds on '" +
                              layout.name + "' at [" + text + "]");
    }
    AccessEvent event;
    event.container = container;
    event.flat = layout.flat_index(indices);
    event.is_write = is_write;
    event.timestep = timestep_++;
    event.execution = execution_;
    event.tasklet = tasklet;
    if (sink_) {
      sink_->on_event(event);  // Streaming: nothing is materialized.
    } else if (out_) {
      // Chunk mode: the plan fixed this chunk's event range up front, so
      // emitting past it means the planner under-counted — fail loudly
      // instead of corrupting a neighboring slice.
      if (event.timestep >= chunk_limit_) {
        throw std::logic_error(
            "simulate: trace plan chunk overflow (planner bug)");
      }
      if (out_absolute_) {
        out_->set(static_cast<std::size_t>(event.timestep), event);
      } else {
        out_->push_back(event);
      }
    } else {
      trace_->events.push_back(event);
    }
  }

  // -- Interpreted execution engine (reference; options.compiled=false) --

  void emit_subset(const ir::Memlet& memlet, const SymbolMap& env,
                   bool is_write, NodeId tasklet) {
    const int container = container_ids_.at(memlet.data);
    for (const layout::Index& element : subset_elements(memlet.subset, env)) {
      if (is_write && memlet.wcr != ir::Wcr::None && options_.wcr_reads) {
        emit(container, element, /*is_write=*/false, tasklet);
      }
      emit(container, element, is_write, tasklet);
    }
  }

  void execute_scope(const State& state, NodeId scope, const SymbolMap& env) {
    for (NodeId id : schedule_.order) {
      const Node& node = state.node(id);
      if (node.scope_parent != scope) continue;
      switch (node.kind) {
        case NodeKind::MapEntry:
          execute_map(state, node, env);
          break;
        case NodeKind::Tasklet:
          execute_tasklet(state, node, env);
          break;
        case NodeKind::Access:
          execute_copies(state, node, env);
          break;
        case NodeKind::MapExit:
          break;  // Writes are emitted at the producing tasklet.
      }
    }
  }

  /// Interpreted analogue of execute_map_compiled: `outer_count` < 0
  /// runs the full map, otherwise the outermost-ordinal slice
  /// [outer_begin, outer_begin + outer_count).
  void execute_map(const State& state, const Node& node, const SymbolMap& env,
                   std::int64_t outer_begin = 0,
                   std::int64_t outer_count = -1) {
    IterationSpace space = IterationSpace::from(node.map, env);
    auto body = [&](std::span<const std::int64_t> values) {
      SymbolMap inner = env;
      for (std::size_t p = 0; p < space.params.size(); ++p) {
        inner[space.params[p]] = values[p];
      }
      execute_scope(state, node.id, inner);
    };
    if (outer_count < 0) {
      space.for_each(body);
    } else {
      space.for_each_slice(outer_begin, outer_count, body);
    }
  }

  void execute_tasklet(const State& state, const Node& node,
                       const SymbolMap& env) {
    (void)state;
    for (const Edge* edge : schedule_.in_adjacency[node.id]) {
      if (edge->memlet.is_empty()) continue;
      emit_subset(edge->memlet, env, /*is_write=*/false, node.id);
    }
    for (const Edge* edge : schedule_.out_adjacency[node.id]) {
      if (edge->memlet.is_empty()) continue;
      emit_subset(edge->memlet, env, /*is_write=*/true, node.id);
    }
    ++execution_;
  }

  // Access -> access copy edges: element-wise read of the source subset
  // paired with a write of the destination subset.
  void execute_copies(const State& state, const Node& node,
                      const SymbolMap& env) {
    for (const Edge* edge : schedule_.out_adjacency[node.id]) {
      if (edge->memlet.is_empty()) continue;
      const Node& dst = state.node(edge->dst);
      if (dst.kind != NodeKind::Access) continue;
      const int src_container = container_ids_.at(edge->memlet.data);
      const int dst_container = container_ids_.at(dst.data);
      const Subset& dst_subset = edge->memlet.other_subset.ranges.empty()
                                     ? edge->memlet.subset
                                     : edge->memlet.other_subset;
      std::vector<layout::Index> sources =
          subset_elements(edge->memlet.subset, env);
      std::vector<layout::Index> destinations =
          subset_elements(dst_subset, env);
      if (sources.size() != destinations.size()) {
        throw std::logic_error("simulate: copy subset size mismatch on '" +
                               edge->memlet.data + "'");
      }
      for (std::size_t i = 0; i < sources.size(); ++i) {
        emit(src_container, sources[i], /*is_write=*/false, ir::kNoNode);
        emit(dst_container, destinations[i], /*is_write=*/true, ir::kNoNode);
        ++execution_;
      }
    }
  }

  const Sdfg& sdfg_;
  const SymbolMap& symbols_;
  const SimulationOptions& options_;
  EventSink* sink_ = nullptr;
  AccessTrace* trace_ = nullptr;
  /// Placed layouts events resolve against: the owned trace's layouts in
  /// a full run, the shared header's in chunk mode.
  const std::vector<ConcreteLayout>* layouts_ = nullptr;
  /// Chunk mode only: target list, write discipline, and the absolute
  /// event index one past the chunk's slice.
  EventList* out_ = nullptr;
  bool out_absolute_ = false;
  std::int64_t chunk_limit_ = 0;
  std::map<std::string, int> container_ids_;
  ir::StateSchedule schedule_;
  SymbolTable table_;
  std::vector<std::int64_t> env_values_;
  std::vector<char> env_bound_;
  std::vector<CompiledMap> compiled_maps_;
  std::vector<CompiledEdge> compiled_edges_;
  /// Lane batching (indexed by node id; disabled entries fall back to
  /// the scalar loop). Scratch buffers are reused across loop entries.
  std::vector<BatchedScope> batched_scopes_;
  LaneEnv lane_env_;
  std::vector<std::int64_t> lane_out_;        ///< [varying index * W + lane].
  std::vector<std::int64_t> invariant_vals_;  ///< [invariant index].
  std::vector<std::int64_t> lane_param_;      ///< W point values, scratch.
  int lane_width_ = 1;
  std::vector<std::array<std::int64_t, 3>> bounds_scratch_;
  layout::Index cursor_scratch_;
  std::int64_t timestep_ = 0;
  std::int64_t execution_ = 0;
};

}  // namespace

int AccessTrace::container_id(const std::string& name) const {
  for (std::size_t i = 0; i < containers.size(); ++i) {
    if (containers[i] == name) return static_cast<int>(i);
  }
  throw std::out_of_range("AccessTrace: unknown container '" + name + "'");
}

const ConcreteLayout& AccessTrace::layout_of(const std::string& name) const {
  return layouts[container_id(name)];
}

namespace {

// Below this many total events, per-chunk setup (state schedule +
// compilation per chunk) outweighs the parallel win.
constexpr std::int64_t kMinParallelEvents = 8192;

// Parallel generation is worth attempting at all: it is requested, more
// than one thread would run it, and we are not already inside a pool
// task (where parallel constructs serialize and the plan is pure
// overhead).
bool parallel_trace_enabled(const SimulationOptions& options) {
  return options.parallel_trace && par::num_threads() > 1 &&
         !par::in_parallel_region();
}

bool plan_is_worthwhile(const TracePlan& plan) {
  return plan.parallelizable && plan.chunks.size() > 1 &&
         plan.total_events >= kMinParallelEvents;
}

}  // namespace

AccessTrace simulate(const Sdfg& sdfg, const SymbolMap& symbols,
                     const SimulationOptions& options) {
  AccessTrace trace;
  simulate_into(sdfg, symbols, options, trace);
  return trace;
}

void simulate_into(const Sdfg& sdfg, const SymbolMap& symbols,
                   const SimulationOptions& options, AccessTrace& trace,
                   TraceArena* arena) {
  if (parallel_trace_enabled(options)) {
    TracePlan local_plan;
    TracePlan& plan = arena ? arena->plan : local_plan;
    plan_trace_into(sdfg, symbols, options, 0, plan);
    if (plan_is_worthwhile(plan)) {
      trace.containers.clear();
      trace.layouts.clear();
      trace.executions = 0;
      place_containers_into(sdfg, symbols, options, trace, nullptr);
      // Size the columns once from the plan total; every chunk then
      // writes only its disjoint [event_offset, event_offset +
      // event_count) slice, so no writer ever moves another's memory.
      trace.events.resize(static_cast<std::size_t>(plan.total_events));
      par::parallel_for(plan.chunks.size(), 1,
                        [&](std::size_t begin, std::size_t end) {
                          for (std::size_t c = begin; c < end; ++c) {
                            Simulator chunk_sim(sdfg, symbols, options);
                            chunk_sim.run_chunk(trace, plan.chunks[c],
                                                trace.events,
                                                /*absolute=*/true);
                          }
                        });
      trace.executions = plan.total_executions;
      return;
    }
  }
  Simulator(sdfg, symbols, options).run_into(trace);
}

AccessTrace simulate_stream(const Sdfg& sdfg, const SymbolMap& symbols,
                            EventSink& sink, const SimulationOptions& options,
                            TraceArena* arena) {
  if (parallel_trace_enabled(options)) {
    TracePlan local_plan;
    TracePlan& plan = arena ? arena->plan : local_plan;
    plan_trace_into(sdfg, symbols, options, 0, plan);
    if (plan_is_worthwhile(plan)) {
      AccessTrace header;
      place_containers_into(sdfg, symbols, options, header, nullptr);
      sink.on_trace_header(header);
      // Ordered hand-off: producers fill per-chunk buffers out of order;
      // the sequencer (ordered_pipeline's consumer side, this thread)
      // drains them to the sink in chunk order. Events carry absolute
      // timestep/execution stamps, so the sink sees simulate()'s exact
      // serial call sequence. window = threads + 1 keeps every producer
      // busy while the chunk being drained stays untouched.
      const std::size_t window =
          static_cast<std::size_t>(par::num_threads()) + 1;
      std::vector<EventList> local_buffers;
      std::vector<EventList>& buffers =
          arena ? arena->chunk_buffers : local_buffers;
      if (buffers.size() < window) buffers.resize(window);
      par::ordered_pipeline(
          plan.chunks.size(), window,
          [&](std::size_t c) {
            EventList& buffer = buffers[c % window];
            buffer.clear();
            Simulator chunk_sim(sdfg, symbols, options);
            chunk_sim.run_chunk(header, plan.chunks[c], buffer,
                                /*absolute=*/false);
          },
          [&](std::size_t c) {
            const EventList& buffer = buffers[c % window];
            const std::size_t n = buffer.size();
            for (std::size_t i = 0; i < n; ++i) sink.on_event(buffer[i]);
          });
      sink.on_trace_end(plan.total_executions);
      header.executions = plan.total_executions;
      return header;
    }
  }
  AccessTrace header;
  Simulator(sdfg, symbols, options, &sink).run_into(header);
  return header;
}

void simulate_chunk(const Sdfg& sdfg, const SymbolMap& symbols,
                    const SimulationOptions& options,
                    const AccessTrace& header, const TraceChunk& chunk,
                    EventList& out) {
  Simulator chunk_sim(sdfg, symbols, options);
  chunk_sim.run_chunk(header, chunk, out, /*absolute=*/false);
}

void simulate_chunk(const Sdfg& sdfg, const SymbolMap& symbols,
                    const SimulationOptions& options,
                    const AccessTrace& header, const TraceChunk& chunk,
                    EventList& out, bool absolute) {
  Simulator chunk_sim(sdfg, symbols, options);
  chunk_sim.run_chunk(header, chunk, out, absolute);
}

void place_containers(const Sdfg& sdfg, const SymbolMap& symbols,
                      const SimulationOptions& options, AccessTrace& trace) {
  place_containers_into(sdfg, symbols, options, trace, nullptr);
}

}  // namespace dmv::sim
