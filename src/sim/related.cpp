#include <map>
#include <set>

#include "dmv/par/par.hpp"
#include "dmv/sim/sim.hpp"

namespace dmv::sim {

std::vector<std::int64_t> AccessCounts::total(int container) const {
  std::vector<std::int64_t> sum = reads.at(container);
  const std::vector<std::int64_t>& w = writes.at(container);
  for (std::size_t i = 0; i < sum.size(); ++i) sum[i] += w[i];
  return sum;
}

namespace {

AccessCounts zero_counts(const AccessTrace& trace) {
  AccessCounts counts;
  counts.reads.reserve(trace.layouts.size());
  counts.writes.reserve(trace.layouts.size());
  for (const ConcreteLayout& layout : trace.layouts) {
    counts.reads.emplace_back(layout.total_elements(), 0);
    counts.writes.emplace_back(layout.total_elements(), 0);
  }
  return counts;
}

void add_counts(AccessCounts& into, const AccessCounts& from) {
  for (std::size_t c = 0; c < into.reads.size(); ++c) {
    for (std::size_t i = 0; i < into.reads[c].size(); ++i) {
      into.reads[c][i] += from.reads[c][i];
    }
    for (std::size_t i = 0; i < into.writes[c].size(); ++i) {
      into.writes[c][i] += from.writes[c][i];
    }
  }
}

// Shards the event range into one full-size accumulator per block and
// sums the blocks in order. Each accumulator is heavy (per-element
// arrays for every container), so the block count is capped by the
// thread knob; that makes the partition thread-dependent, which is safe
// here because integer additions commute — any partition joined in any
// order reproduces the serial counts bit for bit.
template <typename PerEvent>
AccessCounts sharded_counts(const AccessTrace& trace, PerEvent&& per_event) {
  const std::size_t n = trace.events.size();
  const std::size_t grain =
      par::grain_for(n, static_cast<std::size_t>(par::num_threads()),
                     std::size_t{1} << 15);
  return par::parallel_reduce(
      n, grain, zero_counts(trace),
      [&](std::size_t begin, std::size_t end) {
        AccessCounts local = zero_counts(trace);
        for (std::size_t i = begin; i < end; ++i) {
          per_event(trace.events[i], local);
        }
        return local;
      },
      [](AccessCounts& acc, AccessCounts&& block) {
        add_counts(acc, block);
      });
}

}  // namespace

AccessCounts count_accesses(const AccessTrace& trace) {
  return sharded_counts(trace,
                        [](const AccessEvent& event, AccessCounts& counts) {
                          if (event.is_write) {
                            ++counts.writes[event.container][event.flat];
                          } else {
                            ++counts.reads[event.container][event.flat];
                          }
                        });
}

AccessCounts related_accesses(const AccessTrace& trace,
                              const std::vector<Selection>& selected) {
  // Pass 1: find every tasklet-execution instance that touches a selected
  // element. Multiple selections stack additively, so an execution
  // touching two selected elements contributes twice (matching the
  // paper's "stacking the number of related accesses"). Per-block weight
  // maps merge by addition, so the parallel merge equals the serial scan.
  const std::size_t n = trace.events.size();
  using WeightMap = std::map<std::int64_t, std::int64_t>;
  const std::size_t grain = par::grain_for(n, 64, std::size_t{1} << 15);
  WeightMap execution_weight = par::parallel_reduce(
      n, grain, WeightMap{},
      [&](std::size_t begin, std::size_t end) {
        WeightMap local;
        for (std::size_t i = begin; i < end; ++i) {
          const AccessEvent& event = trace.events[i];
          for (const Selection& selection : selected) {
            if (event.container != selection.container) continue;
            for (std::int64_t flat : selection.flats) {
              if (event.flat == flat) {
                ++local[event.execution];
              }
            }
          }
        }
        return local;
      },
      [](WeightMap& acc, WeightMap&& block) {
        for (const auto& [execution, weight] : block) {
          acc[execution] += weight;
        }
      });
  // Pass 2: accumulate all accesses of those executions.
  return sharded_counts(
      trace, [&](const AccessEvent& event, AccessCounts& counts) {
        auto it = execution_weight.find(event.execution);
        if (it == execution_weight.end()) return;
        if (event.is_write) {
          counts.writes[event.container][event.flat] += it->second;
        } else {
          counts.reads[event.container][event.flat] += it->second;
        }
      });
}

}  // namespace dmv::sim
