#include <set>

#include "dmv/sim/sim.hpp"

namespace dmv::sim {

std::vector<std::int64_t> AccessCounts::total(int container) const {
  std::vector<std::int64_t> sum = reads.at(container);
  const std::vector<std::int64_t>& w = writes.at(container);
  for (std::size_t i = 0; i < sum.size(); ++i) sum[i] += w[i];
  return sum;
}

namespace {

AccessCounts zero_counts(const AccessTrace& trace) {
  AccessCounts counts;
  counts.reads.reserve(trace.layouts.size());
  counts.writes.reserve(trace.layouts.size());
  for (const ConcreteLayout& layout : trace.layouts) {
    counts.reads.emplace_back(layout.total_elements(), 0);
    counts.writes.emplace_back(layout.total_elements(), 0);
  }
  return counts;
}

}  // namespace

AccessCounts count_accesses(const AccessTrace& trace) {
  AccessCounts counts = zero_counts(trace);
  for (const AccessEvent& event : trace.events) {
    if (event.is_write) {
      ++counts.writes[event.container][event.flat];
    } else {
      ++counts.reads[event.container][event.flat];
    }
  }
  return counts;
}

AccessCounts related_accesses(const AccessTrace& trace,
                              const std::vector<Selection>& selected) {
  // Pass 1: find every tasklet-execution instance that touches a selected
  // element. Multiple selections stack additively, so an execution
  // touching two selected elements contributes twice (matching the
  // paper's "stacking the number of related accesses").
  std::map<std::int64_t, std::int64_t> execution_weight;
  for (const AccessEvent& event : trace.events) {
    for (const Selection& selection : selected) {
      if (event.container != selection.container) continue;
      for (std::int64_t flat : selection.flats) {
        if (event.flat == flat) {
          ++execution_weight[event.execution];
        }
      }
    }
  }
  // Pass 2: accumulate all accesses of those executions.
  AccessCounts counts = zero_counts(trace);
  for (const AccessEvent& event : trace.events) {
    auto it = execution_weight.find(event.execution);
    if (it == execution_weight.end()) continue;
    if (event.is_write) {
      counts.writes[event.container][event.flat] += it->second;
    } else {
      counts.reads[event.container][event.flat] += it->second;
    }
  }
  return counts;
}

}  // namespace dmv::sim
