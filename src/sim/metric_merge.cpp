#include "metric_merge.hpp"

#include <algorithm>
#include <limits>

#include "dmv/par/par.hpp"

namespace dmv::sim::merge {

namespace {

// Worker-partition caps. All of them bound setup/merge overhead, none
// of them affect results (every phase is exact at any partition count):
//   * distance segments pay ~n * (P + 1) / 2 total Fenwick build work,
//   * cache partitions each scan the whole line column once,
//   * consumer segments each hold per-element partial arrays.
constexpr std::size_t kMaxDistanceSegments = 8;
constexpr std::size_t kMaxCachePartitions = 8;
constexpr std::size_t kMaxConsumerSegments = 8;
constexpr std::size_t kMaxPrevSegments = 16;
// Below this many events per segment, more segments only add overhead.
constexpr std::size_t kMinSegmentEvents = 4096;
// Per-consumer-segment partial arrays are capped at this many bytes in
// total (fewer segments for element-heavy traces).
constexpr std::size_t kPartialBudgetBytes = std::size_t{128} << 20;
// Dense slice-local last-seen tables are capped at this many total
// entries across all live slots (hash fallback above).
constexpr std::int64_t kLocalDenseEntries = std::int64_t{1} << 25;
// Flat MRU-first array LRU up to this associativity; list + hash above.
constexpr std::int64_t kSmallWays = 64;

std::size_t threads() {
  return static_cast<std::size_t>(std::max(1, par::num_threads()));
}

}  // namespace

void LineDeriver::reset(const std::vector<layout::ConcreteLayout>& layouts,
                        int line_size) {
  addressing_ = detail::addressing_for(layouts);
  line_size_ = line_size;
  base_.resize(layouts.size());
  esize_.resize(layouts.size());
  bool fast = line_size > 0 && (line_size & (line_size - 1)) == 0;
  for (std::size_t c = 0; c < addressing_.size(); ++c) {
    base_[c] = addressing_[c].base;
    esize_[c] = addressing_[c].element_size;
    fast = fast && addressing_[c].contiguous && addressing_[c].base >= 0;
  }
  shift_ = -1;
  if (fast) {
    int shift = 0;
    while ((1 << shift) != line_size) ++shift;
    shift_ = shift;
  }
}

void LineDeriver::derive(const std::int32_t* containers,
                         const std::int64_t* flats, std::size_t begin,
                         std::size_t end, std::int64_t* out) const {
  if (shift_ >= 0) {
    const std::int64_t* base = base_.data();
    const std::int64_t* esize = esize_.data();
    const int shift = shift_;
    for (std::size_t i = begin; i < end; ++i) {
      const std::size_t c = static_cast<std::size_t>(containers[i]);
      out[i] = (base[c] + flats[i] * esize[c]) >> shift;
    }
    return;
  }
  for (std::size_t i = begin; i < end; ++i) {
    out[i] = addressing_[static_cast<std::size_t>(containers[i])].line_of(
        flats[i], line_size_);
  }
}

void PrevBuilder::begin(Scratch& scratch, std::size_t n, std::int64_t lo,
                        std::int64_t span, std::size_t slots) {
  lo_ = lo;
  span_ = span;
  dense_local_ =
      span <= kLocalDenseEntries / static_cast<std::int64_t>(
                                       std::max<std::size_t>(1, slots));
  scratch.prev.resize(n);
  scratch.global_last.assign(static_cast<std::size_t>(span), -1);
  if (scratch.local_seen.size() < slots) scratch.local_seen.resize(slots);
  if (scratch.boundaries.size() < slots) scratch.boundaries.resize(slots);
}

void PrevBuilder::local_slice(Scratch& scratch, const std::int64_t* lines,
                              std::size_t begin, std::size_t end,
                              std::size_t slot) const {
  LocalSeen& seen = scratch.local_seen[slot];
  std::vector<Boundary>& boundary = scratch.boundaries[slot];
  boundary.clear();
  if (dense_local_) {
    seen.reset_dense(lo_, span_);
  } else {
    seen.reset_hash(end - begin);
  }
  std::int64_t* prev = scratch.prev.data();
  for (std::size_t i = begin; i < end; ++i) {
    const std::int64_t line = lines[i];
    const std::int64_t prior =
        seen.exchange(line, static_cast<std::int64_t>(i));
    if (prior >= 0) {
      prev[i] = prior;
    } else {
      boundary.push_back({line, static_cast<std::int64_t>(i), 0});
    }
  }
  for (Boundary& b : boundary) b.last = seen.get(b.line);
}

void PrevBuilder::stitch_slice(Scratch& scratch, std::size_t slot) const {
  std::int64_t* prev = scratch.prev.data();
  std::int64_t* global_last = scratch.global_last.data();
  for (const Boundary& b : scratch.boundaries[slot]) {
    const std::size_t at = static_cast<std::size_t>(b.line - lo_);
    prev[static_cast<std::size_t>(b.first)] = global_last[at];
    global_last[at] = b.last;
  }
}

void compute_prev(Scratch& scratch, std::span<const std::int64_t> lines,
                  std::int64_t lo, std::int64_t span) {
  const std::size_t n = lines.size();
  const std::size_t parts =
      segment_count(n, std::min(threads(), kMaxPrevSegments),
                    kMinSegmentEvents);
  PrevBuilder builder;
  builder.begin(scratch, n, lo, span, parts);
  par::parallel_tasks(parts, [&](std::size_t k) {
    builder.local_slice(scratch, lines.data(), segment_begin(n, parts, k),
                        segment_begin(n, parts, k + 1), k);
  });
  for (std::size_t k = 0; k < parts; ++k) builder.stitch_slice(scratch, k);
}

bool needs_prev_pass(std::size_t n) {
  return segment_count(n, std::min(threads(), kMaxDistanceSegments),
                       kMinSegmentEvents) > 1;
}

void widen_bounds(std::span<const std::int64_t> lines, std::int64_t& lo,
                  std::int64_t& hi) {
  struct MinMax {
    std::int64_t lo;
    std::int64_t hi;
  };
  const MinMax folded = par::parallel_reduce(
      lines.size(), std::size_t{1} << 16, MinMax{lo, hi},
      [&](std::size_t begin, std::size_t end) {
        MinMax local{std::numeric_limits<std::int64_t>::max(),
                     std::numeric_limits<std::int64_t>::min()};
        for (std::size_t i = begin; i < end; ++i) {
          local.lo = std::min(local.lo, lines[i]);
          local.hi = std::max(local.hi, lines[i]);
        }
        return local;
      },
      [](MinMax& acc, MinMax&& block) {
        acc.lo = std::min(acc.lo, block.lo);
        acc.hi = std::max(acc.hi, block.hi);
      });
  lo = folded.lo;
  hi = folded.hi;
}

namespace {

// Phase B over one segment [s, e): rebuild the serial Fenwick state at
// event s from the next-occurrence array, then run the exact serial
// Olken update loop. With one segment `next` is not needed (null).
void count_segment(Scratch& scratch, std::size_t k, std::size_t s,
                   std::size_t e, bool use_next) {
  Fenwick32& fen = scratch.fenwicks[k];
  fen.reset_marked(e, use_next ? scratch.next.data() : nullptr,
                   use_next ? s : 0, static_cast<std::int64_t>(s));
  const std::int64_t* prev = scratch.prev.data();
  std::int64_t* distances = scratch.distances.data();
  for (std::size_t i = s; i < e; ++i) {
    const std::int64_t p = prev[i];
    std::int64_t distance;
    if (p < 0) {
      distance = kInfiniteDistance;
    } else {
      const std::size_t position = static_cast<std::size_t>(p);
      distance = fen.range(position + 1, i);
      fen.add(position, -1);
    }
    fen.add(i, +1);
    distances[i] = distance;
  }
}

// Single-segment phase B with no phase A: the fused last-seen Olken
// loop over the line column. The running last table holds exactly
// prev[i] when event i is processed, so the arithmetic — and every
// resulting distance — is identical to count_segment over one segment;
// this variant just avoids materializing prev in a separate scan.
void count_all_fused(Scratch& scratch, std::span<const std::int64_t> lines,
                     std::int64_t lo, std::int64_t span) {
  const std::size_t n = lines.size();
  Fenwick32& fen = scratch.fenwicks[0];
  fen.reset_marked(n, nullptr, 0, 0);
  scratch.global_last.assign(static_cast<std::size_t>(span), -1);
  std::int64_t* last = scratch.global_last.data();
  std::int64_t* distances = scratch.distances.data();
  // Every mark sits at a position < i (each line's most recent
  // occurrence), so range(p + 1, i) == distinct_lines - prefix(p):
  // one tree descent per event instead of two.
  std::int64_t distinct = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::int64_t& slot = last[static_cast<std::size_t>(lines[i] - lo)];
    const std::int64_t p = slot;
    std::int64_t distance;
    if (p < 0) {
      distance = kInfiniteDistance;
      ++distinct;
    } else {
      const std::size_t position = static_cast<std::size_t>(p);
      distance = distinct - fen.prefix(position);
      fen.add(position, -1);
    }
    fen.add(i, +1);
    slot = static_cast<std::int64_t>(i);
    distances[i] = distance;
  }
}

// One cache partition: scan the whole line column, simulate only the
// sets in [set_begin, set_begin + set_count). A line maps to exactly
// one set, so partitions touch disjoint LRU state and disjoint `seen`
// bytes, and each per-set access subsequence equals the serial one.
void cache_partition_pass(const detail::CacheGeometry& geometry,
                          std::span<const std::int32_t> containers,
                          std::span<const std::int64_t> cache_lines,
                          std::int64_t cache_lo, std::size_t num_containers,
                          std::int64_t set_begin, std::int64_t set_count,
                          CachePartition& part,
                          std::vector<std::uint8_t>& seen) {
  part.per_container.assign(num_containers, {});
  const std::int64_t ways = geometry.ways;
  const std::int64_t num_sets = geometry.num_sets;
  const bool small = ways <= kSmallWays;
  if (small) {
    part.small.assign(
        static_cast<std::size_t>(set_count * ways), -1);
    part.wide.clear();
  } else {
    part.wide.clear();
    part.wide.resize(static_cast<std::size_t>(set_count));
    part.small.clear();
  }
  const bool pow2 = (num_sets & (num_sets - 1)) == 0;
  const std::int64_t mask = num_sets - 1;
  const std::size_t n = cache_lines.size();
  std::uint8_t* seen_data = seen.data();
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t line = cache_lines[i];
    const std::int64_t set = pow2 ? (line & mask) : (line % num_sets);
    const std::uint64_t local =
        static_cast<std::uint64_t>(set - set_begin);
    if (local >= static_cast<std::uint64_t>(set_count)) continue;
    MissStats& stats =
        part.per_container[static_cast<std::size_t>(containers[i])];
    if (small) {
      std::int64_t* entry =
          part.small.data() + static_cast<std::size_t>(local) *
                                  static_cast<std::size_t>(ways);
      std::int64_t found = -1;
      for (std::int64_t w = 0; w < ways; ++w) {
        const std::int64_t resident = entry[w];
        if (resident == line) {
          found = w;
          break;
        }
        if (resident < 0) break;  // Empty tail — not resident.
      }
      if (found >= 0) {
        ++stats.hits;
        for (std::int64_t w = found; w > 0; --w) entry[w] = entry[w - 1];
        entry[0] = line;
      } else {
        std::uint8_t& was_seen =
            seen_data[static_cast<std::size_t>(line - cache_lo)];
        if (!was_seen) {
          was_seen = 1;
          ++stats.cold;
        } else {
          ++stats.capacity;
        }
        for (std::int64_t w = ways - 1; w > 0; --w) entry[w] = entry[w - 1];
        entry[0] = line;
      }
    } else {
      WideSet& set_state = part.wide[static_cast<std::size_t>(local)];
      auto it = set_state.where.find(line);
      if (it != set_state.where.end()) {
        ++stats.hits;
        set_state.lru.splice(set_state.lru.begin(), set_state.lru,
                             it->second);
      } else {
        std::uint8_t& was_seen =
            seen_data[static_cast<std::size_t>(line - cache_lo)];
        if (!was_seen) {
          was_seen = 1;
          ++stats.cold;
        } else {
          ++stats.capacity;
        }
        set_state.lru.push_front(line);
        set_state.where[line] = set_state.lru.begin();
        if (static_cast<std::int64_t>(set_state.lru.size()) > ways) {
          set_state.where.erase(set_state.lru.back());
          set_state.lru.pop_back();
        }
      }
    }
  }
}

// One consumer segment: tight fissioned loops per enabled consumer over
// the SoA columns, filling this segment's partial tallies only.
void consume_segment(const PipelineConfig& config, const AccessTrace& header,
                     std::span<const std::int32_t> containers,
                     std::span<const std::int64_t> flats,
                     std::span<const std::uint8_t> writes,
                     const std::int64_t* distances, std::size_t s,
                     std::size_t e, ConsumerPartial& part) {
  const std::size_t num_containers = header.layouts.size();
  if (config.counts) {
    part.reads.resize(num_containers);
    part.writes.resize(num_containers);
    for (std::size_t c = 0; c < num_containers; ++c) {
      part.reads[c].assign(
          static_cast<std::size_t>(header.layouts[c].total_elements()), 0);
      part.writes[c].assign(
          static_cast<std::size_t>(header.layouts[c].total_elements()), 0);
    }
    // Branch-free column select: rw[0] = per-container read arrays,
    // rw[1] = write arrays.
    std::vector<std::int64_t*> rw(2 * num_containers);
    for (std::size_t c = 0; c < num_containers; ++c) {
      rw[c] = part.reads[c].data();
      rw[num_containers + c] = part.writes[c].data();
    }
    for (std::size_t i = s; i < e; ++i) {
      const std::size_t c = static_cast<std::size_t>(containers[i]);
      ++rw[(writes[i] ? num_containers : 0) + c]
          [static_cast<std::size_t>(flats[i])];
    }
  }
  if (config.miss_threshold_lines > 0) {
    part.misses.assign(num_containers, {});
    part.element_misses.resize(num_containers);
    std::vector<std::int64_t*> element(num_containers);
    for (std::size_t c = 0; c < num_containers; ++c) {
      part.element_misses[c].assign(
          static_cast<std::size_t>(header.layouts[c].total_elements()), 0);
      element[c] = part.element_misses[c].data();
    }
    const std::int64_t threshold = config.miss_threshold_lines;
    for (std::size_t i = s; i < e; ++i) {
      const std::size_t c = static_cast<std::size_t>(containers[i]);
      const std::int64_t distance = distances[i];
      MissStats& stats = part.misses[c];
      if (distance == kInfiniteDistance) {
        ++stats.cold;
        ++element[c][static_cast<std::size_t>(flats[i])];
      } else if (distance >= threshold) {
        ++stats.capacity;
        ++element[c][static_cast<std::size_t>(flats[i])];
      } else {
        ++stats.hits;
      }
    }
  }
  if (config.element_stats) {
    part.cold.resize(num_containers);
    part.finite.resize(num_containers);
    for (std::size_t c = 0; c < num_containers; ++c) {
      part.cold[c].assign(
          static_cast<std::size_t>(header.layouts[c].total_elements()), 0);
      part.finite[c].clear();
    }
    for (std::size_t i = s; i < e; ++i) {
      const std::size_t c = static_cast<std::size_t>(containers[i]);
      const std::int64_t distance = distances[i];
      if (distance == kInfiniteDistance) {
        ++part.cold[c][static_cast<std::size_t>(flats[i])];
      } else {
        part.finite[c].emplace_back(flats[i], distance);
      }
    }
  }
}

// out[e] = sum over partials w (ascending) of (partials[w].*member)[c][e]
// — parallel over elements, deterministic (fixed addend order per slot).
void merge_element_arrays(
    std::vector<ConsumerPartial>& partials, std::size_t parts, std::size_t c,
    std::vector<std::vector<std::int64_t>> ConsumerPartial::* member,
    std::vector<std::int64_t>& out, std::size_t elements) {
  if (parts == 1) {
    // The lone segment's partial IS the merged array — take it.
    out = std::move((partials[0].*member)[c]);
    return;
  }
  out.assign(elements, 0);
  std::int64_t* out_data = out.data();
  par::parallel_for(elements, 1 << 14,
                    [&](std::size_t begin, std::size_t end) {
                      for (std::size_t w = 0; w < parts; ++w) {
                        const std::int64_t* partial =
                            (partials[w].*member)[c].data();
                        for (std::size_t i = begin; i < end; ++i) {
                          out_data[i] += partial[i];
                        }
                      }
                    });
}

}  // namespace

void finish_pass(const PipelineConfig& config, const AccessTrace& header,
                 std::span<const std::int32_t> containers,
                 std::span<const std::int64_t> flats,
                 std::span<const std::uint8_t> writes,
                 std::span<const std::int64_t> lines,
                 std::int64_t distance_lo, std::int64_t distance_span,
                 std::span<const std::int64_t> cache_lines,
                 std::int64_t cache_lo, std::int64_t cache_span,
                 std::int64_t executions, Scratch& scratch,
                 PipelineResult& result, int& partitions) {
  const std::size_t n = containers.size();
  const std::size_t num_containers = header.layouts.size();
  result = PipelineResult{};
  result.containers = header.containers;
  result.events = static_cast<std::int64_t>(n);
  result.executions = executions;

  // --- Distance phase B + set-partitioned cache (one task batch; both
  // only read phase A's output / the line columns). ------------------
  std::size_t distance_parts = 0;
  if (config.needs_distances()) {
    scratch.distances.resize(n);
    distance_parts = segment_count(
        n, std::min(threads(), kMaxDistanceSegments), kMinSegmentEvents);
    if (distance_parts > 1) {
      // next[] = inverse of prev[] (disjoint writes: at most one i has
      // prev[i] == j). Only needed to rebuild segment-start marks.
      scratch.next.resize(n);
      std::int64_t* next = scratch.next.data();
      const std::int64_t* prev = scratch.prev.data();
      par::parallel_for(n, std::size_t{1} << 16,
                        [&](std::size_t begin, std::size_t end) {
                          for (std::size_t i = begin; i < end; ++i) {
                            next[i] = std::numeric_limits<std::int64_t>::max();
                          }
                        });
      par::parallel_for(n, std::size_t{1} << 16,
                        [&](std::size_t begin, std::size_t end) {
                          for (std::size_t i = begin; i < end; ++i) {
                            const std::int64_t p = prev[i];
                            if (p >= 0) {
                              next[static_cast<std::size_t>(p)] =
                                  static_cast<std::int64_t>(i);
                            }
                          }
                        });
    }
    if (scratch.fenwicks.size() < distance_parts) {
      scratch.fenwicks.resize(distance_parts);
    }
  }
  detail::CacheGeometry geometry;
  std::size_t cache_parts = 0;
  if (config.cache) {
    geometry = detail::cache_geometry(*config.cache);
    cache_parts = std::min<std::size_t>(
        std::min(threads(), kMaxCachePartitions),
        static_cast<std::size_t>(geometry.num_sets));
    cache_parts = std::max<std::size_t>(cache_parts, 1);
    if (scratch.cache_parts.size() < cache_parts) {
      scratch.cache_parts.resize(cache_parts);
    }
    scratch.seen.assign(static_cast<std::size_t>(cache_span), 0);
  }
  par::parallel_tasks(distance_parts + cache_parts, [&](std::size_t t) {
    if (t < distance_parts) {
      if (distance_parts == 1) {
        // Phase A was skipped (needs_prev_pass was false): count with
        // the fused last-seen loop instead of reading scratch.prev.
        count_all_fused(scratch, lines, distance_lo, distance_span);
      } else {
        count_segment(scratch, t, segment_begin(n, distance_parts, t),
                      segment_begin(n, distance_parts, t + 1),
                      /*use_next=*/true);
      }
    } else {
      const std::size_t p = t - distance_parts;
      const std::size_t sets = static_cast<std::size_t>(geometry.num_sets);
      const std::int64_t set_begin =
          static_cast<std::int64_t>(segment_begin(sets, cache_parts, p));
      const std::int64_t set_end =
          static_cast<std::int64_t>(segment_begin(sets, cache_parts, p + 1));
      cache_partition_pass(geometry, containers, cache_lines, cache_lo,
                           num_containers, set_begin, set_end - set_begin,
                           scratch.cache_parts[p], scratch.seen);
    }
  });

  // --- Order-insensitive consumer segments. -------------------------
  std::size_t consumer_parts = 0;
  if (config.counts || config.miss_threshold_lines > 0 ||
      config.element_stats) {
    std::size_t partial_bytes = 0;
    std::size_t arrays = 0;
    if (config.counts) arrays += 2;
    if (config.miss_threshold_lines > 0) arrays += 1;
    if (config.element_stats) arrays += 1;
    for (const layout::ConcreteLayout& layout : header.layouts) {
      partial_bytes += static_cast<std::size_t>(layout.total_elements()) *
                       arrays * sizeof(std::int64_t);
    }
    consumer_parts = segment_count(
        n, std::min(threads(), kMaxConsumerSegments), kMinSegmentEvents);
    if (partial_bytes > 0) {
      consumer_parts = std::min<std::size_t>(
          consumer_parts,
          std::max<std::size_t>(1, kPartialBudgetBytes / partial_bytes));
    }
    if (scratch.partials.size() < consumer_parts) {
      scratch.partials.resize(consumer_parts);
    }
    const std::int64_t* distances = scratch.distances.data();
    par::parallel_tasks(consumer_parts, [&](std::size_t w) {
      consume_segment(config, header, containers, flats, writes, distances,
                      segment_begin(n, consumer_parts, w),
                      segment_begin(n, consumer_parts, w + 1),
                      scratch.partials[w]);
    });
  }

  // --- Ordered merge into the result. -------------------------------
  if (config.counts) {
    result.counts.reads.resize(num_containers);
    result.counts.writes.resize(num_containers);
    for (std::size_t c = 0; c < num_containers; ++c) {
      const std::size_t elements =
          static_cast<std::size_t>(header.layouts[c].total_elements());
      merge_element_arrays(scratch.partials, consumer_parts, c,
                           &ConsumerPartial::reads, result.counts.reads[c],
                           elements);
      merge_element_arrays(scratch.partials, consumer_parts, c,
                           &ConsumerPartial::writes, result.counts.writes[c],
                           elements);
    }
  }
  if (config.keep_distances) {
    result.distances.line_size = config.line_size;
    result.distances.distances.assign(scratch.distances.begin(),
                                      scratch.distances.begin() +
                                          static_cast<std::ptrdiff_t>(n));
  }
  if (config.miss_threshold_lines > 0) {
    result.misses.threshold_lines = config.miss_threshold_lines;
    result.misses.per_container.assign(num_containers, {});
    for (std::size_t w = 0; w < consumer_parts; ++w) {
      for (std::size_t c = 0; c < num_containers; ++c) {
        const MissStats& partial = scratch.partials[w].misses[c];
        MissStats& stats = result.misses.per_container[c];
        stats.cold += partial.cold;
        stats.capacity += partial.capacity;
        stats.hits += partial.hits;
      }
    }
    result.misses.element_misses.resize(num_containers);
    for (std::size_t c = 0; c < num_containers; ++c) {
      merge_element_arrays(scratch.partials, consumer_parts, c,
                           &ConsumerPartial::element_misses,
                           result.misses.element_misses[c],
                           static_cast<std::size_t>(
                               header.layouts[c].total_elements()));
    }
  }
  if (config.element_stats) {
    result.element_stats.assign(num_containers, {});
    scratch.finite.resize(num_containers);
    for (std::size_t c = 0; c < num_containers; ++c) {
      merge_element_arrays(scratch.partials, consumer_parts, c,
                           &ConsumerPartial::cold,
                           result.element_stats[c].cold_count,
                           static_cast<std::size_t>(
                               header.layouts[c].total_elements()));
      // Concatenating in ascending segment order reproduces the serial
      // event order of the (flat, distance) pairs exactly.
      std::vector<std::pair<std::int64_t, std::int64_t>>& merged =
          scratch.finite[c];
      if (consumer_parts == 1) {
        // The lone segment's pairs are already in serial event order.
        merged.swap(scratch.partials[0].finite[c]);
      } else {
        merged.clear();
        std::size_t total = 0;
        for (std::size_t w = 0; w < consumer_parts; ++w) {
          total += scratch.partials[w].finite[c].size();
        }
        merged.reserve(total);
        for (std::size_t w = 0; w < consumer_parts; ++w) {
          const auto& pairs = scratch.partials[w].finite[c];
          merged.insert(merged.end(), pairs.begin(), pairs.end());
        }
      }
    }
  }
  if (config.cache) {
    result.cache.config = *config.cache;
    result.cache.per_container.assign(num_containers, {});
    for (std::size_t p = 0; p < cache_parts; ++p) {
      for (std::size_t c = 0; c < num_containers; ++c) {
        const MissStats& partial = scratch.cache_parts[p].per_container[c];
        MissStats& stats = result.cache.per_container[c];
        stats.cold += partial.cold;
        stats.capacity += partial.capacity;
        stats.hits += partial.hits;
      }
    }
  }

  // --- Finalize: same folds, in the same order, as the serial pass's
  // FusedPass::finalize_into. ----------------------------------------
  if (config.element_stats) {
    for (std::size_t c = 0; c < num_containers; ++c) {
      detail::finalize_element_stats(
          header.layouts[c].total_elements(), scratch.finite[c],
          scratch.offsets, scratch.sorted, result.element_stats[c]);
    }
  }
  if (config.miss_threshold_lines > 0) {
    for (const MissStats& stats : result.misses.per_container) {
      result.misses.total.cold += stats.cold;
      result.misses.total.capacity += stats.capacity;
      result.misses.total.hits += stats.hits;
    }
  }
  if (config.cache) {
    for (const MissStats& stats : result.cache.per_container) {
      result.cache.total.cold += stats.cold;
      result.cache.total.capacity += stats.capacity;
      result.cache.total.hits += stats.hits;
    }
  }
  if (config.movement) {
    result.movement.line_size = config.line_size;
    result.movement.bytes_per_container.reserve(num_containers);
    for (const MissStats& stats : result.misses.per_container) {
      const std::int64_t bytes = stats.misses() * config.line_size;
      result.movement.bytes_per_container.push_back(bytes);
      result.movement.total_bytes += bytes;
    }
  }

  partitions = static_cast<int>(std::max(
      {std::size_t{1}, distance_parts, cache_parts, consumer_parts}));
}

}  // namespace dmv::sim::merge
