#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "dmv/sim/trace_io.hpp"

namespace dmv::sim {

namespace {

// Container names are one whitespace-delimited token in the header
// line, so whitespace (and the escape character itself) must be
// escaped: `\s` space, `\t` tab, `\n` newline, `\r` CR, `\\` backslash,
// and `\e` for the empty name. Names without those characters are
// written verbatim, keeping pre-escaping files byte-identical.
std::string escape_name(const std::string& name) {
  bool needs_escape = name.empty();
  for (const char c : name) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\\') {
      needs_escape = true;
      break;
    }
  }
  if (!needs_escape) return name;
  if (name.empty()) return "\\e";
  std::string out;
  out.reserve(name.size() + 4);
  for (const char c : name) {
    switch (c) {
      case ' ': out += "\\s"; break;
      case '\t': out += "\\t"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\\': out += "\\\\"; break;
      default: out += c;
    }
  }
  return out;
}

std::string unescape_name(const std::string& token, int line_number);

}  // namespace

void write_trace(const AccessTrace& trace, std::ostream& out) {
  out << "dmvtrace 1\n";
  for (std::size_t c = 0; c < trace.containers.size(); ++c) {
    const ConcreteLayout& layout = trace.layouts[c];
    out << "container " << escape_name(trace.containers[c]) << ' '
        << layout.element_size << ' ' << layout.base_address;
    for (std::int64_t extent : layout.shape) out << ' ' << extent;
    out << " ;";
    for (std::int64_t stride : layout.strides) out << ' ' << stride;
    out << '\n';
  }
  out << "events\n";
  for (const AccessEvent& event : trace.events) {
    out << event.timestep << ' ' << event.container << ' ' << event.flat
        << ' ' << (event.is_write ? 'w' : 'r') << ' ' << event.execution
        << ' ' << event.tasklet << '\n';
  }
  if (!out) throw std::runtime_error("write_trace: stream failure");
}

std::string trace_to_string(const AccessTrace& trace) {
  std::ostringstream out;
  write_trace(trace, out);
  return out.str();
}

namespace {

[[noreturn]] void fail(int line, const std::string& message) {
  throw std::runtime_error("read_trace: line " + std::to_string(line) +
                           ": " + message);
}

std::string unescape_name(const std::string& token, int line_number) {
  std::string out;
  out.reserve(token.size());
  for (std::size_t i = 0; i < token.size(); ++i) {
    if (token[i] != '\\') {
      out += token[i];
      continue;
    }
    if (i + 1 == token.size()) {
      fail(line_number, "dangling escape in container name");
    }
    switch (token[++i]) {
      case 's': out += ' '; break;
      case 't': out += '\t'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case '\\': out += '\\'; break;
      case 'e':
        if (token != "\\e") {
          fail(line_number, "'\\e' must be the whole container name");
        }
        break;
      default:
        fail(line_number, std::string("unknown escape '\\") + token[i] +
                              "' in container name");
    }
  }
  return out;
}

}  // namespace

AccessTrace read_trace(std::istream& in) {
  AccessTrace trace;
  std::string line;
  int line_number = 0;

  if (!std::getline(in, line)) fail(1, "empty input");
  ++line_number;
  if (line != "dmvtrace 1") fail(line_number, "bad magic/version");

  bool in_events = false;
  std::int64_t max_execution = -1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    if (!in_events) {
      if (line == "events") {
        in_events = true;
        continue;
      }
      std::istringstream fields(line);
      std::string keyword;
      fields >> keyword;
      if (keyword != "container") {
        fail(line_number, "expected 'container' or 'events'");
      }
      ConcreteLayout layout;
      std::string name_token;
      fields >> name_token >> layout.element_size >> layout.base_address;
      if (!fields) fail(line_number, "malformed container header");
      layout.name = unescape_name(name_token, line_number);
      std::string token;
      bool strides = false;
      while (fields >> token) {
        if (token == ";") {
          strides = true;
          continue;
        }
        try {
          const std::int64_t value = std::stoll(token);
          (strides ? layout.strides : layout.shape).push_back(value);
        } catch (const std::exception&) {
          fail(line_number, "bad integer '" + token + "'");
        }
      }
      if (layout.shape.size() != layout.strides.size()) {
        fail(line_number, "shape/strides rank mismatch");
      }
      if (layout.element_size <= 0) {
        fail(line_number, "bad element size");
      }
      trace.containers.push_back(layout.name);
      trace.layouts.push_back(std::move(layout));
      continue;
    }

    std::istringstream fields(line);
    AccessEvent event;
    char mode = '?';
    std::int64_t container = 0;
    std::int64_t tasklet = 0;
    fields >> event.timestep >> container >> event.flat >> mode >>
        event.execution >> tasklet;
    if (!fields || (mode != 'r' && mode != 'w')) {
      fail(line_number, "malformed event");
    }
    if (container < 0 ||
        container >= static_cast<std::int64_t>(trace.layouts.size())) {
      fail(line_number, "container index out of range");
    }
    if (event.flat < 0 ||
        event.flat >= trace.layouts[container].total_elements()) {
      fail(line_number, "element index out of range");
    }
    event.container = static_cast<std::int32_t>(container);
    event.is_write = mode == 'w';
    event.tasklet = static_cast<ir::NodeId>(tasklet);
    max_execution = std::max(max_execution, event.execution);
    trace.events.push_back(event);
  }
  if (!in_events) fail(line_number, "missing 'events' section");
  trace.executions = max_execution + 1;
  return trace;
}

AccessTrace trace_from_string(const std::string& text) {
  std::istringstream in(text);
  return read_trace(in);
}

}  // namespace dmv::sim
