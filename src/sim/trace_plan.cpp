#include "dmv/sim/trace_plan.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>

#include "dmv/par/par.hpp"
#include "dmv/symbolic/expr.hpp"

namespace dmv::sim {

namespace {

using ir::Edge;
using ir::Node;
using ir::NodeId;
using ir::NodeKind;
using ir::Subset;

// Splitting a map finer than this many events per chunk buys no wall
// time but pays per-chunk setup (state compilation, env binding).
constexpr std::int64_t kMinChunkEvents = 4096;

/// Internal: any condition the planner cannot model exactly. Callers of
/// plan_trace never see it — the plan just comes back non-parallelizable
/// and the serial engine reproduces the exact behavior (including where
/// an error, if any, surfaces).
struct PlanFailure : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct Counts {
  std::int64_t events = 0;
  std::int64_t executions = 0;
  Counts& operator+=(const Counts& other) {
    events += other.events;
    executions += other.executions;
    return *this;
  }
};

std::int64_t range_trips(std::int64_t begin, std::int64_t end,
                         std::int64_t step) {
  return end >= begin ? (end - begin) / step + 1 : 0;
}

// Elements enumerate_subset visits. The simulator's odometer always
// emits at least once per dimension (a degenerate dimension contributes
// its begin value), and an empty range list is one scalar element —
// hence max(1, trips) per dimension, not trips.
std::int64_t subset_size(const Subset& subset, const SymbolMap& env) {
  std::int64_t n = 1;
  for (const ir::Range& range : subset.ranges) {
    const std::int64_t begin = range.begin.evaluate(env);
    const std::int64_t end = range.end.evaluate(env);
    const std::int64_t step = range.step.evaluate(env);
    if (step <= 0) throw PlanFailure("non-positive subset step");
    n *= std::max<std::int64_t>(1, range_trips(begin, end, step));
  }
  return n;
}

class Planner {
 public:
  Planner(const Sdfg& sdfg, const SymbolMap& symbols,
          const SimulationOptions& options)
      : sdfg_(sdfg), symbols_(symbols), options_(options) {}

  void build(int max_chunks, TracePlan& plan) {
    const auto& states = sdfg_.states();
    for (std::size_t s = 0; s < states.size(); ++s) {
      const State& state = states[s];
      schedule_ = ir::StateSchedule(state);
      for (NodeId id : schedule_.order) {
        const Node& node = state.node(id);
        if (node.scope_parent != ir::kNoNode) continue;
        switch (node.kind) {
          case NodeKind::MapEntry:
            plan_map(static_cast<int>(s), state, node, max_chunks, plan);
            break;
          case NodeKind::Tasklet:
            add_chunk(static_cast<int>(s), id, 0, 1,
                      tasklet_counts(node, symbols_), plan);
            break;
          case NodeKind::Access:
            add_chunk(static_cast<int>(s), id, 0, 1,
                      copy_counts(state, node, symbols_), plan);
            break;
          case NodeKind::MapExit:
            break;
        }
      }
    }
  }

 private:
  void add_chunk(int state_index, NodeId node, std::int64_t outer_begin,
                 std::int64_t outer_count, const Counts& counts,
                 TracePlan& plan) {
    if (counts.events == 0 && counts.executions == 0) return;
    TraceChunk chunk;
    chunk.state = state_index;
    chunk.node = node;
    chunk.outer_begin = outer_begin;
    chunk.outer_count = outer_count;
    chunk.event_offset = plan.total_events;
    chunk.event_count = counts.events;
    chunk.execution_offset = plan.total_executions;
    chunk.execution_count = counts.executions;
    plan.chunks.push_back(chunk);
    plan.total_events += counts.events;
    plan.total_executions += counts.executions;
  }

  // -- Chunk partitioning of one top-level map ------------------------

  void plan_map(int state_index, const State& state, const Node& node,
                int max_chunks, TracePlan& plan) {
    const ir::MapInfo& map = node.map;
    SymbolMap env = symbols_;
    if (map.ranges.empty()) {
      // A zero-dimensional map runs its body once; one chunk covering
      // the single synthetic outer ordinal.
      add_chunk(state_index, node.id, 0, 1, scope_counts(state, node.id, env),
                plan);
      return;
    }
    // Outer bounds referencing the map's own parameters would be unbound
    // in the simulator too; punt so the serial engine surfaces it.
    const std::set<std::string> own(map.params.begin(), map.params.end());
    const ir::Range& outer = map.ranges[0];
    if (symbolic::depends_on_any(outer.begin, own) ||
        symbolic::depends_on_any(outer.end, own) ||
        symbolic::depends_on_any(outer.step, own)) {
      throw PlanFailure("outer bounds reference map parameters");
    }
    const std::int64_t begin = outer.begin.evaluate(env);
    const std::int64_t end = outer.end.evaluate(env);
    const std::int64_t step = outer.step.evaluate(env);
    if (step <= 0) throw PlanFailure("non-positive outer step");
    const std::int64_t n0 = range_trips(begin, end, step);
    if (n0 == 0) return;  // Zero-trip map: nothing emitted.

    // Per-outer-ordinal counts: one analytic product when the remaining
    // extents are invariant in the map's own parameters, otherwise an
    // exact enumeration per ordinal (triangular/tiled outer bounds).
    Counts uniform;
    bool is_uniform = false;
    std::vector<Counts> per;
    {
      std::set<std::string> unbound(map.params.begin(), map.params.end());
      if (std::optional<Counts> whole =
              analytic_map_counts(state, node, 0, env, unbound)) {
        // The analytic product is n0 * (inner trips) * (body counts), so
        // the division is exact.
        uniform.events = whole->events / n0;
        uniform.executions = whole->executions / n0;
        is_uniform = true;
      }
    }
    if (!is_uniform) {
      per.resize(static_cast<std::size_t>(n0));
      const std::string& param = map.params[0];
      const auto shadowed = env.find(param);
      const bool had = shadowed != env.end();
      const std::int64_t previous = had ? shadowed->second : 0;
      for (std::int64_t o = 0; o < n0; ++o) {
        env[param] = begin + o * step;
        per[static_cast<std::size_t>(o)] =
            map_counts_from_dim(state, node, 1, env);
      }
      if (had) {
        env[param] = previous;
      } else {
        env.erase(param);
      }
    }
    auto at = [&](std::int64_t o) -> const Counts& {
      return is_uniform ? uniform : per[static_cast<std::size_t>(o)];
    };
    std::int64_t map_events = 0;
    for (std::int64_t o = 0; o < n0; ++o) map_events += at(o).events;
    const std::int64_t goal = std::max(1, max_chunks);
    const std::int64_t target =
        std::max((map_events + goal - 1) / goal, kMinChunkEvents);
    std::int64_t chunk_begin = 0;
    Counts acc;
    for (std::int64_t o = 0; o < n0; ++o) {
      acc += at(o);
      if (acc.events >= target || o + 1 == n0) {
        add_chunk(state_index, node.id, chunk_begin, o + 1 - chunk_begin, acc,
                  plan);
        chunk_begin = o + 1;
        acc = Counts{};
      }
    }
  }

  // -- Exact counting (enumerating fallback) --------------------------

  Counts tasklet_counts(const Node& node, const SymbolMap& env) const {
    Counts counts;
    for (const Edge* edge : schedule_.in_adjacency[node.id]) {
      if (edge->memlet.is_empty()) continue;
      counts.events += subset_size(edge->memlet.subset, env);
    }
    for (const Edge* edge : schedule_.out_adjacency[node.id]) {
      if (edge->memlet.is_empty()) continue;
      const std::int64_t n = subset_size(edge->memlet.subset, env);
      const bool wcr_read =
          edge->memlet.wcr != ir::Wcr::None && options_.wcr_reads;
      counts.events += wcr_read ? 2 * n : n;
    }
    counts.executions = 1;
    return counts;
  }

  Counts copy_counts(const State& state, const Node& node,
                     const SymbolMap& env) const {
    Counts counts;
    for (const Edge* edge : schedule_.out_adjacency[node.id]) {
      if (edge->memlet.is_empty()) continue;
      if (state.node(edge->dst).kind != NodeKind::Access) continue;
      const std::int64_t n_src = subset_size(edge->memlet.subset, env);
      const Subset& dst_subset = edge->memlet.other_subset.ranges.empty()
                                     ? edge->memlet.subset
                                     : edge->memlet.other_subset;
      const std::int64_t n_dst = subset_size(dst_subset, env);
      if (n_src != n_dst) throw PlanFailure("copy subset size mismatch");
      counts.events += 2 * n_src;
      counts.executions += n_src;
    }
    return counts;
  }

  Counts scope_counts(const State& state, NodeId scope, SymbolMap& env) const {
    Counts total;
    for (NodeId id : schedule_.order) {
      const Node& node = state.node(id);
      if (node.scope_parent != scope) continue;
      switch (node.kind) {
        case NodeKind::MapEntry:
          total += map_counts_from_dim(state, node, 0, env);
          break;
        case NodeKind::Tasklet:
          total += tasklet_counts(node, env);
          break;
        case NodeKind::Access:
          total += copy_counts(state, node, env);
          break;
        case NodeKind::MapExit:
          break;
      }
    }
    return total;
  }

  /// Counts of the map with dims [0, dim) already bound in env. Tries
  /// the analytic product for the remaining dims first; otherwise binds
  /// this dim's parameter value by value and recurses.
  Counts map_counts_from_dim(const State& state, const Node& node,
                             std::size_t dim, SymbolMap& env) const {
    const ir::MapInfo& map = node.map;
    if (dim == map.ranges.size()) return scope_counts(state, node.id, env);
    {
      std::set<std::string> unbound(map.params.begin() + dim,
                                    map.params.end());
      if (std::optional<Counts> analytic =
              analytic_map_counts(state, node, dim, env, unbound)) {
        return *analytic;
      }
    }
    const ir::Range& range = map.ranges[dim];
    const std::set<std::string> remaining(map.params.begin() + dim,
                                          map.params.end());
    if (symbolic::depends_on_any(range.begin, remaining) ||
        symbolic::depends_on_any(range.end, remaining) ||
        symbolic::depends_on_any(range.step, remaining)) {
      throw PlanFailure("bounds reference own or inner map parameters");
    }
    const std::int64_t begin = range.begin.evaluate(env);
    const std::int64_t end = range.end.evaluate(env);
    const std::int64_t step = range.step.evaluate(env);
    if (step <= 0) throw PlanFailure("non-positive map step");
    Counts total;
    const std::string& param = map.params[dim];
    const auto shadowed = env.find(param);
    const bool had = shadowed != env.end();
    const std::int64_t previous = had ? shadowed->second : 0;
    for (std::int64_t v = begin; v <= end; v += step) {
      env[param] = v;
      total += map_counts_from_dim(state, node, dim + 1, env);
    }
    if (had) {
      env[param] = previous;
    } else {
      env.erase(param);
    }
    return total;
  }

  // -- Analytic counting ----------------------------------------------
  //
  // A count is analytic when it does not depend on the parameters in
  // `unbound` (the enclosing maps' still-unbound parameters): the trip
  // count of [begin : end : step] is derived from extent = end - begin,
  // which SIMPLIFIES the parameters away for the ubiquitous
  // A[i, j:j+2]-style subsets even though begin/end individually depend
  // on them. Everything else falls back to enumeration.

  static std::optional<std::int64_t> analytic_trips(
      const ir::Range& range, const SymbolMap& env,
      const std::set<std::string>& unbound) {
    if (symbolic::depends_on_any(range.step, unbound)) return std::nullopt;
    const symbolic::Expr extent = symbolic::simplified(range.end - range.begin);
    if (symbolic::depends_on_any(extent, unbound)) return std::nullopt;
    const auto e = extent.try_evaluate(env);
    const auto s = range.step.try_evaluate(env);
    if (!e || !s) return std::nullopt;
    if (*s <= 0) return std::nullopt;
    return *e >= 0 ? *e / *s + 1 : 0;
  }

  static std::optional<std::int64_t> analytic_subset_size(
      const Subset& subset, const SymbolMap& env,
      const std::set<std::string>& unbound) {
    std::int64_t n = 1;
    for (const ir::Range& range : subset.ranges) {
      if (symbolic::depends_on_any(range.step, unbound)) return std::nullopt;
      const symbolic::Expr extent =
          symbolic::simplified(range.end - range.begin);
      if (symbolic::depends_on_any(extent, unbound)) return std::nullopt;
      const auto e = extent.try_evaluate(env);
      const auto s = range.step.try_evaluate(env);
      if (!e || !s) return std::nullopt;
      if (*s <= 0) throw PlanFailure("non-positive subset step");
      n *= std::max<std::int64_t>(1, *e >= 0 ? *e / *s + 1 : 0);
    }
    return n;
  }

  std::optional<Counts> analytic_scope_counts(
      const State& state, NodeId scope, const SymbolMap& env,
      const std::set<std::string>& unbound) const {
    Counts total;
    for (NodeId id : schedule_.order) {
      const Node& node = state.node(id);
      if (node.scope_parent != scope) continue;
      switch (node.kind) {
        case NodeKind::MapEntry: {
          std::set<std::string> inner = unbound;
          inner.insert(node.map.params.begin(), node.map.params.end());
          std::optional<Counts> nested =
              analytic_map_counts(state, node, 0, env, inner);
          if (!nested) return std::nullopt;
          total += *nested;
          break;
        }
        case NodeKind::Tasklet: {
          for (const Edge* edge : schedule_.in_adjacency[id]) {
            if (edge->memlet.is_empty()) continue;
            const auto n = analytic_subset_size(edge->memlet.subset, env,
                                                unbound);
            if (!n) return std::nullopt;
            total.events += *n;
          }
          for (const Edge* edge : schedule_.out_adjacency[id]) {
            if (edge->memlet.is_empty()) continue;
            const auto n = analytic_subset_size(edge->memlet.subset, env,
                                                unbound);
            if (!n) return std::nullopt;
            const bool wcr_read =
                edge->memlet.wcr != ir::Wcr::None && options_.wcr_reads;
            total.events += wcr_read ? 2 * *n : *n;
          }
          total.executions += 1;
          break;
        }
        case NodeKind::Access: {
          for (const Edge* edge : schedule_.out_adjacency[id]) {
            if (edge->memlet.is_empty()) continue;
            if (state.node(edge->dst).kind != NodeKind::Access) continue;
            const auto n_src = analytic_subset_size(edge->memlet.subset, env,
                                                    unbound);
            const Subset& dst_subset =
                edge->memlet.other_subset.ranges.empty()
                    ? edge->memlet.subset
                    : edge->memlet.other_subset;
            const auto n_dst = analytic_subset_size(dst_subset, env, unbound);
            if (!n_src || !n_dst) return std::nullopt;
            if (*n_src != *n_dst) {
              throw PlanFailure("copy subset size mismatch");
            }
            total.events += 2 * *n_src;
            total.executions += *n_src;
          }
          break;
        }
        case NodeKind::MapExit:
          break;
      }
    }
    return total;
  }

  std::optional<Counts> analytic_map_counts(
      const State& state, const Node& node, std::size_t dim,
      const SymbolMap& env, const std::set<std::string>& unbound) const {
    std::int64_t trips = 1;
    for (std::size_t d = dim; d < node.map.ranges.size(); ++d) {
      const auto t = analytic_trips(node.map.ranges[d], env, unbound);
      if (!t) return std::nullopt;
      trips *= *t;
    }
    const std::optional<Counts> body =
        analytic_scope_counts(state, node.id, env, unbound);
    if (!body) return std::nullopt;
    return Counts{trips * body->events, trips * body->executions};
  }

  const Sdfg& sdfg_;
  const SymbolMap& symbols_;
  const SimulationOptions& options_;
  ir::StateSchedule schedule_;
};

}  // namespace

void plan_trace_into(const Sdfg& sdfg, const SymbolMap& symbols,
                     const SimulationOptions& options, int max_chunks_per_map,
                     TracePlan& plan) {
  plan.parallelizable = false;
  plan.total_events = 0;
  plan.total_executions = 0;
  plan.chunks.clear();
  int max_chunks = max_chunks_per_map > 0 ? max_chunks_per_map
                                          : par::num_threads() * 4;
  if (max_chunks < 1) max_chunks = 1;
  try {
    Planner(sdfg, symbols, options).build(max_chunks, plan);
    plan.parallelizable = true;
  } catch (...) {
    // Not exactly modelable (unbound symbol, non-positive step, size
    // mismatch, overflow, ...): serial generation reproduces the exact
    // behavior, including where the error — if any — surfaces.
    plan.total_events = 0;
    plan.total_executions = 0;
    plan.chunks.clear();
  }
}

TracePlan plan_trace(const Sdfg& sdfg, const SymbolMap& symbols,
                     const SimulationOptions& options, int max_chunks_per_map) {
  TracePlan plan;
  plan_trace_into(sdfg, symbols, options, max_chunks_per_map, plan);
  return plan;
}

namespace {

/// Dependency set of one top-level node's scope (see the header for the
/// inclusion rules). `outer_chunked` marks map nodes whose outermost
/// dimension is the plan's chunking axis (its END bound is excluded).
std::set<std::string> scope_dependencies(const Sdfg& sdfg, const State& state,
                                         NodeId top, bool outer_chunked) {
  std::set<std::string> reached;
  auto visit = [&reached](const symbolic::Expr& e) {
    e.collect_free_symbols(reached);
  };
  auto visit_ranges = [&visit](const std::vector<ir::Range>& ranges) {
    for (const ir::Range& range : ranges) {
      visit(range.begin);
      visit(range.end);
      visit(range.step);
    }
  };
  // Scope membership: a node is in the scope when `top` is on its
  // scope_parent chain (or is the node itself).
  auto in_scope = [&state, top](NodeId id) {
    for (NodeId current = id; current != ir::kNoNode;
         current = state.node(current).scope_parent) {
      if (current == top) return true;
    }
    return false;
  };
  std::set<std::string> containers;
  for (const Node& node : state.nodes()) {
    if (!in_scope(node.id)) continue;
    if (node.kind == NodeKind::MapEntry) {
      if (node.id == top && outer_chunked && !node.map.ranges.empty()) {
        const ir::Range& outer = node.map.ranges[0];
        visit(outer.begin);
        visit(outer.step);
        for (std::size_t d = 1; d < node.map.ranges.size(); ++d) {
          visit(node.map.ranges[d].begin);
          visit(node.map.ranges[d].end);
          visit(node.map.ranges[d].step);
        }
      } else {
        visit_ranges(node.map.ranges);
      }
    }
  }
  for (const Edge& edge : state.edges()) {
    if (edge.memlet.is_empty()) continue;
    if (!in_scope(edge.src) && !in_scope(edge.dst)) continue;
    // Only event-GENERATING memlets matter: tasklet reads/writes and
    // access-to-access copies. Map-boundary routing memlets (whose
    // subsets typically span the whole container, e.g. 0:K-1) never
    // emit events — including them would pull the slider symbol into
    // every chunk's dependency set and forfeit the clean-chunk reuse
    // that the fixed-capacity pattern is designed to enable.
    const Node& src = state.node(edge.src);
    const Node& dst = state.node(edge.dst);
    const bool tasklet_edge = src.kind == NodeKind::Tasklet ||
                              dst.kind == NodeKind::Tasklet;
    const bool copy_edge =
        src.kind == NodeKind::Access && dst.kind == NodeKind::Access;
    if (!tasklet_edge && !copy_edge) continue;
    visit_ranges(edge.memlet.subset.ranges);
    visit_ranges(edge.memlet.other_subset.ranges);
    containers.insert(edge.memlet.data);
    if (dst.kind == NodeKind::Access && !dst.data.empty()) {
      containers.insert(dst.data);
    }
  }
  // Strides and start offsets determine every event's flat index; SHAPE
  // does not (for an in-bounds program it only sizes the placed buffer,
  // which is the metric layer's layout concern, handled separately by
  // the delta engine's layout-clean check). Leaving shape out is what
  // keeps a fixed-capacity slider workload — extents bound by a capacity
  // symbol, the slider only in loop ranges — fully clean.
  for (const std::string& name : containers) {
    const ir::DataDescriptor& descriptor = sdfg.array(name);
    for (const symbolic::Expr& stride : descriptor.strides) visit(stride);
    visit(descriptor.start_offset);
  }
  // Map parameters and other locally-bound names are not tunable; only
  // declared program symbols can appear in a binding delta.
  std::set<std::string> result;
  for (const std::string& symbol : sdfg.symbols()) {
    if (reached.contains(symbol)) result.insert(symbol);
  }
  return result;
}

}  // namespace

std::vector<std::set<std::string>> chunk_dependencies(const Sdfg& sdfg,
                                                      const TracePlan& plan) {
  std::vector<std::set<std::string>> deps;
  deps.reserve(plan.chunks.size());
  // Chunks of the same (state, node) share one set; cache by key.
  std::map<std::pair<int, NodeId>, std::set<std::string>> cache;
  for (const TraceChunk& chunk : plan.chunks) {
    const std::pair<int, NodeId> key{chunk.state, chunk.node};
    auto it = cache.find(key);
    if (it == cache.end()) {
      const State& state =
          sdfg.states().at(static_cast<std::size_t>(chunk.state));
      const Node& node = state.node(chunk.node);
      const bool outer_chunked = node.kind == NodeKind::MapEntry;
      it = cache
               .emplace(key, scope_dependencies(sdfg, state, chunk.node,
                                                outer_chunked))
               .first;
    }
    deps.push_back(it->second);
  }
  return deps;
}

}  // namespace dmv::sim
