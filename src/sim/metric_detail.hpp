#pragma once

// Internal machinery shared by the standalone metric passes and the
// fused pipeline (not installed; include only from src/sim).

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "dmv/par/par.hpp"
#include "dmv/sim/sim.hpp"

namespace dmv::sim::detail {

// Fenwick tree over event positions; a mark at position p means "some
// cache line's most recent access happened at p". Growable so the
// streaming pipeline (event count unknown up front) can extend it:
// raw marks are kept alongside the tree and the tree is rebuilt in
// O(capacity) on each doubling — amortized O(1) per event.
class Fenwick {
 public:
  /// Zeroes all marks and guarantees capacity for positions [0, n).
  void reset(std::size_t n) {
    if (n > capacity_) capacity_ = std::max<std::size_t>(n, 1024);
    marks_.assign(capacity_, 0);
    tree_.assign(capacity_ + 1, 0);
  }

  /// Grows capacity to cover `position` (streaming mode).
  void ensure(std::size_t position) {
    if (position < capacity_) return;
    std::size_t grown = std::max<std::size_t>(capacity_ * 2, 1024);
    while (grown <= position) grown *= 2;
    marks_.resize(grown, 0);
    // Linear rebuild from raw marks: leaf values then parent propagation.
    tree_.assign(grown + 1, 0);
    for (std::size_t i = 1; i <= grown; ++i) tree_[i] += marks_[i - 1];
    for (std::size_t i = 1; i <= grown; ++i) {
      const std::size_t parent = i + (i & (~i + 1));
      if (parent <= grown) tree_[parent] += tree_[i];
    }
    capacity_ = grown;
  }

  void add(std::size_t position, int delta) {
    marks_[position] = static_cast<std::int8_t>(marks_[position] + delta);
    for (std::size_t i = position + 1; i < tree_.size(); i += i & (~i + 1)) {
      tree_[i] += delta;
    }
  }

  /// Sum of marks in [0, position].
  std::int64_t prefix(std::size_t position) const {
    std::int64_t sum = 0;
    for (std::size_t i = position + 1; i > 0; i -= i & (~i + 1)) {
      sum += tree_[i];
    }
    return sum;
  }

  /// Sum of marks in [from, to] (inclusive).
  std::int64_t range(std::size_t from, std::size_t to) const {
    if (from > to) return 0;
    return prefix(to) - (from == 0 ? 0 : prefix(from - 1));
  }

 private:
  std::vector<std::int64_t> tree_;   ///< 1-based; size capacity_ + 1.
  std::vector<std::int8_t> marks_;   ///< Raw marks, for rebuilds.
  std::size_t capacity_ = 0;
};

// Set-associative geometry shared by the serial fused cache consumer
// and the set-partitioned mergeable one (same derivation and the same
// validation errors, so both paths reject a bad config identically).
struct CacheGeometry {
  std::int64_t ways = 0;
  std::int64_t num_sets = 1;
};

inline CacheGeometry cache_geometry(const CacheConfig& config) {
  if (config.line_size <= 0 || config.total_size <= 0) {
    throw std::invalid_argument("simulate_cache: bad cache geometry");
  }
  const std::int64_t total_lines = config.total_size / config.line_size;
  if (total_lines <= 0) {
    throw std::invalid_argument("simulate_cache: cache smaller than a line");
  }
  CacheGeometry geometry;
  geometry.ways = config.ways;
  if (geometry.ways == 0) {
    geometry.ways = total_lines;  // Fully associative.
  } else {
    geometry.num_sets = total_lines / geometry.ways;
    if (geometry.num_sets <= 0) {
      throw std::invalid_argument(
          "simulate_cache: associativity exceeds cache size");
    }
  }
  return geometry;
}

// Per-container address decoding, hoisted out of the per-event loops.
// The common case (dense row-major, no start offset) maps flat -> byte
// address with one multiply; padded/permuted layouts take the general
// unflatten + strided-dot path.
struct ContainerAddressing {
  std::int64_t base = 0;
  std::int64_t element_size = 8;
  bool contiguous = false;
  const layout::ConcreteLayout* layout = nullptr;

  static ContainerAddressing from(const layout::ConcreteLayout& layout) {
    ContainerAddressing addressing;
    addressing.base = layout.base_address;
    addressing.element_size = layout.element_size;
    addressing.layout = &layout;
    bool contiguous = layout.start_offset == 0;
    std::int64_t stride = 1;
    for (int d = layout.rank() - 1; d >= 0 && contiguous; --d) {
      contiguous = layout.strides[static_cast<std::size_t>(d)] == stride;
      stride *= layout.shape[static_cast<std::size_t>(d)];
    }
    addressing.contiguous = contiguous;
    return addressing;
  }

  std::int64_t byte_address(std::int64_t flat) const {
    if (contiguous) return base + flat * element_size;
    return layout->byte_address(layout->unflatten(flat));
  }

  std::int64_t line_of(std::int64_t flat, int line_size) const {
    return byte_address(flat) / line_size;
  }
};

inline std::vector<ContainerAddressing> addressing_for(
    const std::vector<layout::ConcreteLayout>& layouts) {
  std::vector<ContainerAddressing> addressing;
  addressing.reserve(layouts.size());
  for (const layout::ConcreteLayout& layout : layouts) {
    addressing.push_back(ContainerAddressing::from(layout));
  }
  return addressing;
}

/// Dense line-id range spanned by the placed layouts at `line_size`:
/// [first, first + span). Empty layouts contribute nothing.
inline void line_range_of(const std::vector<layout::ConcreteLayout>& layouts,
                          int line_size, std::int64_t& first,
                          std::int64_t& span,
                          std::vector<LineTable::ContainerRange>* ranges) {
  first = 0;
  std::int64_t last = -1;  // Exclusive end line.
  bool any = false;
  if (ranges) ranges->assign(layouts.size(), {});
  for (std::size_t c = 0; c < layouts.size(); ++c) {
    const layout::ConcreteLayout& layout = layouts[c];
    const std::int64_t bytes = layout.allocated_bytes();
    if (bytes <= 0) continue;
    const std::int64_t begin = layout.base_address / line_size;
    const std::int64_t end =
        (layout.base_address + bytes - 1) / line_size + 1;
    if (ranges) (*ranges)[c] = {begin, end - begin};
    if (!any) {
      first = begin;
      last = end;
      any = true;
    } else {
      first = std::min(first, begin);
      last = std::max(last, end);
    }
  }
  span = any ? last - first : 0;
}

/// Finalizes per-element distance statistics from the (flat, distance)
/// pairs of ONE container, collected in event order, via counting sort:
/// O(elements + pairs) memory, per-element order identical to the
/// serial scan. cold_count must already be filled by the caller.
/// `offsets` and `sorted` are caller-owned scratch (arena-reusable).
inline void finalize_element_stats(std::int64_t elements,
                                   const std::vector<std::pair<
                                       std::int64_t, std::int64_t>>& pairs,
                                   std::vector<std::int64_t>& offsets,
                                   std::vector<std::int64_t>& sorted,
                                   ElementDistanceStats& stats) {
  // offsets[e] starts as the first slot of element e's slice; the
  // scatter advances it, so afterwards offsets[e] is the slice END and
  // the slice begins at offsets[e - 1] (0 for e == 0).
  offsets.assign(static_cast<std::size_t>(elements), 0);
  for (const auto& [flat, distance] : pairs) {
    ++offsets[static_cast<std::size_t>(flat)];
  }
  std::int64_t running = 0;
  for (std::size_t e = 0; e < offsets.size(); ++e) {
    const std::int64_t count = offsets[e];
    offsets[e] = running;
    running += count;
  }
  sorted.resize(pairs.size());
  for (const auto& [flat, distance] : pairs) {
    sorted[static_cast<std::size_t>(
        offsets[static_cast<std::size_t>(flat)]++)] = distance;
  }
  stats.min.assign(static_cast<std::size_t>(elements), kInfiniteDistance);
  stats.median.assign(static_cast<std::size_t>(elements), kInfiniteDistance);
  stats.max.assign(static_cast<std::size_t>(elements), kInfiniteDistance);
  par::parallel_for(
      static_cast<std::size_t>(elements), 4096,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t e = begin; e < end; ++e) {
          const std::size_t from =
              e == 0 ? 0 : static_cast<std::size_t>(offsets[e - 1]);
          const std::size_t to = static_cast<std::size_t>(offsets[e]);
          if (from == to) continue;
          std::sort(sorted.begin() + from, sorted.begin() + to);
          stats.min[e] = sorted[from];
          stats.max[e] = sorted[to - 1];
          stats.median[e] = sorted[from + (to - from) / 2];
        }
      });
}

}  // namespace dmv::sim::detail
