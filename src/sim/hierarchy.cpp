#include <list>
#include <stdexcept>
#include <unordered_map>

#include "dmv/sim/hierarchy.hpp"

namespace dmv::sim {

namespace {

// One set-associative LRU cache, line-granular.
class Cache {
 public:
  Cache(std::int64_t total_lines, int ways) {
    if (ways == 0) {
      ways_ = total_lines;
      sets_.resize(1);
    } else {
      ways_ = ways;
      const std::int64_t num_sets = total_lines / ways;
      if (num_sets <= 0) {
        throw std::invalid_argument(
            "hierarchy: associativity exceeds level size");
      }
      sets_.resize(num_sets);
    }
  }

  /// Returns true on hit; on miss the line is installed (with LRU
  /// eviction).
  bool access(std::int64_t line) {
    Set& set = sets_[static_cast<std::size_t>(
        line % static_cast<std::int64_t>(sets_.size()))];
    auto it = set.where.find(line);
    if (it != set.where.end()) {
      set.lru.splice(set.lru.begin(), set.lru, it->second);
      return true;
    }
    set.lru.push_front(line);
    set.where[line] = set.lru.begin();
    if (static_cast<std::int64_t>(set.lru.size()) > ways_) {
      set.where.erase(set.lru.back());
      set.lru.pop_back();
    }
    return false;
  }

 private:
  struct Set {
    std::list<std::int64_t> lru;
    std::unordered_map<std::int64_t, std::list<std::int64_t>::iterator>
        where;
  };
  std::int64_t ways_ = 0;
  std::vector<Set> sets_;
};

}  // namespace

HierarchyConfig HierarchyConfig::typical(std::int64_t divisor) {
  if (divisor <= 0) {
    throw std::invalid_argument("HierarchyConfig: divisor must be positive");
  }
  HierarchyConfig config;
  config.line_size = 64;
  // Floors keep every level at least one full set (ways * line bytes).
  config.levels = {
      CacheLevel{"L1", std::max<std::int64_t>(8 * 64, 32 * 1024 / divisor),
                 8},
      CacheLevel{"L2",
                 std::max<std::int64_t>(8 * 64, 512 * 1024 / divisor), 8},
      CacheLevel{"L3",
                 std::max<std::int64_t>(16 * 64, 8 * 1024 * 1024 / divisor),
                 16},
  };
  return config;
}

std::int64_t HierarchyResult::total_hits(int level) const {
  std::int64_t total = 0;
  for (std::int64_t value : hits.at(level)) total += value;
  return total;
}

std::int64_t HierarchyResult::total_memory_accesses() const {
  std::int64_t total = 0;
  for (std::int64_t value : memory_accesses) total += value;
  return total;
}

std::int64_t HierarchyResult::bytes_into_level(int level) const {
  // Misses at `level` = everything that reached it minus its hits =
  // hits of deeper levels + memory accesses.
  std::int64_t misses = total_memory_accesses();
  for (std::size_t deeper = level + 1; deeper < hits.size(); ++deeper) {
    misses += total_hits(static_cast<int>(deeper));
  }
  return misses * config.line_size;
}

HierarchyResult simulate_hierarchy(const AccessTrace& trace,
                                   const HierarchyConfig& config) {
  if (config.levels.empty()) {
    throw std::invalid_argument("simulate_hierarchy: no cache levels");
  }
  if (config.line_size <= 0) {
    throw std::invalid_argument("simulate_hierarchy: bad line size");
  }
  for (std::size_t l = 1; l < config.levels.size(); ++l) {
    if (config.levels[l].total_size < config.levels[l - 1].total_size) {
      throw std::invalid_argument(
          "simulate_hierarchy: level sizes must be non-decreasing");
    }
  }

  std::vector<Cache> caches;
  caches.reserve(config.levels.size());
  for (const CacheLevel& level : config.levels) {
    const std::int64_t lines = level.total_size / config.line_size;
    if (lines <= 0) {
      throw std::invalid_argument("simulate_hierarchy: level '" +
                                  level.name + "' smaller than a line");
    }
    caches.emplace_back(lines, level.ways);
  }

  HierarchyResult result;
  result.config = config;
  result.containers = trace.containers;
  result.hits.assign(config.levels.size(),
                     std::vector<std::int64_t>(trace.layouts.size(), 0));
  result.memory_accesses.assign(trace.layouts.size(), 0);

  for (const AccessEvent& event : trace.events) {
    const ConcreteLayout& layout = trace.layouts[event.container];
    const std::int64_t line =
        layout.byte_address(layout.unflatten(event.flat)) /
        config.line_size;
    bool satisfied = false;
    // Inclusive hierarchy: a miss installs the line at EVERY level it
    // passed through, so lower levels stay supersets of upper ones.
    for (std::size_t l = 0; l < caches.size(); ++l) {
      if (caches[l].access(line)) {
        ++result.hits[l][event.container];
        // Refresh recency in the upper levels only (already done for
        // levels 0..l via their own access calls above).
        satisfied = true;
        break;
      }
    }
    if (!satisfied) ++result.memory_accesses[event.container];
  }
  return result;
}

}  // namespace dmv::sim
