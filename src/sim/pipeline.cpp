#include "dmv/sim/pipeline.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <list>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dmv/symbolic/expr.hpp"

#include "dmv/par/par.hpp"
#include "dmv/sim/trace_plan.hpp"
#include "dmv/store/trace_store.hpp"
#include "metric_detail.hpp"
#include "metric_merge.hpp"

namespace dmv::sim {

namespace {

// Beyond this many dense slots, per-line state falls back to a hash map
// (hand-built traces can place containers at arbitrary addresses).
constexpr std::int64_t kMaxDenseSpan = std::int64_t{1} << 26;

// line -> most recent event position (-1 = never seen). Dense over the
// LineTable's id range when that range is sane, hash map otherwise.
class LastPositions {
 public:
  void reset_dense(std::int64_t lo, std::int64_t span) {
    dense_ = true;
    lo_ = lo;
    values_.assign(static_cast<std::size_t>(span), -1);
    hash_.clear();
  }
  void reset_hash(std::size_t expected) {
    dense_ = false;
    values_.clear();
    hash_.clear();
    hash_.reserve(expected);
  }
  std::int64_t& operator()(std::int64_t line) {
    if (dense_) return values_[static_cast<std::size_t>(line - lo_)];
    return hash_.try_emplace(line, -1).first->second;
  }

 private:
  bool dense_ = true;
  std::int64_t lo_ = 0;
  std::vector<std::int64_t> values_;
  std::unordered_map<std::int64_t, std::int64_t> hash_;
};

// Exact LRU state of one cache set (same structure and update rule as
// cache_model's per-set simulation).
struct LruSet {
  std::list<std::int64_t> lru;  ///< Front = most recently used.
  std::unordered_map<std::int64_t, std::list<std::int64_t>::iterator> where;
};

using detail::cache_geometry;
using detail::CacheGeometry;

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// All buffers that survive across run() calls — the sweep-scoped
// memory-reuse half of the pipeline. A slider sweep pays for the trace
// columns, line table, Fenwick tree, per-line state, and per-element
// scratch once instead of once per binding.
struct ArenaState {
  AccessTrace trace;        ///< run(sdfg) materialization target.
  TraceArena trace_arena;   ///< Chunk plan + streaming ring buffers.
  LineTable table;          ///< Distance-granularity line ids.
  LineTable cache_table;    ///< Only if the cache uses another line size.
  detail::Fenwick fenwick;
  LastPositions last_position;
  /// Per-container (flat, distance) pairs for element stats.
  std::vector<std::vector<std::pair<std::int64_t, std::int64_t>>> finite;
  std::vector<std::int64_t> offsets;  ///< Counting-sort scratch.
  std::vector<std::int64_t> sorted;   ///< Counting-sort scratch.
  std::vector<LruSet> sets;
  std::vector<std::uint8_t> seen;     ///< Cache line ever resident.
  std::int64_t seen_lo = 0;
  merge::Scratch merge_scratch;       ///< Mergeable parallel engine state.

  // --- run_delta() checkpoint -------------------------------------------
  // `trace` doubles as the checkpoint's front event buffer; the fields
  // below remember which (program, options, binding) produced it, the
  // fine-grained chunk plan that indexes it, and the un-finalized fused
  // metric state so an append-only step can resume consuming where the
  // previous one stopped. Any public run()/run_streaming() call clobbers
  // the shared scratch above and therefore invalidates the checkpoint.
  bool ckpt_valid = false;
  std::uint64_t ckpt_program = 0;   ///< Caller's SDFG-structure version.
  std::uint64_t ckpt_options = 0;   ///< Output-relevant options fingerprint.
  SymbolMap ckpt_binding;
  TracePlan ckpt_plan;              ///< Delta-granularity plan of `trace`.
  TracePlan scratch_plan;           ///< New-binding plan (swapped on commit).
  EventList back_events;            ///< Patch target (swapped with trace).
  AccessTrace scratch_header;       ///< New-binding container placement.
  PipelineResult live;              ///< Raw fused state (never finalized).
  bool live_valid = false;
};

}  // namespace

struct MetricPipeline::Arena : ArenaState {};

namespace {

// The fused per-event consumer bundle. One consume() call advances
// every enabled metric; each derived quantity (cache line id, stack
// distance) is computed exactly once per event and shared.
class FusedPass {
 public:
  FusedPass(const PipelineConfig& config, ArenaState& arena)
      : config_(config), arena_(arena) {}

  /// `expected_events` is the trace length when known (materialized) or
  /// 0 in streaming mode (the Fenwick grows on demand).
  void begin(const AccessTrace& header, std::size_t expected_events,
             std::int64_t distance_lo, std::int64_t distance_span,
             std::int64_t cache_lo, std::int64_t cache_span) {
    const std::size_t num_containers = header.layouts.size();
    result_ = PipelineResult{};
    result_.containers = header.containers;

    if (config_.counts) {
      result_.counts.reads.clear();
      result_.counts.writes.clear();
      result_.counts.reads.reserve(num_containers);
      result_.counts.writes.reserve(num_containers);
      for (const ConcreteLayout& layout : header.layouts) {
        result_.counts.reads.emplace_back(layout.total_elements(), 0);
        result_.counts.writes.emplace_back(layout.total_elements(), 0);
      }
    }

    if (config_.needs_distances()) {
      arena_.fenwick.reset(expected_events);
      if (distance_span >= 0 && distance_span <= kMaxDenseSpan) {
        arena_.last_position.reset_dense(distance_lo, distance_span);
      } else {
        arena_.last_position.reset_hash(expected_events);
      }
      if (config_.keep_distances) {
        result_.distances.line_size = config_.line_size;
        result_.distances.distances.clear();
        result_.distances.distances.reserve(expected_events);
      }
    }

    if (config_.miss_threshold_lines > 0) {
      result_.misses.threshold_lines = config_.miss_threshold_lines;
      result_.misses.per_container.assign(num_containers, {});
      result_.misses.element_misses.clear();
      result_.misses.element_misses.reserve(num_containers);
      for (const ConcreteLayout& layout : header.layouts) {
        result_.misses.element_misses.emplace_back(layout.total_elements(),
                                                   0);
      }
    }

    if (config_.element_stats) {
      arena_.finite.resize(num_containers);
      for (auto& pairs : arena_.finite) pairs.clear();
      result_.element_stats.assign(num_containers, {});
      for (std::size_t c = 0; c < num_containers; ++c) {
        result_.element_stats[c].cold_count.assign(
            static_cast<std::size_t>(header.layouts[c].total_elements()), 0);
      }
    }

    if (config_.cache) {
      geometry_ = cache_geometry(*config_.cache);
      result_.cache.config = *config_.cache;
      result_.cache.per_container.assign(num_containers, {});
      arena_.sets.clear();
      arena_.sets.resize(static_cast<std::size_t>(geometry_.num_sets));
      if (cache_span < 0 || cache_span > kMaxDenseSpan) {
        throw std::invalid_argument(
            "MetricPipeline: cache line-id range too sparse for the fused "
            "cache consumer");
      }
      arena_.seen.assign(static_cast<std::size_t>(cache_span), 0);
      arena_.seen_lo = cache_lo;
    }
  }

  void consume(std::size_t i, std::int32_t container, std::int64_t flat,
               bool is_write, std::int64_t line, std::int64_t cache_line) {
    if (config_.counts) {
      auto& column =
          is_write ? result_.counts.writes : result_.counts.reads;
      ++column[static_cast<std::size_t>(container)]
              [static_cast<std::size_t>(flat)];
    }

    if (config_.needs_distances()) {
      std::int64_t distance;
      std::int64_t& previous = arena_.last_position(line);
      if (previous < 0) {
        distance = kInfiniteDistance;
      } else {
        const std::size_t p = static_cast<std::size_t>(previous);
        distance = arena_.fenwick.range(p + 1, i);
        arena_.fenwick.add(p, -1);
      }
      arena_.fenwick.add(i, +1);
      previous = static_cast<std::int64_t>(i);

      if (config_.keep_distances) {
        result_.distances.distances.push_back(distance);
      }
      if (config_.miss_threshold_lines > 0) {
        MissStats& stats =
            result_.misses.per_container[static_cast<std::size_t>(container)];
        if (distance == kInfiniteDistance) {
          ++stats.cold;
          ++result_.misses.element_misses[static_cast<std::size_t>(container)]
                                         [static_cast<std::size_t>(flat)];
        } else if (distance >= config_.miss_threshold_lines) {
          ++stats.capacity;
          ++result_.misses.element_misses[static_cast<std::size_t>(container)]
                                         [static_cast<std::size_t>(flat)];
        } else {
          ++stats.hits;
        }
      }
      if (config_.element_stats) {
        if (distance == kInfiniteDistance) {
          ++result_.element_stats[static_cast<std::size_t>(container)]
               .cold_count[static_cast<std::size_t>(flat)];
        } else {
          arena_.finite[static_cast<std::size_t>(container)].emplace_back(
              flat, distance);
        }
      }
    }

    if (config_.cache) {
      LruSet& set = arena_.sets[static_cast<std::size_t>(
          cache_line % geometry_.num_sets)];
      MissStats& stats =
          result_.cache.per_container[static_cast<std::size_t>(container)];
      auto it = set.where.find(cache_line);
      if (it != set.where.end()) {
        ++stats.hits;
        set.lru.splice(set.lru.begin(), set.lru, it->second);
      } else {
        std::uint8_t& seen =
            arena_.seen[static_cast<std::size_t>(cache_line -
                                                 arena_.seen_lo)];
        if (!seen) {
          seen = 1;
          ++stats.cold;
        } else {
          ++stats.capacity;
        }
        set.lru.push_front(cache_line);
        set.where[cache_line] = set.lru.begin();
        if (static_cast<std::int64_t>(set.lru.size()) > geometry_.ways) {
          set.where.erase(set.lru.back());
          set.lru.pop_back();
        }
      }
    }
  }

  PipelineResult finish(const AccessTrace& header, std::int64_t events,
                        std::int64_t executions) {
    result_.events = events;
    result_.executions = executions;
    finalize_into(header, result_);
    return std::move(result_);
  }

  /// Non-destructive counterpart of finish() for the delta engine: folds
  /// the arena's pending element-stat pairs and `result`'s per-container
  /// tallies into totals/element-stats/movement IN `result`, leaving the
  /// arena and the pass's own live state untouched. `result` must be an
  /// un-finalized raw copy (totals zero, movement empty) — the live
  /// checkpoint is never finalized, so every snapshot starts from that
  /// state and the two finalization paths stay bit-identical by
  /// construction (finish() delegates here).
  void finalize_into(const AccessTrace& header, PipelineResult& result) {
    if (config_.element_stats) {
      for (std::size_t c = 0; c < header.layouts.size(); ++c) {
        detail::finalize_element_stats(
            header.layouts[c].total_elements(), arena_.finite[c],
            arena_.offsets, arena_.sorted, result.element_stats[c]);
      }
    }
    if (config_.miss_threshold_lines > 0) {
      for (const MissStats& stats : result.misses.per_container) {
        result.misses.total.cold += stats.cold;
        result.misses.total.capacity += stats.capacity;
        result.misses.total.hits += stats.hits;
      }
    }
    if (config_.cache) {
      for (const MissStats& stats : result.cache.per_container) {
        result.cache.total.cold += stats.cold;
        result.cache.total.capacity += stats.capacity;
        result.cache.total.hits += stats.hits;
      }
    }
    if (config_.movement) {
      result.movement.line_size = config_.line_size;
      result.movement.bytes_per_container.reserve(header.layouts.size());
      for (const MissStats& stats : result.misses.per_container) {
        const std::int64_t bytes = stats.misses() * config_.line_size;
        result.movement.bytes_per_container.push_back(bytes);
        result.movement.total_bytes += bytes;
      }
    }
  }

  /// Moves the un-finalized live state out (the delta engine checkpoints
  /// it in the arena between run_delta calls).
  PipelineResult take_raw() { return std::move(result_); }

  /// Restores a live state previously moved out with take_raw() so
  /// consume() can continue where the producing pass stopped. The cache
  /// geometry is re-derived from the config (it is not part of the
  /// result); the arena must still hold the matching Fenwick /
  /// last-position / LRU / finite-pair state.
  void adopt(PipelineResult&& raw) {
    result_ = std::move(raw);
    if (config_.cache) geometry_ = cache_geometry(*config_.cache);
  }

  detail::Fenwick& fenwick() { return arena_.fenwick; }

 private:
  const PipelineConfig& config_;
  ArenaState& arena_;
  PipelineResult result_;
  CacheGeometry geometry_;
};

// Streaming adapter: the simulator pushes events straight into the
// fused pass; line ids are derived per event from the hoisted
// per-container addressing (once each — shared between the distance and
// cache consumers when their line sizes agree).
class StreamingSink final : public EventSink {
 public:
  StreamingSink(const PipelineConfig& config, FusedPass& pass)
      : config_(config), pass_(pass) {}

  void on_trace_header(const AccessTrace& header) override {
    addressing_ = detail::addressing_for(header.layouts);
    std::int64_t distance_lo = 0, distance_span = 0;
    detail::line_range_of(header.layouts, config_.line_size, distance_lo,
                          distance_span, nullptr);
    std::int64_t cache_lo = 0, cache_span = 0;
    if (config_.cache) {
      detail::line_range_of(header.layouts, config_.cache->line_size,
                            cache_lo, cache_span, nullptr);
    }
    shared_cache_line_ =
        !config_.cache || config_.cache->line_size == config_.line_size;
    pass_.begin(header, /*expected_events=*/0, distance_lo, distance_span,
                cache_lo, cache_span);
  }

  void on_event(const AccessEvent& event) override {
    const detail::ContainerAddressing& addressing =
        addressing_[static_cast<std::size_t>(event.container)];
    std::int64_t line = 0;
    std::int64_t cache_line = 0;
    const bool needs_line = config_.needs_distances();
    if (needs_line || (config_.cache && shared_cache_line_)) {
      line = addressing.line_of(event.flat, config_.line_size);
      cache_line = line;
    }
    if (config_.cache && !shared_cache_line_) {
      cache_line = addressing.line_of(event.flat, config_.cache->line_size);
    }
    if (needs_line) pass_.fenwick().ensure(index_);
    pass_.consume(index_, event.container, event.flat, event.is_write, line,
                  cache_line);
    ++index_;
  }

  void on_trace_end(std::int64_t executions) override {
    executions_ = executions;
  }

  std::size_t events() const { return index_; }
  std::int64_t executions() const { return executions_; }

 private:
  const PipelineConfig& config_;
  FusedPass& pass_;
  std::vector<detail::ContainerAddressing> addressing_;
  bool shared_cache_line_ = true;
  std::size_t index_ = 0;
  std::int64_t executions_ = 0;
};

}  // namespace

int PipelineResult::container_index(const std::string& name) const {
  for (std::size_t c = 0; c < containers.size(); ++c) {
    if (containers[c] == name) return static_cast<int>(c);
  }
  return -1;
}

std::uint64_t fingerprint(const PipelineConfig& config) {
  // FNV-1a over every output-relevant field.
  std::uint64_t hash = 1469598103934665603ull;
  auto mix = [&hash](std::uint64_t value) {
    hash ^= value;
    hash *= 1099511628211ull;
  };
  mix(static_cast<std::uint64_t>(config.line_size));
  mix(config.counts ? 1 : 0);
  mix(static_cast<std::uint64_t>(config.miss_threshold_lines));
  mix(config.keep_distances ? 1 : 0);
  mix(config.element_stats ? 1 : 0);
  mix(config.cache.has_value() ? 1 : 0);
  if (config.cache) {
    mix(static_cast<std::uint64_t>(config.cache->line_size));
    mix(static_cast<std::uint64_t>(config.cache->total_size));
    mix(static_cast<std::uint64_t>(config.cache->ways));
  }
  mix(config.movement ? 1 : 0);
  return hash;
}

std::size_t approx_size_bytes(const PipelineResult& result) {
  std::size_t bytes = 0;
  for (const std::string& name : result.containers) {
    bytes += name.size() + sizeof(std::string);
  }
  auto nested = [&bytes](const std::vector<std::vector<std::int64_t>>& v) {
    bytes += v.size() * sizeof(std::vector<std::int64_t>);
    for (const auto& inner : v) bytes += inner.size() * sizeof(std::int64_t);
  };
  nested(result.counts.reads);
  nested(result.counts.writes);
  bytes += result.distances.distances.size() * sizeof(std::int64_t);
  bytes += result.misses.per_container.size() * sizeof(MissStats);
  nested(result.misses.element_misses);
  for (const ElementDistanceStats& stats : result.element_stats) {
    bytes += (stats.min.size() + stats.median.size() + stats.max.size() +
              stats.cold_count.size()) *
             sizeof(std::int64_t);
  }
  bytes += result.element_stats.size() * sizeof(ElementDistanceStats);
  bytes += result.cache.per_container.size() * sizeof(MissStats);
  bytes += result.movement.bytes_per_container.size() * sizeof(std::int64_t);
  return bytes;
}

MetricPipeline::MetricPipeline(PipelineConfig config)
    : config_(config), arena_(std::make_unique<Arena>()) {
  if (config_.movement && config_.miss_threshold_lines <= 0) {
    throw std::invalid_argument(
        "MetricPipeline: movement needs miss_threshold_lines > 0");
  }
  if (config_.line_size <= 0) {
    throw std::invalid_argument("MetricPipeline: bad line size");
  }
  if (config_.cache) cache_geometry(*config_.cache);  // Validate early.
}

MetricPipeline::~MetricPipeline() = default;
MetricPipeline::MetricPipeline(MetricPipeline&&) noexcept = default;
MetricPipeline& MetricPipeline::operator=(MetricPipeline&&) noexcept =
    default;

// Mergeable-engine gate shared by run(trace) and the fused-generation
// path: the engine must be requested, the trace big enough, and the
// caller must not already be inside a pool task (where every parallel
// construct serializes and the serial fused pass is strictly cheaper).
namespace {

bool mergeable_requested(const PipelineConfig& config, std::int64_t events) {
  return config.parallel_metrics && events > 0 &&
         events >= config.parallel_metrics_min_events &&
         events <= std::numeric_limits<std::int32_t>::max() &&
         !par::in_parallel_region();
}

}  // namespace

// Materialized mergeable drive: derive line columns (vectorized),
// compute phase-A prev occurrences, then hand off to merge::finish_pass.
// Returns false — nothing observable done — when the engine cannot run
// (line span too sparse for the dense stitch/seen tables); the caller
// falls back to the serial fused pass, which handles those traces via
// its hash path (or throws the canonical cache-span error).
bool MetricPipeline::try_run_mergeable(const AccessTrace& trace,
                                       PipelineResult& result,
                                       int& partitions) {
  const std::size_t n = trace.events.size();
  merge::Scratch& scratch = arena_->merge_scratch;
  const std::span<const std::int32_t> containers =
      trace.events.container_column();
  const std::span<const std::int64_t> flats = trace.events.flat_column();
  const std::span<const std::uint8_t> writes = trace.events.write_column();

  std::int64_t distance_lo = 0, distance_span = 0;
  std::span<const std::int64_t> lines;
  if (config_.needs_distances() ||
      (config_.cache && config_.cache->line_size == config_.line_size)) {
    detail::line_range_of(trace.layouts, config_.line_size, distance_lo,
                          distance_span, nullptr);
    scratch.lines.resize(n);
    merge::LineDeriver deriver;
    deriver.reset(trace.layouts, config_.line_size);
    std::int64_t* out = scratch.lines.data();
    par::parallel_for(n, std::size_t{1} << 14,
                      [&](std::size_t begin, std::size_t end) {
                        deriver.derive(containers.data(), flats.data(),
                                       begin, end, out);
                      });
    lines = std::span<const std::int64_t>(scratch.lines.data(), n);
    // Same widening as the serial path (hand-built traces with
    // out-of-buffer addresses).
    std::int64_t hi = distance_lo + distance_span - 1;
    merge::widen_bounds(lines, distance_lo, hi);
    distance_span = hi - distance_lo + 1;
    if (distance_span > kMaxDenseSpan) return false;
  }

  std::int64_t cache_lo = 0, cache_span = 0;
  std::span<const std::int64_t> cache_lines = lines;
  if (config_.cache) {
    if (config_.cache->line_size != config_.line_size) {
      detail::line_range_of(trace.layouts, config_.cache->line_size,
                            cache_lo, cache_span, nullptr);
      scratch.cache_lines.resize(n);
      merge::LineDeriver deriver;
      deriver.reset(trace.layouts, config_.cache->line_size);
      std::int64_t* out = scratch.cache_lines.data();
      par::parallel_for(n, std::size_t{1} << 14,
                        [&](std::size_t begin, std::size_t end) {
                          deriver.derive(containers.data(), flats.data(),
                                         begin, end, out);
                        });
      cache_lines = std::span<const std::int64_t>(scratch.cache_lines.data(),
                                                  n);
      std::int64_t hi = cache_lo + cache_span - 1;
      merge::widen_bounds(cache_lines, cache_lo, hi);
      cache_span = hi - cache_lo + 1;
    } else {
      cache_lo = distance_lo;
      cache_span = distance_span;
    }
    // The serial pass throws the canonical sparse-cache error here; let
    // it do so instead of duplicating the message.
    if (cache_span < 0 || cache_span > kMaxDenseSpan) return false;
  }

  if (config_.needs_distances() && merge::needs_prev_pass(n)) {
    merge::compute_prev(scratch, lines, distance_lo, distance_span);
  }
  merge::finish_pass(config_, trace, containers, flats, writes, lines,
                     distance_lo, distance_span, cache_lines, cache_lo,
                     cache_span, trace.executions, scratch, result,
                     partitions);
  return true;
}

PipelineResult MetricPipeline::run(const AccessTrace& trace) {
  // The fused pass below clobbers the arena scratch the delta engine's
  // live state depends on (and run(sdfg) overwrote the checkpoint
  // trace), so any interleaved public run drops the checkpoint.
  arena_->ckpt_valid = false;
  arena_->live_valid = false;
  // Fault a spilled trace back in on this thread, exactly once, before
  // any pass hands column spans to parallel metric workers (EventList
  // fault-in is not thread-safe).
  trace.events.ensure_resident();
  const auto start = Clock::now();
  const std::size_t n = trace.events.size();

  if (mergeable_requested(config_, static_cast<std::int64_t>(n))) {
    PipelineResult result;
    int partitions = 1;
    if (try_run_mergeable(trace, result, partitions)) {
      timings_ = {0.0, ms_since(start), partitions};
      return result;
    }
  }
  const bool needs_lines = config_.needs_distances() || config_.cache;

  std::int64_t distance_lo = 0, distance_span = 0;
  std::span<const std::int64_t> lines;
  if (config_.needs_distances() ||
      (config_.cache && config_.cache->line_size == config_.line_size)) {
    build_line_table(trace, config_.line_size, arena_->table);
    lines = arena_->table.lines;
    // Widen the dense bounds to the observed ids so hand-built traces
    // with out-of-buffer addresses stay correct (hash fallback kicks in
    // if the widened span is unreasonable).
    distance_lo = arena_->table.first_line;
    std::int64_t hi = arena_->table.first_line + arena_->table.line_span - 1;
    for (const std::int64_t line : lines) {
      distance_lo = std::min(distance_lo, line);
      hi = std::max(hi, line);
    }
    distance_span = n == 0 ? 0 : hi - distance_lo + 1;
  }

  std::int64_t cache_lo = 0, cache_span = 0;
  std::span<const std::int64_t> cache_lines = lines;
  if (config_.cache) {
    if (config_.cache->line_size != config_.line_size) {
      build_line_table(trace, config_.cache->line_size, arena_->cache_table);
      cache_lines = arena_->cache_table.lines;
      cache_lo = arena_->cache_table.first_line;
      std::int64_t hi =
          arena_->cache_table.first_line + arena_->cache_table.line_span - 1;
      for (const std::int64_t line : cache_lines) {
        cache_lo = std::min(cache_lo, line);
        hi = std::max(hi, line);
      }
      cache_span = n == 0 ? 0 : hi - cache_lo + 1;
    } else {
      cache_lo = distance_lo;
      cache_span = distance_span;
    }
  }

  FusedPass pass(config_, *arena_);
  pass.begin(trace, n, distance_lo, distance_span, cache_lo, cache_span);

  const std::span<const std::int32_t> containers =
      trace.events.container_column();
  const std::span<const std::int64_t> flats = trace.events.flat_column();
  const std::span<const std::uint8_t> writes = trace.events.write_column();
  for (std::size_t i = 0; i < n; ++i) {
    pass.consume(i, containers[i], flats[i], writes[i] != 0,
                 needs_lines && !lines.empty() ? lines[i] : 0,
                 config_.cache ? cache_lines[i] : 0);
  }
  PipelineResult result =
      pass.finish(trace, static_cast<std::int64_t>(n), trace.executions);
  timings_ = {0.0, ms_since(start), 1};
  return result;
}

// Chunk-fused generation + metrics: the simulator, the line-id
// derivation, and phase A of the stack distances run per trace-plan
// chunk inside ordered_pipeline — metric work starts on a chunk's slice
// as soon as the simulator finishes it, and the stitch (consume side)
// runs on the caller in chunk order. Everything after phase A barriers
// on the full trace anyway (phase B needs prev complete) and runs via
// merge::finish_pass. Returns false when parallel generation or the
// mergeable engine cannot run; the caller takes the unfused path.
bool MetricPipeline::try_run_fused_generation(const Sdfg& sdfg,
                                              const SymbolMap& symbols,
                                              const SimulationOptions& options,
                                              PipelineResult& result) {
  if (!options.parallel_trace || par::num_threads() <= 1 ||
      par::in_parallel_region()) {
    return false;
  }
  ArenaState& arena = *arena_;
  plan_trace_into(sdfg, symbols, options, 0, arena.trace_arena.plan);
  const TracePlan& plan = arena.trace_arena.plan;
  // Same worthwhileness gate as simulate_into's parallel path.
  if (!plan.parallelizable || plan.chunks.size() <= 1 ||
      plan.total_events < 8192) {
    return false;
  }
  if (!mergeable_requested(config_, plan.total_events)) return false;

  const std::size_t n = static_cast<std::size_t>(plan.total_events);
  arena.trace.containers.clear();
  arena.trace.layouts.clear();
  arena.trace.executions = 0;
  place_containers(sdfg, symbols, options, arena.trace);

  // Layout-derived bounds, no widening: simulator-produced events are
  // always inside their placed layouts, so these equal the serial
  // path's widened bounds bit for bit.
  const bool needs_lines =
      config_.needs_distances() ||
      (config_.cache && config_.cache->line_size == config_.line_size);
  std::int64_t distance_lo = 0, distance_span = 0;
  if (needs_lines) {
    detail::line_range_of(arena.trace.layouts, config_.line_size,
                          distance_lo, distance_span, nullptr);
    if (distance_span > kMaxDenseSpan) return false;
  }
  std::int64_t cache_lo = 0, cache_span = 0;
  const bool separate_cache_lines =
      config_.cache && config_.cache->line_size != config_.line_size;
  if (config_.cache) {
    if (separate_cache_lines) {
      detail::line_range_of(arena.trace.layouts, config_.cache->line_size,
                            cache_lo, cache_span, nullptr);
    } else {
      cache_lo = distance_lo;
      cache_span = distance_span;
    }
    if (cache_span < 0 || cache_span > kMaxDenseSpan) return false;
  }

  const auto start = Clock::now();
  // A spilled previous trace is dropped, not decoded, before resizing.
  arena.trace.events.clear();
  arena.trace.events.resize(n);
  merge::Scratch& scratch = arena.merge_scratch;
  merge::LineDeriver deriver;
  merge::LineDeriver cache_deriver;
  if (needs_lines) {
    scratch.lines.resize(n);
    deriver.reset(arena.trace.layouts, config_.line_size);
  }
  if (separate_cache_lines) {
    scratch.cache_lines.resize(n);
    cache_deriver.reset(arena.trace.layouts, config_.cache->line_size);
  }
  const std::size_t window = static_cast<std::size_t>(par::num_threads()) + 1;
  merge::PrevBuilder prev_builder;
  if (config_.needs_distances()) {
    prev_builder.begin(scratch, n, distance_lo, distance_span, window);
  }
  const std::span<const std::int32_t> containers =
      arena.trace.events.container_column();
  const std::span<const std::int64_t> flats = arena.trace.events.flat_column();
  const bool needs_prev = config_.needs_distances();
  par::ordered_pipeline(
      plan.chunks.size(), window,
      [&](std::size_t c) {
        const TraceChunk& chunk = plan.chunks[c];
        simulate_chunk(sdfg, symbols, options, arena.trace, chunk,
                       arena.trace.events, /*absolute=*/true);
        const std::size_t begin =
            static_cast<std::size_t>(chunk.event_offset);
        const std::size_t end =
            begin + static_cast<std::size_t>(chunk.event_count);
        if (needs_lines) {
          deriver.derive(containers.data(), flats.data(), begin, end,
                         scratch.lines.data());
        }
        if (separate_cache_lines) {
          cache_deriver.derive(containers.data(), flats.data(), begin, end,
                               scratch.cache_lines.data());
        }
        if (needs_prev) {
          prev_builder.local_slice(scratch, scratch.lines.data(), begin, end,
                                   c % window);
        }
      },
      [&](std::size_t c) {
        if (needs_prev) prev_builder.stitch_slice(scratch, c % window);
      });
  arena.trace.executions = plan.total_executions;
  const double simulate_ms = ms_since(start);

  const auto metrics_start = Clock::now();
  std::span<const std::int64_t> lines;
  if (needs_lines) {
    lines = std::span<const std::int64_t>(scratch.lines.data(), n);
  }
  std::span<const std::int64_t> cache_lines = lines;
  if (separate_cache_lines) {
    cache_lines = std::span<const std::int64_t>(scratch.cache_lines.data(), n);
  }
  int partitions = 1;
  merge::finish_pass(config_, arena.trace,
                     arena.trace.events.container_column(),
                     arena.trace.events.flat_column(),
                     arena.trace.events.write_column(), lines, distance_lo,
                     distance_span, cache_lines, cache_lo, cache_span,
                     arena.trace.executions, scratch, result, partitions);
  timings_ = {simulate_ms, ms_since(metrics_start), partitions};
  return true;
}

PipelineResult MetricPipeline::run(const Sdfg& sdfg, const SymbolMap& symbols,
                                   const SimulationOptions& options) {
  arena_->ckpt_valid = false;
  arena_->live_valid = false;
  {
    PipelineResult result;
    if (try_run_fused_generation(sdfg, symbols, options, result)) {
      maybe_spill();
      return result;
    }
  }
  // A spilled previous trace is simply dropped here — simulate_into
  // clears the buffer, and clear() releases the backing without the
  // cost of decoding it.
  const auto start = Clock::now();
  simulate_into(sdfg, symbols, options, arena_->trace, &arena_->trace_arena);
  const double simulate_ms = ms_since(start);
  PipelineResult result = run(arena_->trace);
  timings_.simulate_ms = simulate_ms;
  maybe_spill();
  return result;
}

PipelineResult MetricPipeline::run_streaming(const Sdfg& sdfg,
                                             const SymbolMap& symbols,
                                             const SimulationOptions& options) {
  arena_->ckpt_valid = false;
  arena_->live_valid = false;
  const auto start = Clock::now();
  FusedPass pass(config_, *arena_);
  StreamingSink sink(config_, pass);
  AccessTrace header =
      simulate_stream(sdfg, symbols, sink, options, &arena_->trace_arena);
  PipelineResult result = pass.finish(
      header, static_cast<std::int64_t>(sink.events()), sink.executions());
  // Streaming interleaves generation and consumption; the breakdown
  // collapses into simulate_ms (see PhaseTimings).
  timings_ = {ms_since(start), 0.0, 1};
  return result;
}

std::vector<PipelineResult> MetricPipeline::run_sweep(
    const Sdfg& sdfg, const SymbolMap& base, const std::string& symbol,
    const std::vector<std::int64_t>& values, bool streaming,
    const SimulationOptions& options) {
  std::vector<PipelineResult> results;
  results.reserve(values.size());
  SymbolMap binding = base;
  for (const std::int64_t value : values) {
    binding[symbol] = value;
    results.push_back(streaming ? run_streaming(sdfg, binding, options)
                                : run(sdfg, binding, options));
  }
  return results;
}

namespace {

// Delta plans use a fixed fine granularity instead of the thread-derived
// default: with max_chunks_per_map this large, plan_trace clamps the
// per-chunk target to kMinChunkEvents, so chunk BOUNDARIES depend only
// on the program and the binding — never on the machine — and the same
// outer ordinal lands in the same chunk across steps, which is what
// makes prefix matching against the checkpointed plan meaningful.
constexpr int kDeltaMaxChunks = 1 << 20;

// Fingerprint of the SimulationOptions fields that can change the
// simulator's OUTPUT. compiled / parallel_trace / lane_width are
// excluded on purpose: they are bit-identical execution strategies, so
// toggling them must not invalidate a checkpoint.
std::uint64_t delta_options_fingerprint(const SimulationOptions& options) {
  std::uint64_t hash = 1469598103934665603ull;
  auto mix = [&hash](std::uint64_t value) {
    hash ^= value;
    hash *= 1099511628211ull;
  };
  mix(static_cast<std::uint64_t>(options.placement_alignment));
  mix(options.wcr_reads ? 1 : 0);
  return hash;
}

// Streaming-style line-id bounds: derived from the header layouts alone
// (detail::line_range_of), with no widening to observed lines. For
// simulator-produced traces every event is in bounds, so this matches
// both run(trace) and run_streaming() bit for bit — the delta engine
// always replays simulator output, never hand-built traces.
void delta_line_bounds(const PipelineConfig& config, const AccessTrace& header,
                       std::int64_t& distance_lo, std::int64_t& distance_span,
                       std::int64_t& cache_lo, std::int64_t& cache_span) {
  distance_lo = distance_span = cache_lo = cache_span = 0;
  detail::line_range_of(header.layouts, config.line_size, distance_lo,
                        distance_span, nullptr);
  if (config.cache) {
    detail::line_range_of(header.layouts, config.cache->line_size, cache_lo,
                          cache_span, nullptr);
  }
}

// Feeds trace events [from, n) into the fused pass, deriving line ids
// per event from the header's addressing exactly like StreamingSink.
// With from > 0 the pass must have adopted the checkpointed live state.
void delta_replay(const PipelineConfig& config, FusedPass& pass,
                  const AccessTrace& trace, std::size_t from, std::size_t n) {
  const std::vector<detail::ContainerAddressing> addressing =
      detail::addressing_for(trace.layouts);
  const bool shared_cache_line =
      !config.cache || config.cache->line_size == config.line_size;
  const bool needs_line = config.needs_distances();
  const std::span<const std::int32_t> containers =
      trace.events.container_column();
  const std::span<const std::int64_t> flats = trace.events.flat_column();
  const std::span<const std::uint8_t> writes = trace.events.write_column();
  for (std::size_t i = from; i < n; ++i) {
    const detail::ContainerAddressing& addr =
        addressing[static_cast<std::size_t>(containers[i])];
    std::int64_t line = 0;
    std::int64_t cache_line = 0;
    if (needs_line || (config.cache && shared_cache_line)) {
      line = addr.line_of(flats[i], config.line_size);
      cache_line = line;
    }
    if (config.cache && !shared_cache_line) {
      cache_line = addr.line_of(flats[i], config.cache->line_size);
    }
    if (needs_line) pass.fenwick().ensure(i);
    pass.consume(i, containers[i], flats[i], writes[i] != 0, line,
                 cache_line);
  }
}

// Checkpoints the pass's raw state in the arena and returns a finalized
// deep copy — the caller-facing result. The raw live state is what the
// next delta step resumes from; it is never finalized itself.
PipelineResult delta_snapshot(FusedPass& pass, ArenaState& arena,
                              const AccessTrace& header, std::int64_t events,
                              std::int64_t executions) {
  PipelineResult raw = pass.take_raw();
  raw.events = events;
  raw.executions = executions;
  PipelineResult snapshot = raw;
  pass.finalize_into(header, snapshot);
  arena.live = std::move(raw);
  arena.live_valid = true;
  return snapshot;
}

struct ChunkMatch {
  bool clean = false;
  std::int64_t old_event_offset = 0;
  std::int64_t old_execution_offset = 0;
};

// One warm step against a valid checkpoint. Returns true with `result`
// populated when the step was satisfied without a cold recompute
// (kNoChange or kChunkDelta); returns false — checkpoint left intact —
// when the engine must fall back (outcome.reason says why).
bool delta_step(const PipelineConfig& config, ArenaState& arena,
                const Sdfg& sdfg, const SymbolMap& symbols,
                const SimulationOptions& options, DeltaOutcome& outcome,
                PipelineResult& result, PhaseTimings& timings) {
  const auto start = Clock::now();
  const std::set<std::string> changed =
      symbolic::changed_symbols(arena.ckpt_binding, symbols);
  if (changed.empty()) {
    outcome.path = DeltaOutcome::Path::kNoChange;
    outcome.reason = "";
    outcome.chunks_total =
        static_cast<std::int64_t>(arena.ckpt_plan.chunks.size());
    outcome.chunks_clean = outcome.chunks_total;
    FusedPass pass(config, arena);
    result = arena.live;
    pass.finalize_into(arena.trace, result);
    timings = {0.0, ms_since(start), 1};
    return true;
  }

  const std::int64_t n_old = arena.ckpt_plan.total_events;
  if (n_old != static_cast<std::int64_t>(arena.trace.events.size())) {
    outcome.reason = "checkpoint trace out of sync";
    return false;
  }

  plan_trace_into(sdfg, symbols, options, kDeltaMaxChunks,
                  arena.scratch_plan);
  const TracePlan& plan_new = arena.scratch_plan;
  const TracePlan& plan_old = arena.ckpt_plan;
  if (!plan_new.parallelizable) {
    outcome.reason = "new binding not exactly plannable";
    return false;
  }

  const std::vector<std::set<std::string>> deps =
      chunk_dependencies(sdfg, plan_new);

  // Prefix-match new chunks against old ones of the same (state, node)
  // group: the k-th new chunk of a group reuses the k-th old one when
  // its ordinal range and event/execution counts agree AND its
  // dependency set is disjoint from the binding delta.
  std::map<std::pair<int, ir::NodeId>, std::pair<std::size_t, std::size_t>>
      old_groups;
  for (std::size_t i = 0; i < plan_old.chunks.size();) {
    std::size_t j = i + 1;
    while (j < plan_old.chunks.size() &&
           plan_old.chunks[j].state == plan_old.chunks[i].state &&
           plan_old.chunks[j].node == plan_old.chunks[i].node) {
      ++j;
    }
    old_groups.emplace(
        std::make_pair(plan_old.chunks[i].state, plan_old.chunks[i].node),
        std::make_pair(i, j));
    i = j;
  }

  std::vector<ChunkMatch> matches(plan_new.chunks.size());
  std::int64_t clean_chunks = 0;
  std::size_t old_reused_in_place = 0;
  for (std::size_t g = 0; g < plan_new.chunks.size();) {
    std::size_t h = g + 1;
    while (h < plan_new.chunks.size() &&
           plan_new.chunks[h].state == plan_new.chunks[g].state &&
           plan_new.chunks[h].node == plan_new.chunks[g].node) {
      ++h;
    }
    const auto group = old_groups.find(
        std::make_pair(plan_new.chunks[g].state, plan_new.chunks[g].node));
    const std::size_t old_size =
        group == old_groups.end() ? 0
                                  : group->second.second - group->second.first;
    for (std::size_t k = 0; g + k < h; ++k) {
      const std::size_t idx = g + k;
      if (k >= old_size) continue;
      const TraceChunk& oc = plan_old.chunks[group->second.first + k];
      const TraceChunk& nc = plan_new.chunks[idx];
      if (oc.outer_begin != nc.outer_begin ||
          oc.outer_count != nc.outer_count ||
          oc.event_count != nc.event_count ||
          oc.execution_count != nc.execution_count) {
        continue;
      }
      bool dirty = false;
      const std::set<std::string>& dep = deps[idx];
      for (const std::string& name : changed) {
        if (dep.count(name)) {
          dirty = true;
          break;
        }
      }
      if (dirty) continue;
      matches[idx].clean = true;
      matches[idx].old_event_offset = oc.event_offset;
      matches[idx].old_execution_offset = oc.execution_offset;
      ++clean_chunks;
      if (oc.event_offset == nc.event_offset &&
          oc.execution_offset == nc.execution_offset) {
        ++old_reused_in_place;
      }
    }
    g = h;
  }

  if (clean_chunks == 0) {
    outcome.reason = "binding delta dirties every chunk";
    return false;
  }

  // Layouts decide the flat -> line mapping of EVERY event (a container
  // growing shifts the placed base of all later ones), so the fused
  // state can only be resumed — and its line-derived tallies only stay
  // valid — when no changed symbol reaches any container's geometry.
  bool layout_clean = true;
  for (const auto& [name, descriptor] : sdfg.arrays()) {
    for (const auto& extent : descriptor.shape) {
      if (symbolic::depends_on_any(extent, changed)) layout_clean = false;
    }
    for (const auto& stride : descriptor.strides) {
      if (symbolic::depends_on_any(stride, changed)) layout_clean = false;
    }
    if (symbolic::depends_on_any(descriptor.start_offset, changed)) {
      layout_clean = false;
    }
    if (!layout_clean) break;
  }

  // Patch phase: place containers under the new binding, keep clean
  // chunks, re-simulate dirty chunks at their absolute slices. When
  // every clean chunk keeps its exact offsets — the common slider case:
  // appended, truncated, or overwritten-in-place chunks only — the
  // front buffer is patched IN PLACE and clean events are never even
  // copied. Only offset-shifting deltas (a chunk growing mid-trace) pay
  // for splicing into the back buffer.
  arena.scratch_header.containers.clear();
  arena.scratch_header.layouts.clear();
  arena.scratch_header.events.clear();
  arena.scratch_header.executions = 0;
  place_containers(sdfg, symbols, options, arena.scratch_header);

  const std::size_t n_new = static_cast<std::size_t>(plan_new.total_events);
  bool in_place = true;
  for (std::size_t idx = 0; idx < plan_new.chunks.size(); ++idx) {
    const TraceChunk& nc = plan_new.chunks[idx];
    if (matches[idx].clean &&
        (matches[idx].old_event_offset != nc.event_offset ||
         matches[idx].old_execution_offset != nc.execution_offset)) {
      in_place = false;
      break;
    }
  }
  // Both patch shapes write disjoint absolute slices (and the splice
  // reads the already-resident checkpoint columns), so the per-chunk
  // work fans out over the pool; chunk outputs are position-determined,
  // keeping the patched trace bit-identical at any thread count.
  if (in_place) {
    arena.trace.events.resize(n_new);  // Preserves the clean prefix.
    par::parallel_for(
        plan_new.chunks.size(), 1, [&](std::size_t begin, std::size_t end) {
          for (std::size_t idx = begin; idx < end; ++idx) {
            if (matches[idx].clean) continue;
            simulate_chunk(sdfg, symbols, options, arena.scratch_header,
                           plan_new.chunks[idx], arena.trace.events,
                           /*absolute=*/true);
          }
        });
  } else {
    arena.back_events.resize(n_new);
    par::parallel_for(
        plan_new.chunks.size(), 1, [&](std::size_t begin, std::size_t end) {
          for (std::size_t idx = begin; idx < end; ++idx) {
            const TraceChunk& nc = plan_new.chunks[idx];
            if (matches[idx].clean) {
              arena.back_events.assign_range(
                  arena.trace.events,
                  static_cast<std::size_t>(matches[idx].old_event_offset),
                  static_cast<std::size_t>(nc.event_offset),
                  static_cast<std::size_t>(nc.event_count),
                  nc.event_offset - matches[idx].old_event_offset,
                  nc.execution_offset - matches[idx].old_execution_offset);
            } else {
              simulate_chunk(sdfg, symbols, options, arena.scratch_header, nc,
                             arena.back_events, /*absolute=*/true);
            }
          }
        });
    // The patched back buffer becomes the checkpoint trace (the old
    // front buffer is kept as a future patch target).
    std::swap(arena.trace.events, arena.back_events);
  }

  arena.trace.containers = std::move(arena.scratch_header.containers);
  arena.trace.layouts = std::move(arena.scratch_header.layouts);
  arena.trace.executions = plan_new.total_executions;
  // plan_new / plan_old alias scratch_plan / ckpt_plan, so capture every
  // count needed below BEFORE the swap promotes the new plan to
  // checkpoint.
  const std::size_t old_chunk_count = plan_old.chunks.size();
  const std::size_t new_chunk_count = plan_new.chunks.size();
  std::swap(arena.ckpt_plan, arena.scratch_plan);
  arena.ckpt_binding = symbols;
  const double patch_ms = ms_since(start);
  const auto metric_start = Clock::now();

  // Metric phase. Append-only steps — every old chunk reused at its old
  // offsets, trace only grew, layouts untouched — RESUME the live fused
  // state and consume just the new suffix; anything else replays the
  // patched trace from event 0 (still skipping the simulator for clean
  // chunks, which is where the bulk of a cold step goes).
  const bool resumed =
      layout_clean && old_reused_in_place == old_chunk_count &&
      static_cast<std::int64_t>(n_new) >= n_old;
  FusedPass pass(config, arena);
  if (resumed) {
    pass.adopt(std::move(arena.live));
    arena.live_valid = false;
    delta_replay(config, pass, arena.trace,
                 static_cast<std::size_t>(n_old), n_new);
  } else {
    std::int64_t distance_lo = 0, distance_span = 0;
    std::int64_t cache_lo = 0, cache_span = 0;
    delta_line_bounds(config, arena.trace, distance_lo, distance_span,
                      cache_lo, cache_span);
    pass.begin(arena.trace, n_new, distance_lo, distance_span, cache_lo,
               cache_span);
    delta_replay(config, pass, arena.trace, 0, n_new);
  }
  result = delta_snapshot(pass, arena, arena.trace,
                          static_cast<std::int64_t>(n_new),
                          arena.trace.executions);

  outcome.path = DeltaOutcome::Path::kChunkDelta;
  outcome.reason = "";
  outcome.resumed = resumed;
  outcome.chunks_total = static_cast<std::int64_t>(new_chunk_count);
  outcome.chunks_clean = clean_chunks;
  outcome.chunks_dirty = outcome.chunks_total - clean_chunks;
  timings = {patch_ms, ms_since(metric_start), 1};
  return true;
}

}  // namespace

PipelineResult MetricPipeline::run_delta(const Sdfg& sdfg,
                                         std::uint64_t program_version,
                                         const SymbolMap& symbols,
                                         const SimulationOptions& options,
                                         DeltaOutcome* outcome_out) {
  ArenaState& arena = *arena_;
  DeltaOutcome outcome;
  outcome.reason = "no checkpoint";
  const std::uint64_t options_fp = delta_options_fingerprint(options);

  if (arena.ckpt_valid && arena.live_valid) {
    if (arena.ckpt_program != program_version) {
      outcome.reason = "program changed";
    } else if (arena.ckpt_options != options_fp) {
      outcome.reason = "options changed";
    } else {
      bool warm = false;
      PipelineResult result;
      try {
        // The splice below reads the checkpoint columns from parallel
        // workers; a spilled checkpoint must fault in on this thread
        // first.
        arena.trace.events.ensure_resident();
        warm = delta_step(config_, arena, sdfg, symbols, options, outcome,
                          result, timings_);
      } catch (...) {
        // A failed splice leaves the checkpoint inconsistent; drop it and
        // let the cold path below surface the canonical error behavior.
        arena.ckpt_valid = false;
        arena.live_valid = false;
        outcome.reason = "delta step failed";
      }
      if (warm) {
        maybe_spill();
        if (outcome_out) *outcome_out = outcome;
        return result;
      }
    }
  }

  // Cold path: full simulation + full fused replay, then arm the
  // checkpoint for the next step.
  outcome.path = DeltaOutcome::Path::kCold;
  arena.ckpt_valid = false;
  arena.live_valid = false;
  const auto cold_start = Clock::now();
  simulate_into(sdfg, symbols, options, arena.trace, &arena.trace_arena);
  const double cold_simulate_ms = ms_since(cold_start);
  const auto cold_metric_start = Clock::now();
  const std::size_t n = arena.trace.events.size();
  std::int64_t distance_lo = 0, distance_span = 0;
  std::int64_t cache_lo = 0, cache_span = 0;
  delta_line_bounds(config_, arena.trace, distance_lo, distance_span,
                    cache_lo, cache_span);
  FusedPass pass(config_, arena);
  pass.begin(arena.trace, n, distance_lo, distance_span, cache_lo,
             cache_span);
  delta_replay(config_, pass, arena.trace, 0, n);
  PipelineResult result =
      delta_snapshot(pass, arena, arena.trace, static_cast<std::int64_t>(n),
                     arena.trace.executions);
  timings_ = {cold_simulate_ms, ms_since(cold_metric_start), 1};

  plan_trace_into(sdfg, symbols, options, kDeltaMaxChunks, arena.ckpt_plan);
  if (arena.ckpt_plan.parallelizable &&
      arena.ckpt_plan.total_events == static_cast<std::int64_t>(n) &&
      arena.ckpt_plan.total_executions == arena.trace.executions) {
    arena.ckpt_valid = true;
    arena.ckpt_program = program_version;
    arena.ckpt_options = options_fp;
    arena.ckpt_binding = symbols;
  }
  maybe_spill();
  if (outcome_out) *outcome_out = outcome;
  return result;
}

std::size_t MetricPipeline::event_storage_bytes() const {
  return arena_->trace.events.capacity_bytes();
}

void MetricPipeline::set_spill(std::size_t budget_bytes, std::string dir) {
  spill_budget_bytes_ = budget_bytes;
  spill_dir_ = std::move(dir);
}

void MetricPipeline::maybe_spill() {
  if (spill_budget_bytes_ == 0) return;
  EventList& events = arena_->trace.events;
  if (events.spilled() || events.capacity_bytes() <= spill_budget_bytes_) {
    return;
  }
  store::spill_event_list(events, spill_dir_);
}

}  // namespace dmv::sim
