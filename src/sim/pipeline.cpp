#include "dmv/sim/pipeline.hpp"

#include <algorithm>
#include <list>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dmv/par/par.hpp"
#include "dmv/sim/trace_plan.hpp"
#include "metric_detail.hpp"

namespace dmv::sim {

namespace {

// Beyond this many dense slots, per-line state falls back to a hash map
// (hand-built traces can place containers at arbitrary addresses).
constexpr std::int64_t kMaxDenseSpan = std::int64_t{1} << 26;

// line -> most recent event position (-1 = never seen). Dense over the
// LineTable's id range when that range is sane, hash map otherwise.
class LastPositions {
 public:
  void reset_dense(std::int64_t lo, std::int64_t span) {
    dense_ = true;
    lo_ = lo;
    values_.assign(static_cast<std::size_t>(span), -1);
    hash_.clear();
  }
  void reset_hash(std::size_t expected) {
    dense_ = false;
    values_.clear();
    hash_.clear();
    hash_.reserve(expected);
  }
  std::int64_t& operator()(std::int64_t line) {
    if (dense_) return values_[static_cast<std::size_t>(line - lo_)];
    return hash_.try_emplace(line, -1).first->second;
  }

 private:
  bool dense_ = true;
  std::int64_t lo_ = 0;
  std::vector<std::int64_t> values_;
  std::unordered_map<std::int64_t, std::int64_t> hash_;
};

// Exact LRU state of one cache set (same structure and update rule as
// cache_model's per-set simulation).
struct LruSet {
  std::list<std::int64_t> lru;  ///< Front = most recently used.
  std::unordered_map<std::int64_t, std::list<std::int64_t>::iterator> where;
};

struct CacheGeometry {
  std::int64_t ways = 0;
  std::int64_t num_sets = 1;
};

CacheGeometry cache_geometry(const CacheConfig& config) {
  if (config.line_size <= 0 || config.total_size <= 0) {
    throw std::invalid_argument("simulate_cache: bad cache geometry");
  }
  const std::int64_t total_lines = config.total_size / config.line_size;
  if (total_lines <= 0) {
    throw std::invalid_argument("simulate_cache: cache smaller than a line");
  }
  CacheGeometry geometry;
  geometry.ways = config.ways;
  if (geometry.ways == 0) {
    geometry.ways = total_lines;  // Fully associative.
  } else {
    geometry.num_sets = total_lines / geometry.ways;
    if (geometry.num_sets <= 0) {
      throw std::invalid_argument(
          "simulate_cache: associativity exceeds cache size");
    }
  }
  return geometry;
}

// All buffers that survive across run() calls — the sweep-scoped
// memory-reuse half of the pipeline. A slider sweep pays for the trace
// columns, line table, Fenwick tree, per-line state, and per-element
// scratch once instead of once per binding.
struct ArenaState {
  AccessTrace trace;        ///< run(sdfg) materialization target.
  TraceArena trace_arena;   ///< Chunk plan + streaming ring buffers.
  LineTable table;          ///< Distance-granularity line ids.
  LineTable cache_table;    ///< Only if the cache uses another line size.
  detail::Fenwick fenwick;
  LastPositions last_position;
  /// Per-container (flat, distance) pairs for element stats.
  std::vector<std::vector<std::pair<std::int64_t, std::int64_t>>> finite;
  std::vector<std::int64_t> offsets;  ///< Counting-sort scratch.
  std::vector<std::int64_t> sorted;   ///< Counting-sort scratch.
  std::vector<LruSet> sets;
  std::vector<std::uint8_t> seen;     ///< Cache line ever resident.
  std::int64_t seen_lo = 0;
};

}  // namespace

struct MetricPipeline::Arena : ArenaState {};

namespace {

// The fused per-event consumer bundle. One consume() call advances
// every enabled metric; each derived quantity (cache line id, stack
// distance) is computed exactly once per event and shared.
class FusedPass {
 public:
  FusedPass(const PipelineConfig& config, ArenaState& arena)
      : config_(config), arena_(arena) {}

  /// `expected_events` is the trace length when known (materialized) or
  /// 0 in streaming mode (the Fenwick grows on demand).
  void begin(const AccessTrace& header, std::size_t expected_events,
             std::int64_t distance_lo, std::int64_t distance_span,
             std::int64_t cache_lo, std::int64_t cache_span) {
    const std::size_t num_containers = header.layouts.size();
    result_ = PipelineResult{};
    result_.containers = header.containers;

    if (config_.counts) {
      result_.counts.reads.clear();
      result_.counts.writes.clear();
      result_.counts.reads.reserve(num_containers);
      result_.counts.writes.reserve(num_containers);
      for (const ConcreteLayout& layout : header.layouts) {
        result_.counts.reads.emplace_back(layout.total_elements(), 0);
        result_.counts.writes.emplace_back(layout.total_elements(), 0);
      }
    }

    if (config_.needs_distances()) {
      arena_.fenwick.reset(expected_events);
      if (distance_span >= 0 && distance_span <= kMaxDenseSpan) {
        arena_.last_position.reset_dense(distance_lo, distance_span);
      } else {
        arena_.last_position.reset_hash(expected_events);
      }
      if (config_.keep_distances) {
        result_.distances.line_size = config_.line_size;
        result_.distances.distances.clear();
        result_.distances.distances.reserve(expected_events);
      }
    }

    if (config_.miss_threshold_lines > 0) {
      result_.misses.threshold_lines = config_.miss_threshold_lines;
      result_.misses.per_container.assign(num_containers, {});
      result_.misses.element_misses.clear();
      result_.misses.element_misses.reserve(num_containers);
      for (const ConcreteLayout& layout : header.layouts) {
        result_.misses.element_misses.emplace_back(layout.total_elements(),
                                                   0);
      }
    }

    if (config_.element_stats) {
      arena_.finite.resize(num_containers);
      for (auto& pairs : arena_.finite) pairs.clear();
      result_.element_stats.assign(num_containers, {});
      for (std::size_t c = 0; c < num_containers; ++c) {
        result_.element_stats[c].cold_count.assign(
            static_cast<std::size_t>(header.layouts[c].total_elements()), 0);
      }
    }

    if (config_.cache) {
      geometry_ = cache_geometry(*config_.cache);
      result_.cache.config = *config_.cache;
      result_.cache.per_container.assign(num_containers, {});
      arena_.sets.clear();
      arena_.sets.resize(static_cast<std::size_t>(geometry_.num_sets));
      if (cache_span < 0 || cache_span > kMaxDenseSpan) {
        throw std::invalid_argument(
            "MetricPipeline: cache line-id range too sparse for the fused "
            "cache consumer");
      }
      arena_.seen.assign(static_cast<std::size_t>(cache_span), 0);
      arena_.seen_lo = cache_lo;
    }
  }

  void consume(std::size_t i, std::int32_t container, std::int64_t flat,
               bool is_write, std::int64_t line, std::int64_t cache_line) {
    if (config_.counts) {
      auto& column =
          is_write ? result_.counts.writes : result_.counts.reads;
      ++column[static_cast<std::size_t>(container)]
              [static_cast<std::size_t>(flat)];
    }

    if (config_.needs_distances()) {
      std::int64_t distance;
      std::int64_t& previous = arena_.last_position(line);
      if (previous < 0) {
        distance = kInfiniteDistance;
      } else {
        const std::size_t p = static_cast<std::size_t>(previous);
        distance = arena_.fenwick.range(p + 1, i);
        arena_.fenwick.add(p, -1);
      }
      arena_.fenwick.add(i, +1);
      previous = static_cast<std::int64_t>(i);

      if (config_.keep_distances) {
        result_.distances.distances.push_back(distance);
      }
      if (config_.miss_threshold_lines > 0) {
        MissStats& stats =
            result_.misses.per_container[static_cast<std::size_t>(container)];
        if (distance == kInfiniteDistance) {
          ++stats.cold;
          ++result_.misses.element_misses[static_cast<std::size_t>(container)]
                                         [static_cast<std::size_t>(flat)];
        } else if (distance >= config_.miss_threshold_lines) {
          ++stats.capacity;
          ++result_.misses.element_misses[static_cast<std::size_t>(container)]
                                         [static_cast<std::size_t>(flat)];
        } else {
          ++stats.hits;
        }
      }
      if (config_.element_stats) {
        if (distance == kInfiniteDistance) {
          ++result_.element_stats[static_cast<std::size_t>(container)]
               .cold_count[static_cast<std::size_t>(flat)];
        } else {
          arena_.finite[static_cast<std::size_t>(container)].emplace_back(
              flat, distance);
        }
      }
    }

    if (config_.cache) {
      LruSet& set = arena_.sets[static_cast<std::size_t>(
          cache_line % geometry_.num_sets)];
      MissStats& stats =
          result_.cache.per_container[static_cast<std::size_t>(container)];
      auto it = set.where.find(cache_line);
      if (it != set.where.end()) {
        ++stats.hits;
        set.lru.splice(set.lru.begin(), set.lru, it->second);
      } else {
        std::uint8_t& seen =
            arena_.seen[static_cast<std::size_t>(cache_line -
                                                 arena_.seen_lo)];
        if (!seen) {
          seen = 1;
          ++stats.cold;
        } else {
          ++stats.capacity;
        }
        set.lru.push_front(cache_line);
        set.where[cache_line] = set.lru.begin();
        if (static_cast<std::int64_t>(set.lru.size()) > geometry_.ways) {
          set.where.erase(set.lru.back());
          set.lru.pop_back();
        }
      }
    }
  }

  PipelineResult finish(const AccessTrace& header, std::int64_t events,
                        std::int64_t executions) {
    result_.events = events;
    result_.executions = executions;

    if (config_.element_stats) {
      for (std::size_t c = 0; c < header.layouts.size(); ++c) {
        detail::finalize_element_stats(
            header.layouts[c].total_elements(), arena_.finite[c],
            arena_.offsets, arena_.sorted, result_.element_stats[c]);
      }
    }
    if (config_.miss_threshold_lines > 0) {
      for (const MissStats& stats : result_.misses.per_container) {
        result_.misses.total.cold += stats.cold;
        result_.misses.total.capacity += stats.capacity;
        result_.misses.total.hits += stats.hits;
      }
    }
    if (config_.cache) {
      for (const MissStats& stats : result_.cache.per_container) {
        result_.cache.total.cold += stats.cold;
        result_.cache.total.capacity += stats.capacity;
        result_.cache.total.hits += stats.hits;
      }
    }
    if (config_.movement) {
      result_.movement.line_size = config_.line_size;
      result_.movement.bytes_per_container.reserve(header.layouts.size());
      for (const MissStats& stats : result_.misses.per_container) {
        const std::int64_t bytes = stats.misses() * config_.line_size;
        result_.movement.bytes_per_container.push_back(bytes);
        result_.movement.total_bytes += bytes;
      }
    }
    return std::move(result_);
  }

  detail::Fenwick& fenwick() { return arena_.fenwick; }

 private:
  const PipelineConfig& config_;
  ArenaState& arena_;
  PipelineResult result_;
  CacheGeometry geometry_;
};

// Streaming adapter: the simulator pushes events straight into the
// fused pass; line ids are derived per event from the hoisted
// per-container addressing (once each — shared between the distance and
// cache consumers when their line sizes agree).
class StreamingSink final : public EventSink {
 public:
  StreamingSink(const PipelineConfig& config, FusedPass& pass)
      : config_(config), pass_(pass) {}

  void on_trace_header(const AccessTrace& header) override {
    addressing_ = detail::addressing_for(header.layouts);
    std::int64_t distance_lo = 0, distance_span = 0;
    detail::line_range_of(header.layouts, config_.line_size, distance_lo,
                          distance_span, nullptr);
    std::int64_t cache_lo = 0, cache_span = 0;
    if (config_.cache) {
      detail::line_range_of(header.layouts, config_.cache->line_size,
                            cache_lo, cache_span, nullptr);
    }
    shared_cache_line_ =
        !config_.cache || config_.cache->line_size == config_.line_size;
    pass_.begin(header, /*expected_events=*/0, distance_lo, distance_span,
                cache_lo, cache_span);
  }

  void on_event(const AccessEvent& event) override {
    const detail::ContainerAddressing& addressing =
        addressing_[static_cast<std::size_t>(event.container)];
    std::int64_t line = 0;
    std::int64_t cache_line = 0;
    const bool needs_line = config_.needs_distances();
    if (needs_line || (config_.cache && shared_cache_line_)) {
      line = addressing.line_of(event.flat, config_.line_size);
      cache_line = line;
    }
    if (config_.cache && !shared_cache_line_) {
      cache_line = addressing.line_of(event.flat, config_.cache->line_size);
    }
    if (needs_line) pass_.fenwick().ensure(index_);
    pass_.consume(index_, event.container, event.flat, event.is_write, line,
                  cache_line);
    ++index_;
  }

  void on_trace_end(std::int64_t executions) override {
    executions_ = executions;
  }

  std::size_t events() const { return index_; }
  std::int64_t executions() const { return executions_; }

 private:
  const PipelineConfig& config_;
  FusedPass& pass_;
  std::vector<detail::ContainerAddressing> addressing_;
  bool shared_cache_line_ = true;
  std::size_t index_ = 0;
  std::int64_t executions_ = 0;
};

}  // namespace

int PipelineResult::container_index(const std::string& name) const {
  for (std::size_t c = 0; c < containers.size(); ++c) {
    if (containers[c] == name) return static_cast<int>(c);
  }
  return -1;
}

std::uint64_t fingerprint(const PipelineConfig& config) {
  // FNV-1a over every output-relevant field.
  std::uint64_t hash = 1469598103934665603ull;
  auto mix = [&hash](std::uint64_t value) {
    hash ^= value;
    hash *= 1099511628211ull;
  };
  mix(static_cast<std::uint64_t>(config.line_size));
  mix(config.counts ? 1 : 0);
  mix(static_cast<std::uint64_t>(config.miss_threshold_lines));
  mix(config.keep_distances ? 1 : 0);
  mix(config.element_stats ? 1 : 0);
  mix(config.cache.has_value() ? 1 : 0);
  if (config.cache) {
    mix(static_cast<std::uint64_t>(config.cache->line_size));
    mix(static_cast<std::uint64_t>(config.cache->total_size));
    mix(static_cast<std::uint64_t>(config.cache->ways));
  }
  mix(config.movement ? 1 : 0);
  return hash;
}

std::size_t approx_size_bytes(const PipelineResult& result) {
  std::size_t bytes = 0;
  for (const std::string& name : result.containers) {
    bytes += name.size() + sizeof(std::string);
  }
  auto nested = [&bytes](const std::vector<std::vector<std::int64_t>>& v) {
    bytes += v.size() * sizeof(std::vector<std::int64_t>);
    for (const auto& inner : v) bytes += inner.size() * sizeof(std::int64_t);
  };
  nested(result.counts.reads);
  nested(result.counts.writes);
  bytes += result.distances.distances.size() * sizeof(std::int64_t);
  bytes += result.misses.per_container.size() * sizeof(MissStats);
  nested(result.misses.element_misses);
  for (const ElementDistanceStats& stats : result.element_stats) {
    bytes += (stats.min.size() + stats.median.size() + stats.max.size() +
              stats.cold_count.size()) *
             sizeof(std::int64_t);
  }
  bytes += result.element_stats.size() * sizeof(ElementDistanceStats);
  bytes += result.cache.per_container.size() * sizeof(MissStats);
  bytes += result.movement.bytes_per_container.size() * sizeof(std::int64_t);
  return bytes;
}

MetricPipeline::MetricPipeline(PipelineConfig config)
    : config_(config), arena_(std::make_unique<Arena>()) {
  if (config_.movement && config_.miss_threshold_lines <= 0) {
    throw std::invalid_argument(
        "MetricPipeline: movement needs miss_threshold_lines > 0");
  }
  if (config_.line_size <= 0) {
    throw std::invalid_argument("MetricPipeline: bad line size");
  }
  if (config_.cache) cache_geometry(*config_.cache);  // Validate early.
}

MetricPipeline::~MetricPipeline() = default;
MetricPipeline::MetricPipeline(MetricPipeline&&) noexcept = default;
MetricPipeline& MetricPipeline::operator=(MetricPipeline&&) noexcept =
    default;

PipelineResult MetricPipeline::run(const AccessTrace& trace) {
  const std::size_t n = trace.events.size();
  const bool needs_lines = config_.needs_distances() || config_.cache;

  std::int64_t distance_lo = 0, distance_span = 0;
  std::span<const std::int64_t> lines;
  if (config_.needs_distances() ||
      (config_.cache && config_.cache->line_size == config_.line_size)) {
    build_line_table(trace, config_.line_size, arena_->table);
    lines = arena_->table.lines;
    // Widen the dense bounds to the observed ids so hand-built traces
    // with out-of-buffer addresses stay correct (hash fallback kicks in
    // if the widened span is unreasonable).
    distance_lo = arena_->table.first_line;
    std::int64_t hi = arena_->table.first_line + arena_->table.line_span - 1;
    for (const std::int64_t line : lines) {
      distance_lo = std::min(distance_lo, line);
      hi = std::max(hi, line);
    }
    distance_span = n == 0 ? 0 : hi - distance_lo + 1;
  }

  std::int64_t cache_lo = 0, cache_span = 0;
  std::span<const std::int64_t> cache_lines = lines;
  if (config_.cache) {
    if (config_.cache->line_size != config_.line_size) {
      build_line_table(trace, config_.cache->line_size, arena_->cache_table);
      cache_lines = arena_->cache_table.lines;
      cache_lo = arena_->cache_table.first_line;
      std::int64_t hi =
          arena_->cache_table.first_line + arena_->cache_table.line_span - 1;
      for (const std::int64_t line : cache_lines) {
        cache_lo = std::min(cache_lo, line);
        hi = std::max(hi, line);
      }
      cache_span = n == 0 ? 0 : hi - cache_lo + 1;
    } else {
      cache_lo = distance_lo;
      cache_span = distance_span;
    }
  }

  FusedPass pass(config_, *arena_);
  pass.begin(trace, n, distance_lo, distance_span, cache_lo, cache_span);

  const std::span<const std::int32_t> containers =
      trace.events.container_column();
  const std::span<const std::int64_t> flats = trace.events.flat_column();
  const std::span<const std::uint8_t> writes = trace.events.write_column();
  for (std::size_t i = 0; i < n; ++i) {
    pass.consume(i, containers[i], flats[i], writes[i] != 0,
                 needs_lines && !lines.empty() ? lines[i] : 0,
                 config_.cache ? cache_lines[i] : 0);
  }
  return pass.finish(trace, static_cast<std::int64_t>(n), trace.executions);
}

PipelineResult MetricPipeline::run(const Sdfg& sdfg, const SymbolMap& symbols,
                                   const SimulationOptions& options) {
  simulate_into(sdfg, symbols, options, arena_->trace, &arena_->trace_arena);
  return run(arena_->trace);
}

PipelineResult MetricPipeline::run_streaming(const Sdfg& sdfg,
                                             const SymbolMap& symbols,
                                             const SimulationOptions& options) {
  FusedPass pass(config_, *arena_);
  StreamingSink sink(config_, pass);
  AccessTrace header =
      simulate_stream(sdfg, symbols, sink, options, &arena_->trace_arena);
  return pass.finish(header, static_cast<std::int64_t>(sink.events()),
                     sink.executions());
}

std::vector<PipelineResult> MetricPipeline::run_sweep(
    const Sdfg& sdfg, const SymbolMap& base, const std::string& symbol,
    const std::vector<std::int64_t>& values, bool streaming,
    const SimulationOptions& options) {
  std::vector<PipelineResult> results;
  results.reserve(values.size());
  SymbolMap binding = base;
  for (const std::int64_t value : values) {
    binding[symbol] = value;
    results.push_back(streaming ? run_streaming(sdfg, binding, options)
                                : run(sdfg, binding, options));
  }
  return results;
}

std::size_t MetricPipeline::event_storage_bytes() const {
  return arena_->trace.events.capacity_bytes();
}

}  // namespace dmv::sim
