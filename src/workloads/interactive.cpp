#include <map>
#include <string>
#include <utility>
#include <vector>

#include "dmv/workloads/workloads.hpp"

namespace dmv::workloads {

Sdfg fixed_capacity(Sdfg sdfg,
                    const std::map<std::string, std::string>& capacity_of) {
  std::map<std::string, symbolic::Expr> replacements;
  for (const auto& [slider, capacity] : capacity_of) {
    sdfg.add_symbol(capacity);
    replacements.emplace(slider, symbolic::Expr::symbol(capacity));
  }
  std::vector<std::string> names;
  names.reserve(sdfg.arrays().size());
  for (const auto& [name, descriptor] : sdfg.arrays()) {
    names.push_back(name);
  }
  for (const std::string& name : names) {
    ir::DataDescriptor& descriptor = sdfg.array(name);
    for (symbolic::Expr& extent : descriptor.shape) {
      extent = extent.substitute(replacements);
    }
    for (symbolic::Expr& stride : descriptor.strides) {
      stride = stride.substitute(replacements);
    }
    descriptor.start_offset = descriptor.start_offset.substitute(replacements);
  }
  return sdfg;
}

}  // namespace dmv::workloads
