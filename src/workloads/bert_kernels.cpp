#include <cmath>
#include <cstdint>
#include <vector>

#include "dmv/workloads/workloads.hpp"

namespace dmv::workloads::kernels {

namespace {

float synthf(std::uint64_t seed) {
  seed ^= seed << 13;
  seed ^= seed >> 7;
  seed ^= seed << 17;
  return static_cast<float>(seed % 2001) / 1000.0f - 1.0f;
}

void fill(std::vector<float>& v, std::uint64_t salt, float scale) {
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = scale * synthf(i + salt);
  }
}

float gelu(float x) {
  return 0.5f * x * (1.0f + std::erf(x / 1.4142135623730951f));
}

// Layernorm over the last axis of [B, SM, I] with unit gamma / zero beta
// (the IR variant's affine step folds into this in the fused kernels).
void layernorm_rows(const float* in, float* out, std::int64_t rows,
                    std::int64_t width) {
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* row = in + r * width;
    float* dst = out + r * width;
    float mean = 0;
    for (std::int64_t i = 0; i < width; ++i) mean += row[i];
    mean /= static_cast<float>(width);
    float variance = 0;
    for (std::int64_t i = 0; i < width; ++i) {
      variance += (row[i] - mean) * (row[i] - mean);
    }
    variance /= static_cast<float>(width);
    const float inv = 1.0f / std::sqrt(variance + 1e-5f);
    for (std::int64_t i = 0; i < width; ++i) {
      dst[i] = (row[i] - mean) * inv;
    }
  }
}

}  // namespace

BertData make_bert_data(const BertConfig& config) {
  BertData data;
  data.config = config;
  const auto B = config.B, H = config.H, SM = config.SM, I = config.I,
             emb = config.emb, P = config.P();
  data.x.resize(B * SM * I);
  data.wq.resize(H * I * P);
  data.wk.resize(H * I * P);
  data.wv.resize(H * I * P);
  data.wo.resize(H * P * I);
  data.w1.resize(I * emb);
  data.b1.resize(emb);
  data.w2.resize(emb * I);
  data.b2.resize(I);
  data.out.assign(B * SM * I, 0.0f);
  fill(data.x, 11, 1.0f);
  const float wscale = 1.0f / std::sqrt(static_cast<float>(I));
  fill(data.wq, 13, wscale);
  fill(data.wk, 17, wscale);
  fill(data.wv, 19, wscale);
  fill(data.wo, 23, wscale);
  fill(data.w1, 29, wscale);
  fill(data.b1, 31, 0.1f);
  fill(data.w2, 37, 1.0f / std::sqrt(static_cast<float>(emb)));
  fill(data.b2, 41, 0.1f);
  return data;
}

void bert_baseline(BertData& data) {
  const auto B = data.config.B, H = data.config.H, SM = data.config.SM,
             I = data.config.I, emb = data.config.emb, P = data.config.P();
  const float scale = 1.0f / std::sqrt(static_cast<float>(P));

  // Every operator materializes its full result, like the NumPy program.
  std::vector<float> Q(B * H * SM * P, 0), K(B * H * SM * P, 0),
      V(B * H * SM * P, 0);
  auto project = [&](const std::vector<float>& w, std::vector<float>& dst) {
    for (std::int64_t b = 0; b < B; ++b)
      for (std::int64_t h = 0; h < H; ++h)
        for (std::int64_t s = 0; s < SM; ++s) {
          float* q = &dst[((b * H + h) * SM + s) * P];
          const float* xv = &data.x[(b * SM + s) * I];
          for (std::int64_t i = 0; i < I; ++i) {
            const float* wrow = &w[(h * I + i) * P];
            const float xi = xv[i];
            for (std::int64_t pp = 0; pp < P; ++pp) q[pp] += xi * wrow[pp];
          }
        }
  };
  project(data.wq, Q);
  project(data.wk, K);
  project(data.wv, V);

  std::vector<float> S(B * H * SM * SM, 0);
  for (std::int64_t b = 0; b < B; ++b)
    for (std::int64_t h = 0; h < H; ++h)
      for (std::int64_t s = 0; s < SM; ++s) {
        float* row = &S[((b * H + h) * SM + s) * SM];
        const float* q = &Q[((b * H + h) * SM + s) * P];
        for (std::int64_t t = 0; t < SM; ++t) {
          const float* kv = &K[((b * H + h) * SM + t) * P];
          float acc = 0;
          for (std::int64_t pp = 0; pp < P; ++pp) acc += q[pp] * kv[pp];
          row[t] = acc;
        }
      }

  // Split softmax pipeline: scale, rowmax, subtract, exp, sum, divide —
  // each a separate full pass, each with its own intermediate.
  std::vector<float> Ss(S.size());
  for (std::size_t i = 0; i < S.size(); ++i) Ss[i] = S[i] * scale;
  const std::int64_t rows = B * H * SM;
  std::vector<float> mx(rows);
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* row = &Ss[r * SM];
    float m = row[0];
    for (std::int64_t t = 1; t < SM; ++t) m = std::max(m, row[t]);
    mx[r] = m;
  }
  std::vector<float> D(S.size());
  for (std::int64_t r = 0; r < rows; ++r)
    for (std::int64_t t = 0; t < SM; ++t)
      D[r * SM + t] = Ss[r * SM + t] - mx[r];
  std::vector<float> E(S.size());
  for (std::size_t i = 0; i < D.size(); ++i) E[i] = std::exp(D[i]);
  std::vector<float> sm(rows, 0);
  for (std::int64_t r = 0; r < rows; ++r)
    for (std::int64_t t = 0; t < SM; ++t) sm[r] += E[r * SM + t];
  std::vector<float> Pattn(S.size());
  for (std::int64_t r = 0; r < rows; ++r)
    for (std::int64_t t = 0; t < SM; ++t)
      Pattn[r * SM + t] = E[r * SM + t] / sm[r];

  std::vector<float> C(B * H * SM * P, 0);
  for (std::int64_t b = 0; b < B; ++b)
    for (std::int64_t h = 0; h < H; ++h)
      for (std::int64_t s = 0; s < SM; ++s) {
        float* c = &C[((b * H + h) * SM + s) * P];
        const float* a = &Pattn[((b * H + h) * SM + s) * SM];
        for (std::int64_t t = 0; t < SM; ++t) {
          const float* v = &V[((b * H + h) * SM + t) * P];
          const float at = a[t];
          for (std::int64_t pp = 0; pp < P; ++pp) c[pp] += at * v[pp];
        }
      }

  std::vector<float> O(B * SM * I, 0);
  for (std::int64_t b = 0; b < B; ++b)
    for (std::int64_t s = 0; s < SM; ++s) {
      float* o = &O[(b * SM + s) * I];
      for (std::int64_t h = 0; h < H; ++h) {
        const float* c = &C[((b * H + h) * SM + s) * P];
        for (std::int64_t pp = 0; pp < P; ++pp) {
          const float* wrow = &data.wo[(h * P + pp) * I];
          const float cv = c[pp];
          for (std::int64_t i = 0; i < I; ++i) o[i] += cv * wrow[i];
        }
      }
    }

  std::vector<float> r1(B * SM * I);
  for (std::size_t i = 0; i < r1.size(); ++i) r1[i] = O[i] + data.x[i];
  std::vector<float> y1(B * SM * I);
  layernorm_rows(r1.data(), y1.data(), B * SM, I);

  std::vector<float> F1(B * SM * emb, 0);
  for (std::int64_t r = 0; r < B * SM; ++r) {
    float* f = &F1[r * emb];
    const float* y = &y1[r * I];
    for (std::int64_t i = 0; i < I; ++i) {
      const float* wrow = &data.w1[i * emb];
      const float yi = y[i];
      for (std::int64_t e = 0; e < emb; ++e) f[e] += yi * wrow[e];
    }
  }
  std::vector<float> Fb(F1.size());
  for (std::int64_t r = 0; r < B * SM; ++r)
    for (std::int64_t e = 0; e < emb; ++e)
      Fb[r * emb + e] = F1[r * emb + e] + data.b1[e];
  std::vector<float> G(F1.size());
  for (std::size_t i = 0; i < Fb.size(); ++i) G[i] = gelu(Fb[i]);

  std::vector<float> F2(B * SM * I, 0);
  for (std::int64_t r = 0; r < B * SM; ++r) {
    float* f = &F2[r * I];
    const float* g = &G[r * emb];
    for (std::int64_t e = 0; e < emb; ++e) {
      const float* wrow = &data.w2[e * I];
      const float ge = g[e];
      for (std::int64_t i = 0; i < I; ++i) f[i] += ge * wrow[i];
    }
  }
  std::vector<float> F2b(F2.size());
  for (std::int64_t r = 0; r < B * SM; ++r)
    for (std::int64_t i = 0; i < I; ++i)
      F2b[r * I + i] = F2[r * I + i] + data.b2[i];
  std::vector<float> r2(F2.size());
  for (std::size_t i = 0; i < r2.size(); ++i) r2[i] = F2b[i] + y1[i];
  layernorm_rows(r2.data(), data.out.data(), B * SM, I);
}

void bert_fused1(BertData& data) {
  const auto B = data.config.B, H = data.config.H, SM = data.config.SM,
             I = data.config.I, emb = data.config.emb, P = data.config.P();
  const float scale = 1.0f / std::sqrt(static_cast<float>(P));

  std::vector<float> Q(B * H * SM * P, 0), K(B * H * SM * P, 0),
      V(B * H * SM * P, 0);
  auto project = [&](const std::vector<float>& w, std::vector<float>& dst) {
    for (std::int64_t b = 0; b < B; ++b)
      for (std::int64_t h = 0; h < H; ++h)
        for (std::int64_t s = 0; s < SM; ++s) {
          float* q = &dst[((b * H + h) * SM + s) * P];
          const float* xv = &data.x[(b * SM + s) * I];
          for (std::int64_t i = 0; i < I; ++i) {
            const float* wrow = &w[(h * I + i) * P];
            const float xi = xv[i];
            for (std::int64_t pp = 0; pp < P; ++pp) q[pp] += xi * wrow[pp];
          }
        }
  };
  project(data.wq, Q);
  project(data.wk, K);
  project(data.wv, V);

  std::vector<float> S(B * H * SM * SM, 0);
  for (std::int64_t b = 0; b < B; ++b)
    for (std::int64_t h = 0; h < H; ++h)
      for (std::int64_t s = 0; s < SM; ++s) {
        float* row = &S[((b * H + h) * SM + s) * SM];
        const float* q = &Q[((b * H + h) * SM + s) * P];
        for (std::int64_t t = 0; t < SM; ++t) {
          const float* kv = &K[((b * H + h) * SM + t) * P];
          float acc = 0;
          for (std::int64_t pp = 0; pp < P; ++pp) acc += q[pp] * kv[pp];
          row[t] = acc;
        }
      }

  // Fusion set 1: the softmax pipeline runs as two passes over S (max,
  // then exp+sum+divide) with no Ss/D/E intermediates.
  const std::int64_t rows = B * H * SM;
  std::vector<float> Pattn(S.size());
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* row = &S[r * SM];
    float m = row[0] * scale;
    for (std::int64_t t = 1; t < SM; ++t) m = std::max(m, row[t] * scale);
    float sum = 0;
    float* p = &Pattn[r * SM];
    for (std::int64_t t = 0; t < SM; ++t) {
      p[t] = std::exp(row[t] * scale - m);
      sum += p[t];
    }
    const float inv = 1.0f / sum;
    for (std::int64_t t = 0; t < SM; ++t) p[t] *= inv;
  }

  std::vector<float> C(B * H * SM * P, 0);
  for (std::int64_t b = 0; b < B; ++b)
    for (std::int64_t h = 0; h < H; ++h)
      for (std::int64_t s = 0; s < SM; ++s) {
        float* c = &C[((b * H + h) * SM + s) * P];
        const float* a = &Pattn[((b * H + h) * SM + s) * SM];
        for (std::int64_t t = 0; t < SM; ++t) {
          const float* v = &V[((b * H + h) * SM + t) * P];
          const float at = a[t];
          for (std::int64_t pp = 0; pp < P; ++pp) c[pp] += at * v[pp];
        }
      }

  std::vector<float> O(B * SM * I, 0);
  for (std::int64_t b = 0; b < B; ++b)
    for (std::int64_t s = 0; s < SM; ++s) {
      float* o = &O[(b * SM + s) * I];
      for (std::int64_t h = 0; h < H; ++h) {
        const float* c = &C[((b * H + h) * SM + s) * P];
        for (std::int64_t pp = 0; pp < P; ++pp) {
          const float* wrow = &data.wo[(h * P + pp) * I];
          const float cv = c[pp];
          for (std::int64_t i = 0; i < I; ++i) o[i] += cv * wrow[i];
        }
      }
    }

  // Fused residual + layernorm (single pass, no r1 array).
  std::vector<float> y1(B * SM * I);
  for (std::size_t i = 0; i < O.size(); ++i) O[i] += data.x[i];
  layernorm_rows(O.data(), y1.data(), B * SM, I);

  // FFN with bias+GELU fused into one pass (no Fb/G arrays).
  std::vector<float> F1(B * SM * emb, 0);
  for (std::int64_t r = 0; r < B * SM; ++r) {
    float* f = &F1[r * emb];
    const float* y = &y1[r * I];
    for (std::int64_t i = 0; i < I; ++i) {
      const float* wrow = &data.w1[i * emb];
      const float yi = y[i];
      for (std::int64_t e = 0; e < emb; ++e) f[e] += yi * wrow[e];
    }
    for (std::int64_t e = 0; e < emb; ++e) f[e] = gelu(f[e] + data.b1[e]);
  }

  std::vector<float> F2(B * SM * I, 0);
  for (std::int64_t r = 0; r < B * SM; ++r) {
    float* f = &F2[r * I];
    const float* g = &F1[r * emb];
    for (std::int64_t e = 0; e < emb; ++e) {
      const float* wrow = &data.w2[e * I];
      const float ge = g[e];
      for (std::int64_t i = 0; i < I; ++i) f[i] += ge * wrow[i];
    }
    // Fused bias + residual.
    for (std::int64_t i = 0; i < I; ++i) {
      f[i] += data.b2[i] + y1[r * I + i];
    }
  }
  layernorm_rows(F2.data(), data.out.data(), B * SM, I);
}

void bert_fused2(BertData& data) {
  const auto B = data.config.B, H = data.config.H, SM = data.config.SM,
             I = data.config.I, emb = data.config.emb, P = data.config.P();
  const float scale = 1.0f / std::sqrt(static_cast<float>(P));

  std::vector<float> Q(B * H * SM * P, 0), K(B * H * SM * P, 0),
      V(B * H * SM * P, 0);
  auto project = [&](const std::vector<float>& w, std::vector<float>& dst) {
    for (std::int64_t b = 0; b < B; ++b)
      for (std::int64_t h = 0; h < H; ++h)
        for (std::int64_t s = 0; s < SM; ++s) {
          float* q = &dst[((b * H + h) * SM + s) * P];
          const float* xv = &data.x[(b * SM + s) * I];
          for (std::int64_t i = 0; i < I; ++i) {
            const float* wrow = &w[(h * I + i) * P];
            const float xi = xv[i];
            for (std::int64_t pp = 0; pp < P; ++pp) q[pp] += xi * wrow[pp];
          }
        }
  };
  project(data.wq, Q);
  project(data.wk, K);
  project(data.wv, V);

  // Second fusion set: the whole attention pipeline is fused per query
  // row — scores, softmax and the context contraction share one loop and
  // the [SM, SM] attention matrices are never materialized.
  std::vector<float> O(B * SM * I, 0);
  std::vector<float> score_row(SM);
  for (std::int64_t b = 0; b < B; ++b)
    for (std::int64_t h = 0; h < H; ++h)
      for (std::int64_t s = 0; s < SM; ++s) {
        const float* q = &Q[((b * H + h) * SM + s) * P];
        float m = -1e30f;
        for (std::int64_t t = 0; t < SM; ++t) {
          const float* kv = &K[((b * H + h) * SM + t) * P];
          float acc = 0;
          for (std::int64_t pp = 0; pp < P; ++pp) acc += q[pp] * kv[pp];
          score_row[t] = acc * scale;
          m = std::max(m, score_row[t]);
        }
        float sum = 0;
        for (std::int64_t t = 0; t < SM; ++t) {
          score_row[t] = std::exp(score_row[t] - m);
          sum += score_row[t];
        }
        const float inv = 1.0f / sum;
        float context[512];  // P <= 512 in every supported config.
        for (std::int64_t pp = 0; pp < P; ++pp) context[pp] = 0;
        for (std::int64_t t = 0; t < SM; ++t) {
          const float* v = &V[((b * H + h) * SM + t) * P];
          const float at = score_row[t] * inv;
          for (std::int64_t pp = 0; pp < P; ++pp) context[pp] += at * v[pp];
        }
        // Output projection fused in as well: this head's context row
        // scatters straight into O.
        float* o = &O[(b * SM + s) * I];
        for (std::int64_t pp = 0; pp < P; ++pp) {
          const float* wrow = &data.wo[(h * P + pp) * I];
          const float cv = context[pp];
          for (std::int64_t i = 0; i < I; ++i) o[i] += cv * wrow[i];
        }
      }

  std::vector<float> y1(B * SM * I);
  for (std::size_t i = 0; i < O.size(); ++i) O[i] += data.x[i];
  layernorm_rows(O.data(), y1.data(), B * SM, I);

  // FFN fused per token row: the F1 row lives in a stack buffer, GELU is
  // applied in place, and F2 accumulates straight into the residual.
  std::vector<float> f1_row(emb);
  std::vector<float> F2(B * SM * I);
  for (std::int64_t r = 0; r < B * SM; ++r) {
    const float* y = &y1[r * I];
    for (std::int64_t e = 0; e < emb; ++e) f1_row[e] = 0;
    for (std::int64_t i = 0; i < I; ++i) {
      const float* wrow = &data.w1[i * emb];
      const float yi = y[i];
      for (std::int64_t e = 0; e < emb; ++e) f1_row[e] += yi * wrow[e];
    }
    float* f = &F2[r * I];
    for (std::int64_t i = 0; i < I; ++i) f[i] = data.b2[i] + y[i];
    for (std::int64_t e = 0; e < emb; ++e) {
      const float ge = gelu(f1_row[e] + data.b1[e]);
      const float* wrow = &data.w2[e * I];
      for (std::int64_t i = 0; i < I; ++i) f[i] += ge * wrow[i];
    }
  }
  layernorm_rows(F2.data(), data.out.data(), B * SM, I);
}

}  // namespace dmv::workloads::kernels
