#include "dmv/builder/program_builder.hpp"
#include "dmv/transforms/transforms.hpp"
#include "dmv/workloads/workloads.hpp"

namespace dmv::workloads {

namespace {

// The fully fused horizontal-diffusion point stencil. Connector naming:
// iAjB = in_field[i+A, j+B, k]. The five Laplacians cover the center and
// its four neighbors; flx/fly are the limited fluxes (NPBench hdiff).
constexpr const char* kHdiffCode = R"(
lap_c = 4.0*i2j2 - (i3j2 + i1j2 + i2j3 + i2j1)
lap_n = 4.0*i1j2 - (i2j2 + i0j2 + i1j3 + i1j1)
lap_s = 4.0*i3j2 - (i4j2 + i2j2 + i3j3 + i3j1)
lap_w = 4.0*i2j1 - (i3j1 + i1j1 + i2j2 + i2j0)
lap_e = 4.0*i2j3 - (i3j3 + i1j3 + i2j4 + i2j2)
flx1 = lap_s - lap_c
flx1 = select(flx1 * (i3j2 - i2j2) > 0, 0, flx1)
flx0 = lap_c - lap_n
flx0 = select(flx0 * (i2j2 - i1j2) > 0, 0, flx0)
fly1 = lap_e - lap_c
fly1 = select(fly1 * (i2j3 - i2j2) > 0, 0, fly1)
fly0 = lap_c - lap_w
fly0 = select(fly0 * (i2j2 - i2j1) > 0, 0, fly0)
o = i2j2 - c * (flx1 - flx0 + fly1 - fly0)
)";

// The 13 distinct in_field offsets the stencil touches (Fig 8a pattern).
struct Offset {
  const char* connector;
  int di;
  int dj;
};
constexpr Offset kOffsets[] = {
    {"i0j2", 0, 2}, {"i1j1", 1, 1}, {"i1j2", 1, 2}, {"i1j3", 1, 3},
    {"i2j0", 2, 0}, {"i2j1", 2, 1}, {"i2j2", 2, 2}, {"i2j3", 2, 3},
    {"i2j4", 2, 4}, {"i3j1", 3, 1}, {"i3j2", 3, 2}, {"i3j3", 3, 3},
    {"i4j2", 4, 2},
};

Sdfg build_baseline() {
  builder::ProgramBuilder program("hdiff");
  program.symbols({"I", "J", "K"});
  program.array("in_field", {"I + 4", "J + 4", "K"});
  program.array("coeff", {"I", "J", "K"});
  program.array("out_field", {"I", "J", "K"});
  program.state("stencil");

  std::vector<builder::TaskletIo> inputs;
  for (const Offset& offset : kOffsets) {
    inputs.push_back(builder::TaskletIo{
        offset.connector, "in_field",
        "i + " + std::to_string(offset.di) + ", j + " +
            std::to_string(offset.dj) + ", k"});
  }
  inputs.push_back(builder::TaskletIo{"c", "coeff", "i, j, k"});

  program.mapped_tasklet(
      "hdiff", {{"i", "0:I-1"}, {"j", "0:J-1"}, {"k", "0:K-1"}}, inputs,
      kHdiffCode, {{"o", "out_field", "i, j, k"}});
  return program.take();
}

}  // namespace

Sdfg hdiff(HdiffVariant variant, std::int64_t pad_multiple_elements) {
  Sdfg program = build_baseline();
  if (variant == HdiffVariant::Baseline) return program;

  // Tuning step 1 (Fig 8a): reshape in_field [I+4, J+4, K] -> [K, I+4,
  // J+4] so the per-iteration 13-point neighborhood is contiguous.
  transforms::permute_dimensions(program, "in_field", {2, 0, 1});
  if (variant == HdiffVariant::Reshaped) return program;

  // Tuning step 2 (Fig 8b): make k the outermost loop so the innermost
  // loops walk the now-contiguous dimensions.
  ir::State& state = program.states().front();
  for (const ir::Node& node : state.nodes()) {
    if (node.kind == ir::NodeKind::MapEntry) {
      transforms::loop_interchange(state, node.id, {2, 0, 1});
      break;
    }
  }
  if (variant == HdiffVariant::Reordered) return program;

  // Tuning step 3 (Fig 8c): post-pad each row of in_field to a cache-line
  // multiple so rows never share lines.
  transforms::pad_innermost_stride(program, "in_field",
                                   pad_multiple_elements);
  return program;
}

SymbolMap hdiff_local() { return SymbolMap{{"I", 8}, {"J", 8}, {"K", 5}}; }

SymbolMap hdiff_full() {
  return SymbolMap{{"I", 256}, {"J", 256}, {"K", 160}};
}

}  // namespace dmv::workloads
