#include "dmv/builder/program_builder.hpp"
#include "dmv/workloads/workloads.hpp"

namespace dmv::workloads {

Sdfg matmul(bool b_column_major) {
  builder::ProgramBuilder program("matmul");
  program.symbols({"M", "K", "N"});
  // Fig 5 uses 4-byte values.
  program.array("A", {"M", "K"}, /*element_size=*/4);
  ir::DataDescriptor& b = program.array("B", {"K", "N"}, /*element_size=*/4);
  if (b_column_major) {
    b.strides = ir::DataDescriptor::column_major_strides(b.shape);
  }
  program.array("C", {"M", "N"}, /*element_size=*/4);
  program.state("compute");
  program.mapped_tasklet(
      "gemm", {{"i", "0:M-1"}, {"j", "0:N-1"}, {"k", "0:K-1"}},
      {{"a", "A", "i, k"}, {"b", "B", "k, j"}}, "c = a * b",
      {{"c", "C", "i, j", ir::Wcr::Sum}});
  return program.take();
}

SymbolMap matmul_fig5() { return SymbolMap{{"M", 9}, {"K", 10}, {"N", 15}}; }

}  // namespace dmv::workloads
