#include "dmv/builder/program_builder.hpp"
#include "dmv/workloads/workloads.hpp"

namespace dmv::workloads {

Sdfg conv2d() {
  builder::ProgramBuilder program("conv2d");
  program.symbols({"Cin", "Cout", "Hh", "W", "Ky", "Kx"});
  program.array("input", {"Cin", "Hh", "W"});
  program.array("weights", {"Cout", "Cin", "Ky", "Kx"});
  program.array("output", {"Cout", "Hh - Ky + 1", "W - Kx + 1"});
  program.state("compute");
  program.mapped_tasklet(
      "conv",
      {{"co", "0:Cout-1"},
       {"y", "0:Hh-Ky"},
       {"x", "0:W-Kx"},
       {"ci", "0:Cin-1"},
       {"ky", "0:Ky-1"},
       {"kx", "0:Kx-1"}},
      {{"v", "input", "ci, y + ky, x + kx"},
       {"w", "weights", "co, ci, ky, kx"}},
      "o = v * w", {{"o", "output", "co, y, x", ir::Wcr::Sum}});
  return program.take();
}

SymbolMap conv2d_fig4() {
  // 3-channel 9x9 inputs, 2-channel 6x6 outputs => 4x4 kernels.
  return SymbolMap{{"Cin", 3}, {"Cout", 2}, {"Hh", 9},
                   {"W", 9},   {"Ky", 4},   {"Kx", 4}};
}

}  // namespace dmv::workloads
