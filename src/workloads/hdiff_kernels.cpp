#include <cstdint>
#include <vector>

#include "dmv/workloads/workloads.hpp"

namespace dmv::workloads::kernels {

namespace {

// Deterministic filler in [-1, 1] (xorshift-based, no libc rand state).
double synth(std::uint64_t seed) {
  seed ^= seed << 13;
  seed ^= seed >> 7;
  seed ^= seed << 17;
  return static_cast<double>(seed % 20001) / 10000.0 - 1.0;
}

}  // namespace

HdiffData make_hdiff_data(std::int64_t I, std::int64_t J, std::int64_t K) {
  HdiffData data;
  data.I = I;
  data.J = J;
  data.K = K;
  data.in_field.resize((I + 4) * (J + 4) * K);
  data.coeff.resize(I * J * K);
  data.out_field.assign(I * J * K, 0.0);
  for (std::size_t i = 0; i < data.in_field.size(); ++i) {
    data.in_field[i] = synth(i + 1);
  }
  for (std::size_t i = 0; i < data.coeff.size(); ++i) {
    data.coeff[i] = 0.025 + 0.005 * synth(i + 7919);
  }
  return data;
}

void hdiff_baseline(HdiffData& data) {
  const std::int64_t I = data.I, J = data.J, K = data.K;
  const std::int64_t JK = (J + 4) * K;
  const double* in = data.in_field.data();
  auto at_in = [&](std::int64_t i, std::int64_t j, std::int64_t k) {
    return in[i * JK + j * K + k];
  };

  // Pass 1: materialize the Laplacian [I+2, J+2, K] (NumPy style).
  std::vector<double> lap((I + 2) * (J + 2) * K);
  for (std::int64_t a = 0; a < I + 2; ++a) {
    for (std::int64_t b = 0; b < J + 2; ++b) {
      for (std::int64_t k = 0; k < K; ++k) {
        lap[(a * (J + 2) + b) * K + k] =
            4.0 * at_in(a + 1, b + 1, k) -
            (at_in(a + 2, b + 1, k) + at_in(a, b + 1, k) +
             at_in(a + 1, b + 2, k) + at_in(a + 1, b, k));
      }
    }
  }
  auto at_lap = [&](std::int64_t a, std::int64_t b, std::int64_t k) {
    return lap[(a * (J + 2) + b) * K + k];
  };

  // Pass 2: flux in i, materialized [I+1, J, K].
  std::vector<double> flx((I + 1) * J * K);
  for (std::int64_t a = 0; a < I + 1; ++a) {
    for (std::int64_t b = 0; b < J; ++b) {
      for (std::int64_t k = 0; k < K; ++k) {
        double res = at_lap(a + 1, b + 1, k) - at_lap(a, b + 1, k);
        if (res * (at_in(a + 2, b + 2, k) - at_in(a + 1, b + 2, k)) > 0) {
          res = 0;
        }
        flx[(a * J + b) * K + k] = res;
      }
    }
  }

  // Pass 3: flux in j, materialized [I, J+1, K].
  std::vector<double> fly(I * (J + 1) * K);
  for (std::int64_t a = 0; a < I; ++a) {
    for (std::int64_t b = 0; b < J + 1; ++b) {
      for (std::int64_t k = 0; k < K; ++k) {
        double res = at_lap(a + 1, b + 1, k) - at_lap(a + 1, b, k);
        if (res * (at_in(a + 2, b + 2, k) - at_in(a + 2, b + 1, k)) > 0) {
          res = 0;
        }
        fly[(a * (J + 1) + b) * K + k] = res;
      }
    }
  }

  // Pass 4: combine.
  for (std::int64_t i = 0; i < I; ++i) {
    for (std::int64_t j = 0; j < J; ++j) {
      for (std::int64_t k = 0; k < K; ++k) {
        data.out_field[(i * J + j) * K + k] =
            at_in(i + 2, j + 2, k) -
            data.coeff[(i * J + j) * K + k] *
                (flx[((i + 1) * J + j) * K + k] - flx[(i * J + j) * K + k] +
                 fly[(i * (J + 1) + j + 1) * K + k] -
                 fly[(i * (J + 1) + j) * K + k]);
      }
    }
  }
}

void hdiff_fused(HdiffData& data) {
  const std::int64_t I = data.I, J = data.J, K = data.K;
  const std::int64_t JK = (J + 4) * K;
  const double* in = data.in_field.data();
  auto at_in = [&](std::int64_t i, std::int64_t j, std::int64_t k) {
    return in[i * JK + j * K + k];
  };
  auto lap_at = [&](std::int64_t a, std::int64_t b, std::int64_t k) {
    return 4.0 * at_in(a + 1, b + 1, k) -
           (at_in(a + 2, b + 1, k) + at_in(a, b + 1, k) +
            at_in(a + 1, b + 2, k) + at_in(a + 1, b, k));
  };

  for (std::int64_t i = 0; i < I; ++i) {
    for (std::int64_t j = 0; j < J; ++j) {
      for (std::int64_t k = 0; k < K; ++k) {
        const double lap_c = lap_at(i + 1, j + 1, k);
        const double lap_n = lap_at(i, j + 1, k);
        const double lap_s = lap_at(i + 2, j + 1, k);
        const double lap_w = lap_at(i + 1, j, k);
        const double lap_e = lap_at(i + 1, j + 2, k);

        double flx1 = lap_s - lap_c;
        if (flx1 * (at_in(i + 3, j + 2, k) - at_in(i + 2, j + 2, k)) > 0) {
          flx1 = 0;
        }
        double flx0 = lap_c - lap_n;
        if (flx0 * (at_in(i + 2, j + 2, k) - at_in(i + 1, j + 2, k)) > 0) {
          flx0 = 0;
        }
        double fly1 = lap_e - lap_c;
        if (fly1 * (at_in(i + 2, j + 3, k) - at_in(i + 2, j + 2, k)) > 0) {
          fly1 = 0;
        }
        double fly0 = lap_c - lap_w;
        if (fly0 * (at_in(i + 2, j + 2, k) - at_in(i + 2, j + 1, k)) > 0) {
          fly0 = 0;
        }
        data.out_field[(i * J + j) * K + k] =
            at_in(i + 2, j + 2, k) -
            data.coeff[(i * J + j) * K + k] *
                (flx1 - flx0 + fly1 - fly0);
      }
    }
  }
}

HdiffTunedData make_hdiff_tuned_data(const HdiffData& data,
                                     std::int64_t pad_elements) {
  const std::int64_t I = data.I, J = data.J, K = data.K;
  HdiffTunedData tuned;
  tuned.I = I;
  tuned.J = J;
  tuned.K = K;
  tuned.Jp = (J + 4 + pad_elements - 1) / pad_elements * pad_elements;
  tuned.in_field.assign(K * (I + 4) * tuned.Jp, 0.0);
  {
    const std::int64_t JK = (J + 4) * K;
    for (std::int64_t i = 0; i < I + 4; ++i) {
      for (std::int64_t j = 0; j < J + 4; ++j) {
        const double* column = &data.in_field[i * JK + j * K];
        for (std::int64_t k = 0; k < K; ++k) {
          tuned.in_field[(k * (I + 4) + i) * tuned.Jp + j] = column[k];
        }
      }
    }
  }
  tuned.coeff.resize(K * I * J);
  for (std::int64_t i = 0; i < I; ++i) {
    for (std::int64_t j = 0; j < J; ++j) {
      for (std::int64_t k = 0; k < K; ++k) {
        tuned.coeff[(k * I + i) * J + j] = data.coeff[(i * J + j) * K + k];
      }
    }
  }
  tuned.out_field.assign(K * I * J, 0.0);
  return tuned;
}

void hdiff_tuned_kernel(HdiffTunedData& data) {
  const std::int64_t I = data.I, J = data.J, K = data.K, Jp = data.Jp;
  std::vector<double>& tout = data.out_field;
  const std::vector<double>& tcoeff = data.coeff;

  for (std::int64_t k = 0; k < K; ++k) {
    const double* slice = &data.in_field[k * (I + 4) * Jp];
    auto at_in = [&](std::int64_t i, std::int64_t j) {
      return slice[i * Jp + j];
    };
    auto lap_at = [&](std::int64_t a, std::int64_t b) {
      return 4.0 * at_in(a + 1, b + 1) -
             (at_in(a + 2, b + 1) + at_in(a, b + 1) + at_in(a + 1, b + 2) +
              at_in(a + 1, b));
    };
    for (std::int64_t i = 0; i < I; ++i) {
      double* out_row = &tout[(k * I + i) * J];
      const double* coeff_row = &tcoeff[(k * I + i) * J];
      for (std::int64_t j = 0; j < J; ++j) {
        const double lap_c = lap_at(i + 1, j + 1);
        const double lap_n = lap_at(i, j + 1);
        const double lap_s = lap_at(i + 2, j + 1);
        const double lap_w = lap_at(i + 1, j);
        const double lap_e = lap_at(i + 1, j + 2);

        double flx1 = lap_s - lap_c;
        if (flx1 * (at_in(i + 3, j + 2) - at_in(i + 2, j + 2)) > 0) flx1 = 0;
        double flx0 = lap_c - lap_n;
        if (flx0 * (at_in(i + 2, j + 2) - at_in(i + 1, j + 2)) > 0) flx0 = 0;
        double fly1 = lap_e - lap_c;
        if (fly1 * (at_in(i + 2, j + 3) - at_in(i + 2, j + 2)) > 0) fly1 = 0;
        double fly0 = lap_c - lap_w;
        if (fly0 * (at_in(i + 2, j + 2) - at_in(i + 2, j + 1)) > 0) fly0 = 0;

        out_row[j] = at_in(i + 2, j + 2) -
                     coeff_row[j] * (flx1 - flx0 + fly1 - fly0);
      }
    }
  }
}

void hdiff_tuned(HdiffData& data, std::int64_t pad_elements) {
  HdiffTunedData tuned = make_hdiff_tuned_data(data, pad_elements);
  hdiff_tuned_kernel(tuned);
  // Transpose the result back to the caller's [I, J, K] layout.
  const std::int64_t I = data.I, J = data.J, K = data.K;
  for (std::int64_t k = 0; k < K; ++k) {
    for (std::int64_t i = 0; i < I; ++i) {
      for (std::int64_t j = 0; j < J; ++j) {
        data.out_field[(i * J + j) * K + k] =
            tuned.out_field[(k * I + i) * J + j];
      }
    }
  }
}

}  // namespace dmv::workloads::kernels
