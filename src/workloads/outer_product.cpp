#include "dmv/builder/program_builder.hpp"
#include "dmv/workloads/workloads.hpp"

namespace dmv::workloads {

Sdfg outer_product() {
  builder::ProgramBuilder program("outer_product");
  program.symbols({"M", "N"});
  program.array("A", {"M"});
  program.array("B", {"N"});
  program.array("C", {"M", "N"});
  program.state("compute");
  program.mapped_tasklet(
      "outer", {{"i", "0:M-1"}, {"j", "0:N-1"}},
      {{"a", "A", "i"}, {"b", "B", "j"}}, "c = a * b",
      {{"c", "C", "i, j"}});
  return program.take();
}

SymbolMap outer_product_fig3() { return SymbolMap{{"M", 3}, {"N", 4}}; }

}  // namespace dmv::workloads
