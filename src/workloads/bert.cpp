#include <set>
#include <string>

#include "dmv/builder/program_builder.hpp"
#include "dmv/transforms/transforms.hpp"
#include "dmv/workloads/workloads.hpp"

namespace dmv::workloads {

namespace {

using builder::ProgramBuilder;
using builder::TaskletIo;

// Builds the maximally split (NumPy-style) encoder layer: every operator
// is its own parallel map, every intermediate lives in memory. This is
// the "large graph" of Fig 6 (left) whose red high-volume edges the
// global heatmap exposes.
Sdfg build_baseline() {
  ProgramBuilder p("bert_encoder");
  p.symbols({"B", "H", "SM", "I", "emb", "P"});

  // Inputs / parameters.
  p.array("x", {"B", "SM", "I"}, 4);
  p.array("wq", {"H", "I", "P"}, 4);
  p.array("wk", {"H", "I", "P"}, 4);
  p.array("wv", {"H", "I", "P"}, 4);
  p.array("wo", {"H", "P", "I"}, 4);
  p.array("w1", {"I", "emb"}, 4);
  p.array("b1", {"emb"}, 4);
  p.array("w2", {"emb", "I"}, 4);
  p.array("b2", {"I"}, 4);
  p.array("gamma1", {"I"}, 4);
  p.array("beta1", {"I"}, 4);
  p.array("gamma2", {"I"}, 4);
  p.array("beta2", {"I"}, 4);
  p.array("out", {"B", "SM", "I"}, 4);

  // Intermediates.
  p.transient("Q", {"B", "H", "SM", "P"}, 4);
  p.transient("Kt", {"B", "H", "SM", "P"}, 4);
  p.transient("V", {"B", "H", "SM", "P"}, 4);
  p.transient("S", {"B", "H", "SM", "SM"}, 4);
  p.transient("Ss", {"B", "H", "SM", "SM"}, 4);
  p.transient("D", {"B", "H", "SM", "SM"}, 4);
  p.transient("E", {"B", "H", "SM", "SM"}, 4);
  p.transient("mx", {"B", "H", "SM"}, 4);
  p.transient("sm", {"B", "H", "SM"}, 4);
  p.transient("Pattn", {"B", "H", "SM", "SM"}, 4);
  p.transient("C", {"B", "H", "SM", "P"}, 4);
  p.transient("O", {"B", "SM", "I"}, 4);
  p.transient("r1", {"B", "SM", "I"}, 4);
  p.transient("mean1", {"B", "SM"}, 4);
  p.transient("var1", {"B", "SM"}, 4);
  p.transient("n1", {"B", "SM", "I"}, 4);
  p.transient("y1", {"B", "SM", "I"}, 4);
  p.transient("F1", {"B", "SM", "emb"}, 4);
  p.transient("Fb", {"B", "SM", "emb"}, 4);
  p.transient("G", {"B", "SM", "emb"}, 4);
  p.transient("F2", {"B", "SM", "I"}, 4);
  p.transient("F2b", {"B", "SM", "I"}, 4);
  p.transient("r2", {"B", "SM", "I"}, 4);
  p.transient("mean2", {"B", "SM"}, 4);
  p.transient("var2", {"B", "SM"}, 4);
  p.transient("n2", {"B", "SM", "I"}, 4);

  p.state("encoder");

  // --- Attention input projections (contractions over i, WCR-summed).
  for (const auto& [name, weight] :
       {std::pair{"Q", "wq"}, {"Kt", "wk"}, {"V", "wv"}}) {
    p.mapped_tasklet(
        std::string(name) + "_proj",
        {{"b", "0:B-1"},
         {"h", "0:H-1"},
         {"s", "0:SM-1"},
         {"pp", "0:P-1"},
         {"i", "0:I-1"}},
        {{"xv", "x", "b, s, i"}, {"w", weight, "h, i, pp"}},
        "o = xv * w", {{"o", name, "b, h, s, pp", ir::Wcr::Sum}});
  }

  // --- Attention scores S = Q K^T.
  p.mapped_tasklet("scores",
                   {{"b", "0:B-1"},
                    {"h", "0:H-1"},
                    {"s", "0:SM-1"},
                    {"t", "0:SM-1"},
                    {"pp", "0:P-1"}},
                   {{"q", "Q", "b, h, s, pp"}, {"kv", "Kt", "b, h, t, pp"}},
                   "o = q * kv", {{"o", "S", "b, h, s, t", ir::Wcr::Sum}});

  const std::vector<builder::MapRange> attn4 = {
      {"b", "0:B-1"}, {"h", "0:H-1"}, {"s", "0:SM-1"}, {"t", "0:SM-1"}};

  // --- Softmax pipeline, maximally split (the fusion-set-1 material).
  p.mapped_tasklet("scale", attn4, {{"v", "S", "b, h, s, t"}},
                   "o = v * 0.125", {{"o", "Ss", "b, h, s, t"}});
  p.mapped_tasklet("rowmax", attn4, {{"v", "Ss", "b, h, s, t"}}, "o = v",
                   {{"o", "mx", "b, h, s", ir::Wcr::Max}});
  p.mapped_tasklet("submax", attn4,
                   {{"v", "Ss", "b, h, s, t"}, {"m", "mx", "b, h, s"}},
                   "o = v - m", {{"o", "D", "b, h, s, t"}});
  p.mapped_tasklet("expval", attn4, {{"v", "D", "b, h, s, t"}},
                   "o = exp(v)", {{"o", "E", "b, h, s, t"}});
  p.mapped_tasklet("rowsum", attn4, {{"v", "E", "b, h, s, t"}}, "o = v",
                   {{"o", "sm", "b, h, s", ir::Wcr::Sum}});
  p.mapped_tasklet("normalize", attn4,
                   {{"v", "E", "b, h, s, t"}, {"z", "sm", "b, h, s"}},
                   "o = v / z", {{"o", "Pattn", "b, h, s, t"}});

  // --- Context and output projection.
  p.mapped_tasklet("context",
                   {{"b", "0:B-1"},
                    {"h", "0:H-1"},
                    {"s", "0:SM-1"},
                    {"pp", "0:P-1"},
                    {"t", "0:SM-1"}},
                   {{"a", "Pattn", "b, h, s, t"}, {"v", "V", "b, h, t, pp"}},
                   "o = a * v", {{"o", "C", "b, h, s, pp", ir::Wcr::Sum}});
  p.mapped_tasklet("out_proj",
                   {{"b", "0:B-1"},
                    {"s", "0:SM-1"},
                    {"i", "0:I-1"},
                    {"h", "0:H-1"},
                    {"pp", "0:P-1"}},
                   {{"c", "C", "b, h, s, pp"}, {"w", "wo", "h, pp, i"}},
                   "o = c * w", {{"o", "O", "b, s, i", ir::Wcr::Sum}});

  const std::vector<builder::MapRange> tok3 = {
      {"b", "0:B-1"}, {"s", "0:SM-1"}, {"i", "0:I-1"}};

  // --- Residual + layernorm 1, split into stat and apply maps.
  p.mapped_tasklet("residual1", tok3,
                   {{"a", "O", "b, s, i"}, {"xv", "x", "b, s, i"}},
                   "o = a + xv", {{"o", "r1", "b, s, i"}});
  p.mapped_tasklet("mean1", tok3, {{"v", "r1", "b, s, i"}}, "o = v",
                   {{"o", "mean1", "b, s", ir::Wcr::Sum}});
  p.mapped_tasklet("var1", tok3, {{"v", "r1", "b, s, i"}}, "o = v * v",
                   {{"o", "var1", "b, s", ir::Wcr::Sum}});
  p.mapped_tasklet(
      "norm1", tok3,
      {{"v", "r1", "b, s, i"}, {"mu", "mean1", "b, s"},
       {"s2", "var1", "b, s"}},
      "m = mu / I; o = (v - m) / sqrt(s2 / I - m * m + 0.00001)",
      {{"o", "n1", "b, s, i"}});
  p.mapped_tasklet("affine1", tok3,
                   {{"v", "n1", "b, s, i"}, {"g", "gamma1", "i"},
                    {"bb", "beta1", "i"}},
                   "o = g * v + bb", {{"o", "y1", "b, s, i"}});

  // --- Feed-forward network.
  p.mapped_tasklet("ffn1",
                   {{"b", "0:B-1"},
                    {"s", "0:SM-1"},
                    {"e", "0:emb-1"},
                    {"i", "0:I-1"}},
                   {{"v", "y1", "b, s, i"}, {"w", "w1", "i, e"}},
                   "o = v * w", {{"o", "F1", "b, s, e", ir::Wcr::Sum}});
  const std::vector<builder::MapRange> ffn3 = {
      {"b", "0:B-1"}, {"s", "0:SM-1"}, {"e", "0:emb-1"}};
  p.mapped_tasklet("bias1", ffn3,
                   {{"v", "F1", "b, s, e"}, {"bb", "b1", "e"}},
                   "o = v + bb", {{"o", "Fb", "b, s, e"}});
  p.mapped_tasklet(
      "gelu", ffn3, {{"v", "Fb", "b, s, e"}},
      "o = 0.5 * v * (1 + erf(v / 1.4142135623730951))",
      {{"o", "G", "b, s, e"}});
  p.mapped_tasklet("ffn2",
                   {{"b", "0:B-1"},
                    {"s", "0:SM-1"},
                    {"i", "0:I-1"},
                    {"e", "0:emb-1"}},
                   {{"v", "G", "b, s, e"}, {"w", "w2", "e, i"}},
                   "o = v * w", {{"o", "F2", "b, s, i", ir::Wcr::Sum}});

  // --- Residual + layernorm 2 -> output.
  p.mapped_tasklet("bias2", tok3,
                   {{"v", "F2", "b, s, i"}, {"bb", "b2", "i"}},
                   "o = v + bb", {{"o", "F2b", "b, s, i"}});
  p.mapped_tasklet("residual2", tok3,
                   {{"a", "F2b", "b, s, i"}, {"yv", "y1", "b, s, i"}},
                   "o = a + yv", {{"o", "r2", "b, s, i"}});
  p.mapped_tasklet("mean2", tok3, {{"v", "r2", "b, s, i"}}, "o = v",
                   {{"o", "mean2", "b, s", ir::Wcr::Sum}});
  p.mapped_tasklet("var2", tok3, {{"v", "r2", "b, s, i"}}, "o = v * v",
                   {{"o", "var2", "b, s", ir::Wcr::Sum}});
  p.mapped_tasklet(
      "norm2", tok3,
      {{"v", "r2", "b, s, i"}, {"mu", "mean2", "b, s"},
       {"s2", "var2", "b, s"}},
      "m = mu / I; o = (v - m) / sqrt(s2 / I - m * m + 0.00001)",
      {{"o", "n2", "b, s, i"}});
  p.mapped_tasklet("affine2", tok3,
                   {{"v", "n2", "b, s, i"}, {"g", "gamma2", "i"},
                    {"bb", "beta2", "i"}},
                   "o = g * v + bb", {{"o", "out", "b, s, i"}});

  return p.take();
}

}  // namespace

Sdfg bert_encoder(BertStage stage) {
  Sdfg program = build_baseline();
  if (stage == BertStage::Baseline) return program;

  // First fusion set (§VI-A): the chains the data-movement heatmap flags,
  // in the attention softmax pipeline and the FFN activation. (Transients
  // with several consumers, like Ss and E, are correctly NOT fusible —
  // their consumers include reductions whose results feed back into the
  // same iteration domain.)
  const std::set<std::string> first_set = {"D", "Fb", "F2b"};
  for (;;) {
    bool applied = false;
    for (const transforms::FusionCandidate& candidate :
         transforms::find_fusion_candidates(program)) {
      if (first_set.contains(candidate.transient)) {
        transforms::apply_map_fusion(program, candidate);
        applied = true;
        break;
      }
    }
    if (!applied) break;
  }
  if (stage == BertStage::Fused1) return program;

  // Second fusion set: everything else the intensity overlay surfaces
  // (layernorm chains, remaining elementwise glue), to fixpoint.
  transforms::fuse_all(program);
  return program;
}

SymbolMap bert_large() {
  return SymbolMap{{"B", 8},    {"H", 16},    {"SM", 512},
                   {"I", 1024}, {"emb", 4096}, {"P", 64}};
}

SymbolMap bert_small() {
  return SymbolMap{{"B", 1},  {"H", 2},    {"SM", 8},
                   {"I", 16}, {"emb", 32}, {"P", 8}};
}

}  // namespace dmv::workloads
