#include <algorithm>
#include <stdexcept>

#include "dmv/exec/interpreter.hpp"
#include "dmv/sim/sim.hpp"

namespace dmv::exec {

namespace {

using ir::Edge;
using ir::Node;
using ir::NodeId;
using ir::NodeKind;

// Evaluates a single-element subset to a concrete index tuple.
layout::Index evaluate_point(const ir::Subset& subset, const SymbolMap& env,
                             const std::string& what) {
  layout::Index indices;
  indices.reserve(subset.ranges.size());
  for (const ir::Range& range : subset.ranges) {
    const std::int64_t begin = range.begin.evaluate(env);
    const std::int64_t end = range.end.evaluate(env);
    if (begin != end) {
      throw std::invalid_argument(
          "interpreter: tasklet memlet on '" + what +
          "' must be a single element, got range " + subset.to_string());
    }
    indices.push_back(begin);
  }
  return indices;
}

class Interpreter {
 public:
  Interpreter(const Sdfg& sdfg, const SymbolMap& symbols, Buffers& buffers)
      : sdfg_(sdfg), symbols_(symbols), buffers_(buffers) {}

  void run() {
    for (const ir::State& state : sdfg_.states()) {
      state_ = &state;
      // Topo order + adjacency built once per state (shared with the
      // trace simulator via ir::StateSchedule): the per-iteration
      // tasklet loop must not rescan the whole edge list.
      schedule_ = ir::StateSchedule(state);
      Wires wires;
      execute_scope(ir::kNoNode, symbols_, wires);
    }
  }

 private:
  /// Values traveling on tasklet-to-tasklet scalar edges, keyed by
  /// (producer node, source connector). Scoped to one loop iteration.
  using Wires = std::map<std::pair<NodeId, std::string>, double>;

  void execute_scope(NodeId scope, const SymbolMap& env, Wires& wires) {
    for (NodeId id : schedule_.order) {
      const Node& node = state_->node(id);
      if (node.scope_parent != scope) continue;
      switch (node.kind) {
        case NodeKind::MapEntry: {
          sim_space(node, env);
          break;
        }
        case NodeKind::Tasklet:
          execute_tasklet(node, env, wires);
          break;
        case NodeKind::Access:
          execute_copies(node, env);
          break;
        case NodeKind::MapExit:
          break;
      }
    }
  }

  void sim_space(const Node& entry, const SymbolMap& env) {
    // Bounds evaluate per nesting level (sim::IterationSpace), so tiled
    // maps whose inner ranges reference outer parameters execute
    // correctly.
    sim::IterationSpace space = sim::IterationSpace::from(entry.map, env);
    SymbolMap inner = env;
    space.for_each([&](std::span<const std::int64_t> values) {
      for (std::size_t p = 0; p < space.params.size(); ++p) {
        inner[space.params[p]] = values[p];
      }
      Wires wires;
      execute_scope(entry.id, inner, wires);
    });
  }

  void execute_tasklet(const Node& node, const SymbolMap& env, Wires& wires) {
    std::map<std::string, double> values;
    // Tasklets may reference program symbols and map parameters directly
    // (DaCe semantics), e.g. a layernorm dividing by the symbolic I.
    for (const std::string& name : node.code.read_connectors()) {
      auto symbol = env.find(name);
      if (symbol != env.end()) {
        values[name] = static_cast<double>(symbol->second);
      }
    }
    for (const Edge* edge : schedule_.in_adjacency[node.id]) {
      if (edge->memlet.is_empty()) {
        if (edge->dst_conn.empty()) continue;  // Pure dependency edge.
        auto it = wires.find({edge->src, edge->src_conn});
        if (it == wires.end()) {
          throw std::logic_error("interpreter: wire value for connector '" +
                                 edge->dst_conn + "' of tasklet '" +
                                 node.label + "' not produced yet");
        }
        values[edge->dst_conn] = it->second;
        continue;
      }
      const layout::Index indices =
          evaluate_point(edge->memlet.subset, env, edge->memlet.data);
      values[edge->dst_conn] = buffers_.at(edge->memlet.data, indices);
    }

    node.code.execute(values);

    for (const Edge* edge : schedule_.out_adjacency[node.id]) {
      auto it = values.find(edge->src_conn);
      if (edge->memlet.is_empty()) {
        if (edge->src_conn.empty()) continue;
        if (it == values.end()) {
          throw std::logic_error("interpreter: tasklet '" + node.label +
                                 "' does not produce connector '" +
                                 edge->src_conn + "'");
        }
        wires[{node.id, edge->src_conn}] = it->second;
        continue;
      }
      if (it == values.end()) {
        throw std::logic_error("interpreter: tasklet '" + node.label +
                               "' does not produce connector '" +
                               edge->src_conn + "'");
      }
      const layout::Index indices =
          evaluate_point(edge->memlet.subset, env, edge->memlet.data);
      double& cell = buffers_.at(edge->memlet.data, indices);
      switch (edge->memlet.wcr) {
        case ir::Wcr::None:
          cell = it->second;
          break;
        case ir::Wcr::Sum:
          cell += it->second;
          break;
        case ir::Wcr::Min:
          cell = std::min(cell, it->second);
          break;
        case ir::Wcr::Max:
          cell = std::max(cell, it->second);
          break;
      }
    }
  }

  void execute_copies(const Node& node, const SymbolMap& env) {
    for (const Edge* edge : schedule_.out_adjacency[node.id]) {
      if (edge->memlet.is_empty()) continue;
      const Node& dst = state_->node(edge->dst);
      if (dst.kind != NodeKind::Access) continue;
      copy_subset(*edge, dst, env);
    }
  }

  void copy_subset(const Edge& edge, const Node& dst, const SymbolMap& env) {
    const ir::Subset& src_subset = edge.memlet.subset;
    const ir::Subset& dst_subset = edge.memlet.other_subset.ranges.empty()
                                       ? edge.memlet.subset
                                       : edge.memlet.other_subset;
    std::vector<layout::Index> sources = enumerate(src_subset, env);
    std::vector<layout::Index> destinations = enumerate(dst_subset, env);
    if (sources.size() != destinations.size()) {
      throw std::logic_error("interpreter: copy subset size mismatch on '" +
                             edge.memlet.data + "'");
    }
    for (std::size_t i = 0; i < sources.size(); ++i) {
      buffers_.at(dst.data, destinations[i]) =
          buffers_.at(edge.memlet.data, sources[i]);
    }
  }

  static std::vector<layout::Index> enumerate(const ir::Subset& subset,
                                              const SymbolMap& env) {
    std::vector<std::array<std::int64_t, 3>> bounds;
    bounds.reserve(subset.ranges.size());
    for (const ir::Range& range : subset.ranges) {
      bounds.push_back({range.begin.evaluate(env), range.end.evaluate(env),
                        range.step.evaluate(env)});
    }
    std::vector<layout::Index> out;
    if (bounds.empty()) {
      out.push_back({});
      return out;
    }
    layout::Index cursor(bounds.size());
    for (std::size_t d = 0; d < bounds.size(); ++d) cursor[d] = bounds[d][0];
    for (;;) {
      out.push_back(cursor);
      int d = static_cast<int>(bounds.size()) - 1;
      for (; d >= 0; --d) {
        cursor[d] += bounds[d][2];
        if (cursor[d] <= bounds[d][1]) break;
        cursor[d] = bounds[d][0];
      }
      if (d < 0) break;
    }
    return out;
  }

  const Sdfg& sdfg_;
  const SymbolMap& symbols_;
  Buffers& buffers_;
  const ir::State* state_ = nullptr;
  ir::StateSchedule schedule_;
};

}  // namespace

Buffers::Buffers(const Sdfg& sdfg, const SymbolMap& symbols) {
  for (const auto& [name, descriptor] : sdfg.arrays()) {
    ConcreteLayout layout = ConcreteLayout::from(descriptor, symbols);
    storage_.emplace(name,
                     std::vector<double>(layout.allocated_elements(), 0.0));
    layouts_.emplace(name, std::move(layout));
  }
}

const ConcreteLayout& Buffers::layout(const std::string& name) const {
  auto it = layouts_.find(name);
  if (it == layouts_.end()) {
    throw std::out_of_range("Buffers: unknown container '" + name + "'");
  }
  return it->second;
}

double& Buffers::at(const std::string& name,
                    std::span<const std::int64_t> indices) {
  const ConcreteLayout& l = layout(name);
  if (!l.in_bounds(indices)) {
    throw std::out_of_range("Buffers: out-of-bounds access on '" + name +
                            "'");
  }
  return storage_.at(name)[l.element_offset(indices)];
}

double Buffers::at(const std::string& name,
                   std::span<const std::int64_t> indices) const {
  const ConcreteLayout& l = layout(name);
  if (!l.in_bounds(indices)) {
    throw std::out_of_range("Buffers: out-of-bounds access on '" + name +
                            "'");
  }
  return storage_.at(name)[l.element_offset(indices)];
}

std::vector<double>& Buffers::raw(const std::string& name) {
  auto it = storage_.find(name);
  if (it == storage_.end()) {
    throw std::out_of_range("Buffers: unknown container '" + name + "'");
  }
  return it->second;
}

const std::vector<double>& Buffers::raw(const std::string& name) const {
  auto it = storage_.find(name);
  if (it == storage_.end()) {
    throw std::out_of_range("Buffers: unknown container '" + name + "'");
  }
  return it->second;
}

std::vector<double> Buffers::logical(const std::string& name) const {
  const ConcreteLayout& l = layout(name);
  std::vector<double> values;
  values.reserve(l.total_elements());
  for (std::int64_t flat = 0; flat < l.total_elements(); ++flat) {
    const layout::Index indices = l.unflatten(flat);
    values.push_back(storage_.at(name)[l.element_offset(indices)]);
  }
  return values;
}

void Buffers::set_logical(const std::string& name,
                          const std::vector<double>& values) {
  const ConcreteLayout& l = layout(name);
  if (static_cast<std::int64_t>(values.size()) != l.total_elements()) {
    throw std::invalid_argument("Buffers::set_logical: size mismatch for '" +
                                name + "'");
  }
  for (std::int64_t flat = 0; flat < l.total_elements(); ++flat) {
    const layout::Index indices = l.unflatten(flat);
    storage_.at(name)[l.element_offset(indices)] = values[flat];
  }
}

void run(const Sdfg& sdfg, const SymbolMap& symbols, Buffers& buffers) {
  Interpreter(sdfg, symbols, buffers).run();
}

}  // namespace dmv::exec
