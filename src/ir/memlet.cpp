#include "dmv/ir/memlet.hpp"

#include <sstream>
#include <stdexcept>

#include "dmv/symbolic/parser.hpp"

namespace dmv::ir {

Expr Range::size() const {
  if (step.is_constant(1)) return end - begin + 1;
  return (end - begin + step) / step;
}

bool Range::is_single_element() const {
  return symbolic::Expr::compare(symbolic::simplified(begin),
                                 symbolic::simplified(end)) == 0 ||
         begin.equals(end);
}

std::string Range::to_string() const {
  if (is_single_element()) return begin.to_string();
  std::ostringstream os;
  os << begin.to_string() << ':' << end.to_string();
  if (!step.is_constant(1)) os << ':' << step.to_string();
  return os.str();
}

Expr Subset::num_elements() const {
  Expr total = 1;
  for (const Range& range : ranges) total = total * range.size();
  return total;
}

bool Subset::is_single_element() const {
  for (const Range& range : ranges) {
    if (!range.is_single_element()) return false;
  }
  return true;
}

Subset Subset::substitute(const SymbolMap& symbols) const {
  Subset result;
  result.ranges.reserve(ranges.size());
  for (const Range& range : ranges) {
    result.ranges.push_back(Range{range.begin.substitute(symbols),
                                  range.end.substitute(symbols),
                                  range.step.substitute(symbols)});
  }
  return result;
}

std::string Subset::to_string() const {
  std::ostringstream os;
  for (std::size_t d = 0; d < ranges.size(); ++d) {
    if (d > 0) os << ", ";
    os << ranges[d].to_string();
  }
  return os.str();
}

namespace {

// Splits on `sep` at depth 0 (ignores separators inside parentheses).
std::vector<std::string> split_top_level(std::string_view text, char sep) {
  std::vector<std::string> parts;
  int depth = 0;
  std::string current;
  for (char c : text) {
    if (c == '(') ++depth;
    if (c == ')') --depth;
    if (c == sep && depth == 0) {
      parts.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  parts.push_back(current);
  return parts;
}

}  // namespace

Subset Subset::parse(std::string_view text) {
  Subset subset;
  if (text.empty()) return subset;
  for (const std::string& dim : split_top_level(text, ',')) {
    std::vector<std::string> pieces = split_top_level(dim, ':');
    Range range;
    if (pieces.size() == 1) {
      range = Range::index(symbolic::parse(pieces[0]));
    } else if (pieces.size() == 2 || pieces.size() == 3) {
      range.begin = symbolic::parse(pieces[0]);
      range.end = symbolic::parse(pieces[1]);
      range.step = pieces.size() == 3 ? symbolic::parse(pieces[2]) : Expr(1);
    } else {
      throw std::invalid_argument("Subset::parse: malformed range '" + dim +
                                  "'");
    }
    subset.ranges.push_back(std::move(range));
  }
  return subset;
}

std::string to_string(Wcr wcr) {
  switch (wcr) {
    case Wcr::None:
      return "none";
    case Wcr::Sum:
      return "sum";
    case Wcr::Min:
      return "min";
    case Wcr::Max:
      return "max";
  }
  return "none";
}

Expr Memlet::effective_volume() const {
  if (!volume.is_constant(0)) return volume;
  return subset.num_elements();
}

std::string Memlet::to_string() const {
  if (is_empty()) return "(empty)";
  std::ostringstream os;
  os << data << '[' << subset.to_string() << ']';
  if (wcr != Wcr::None) os << " (wcr: " << ir::to_string(wcr) << ')';
  return os.str();
}

Memlet Memlet::simple(std::string data, std::string_view subset_text,
                      Wcr wcr) {
  Memlet memlet;
  memlet.data = std::move(data);
  memlet.subset = Subset::parse(subset_text);
  memlet.wcr = wcr;
  return memlet;
}

}  // namespace dmv::ir
