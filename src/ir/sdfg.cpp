#include "dmv/ir/sdfg.hpp"

#include <stdexcept>

namespace dmv::ir {

DataDescriptor& Sdfg::add_array(DataDescriptor descriptor) {
  if (descriptor.name.empty()) {
    throw std::invalid_argument("Sdfg::add_array: empty data name");
  }
  if (descriptor.shape.size() != descriptor.strides.size()) {
    throw std::invalid_argument("Sdfg::add_array: shape/strides rank mismatch for '" +
                                descriptor.name + "'");
  }
  auto [it, inserted] =
      arrays_.emplace(descriptor.name, std::move(descriptor));
  if (!inserted) {
    throw std::invalid_argument("Sdfg::add_array: duplicate data name '" +
                                it->first + "'");
  }
  return it->second;
}

bool Sdfg::has_array(const std::string& name) const {
  return arrays_.contains(name);
}

const DataDescriptor& Sdfg::array(const std::string& name) const {
  auto it = arrays_.find(name);
  if (it == arrays_.end()) {
    throw std::out_of_range("Sdfg::array: unknown data container '" + name +
                            "'");
  }
  return it->second;
}

DataDescriptor& Sdfg::array(const std::string& name) {
  auto it = arrays_.find(name);
  if (it == arrays_.end()) {
    throw std::out_of_range("Sdfg::array: unknown data container '" + name +
                            "'");
  }
  return it->second;
}

void Sdfg::remove_array(const std::string& name) {
  if (arrays_.erase(name) == 0) {
    throw std::out_of_range("Sdfg::remove_array: unknown data container '" +
                            name + "'");
  }
}

State& Sdfg::add_state(std::string name) {
  states_.emplace_back(std::move(name));
  return states_.back();
}

}  // namespace dmv::ir
