#include "dmv/ir/data.hpp"

#include <cassert>
#include <stdexcept>

namespace dmv::ir {

Expr DataDescriptor::total_elements() const {
  Expr total = 1;
  for (const Expr& extent : shape) total = total * extent;
  return total;
}

Expr DataDescriptor::logical_bytes() const {
  return total_elements() * element_size;
}

Expr DataDescriptor::allocated_elements() const {
  Expr last = start_offset;
  for (std::size_t d = 0; d < shape.size(); ++d) {
    last = last + (shape[d] - 1) * strides[d];
  }
  return last + 1;
}

Expr DataDescriptor::allocated_bytes() const {
  return allocated_elements() * element_size;
}

Expr DataDescriptor::element_offset(const std::vector<Expr>& indices) const {
  if (indices.size() != shape.size()) {
    throw std::invalid_argument("element_offset: rank mismatch for '" + name +
                                "'");
  }
  Expr offset = start_offset;
  for (std::size_t d = 0; d < indices.size(); ++d) {
    offset = offset + indices[d] * strides[d];
  }
  return offset;
}

std::vector<Expr> DataDescriptor::row_major_strides(
    const std::vector<Expr>& shape) {
  std::vector<Expr> strides(shape.size(), Expr(1));
  for (int d = static_cast<int>(shape.size()) - 2; d >= 0; --d) {
    strides[d] = strides[d + 1] * shape[d + 1];
  }
  return strides;
}

std::vector<Expr> DataDescriptor::column_major_strides(
    const std::vector<Expr>& shape) {
  std::vector<Expr> strides(shape.size(), Expr(1));
  for (std::size_t d = 1; d < shape.size(); ++d) {
    strides[d] = strides[d - 1] * shape[d - 1];
  }
  return strides;
}

DataDescriptor DataDescriptor::array(std::string name, std::vector<Expr> shape,
                                     int element_size, bool transient) {
  DataDescriptor descriptor;
  descriptor.name = std::move(name);
  descriptor.strides = row_major_strides(shape);
  descriptor.shape = std::move(shape);
  descriptor.element_size = element_size;
  descriptor.transient = transient;
  return descriptor;
}

DataDescriptor DataDescriptor::scalar(std::string name, int element_size,
                                      bool transient) {
  DataDescriptor descriptor;
  descriptor.name = std::move(name);
  descriptor.element_size = element_size;
  descriptor.transient = transient;
  return descriptor;
}

}  // namespace dmv::ir
