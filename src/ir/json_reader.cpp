#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dmv/ir/json_reader.hpp"
#include "dmv/symbolic/parser.hpp"
#include "dmv/util/json.hpp"

namespace dmv::ir {

namespace {

// ---------------------------------------------------------------------
// SDFG reconstruction on top of the shared dmv::json parser. Every
// json::ParseError (both lexical errors and schema-level type/key
// mismatches from the checked accessors) is rethrown as ir::JsonError
// at the from_json boundary so callers keep a single exception type.

using json::Value;

symbolic::Expr parse_expr(const Value& value) {
  return symbolic::parse(value.as_string());
}

NodeKind node_kind_from(const std::string& name) {
  if (name == "access") return NodeKind::Access;
  if (name == "tasklet") return NodeKind::Tasklet;
  if (name == "map_entry") return NodeKind::MapEntry;
  if (name == "map_exit") return NodeKind::MapExit;
  throw JsonError("unknown node kind '" + name + "'");
}

Wcr wcr_from(const std::string& name) {
  if (name == "sum") return Wcr::Sum;
  if (name == "min") return Wcr::Min;
  if (name == "max") return Wcr::Max;
  if (name == "none") return Wcr::None;
  throw JsonError("unknown wcr '" + name + "'");
}

void read_containers(const Value& document, Sdfg& sdfg) {
  for (const Value& entry : document.at("containers").as_array()) {
    DataDescriptor descriptor;
    descriptor.name = entry.at("name").as_string();
    for (const Value& extent : entry.at("shape").as_array()) {
      descriptor.shape.push_back(parse_expr(extent));
    }
    for (const Value& stride : entry.at("strides").as_array()) {
      descriptor.strides.push_back(parse_expr(stride));
    }
    descriptor.element_size =
        static_cast<int>(entry.at("element_size").as_number());
    descriptor.transient = entry.at("transient").as_bool();
    sdfg.add_array(std::move(descriptor));
  }
}

void read_state(const Value& entry, Sdfg& sdfg) {
  State& state = sdfg.add_state(entry.at("name").as_string());
  for (const Value& node_value : entry.at("nodes").as_array()) {
    Node node;
    node.id = static_cast<NodeId>(node_value.at("id").as_number());
    node.kind = node_kind_from(node_value.at("kind").as_string());
    node.label = node_value.at("label").as_string();
    if (node_value.has("data")) {
      node.data = node_value.at("data").as_string();
    }
    if (node_value.has("code")) {
      node.code = parse_tasklet(node_value.at("code").as_string());
    }
    if (node.kind == NodeKind::MapEntry) {
      node.map.label = node.label;
      for (const Value& param : node_value.at("params").as_array()) {
        node.map.params.push_back(param.as_string());
      }
      for (const Value& range : node_value.at("ranges").as_array()) {
        Subset parsed = Subset::parse(range.as_string());
        if (parsed.rank() != 1) throw JsonError("bad map range");
        node.map.ranges.push_back(parsed.ranges[0]);
      }
    }
    if (node_value.has("paired")) {
      node.paired = static_cast<NodeId>(node_value.at("paired").as_number());
    }
    if (node_value.has("scope")) {
      node.scope_parent =
          static_cast<NodeId>(node_value.at("scope").as_number());
    }
    state.add_raw(std::move(node));
  }
  for (const Value& edge_value : entry.at("edges").as_array()) {
    Memlet memlet;
    if (edge_value.has("data")) {
      memlet.data = edge_value.at("data").as_string();
      memlet.subset = Subset::parse(edge_value.at("subset").as_string());
      memlet.volume = parse_expr(edge_value.at("volume"));
      if (edge_value.has("other_subset")) {
        memlet.other_subset =
            Subset::parse(edge_value.at("other_subset").as_string());
      }
      if (edge_value.has("wcr")) {
        memlet.wcr = wcr_from(edge_value.at("wcr").as_string());
      }
    }
    state.add_edge(
        static_cast<NodeId>(edge_value.at("src").as_number()),
        static_cast<NodeId>(edge_value.at("dst").as_number()),
        std::move(memlet),
        edge_value.has("src_conn") ? edge_value.at("src_conn").as_string()
                                   : "",
        edge_value.has("dst_conn") ? edge_value.at("dst_conn").as_string()
                                   : "");
  }
}

}  // namespace

Sdfg from_json(std::string_view text) {
  try {
    Value document = json::parse(text);
    Sdfg sdfg(document.at("name").as_string());
    for (const Value& symbol : document.at("symbols").as_array()) {
      sdfg.add_symbol(symbol.as_string());
    }
    read_containers(document, sdfg);
    for (const Value& state : document.at("states").as_array()) {
      read_state(state, sdfg);
    }
    return sdfg;
  } catch (const json::ParseError& error) {
    throw JsonError(error.what());
  } catch (const symbolic::ParseError& error) {
    throw JsonError(std::string("bad expression: ") + error.what());
  } catch (const TaskletParseError& error) {
    throw JsonError(std::string("bad tasklet code: ") + error.what());
  }
}

}  // namespace dmv::ir
