#include <cctype>
#include <map>
#include <memory>
#include <vector>

#include "dmv/ir/json_reader.hpp"
#include "dmv/symbolic/parser.hpp"

namespace dmv::ir {

namespace {

// ---------------------------------------------------------------------
// A compact generic JSON value + recursive-descent parser. Only what the
// SDFG schema needs: objects, arrays, strings, numbers, booleans, null.

struct JsonValue {
  enum class Type { Null, Bool, Number, String, Array, Object };
  Type type = Type::Null;
  bool boolean = false;
  double number = 0;
  std::string text;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool has(const std::string& key) const {
    return type == Type::Object && object.contains(key);
  }
  const JsonValue& at(const std::string& key) const {
    if (!has(key)) throw JsonError("missing key '" + key + "'");
    return object.at(key);
  }
  const std::string& as_string() const {
    if (type != Type::String) throw JsonError("expected string");
    return text;
  }
  double as_number() const {
    if (type != Type::Number) throw JsonError("expected number");
    return number;
  }
  bool as_bool() const {
    if (type != Type::Bool) throw JsonError("expected boolean");
    return boolean;
  }
  const std::vector<JsonValue>& as_array() const {
    if (type != Type::Array) throw JsonError("expected array");
    return array;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue run() {
    JsonValue value = parse_value();
    skip_whitespace();
    if (position_ != text_.size()) {
      fail("trailing characters after document");
    }
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw JsonError("JSON parse error at offset " +
                    std::to_string(position_) + ": " + message);
  }

  void skip_whitespace() {
    while (position_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[position_]))) {
      ++position_;
    }
  }

  char peek() {
    skip_whitespace();
    if (position_ >= text_.size()) fail("unexpected end of input");
    return text_[position_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++position_;
  }

  bool try_consume(char c) {
    skip_whitespace();
    if (position_ < text_.size() && text_[position_] == c) {
      ++position_;
      return true;
    }
    return false;
  }

  bool consume_keyword(std::string_view keyword) {
    skip_whitespace();
    if (text_.substr(position_, keyword.size()) == keyword) {
      position_ += keyword.size();
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return parse_string();
    if (consume_keyword("true")) {
      JsonValue value;
      value.type = JsonValue::Type::Bool;
      value.boolean = true;
      return value;
    }
    if (consume_keyword("false")) {
      JsonValue value;
      value.type = JsonValue::Type::Bool;
      return value;
    }
    if (consume_keyword("null")) return JsonValue{};
    return parse_number();
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue value;
    value.type = JsonValue::Type::Object;
    if (try_consume('}')) return value;
    for (;;) {
      JsonValue key = parse_string();
      expect(':');
      value.object.emplace(key.text, parse_value());
      if (try_consume('}')) return value;
      expect(',');
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue value;
    value.type = JsonValue::Type::Array;
    if (try_consume(']')) return value;
    for (;;) {
      value.array.push_back(parse_value());
      if (try_consume(']')) return value;
      expect(',');
    }
  }

  JsonValue parse_string() {
    expect('"');
    JsonValue value;
    value.type = JsonValue::Type::String;
    while (position_ < text_.size() && text_[position_] != '"') {
      char c = text_[position_++];
      if (c == '\\') {
        if (position_ >= text_.size()) fail("unterminated escape");
        const char escape = text_[position_++];
        switch (escape) {
          case '"':
            c = '"';
            break;
          case '\\':
            c = '\\';
            break;
          case '/':
            c = '/';
            break;
          case 'n':
            c = '\n';
            break;
          case 't':
            c = '\t';
            break;
          case 'r':
            c = '\r';
            break;
          default:
            fail(std::string("unsupported escape '\\") + escape + "'");
        }
      }
      value.text += c;
    }
    if (position_ >= text_.size()) fail("unterminated string");
    ++position_;  // Closing quote.
    return value;
  }

  JsonValue parse_number() {
    skip_whitespace();
    const std::size_t start = position_;
    while (position_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[position_])) ||
            text_[position_] == '-' || text_[position_] == '+' ||
            text_[position_] == '.' || text_[position_] == 'e' ||
            text_[position_] == 'E')) {
      ++position_;
    }
    if (position_ == start) fail("expected a value");
    JsonValue value;
    value.type = JsonValue::Type::Number;
    try {
      value.number =
          std::stod(std::string(text_.substr(start, position_ - start)));
    } catch (const std::exception&) {
      fail("bad number");
    }
    return value;
  }

  std::string_view text_;
  std::size_t position_ = 0;
};

// ---------------------------------------------------------------------
// SDFG reconstruction.

symbolic::Expr parse_expr(const JsonValue& value) {
  return symbolic::parse(value.as_string());
}

NodeKind node_kind_from(const std::string& name) {
  if (name == "access") return NodeKind::Access;
  if (name == "tasklet") return NodeKind::Tasklet;
  if (name == "map_entry") return NodeKind::MapEntry;
  if (name == "map_exit") return NodeKind::MapExit;
  throw JsonError("unknown node kind '" + name + "'");
}

Wcr wcr_from(const std::string& name) {
  if (name == "sum") return Wcr::Sum;
  if (name == "min") return Wcr::Min;
  if (name == "max") return Wcr::Max;
  if (name == "none") return Wcr::None;
  throw JsonError("unknown wcr '" + name + "'");
}

void read_containers(const JsonValue& document, Sdfg& sdfg) {
  for (const JsonValue& entry : document.at("containers").as_array()) {
    DataDescriptor descriptor;
    descriptor.name = entry.at("name").as_string();
    for (const JsonValue& extent : entry.at("shape").as_array()) {
      descriptor.shape.push_back(parse_expr(extent));
    }
    for (const JsonValue& stride : entry.at("strides").as_array()) {
      descriptor.strides.push_back(parse_expr(stride));
    }
    descriptor.element_size =
        static_cast<int>(entry.at("element_size").as_number());
    descriptor.transient = entry.at("transient").as_bool();
    sdfg.add_array(std::move(descriptor));
  }
}

void read_state(const JsonValue& entry, Sdfg& sdfg) {
  State& state = sdfg.add_state(entry.at("name").as_string());
  for (const JsonValue& node_value : entry.at("nodes").as_array()) {
    Node node;
    node.id = static_cast<NodeId>(node_value.at("id").as_number());
    node.kind = node_kind_from(node_value.at("kind").as_string());
    node.label = node_value.at("label").as_string();
    if (node_value.has("data")) {
      node.data = node_value.at("data").as_string();
    }
    if (node_value.has("code")) {
      node.code = parse_tasklet(node_value.at("code").as_string());
    }
    if (node.kind == NodeKind::MapEntry) {
      node.map.label = node.label;
      for (const JsonValue& param : node_value.at("params").as_array()) {
        node.map.params.push_back(param.as_string());
      }
      for (const JsonValue& range : node_value.at("ranges").as_array()) {
        Subset parsed = Subset::parse(range.as_string());
        if (parsed.rank() != 1) throw JsonError("bad map range");
        node.map.ranges.push_back(parsed.ranges[0]);
      }
    }
    if (node_value.has("paired")) {
      node.paired = static_cast<NodeId>(node_value.at("paired").as_number());
    }
    if (node_value.has("scope")) {
      node.scope_parent =
          static_cast<NodeId>(node_value.at("scope").as_number());
    }
    state.add_raw(std::move(node));
  }
  for (const JsonValue& edge_value : entry.at("edges").as_array()) {
    Memlet memlet;
    if (edge_value.has("data")) {
      memlet.data = edge_value.at("data").as_string();
      memlet.subset = Subset::parse(edge_value.at("subset").as_string());
      memlet.volume = parse_expr(edge_value.at("volume"));
      if (edge_value.has("other_subset")) {
        memlet.other_subset =
            Subset::parse(edge_value.at("other_subset").as_string());
      }
      if (edge_value.has("wcr")) {
        memlet.wcr = wcr_from(edge_value.at("wcr").as_string());
      }
    }
    state.add_edge(
        static_cast<NodeId>(edge_value.at("src").as_number()),
        static_cast<NodeId>(edge_value.at("dst").as_number()),
        std::move(memlet),
        edge_value.has("src_conn") ? edge_value.at("src_conn").as_string()
                                   : "",
        edge_value.has("dst_conn") ? edge_value.at("dst_conn").as_string()
                                   : "");
  }
}

}  // namespace

Sdfg from_json(std::string_view text) {
  JsonValue document = JsonParser(text).run();
  try {
    Sdfg sdfg(document.at("name").as_string());
    for (const JsonValue& symbol : document.at("symbols").as_array()) {
      sdfg.add_symbol(symbol.as_string());
    }
    read_containers(document, sdfg);
    for (const JsonValue& state : document.at("states").as_array()) {
      read_state(state, sdfg);
    }
    return sdfg;
  } catch (const symbolic::ParseError& error) {
    throw JsonError(std::string("bad expression: ") + error.what());
  } catch (const TaskletParseError& error) {
    throw JsonError(std::string("bad tasklet code: ") + error.what());
  }
}

}  // namespace dmv::ir
