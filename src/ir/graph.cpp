#include "dmv/ir/graph.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace dmv::ir {

NodeId State::add_access(std::string data, NodeId scope) {
  Node node;
  node.id = static_cast<NodeId>(nodes_.size());
  node.kind = NodeKind::Access;
  node.label = data;
  node.data = std::move(data);
  node.scope_parent = scope;
  nodes_.push_back(std::move(node));
  return nodes_.back().id;
}

NodeId State::add_tasklet(std::string label, TaskletAst code, NodeId scope) {
  Node node;
  node.id = static_cast<NodeId>(nodes_.size());
  node.kind = NodeKind::Tasklet;
  node.label = std::move(label);
  node.code = std::move(code);
  node.scope_parent = scope;
  nodes_.push_back(std::move(node));
  return nodes_.back().id;
}

NodeId State::add_tasklet(std::string label, std::string_view code,
                          NodeId scope) {
  return add_tasklet(std::move(label), parse_tasklet(code), scope);
}

std::pair<NodeId, NodeId> State::add_map(MapInfo info, NodeId scope) {
  Node entry;
  entry.id = static_cast<NodeId>(nodes_.size());
  entry.kind = NodeKind::MapEntry;
  entry.label = info.label;
  entry.map = std::move(info);
  entry.scope_parent = scope;
  nodes_.push_back(std::move(entry));
  const NodeId entry_id = nodes_.back().id;

  Node exit;
  exit.id = static_cast<NodeId>(nodes_.size());
  exit.kind = NodeKind::MapExit;
  exit.label = nodes_[entry_id].map.label;
  exit.paired = entry_id;
  // The exit is a member of the scope it closes, mirroring DaCe, so that
  // scope_children(entry) yields the full body including the exit.
  exit.scope_parent = entry_id;
  nodes_.push_back(std::move(exit));
  const NodeId exit_id = nodes_.back().id;
  nodes_[entry_id].paired = exit_id;
  return {entry_id, exit_id};
}

NodeId State::add_raw(Node node) {
  if (node.id != static_cast<NodeId>(nodes_.size())) {
    throw std::invalid_argument("State::add_raw: node id must be " +
                                std::to_string(nodes_.size()));
  }
  nodes_.push_back(std::move(node));
  return nodes_.back().id;
}

void State::add_edge(NodeId src, NodeId dst, Memlet memlet,
                     std::string src_conn, std::string dst_conn) {
  if (src < 0 || dst < 0 || src >= static_cast<NodeId>(nodes_.size()) ||
      dst >= static_cast<NodeId>(nodes_.size())) {
    throw std::out_of_range("State::add_edge: node id out of range");
  }
  Edge edge;
  edge.src = src;
  edge.dst = dst;
  edge.src_conn = std::move(src_conn);
  edge.dst_conn = std::move(dst_conn);
  edge.memlet = std::move(memlet);
  edges_.push_back(std::move(edge));
}

std::vector<const Edge*> State::in_edges(NodeId id) const {
  std::vector<const Edge*> result;
  for (const Edge& edge : edges_) {
    if (edge.dst == id) result.push_back(&edge);
  }
  return result;
}

std::vector<const Edge*> State::out_edges(NodeId id) const {
  std::vector<const Edge*> result;
  for (const Edge& edge : edges_) {
    if (edge.src == id) result.push_back(&edge);
  }
  return result;
}

std::vector<NodeId> State::scope_children(NodeId scope) const {
  std::vector<NodeId> children;
  for (const Node& node : nodes_) {
    if (node.scope_parent == scope) children.push_back(node.id);
  }
  return children;
}

std::vector<NodeId> State::scope_chain(NodeId id) const {
  std::vector<NodeId> chain;
  NodeId current = node(id).scope_parent;
  while (current != kNoNode) {
    chain.push_back(current);
    current = node(current).scope_parent;
  }
  return chain;
}

int State::scope_depth(NodeId id) const {
  return static_cast<int>(scope_chain(id).size());
}

std::vector<NodeId> State::topological_order() const {
  std::vector<int> in_degree(nodes_.size(), 0);
  for (const Edge& edge : edges_) ++in_degree[edge.dst];

  std::vector<NodeId> ready;
  for (const Node& node : nodes_) {
    if (in_degree[node.id] == 0) ready.push_back(node.id);
  }
  // Stable order: process lowest ids first so results are deterministic.
  std::sort(ready.begin(), ready.end());

  std::vector<NodeId> order;
  order.reserve(nodes_.size());
  while (!ready.empty()) {
    NodeId current = ready.front();
    ready.erase(ready.begin());
    order.push_back(current);
    std::vector<NodeId> newly_ready;
    for (const Edge& edge : edges_) {
      if (edge.src != current) continue;
      if (--in_degree[edge.dst] == 0) newly_ready.push_back(edge.dst);
    }
    std::sort(newly_ready.begin(), newly_ready.end());
    // Merge while keeping `ready` sorted.
    for (NodeId id : newly_ready) {
      ready.insert(std::lower_bound(ready.begin(), ready.end(), id), id);
    }
  }
  if (order.size() != nodes_.size()) {
    throw std::logic_error("State::topological_order: dataflow cycle in '" +
                           name_ + "'");
  }
  return order;
}

std::vector<NodeId> State::erase_nodes(const std::vector<NodeId>& ids) {
  std::vector<bool> removed(nodes_.size(), false);
  for (NodeId id : ids) {
    if (id < 0 || id >= static_cast<NodeId>(nodes_.size())) {
      throw std::out_of_range("State::erase_nodes: node id out of range");
    }
    removed[id] = true;
  }

  std::vector<NodeId> remap(nodes_.size(), kNoNode);
  std::vector<Node> new_nodes;
  new_nodes.reserve(nodes_.size());
  for (const Node& node : nodes_) {
    if (removed[node.id]) continue;
    remap[node.id] = static_cast<NodeId>(new_nodes.size());
    new_nodes.push_back(node);
  }
  for (Node& node : new_nodes) {
    node.id = remap[node.id];
    if (node.paired != kNoNode) {
      node.paired = removed[node.paired] ? kNoNode : remap[node.paired];
    }
    if (node.scope_parent != kNoNode) {
      node.scope_parent =
          removed[node.scope_parent] ? kNoNode : remap[node.scope_parent];
    }
  }

  std::vector<Edge> new_edges;
  new_edges.reserve(edges_.size());
  for (const Edge& edge : edges_) {
    if (removed[edge.src] || removed[edge.dst]) continue;
    Edge copy = edge;
    copy.src = remap[edge.src];
    copy.dst = remap[edge.dst];
    new_edges.push_back(std::move(copy));
  }

  nodes_ = std::move(new_nodes);
  edges_ = std::move(new_edges);
  return remap;
}

StateSchedule::StateSchedule(const State& state)
    : order(state.topological_order()),
      in_adjacency(state.num_nodes()),
      out_adjacency(state.num_nodes()) {
  for (const Edge& edge : state.edges()) {
    out_adjacency[edge.src].push_back(&edge);
    in_adjacency[edge.dst].push_back(&edge);
  }
}

}  // namespace dmv::ir
