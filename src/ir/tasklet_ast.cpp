#include "dmv/ir/tasklet_ast.hpp"

#include <cctype>
#include <cmath>
#include <set>

namespace dmv::ir {

TaskletExpr TaskletExpr::literal_value(double v) {
  TaskletExpr e;
  e.kind = Kind::Literal;
  e.literal = v;
  return e;
}

TaskletExpr TaskletExpr::conn(std::string name) {
  TaskletExpr e;
  e.kind = Kind::Connector;
  e.connector = std::move(name);
  return e;
}

TaskletExpr TaskletExpr::operation(TaskletOp op,
                                   std::vector<TaskletExpr> args) {
  TaskletExpr e;
  e.kind = Kind::Operation;
  e.op = op;
  e.operands = std::move(args);
  return e;
}

OpCount& OpCount::operator+=(const OpCount& other) {
  adds += other.adds;
  muls += other.muls;
  divs += other.divs;
  comparisons += other.comparisons;
  special += other.special;
  return *this;
}

namespace {

void count_expr(const TaskletExpr& e, OpCount& count) {
  if (e.kind != TaskletExpr::Kind::Operation) return;
  switch (e.op) {
    case TaskletOp::Add:
    case TaskletOp::Sub:
    case TaskletOp::Neg:
      ++count.adds;
      break;
    case TaskletOp::Mul:
      ++count.muls;
      break;
    case TaskletOp::Div:
      ++count.divs;
      break;
    case TaskletOp::Less:
    case TaskletOp::Greater:
      ++count.comparisons;
      break;
    case TaskletOp::Exp:
    case TaskletOp::Log:
    case TaskletOp::Sqrt:
    case TaskletOp::Tanh:
    case TaskletOp::Erf:
    case TaskletOp::Abs:
    case TaskletOp::Min:
    case TaskletOp::Max:
    case TaskletOp::Select:
      ++count.special;
      break;
  }
  for (const TaskletExpr& operand : e.operands) count_expr(operand, count);
}

void collect_reads(const TaskletExpr& e, const std::set<std::string>& locals,
                   std::vector<std::string>& out,
                   std::set<std::string>& seen) {
  if (e.kind == TaskletExpr::Kind::Connector) {
    if (!locals.contains(e.connector) && !seen.contains(e.connector)) {
      seen.insert(e.connector);
      out.push_back(e.connector);
    }
    return;
  }
  for (const TaskletExpr& operand : e.operands) {
    collect_reads(operand, locals, out, seen);
  }
}

double eval_expr(const TaskletExpr& e,
                 const std::map<std::string, double>& values) {
  switch (e.kind) {
    case TaskletExpr::Kind::Literal:
      return e.literal;
    case TaskletExpr::Kind::Connector: {
      auto it = values.find(e.connector);
      if (it == values.end()) {
        throw TaskletParseError("tasklet read of undefined connector '" +
                                e.connector + "'");
      }
      return it->second;
    }
    case TaskletExpr::Kind::Operation: {
      auto arg = [&](std::size_t i) { return eval_expr(e.operands[i], values); };
      switch (e.op) {
        case TaskletOp::Add:
          return arg(0) + arg(1);
        case TaskletOp::Sub:
          return arg(0) - arg(1);
        case TaskletOp::Mul:
          return arg(0) * arg(1);
        case TaskletOp::Div:
          return arg(0) / arg(1);
        case TaskletOp::Neg:
          return -arg(0);
        case TaskletOp::Less:
          return arg(0) < arg(1) ? 1.0 : 0.0;
        case TaskletOp::Greater:
          return arg(0) > arg(1) ? 1.0 : 0.0;
        case TaskletOp::Exp:
          return std::exp(arg(0));
        case TaskletOp::Log:
          return std::log(arg(0));
        case TaskletOp::Sqrt:
          return std::sqrt(arg(0));
        case TaskletOp::Tanh:
          return std::tanh(arg(0));
        case TaskletOp::Erf:
          return std::erf(arg(0));
        case TaskletOp::Abs:
          return std::fabs(arg(0));
        case TaskletOp::Min:
          return std::min(arg(0), arg(1));
        case TaskletOp::Max:
          return std::max(arg(0), arg(1));
        case TaskletOp::Select:
          return arg(0) != 0.0 ? arg(1) : arg(2);
      }
      break;
    }
  }
  throw TaskletParseError("tasklet: malformed expression node");
}

class TaskletParser {
 public:
  explicit TaskletParser(std::string_view text) : text_(text) {}

  TaskletAst run() {
    TaskletAst ast;
    ast.source = std::string(text_);
    for (;;) {
      skip_separators();
      if (pos_ >= text_.size()) break;
      ast.statements.push_back(parse_statement());
    }
    if (ast.statements.empty()) {
      throw TaskletParseError("tasklet body has no statements");
    }
    return ast;
  }

 private:
  void skip_spaces() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t')) {
      ++pos_;
    }
  }

  void skip_separators() {
    while (pos_ < text_.size() &&
           (std::isspace(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == ';')) {
      ++pos_;
    }
  }

  bool at_statement_end() {
    skip_spaces();
    return pos_ >= text_.size() || text_[pos_] == ';' || text_[pos_] == '\n';
  }

  TaskletStatement parse_statement() {
    std::string target = parse_identifier();
    skip_spaces();
    if (pos_ >= text_.size() || text_[pos_] != '=') {
      throw TaskletParseError("expected '=' in tasklet statement after '" +
                              target + "'");
    }
    ++pos_;
    TaskletExpr value = parse_expr();
    if (!at_statement_end()) {
      throw TaskletParseError("trailing characters in tasklet statement");
    }
    return TaskletStatement{std::move(target), std::move(value)};
  }

  TaskletExpr parse_expr() { return parse_comparison(); }

  TaskletExpr parse_comparison() {
    TaskletExpr left = parse_additive();
    skip_spaces();
    if (pos_ < text_.size() && (text_[pos_] == '<' || text_[pos_] == '>')) {
      TaskletOp op =
          text_[pos_] == '<' ? TaskletOp::Less : TaskletOp::Greater;
      ++pos_;
      TaskletExpr right = parse_additive();
      return TaskletExpr::operation(op, {std::move(left), std::move(right)});
    }
    return left;
  }

  TaskletExpr parse_additive() {
    TaskletExpr left = parse_multiplicative();
    for (;;) {
      skip_spaces();
      if (pos_ < text_.size() && text_[pos_] == '+') {
        ++pos_;
        left = TaskletExpr::operation(
            TaskletOp::Add, {std::move(left), parse_multiplicative()});
      } else if (pos_ < text_.size() && text_[pos_] == '-') {
        ++pos_;
        left = TaskletExpr::operation(
            TaskletOp::Sub, {std::move(left), parse_multiplicative()});
      } else {
        return left;
      }
    }
  }

  TaskletExpr parse_multiplicative() {
    TaskletExpr left = parse_unary();
    for (;;) {
      skip_spaces();
      if (pos_ < text_.size() && text_[pos_] == '*') {
        ++pos_;
        left = TaskletExpr::operation(TaskletOp::Mul,
                                      {std::move(left), parse_unary()});
      } else if (pos_ < text_.size() && text_[pos_] == '/') {
        ++pos_;
        left = TaskletExpr::operation(TaskletOp::Div,
                                      {std::move(left), parse_unary()});
      } else {
        return left;
      }
    }
  }

  TaskletExpr parse_unary() {
    skip_spaces();
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
      return TaskletExpr::operation(TaskletOp::Neg, {parse_unary()});
    }
    return parse_primary();
  }

  TaskletExpr parse_primary() {
    skip_spaces();
    if (pos_ >= text_.size()) {
      throw TaskletParseError("unexpected end of tasklet expression");
    }
    char c = text_[pos_];
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') {
      return parse_number();
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string name = parse_identifier();
      skip_spaces();
      if (pos_ < text_.size() && text_[pos_] == '(') {
        return parse_call(std::move(name));
      }
      return TaskletExpr::conn(std::move(name));
    }
    if (c == '(') {
      ++pos_;
      TaskletExpr inner = parse_expr();
      skip_spaces();
      if (pos_ >= text_.size() || text_[pos_] != ')') {
        throw TaskletParseError("expected ')' in tasklet expression");
      }
      ++pos_;
      return inner;
    }
    throw TaskletParseError(std::string("unexpected character '") + c +
                            "' in tasklet expression");
  }

  TaskletExpr parse_number() {
    std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            ((text_[pos_] == '+' || text_[pos_] == '-') && pos_ > start &&
             (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E')))) {
      ++pos_;
    }
    return TaskletExpr::literal_value(
        std::stod(std::string(text_.substr(start, pos_ - start))));
  }

  std::string parse_identifier() {
    skip_spaces();
    std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) {
      throw TaskletParseError("expected identifier in tasklet code");
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  TaskletExpr parse_call(std::string name) {
    ++pos_;  // '('
    std::vector<TaskletExpr> args;
    skip_spaces();
    if (pos_ < text_.size() && text_[pos_] != ')') {
      args.push_back(parse_expr());
      skip_spaces();
      while (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        args.push_back(parse_expr());
        skip_spaces();
      }
    }
    if (pos_ >= text_.size() || text_[pos_] != ')') {
      throw TaskletParseError("expected ')' after call arguments");
    }
    ++pos_;

    struct Intrinsic {
      const char* name;
      TaskletOp op;
      std::size_t arity;
    };
    static constexpr Intrinsic kIntrinsics[] = {
        {"exp", TaskletOp::Exp, 1},       {"log", TaskletOp::Log, 1},
        {"sqrt", TaskletOp::Sqrt, 1},     {"tanh", TaskletOp::Tanh, 1},
        {"erf", TaskletOp::Erf, 1},       {"abs", TaskletOp::Abs, 1},
        {"min", TaskletOp::Min, 2},       {"max", TaskletOp::Max, 2},
        {"select", TaskletOp::Select, 3},
    };
    for (const Intrinsic& intrinsic : kIntrinsics) {
      if (name == intrinsic.name) {
        if (args.size() != intrinsic.arity) {
          throw TaskletParseError("intrinsic '" + name + "' expects " +
                                  std::to_string(intrinsic.arity) +
                                  " arguments");
        }
        return TaskletExpr::operation(intrinsic.op, std::move(args));
      }
    }
    throw TaskletParseError("unknown tasklet intrinsic '" + name + "'");
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

OpCount TaskletAst::count_operations() const {
  OpCount count;
  for (const TaskletStatement& statement : statements) {
    count_expr(statement.value, count);
  }
  return count;
}

std::vector<std::string> TaskletAst::read_connectors() const {
  std::vector<std::string> reads;
  std::set<std::string> assigned;
  std::set<std::string> seen;
  for (const TaskletStatement& statement : statements) {
    collect_reads(statement.value, assigned, reads, seen);
    assigned.insert(statement.target);
  }
  return reads;
}

std::vector<std::string> TaskletAst::written_connectors() const {
  std::vector<std::string> writes;
  std::set<std::string> seen;
  for (const TaskletStatement& statement : statements) {
    if (seen.insert(statement.target).second) {
      writes.push_back(statement.target);
    }
  }
  return writes;
}

void TaskletAst::execute(std::map<std::string, double>& values) const {
  for (const TaskletStatement& statement : statements) {
    values[statement.target] = eval_expr(statement.value, values);
  }
}

TaskletAst parse_tasklet(std::string_view code) {
  return TaskletParser(code).run();
}

}  // namespace dmv::ir
