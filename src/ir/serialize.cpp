#include "dmv/ir/serialize.hpp"

#include <sstream>

namespace dmv::ir {

namespace {

// Minimal JSON string escaping (the IR only emits printable identifiers
// and expression strings, but be safe about quotes and backslashes).
std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string quoted(const std::string& text) {
  return '"' + json_escape(text) + '"';
}

const char* node_kind_name(NodeKind kind) {
  switch (kind) {
    case NodeKind::Access:
      return "access";
    case NodeKind::Tasklet:
      return "tasklet";
    case NodeKind::MapEntry:
      return "map_entry";
    case NodeKind::MapExit:
      return "map_exit";
  }
  return "?";
}

void write_node(std::ostringstream& os, const Node& node,
                const std::string& indent) {
  os << indent << "{\"id\": " << node.id << ", \"kind\": "
     << quoted(node_kind_name(node.kind)) << ", \"label\": "
     << quoted(node.label);
  if (node.kind == NodeKind::Access) {
    os << ", \"data\": " << quoted(node.data);
  }
  if (node.kind == NodeKind::Tasklet) {
    os << ", \"code\": " << quoted(node.code.source);
  }
  if (node.kind == NodeKind::MapEntry) {
    os << ", \"params\": [";
    for (std::size_t i = 0; i < node.map.params.size(); ++i) {
      if (i > 0) os << ", ";
      os << quoted(node.map.params[i]);
    }
    os << "], \"ranges\": [";
    for (std::size_t i = 0; i < node.map.ranges.size(); ++i) {
      if (i > 0) os << ", ";
      os << quoted(node.map.ranges[i].to_string());
    }
    os << ']';
  }
  if (node.paired != kNoNode) os << ", \"paired\": " << node.paired;
  if (node.scope_parent != kNoNode) {
    os << ", \"scope\": " << node.scope_parent;
  }
  os << '}';
}

void write_edge(std::ostringstream& os, const Edge& edge,
                const std::string& indent) {
  os << indent << "{\"src\": " << edge.src << ", \"dst\": " << edge.dst;
  if (!edge.src_conn.empty()) os << ", \"src_conn\": " << quoted(edge.src_conn);
  if (!edge.dst_conn.empty()) os << ", \"dst_conn\": " << quoted(edge.dst_conn);
  if (!edge.memlet.is_empty()) {
    os << ", \"data\": " << quoted(edge.memlet.data) << ", \"subset\": "
       << quoted(edge.memlet.subset.to_string()) << ", \"volume\": "
       << quoted(edge.memlet.effective_volume().to_string());
    if (!edge.memlet.other_subset.ranges.empty()) {
      os << ", \"other_subset\": "
         << quoted(edge.memlet.other_subset.to_string());
    }
    if (edge.memlet.wcr != Wcr::None) {
      os << ", \"wcr\": " << quoted(to_string(edge.memlet.wcr));
    }
  }
  os << '}';
}

}  // namespace

std::string to_json(const Sdfg& sdfg) {
  std::ostringstream os;
  os << "{\n  \"name\": " << quoted(sdfg.name()) << ",\n  \"symbols\": [";
  bool first = true;
  for (const std::string& symbol : sdfg.symbols()) {
    if (!first) os << ", ";
    first = false;
    os << quoted(symbol);
  }
  os << "],\n  \"containers\": [\n";
  first = true;
  for (const auto& [name, descriptor] : sdfg.arrays()) {
    if (!first) os << ",\n";
    first = false;
    os << "    {\"name\": " << quoted(name) << ", \"shape\": [";
    for (std::size_t d = 0; d < descriptor.shape.size(); ++d) {
      if (d > 0) os << ", ";
      os << quoted(descriptor.shape[d].to_string());
    }
    os << "], \"strides\": [";
    for (std::size_t d = 0; d < descriptor.strides.size(); ++d) {
      if (d > 0) os << ", ";
      os << quoted(descriptor.strides[d].to_string());
    }
    os << "], \"element_size\": " << descriptor.element_size
       << ", \"transient\": " << (descriptor.transient ? "true" : "false")
       << '}';
  }
  os << "\n  ],\n  \"states\": [\n";
  first = true;
  for (const State& state : sdfg.states()) {
    if (!first) os << ",\n";
    first = false;
    os << "    {\"name\": " << quoted(state.name()) << ",\n     \"nodes\": [\n";
    bool first_node = true;
    for (const Node& node : state.nodes()) {
      if (!first_node) os << ",\n";
      first_node = false;
      write_node(os, node, "       ");
    }
    os << "\n     ],\n     \"edges\": [\n";
    bool first_edge = true;
    for (const Edge& edge : state.edges()) {
      if (!first_edge) os << ",\n";
      first_edge = false;
      write_edge(os, edge, "       ");
    }
    os << "\n     ]}";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

std::string to_dot(const State& state) {
  std::ostringstream os;
  os << "digraph \"" << state.name() << "\" {\n";
  for (const Node& node : state.nodes()) {
    const char* shape = "box";
    if (node.kind == NodeKind::Access) shape = "ellipse";
    if (node.kind == NodeKind::MapEntry) shape = "trapezium";
    if (node.kind == NodeKind::MapExit) shape = "invtrapezium";
    os << "  n" << node.id << " [shape=" << shape << ", label=\""
       << json_escape(node.label) << "\"];\n";
  }
  for (const Edge& edge : state.edges()) {
    os << "  n" << edge.src << " -> n" << edge.dst;
    if (!edge.memlet.is_empty()) {
      os << " [label=\"" << json_escape(edge.memlet.to_string()) << "\"]";
    }
    os << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace dmv::ir
