#include "dmv/ir/validate.hpp"

#include <sstream>
#include <stdexcept>

namespace dmv::ir {

namespace {

void validate_state(const Sdfg& sdfg, const State& state,
                    std::vector<ValidationIssue>& issues) {
  auto report = [&](std::string message) {
    issues.push_back(ValidationIssue{state.name(), std::move(message)});
  };

  // Node payloads and scope references.
  for (const Node& node : state.nodes()) {
    if (node.scope_parent != kNoNode) {
      if (node.scope_parent < 0 ||
          node.scope_parent >= static_cast<NodeId>(state.num_nodes())) {
        report("node " + std::to_string(node.id) +
               " has out-of-range scope parent");
        continue;
      }
      if (state.node(node.scope_parent).kind != NodeKind::MapEntry) {
        report("node " + std::to_string(node.id) +
               " scope parent is not a map entry");
      }
    }
    switch (node.kind) {
      case NodeKind::Access:
        if (!sdfg.has_array(node.data)) {
          report("access node " + std::to_string(node.id) +
                 " references undeclared container '" + node.data + "'");
        }
        break;
      case NodeKind::Tasklet:
        if (node.code.statements.empty()) {
          report("tasklet " + std::to_string(node.id) + " ('" + node.label +
                 "') has an empty body");
        }
        break;
      case NodeKind::MapEntry: {
        if (node.map.params.size() != node.map.ranges.size()) {
          report("map entry " + std::to_string(node.id) +
                 " has mismatched params/ranges");
        }
        if (node.map.params.empty()) {
          report("map entry " + std::to_string(node.id) +
                 " has no parameters");
        }
        if (node.paired == kNoNode ||
            state.node(node.paired).kind != NodeKind::MapExit ||
            state.node(node.paired).paired != node.id) {
          report("map entry " + std::to_string(node.id) +
                 " has no matching exit");
        }
        break;
      }
      case NodeKind::MapExit:
        if (node.paired == kNoNode ||
            state.node(node.paired).kind != NodeKind::MapEntry) {
          report("map exit " + std::to_string(node.id) +
                 " has no matching entry");
        } else if (node.scope_parent != node.paired) {
          report("map exit " + std::to_string(node.id) +
                 " must live in the scope of its own entry");
        }
        break;
    }
  }

  // Edges: endpoint validity, memlet data, rank consistency, scoping.
  for (const Edge& edge : state.edges()) {
    if (edge.src < 0 || edge.src >= static_cast<NodeId>(state.num_nodes()) ||
        edge.dst < 0 || edge.dst >= static_cast<NodeId>(state.num_nodes())) {
      report("edge references out-of-range node id");
      continue;
    }
    const Node& src = state.node(edge.src);
    const Node& dst = state.node(edge.dst);
    if (!edge.memlet.is_empty()) {
      if (!sdfg.has_array(edge.memlet.data)) {
        report("memlet references undeclared container '" + edge.memlet.data +
               "'");
      } else {
        const DataDescriptor& descriptor = sdfg.array(edge.memlet.data);
        if (descriptor.rank() > 0 &&
            edge.memlet.subset.rank() != descriptor.rank()) {
          report("memlet subset rank " +
                 std::to_string(edge.memlet.subset.rank()) +
                 " does not match rank " + std::to_string(descriptor.rank()) +
                 " of '" + descriptor.name + "'");
        }
      }
    }

    // Scope rule: an edge may stay within one scope, enter a scope through
    // its map entry, or leave through its map exit. (Note a map exit is a
    // member of the scope it closes, so body->exit is the same-scope case.)
    const bool same_scope = src.scope_parent == dst.scope_parent;
    const bool entry_to_inside =
        src.kind == NodeKind::MapEntry && dst.scope_parent == src.id;
    const bool exit_to_outside =
        src.kind == NodeKind::MapExit && src.paired != kNoNode &&
        dst.scope_parent == state.node(src.paired).scope_parent;
    if (!(same_scope || entry_to_inside || exit_to_outside)) {
      report("edge " + std::to_string(edge.src) + "->" +
             std::to_string(edge.dst) + " crosses a map scope boundary");
    }
  }

  // Acyclicity.
  try {
    (void)state.topological_order();
  } catch (const std::logic_error&) {
    report("state dataflow graph is cyclic");
  }
}

}  // namespace

std::vector<ValidationIssue> validate(const Sdfg& sdfg) {
  std::vector<ValidationIssue> issues;

  // Descriptor sanity.
  for (const auto& [name, descriptor] : sdfg.arrays()) {
    if (descriptor.shape.size() != descriptor.strides.size()) {
      issues.push_back(
          {"", "container '" + name + "' has shape/strides rank mismatch"});
    }
    if (descriptor.element_size <= 0) {
      issues.push_back(
          {"", "container '" + name + "' has non-positive element size"});
    }
  }

  for (const State& state : sdfg.states()) {
    validate_state(sdfg, state, issues);
  }
  return issues;
}

void validate_or_throw(const Sdfg& sdfg) {
  std::vector<ValidationIssue> issues = validate(sdfg);
  if (issues.empty()) return;
  std::ostringstream os;
  os << "SDFG '" << sdfg.name() << "' failed validation:";
  for (const ValidationIssue& issue : issues) {
    os << "\n  [" << (issue.state.empty() ? "<sdfg>" : issue.state) << "] "
       << issue.message;
  }
  throw std::runtime_error(os.str());
}

}  // namespace dmv::ir
