#include "dmv/symbolic/expr.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "intern.hpp"

namespace dmv::symbolic {

namespace {

using detail::InternAccess;
using detail_intern::intern_node;
using detail_intern::memoization_enabled;

// Small interned constants resolved once: shapes and strides are full of
// 0/1/2, and Expr's default constructor builds 0.
const ExprNode* small_constant(std::int64_t v) {
  static const ExprNode* const cache[] = {
      intern_node(ExprKind::Constant, 0, 0, {}),
      intern_node(ExprKind::Constant, 1, 0, {}),
      intern_node(ExprKind::Constant, 2, 0, {}),
      intern_node(ExprKind::Constant, 3, 0, {}),
      intern_node(ExprKind::Constant, 4, 0, {})};
  assert(v >= 0 && v <= 4);
  return cache[v];
}

const ExprNode* constant_node(std::int64_t v) {
  if (v >= 0 && v <= 4) return small_constant(v);
  return intern_node(ExprKind::Constant, v, 0, {});
}

[[maybe_unused]] bool is_nary(ExprKind kind) {
  return kind == ExprKind::Add || kind == ExprKind::Mul;
}

int kind_rank(ExprKind kind) { return static_cast<int>(kind); }

}  // namespace

Expr::Expr() : node_(small_constant(0)) {}

Expr::Expr(std::int64_t value) : node_(constant_node(value)) {}

Expr Expr::constant(std::int64_t value) { return Expr(value); }

Expr Expr::symbol(std::string name) {
  assert(!name.empty());
  return symbol(intern_symbol(name));
}

Expr Expr::symbol(SymbolId id) {
  return Expr(intern_node(ExprKind::Symbol, 0, id, {}));
}

Expr detail_make_raw(ExprKind kind, std::vector<Expr> operands) {
  return InternAccess::wrap(intern_node(kind, 0, 0, std::move(operands)));
}

Expr Expr::make(ExprKind kind, std::vector<Expr> operands) {
  assert(kind != ExprKind::Constant && kind != ExprKind::Symbol);
  assert(is_nary(kind) ? !operands.empty() : operands.size() == 2);
  return simplified(detail_make_raw(kind, std::move(operands)));
}

ExprKind Expr::kind() const { return node_->kind; }

bool Expr::is_constant(std::int64_t value) const {
  return is_constant() && node_->value == value;
}

std::int64_t Expr::constant_value() const {
  assert(is_constant());
  return node_->value;
}

const std::string& Expr::symbol_name() const {
  assert(is_symbol());
  return *node_->name;
}

SymbolId Expr::symbol_id() const {
  assert(is_symbol());
  return node_->sym;
}

std::span<const Expr> Expr::operands() const { return node_->operands; }

std::uint64_t Expr::structural_hash() const { return node_->hash; }

std::uint32_t Expr::tree_size() const { return node_->tree_size; }

std::size_t Expr::dag_size() const {
  std::unordered_set<const ExprNode*> seen;
  std::vector<const ExprNode*> stack{node_};
  while (!stack.empty()) {
    const ExprNode* node = stack.back();
    stack.pop_back();
    if (!seen.insert(node).second) continue;
    for (const Expr& op : node->operands) {
      stack.push_back(InternAccess::unwrap(op));
    }
  }
  return seen.size();
}

// --- SymbolBinding ----------------------------------------------------

void SymbolBinding::assign(const SymbolMap& symbols) {
  entries_.clear();
  entries_.reserve(symbols.size());
  for (const auto& [name, value] : symbols) {
    entries_.emplace_back(intern_symbol(name), value);
  }
  std::sort(entries_.begin(), entries_.end());
}

void SymbolBinding::set(SymbolId id, std::int64_t value) {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), id,
      [](const auto& entry, SymbolId key) { return entry.first < key; });
  if (it != entries_.end() && it->first == id) {
    it->second = value;
  } else {
    entries_.insert(it, {id, value});
  }
}

const std::int64_t* SymbolBinding::find(SymbolId id) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), id,
      [](const auto& entry, SymbolId key) { return entry.first < key; });
  return it != entries_.end() && it->first == id ? &it->second : nullptr;
}

// --- integer helpers --------------------------------------------------

std::int64_t floor_div_i64(std::int64_t a, std::int64_t b) {
  if (b == 0) throw std::domain_error("symbolic: division by zero");
  std::int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

std::int64_t ceil_div_i64(std::int64_t a, std::int64_t b) {
  return -floor_div_i64(-a, b);
}

std::int64_t mod_i64(std::int64_t a, std::int64_t b) {
  if (b == 0) throw std::domain_error("symbolic: modulo by zero");
  std::int64_t r = a - floor_div_i64(a, b) * b;
  return r;
}

std::int64_t pow_i64(std::int64_t base, std::int64_t exponent) {
  if (exponent < 0) throw std::domain_error("symbolic: negative exponent");
  std::int64_t result = 1;
  for (std::int64_t i = 0; i < exponent; ++i) result *= base;
  return result;
}

std::optional<std::int64_t> checked_pow_i64(std::int64_t base,
                                            std::int64_t exponent) {
  if (exponent < 0) return std::nullopt;
  // Trivial bases first: they terminate the loop bound below AND make
  // huge exponents well-defined (0**0 == 1 matches pow_i64).
  if (base == 0) return exponent == 0 ? 1 : 0;
  if (base == 1) return 1;
  if (base == -1) return (exponent % 2 == 0) ? 1 : -1;
  // |base| >= 2: any exponent >= 63 overflows int64.
  if (exponent >= 63) return std::nullopt;
  std::int64_t result = 1;
  for (std::int64_t i = 0; i < exponent; ++i) {
    if (__builtin_mul_overflow(result, base, &result)) return std::nullopt;
  }
  return result;
}

// --- evaluation -------------------------------------------------------

namespace {

// One tree-walk evaluator over any symbol lookup policy; SymbolMap and
// SymbolBinding evaluation share every arithmetic case so they can never
// disagree.
template <typename Lookup>
std::int64_t evaluate_node(const ExprNode& node, const Lookup& lookup) {
  switch (node.kind) {
    case ExprKind::Constant:
      return node.value;
    case ExprKind::Symbol:
      return lookup(node);
    case ExprKind::Add: {
      std::int64_t acc = 0;
      for (const Expr& op : node.operands) {
        acc += evaluate_node(op.node(), lookup);
      }
      return acc;
    }
    case ExprKind::Mul: {
      std::int64_t acc = 1;
      for (const Expr& op : node.operands) {
        acc *= evaluate_node(op.node(), lookup);
      }
      return acc;
    }
    case ExprKind::FloorDiv:
      return floor_div_i64(evaluate_node(node.operands[0].node(), lookup),
                           evaluate_node(node.operands[1].node(), lookup));
    case ExprKind::CeilDiv:
      return ceil_div_i64(evaluate_node(node.operands[0].node(), lookup),
                          evaluate_node(node.operands[1].node(), lookup));
    case ExprKind::Mod:
      return mod_i64(evaluate_node(node.operands[0].node(), lookup),
                     evaluate_node(node.operands[1].node(), lookup));
    case ExprKind::Min:
      return std::min(evaluate_node(node.operands[0].node(), lookup),
                      evaluate_node(node.operands[1].node(), lookup));
    case ExprKind::Max:
      return std::max(evaluate_node(node.operands[0].node(), lookup),
                      evaluate_node(node.operands[1].node(), lookup));
    case ExprKind::Pow:
      return pow_i64(evaluate_node(node.operands[0].node(), lookup),
                     evaluate_node(node.operands[1].node(), lookup));
  }
  assert(false && "unreachable");
  return 0;
}

}  // namespace

std::int64_t Expr::evaluate(const SymbolMap& symbols) const {
  return evaluate_node(*node_, [&symbols](const ExprNode& node) {
    auto it = symbols.find(*node.name);
    if (it == symbols.end()) throw UnboundSymbolError(*node.name);
    return it->second;
  });
}

std::int64_t Expr::evaluate_binding(const SymbolBinding& symbols) const {
  return evaluate_node(*node_, [&symbols](const ExprNode& node) {
    const std::int64_t* value = symbols.find(node.sym);
    if (value == nullptr) throw UnboundSymbolError(*node.name);
    return *value;
  });
}

std::optional<std::int64_t> Expr::try_evaluate(const SymbolMap& symbols) const {
  try {
    return evaluate(symbols);
  } catch (const UnboundSymbolError&) {
    return std::nullopt;
  } catch (const std::domain_error&) {
    return std::nullopt;
  }
}

std::optional<std::int64_t> Expr::try_evaluate_binding(
    const SymbolBinding& symbols) const {
  try {
    return evaluate_binding(symbols);
  } catch (const UnboundSymbolError&) {
    return std::nullopt;
  } catch (const std::domain_error&) {
    return std::nullopt;
  }
}

// --- substitution -----------------------------------------------------

namespace {

struct SubstEntry {
  SymbolId id;
  Expr replacement;
};

// Exact reachability test: does this subtree contain any substituted
// symbol? Bloom mask first (one AND), then a sorted-merge intersection of
// two small id vectors. Both are intern-time metadata — no tree walk.
bool reaches_any(const ExprNode* node, const std::vector<SubstEntry>& entries,
                 std::uint64_t entry_mask) {
  if ((node->symbol_mask & entry_mask) == 0) return false;
  const std::vector<SymbolId>& free = *node->free_syms;
  std::size_t a = 0, b = 0;
  while (a < free.size() && b < entries.size()) {
    if (free[a] < entries[b].id) {
      ++a;
    } else if (entries[b].id < free[a]) {
      ++b;
    } else {
      return true;
    }
  }
  return false;
}

const Expr* find_replacement(const std::vector<SubstEntry>& entries,
                             SymbolId id) {
  auto it = std::lower_bound(
      entries.begin(), entries.end(), id,
      [](const SubstEntry& entry, SymbolId key) { return entry.id < key; });
  return it != entries.end() && it->id == id ? &it->replacement : nullptr;
}

// DAG-memoized rewrite: every distinct node is rewritten at most once per
// call, so heavily shared subtrees cost their DAG size, not their tree
// size. With memoization disabled (benchmark legacy mode) the prune and
// per-call memo are skipped and this is the historical tree walk.
Expr substitute_rec(const Expr& e, const std::vector<SubstEntry>& entries,
                    std::uint64_t entry_mask,
                    std::unordered_map<const ExprNode*, Expr>* memo) {
  const ExprNode* node = InternAccess::unwrap(e);
  if (memo != nullptr && !reaches_any(node, entries, entry_mask)) return e;
  switch (node->kind) {
    case ExprKind::Constant:
      return e;
    case ExprKind::Symbol: {
      const Expr* replacement = find_replacement(entries, node->sym);
      return replacement != nullptr ? *replacement : e;
    }
    default: {
      if (memo != nullptr) {
        auto it = memo->find(node);
        if (it != memo->end()) return it->second;
      }
      std::vector<Expr> new_operands;
      new_operands.reserve(node->operands.size());
      bool changed = false;
      for (const Expr& op : node->operands) {
        new_operands.push_back(substitute_rec(op, entries, entry_mask, memo));
        changed = changed || !new_operands.back().same_node(op);
      }
      Expr result = changed
                        ? Expr::make(node->kind, std::move(new_operands))
                        : e;
      if (memo != nullptr) memo->emplace(node, result);
      return result;
    }
  }
}

// Shared top level of every substitute overload. `entries` must be sorted
// by id and deduplicated.
Expr substitute_entries(const Expr& e, const std::vector<SubstEntry>& entries) {
  if (entries.empty()) return e;
  const ExprNode* node = InternAccess::unwrap(e);
  if (!memoization_enabled()) {
    return substitute_rec(e, entries, 0, nullptr);
  }
  std::uint64_t entry_mask = 0;
  for (const SubstEntry& entry : entries) {
    entry_mask |= std::uint64_t{1} << (entry.id % 64);
  }
  if (!reaches_any(node, entries, entry_mask)) return e;
  // Cross-call memo: the binding is interned, so the key is exact.
  std::vector<std::pair<SymbolId, const ExprNode*>> key;
  key.reserve(entries.size());
  for (const SubstEntry& entry : entries) {
    key.emplace_back(entry.id, InternAccess::unwrap(entry.replacement));
  }
  const detail_intern::BindingRecord* record =
      detail_intern::intern_binding(std::move(key));
  if (const ExprNode* hit = detail_intern::lookup_subst_memo(node, record)) {
    return InternAccess::wrap(hit);
  }
  std::unordered_map<const ExprNode*, Expr> memo;
  Expr result = substitute_rec(e, entries, entry_mask, &memo);
  detail_intern::store_subst_memo(node, record,
                                  InternAccess::unwrap(result));
  return result;
}

std::vector<SubstEntry> entries_from_binding(const SymbolBinding& symbols) {
  std::vector<SubstEntry> entries;
  entries.reserve(symbols.size());
  for (const auto& [id, value] : symbols.entries()) {
    entries.push_back({id, Expr(value)});
  }
  return entries;  // SymbolBinding is already sorted by id.
}

}  // namespace

Expr Expr::substitute(const SymbolMap& symbols) const {
  return substitute_binding(SymbolBinding(symbols));
}

Expr Expr::substitute_binding(const SymbolBinding& symbols) const {
  return substitute_entries(*this, entries_from_binding(symbols));
}

Expr Expr::substitute(const std::map<std::string, Expr>& replacements) const {
  std::vector<SubstEntry> entries;
  entries.reserve(replacements.size());
  for (const auto& [name, replacement] : replacements) {
    entries.push_back({intern_symbol(name), replacement});
  }
  std::sort(entries.begin(), entries.end(),
            [](const SubstEntry& a, const SubstEntry& b) {
              return a.id < b.id;
            });
  return substitute_entries(*this, entries);
}

// --- free-symbol queries ----------------------------------------------

const std::vector<SymbolId>& Expr::free_symbol_ids() const {
  return *node_->free_syms;
}

void Expr::collect_free_symbols(std::set<std::string>& out) const {
  if (memoization_enabled()) {
    for (const SymbolId id : *node_->free_syms) {
      out.insert(symbol_name_of(id));
    }
    return;
  }
  // Legacy tree walk (benchmark ablation only).
  if (is_symbol()) {
    out.insert(*node_->name);
    return;
  }
  for (const Expr& op : node_->operands) op.collect_free_symbols(out);
}

std::set<std::string> Expr::free_symbols() const {
  std::set<std::string> out;
  collect_free_symbols(out);
  return out;
}

namespace {

// Exact membership test against intern-time metadata: bloom mask, then
// binary search of the interned sorted id set.
bool node_depends_on(const ExprNode* node, SymbolId id) {
  if ((node->symbol_mask & (std::uint64_t{1} << (id % 64))) == 0) {
    return false;
  }
  const std::vector<SymbolId>& free = *node->free_syms;
  return std::binary_search(free.begin(), free.end(), id);
}

bool depends_on_walk(const ExprNode* node, std::string_view symbol) {
  if (node->kind == ExprKind::Symbol) return *node->name == symbol;
  for (const Expr& op : node->operands) {
    if (depends_on_walk(InternAccess::unwrap(op), symbol)) return true;
  }
  return false;
}

}  // namespace

bool Expr::depends_on(SymbolId symbol) const {
  return node_depends_on(node_, symbol);
}

bool Expr::depends_on(std::string_view symbol) const {
  if (!memoization_enabled()) return depends_on_walk(node_, symbol);
  const std::optional<SymbolId> id = find_symbol(symbol);
  // Never interned => cannot occur in any expression.
  return id.has_value() && node_depends_on(node_, *id);
}

bool depends_on_any(const Expr& e, const std::set<std::string>& symbols) {
  if (symbols.empty()) return false;
  if (!symbolic_memoization_enabled()) {
    // Legacy tree walk (benchmark ablation only).
    if (e.is_symbol()) return symbols.contains(e.symbol_name());
    for (const Expr& op : e.operands()) {
      if (depends_on_any(op, symbols)) return true;
    }
    return false;
  }
  for (const std::string& symbol : symbols) {
    if (e.depends_on(std::string_view(symbol))) return true;
  }
  return false;
}

bool depends_on_any(const Expr& e, std::span<const SymbolId> symbols) {
  const ExprNode* node = InternAccess::unwrap(e);
  const std::vector<SymbolId>& free = *node->free_syms;
  std::size_t a = 0, b = 0;
  while (a < free.size() && b < symbols.size()) {
    if (free[a] < symbols[b]) {
      ++a;
    } else if (symbols[b] < free[a]) {
      ++b;
    } else {
      return true;
    }
  }
  return false;
}

// --- ordering and equality --------------------------------------------

int Expr::compare(const Expr& a, const Expr& b) {
  // Interned: structural identity IS pointer identity.
  if (a.node_ == b.node_) return 0;
  // Constants sort before symbols, symbols before composites; this keeps
  // canonical forms like `4 + 2*N + N*M` stable.
  auto category = [](const Expr& e) {
    if (e.is_constant()) return 0;
    if (e.is_symbol()) return 1;
    return 2;
  };
  if (category(a) != category(b)) return category(a) < category(b) ? -1 : 1;
  if (a.is_constant()) {
    if (a.constant_value() != b.constant_value())
      return a.constant_value() < b.constant_value() ? -1 : 1;
    return 0;
  }
  if (a.is_symbol()) return a.symbol_name().compare(b.symbol_name());
  if (a.kind() != b.kind())
    return kind_rank(a.kind()) < kind_rank(b.kind()) ? -1 : 1;
  const auto& ao = a.operands();
  const auto& bo = b.operands();
  if (ao.size() != bo.size()) return ao.size() < bo.size() ? -1 : 1;
  for (std::size_t i = 0; i < ao.size(); ++i) {
    int c = compare(ao[i], bo[i]);
    if (c != 0) return c;
  }
  return 0;
}

bool Expr::equals(const Expr& other) const {
  if (compare(*this, other) == 0) return true;
  return compare(expanded(*this), expanded(other)) == 0;
}

// --- printing ---------------------------------------------------------

namespace {

// Precedence levels for printing: higher binds tighter.
int precedence(ExprKind kind) {
  switch (kind) {
    case ExprKind::Add:
      return 1;
    case ExprKind::Mul:
    case ExprKind::FloorDiv:
    case ExprKind::Mod:
      return 2;
    case ExprKind::Pow:
      return 3;
    default:
      return 4;  // leaves and function-call forms never need parentheses
  }
}

void print_expr(const Expr& e, std::ostream& os, int parent_precedence) {
  const int own = precedence(e.kind());
  const bool parens = own < parent_precedence;
  if (parens) os << '(';
  switch (e.kind()) {
    case ExprKind::Constant:
      os << e.constant_value();
      break;
    case ExprKind::Symbol:
      os << e.symbol_name();
      break;
    case ExprKind::Add: {
      // Render `+ (-1)*x` as `- x`, and order positive terms before
      // negative ones so bounds read as "B - 1" rather than "-1 + B".
      struct Term {
        bool negative;
        Expr body;
      };
      std::vector<Term> terms;
      for (const Expr& op : e.operands()) {
        if (op.kind() == ExprKind::Mul && !op.operands().empty() &&
            op.operands()[0].is_constant() &&
            op.operands()[0].constant_value() < 0) {
          std::vector<Expr> rest(op.operands().begin(), op.operands().end());
          rest[0] = Expr(-rest[0].constant_value());
          Expr body = rest[0].is_constant(1) && rest.size() > 1
                          ? Expr::make(ExprKind::Mul,
                                       std::vector<Expr>(rest.begin() + 1,
                                                         rest.end()))
                          : Expr::make(ExprKind::Mul, std::move(rest));
          terms.push_back(Term{true, std::move(body)});
        } else if (op.is_constant() && op.constant_value() < 0) {
          terms.push_back(Term{true, Expr(-op.constant_value())});
        } else {
          terms.push_back(Term{false, op});
        }
      }
      std::stable_partition(terms.begin(), terms.end(),
                            [](const Term& t) { return !t.negative; });
      bool first = true;
      for (const Term& term : terms) {
        if (!first) {
          os << (term.negative ? " - " : " + ");
        } else if (term.negative) {
          os << '-';
        }
        first = false;
        print_expr(term.body, os, own + (term.negative ? 1 : 0));
      }
      break;
    }
    case ExprKind::Mul: {
      bool first = true;
      for (const Expr& op : e.operands()) {
        if (!first) os << '*';
        first = false;
        print_expr(op, os, own + 1);
      }
      break;
    }
    case ExprKind::FloorDiv:
      print_expr(e.operands()[0], os, own);
      os << " / ";
      print_expr(e.operands()[1], os, own + 1);
      break;
    case ExprKind::Mod:
      print_expr(e.operands()[0], os, own);
      os << " % ";
      print_expr(e.operands()[1], os, own + 1);
      break;
    case ExprKind::Pow:
      print_expr(e.operands()[0], os, own + 1);
      os << "**";
      print_expr(e.operands()[1], os, own + 1);
      break;
    case ExprKind::CeilDiv:
      os << "ceil_div(";
      print_expr(e.operands()[0], os, 0);
      os << ", ";
      print_expr(e.operands()[1], os, 0);
      os << ')';
      break;
    case ExprKind::Min:
    case ExprKind::Max:
      os << (e.kind() == ExprKind::Min ? "min(" : "max(");
      print_expr(e.operands()[0], os, 0);
      os << ", ";
      print_expr(e.operands()[1], os, 0);
      os << ')';
      break;
  }
  if (parens) os << ')';
}

}  // namespace

std::string Expr::to_string() const {
  std::ostringstream os;
  print_expr(*this, os, 0);
  return os.str();
}

// --- operators --------------------------------------------------------

Expr operator+(const Expr& a, const Expr& b) {
  return Expr::make(ExprKind::Add, {a, b});
}

Expr operator-(const Expr& a, const Expr& b) {
  return Expr::make(ExprKind::Add, {a, Expr::make(ExprKind::Mul, {-1, b})});
}

Expr operator-(const Expr& a) { return Expr::make(ExprKind::Mul, {-1, a}); }

Expr operator*(const Expr& a, const Expr& b) {
  return Expr::make(ExprKind::Mul, {a, b});
}

Expr operator/(const Expr& a, const Expr& b) {
  return Expr::make(ExprKind::FloorDiv, {a, b});
}

Expr operator%(const Expr& a, const Expr& b) {
  return Expr::make(ExprKind::Mod, {a, b});
}

Expr min(const Expr& a, const Expr& b) {
  return Expr::make(ExprKind::Min, {a, b});
}

Expr max(const Expr& a, const Expr& b) {
  return Expr::make(ExprKind::Max, {a, b});
}

Expr ceil_div(const Expr& a, const Expr& b) {
  return Expr::make(ExprKind::CeilDiv, {a, b});
}

Expr pow(const Expr& base, const Expr& exponent) {
  return Expr::make(ExprKind::Pow, {base, exponent});
}

std::set<std::string> changed_symbols(const SymbolMap& before,
                                      const SymbolMap& after) {
  std::set<std::string> changed;
  // Both maps iterate in sorted name order; a single merge walk finds
  // every symbol present in only one binding or bound to different
  // values.
  auto b = before.begin();
  auto a = after.begin();
  while (b != before.end() || a != after.end()) {
    if (b == before.end()) {
      changed.insert(a->first);
      ++a;
    } else if (a == after.end()) {
      changed.insert(b->first);
      ++b;
    } else if (b->first < a->first) {
      changed.insert(b->first);
      ++b;
    } else if (a->first < b->first) {
      changed.insert(a->first);
      ++a;
    } else {
      if (b->second != a->second) changed.insert(b->first);
      ++b;
      ++a;
    }
  }
  return changed;
}

}  // namespace dmv::symbolic
