#include "dmv/symbolic/expr.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace dmv::symbolic {

namespace {

std::shared_ptr<const ExprNode> make_constant_node(std::int64_t value) {
  auto node = std::make_shared<ExprNode>();
  node->kind = ExprKind::Constant;
  node->value = value;
  return node;
}

// Small interned constants: shapes and strides are full of 0/1/2.
const std::shared_ptr<const ExprNode>& cached_small_constant(std::int64_t v) {
  static const std::shared_ptr<const ExprNode> cache[] = {
      make_constant_node(0), make_constant_node(1), make_constant_node(2),
      make_constant_node(3), make_constant_node(4)};
  assert(v >= 0 && v <= 4);
  return cache[v];
}

bool is_nary(ExprKind kind) {
  return kind == ExprKind::Add || kind == ExprKind::Mul;
}

int kind_rank(ExprKind kind) { return static_cast<int>(kind); }

}  // namespace

Expr::Expr() : node_(cached_small_constant(0)) {}

Expr::Expr(std::int64_t value)
    : node_(value >= 0 && value <= 4 ? cached_small_constant(value)
                                     : make_constant_node(value)) {}

Expr::Expr(std::shared_ptr<const ExprNode> node) : node_(std::move(node)) {
  assert(node_ != nullptr);
}

Expr Expr::constant(std::int64_t value) { return Expr(value); }

Expr Expr::symbol(std::string name) {
  assert(!name.empty());
  auto node = std::make_shared<ExprNode>();
  node->kind = ExprKind::Symbol;
  node->name = std::move(name);
  return Expr(std::move(node));
}

Expr detail_make_raw(ExprKind kind, std::vector<Expr> operands) {
  auto node = std::make_shared<ExprNode>();
  node->kind = kind;
  node->operands = std::move(operands);
  return Expr(std::move(node));
}

Expr Expr::make(ExprKind kind, std::vector<Expr> operands) {
  assert(kind != ExprKind::Constant && kind != ExprKind::Symbol);
  assert(is_nary(kind) ? !operands.empty() : operands.size() == 2);
  auto node = std::make_shared<ExprNode>();
  node->kind = kind;
  node->operands = std::move(operands);
  return simplified(Expr(std::move(node)));
}

ExprKind Expr::kind() const { return node_->kind; }

bool Expr::is_constant(std::int64_t value) const {
  return is_constant() && node_->value == value;
}

std::int64_t Expr::constant_value() const {
  assert(is_constant());
  return node_->value;
}

const std::string& Expr::symbol_name() const {
  assert(is_symbol());
  return node_->name;
}

std::span<const Expr> Expr::operands() const { return node_->operands; }

std::int64_t floor_div_i64(std::int64_t a, std::int64_t b) {
  if (b == 0) throw std::domain_error("symbolic: division by zero");
  std::int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

std::int64_t ceil_div_i64(std::int64_t a, std::int64_t b) {
  return -floor_div_i64(-a, b);
}

std::int64_t mod_i64(std::int64_t a, std::int64_t b) {
  if (b == 0) throw std::domain_error("symbolic: modulo by zero");
  std::int64_t r = a - floor_div_i64(a, b) * b;
  return r;
}

std::int64_t pow_i64(std::int64_t base, std::int64_t exponent) {
  if (exponent < 0) throw std::domain_error("symbolic: negative exponent");
  std::int64_t result = 1;
  for (std::int64_t i = 0; i < exponent; ++i) result *= base;
  return result;
}

std::int64_t Expr::evaluate(const SymbolMap& symbols) const {
  switch (kind()) {
    case ExprKind::Constant:
      return node_->value;
    case ExprKind::Symbol: {
      auto it = symbols.find(node_->name);
      if (it == symbols.end()) throw UnboundSymbolError(node_->name);
      return it->second;
    }
    case ExprKind::Add: {
      std::int64_t acc = 0;
      for (const Expr& op : node_->operands) acc += op.evaluate(symbols);
      return acc;
    }
    case ExprKind::Mul: {
      std::int64_t acc = 1;
      for (const Expr& op : node_->operands) acc *= op.evaluate(symbols);
      return acc;
    }
    case ExprKind::FloorDiv:
      return floor_div_i64(node_->operands[0].evaluate(symbols),
                           node_->operands[1].evaluate(symbols));
    case ExprKind::CeilDiv:
      return ceil_div_i64(node_->operands[0].evaluate(symbols),
                          node_->operands[1].evaluate(symbols));
    case ExprKind::Mod:
      return mod_i64(node_->operands[0].evaluate(symbols),
                     node_->operands[1].evaluate(symbols));
    case ExprKind::Min:
      return std::min(node_->operands[0].evaluate(symbols),
                      node_->operands[1].evaluate(symbols));
    case ExprKind::Max:
      return std::max(node_->operands[0].evaluate(symbols),
                      node_->operands[1].evaluate(symbols));
    case ExprKind::Pow:
      return pow_i64(node_->operands[0].evaluate(symbols),
                     node_->operands[1].evaluate(symbols));
  }
  assert(false && "unreachable");
  return 0;
}

std::optional<std::int64_t> Expr::try_evaluate(const SymbolMap& symbols) const {
  try {
    return evaluate(symbols);
  } catch (const UnboundSymbolError&) {
    return std::nullopt;
  } catch (const std::domain_error&) {
    return std::nullopt;
  }
}

Expr Expr::substitute(const SymbolMap& symbols) const {
  std::map<std::string, Expr> replacements;
  for (const auto& [name, value] : symbols) {
    replacements.emplace(name, Expr(value));
  }
  return substitute(replacements);
}

Expr Expr::substitute(const std::map<std::string, Expr>& replacements) const {
  switch (kind()) {
    case ExprKind::Constant:
      return *this;
    case ExprKind::Symbol: {
      auto it = replacements.find(node_->name);
      return it == replacements.end() ? *this : it->second;
    }
    default: {
      std::vector<Expr> new_operands;
      new_operands.reserve(node_->operands.size());
      bool changed = false;
      for (const Expr& op : node_->operands) {
        new_operands.push_back(op.substitute(replacements));
        changed = changed || new_operands.back().node_ != op.node_;
      }
      if (!changed) return *this;
      return make(kind(), std::move(new_operands));
    }
  }
}

void Expr::collect_free_symbols(std::set<std::string>& out) const {
  if (is_symbol()) {
    out.insert(node_->name);
    return;
  }
  for (const Expr& op : node_->operands) op.collect_free_symbols(out);
}

std::set<std::string> Expr::free_symbols() const {
  std::set<std::string> out;
  collect_free_symbols(out);
  return out;
}

bool Expr::depends_on(std::string_view symbol) const {
  if (is_symbol()) return node_->name == symbol;
  for (const Expr& op : node_->operands) {
    if (op.depends_on(symbol)) return true;
  }
  return false;
}

bool depends_on_any(const Expr& e, const std::set<std::string>& symbols) {
  if (symbols.empty()) return false;
  if (e.is_symbol()) return symbols.contains(e.symbol_name());
  for (const Expr& op : e.operands()) {
    if (depends_on_any(op, symbols)) return true;
  }
  return false;
}

int Expr::compare(const Expr& a, const Expr& b) {
  if (a.node_ == b.node_) return 0;
  // Constants sort before symbols, symbols before composites; this keeps
  // canonical forms like `4 + 2*N + N*M` stable.
  auto category = [](const Expr& e) {
    if (e.is_constant()) return 0;
    if (e.is_symbol()) return 1;
    return 2;
  };
  if (category(a) != category(b)) return category(a) < category(b) ? -1 : 1;
  if (a.is_constant()) {
    if (a.constant_value() != b.constant_value())
      return a.constant_value() < b.constant_value() ? -1 : 1;
    return 0;
  }
  if (a.is_symbol()) return a.symbol_name().compare(b.symbol_name());
  if (a.kind() != b.kind())
    return kind_rank(a.kind()) < kind_rank(b.kind()) ? -1 : 1;
  const auto& ao = a.operands();
  const auto& bo = b.operands();
  if (ao.size() != bo.size()) return ao.size() < bo.size() ? -1 : 1;
  for (std::size_t i = 0; i < ao.size(); ++i) {
    int c = compare(ao[i], bo[i]);
    if (c != 0) return c;
  }
  return 0;
}

bool Expr::equals(const Expr& other) const {
  if (compare(*this, other) == 0) return true;
  return compare(expanded(*this), expanded(other)) == 0;
}

namespace {

// Precedence levels for printing: higher binds tighter.
int precedence(ExprKind kind) {
  switch (kind) {
    case ExprKind::Add:
      return 1;
    case ExprKind::Mul:
    case ExprKind::FloorDiv:
    case ExprKind::Mod:
      return 2;
    case ExprKind::Pow:
      return 3;
    default:
      return 4;  // leaves and function-call forms never need parentheses
  }
}

void print_expr(const Expr& e, std::ostream& os, int parent_precedence) {
  const int own = precedence(e.kind());
  const bool parens = own < parent_precedence;
  if (parens) os << '(';
  switch (e.kind()) {
    case ExprKind::Constant:
      os << e.constant_value();
      break;
    case ExprKind::Symbol:
      os << e.symbol_name();
      break;
    case ExprKind::Add: {
      // Render `+ (-1)*x` as `- x`, and order positive terms before
      // negative ones so bounds read as "B - 1" rather than "-1 + B".
      struct Term {
        bool negative;
        Expr body;
      };
      std::vector<Term> terms;
      for (const Expr& op : e.operands()) {
        if (op.kind() == ExprKind::Mul && !op.operands().empty() &&
            op.operands()[0].is_constant() &&
            op.operands()[0].constant_value() < 0) {
          std::vector<Expr> rest(op.operands().begin(), op.operands().end());
          rest[0] = Expr(-rest[0].constant_value());
          Expr body = rest[0].is_constant(1) && rest.size() > 1
                          ? Expr::make(ExprKind::Mul,
                                       std::vector<Expr>(rest.begin() + 1,
                                                         rest.end()))
                          : Expr::make(ExprKind::Mul, std::move(rest));
          terms.push_back(Term{true, std::move(body)});
        } else if (op.is_constant() && op.constant_value() < 0) {
          terms.push_back(Term{true, Expr(-op.constant_value())});
        } else {
          terms.push_back(Term{false, op});
        }
      }
      std::stable_partition(terms.begin(), terms.end(),
                            [](const Term& t) { return !t.negative; });
      bool first = true;
      for (const Term& term : terms) {
        if (!first) {
          os << (term.negative ? " - " : " + ");
        } else if (term.negative) {
          os << '-';
        }
        first = false;
        print_expr(term.body, os, own + (term.negative ? 1 : 0));
      }
      break;
    }
    case ExprKind::Mul: {
      bool first = true;
      for (const Expr& op : e.operands()) {
        if (!first) os << '*';
        first = false;
        print_expr(op, os, own + 1);
      }
      break;
    }
    case ExprKind::FloorDiv:
      print_expr(e.operands()[0], os, own);
      os << " / ";
      print_expr(e.operands()[1], os, own + 1);
      break;
    case ExprKind::Mod:
      print_expr(e.operands()[0], os, own);
      os << " % ";
      print_expr(e.operands()[1], os, own + 1);
      break;
    case ExprKind::Pow:
      print_expr(e.operands()[0], os, own + 1);
      os << "**";
      print_expr(e.operands()[1], os, own + 1);
      break;
    case ExprKind::CeilDiv:
      os << "ceil_div(";
      print_expr(e.operands()[0], os, 0);
      os << ", ";
      print_expr(e.operands()[1], os, 0);
      os << ')';
      break;
    case ExprKind::Min:
    case ExprKind::Max:
      os << (e.kind() == ExprKind::Min ? "min(" : "max(");
      print_expr(e.operands()[0], os, 0);
      os << ", ";
      print_expr(e.operands()[1], os, 0);
      os << ')';
      break;
  }
  if (parens) os << ')';
}

}  // namespace

std::string Expr::to_string() const {
  std::ostringstream os;
  print_expr(*this, os, 0);
  return os.str();
}

Expr operator+(const Expr& a, const Expr& b) {
  return Expr::make(ExprKind::Add, {a, b});
}

Expr operator-(const Expr& a, const Expr& b) {
  return Expr::make(ExprKind::Add, {a, Expr::make(ExprKind::Mul, {-1, b})});
}

Expr operator-(const Expr& a) { return Expr::make(ExprKind::Mul, {-1, a}); }

Expr operator*(const Expr& a, const Expr& b) {
  return Expr::make(ExprKind::Mul, {a, b});
}

Expr operator/(const Expr& a, const Expr& b) {
  return Expr::make(ExprKind::FloorDiv, {a, b});
}

Expr operator%(const Expr& a, const Expr& b) {
  return Expr::make(ExprKind::Mod, {a, b});
}

Expr min(const Expr& a, const Expr& b) {
  return Expr::make(ExprKind::Min, {a, b});
}

Expr max(const Expr& a, const Expr& b) {
  return Expr::make(ExprKind::Max, {a, b});
}

Expr ceil_div(const Expr& a, const Expr& b) {
  return Expr::make(ExprKind::CeilDiv, {a, b});
}

Expr pow(const Expr& base, const Expr& exponent) {
  return Expr::make(ExprKind::Pow, {base, exponent});
}

}  // namespace dmv::symbolic
