#include "dmv/symbolic/parser.hpp"

#include <cctype>
#include <vector>

namespace dmv::symbolic {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Expr run() {
    Expr result = parse_expr();
    skip_whitespace();
    if (pos_ != text_.size()) {
      throw ParseError("trailing characters after expression", pos_);
    }
    return result;
  }

 private:
  void skip_whitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool peek(char c) {
    skip_whitespace();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  bool consume(char c) {
    if (!peek(c)) return false;
    ++pos_;
    return true;
  }

  // Consumes "**" only as a unit, never a single '*' of it.
  bool consume_pow() {
    skip_whitespace();
    if (pos_ + 1 < text_.size() && text_[pos_] == '*' &&
        text_[pos_ + 1] == '*') {
      pos_ += 2;
      return true;
    }
    return false;
  }

  bool consume_mul() {
    skip_whitespace();
    if (pos_ < text_.size() && text_[pos_] == '*' &&
        (pos_ + 1 >= text_.size() || text_[pos_ + 1] != '*')) {
      ++pos_;
      return true;
    }
    return false;
  }

  Expr parse_expr() {
    Expr left = parse_term();
    for (;;) {
      if (consume('+')) {
        left = left + parse_term();
      } else if (consume('-')) {
        left = left - parse_term();
      } else {
        return left;
      }
    }
  }

  Expr parse_term() {
    Expr left = parse_unary();
    for (;;) {
      if (consume_mul()) {
        left = left * parse_unary();
      } else if (consume('/')) {
        left = left / parse_unary();
      } else if (consume('%')) {
        left = left % parse_unary();
      } else {
        return left;
      }
    }
  }

  Expr parse_unary() {
    if (consume('-')) return -parse_unary();
    return parse_power();
  }

  Expr parse_power() {
    Expr base = parse_primary();
    if (consume_pow()) {
      // Right-associative, like Python.
      return pow(base, parse_unary());
    }
    return base;
  }

  Expr parse_primary() {
    skip_whitespace();
    if (pos_ >= text_.size()) {
      throw ParseError("unexpected end of expression", pos_);
    }
    const char c = text_[pos_];
    if (std::isdigit(static_cast<unsigned char>(c))) return parse_integer();
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      return parse_identifier_or_call();
    }
    if (consume('(')) {
      Expr inner = parse_expr();
      if (!consume(')')) throw ParseError("expected ')'", pos_);
      return inner;
    }
    throw ParseError(std::string("unexpected character '") + c + "'", pos_);
  }

  Expr parse_integer() {
    std::int64_t value = 0;
    std::size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      value = value * 10 + (text_[pos_] - '0');
      ++pos_;
    }
    if (pos_ == start) throw ParseError("expected integer", pos_);
    return Expr(value);
  }

  Expr parse_identifier_or_call() {
    std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    std::string name(text_.substr(start, pos_ - start));
    if (!peek('(')) return Expr::symbol(std::move(name));

    consume('(');
    std::vector<Expr> args;
    if (!peek(')')) {
      args.push_back(parse_expr());
      while (consume(',')) args.push_back(parse_expr());
    }
    if (!consume(')')) throw ParseError("expected ')' after arguments", pos_);

    auto expect_arity = [&](std::size_t n) {
      if (args.size() != n) {
        throw ParseError("function '" + name + "' expects " +
                             std::to_string(n) + " arguments",
                         start);
      }
    };
    if (name == "min") {
      expect_arity(2);
      return min(args[0], args[1]);
    }
    if (name == "max") {
      expect_arity(2);
      return max(args[0], args[1]);
    }
    if (name == "ceil_div" || name == "ceiling") {
      expect_arity(2);
      return ceil_div(args[0], args[1]);
    }
    if (name == "pow") {
      expect_arity(2);
      return pow(args[0], args[1]);
    }
    throw ParseError("unknown function '" + name + "'", start);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Expr parse(std::string_view text) { return Parser(text).run(); }

}  // namespace dmv::symbolic
