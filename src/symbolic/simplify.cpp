#include <algorithm>
#include <cassert>
#include <optional>
#include <utility>
#include <vector>

#include "dmv/symbolic/expr.hpp"
#include "intern.hpp"

namespace dmv::symbolic {

namespace {

// Splits a canonical term into (integer coefficient, residual term) so the
// Add simplifier can collect like terms: 3*N and N collect to 4*N. The
// residual for a pure constant is the unit term 1.
std::pair<std::int64_t, Expr> split_coefficient(const Expr& term) {
  if (term.is_constant()) return {term.constant_value(), Expr(1)};
  if (term.kind() == ExprKind::Mul && !term.operands().empty() &&
      term.operands()[0].is_constant()) {
    std::vector<Expr> rest(term.operands().begin() + 1, term.operands().end());
    if (rest.empty()) return {term.operands()[0].constant_value(), Expr(1)};
    if (rest.size() == 1)
      return {term.operands()[0].constant_value(), rest[0]};
    return {term.operands()[0].constant_value(),
            detail_make_raw(ExprKind::Mul, std::move(rest))};
  }
  return {1, term};
}

// Rebuilds coefficient * residual as a canonical term.
Expr rebuild_term(std::int64_t coefficient, const Expr& residual) {
  if (residual.is_constant(1)) return Expr(coefficient);
  if (coefficient == 1) return residual;
  std::vector<Expr> operands;
  operands.push_back(Expr(coefficient));
  if (residual.kind() == ExprKind::Mul) {
    operands.insert(operands.end(), residual.operands().begin(),
                    residual.operands().end());
  } else {
    operands.push_back(residual);
  }
  return detail_make_raw(ExprKind::Mul, std::move(operands));
}

bool expr_less(const Expr& a, const Expr& b) {
  return Expr::compare(a, b) < 0;
}

// Flattens one summand: nested Adds inline, constants fold, and the
// common `c * (a + b)` shape (negated sums, from operator-) distributes
// so that `x - (x + 1)` cancels to -1.
void flatten_summand(const Expr& op, std::vector<Expr>& flat,
                     std::int64_t& constant) {
  if (op.kind() == ExprKind::Add) {
    for (const Expr& inner : op.operands()) {
      flatten_summand(inner, flat, constant);
    }
    return;
  }
  if (op.is_constant()) {
    constant += op.constant_value();
    return;
  }
  if (op.kind() == ExprKind::Mul && op.operands().size() == 2 &&
      op.operands()[0].is_constant() &&
      op.operands()[1].kind() == ExprKind::Add) {
    const Expr& coefficient = op.operands()[0];
    for (const Expr& inner : op.operands()[1].operands()) {
      flatten_summand(Expr::make(ExprKind::Mul, {coefficient, inner}), flat,
                      constant);
    }
    return;
  }
  flat.push_back(op);
}

Expr simplify_add(const Expr& e) {
  std::vector<Expr> flat;
  std::int64_t constant = 0;
  for (const Expr& op : e.operands()) {
    flatten_summand(op, flat, constant);
  }
  // Collect like terms by residual. Quadratic in the number of distinct
  // terms, which stays tiny for the shape/stride polynomials the IR emits.
  std::vector<std::pair<Expr, std::int64_t>> collected;
  for (const Expr& term : flat) {
    auto [coefficient, residual] = split_coefficient(term);
    bool merged = false;
    for (auto& entry : collected) {
      if (Expr::compare(entry.first, residual) == 0) {
        entry.second += coefficient;
        merged = true;
        break;
      }
    }
    if (!merged) collected.emplace_back(residual, coefficient);
  }
  std::vector<Expr> result;
  if (constant != 0) result.push_back(Expr(constant));
  for (const auto& [residual, coefficient] : collected) {
    if (coefficient == 0) continue;
    result.push_back(rebuild_term(coefficient, residual));
  }
  if (result.empty()) return Expr(0);
  std::sort(result.begin(), result.end(), expr_less);
  if (result.size() == 1) return result[0];
  return detail_make_raw(ExprKind::Add, std::move(result));
}

Expr simplify_mul(const Expr& e) {
  std::vector<Expr> flat;
  std::int64_t constant = 1;
  for (const Expr& op : e.operands()) {
    if (op.kind() == ExprKind::Mul) {
      for (const Expr& inner : op.operands()) {
        if (inner.is_constant())
          constant *= inner.constant_value();
        else
          flat.push_back(inner);
      }
    } else if (op.is_constant()) {
      constant *= op.constant_value();
    } else {
      flat.push_back(op);
    }
  }
  if (constant == 0) return Expr(0);
  std::sort(flat.begin(), flat.end(), expr_less);
  std::vector<Expr> result;
  if (constant != 1 || flat.empty()) result.push_back(Expr(constant));
  result.insert(result.end(), flat.begin(), flat.end());
  if (result.size() == 1) return result[0];
  return detail_make_raw(ExprKind::Mul, std::move(result));
}

Expr expanded_opaque(const Expr& e);

// Cross product of two sums-of-terms: (a1+a2)*(b1+b2) -> a1b1+a1b2+...
std::vector<Expr> distribute(const std::vector<Expr>& lhs,
                             const std::vector<Expr>& rhs) {
  std::vector<Expr> out;
  out.reserve(lhs.size() * rhs.size());
  for (const Expr& a : lhs) {
    for (const Expr& b : rhs) out.push_back(a * b);
  }
  return out;
}

// Returns `e` as a flat list of additive terms, fully expanded.
std::vector<Expr> expand_terms(const Expr& e) {
  switch (e.kind()) {
    case ExprKind::Add: {
      std::vector<Expr> out;
      for (const Expr& op : e.operands()) {
        std::vector<Expr> inner = expand_terms(op);
        out.insert(out.end(), inner.begin(), inner.end());
      }
      return out;
    }
    case ExprKind::Mul: {
      std::vector<Expr> acc{Expr(1)};
      for (const Expr& op : e.operands()) {
        acc = distribute(acc, expand_terms(op));
      }
      return acc;
    }
    case ExprKind::Pow: {
      const Expr& exponent = e.operands()[1];
      // Expand small constant powers; keep symbolic powers opaque.
      if (exponent.is_constant() && exponent.constant_value() >= 0 &&
          exponent.constant_value() <= 8) {
        std::vector<Expr> base = expand_terms(e.operands()[0]);
        std::vector<Expr> acc{Expr(1)};
        for (std::int64_t i = 0; i < exponent.constant_value(); ++i) {
          acc = distribute(acc, base);
        }
        return acc;
      }
      return {expanded_opaque(e)};
    }
    default:
      return {expanded_opaque(e)};
  }
}

// For non-polynomial nodes (div/mod/min/max/symbolic pow), expand the
// operands but keep the node itself opaque.
Expr expanded_opaque(const Expr& e) {
  if (e.is_constant() || e.is_symbol()) return e;
  std::vector<Expr> operands;
  operands.reserve(e.operands().size());
  for (const Expr& op : e.operands()) operands.push_back(expanded(op));
  return Expr::make(e.kind(), std::move(operands));
}

// If `product` is (or contains as a Mul operand) the factor, returns the
// cofactor; nullopt otherwise. Exact-division cancellation — sound for
// the positive extents/strides the IR works with.
std::optional<Expr> divide_out(const Expr& product, const Expr& factor) {
  if (Expr::compare(product, factor) == 0) return Expr(1);
  if (product.kind() != ExprKind::Mul) return std::nullopt;
  std::vector<Expr> rest;
  bool removed = false;
  for (const Expr& operand : product.operands()) {
    if (!removed && Expr::compare(operand, factor) == 0) {
      removed = true;
      continue;
    }
    rest.push_back(operand);
  }
  if (!removed) {
    // Constant factor dividing a constant leading coefficient.
    if (factor.is_constant() && !product.operands().empty() &&
        product.operands()[0].is_constant() && factor.constant_value() != 0 &&
        product.operands()[0].constant_value() % factor.constant_value() ==
            0) {
      rest.assign(product.operands().begin() + 1, product.operands().end());
      const std::int64_t quotient =
          product.operands()[0].constant_value() / factor.constant_value();
      if (quotient != 1) rest.insert(rest.begin(), Expr(quotient));
      removed = true;
    }
  }
  if (!removed) return std::nullopt;
  if (rest.empty()) return Expr(1);
  if (rest.size() == 1) return rest[0];
  return detail_make_raw(ExprKind::Mul, std::move(rest));
}

}  // namespace

Expr expanded(const Expr& e) {
  std::vector<Expr> terms = expand_terms(e);
  Expr sum = 0;
  for (const Expr& term : terms) sum = sum + term;
  return sum;
}

namespace {

Expr simplified_impl(const Expr& e) {
  // Operands are canonical already (every construction path runs through
  // Expr::make, which simplifies), so a single local pass suffices.
  switch (e.kind()) {
    case ExprKind::Constant:
    case ExprKind::Symbol:
      return e;
    case ExprKind::Add:
      return simplify_add(e);
    case ExprKind::Mul:
      return simplify_mul(e);
    case ExprKind::FloorDiv:
    case ExprKind::CeilDiv: {
      const Expr& a = e.operands()[0];
      const Expr& b = e.operands()[1];
      if (a.is_constant(0)) return Expr(0);
      if (b.is_constant(1)) return a;
      if (a.is_constant() && b.is_constant() && b.constant_value() != 0) {
        return Expr(e.kind() == ExprKind::FloorDiv
                        ? floor_div_i64(a.constant_value(), b.constant_value())
                        : ceil_div_i64(a.constant_value(),
                                       b.constant_value()));
      }
      if (Expr::compare(a, b) == 0) return Expr(1);
      // Exact cancellation: (x*b)/b -> x (positive-quantity assumption,
      // which the IR's extents and strides satisfy).
      if (std::optional<Expr> cofactor = divide_out(a, b)) {
        return *cofactor;
      }
      return e;
    }
    case ExprKind::Mod: {
      const Expr& a = e.operands()[0];
      const Expr& b = e.operands()[1];
      if (a.is_constant(0) || b.is_constant(1)) return Expr(0);
      if (a.is_constant() && b.is_constant() && b.constant_value() != 0) {
        return Expr(mod_i64(a.constant_value(), b.constant_value()));
      }
      if (Expr::compare(a, b) == 0) return Expr(0);
      // (x*b) mod b -> 0 under the same positivity assumption.
      if (divide_out(a, b).has_value()) return Expr(0);
      return e;
    }
    case ExprKind::Min:
    case ExprKind::Max: {
      const Expr& a = e.operands()[0];
      const Expr& b = e.operands()[1];
      if (a.is_constant() && b.is_constant()) {
        return Expr(e.kind() == ExprKind::Min
                        ? std::min(a.constant_value(), b.constant_value())
                        : std::max(a.constant_value(), b.constant_value()));
      }
      if (Expr::compare(a, b) == 0) return a;
      return e;
    }
    case ExprKind::Pow: {
      const Expr& base = e.operands()[0];
      const Expr& exponent = e.operands()[1];
      if (exponent.is_constant(0)) return Expr(1);
      if (exponent.is_constant(1)) return base;
      if (base.is_constant(0) || base.is_constant(1)) return base;
      if (base.is_constant() && exponent.is_constant()) {
        // Fold only when the result provably fits in int64_t; negative
        // exponents and overflowing powers stay symbolic (evaluation will
        // then surface the domain error / wrap exactly as the tree-walk
        // evaluator defines it).
        if (const std::optional<std::int64_t> folded = checked_pow_i64(
                base.constant_value(), exponent.constant_value())) {
          return Expr(*folded);
        }
      }
      return e;
    }
  }
  assert(false && "unreachable");
  return e;
}

}  // namespace

Expr simplified(const Expr& e) {
  if (e.is_constant() || e.is_symbol()) return e;
  // Memoized by interned node: identical (sub)expressions are one node,
  // so any expression the process has simplified before — from any layer,
  // on any thread — is a table hit. Raced recomputation is harmless: the
  // simplifier is deterministic and its result interns to the same node.
  const ExprNode* raw = detail::InternAccess::unwrap(e);
  if (const ExprNode* hit = detail_intern::lookup_simplify_memo(raw)) {
    return detail::InternAccess::wrap(hit);
  }
  const Expr result = simplified_impl(e);
  detail_intern::store_simplify_memo(raw, detail::InternAccess::unwrap(result));
  return result;
}

}  // namespace dmv::symbolic
