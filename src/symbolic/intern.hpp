#pragma once

// Private interface between the symbolic engine's translation units and
// the global interner (intern.cpp). Not installed; nothing outside
// src/symbolic may include this.

#include <cstdint>
#include <utility>
#include <vector>

#include "dmv/symbolic/expr.hpp"

namespace dmv::symbolic {

namespace detail {

struct InternAccess {
  static Expr wrap(const ExprNode* node) { return Expr(node); }
  static const ExprNode* unwrap(const Expr& e) { return &e.node(); }
};

}  // namespace detail

namespace detail_intern {

/// Canonicalized (interned) substitution binding: sorted by SymbolId,
/// deduplicated. Pointer identity ⇔ equal bindings.
struct BindingRecord {
  std::vector<std::pair<SymbolId, const ExprNode*>> entries;
  std::uint64_t hash = 0;
};

/// Cached hash of a symbol's NAME (run-deterministic, unlike its id).
std::uint64_t symbol_name_hash(SymbolId id);

/// Interns a node (computing its metadata); `operands` must already be
/// interned Exprs. Returns the canonical node for the structure.
const ExprNode* intern_node(ExprKind kind, std::int64_t value, SymbolId sym,
                            std::vector<Expr> operands);

/// Simplify memo: raw node -> canonical node. Lookup returns nullptr on
/// miss or when memoization is disabled.
const ExprNode* lookup_simplify_memo(const ExprNode* raw);
void store_simplify_memo(const ExprNode* raw, const ExprNode* canonical);

/// Substitution binding interning + cross-call memo keyed by
/// (node, binding) with exact pointer equality.
const BindingRecord* intern_binding(
    std::vector<std::pair<SymbolId, const ExprNode*>> entries);
const ExprNode* lookup_subst_memo(const ExprNode* node,
                                  const BindingRecord* binding);
void store_subst_memo(const ExprNode* node, const BindingRecord* binding,
                      const ExprNode* result);

bool memoization_enabled();

}  // namespace detail_intern

}  // namespace dmv::symbolic
