// The global expression interner (hash-consing core).
//
// Layout: a fixed number of shards, each a mutex + arena (std::deque, so
// node addresses are stable under push_back) + an open hash table from
// structural hash to node. A node's shard is chosen by its structural
// hash, so contention distributes with the node population. Shard locks
// are leaf locks: they are never held while calling back into the
// simplifier or another shard, so there is no lock ordering to get wrong.
//
// Lifetime: the interner is a leaked singleton — nodes live until process
// exit, which is what lets `Expr` be a bare pointer with free copies.
// This is the classic hash-consing tradeoff; interner_stats() exposes the
// population for capacity monitoring. Memo tables (simplify, substitute)
// are bounded: a shard whose substitute memo exceeds its cap is cleared
// wholesale (results are recomputable; clearing never changes them).
//
// Determinism: structural hashes mix kinds, constant values, and symbol
// NAME hashes (never SymbolId values or addresses), so `ExprNode::hash`
// is identical across runs and thread counts. Table iteration order is
// never observable — lookups only.

#include "intern.hpp"

#include <cassert>
#include <deque>
#include <mutex>
#include <unordered_map>

namespace dmv::symbolic {

namespace {

using detail::InternAccess;

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a(std::uint64_t hash, std::uint64_t value) {
  // Mix all 8 bytes so structurally close nodes spread across shards.
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xff;
    hash *= kFnvPrime;
  }
  return hash;
}

std::uint64_t hash_string(std::string_view text) {
  std::uint64_t hash = kFnvOffset;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= kFnvPrime;
  }
  return hash;
}

// --- symbol table -----------------------------------------------------

struct SymbolTableGlobal {
  std::mutex mu;
  // Names live in a deque so `const std::string&` handed out by
  // symbol_name_of stays valid as the table grows.
  std::deque<std::string> names;
  std::deque<std::uint64_t> name_hashes;  ///< hash_string(name), cached.
  std::unordered_map<std::string_view, SymbolId> ids;  // views into names
};

SymbolTableGlobal& symbols() {
  static SymbolTableGlobal* table = new SymbolTableGlobal();
  return *table;
}

// --- symbol-set interner ----------------------------------------------

// Free-symbol sets repeat heavily (every node over the same loop nest
// shares a handful of sets), so they are interned like nodes and stored
// by pointer in ExprNode.
struct SymbolSetInterner {
  std::mutex mu;
  std::deque<std::vector<SymbolId>> arena;
  std::unordered_multimap<std::uint64_t, const std::vector<SymbolId>*> table;
  const std::vector<SymbolId> empty;
};

SymbolSetInterner& symbol_sets() {
  static SymbolSetInterner* interner = new SymbolSetInterner();
  return *interner;
}

const std::vector<SymbolId>* intern_symbol_set(std::vector<SymbolId> set) {
  SymbolSetInterner& interner = symbol_sets();
  if (set.empty()) return &interner.empty;
  std::uint64_t hash = kFnvOffset;
  for (const SymbolId id : set) hash = fnv1a(hash, id);
  std::lock_guard<std::mutex> lock(interner.mu);
  auto [begin, end] = interner.table.equal_range(hash);
  for (auto it = begin; it != end; ++it) {
    if (*it->second == set) return it->second;
  }
  interner.arena.push_back(std::move(set));
  const std::vector<SymbolId>* interned = &interner.arena.back();
  interner.table.emplace(hash, interned);
  return interned;
}

// --- binding interner -------------------------------------------------

// Canonicalized substitution bindings (detail_intern::BindingRecord), so
// the cross-call substitute memo can key on (node*, binding*) with EXACT
// pointer equality — no reliance on hash uniqueness for correctness.
using detail_intern::BindingRecord;

struct BindingInterner {
  std::mutex mu;
  std::deque<BindingRecord> arena;
  std::unordered_multimap<std::uint64_t, const BindingRecord*> table;
};

BindingInterner& bindings() {
  static BindingInterner* interner = new BindingInterner();
  return *interner;
}

// --- node shards ------------------------------------------------------

struct SubstKey {
  const ExprNode* node;
  const BindingRecord* binding;
  bool operator==(const SubstKey&) const = default;
};

struct SubstKeyHash {
  std::size_t operator()(const SubstKey& key) const {
    std::uint64_t hash = fnv1a(kFnvOffset, key.node->hash);
    return static_cast<std::size_t>(fnv1a(hash, key.binding->hash));
  }
};

constexpr std::size_t kShardCount = 16;
// Cap on one shard's substitute memo before it is cleared wholesale.
// 1<<16 entries/shard ≈ 1M cached rewrites process-wide — plenty for a
// slider session, bounded for a long-lived server.
constexpr std::size_t kSubstMemoCap = std::size_t{1} << 16;

struct Shard {
  std::mutex mu;
  std::deque<ExprNode> arena;  ///< Stable addresses under push_back.
  std::unordered_multimap<std::uint64_t, const ExprNode*> table;
  /// raw node -> canonical simplified node.
  std::unordered_map<const ExprNode*, const ExprNode*> simplify_memo;
  /// (node, interned binding) -> substituted node.
  std::unordered_map<SubstKey, const ExprNode*, SubstKeyHash> subst_memo;
};

struct Interner {
  Shard shards[kShardCount];
  Shard& shard_for(std::uint64_t hash) {
    return shards[(hash >> 58) % kShardCount];
  }
};

Interner& interner() {
  static Interner* instance = new Interner();
  return *instance;
}

// Shallow structural equality against an interned candidate: children are
// interned, so operand comparison is pointer comparison — O(arity), never
// recursive.
bool node_matches(const ExprNode& node, ExprKind kind, std::int64_t value,
                  SymbolId sym, std::span<const Expr> operands) {
  if (node.kind != kind) return false;
  switch (kind) {
    case ExprKind::Constant:
      return node.value == value;
    case ExprKind::Symbol:
      return node.sym == sym;
    default: {
      if (node.operands.size() != operands.size()) return false;
      for (std::size_t i = 0; i < operands.size(); ++i) {
        if (InternAccess::unwrap(node.operands[i]) !=
            InternAccess::unwrap(operands[i])) {
          return false;
        }
      }
      return true;
    }
  }
}

// Memoization switch. Plain bool: flipped only from single-threaded
// sections (benchmark ablation), read on hot paths.
bool g_memoize = true;

}  // namespace

// --- symbol interning (public) ----------------------------------------

SymbolId intern_symbol(std::string_view name) {
  assert(!name.empty());
  SymbolTableGlobal& table = symbols();
  std::lock_guard<std::mutex> lock(table.mu);
  auto it = table.ids.find(name);
  if (it != table.ids.end()) return it->second;
  const SymbolId id = static_cast<SymbolId>(table.names.size());
  table.names.emplace_back(name);
  table.name_hashes.push_back(hash_string(name));
  table.ids.emplace(std::string_view(table.names.back()), id);
  return id;
}

std::optional<SymbolId> find_symbol(std::string_view name) {
  SymbolTableGlobal& table = symbols();
  std::lock_guard<std::mutex> lock(table.mu);
  auto it = table.ids.find(name);
  if (it == table.ids.end()) return std::nullopt;
  return it->second;
}

const std::string& symbol_name_of(SymbolId id) {
  SymbolTableGlobal& table = symbols();
  std::lock_guard<std::mutex> lock(table.mu);
  // Deque references are stable under push_back, so the reference
  // outlives the lock.
  return table.names.at(id);
}

namespace detail_intern {

std::uint64_t symbol_name_hash(SymbolId id) {
  SymbolTableGlobal& table = symbols();
  std::lock_guard<std::mutex> lock(table.mu);
  return table.name_hashes.at(id);
}

// Interns a node, computing metadata on the way in. `operands` must
// already be interned Exprs.
const ExprNode* intern_node(ExprKind kind, std::int64_t value, SymbolId sym,
                            std::vector<Expr> operands) {
  // Structural hash: deterministic across runs (symbol NAME hash, child
  // structural hashes — no ids, no addresses).
  std::uint64_t hash = fnv1a(kFnvOffset, static_cast<std::uint64_t>(kind));
  switch (kind) {
    case ExprKind::Constant:
      hash = fnv1a(hash, static_cast<std::uint64_t>(value));
      break;
    case ExprKind::Symbol:
      hash = fnv1a(hash, symbol_name_hash(sym));
      break;
    default:
      for (const Expr& op : operands) {
        hash = fnv1a(hash, InternAccess::unwrap(op)->hash);
      }
      break;
  }

  Shard& shard = interner().shard_for(hash);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto [begin, end] = shard.table.equal_range(hash);
    for (auto it = begin; it != end; ++it) {
      if (node_matches(*it->second, kind, value, sym, operands)) {
        return it->second;
      }
    }
  }

  // Miss: compute the remaining metadata OUTSIDE the shard lock (the
  // symbol-set interner takes its own leaf lock), then insert. A racing
  // thread interning the same node computes identical metadata; the
  // re-check under the lock keeps the table canonical.
  std::uint64_t mask = 0;
  std::uint32_t tree = 1;
  const std::vector<SymbolId>* free_set = nullptr;
  switch (kind) {
    case ExprKind::Constant:
      free_set = intern_symbol_set({});
      break;
    case ExprKind::Symbol:
      mask = std::uint64_t{1} << (sym % 64);
      free_set = intern_symbol_set({sym});
      break;
    default: {
      std::vector<SymbolId> merged;
      for (const Expr& op : operands) {
        const ExprNode* child = InternAccess::unwrap(op);
        mask |= child->symbol_mask;
        const std::uint64_t sum =
            static_cast<std::uint64_t>(tree) + child->tree_size;
        tree = sum > 0xffffffffull ? 0xffffffffu
                                   : static_cast<std::uint32_t>(sum);
        // Sorted-merge union of the children's interned sets.
        const std::vector<SymbolId>& theirs = *child->free_syms;
        std::vector<SymbolId> next;
        next.reserve(merged.size() + theirs.size());
        std::size_t a = 0, b = 0;
        while (a < merged.size() || b < theirs.size()) {
          if (b == theirs.size() ||
              (a < merged.size() && merged[a] < theirs[b])) {
            next.push_back(merged[a++]);
          } else if (a == merged.size() || theirs[b] < merged[a]) {
            next.push_back(theirs[b++]);
          } else {
            next.push_back(merged[a]);
            ++a;
            ++b;
          }
        }
        merged = std::move(next);
      }
      free_set = intern_symbol_set(std::move(merged));
      break;
    }
  }

  std::lock_guard<std::mutex> lock(shard.mu);
  auto [begin, end] = shard.table.equal_range(hash);
  for (auto it = begin; it != end; ++it) {
    if (node_matches(*it->second, kind, value, sym, operands)) {
      return it->second;
    }
  }
  shard.arena.push_back(ExprNode{});
  ExprNode& node = shard.arena.back();
  node.kind = kind;
  node.value = value;
  node.sym = sym;
  node.name = kind == ExprKind::Symbol ? &symbol_name_of(sym) : nullptr;
  node.operands = std::move(operands);
  node.hash = hash;
  node.symbol_mask = mask;
  node.free_syms = free_set;
  node.tree_size = tree;
  shard.table.emplace(hash, &node);
  return &node;
}

const ExprNode* lookup_simplify_memo(const ExprNode* raw) {
  if (!g_memoize) return nullptr;
  Shard& shard = interner().shard_for(raw->hash);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.simplify_memo.find(raw);
  return it == shard.simplify_memo.end() ? nullptr : it->second;
}

void store_simplify_memo(const ExprNode* raw, const ExprNode* canonical) {
  if (!g_memoize) return;
  Shard& shard = interner().shard_for(raw->hash);
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.simplify_memo.emplace(raw, canonical);
}

// Canonicalizes a substitution for the cross-call memo. Entries must be
// sorted by SymbolId and deduplicated.
const BindingRecord* intern_binding(
    std::vector<std::pair<SymbolId, const ExprNode*>> entries) {
  std::uint64_t hash = kFnvOffset;
  for (const auto& [id, node] : entries) {
    hash = fnv1a(hash, detail_intern::symbol_name_hash(id));
    hash = fnv1a(hash, node->hash);
  }
  BindingInterner& interner = bindings();
  std::lock_guard<std::mutex> lock(interner.mu);
  auto [begin, end] = interner.table.equal_range(hash);
  for (auto it = begin; it != end; ++it) {
    if (it->second->entries == entries) return it->second;
  }
  interner.arena.push_back(BindingRecord{std::move(entries), hash});
  const BindingRecord* record = &interner.arena.back();
  interner.table.emplace(hash, record);
  return record;
}

const ExprNode* lookup_subst_memo(const ExprNode* node,
                                  const BindingRecord* binding) {
  Shard& shard = interner().shard_for(node->hash);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.subst_memo.find(SubstKey{node, binding});
  return it == shard.subst_memo.end() ? nullptr : it->second;
}

void store_subst_memo(const ExprNode* node, const BindingRecord* binding,
                      const ExprNode* result) {
  Shard& shard = interner().shard_for(node->hash);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.subst_memo.size() >= kSubstMemoCap) shard.subst_memo.clear();
  shard.subst_memo.emplace(SubstKey{node, binding}, result);
}

bool memoization_enabled() { return g_memoize; }

}  // namespace detail_intern

bool set_symbolic_memoization(bool enabled) {
  const bool previous = g_memoize;
  g_memoize = enabled;
  return previous;
}

bool symbolic_memoization_enabled() { return g_memoize; }

InternerStats interner_stats() {
  InternerStats stats;
  for (Shard& shard : interner().shards) {
    std::lock_guard<std::mutex> lock(shard.mu);
    stats.nodes += shard.arena.size();
    stats.simplify_memo += shard.simplify_memo.size();
    stats.subst_memo += shard.subst_memo.size();
  }
  {
    SymbolTableGlobal& table = symbols();
    std::lock_guard<std::mutex> lock(table.mu);
    stats.symbols = table.names.size();
  }
  {
    SymbolSetInterner& sets = symbol_sets();
    std::lock_guard<std::mutex> lock(sets.mu);
    stats.symbol_sets = sets.arena.size();
  }
  return stats;
}

}  // namespace dmv::symbolic
