#include "dmv/symbolic/compiled.hpp"

#include <algorithm>

namespace dmv::symbolic {

int SymbolTable::intern(const std::string& name) {
  return intern(intern_symbol(name));
}

int SymbolTable::intern(SymbolId id) {
  auto [it, inserted] = slots_.emplace(id, static_cast<int>(names_.size()));
  if (inserted) names_.push_back(symbol_name_of(id));
  return it->second;
}

int SymbolTable::lookup(const std::string& name) const {
  const std::optional<SymbolId> id = find_symbol(name);
  return id.has_value() ? lookup(*id) : -1;
}

int SymbolTable::lookup(SymbolId id) const {
  auto it = slots_.find(id);
  return it == slots_.end() ? -1 : it->second;
}

void SymbolTable::bind(const SymbolMap& symbols,
                       std::vector<std::int64_t>& values,
                       std::vector<char>& bound) const {
  values.assign(names_.size(), 0);
  bound.assign(names_.size(), 0);
  for (const auto& [name, value] : symbols) {
    const int slot = lookup(name);
    if (slot < 0) continue;
    values[slot] = value;
    bound[slot] = 1;
  }
}

void SymbolTable::bind(const SymbolBinding& symbols,
                       std::vector<std::int64_t>& values,
                       std::vector<char>& bound) const {
  values.assign(names_.size(), 0);
  bound.assign(names_.size(), 0);
  for (const auto& [id, value] : symbols.entries()) {
    const int slot = lookup(id);
    if (slot < 0) continue;
    values[slot] = value;
    bound[slot] = 1;
  }
}

CompiledExpr::CompiledExpr() {
  code_.push_back({Op::PushConst, 0});
}

// Postfix emission: operands first (left to right), then the operator —
// the same evaluation order as the recursive tree walk, so exceptions
// (unbound symbol, division by zero) fire in the same place.
CompiledExpr CompiledExpr::compile(const Expr& expr, SymbolTable& table) {
  // Expressions are interned, so one pointer-keyed lookup recognizes any
  // expression this table has compiled before — slot assignment is
  // append-only, making the cached code permanently valid.
  const ExprNode* memo_key = &expr.node();
  if (symbolic_memoization_enabled()) {
    auto it = table.memo_.find(memo_key);
    if (it != table.memo_.end()) return *it->second;
  }

  CompiledExpr compiled;
  compiled.code_.clear();

  // Iterative postfix flattening (explicit stack; expressions are small
  // but recursion depth is an external input).
  struct Frame {
    const Expr* expr;
    std::size_t next_operand = 0;
  };
  std::vector<Frame> stack;
  stack.push_back({&expr});
  while (!stack.empty()) {
    Frame& frame = stack.back();
    const ExprNode& node = frame.expr->node();
    const auto operands = frame.expr->operands();
    if (frame.next_operand < operands.size()) {
      stack.push_back({&operands[frame.next_operand++]});
      continue;
    }
    switch (node.kind) {
      case ExprKind::Constant:
        compiled.code_.push_back({Op::PushConst, node.value});
        break;
      case ExprKind::Symbol:
        compiled.code_.push_back(
            {Op::PushSlot, table.intern(node.sym)});
        break;
      case ExprKind::Add:
        compiled.code_.push_back(
            {Op::Add, static_cast<std::int64_t>(operands.size())});
        break;
      case ExprKind::Mul:
        compiled.code_.push_back(
            {Op::Mul, static_cast<std::int64_t>(operands.size())});
        break;
      case ExprKind::FloorDiv:
        compiled.code_.push_back({Op::FloorDiv, 0});
        break;
      case ExprKind::CeilDiv:
        compiled.code_.push_back({Op::CeilDiv, 0});
        break;
      case ExprKind::Mod:
        compiled.code_.push_back({Op::Mod, 0});
        break;
      case ExprKind::Min:
        compiled.code_.push_back({Op::Min, 0});
        break;
      case ExprKind::Max:
        compiled.code_.push_back({Op::Max, 0});
        break;
      case ExprKind::Pow:
        compiled.code_.push_back({Op::Pow, 0});
        break;
    }
    stack.pop_back();
  }

  // Referenced slots (deduplicated) and the stack high-water mark.
  int depth = 0;
  int max_depth = 0;
  for (const Inst& inst : compiled.code_) {
    switch (inst.op) {
      case Op::PushConst:
        ++depth;
        break;
      case Op::PushSlot:
        compiled.slots_.push_back(static_cast<int>(inst.arg));
        ++depth;
        break;
      case Op::Add:
      case Op::Mul:
        depth -= static_cast<int>(inst.arg) - 1;
        break;
      default:
        --depth;  // Binary: pops two, pushes one.
        break;
    }
    max_depth = std::max(max_depth, depth);
  }
  compiled.max_stack_ = std::max(max_depth, 1);
  std::sort(compiled.slots_.begin(), compiled.slots_.end());
  compiled.slots_.erase(
      std::unique(compiled.slots_.begin(), compiled.slots_.end()),
      compiled.slots_.end());
  if (symbolic_memoization_enabled()) {
    if (table.memo_.size() >= SymbolTable::kCompileMemoCap) {
      table.memo_.clear();
    }
    table.memo_.emplace(memo_key,
                        std::make_shared<const CompiledExpr>(compiled));
  }
  return compiled;
}

bool CompiledExpr::is_constant() const {
  return code_.size() == 1 && code_[0].op == Op::PushConst;
}

std::int64_t CompiledExpr::constant_value() const { return code_[0].arg; }

bool CompiledExpr::reads_any(const std::vector<int>& query) const {
  for (int slot : slots_) {
    if (std::find(query.begin(), query.end(), slot) != query.end()) {
      return true;
    }
  }
  return false;
}

namespace {

constexpr int kInlineStack = 32;

}  // namespace

std::int64_t CompiledExpr::evaluate(const std::int64_t* values) const {
  return evaluate(values, nullptr, nullptr);
}

std::int64_t CompiledExpr::evaluate(
    const std::int64_t* values, const char* bound,
    const std::vector<std::string>* names) const {
  std::int64_t inline_stack[kInlineStack];
  std::vector<std::int64_t> heap_stack;
  std::int64_t* stack = inline_stack;
  if (max_stack_ > kInlineStack) {
    heap_stack.resize(max_stack_);
    stack = heap_stack.data();
  }
  std::size_t top = 0;  // Next free stack position.
  for (const Inst& inst : code_) {
    switch (inst.op) {
      case Op::PushConst:
        stack[top++] = inst.arg;
        break;
      case Op::PushSlot: {
        const int slot = static_cast<int>(inst.arg);
        if (bound != nullptr && !bound[slot]) {
          throw UnboundSymbolError(
              names != nullptr ? (*names)[slot]
                               : "slot " + std::to_string(slot));
        }
        stack[top++] = values[slot];
        break;
      }
      case Op::Add: {
        const std::size_t n = static_cast<std::size_t>(inst.arg);
        std::int64_t acc = 0;
        for (std::size_t i = top - n; i < top; ++i) acc += stack[i];
        top -= n;
        stack[top++] = acc;
        break;
      }
      case Op::Mul: {
        const std::size_t n = static_cast<std::size_t>(inst.arg);
        std::int64_t acc = 1;
        for (std::size_t i = top - n; i < top; ++i) acc *= stack[i];
        top -= n;
        stack[top++] = acc;
        break;
      }
      case Op::FloorDiv: {
        const std::int64_t b = stack[--top];
        stack[top - 1] = floor_div_i64(stack[top - 1], b);
        break;
      }
      case Op::CeilDiv: {
        const std::int64_t b = stack[--top];
        stack[top - 1] = ceil_div_i64(stack[top - 1], b);
        break;
      }
      case Op::Mod: {
        const std::int64_t b = stack[--top];
        stack[top - 1] = mod_i64(stack[top - 1], b);
        break;
      }
      case Op::Min: {
        const std::int64_t b = stack[--top];
        stack[top - 1] = std::min(stack[top - 1], b);
        break;
      }
      case Op::Max: {
        const std::int64_t b = stack[--top];
        stack[top - 1] = std::max(stack[top - 1], b);
        break;
      }
      case Op::Pow: {
        const std::int64_t b = stack[--top];
        stack[top - 1] = pow_i64(stack[top - 1], b);
        break;
      }
    }
  }
  return stack[0];
}

}  // namespace dmv::symbolic
