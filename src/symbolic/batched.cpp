#include "dmv/symbolic/batched.hpp"

#include <algorithm>
#include <stdexcept>

namespace dmv::symbolic {

void LaneEnv::reset(std::span<const std::int64_t> values,
                    std::span<const char> bound, int width) {
  if (width < 1 || width > kMaxLaneWidth) {
    throw std::invalid_argument("LaneEnv: width out of [1, 32]");
  }
  if (values.size() != bound.size()) {
    throw std::invalid_argument("LaneEnv: values/bound size mismatch");
  }
  width_ = width;
  bound_.assign(bound.begin(), bound.end());
  values_.resize(values.size() * static_cast<std::size_t>(width));
  for (std::size_t s = 0; s < values.size(); ++s) {
    std::int64_t* row = values_.data() + s * width_;
    for (int l = 0; l < width_; ++l) row[l] = values[s];
  }
}

void LaneEnv::set_lanes(int slot, std::span<const std::int64_t> lane_values) {
  if (lane_values.size() != static_cast<std::size_t>(width_)) {
    throw std::invalid_argument("LaneEnv: lane value count != width");
  }
  std::int64_t* row = values_.data() + static_cast<std::size_t>(slot) * width_;
  std::copy(lane_values.begin(), lane_values.end(), row);
  bound_[slot] = 1;
}

void LaneEnv::broadcast(int slot, std::int64_t value) {
  std::int64_t* row = values_.data() + static_cast<std::size_t>(slot) * width_;
  for (int l = 0; l < width_; ++l) row[l] = value;
  bound_[slot] = 1;
}

namespace {

// Matches the scalar evaluator's inline capacity; programs deeper than
// this spill the SoA stack to the heap.
constexpr int kInlineDepth = 32;

}  // namespace

// One template instantiation per common width keeps the lane trip count
// a compile-time constant so the per-lane bodies unroll/vectorize; kW=0
// is the generic runtime-width fallback. Arithmetic per lane replicates
// floor_div_i64 / ceil_div_i64 / mod_i64 / pow_i64 exactly, except that
// throwing conditions set the lane's fault bit (value 0) instead — a
// faulted lane's garbage feeds later instructions harmlessly because
// every division/modulo re-checks its own operands.
template <int kW>
std::uint32_t BatchedCompiledExpr::run_lanes(const LaneEnv& env,
                                             std::int64_t* out,
                                             int runtime_width) const {
  const int W = kW > 0 ? kW : runtime_width;
  const std::uint32_t all_lanes =
      W >= 32 ? 0xffffffffu : ((std::uint32_t{1} << W) - 1u);

  std::int64_t inline_stack[kInlineDepth * (kW > 0 ? kW : 1)];
  std::vector<std::int64_t> heap_stack;
  std::int64_t* stack = inline_stack;
  if (kW == 0 || scalar_.max_stack_ > kInlineDepth) {
    heap_stack.resize(static_cast<std::size_t>(scalar_.max_stack_) * W);
    stack = heap_stack.data();
  }

  std::uint32_t fault = 0;
  std::size_t top = 0;  // Next free stack row.
  for (const CompiledExpr::Inst& inst : scalar_.code_) {
    switch (inst.op) {
      case CompiledExpr::Op::PushConst: {
        std::int64_t* row = stack + top * W;
        for (int l = 0; l < W; ++l) row[l] = inst.arg;
        ++top;
        break;
      }
      case CompiledExpr::Op::PushSlot: {
        const int slot = static_cast<int>(inst.arg);
        std::int64_t* row = stack + top * W;
        if (!env.bound(slot)) {
          fault = all_lanes;  // Unbound is environment-wide, not per lane.
          for (int l = 0; l < W; ++l) row[l] = 0;
        } else {
          const std::int64_t* src = env.lanes(slot);
          for (int l = 0; l < W; ++l) row[l] = src[l];
        }
        ++top;
        break;
      }
      case CompiledExpr::Op::Add: {
        const std::size_t n = static_cast<std::size_t>(inst.arg);
        std::int64_t* acc = stack + (top - n) * W;
        for (std::size_t i = 1; i < n; ++i) {
          const std::int64_t* row = stack + (top - n + i) * W;
          for (int l = 0; l < W; ++l) acc[l] += row[l];
        }
        top -= n - 1;
        break;
      }
      case CompiledExpr::Op::Mul: {
        const std::size_t n = static_cast<std::size_t>(inst.arg);
        std::int64_t* acc = stack + (top - n) * W;
        for (std::size_t i = 1; i < n; ++i) {
          const std::int64_t* row = stack + (top - n + i) * W;
          for (int l = 0; l < W; ++l) acc[l] *= row[l];
        }
        top -= n - 1;
        break;
      }
      case CompiledExpr::Op::FloorDiv: {
        const std::int64_t* b = stack + (top - 1) * W;
        std::int64_t* a = stack + (top - 2) * W;
        for (int l = 0; l < W; ++l) {
          if (b[l] == 0) {
            fault |= std::uint32_t{1} << l;
            a[l] = 0;
          } else {
            std::int64_t q = a[l] / b[l];
            if ((a[l] % b[l] != 0) && ((a[l] < 0) != (b[l] < 0))) --q;
            a[l] = q;
          }
        }
        --top;
        break;
      }
      case CompiledExpr::Op::CeilDiv: {
        // Scalar: -floor_div_i64(-a, b).
        const std::int64_t* b = stack + (top - 1) * W;
        std::int64_t* a = stack + (top - 2) * W;
        for (int l = 0; l < W; ++l) {
          if (b[l] == 0) {
            fault |= std::uint32_t{1} << l;
            a[l] = 0;
          } else {
            const std::int64_t na = -a[l];
            std::int64_t q = na / b[l];
            if ((na % b[l] != 0) && ((na < 0) != (b[l] < 0))) --q;
            a[l] = -q;
          }
        }
        --top;
        break;
      }
      case CompiledExpr::Op::Mod: {
        // Scalar: a - floor_div_i64(a, b) * b.
        const std::int64_t* b = stack + (top - 1) * W;
        std::int64_t* a = stack + (top - 2) * W;
        for (int l = 0; l < W; ++l) {
          if (b[l] == 0) {
            fault |= std::uint32_t{1} << l;
            a[l] = 0;
          } else {
            std::int64_t q = a[l] / b[l];
            if ((a[l] % b[l] != 0) && ((a[l] < 0) != (b[l] < 0))) --q;
            a[l] = a[l] - q * b[l];
          }
        }
        --top;
        break;
      }
      case CompiledExpr::Op::Min: {
        const std::int64_t* b = stack + (top - 1) * W;
        std::int64_t* a = stack + (top - 2) * W;
        for (int l = 0; l < W; ++l) a[l] = std::min(a[l], b[l]);
        --top;
        break;
      }
      case CompiledExpr::Op::Max: {
        const std::int64_t* b = stack + (top - 1) * W;
        std::int64_t* a = stack + (top - 2) * W;
        for (int l = 0; l < W; ++l) a[l] = std::max(a[l], b[l]);
        --top;
        break;
      }
      case CompiledExpr::Op::Pow: {
        const std::int64_t* b = stack + (top - 1) * W;
        std::int64_t* a = stack + (top - 2) * W;
        for (int l = 0; l < W; ++l) {
          if (b[l] < 0) {
            fault |= std::uint32_t{1} << l;
            a[l] = 0;
          } else {
            std::int64_t result = 1;
            for (std::int64_t i = 0; i < b[l]; ++i) result *= a[l];
            a[l] = result;
          }
        }
        --top;
        break;
      }
    }
  }
  for (int l = 0; l < W; ++l) out[l] = stack[l];
  return fault & all_lanes;
}

std::uint32_t BatchedCompiledExpr::evaluate(const LaneEnv& env,
                                            std::int64_t* out) const {
  switch (env.width()) {
    case 4:
      return run_lanes<4>(env, out, 4);
    case 8:
      return run_lanes<8>(env, out, 8);
    case 16:
      return run_lanes<16>(env, out, 16);
    default:
      return run_lanes<0>(env, out, env.width());
  }
}

}  // namespace dmv::symbolic
