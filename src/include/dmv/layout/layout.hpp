#pragma once

// Physical data layout modeling (paper §V-D).
//
// A ConcreteLayout is a DataDescriptor with every symbolic extent bound:
// actual shape, strides (elements), element size, and a base address in a
// simulated flat address space. This is the information the paper calls
// "usually opaque to the engineer" — it powers the cache-line overlay
// (which elements share a line with a selected element, Fig 5a), the
// wrap-around diagnosis of Fig 8c, and the address stream fed to the
// stack-distance and cache simulators.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "dmv/ir/data.hpp"

namespace dmv::layout {

using Index = std::vector<std::int64_t>;

struct ConcreteLayout {
  std::string name;
  std::vector<std::int64_t> shape;
  std::vector<std::int64_t> strides;  ///< In elements.
  int element_size = 8;               ///< Bytes.
  std::int64_t start_offset = 0;      ///< Elements, offset of [0,..,0].
  std::int64_t base_address = 0;      ///< Bytes, in the simulated space.

  int rank() const { return static_cast<int>(shape.size()); }
  /// Number of logical elements (shape product).
  std::int64_t total_elements() const;
  /// Buffer length in elements including stride padding.
  std::int64_t allocated_elements() const;
  std::int64_t allocated_bytes() const;

  /// Element offset within the buffer (start_offset + dot(idx, strides)).
  std::int64_t element_offset(std::span<const std::int64_t> indices) const;
  /// Absolute simulated byte address of an element.
  std::int64_t byte_address(std::span<const std::int64_t> indices) const;

  /// Dense row-major logical index in [0, total_elements), independent of
  /// the physical strides — the coordinate system of heatmap buffers.
  std::int64_t flat_index(std::span<const std::int64_t> indices) const;
  Index unflatten(std::int64_t flat) const;

  /// True if `indices` is inside the logical shape.
  bool in_bounds(std::span<const std::int64_t> indices) const;

  /// Binds a descriptor's symbolic extents; base_address stays 0 until
  /// the layout is placed in an AddressSpace.
  static ConcreteLayout from(const ir::DataDescriptor& descriptor,
                             const symbolic::SymbolMap& symbols);
};

/// Assigns base addresses to layouts sequentially, each aligned to
/// `alignment` bytes — the simulated equivalent of the allocator the
/// compiler/runtime would use.
class AddressSpace {
 public:
  explicit AddressSpace(std::int64_t alignment = 64);
  /// Places the layout and returns its base address.
  std::int64_t place(ConcreteLayout& layout);
  std::int64_t bytes_used() const { return next_; }

 private:
  std::int64_t alignment_;
  std::int64_t next_ = 0;
};

/// Cache line id (line index in the global simulated address space).
std::int64_t cache_line_of(const ConcreteLayout& layout,
                           std::span<const std::int64_t> indices,
                           int line_size);

/// All elements of `layout` that live on the same cache line as the
/// element at `indices` — the Fig 5a highlight. Returned as logical
/// index tuples, ascending by address.
std::vector<Index> elements_sharing_line(const ConcreteLayout& layout,
                                         std::span<const std::int64_t> indices,
                                         int line_size);

/// Number of distinct cache lines the container's elements touch.
std::int64_t lines_spanned(const ConcreteLayout& layout, int line_size);

/// Fig 8c diagnosis: rows (along `dim`) whose first element shares a
/// cache line with the previous row's tail. Returns the row-prefix index
/// tuples affected. Empty result = every row is line-aligned.
std::vector<Index> rows_with_line_wraparound(const ConcreteLayout& layout,
                                             int dim, int line_size);

}  // namespace dmv::layout
