#pragma once

// Minimal deterministic parallelism layer.
//
// The interactive loop of the paper (drag a slider, re-simulate, redraw)
// needs every derived metric to recompute at interactive rates, and the
// metric passes are embarrassingly parallel over trace events. This
// module provides the one scheduling idiom they all share: split a range
// into contiguous blocks, process blocks on a persistent thread pool, and
// combine per-block results IN BLOCK ORDER.
//
// Determinism contract: the block partition of `parallel_reduce` depends
// only on (n, grain) — never on the thread count — and the join runs
// sequentially in ascending block order on the calling thread. A caller
// whose per-block work is a pure function of its input range therefore
// gets bit-identical results at any thread count, including the serial
// fallback. `parallel_for` gives the weaker (and cheaper) guarantee that
// every index is visited exactly once; use it only when writes are
// disjoint per block.
//
// The pool is deliberately work-stealing-free: blocks are handed out from
// a single atomic counter. The analysis passes produce a few dozen
// coarse, similar-sized blocks, where stealing buys nothing.
//
// Nesting: parallel_for/parallel_reduce called from INSIDE a pool task
// run serially inline on that worker — no new tasks are enqueued, so
// outer-level parallelism (e.g. the session prefetcher evaluating one
// candidate binding per task) cannot deadlock the pool or perturb the
// inner passes' block partitions.
//
// Ownership: the pool is a process-global singleton, lazily started and
// joined at exit; callers never manage threads. The free functions are
// safe to call from any thread, but set_num_threads/ThreadScope mutate a
// global knob — tests that change it should not run concurrently.
//
// Thread count: `DMV_NUM_THREADS` (environment) seeds the global knob,
// `set_num_threads` overrides it at runtime, and a value of 1 bypasses
// the pool entirely (serial fallback, no synchronization).

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace dmv::par {

/// Number of hardware threads (>= 1; hardware_concurrency with fallback).
int hardware_threads();

/// Current global thread-count knob. Defaults to DMV_NUM_THREADS if set
/// to a positive integer, otherwise to hardware_threads().
int num_threads();

/// Sets the global thread count. Values < 1 select hardware_threads().
void set_num_threads(int threads);

/// RAII scope guard: sets the thread count, restores the old value on
/// destruction. Handy for the serial-vs-parallel determinism tests.
class ThreadScope {
 public:
  explicit ThreadScope(int threads);
  ~ThreadScope();
  ThreadScope(const ThreadScope&) = delete;
  ThreadScope& operator=(const ThreadScope&) = delete;

 private:
  int previous_;
};

/// True while the calling thread is executing a pool task. Parallel
/// constructs called here fall back to serial inline execution, so
/// callers that pay a fixed cost to SET UP parallelism (e.g. the chunked
/// trace planner) can skip it up front.
bool in_parallel_region();

/// Number of parallel jobs that ran serially inline because the pool was
/// busy with another caller's job. The single-job pool never queues: a
/// second concurrent caller (e.g. one serve session while another is
/// simulating) immediately degrades to the serial fallback — which is
/// bit-identical by the determinism contract — instead of blocking for
/// the whole foreign job. Monotonic process-global counter; the serving
/// layer surfaces it in stats as a contention signal.
std::uint64_t busy_fallbacks();

/// Ordered producer/consumer pipeline over [0, n): produce(i) runs on
/// the pool (concurrently, completing in any order), consume(i) runs on
/// the CALLING thread in strictly ascending i order as soon as
/// produce(i) has finished. At most `window` produced-but-unconsumed
/// items are in flight, so `window` reusable slots (indexed i % window)
/// are enough for producers and consumer to exchange data. consume must
/// not issue pool work itself (the single-job pool is occupied).
/// Serial fallback — produce(i); consume(i) alternating, same order —
/// when the knob is 1, n == 1, or inside a pool task; outputs that only
/// depend on the (i, data) sequence are therefore bit-identical at any
/// thread count. The first exception from either side aborts the
/// pipeline and is rethrown on the caller.
void ordered_pipeline(std::size_t n, std::size_t window,
                      const std::function<void(std::size_t)>& produce,
                      const std::function<void(std::size_t)>& consume);

namespace detail {

/// Runs task(0) .. task(count - 1) on the pool (caller participates).
/// Tasks may run in any order and concurrently; the call returns after
/// all of them completed. The first exception thrown by a task is
/// rethrown on the caller. Serial in-order fallback when the knob is 1
/// or the pool is busy with another caller's job (see busy_fallbacks).
void run_tasks(std::size_t count, const std::function<void(std::size_t)>& task);

/// Pool entry point for ordered_pipeline: workers drain the task
/// counter while the CALLER runs `on_caller` instead of participating.
/// Returns true after on_caller returned AND every task completed;
/// returns false WITHOUT running anything when the pool is busy with
/// another caller's job (the caller owns the serial fallback — the
/// degenerate produce-all-then-consume loop here is only safe when the
/// caller asked for it via a serial knob). Requires num_threads() > 1
/// and must not be called from inside a pool task; `task` and
/// `on_caller` must not let exceptions escape (they own their error
/// channel).
bool run_tasks_with_caller(std::size_t count,
                           const std::function<void(std::size_t)>& task,
                           const std::function<void()>& on_caller);

/// Contiguous block partition of [0, n): number of blocks for a grain.
inline std::size_t block_count(std::size_t n, std::size_t grain) {
  if (grain == 0) grain = 1;
  return n == 0 ? 0 : (n - 1) / grain + 1;
}

}  // namespace detail

/// Calls body(begin, end) for each block of the contiguous partition of
/// [0, n) with the given grain, distributing blocks over the pool. The
/// partition depends only on (n, grain). Blocks may execute in any order
/// and concurrently — per-block writes must be disjoint.
template <typename Body>
void parallel_for(std::size_t n, std::size_t grain, Body&& body) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  const std::size_t blocks = detail::block_count(n, grain);
  if (blocks == 1 || num_threads() <= 1) {
    for (std::size_t b = 0; b < blocks; ++b) {
      const std::size_t begin = b * grain;
      body(begin, std::min(n, begin + grain));
    }
    return;
  }
  detail::run_tasks(blocks, [&](std::size_t b) {
    const std::size_t begin = b * grain;
    body(begin, std::min(n, begin + grain));
  });
}

/// Runs task(0) .. task(count - 1) on the pool — the heterogeneous-task
/// counterpart of parallel_for (each index is one whole task, not a
/// block of a range). Tasks may run in any order and concurrently, and
/// the call returns after all completed; per-task writes must be
/// disjoint. Serial in-order fallback when the knob is 1, count == 1,
/// the pool is busy, or inside a pool task — callers whose tasks are
/// pure functions of their index get bit-identical results at any
/// thread count.
template <typename Task>
void parallel_tasks(std::size_t count, Task&& task) {
  if (count == 0) return;
  if (count == 1 || num_threads() <= 1) {
    for (std::size_t t = 0; t < count; ++t) task(t);
    return;
  }
  detail::run_tasks(count, [&](std::size_t t) { task(t); });
}

/// Deterministic map/reduce over the contiguous block partition of
/// [0, n): `block(begin, end) -> T` runs per block (possibly in
/// parallel), then `join(accumulator, block_result)` runs serially in
/// ascending block order starting from `init`. Because the partition and
/// the join order are independent of the thread count, the result is
/// bit-identical to a serial run whenever `block` is pure.
template <typename T, typename BlockFn, typename JoinFn>
T parallel_reduce(std::size_t n, std::size_t grain, T init, BlockFn&& block,
                  JoinFn&& join) {
  if (n == 0) return init;
  if (grain == 0) grain = 1;
  const std::size_t blocks = detail::block_count(n, grain);
  std::vector<T> partial(blocks);
  parallel_for(n, grain, [&](std::size_t begin, std::size_t end) {
    partial[begin / grain] = block(begin, end);
  });
  T result = std::move(init);
  for (T& p : partial) join(result, std::move(p));
  return result;
}

/// Grain that yields at most `max_blocks` blocks over n items, but never
/// below `min_grain` items per block (so tiny inputs stay serial).
inline std::size_t grain_for(std::size_t n, std::size_t max_blocks,
                             std::size_t min_grain) {
  if (max_blocks == 0) max_blocks = 1;
  const std::size_t grain = (n + max_blocks - 1) / max_blocks;
  return grain < min_grain ? min_grain : grain;
}

}  // namespace dmv::par
