#pragma once

// Minimal generic JSON value, parser, and writer.
//
// One JSON implementation serves every consumer in the repo: the SDFG
// reader (ir/json_reader.cpp) parses program documents through it, and
// the serving layer (serve/) parses requests and writes responses with
// it. Only what those schemas need: objects, arrays, strings, numbers,
// booleans, null.
//
// Precision note: numbers are stored as double, so integers above 2^53
// do not round-trip. Protocol fields that carry full 64-bit values
// (checksums, content hashes) are therefore encoded as decimal or hex
// STRINGS by their producers — see docs/serving.md.

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace dmv::json {

class ParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct Value {
  enum class Type { Null, Bool, Number, String, Array, Object };
  Type type = Type::Null;
  bool boolean = false;
  double number = 0;
  std::string text;
  std::vector<Value> array;
  std::map<std::string, Value> object;  ///< Sorted: dump() is canonical.

  // -- constructors ---------------------------------------------------
  static Value null();
  static Value of(bool value);
  static Value of(double value);
  static Value of(std::int64_t value);
  static Value of(int value) { return of(static_cast<std::int64_t>(value)); }
  static Value of(std::string value);
  static Value of(const char* value) { return of(std::string(value)); }
  static Value make_array();
  static Value make_object();

  // -- accessors (throw ParseError on type mismatch) ------------------
  bool is_null() const { return type == Type::Null; }
  bool has(const std::string& key) const {
    return type == Type::Object && object.contains(key);
  }
  const Value& at(const std::string& key) const;
  /// Object access that creates missing keys (for building documents).
  Value& operator[](const std::string& key);
  void push(Value value);

  const std::string& as_string() const;
  double as_number() const;
  /// as_number() checked to be integral and representable in int64.
  std::int64_t as_int() const;
  bool as_bool() const;
  const std::vector<Value>& as_array() const;
};

/// Parses a complete JSON document (trailing garbage is an error).
Value parse(std::string_view text);

/// Serializes a value on one line with sorted object keys — stable,
/// diffable output. Integral doubles inside the 2^53-safe range print
/// without a fraction; other numbers print with round-trip precision.
std::string dump(const Value& value);

/// `text` quoted and escaped as a JSON string literal.
std::string escape(std::string_view text);

}  // namespace dmv::json
