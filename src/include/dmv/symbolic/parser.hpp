#pragma once

// Recursive-descent parser for symbolic integer expressions.
//
// Grammar (whitespace-insensitive):
//   expr    := term (('+' | '-') term)*
//   term    := unary (('*' | '/' | '%') unary)*
//   unary   := '-' unary | power
//   power   := primary ('**' unary)?
//   primary := integer | identifier | identifier '(' expr (',' expr)* ')'
//            | '(' expr ')'
// Recognized functions: min, max, ceil_div (alias: ceiling), pow.
//
// This is the syntax used throughout the library whenever a shape, stride,
// map bound, or memlet subset is given as a string, e.g. "B*H*SM*P" or
// "(I + 4)*(J + 4)*K".

#include <stdexcept>
#include <string>
#include <string_view>

#include "dmv/symbolic/expr.hpp"

namespace dmv::symbolic {

/// Thrown on malformed input; message carries the offending position.
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& message, std::size_t position)
      : std::runtime_error(message + " (at offset " +
                           std::to_string(position) + ")"),
        position_(position) {}
  std::size_t position() const { return position_; }

 private:
  std::size_t position_;
};

/// Parses `text` into a simplified expression. Throws ParseError.
Expr parse(std::string_view text);

}  // namespace dmv::symbolic
