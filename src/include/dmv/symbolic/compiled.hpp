#pragma once

// Compiled expression evaluation.
//
// `Expr::evaluate` walks a shared-pointer tree and resolves every symbol
// through a `std::map<std::string, int64_t>` — fine for one-off queries,
// ruinous inside the simulator's innermost loops, where the same handful
// of bound expressions is re-evaluated millions of times as parameters
// advance. `CompiledExpr` flattens an `Expr` once into a postfix opcode
// array with symbols resolved to integer SLOTS against a `SymbolTable`;
// evaluation is then a single pass over a contiguous array with an
// array-indexed environment — no hashing, no string compares, no
// allocation.
//
// Semantics are bit-identical to `Expr::evaluate`: the same
// floor/ceil/mod/pow helpers, the same std::domain_error conditions, and
// `UnboundSymbolError` for symbols whose slot the caller never bound
// (checked per evaluation via a per-slot bound mask the caller owns).

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "dmv/symbolic/expr.hpp"

namespace dmv::symbolic {

class BatchedCompiledExpr;
class CompiledExpr;

/// Interns symbol names to dense slots. One table is shared by every
/// expression compiled for the same evaluation context, so a single
/// `slots`-sized array serves as the environment for all of them.
///
/// Slot lookup is keyed by global SymbolId (flat map, no string
/// hashing); slot assignment stays append-only in first-intern order, so
/// a table's slot numbering — unlike SymbolId values — is fully
/// determined by the compile call sequence. The table also memoizes
/// compilation per interned expression node: re-compiling an expression
/// this table has seen (slot assignment is append-only, so the earlier
/// result is still valid) is a pointer-keyed lookup. Not thread-safe —
/// one table per evaluation context, as before.
class SymbolTable {
 public:
  /// Compile-memo capacity. When an insert would exceed it the memo is
  /// cleared wholesale — the same capped-eviction discipline as the
  /// interner's substitution memo: recompiling is cheap, an unbounded
  /// map on a long-lived table is not.
  static constexpr std::size_t kCompileMemoCap = std::size_t{1} << 14;

  /// Slot of `name`, interning it if new.
  int intern(const std::string& name);
  int intern(SymbolId id);
  /// Slot of `name`, or -1 if never interned.
  int lookup(const std::string& name) const;
  int lookup(SymbolId id) const;

  std::size_t size() const { return names_.size(); }
  const std::vector<std::string>& names() const { return names_; }
  /// Current compile-memo population (bounded by kCompileMemoCap).
  std::size_t memo_size() const { return memo_.size(); }

  /// Builds a slot-indexed environment from a SymbolMap: values for
  /// bound slots, and a parallel mask of which slots are bound. Symbols
  /// in `symbols` without a slot are ignored (they were never needed).
  void bind(const SymbolMap& symbols, std::vector<std::int64_t>& values,
            std::vector<char>& bound) const;
  void bind(const SymbolBinding& symbols, std::vector<std::int64_t>& values,
            std::vector<char>& bound) const;

 private:
  friend class CompiledExpr;
  std::vector<std::string> names_;
  std::unordered_map<SymbolId, int> slots_;
  /// Compile memo: interned node -> compiled form (shared, immutable).
  std::unordered_map<const ExprNode*, std::shared_ptr<const CompiledExpr>>
      memo_;
};

/// An `Expr` flattened to postfix form over a `SymbolTable`.
class CompiledExpr {
 public:
  /// Default: the constant 0.
  CompiledExpr();

  /// Flattens `expr`, interning its symbols into `table`.
  static CompiledExpr compile(const Expr& expr, SymbolTable& table);

  /// Evaluates against a slot-indexed environment (values for at least
  /// `table.size()` slots at compile time). The caller guarantees every
  /// slot this expression references is bound; use the `bound`-mask
  /// overload when that is not statically known.
  std::int64_t evaluate(const std::int64_t* values) const;
  std::int64_t evaluate(const std::vector<std::int64_t>& values) const {
    return evaluate(values.data());
  }

  /// Like evaluate, but throws UnboundSymbolError (matching
  /// Expr::evaluate) if a referenced slot is not marked bound. Pass the
  /// table's names() to report the symbol by name.
  std::int64_t evaluate(const std::int64_t* values, const char* bound,
                        const std::vector<std::string>* names = nullptr) const;

  /// True if the expression is a single constant.
  bool is_constant() const;
  /// Precondition: is_constant().
  std::int64_t constant_value() const;

  /// Slots this expression reads (deduplicated, ascending). The basis of
  /// loop-invariant hoisting: an expression is invariant w.r.t. a set of
  /// slots if the intersection is empty.
  const std::vector<int>& slots() const { return slots_; }
  /// True if the expression reads any of the given slots.
  bool reads_any(const std::vector<int>& query) const;

 private:
  /// The lane-batched evaluator runs the same instruction stream over W
  /// environments at once (see batched.hpp).
  friend class BatchedCompiledExpr;

  enum class Op : std::uint8_t {
    PushConst,
    PushSlot,
    Add,       ///< n-ary: pops `arg`, pushes sum.
    Mul,       ///< n-ary: pops `arg`, pushes product.
    FloorDiv,
    CeilDiv,
    Mod,
    Min,
    Max,
    Pow,
  };
  struct Inst {
    Op op;
    std::int64_t arg = 0;  ///< Constant, slot, or n-ary operand count.
  };

  std::vector<Inst> code_;
  std::vector<int> slots_;
  int max_stack_ = 1;
};

}  // namespace dmv::symbolic
