#pragma once

// Symbolic integer expression engine, hash-consed.
//
// Every quantity the analyses reason about (array extents, strides, memlet
// volumes, map bounds, FLOP counts) is an `Expr`: an immutable expression
// over 64-bit integer constants and named program symbols. Expressions are
// value types backed by *interned* immutable nodes: a global hash-consing
// interner canonicalizes every node by structural identity, so
//
//   * structurally identical subtrees are ONE node — an `Expr` is a single
//     pointer, copying is free, and structural equality is pointer
//     comparison;
//   * per-node analysis metadata (free-symbol set, structural hash, tree
//     size) is computed once at intern time, turning `depends_on` /
//     `collect_free_symbols` from tree walks into O(1)-to-O(set) lookups
//     even on heavily shared DAGs;
//   * memo tables keyed by node pointer let `simplified`, `substitute`,
//     and `CompiledExpr::compile` reuse work across repeated analyses of
//     the same program.
//
// Symbol names are interned to dense `SymbolId` integers (side table for
// the names), so hot paths can carry flat sorted `(SymbolId, i64)` vectors
// (`SymbolBinding`) instead of `std::map<std::string, i64>`. The classic
// string-keyed `SymbolMap` remains accepted everywhere and is converted at
// the boundary.
//
// Determinism contract: interned node addresses and SymbolId values depend
// on interning order and may differ between runs — they never leak into
// results, output text, or iteration order. Canonical operand ordering
// compares symbols by NAME, and all name-set outputs are sorted
// `std::set<std::string>`, so rendered expressions and analysis results
// are bit-identical at any thread count. See docs/symbolic.md.
//
// Expressions support partial substitution (bind some symbols, keep the
// rest symbolic) and full evaluation under a `SymbolMap`/`SymbolBinding`,
// which is what powers the paper's parametric scaling analysis (SC22
// paper, section IV-D): the same symbolic volume is re-evaluated as the
// user moves an input-parameter slider.

#include <concepts>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace dmv::symbolic {

/// Binding of symbol names to concrete integer values.
using SymbolMap = std::map<std::string, std::int64_t>;

/// Dense interned symbol identifier. Assigned in first-intern order and
/// stable for the process lifetime; never serialized or ordered into
/// outputs (see the determinism contract above).
using SymbolId = std::uint32_t;

/// Interns `name`, returning its id (allocating one if new).
SymbolId intern_symbol(std::string_view name);
/// Id of `name` if it was ever interned; nullopt otherwise. A symbol that
/// was never interned cannot occur in any expression.
std::optional<SymbolId> find_symbol(std::string_view name);
/// Name of an interned id. The reference is stable for the process
/// lifetime. Precondition: `id` came from intern_symbol/find_symbol.
const std::string& symbol_name_of(SymbolId id);

/// Node discriminator. Add and Mul are n-ary (operands flattened and
/// canonically sorted by the simplifier); the rest are binary.
enum class ExprKind {
  Constant,
  Symbol,
  Add,
  Mul,
  FloorDiv,  ///< floor(a / b); matches integer index arithmetic
  CeilDiv,   ///< ceil(a / b); used for tile/cache-line counts
  Mod,
  Min,
  Max,
  Pow,
};

class Expr;
struct ExprNode;

namespace detail {
/// Interner backdoor: wraps/unwraps interned nodes for the engine's own
/// translation units. Not part of the public API.
struct InternAccess;
}  // namespace detail

/// Thrown when `Expr::evaluate` meets a symbol absent from the map.
class UnboundSymbolError : public std::runtime_error {
 public:
  explicit UnboundSymbolError(const std::string& symbol)
      : std::runtime_error("unbound symbol in evaluation: " + symbol),
        symbol_(symbol) {}
  const std::string& symbol() const { return symbol_; }

 private:
  std::string symbol_;
};

/// Flat sorted `(SymbolId, value)` binding — the hot-path replacement for
/// `SymbolMap`. Lookup is a binary search over a contiguous vector (no
/// hashing, no string compares, no per-node allocation); copying is one
/// vector copy. Entry order is by SymbolId and is internal only.
class SymbolBinding {
 public:
  SymbolBinding() = default;
  explicit SymbolBinding(const SymbolMap& symbols) { assign(symbols); }

  /// Rebuilds from a name-keyed map (interning any new names).
  void assign(const SymbolMap& symbols);
  /// Inserts or overwrites one entry, keeping the vector sorted.
  void set(SymbolId id, std::int64_t value);
  void set(std::string_view name, std::int64_t value) {
    set(intern_symbol(name), value);
  }
  /// Pointer to the value of `id`, or nullptr if unbound.
  const std::int64_t* find(SymbolId id) const;

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  std::span<const std::pair<SymbolId, std::int64_t>> entries() const {
    return entries_;
  }

 private:
  std::vector<std::pair<SymbolId, std::int64_t>> entries_;  // sorted by id
};

/// Immutable symbolic integer expression (value type; one interned
/// pointer, so copying is free and equality of canonical forms is pointer
/// identity).
class Expr {
 public:
  /// Default-constructs the constant 0.
  Expr();
  /// Implicit from integers so `shape = {Expr::symbol("N"), 4}` reads well.
  Expr(std::int64_t value);  // NOLINT(google-explicit-constructor)
  Expr(int value) : Expr(static_cast<std::int64_t>(value)) {}  // NOLINT

  static Expr constant(std::int64_t value);
  static Expr symbol(std::string name);
  static Expr symbol(SymbolId id);
  /// Builds an n-ary/binary node of `kind` over `operands` and simplifies.
  static Expr make(ExprKind kind, std::vector<Expr> operands);

  ExprKind kind() const;
  bool is_constant() const { return kind() == ExprKind::Constant; }
  bool is_symbol() const { return kind() == ExprKind::Symbol; }
  /// True iff this is the literal constant `value`.
  bool is_constant(std::int64_t value) const;

  /// Precondition: is_constant().
  std::int64_t constant_value() const;
  /// Precondition: is_symbol().
  const std::string& symbol_name() const;
  /// Precondition: is_symbol().
  SymbolId symbol_id() const;
  /// Child expressions (empty for leaves).
  std::span<const Expr> operands() const;

  /// Fully evaluates; throws UnboundSymbolError on a missing symbol and
  /// std::domain_error on division/modulo by zero.
  std::int64_t evaluate(const SymbolMap& symbols) const;
  /// Like evaluate but returns nullopt instead of throwing.
  std::optional<std::int64_t> try_evaluate(const SymbolMap& symbols) const;

  // SymbolBinding fast paths. Constrained templates (not plain
  // overloads) so braced-init-list calls like `evaluate({{"N", 4}})`
  // keep binding to the SymbolMap overloads unambiguously.
  template <typename B>
    requires std::same_as<std::remove_cvref_t<B>, SymbolBinding>
  std::int64_t evaluate(const B& symbols) const {
    return evaluate_binding(symbols);
  }
  template <typename B>
    requires std::same_as<std::remove_cvref_t<B>, SymbolBinding>
  std::optional<std::int64_t> try_evaluate(const B& symbols) const {
    return try_evaluate_binding(symbols);
  }

  /// Replaces bound symbols with constants and re-simplifies. Symbols not
  /// present in the map stay symbolic (partial binding). Shared subtrees
  /// are rewritten once (DAG-memoized per call), and subtrees that reach
  /// none of the bound symbols are returned unchanged in O(1).
  Expr substitute(const SymbolMap& symbols) const;
  /// General substitution of symbols by arbitrary expressions.
  Expr substitute(const std::map<std::string, Expr>& replacements) const;
  template <typename B>
    requires std::same_as<std::remove_cvref_t<B>, SymbolBinding>
  Expr substitute(const B& symbols) const {
    return substitute_binding(symbols);
  }

  void collect_free_symbols(std::set<std::string>& out) const;
  std::set<std::string> free_symbols() const;
  /// The interned free-symbol set of this node: sorted by SymbolId,
  /// deduplicated, computed once at intern time. O(1); the reference is
  /// stable for the process lifetime. Internal ordering only — map to
  /// names (and re-sort) before anything user-visible.
  const std::vector<SymbolId>& free_symbol_ids() const;

  /// Reachability query: true iff `symbol` occurs anywhere in the
  /// expression. O(log |free set|) via intern-time metadata; allocates
  /// nothing — the session layer's per-artifact invalidation check.
  bool depends_on(std::string_view symbol) const;
  bool depends_on(SymbolId symbol) const;

  /// Structural equality after canonical simplification. Not a full
  /// symbolic equivalence decision procedure, but canonicalization makes
  /// it reliable for the polynomial expressions the IR produces.
  /// Canonical forms are interned, so this is pointer comparison plus (on
  /// mismatch) comparison of the expanded polynomial normal forms.
  bool equals(const Expr& other) const;

  /// True iff both wrap the same interned node — structural identity of
  /// canonical forms, O(1).
  bool same_node(const Expr& other) const { return node_ == other.node_; }

  /// Structural hash, computed once at intern time. Deterministic across
  /// runs (built from kinds, values, and symbol NAMES, not ids).
  std::uint64_t structural_hash() const;

  /// Number of nodes of the expression *tree* (shared nodes counted per
  /// reference), saturating at uint32 max. O(1).
  std::uint32_t tree_size() const;
  /// Number of distinct interned nodes reachable from this expression —
  /// the DAG footprint. Walks each unique node once.
  std::size_t dag_size() const;

  /// Human-readable form with minimal parenthesization.
  std::string to_string() const;

  /// Total order used for canonical operand sorting (constants first,
  /// then symbols by name, then composites by kind/operands). Structural
  /// and deterministic: never consults pointers or SymbolIds except for
  /// the equal-node fast path.
  static int compare(const Expr& a, const Expr& b);

  const ExprNode& node() const { return *node_; }

 private:
  explicit Expr(const ExprNode* node) : node_(node) {}
  std::int64_t evaluate_binding(const SymbolBinding& symbols) const;
  std::optional<std::int64_t> try_evaluate_binding(
      const SymbolBinding& symbols) const;
  Expr substitute_binding(const SymbolBinding& symbols) const;
  const ExprNode* node_;  ///< Interned; owned by the process-lifetime arena.
  friend struct detail::InternAccess;
};

/// Builds a composite node WITHOUT simplification. Internal: used by the
/// simplifier to rebuild nodes whose operands are already canonical,
/// which is what guarantees the simplifier terminates.
Expr detail_make_raw(ExprKind kind, std::vector<Expr> operands);

/// Interned expression node. Immutable after interning; addresses are
/// stable for the process lifetime. The metadata fields are computed once
/// by the interner, never by consumers.
struct ExprNode {
  ExprKind kind = ExprKind::Constant;
  std::int64_t value = 0;      ///< Constant payload.
  SymbolId sym = 0;            ///< Symbol payload (see symbol_name_of).
  /// Symbol payload: the interned name (stable address, lock-free reads
  /// on the compare/print hot paths). Null for non-symbol nodes.
  const std::string* name = nullptr;
  std::vector<Expr> operands;  ///< Composite payload (interned children).

  // --- intern-time metadata -------------------------------------------
  std::uint64_t hash = 0;         ///< Structural hash (run-deterministic).
  std::uint64_t symbol_mask = 0;  ///< Bloom of free ids: bit (id % 64).
  /// Interned sorted free-symbol id set (never null; empty set for
  /// constant subtrees). Shared between nodes with equal sets.
  const std::vector<SymbolId>* free_syms = nullptr;
  std::uint32_t tree_size = 1;  ///< Tree node count, saturating.
};

Expr operator+(const Expr& a, const Expr& b);
Expr operator-(const Expr& a, const Expr& b);
Expr operator-(const Expr& a);
Expr operator*(const Expr& a, const Expr& b);
/// Floor division, matching C++ `/` only for non-negative operands.
Expr operator/(const Expr& a, const Expr& b);
Expr operator%(const Expr& a, const Expr& b);

Expr min(const Expr& a, const Expr& b);
Expr max(const Expr& a, const Expr& b);
Expr ceil_div(const Expr& a, const Expr& b);
Expr pow(const Expr& base, const Expr& exponent);

/// True iff any symbol of `symbols` occurs in `e` — the multi-symbol
/// form of Expr::depends_on, same no-allocation contract.
bool depends_on_any(const Expr& e, const std::set<std::string>& symbols);
/// Id-based form; `symbols` must be sorted ascending.
bool depends_on_any(const Expr& e, std::span<const SymbolId> symbols);

/// Binding delta: every symbol bound in only one of the two maps or
/// bound to different values — the invalidation query of the delta
/// recomputation engine. Sorted name set, ready for depends_on_any.
std::set<std::string> changed_symbols(const SymbolMap& before,
                                      const SymbolMap& after);

/// Canonical simplification: constant folding, identity elimination,
/// flattening of nested Add/Mul, like-term collection, operand sorting.
/// All operators already simplify locally; this is the deep pass.
/// Memoized by interned node, so re-simplifying a node the process has
/// seen before is a table lookup.
Expr simplified(const Expr& e);

/// Distributes products over sums and expands small constant powers,
/// yielding a canonical polynomial normal form. `Expr::equals` compares
/// expanded forms, so it decides equality for polynomial expressions;
/// display keeps the compact factored form.
Expr expanded(const Expr& e);

/// Integer helpers shared by the simplifier and the evaluator so that
/// symbolic and concrete arithmetic can never disagree.
std::int64_t floor_div_i64(std::int64_t a, std::int64_t b);
std::int64_t ceil_div_i64(std::int64_t a, std::int64_t b);
std::int64_t mod_i64(std::int64_t a, std::int64_t b);
std::int64_t pow_i64(std::int64_t base, std::int64_t exponent);
/// pow with overflow detection: nullopt if the exponent is negative or
/// the result does not fit in int64_t. The simplifier folds `Pow` only
/// through this, keeping overflowing powers symbolic.
std::optional<std::int64_t> checked_pow_i64(std::int64_t base,
                                            std::int64_t exponent);

/// Globally enables/disables the cross-call memo tables (simplify,
/// substitute) and the intern-time metadata fast paths for
/// depends_on/collect_free_symbols. On by default; results are
/// bit-identical either way — the switch exists so the `symbolic_ops`
/// benchmark can record legacy-walk numbers. Returns the previous value.
/// Not thread-safe: flip only from single-threaded sections.
bool set_symbolic_memoization(bool enabled);
bool symbolic_memoization_enabled();

/// Interner observability (tests, benchmarks, capacity planning).
struct InternerStats {
  std::size_t nodes = 0;         ///< Live interned expression nodes.
  std::size_t symbols = 0;       ///< Interned symbol names.
  std::size_t symbol_sets = 0;   ///< Distinct free-symbol sets.
  std::size_t simplify_memo = 0; ///< Entries across simplify memo shards.
  std::size_t subst_memo = 0;    ///< Entries across substitute memo shards.
};
InternerStats interner_stats();

}  // namespace dmv::symbolic
