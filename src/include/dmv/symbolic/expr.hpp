#pragma once

// Symbolic integer expression engine.
//
// Every quantity the analyses reason about (array extents, strides, memlet
// volumes, map bounds, FLOP counts) is an `Expr`: an immutable tree over
// 64-bit integer constants and named program symbols. Expressions are
// value types backed by shared immutable nodes, so copying is cheap and
// subtrees are freely shared between the IR and analysis results.
//
// Expressions support partial substitution (bind some symbols, keep the
// rest symbolic) and full evaluation under a `SymbolMap`, which is what
// powers the paper's parametric scaling analysis (SC22 paper, section
// IV-D): the same symbolic volume is re-evaluated as the user moves an
// input-parameter slider.

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace dmv::symbolic {

/// Binding of symbol names to concrete integer values.
using SymbolMap = std::map<std::string, std::int64_t>;

/// Node discriminator. Add and Mul are n-ary (operands flattened and
/// canonically sorted by the simplifier); the rest are binary.
enum class ExprKind {
  Constant,
  Symbol,
  Add,
  Mul,
  FloorDiv,  ///< floor(a / b); matches integer index arithmetic
  CeilDiv,   ///< ceil(a / b); used for tile/cache-line counts
  Mod,
  Min,
  Max,
  Pow,
};

class Expr;
struct ExprNode;

/// Thrown when `Expr::evaluate` meets a symbol absent from the map.
class UnboundSymbolError : public std::runtime_error {
 public:
  explicit UnboundSymbolError(const std::string& symbol)
      : std::runtime_error("unbound symbol in evaluation: " + symbol),
        symbol_(symbol) {}
  const std::string& symbol() const { return symbol_; }

 private:
  std::string symbol_;
};

/// Immutable symbolic integer expression (value type, cheap to copy).
class Expr {
 public:
  /// Default-constructs the constant 0.
  Expr();
  /// Implicit from integers so `shape = {Expr::symbol("N"), 4}` reads well.
  Expr(std::int64_t value);  // NOLINT(google-explicit-constructor)
  Expr(int value) : Expr(static_cast<std::int64_t>(value)) {}  // NOLINT

  static Expr constant(std::int64_t value);
  static Expr symbol(std::string name);
  /// Builds an n-ary/binary node of `kind` over `operands` and simplifies.
  static Expr make(ExprKind kind, std::vector<Expr> operands);

  ExprKind kind() const;
  bool is_constant() const { return kind() == ExprKind::Constant; }
  bool is_symbol() const { return kind() == ExprKind::Symbol; }
  /// True iff this is the literal constant `value`.
  bool is_constant(std::int64_t value) const;

  /// Precondition: is_constant().
  std::int64_t constant_value() const;
  /// Precondition: is_symbol().
  const std::string& symbol_name() const;
  /// Child expressions (empty for leaves).
  std::span<const Expr> operands() const;

  /// Fully evaluates; throws UnboundSymbolError on a missing symbol and
  /// std::domain_error on division/modulo by zero.
  std::int64_t evaluate(const SymbolMap& symbols) const;
  /// Like evaluate but returns nullopt instead of throwing.
  std::optional<std::int64_t> try_evaluate(const SymbolMap& symbols) const;

  /// Replaces bound symbols with constants and re-simplifies. Symbols not
  /// present in the map stay symbolic (partial binding).
  Expr substitute(const SymbolMap& symbols) const;
  /// General substitution of symbols by arbitrary expressions.
  Expr substitute(const std::map<std::string, Expr>& replacements) const;

  void collect_free_symbols(std::set<std::string>& out) const;
  std::set<std::string> free_symbols() const;
  /// Reachability query: true iff `symbol` occurs anywhere in the tree.
  /// Unlike free_symbols() it allocates nothing and stops at the first
  /// hit — the session layer's per-artifact invalidation check.
  bool depends_on(std::string_view symbol) const;

  /// Structural equality after canonical simplification. Not a full
  /// symbolic equivalence decision procedure, but canonicalization makes
  /// it reliable for the polynomial expressions the IR produces.
  bool equals(const Expr& other) const;

  /// Human-readable form with minimal parenthesization.
  std::string to_string() const;

  /// Total order used for canonical operand sorting (constants first,
  /// then symbols by name, then composites by kind/operands).
  static int compare(const Expr& a, const Expr& b);

  const ExprNode& node() const { return *node_; }

 private:
  explicit Expr(std::shared_ptr<const ExprNode> node);
  std::shared_ptr<const ExprNode> node_;
  friend Expr simplified(const Expr&);
  friend Expr detail_make_raw(ExprKind, std::vector<Expr>);
};

/// Builds a composite node WITHOUT simplification. Internal: used by the
/// simplifier to rebuild nodes whose operands are already canonical,
/// which is what guarantees the simplifier terminates.
Expr detail_make_raw(ExprKind kind, std::vector<Expr> operands);

struct ExprNode {
  ExprKind kind = ExprKind::Constant;
  std::int64_t value = 0;      ///< Constant payload.
  std::string name;            ///< Symbol payload.
  std::vector<Expr> operands;  ///< Composite payload.
};

Expr operator+(const Expr& a, const Expr& b);
Expr operator-(const Expr& a, const Expr& b);
Expr operator-(const Expr& a);
Expr operator*(const Expr& a, const Expr& b);
/// Floor division, matching C++ `/` only for non-negative operands.
Expr operator/(const Expr& a, const Expr& b);
Expr operator%(const Expr& a, const Expr& b);

Expr min(const Expr& a, const Expr& b);
Expr max(const Expr& a, const Expr& b);
Expr ceil_div(const Expr& a, const Expr& b);
Expr pow(const Expr& base, const Expr& exponent);

/// True iff any symbol of `symbols` occurs in `e` — the multi-symbol
/// form of Expr::depends_on, same short-circuit/no-allocation contract.
bool depends_on_any(const Expr& e, const std::set<std::string>& symbols);

/// Canonical simplification: constant folding, identity elimination,
/// flattening of nested Add/Mul, like-term collection, operand sorting.
/// All operators already simplify locally; this is the deep pass.
Expr simplified(const Expr& e);

/// Distributes products over sums and expands small constant powers,
/// yielding a canonical polynomial normal form. `Expr::equals` compares
/// expanded forms, so it decides equality for polynomial expressions;
/// display keeps the compact factored form.
Expr expanded(const Expr& e);

/// Integer helpers shared by the simplifier and the evaluator so that
/// symbolic and concrete arithmetic can never disagree.
std::int64_t floor_div_i64(std::int64_t a, std::int64_t b);
std::int64_t ceil_div_i64(std::int64_t a, std::int64_t b);
std::int64_t mod_i64(std::int64_t a, std::int64_t b);
std::int64_t pow_i64(std::int64_t base, std::int64_t exponent);

}  // namespace dmv::symbolic
