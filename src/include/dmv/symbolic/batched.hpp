#pragma once

// Lane-batched compiled expression evaluation.
//
// `CompiledExpr::evaluate` walks the postfix program for one iteration
// point; the simulator's innermost loops re-run the same handful of
// programs millions of times with only the innermost map parameter
// changing. `BatchedCompiledExpr` runs the identical instruction stream
// over W iteration points at once: the environment is structure-of-
// arrays (`int64_t lanes[W]` per slot, see `LaneEnv`), loop-invariant
// slots are broadcast once, and each instruction dispatch advances all
// W lanes — the lane-VM idiom, amortizing dispatch and letting the
// per-lane bodies vectorize.
//
// Exception contract: batched evaluation NEVER throws. Every per-lane
// arithmetic is computed with the exact formulas of the scalar helpers
// (`floor_div_i64` & co.), and each condition that would make the
// scalar engine throw (`std::domain_error` on division/modulo by zero
// or a negative Pow exponent, `UnboundSymbolError` on an unbound slot)
// instead sets that lane's bit in the returned fault mask; the lane's
// value becomes 0 and evaluation continues. A caller that needs
// scalar-identical failure semantics replays the faulting batch through
// the scalar engine, which throws the original exception at the exact
// point serial order reaches first — lanes that do not fault produce
// bit-identical values to scalar evaluation, so only faulting batches
// ever pay the replay.

#include <cstdint>
#include <span>
#include <vector>

#include "dmv/symbolic/compiled.hpp"

namespace dmv::symbolic {

/// Fault masks are 32-bit: one bit per lane.
inline constexpr int kMaxLaneWidth = 32;

/// A slot-indexed environment holding W values per slot, slot-major
/// (`lanes(slot)[lane]`). Bound-ness is per slot, uniform across lanes:
/// the batched engine models W iteration points of ONE loop, which bind
/// and unbind the same parameters in lockstep.
class LaneEnv {
 public:
  /// Rebuilds the environment with `width` lanes over `values.size()`
  /// slots, broadcasting every slot's scalar value (and bound flag) to
  /// all lanes. Throws std::invalid_argument unless
  /// 1 <= width <= kMaxLaneWidth.
  void reset(std::span<const std::int64_t> values,
             std::span<const char> bound, int width);

  /// Overwrites `slot` with per-lane values (size must be width()) and
  /// marks it bound.
  void set_lanes(int slot, std::span<const std::int64_t> lane_values);

  /// Overwrites `slot` with `value` in every lane and marks it bound.
  void broadcast(int slot, std::int64_t value);

  int width() const { return width_; }
  std::size_t slot_count() const { return bound_.size(); }
  const std::int64_t* lanes(int slot) const {
    return values_.data() + static_cast<std::size_t>(slot) * width_;
  }
  bool bound(int slot) const { return bound_[slot] != 0; }

 private:
  std::vector<std::int64_t> values_;  ///< Slot-major: [slot * width + lane].
  std::vector<char> bound_;
  int width_ = 1;
};

/// A `CompiledExpr` evaluated W lanes per instruction dispatch.
class BatchedCompiledExpr {
 public:
  /// Default: the constant 0 in every lane.
  BatchedCompiledExpr() = default;
  explicit BatchedCompiledExpr(CompiledExpr scalar)
      : scalar_(std::move(scalar)) {}

  /// Flattens `expr` through the shared scalar compiler (memoized in
  /// `table` like any other compile).
  static BatchedCompiledExpr compile(const Expr& expr, SymbolTable& table) {
    return BatchedCompiledExpr(CompiledExpr::compile(expr, table));
  }

  /// The scalar program this wraps — the replay target on faults.
  const CompiledExpr& scalar() const { return scalar_; }

  /// Evaluates all `env.width()` lanes, writing one result per lane to
  /// `out[0 .. width)`. Returns the fault mask: bit L set means lane L
  /// hit a condition the scalar engine throws on (its out value is 0).
  /// An unbound referenced slot faults every lane. Never throws.
  std::uint32_t evaluate(const LaneEnv& env, std::int64_t* out) const;

 private:
  template <int kW>
  std::uint32_t run_lanes(const LaneEnv& env, std::int64_t* out,
                          int runtime_width) const;

  CompiledExpr scalar_;
};

}  // namespace dmv::symbolic
