#pragma once

// Search, filtering, and the details panel (paper §IV-A).
//
// "As with traditional source code, the graphical representation can be
// searched to find specific elements, and it further allows for some
// types of elements to be filtered out" — search() is that lookup, and
// GraphRenderOptions-compatible kind filtering lives in render_state_svg
// via FilteredRender below. "Any additional information like data types,
// sizes, and alignment are hidden away and appear on-demand in a
// separate details panel" — details_panel() produces exactly that text.

#include <string>
#include <string_view>
#include <vector>

#include "dmv/ir/sdfg.hpp"

namespace dmv::viz {

struct SearchResult {
  int state_index = 0;
  ir::NodeId node = ir::kNoNode;
  ir::NodeKind kind = ir::NodeKind::Access;
  std::string label;
};

/// Case-insensitive substring search over node labels, container names,
/// map parameters, and tasklet code.
std::vector<SearchResult> search(const ir::Sdfg& sdfg,
                                 std::string_view query);

/// The on-demand details text for one element: container type / shape /
/// strides / element size / alignment facts for access nodes, code and
/// operation counts for tasklets, parameters and bounds for maps.
std::string details_panel(const ir::Sdfg& sdfg, int state_index,
                          ir::NodeId node);

/// §IV-A legibility at a distance: folds map scopes until each state's
/// VISIBLE node count drops to `max_visible_nodes`, outermost largest
/// scopes first — the library-side equivalent of the zoom-dependent
/// detail hiding. Returns the number of maps collapsed. Expanding back
/// is clearing MapInfo::collapsed.
int auto_collapse(ir::Sdfg& sdfg, std::size_t max_visible_nodes);

}  // namespace dmv::viz
