#pragma once

// Headless renderers: the substitute for the paper's interactive webview.
//
// Every interactive element of the tool becomes a pure function from
// (program, analysis results, selection) to a rendered artifact:
//
//   * render_state_svg     — the global graph view with in-situ heatmap
//                            overlays on edges and nodes (Fig 1, Fig 6).
//   * render_tiles_svg     — parameterized data containers as per-element
//                            tile grids, with the alternating horizontal/
//                            vertical nesting for >2-D data (§V-B,
//                            Fig 3/4/5), heat coloring, highlights
//                            (slider/cache-line selections), and access-
//                            count labels.
//   * render_histogram_svg — the details-panel reuse-distance histogram
//                            (Fig 5b top).
//   * ascii renderers      — terminal-friendly equivalents used by the
//                            benchmark harnesses and examples.
//   * outline/minimap      — the navigation aids of §IV-A.
//
// Animation playback (the §V-C access-pattern animation) is exposed as
// frame generation: one tile render per timestep group.

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "dmv/ir/sdfg.hpp"
#include "dmv/layout/layout.hpp"
#include "dmv/viz/graph_layout.hpp"
#include "dmv/viz/heatmap.hpp"

namespace dmv::viz {

// ---------------------------------------------------------------------
// Graph view.

struct GraphRenderOptions {
  /// Normalized heat per edge index (absent = neutral gray).
  std::map<std::size_t, double> edge_heat;
  /// Normalized heat per node id (absent = default fill).
  std::map<ir::NodeId, double> node_heat;
  /// Extra caption per edge index (e.g. the volume expression).
  std::map<std::size_t, std::string> edge_label;
  ColorScheme scheme = ColorScheme::GreenYellowRed;
  LayoutOptions layout;
  /// Scale factor < 1 renders the minimap variant (labels dropped).
  double scale = 1.0;
  /// §IV-A element filtering: node kinds hidden from the rendering
  /// (their edges disappear with them).
  std::set<ir::NodeKind> hidden_kinds;
};

std::string render_state_svg(const ir::State& state,
                             const GraphRenderOptions& options = {});

/// Cache-aware re-render: emits the SVG over a PRECOMPUTED layout,
/// skipping the Sugiyama pipeline. The layout depends only on graph
/// structure — not on bindings or heat — so an interactive session
/// computes it once per program version and re-renders only the heat
/// overlay as parameters move. `layout` must come from layout_state on
/// the same state with the same LayoutOptions; options.layout is
/// ignored here.
std::string render_state_svg(const ir::State& state,
                             const StateLayout& layout,
                             const GraphRenderOptions& options = {});

/// Whole-program view: every state rendered in sequence inside labeled
/// frames, connected by control-flow arrows (the paper's canvas shows
/// the full SDFG, not one state). Per-state options are looked up by
/// state index; missing entries render plain.
std::string render_sdfg_svg(
    const ir::Sdfg& sdfg,
    const std::map<int, GraphRenderOptions>& per_state = {});

// ---------------------------------------------------------------------
// Parameterized container tile view.

struct TileRenderOptions {
  /// Normalized heat per logical element (size = total_elements).
  const std::vector<double>* heat = nullptr;
  /// Numeric label per element (e.g. access counts; rendered inside the
  /// tile when it fits, always in the tooltip <title>).
  const std::vector<std::int64_t>* counts = nullptr;
  /// Elements highlighted green (slider selection / same-cache-line).
  std::set<std::int64_t> highlighted;
  /// Elements outlined as the user's selection.
  std::set<std::int64_t> selected;
  double tile_size = 20;
  ColorScheme scheme = ColorScheme::GreenYellowRed;
  bool show_name = true;
};

std::string render_tiles_svg(const layout::ConcreteLayout& layout,
                             const TileRenderOptions& options = {});

/// Aggregated full-size view (paper §VIII-c: analyzing full-sized
/// parameters "would require aggregating multiple data elements in one
/// visual tile"). Renders a 2-D slice of the container with each visual
/// tile covering a block of elements; per-element metric values reduce
/// into the tile with the chosen operator.
enum class TileAggregation { Sum, Max, Mean };

struct AggregatedTileOptions {
  /// Maximum visual tiles per axis; block extents are chosen to fit.
  int max_tiles_per_axis = 32;
  TileAggregation aggregation = TileAggregation::Mean;
  /// Fix leading dimensions for rank > 2 (like ascii_heatmap).
  std::vector<std::int64_t> prefix;
  double tile_size = 14;
  ColorScheme scheme = ColorScheme::GreenYellowRed;
  ScalingPolicy scaling = ScalingPolicy::MedianCentered;
};

std::string render_aggregated_tiles_svg(
    const layout::ConcreteLayout& layout, const std::vector<double>& values,
    const AggregatedTileOptions& options = {});

// ---------------------------------------------------------------------
// Histogram (details panel).

struct HistogramRenderOptions {
  int max_buckets = 24;
  double width = 360;
  double height = 160;
  std::string title;
  /// Count of cold (infinite-distance) accesses listed separately, as in
  /// Fig 5b ("one cold miss").
  std::int64_t cold_misses = 0;
};

std::string render_histogram_svg(const std::vector<std::int64_t>& values,
                                 const HistogramRenderOptions& options = {});

// ---------------------------------------------------------------------
// ASCII renderers (terminal output for benches and examples).

/// 2-D slice of a container's per-element heat as a character grid.
/// Higher heat -> denser glyph. For rank > 2 the leading dimensions are
/// fixed via `prefix`.
std::string ascii_heatmap(const layout::ConcreteLayout& layout,
                          const std::vector<double>& heat,
                          const std::vector<std::int64_t>& prefix = {});

/// Aligned monospace table used by every benchmark harness.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);
  void add_row(std::vector<std::string> cells);
  std::string str() const;

 private:
  std::vector<std::vector<std::string>> rows_;
};

// ---------------------------------------------------------------------
// Navigation aids.

/// Hierarchical outline of the whole program (states, maps, tasklets,
/// access nodes), indented text — the §IV-A outline overview.
std::string outline(const ir::Sdfg& sdfg);

/// Minimap: the state graph at small scale with a viewport rectangle.
std::string render_minimap_svg(const ir::State& state, double viewport_x,
                               double viewport_y, double viewport_w,
                               double viewport_h);

}  // namespace dmv::viz
