#pragma once

// Heatmap scaling policies and color maps (paper §IV-C).
//
// Real programs produce metric distributions spanning many orders of
// magnitude, so a fixed color scale is useless. The paper contributes
// three adaptive policies beyond Cube's linear/exponential interpolation:
//
//   MeanCentered   — scale [0, 2*mean]; outliers saturate, which makes
//                    bottlenecks pop (Fig 2 left).
//   Histogram      — every distinct observation gets its own bucket and
//                    thus its own color; shows the full distribution
//                    regardless of value spacing (Fig 2 middle).
//   MedianCentered — scale [0, 2*median]; outlier-resistant grouping of
//                    similar magnitudes (Fig 2 right).
//
// Colors follow the paper's green-yellow-red ramp (intuitive fast/slow
// ordering with a yellow midpoint for separation); a colorblind-safe
// Viridis alternative is provided, as the paper stipulates the scale be
// swappable.

#include <cstdint>
#include <string>
#include <vector>

namespace dmv::viz {

enum class ScalingPolicy {
  Linear,          ///< min..max linear interpolation (Cube baseline).
  Exponential,     ///< log-scale min..max (Cube baseline).
  MeanCentered,    ///< [0, 2*mean], clamped.
  MedianCentered,  ///< [0, 2*median], clamped.
  Histogram,       ///< bucket index / bucket count.
};

std::string to_string(ScalingPolicy policy);

/// A fitted scale: maps metric values to normalized heat t in [0, 1].
class HeatmapScale {
 public:
  /// Fits the chosen policy to the observed values. Empty input yields a
  /// degenerate scale mapping everything to 0.
  static HeatmapScale fit(const std::vector<double>& values,
                          ScalingPolicy policy);

  double normalize(double value) const;
  ScalingPolicy policy() const { return policy_; }
  /// The center value c for the centered policies (0 otherwise).
  double center() const { return center_; }
  /// Number of distinct buckets (Histogram policy; 0 otherwise).
  std::size_t bucket_count() const { return buckets_.size(); }

 private:
  ScalingPolicy policy_ = ScalingPolicy::Linear;
  double min_ = 0;
  double max_ = 0;  ///< max == min marks a degenerate scale (all -> 0).
  double center_ = 0;
  std::vector<double> buckets_;  ///< Sorted distinct values (Histogram).
};

struct Rgb {
  std::uint8_t r = 0;
  std::uint8_t g = 0;
  std::uint8_t b = 0;
  std::string hex() const;
};

enum class ColorScheme {
  GreenYellowRed,  ///< The paper's default ramp.
  Viridis,         ///< Colorblind-safe alternative.
};

/// Samples the scheme at t in [0, 1] (clamped).
Rgb sample_color(double t, ColorScheme scheme);

}  // namespace dmv::viz
