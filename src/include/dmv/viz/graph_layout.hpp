#pragma once

// Hierarchical graph layout for dataflow states.
//
// A compact Sugiyama-style pipeline: longest-path layering over the
// (scope-collapse-aware) visible graph, barycenter ordering sweeps to
// reduce crossings, and coordinate assignment with neighbor-average
// relaxation. Output is resolution-independent geometry consumed by the
// SVG renderer; the same geometry scaled down produces the minimap
// (paper §IV-A).

#include <cstddef>
#include <vector>

#include "dmv/ir/graph.hpp"

namespace dmv::viz {

struct NodeBox {
  ir::NodeId id = ir::kNoNode;
  double x = 0;  ///< Center x.
  double y = 0;  ///< Center y.
  double width = 0;
  double height = 0;
  bool collapsed = false;  ///< Rendered as a folded-scope summary box.
};

struct EdgePath {
  std::size_t edge_index = 0;  ///< Index into State::edges().
  double x1 = 0, y1 = 0, x2 = 0, y2 = 0;
};

struct StateLayout {
  std::vector<NodeBox> nodes;   ///< Visible nodes only.
  std::vector<EdgePath> edges;  ///< Visible edges only.
  double width = 0;
  double height = 0;

  const NodeBox* find(ir::NodeId id) const;
};

struct LayoutOptions {
  double horizontal_gap = 30;
  double vertical_gap = 50;
  /// Honor MapInfo::collapsed: fold map bodies into a summary box.
  bool respect_collapsed = true;
};

StateLayout layout_state(const ir::State& state,
                         const LayoutOptions& options = {});

}  // namespace dmv::viz
