#pragma once

// Access-pattern playback (paper §V-C: "The resulting access pattern can
// be played back using a variable speed animation, which highlights the
// exact individual elements or memory locations in each data container
// accessed at that specific time-step").
//
// Two substitutes for the interactive animation:
//  * animation_frames — the frame data itself (per tasklet execution or
//    per raw timestep), for programmatic consumption or frame-by-frame
//    SVG dumps;
//  * render_animated_tiles_svg — one self-playing SVG per container,
//    using SMIL <animate> with discrete keyframes: open it in a browser
//    and the access pattern plays back, looping, at the configured speed.

#include <map>
#include <set>
#include <string>
#include <vector>

#include "dmv/sim/sim.hpp"

namespace dmv::viz {

enum class FrameGranularity {
  PerExecution,  ///< One frame per tasklet execution (the paper's step).
  PerTimestep,   ///< One frame per individual access event.
};

struct AnimationFrame {
  std::int64_t index = 0;
  /// container id -> elements highlighted in this frame.
  std::map<int, std::set<std::int64_t>> highlighted;
};

struct AnimationOptions {
  FrameGranularity granularity = FrameGranularity::PerExecution;
  /// Stop after this many frames (0 = all). Long traces should bound
  /// this; the local view's parameterizations are small by design.
  std::int64_t max_frames = 0;
  /// Playback speed for the SMIL render ("variable speed animation").
  double seconds_per_frame = 0.4;
  double tile_size = 20;
};

/// Extracts frame data from a trace.
std::vector<AnimationFrame> animation_frames(
    const sim::AccessTrace& trace, const AnimationOptions& options = {});

/// Renders one container as a self-playing looping SVG: each frame's
/// accessed elements flash green during their time slot.
std::string render_animated_tiles_svg(
    const sim::AccessTrace& trace, int container,
    const std::vector<AnimationFrame>& frames,
    const AnimationOptions& options = {});

}  // namespace dmv::viz
