#pragma once

// The paper's workloads, as IR builders (for the analyses/visualization)
// and as native benchmark kernels (for the Table I runtime reproduction).
//
//  * outer product  — Fig 3 (parameterized view, sliders) and Fig 4c
//                     (related accesses).
//  * matmul         — Fig 5a (cache-line layout overlay: A and C
//                     row-major, B column-major) and Fig 5b (reuse
//                     distance heatmap + histogram).
//  * conv2d (the paper's "3D convolution": multi-channel 2-D conv with a
//    4-D weight tensor) — Fig 4a/4b and Fig 5c.
//  * horizontal diffusion (hdiff) — §VI-B local-view case study, Figs 7/8
//    and Table I rows 4-6. Variants correspond to the tuning steps:
//    baseline, reshaped in_field, reordered loops, padded strides. The IR
//    variants are produced by APPLYING THE TRANSFORMS to the baseline
//    graph, exactly like the tool's workflow.
//  * BERT encoder layer — §VI-A global-view case study, Fig 6 and Table I
//    rows 1-3, at three fusion stages.

#include "dmv/ir/sdfg.hpp"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dmv::workloads {

using ir::Sdfg;
using symbolic::SymbolMap;

// ---------------------------------------------------------------------
// Interactive-tuning builds.

/// Fixed-capacity build of a workload: declares one CAPACITY symbol per
/// slider symbol and substitutes it into every data descriptor (shape,
/// strides, start offset), leaving map ranges on the original symbols.
/// This is the standard interactive-tool setup — arrays allocated at
/// their maximum extent once, sliders restricting only the computed
/// region — and it is what makes a slider move layout-invariant for the
/// delta recomputation engine (docs/incremental.md): container
/// placement, strides, and per-element vector sizes all stay fixed
/// while only the iteration domain moves. Bind each capacity symbol to
/// the slider's maximum value.
///
///   Sdfg program = fixed_capacity(hdiff(HdiffVariant::Reordered),
///                                 {{"K", "KMAX"}});
///   binding["KMAX"] = 160;  // Allocation. "K" remains the slider.
Sdfg fixed_capacity(Sdfg sdfg,
                    const std::map<std::string, std::string>& capacity_of);

// ---------------------------------------------------------------------
// Outer product C[i,j] = A[i] * B[j].

Sdfg outer_product();
/// Fig 3 parameters: A in R^3, B in R^4.
SymbolMap outer_product_fig3();

// ---------------------------------------------------------------------
// Matrix multiplication C[M,N] = A[M,K] x B[K,N], WCR-accumulated over a
// 3-D map. B optionally column-major (the Fig 5a layout reveal).

Sdfg matmul(bool b_column_major = true);
/// Fig 5 parameters: A 9x10, B 10x15, 4-byte elements.
SymbolMap matmul_fig5();

// ---------------------------------------------------------------------
// Multi-channel 2-D convolution ("3D convolution" in the paper):
// out[co, y, x] += in[ci, y+ky, x+kx] * w[co, ci, ky, kx], no padding.

Sdfg conv2d();
/// Fig 4b parameters: 3-channel 9x9 inputs -> 2-channel 6x6 outputs
/// (kernel 4x4).
SymbolMap conv2d_fig4();

// ---------------------------------------------------------------------
// Horizontal diffusion. Free parameters I, J, K; inputs
// in_field[I+4, J+4, K] and coeff[I, J, K]; output out_field[I, J, K].
// One 3-D map with the fully fused 13-point stencil tasklet (the shape
// shown in Fig 7 left).

enum class HdiffVariant {
  Baseline,   ///< in_field[I+4, J+4, K], loop order (i, j, k).
  Reshaped,   ///< in_field permuted to [K, I+4, J+4] (Fig 8a fix).
  Reordered,  ///< + loop order (k, i, j) (Fig 8b fix).
  Padded,     ///< + in_field rows padded to the cache line (Fig 8c fix).
};

Sdfg hdiff(HdiffVariant variant,
           std::int64_t pad_multiple_elements = 8);
/// Local-view parameters I=J=8, K=5 (the paper's 1/32-scaled setting).
SymbolMap hdiff_local();
/// Full NPBench parameters I=J=256, K=160.
SymbolMap hdiff_full();

// ---------------------------------------------------------------------
// BERT encoder layer (BERT-LARGE shapes via bert_large()).

enum class BertStage {
  Baseline,  ///< Every operator its own map; all intermediates in memory.
  Fused1,    ///< First set of loop fusions (attention + FFN chains).
  Fused2,    ///< All remaining fusable chains fused (fixpoint).
};

Sdfg bert_encoder(BertStage stage);
/// B=8, H=16, I=1024, SM=512, emb=4096, P=I/H=64.
SymbolMap bert_large();
/// Proportionally scaled configuration for simulation-friendly sizes.
SymbolMap bert_small();

// ---------------------------------------------------------------------
// Native kernels (benchmark substrate for Table I). The kernels
// implement the same three program versions the SDFGs model.

namespace kernels {

struct HdiffData {
  std::int64_t I = 0, J = 0, K = 0;
  std::vector<double> in_field;   ///< Layout depends on the kernel.
  std::vector<double> coeff;      ///< [I, J, K] row-major.
  std::vector<double> out_field;  ///< [I, J, K] row-major.
};

/// Allocates and fills inputs deterministically; in_field stored
/// [I+4, J+4, K] row-major (the baseline layout).
HdiffData make_hdiff_data(std::int64_t I, std::int64_t J, std::int64_t K);

/// NumPy-style baseline: materializes lap, flx, fly as full arrays in
/// separate passes over [I+4, J+4, K]-layout data.
void hdiff_baseline(HdiffData& data);
/// Single-pass fused stencil on the original layout (stands in for the
/// best compiled NPBench CPU version).
void hdiff_fused(HdiffData& data);
/// Buffers in the hand-tuned layout: everything [K, ...] with in_field
/// rows padded to `Jp` elements. The layout change is a program-wide
/// decision in the paper's workflow, so benchmarks convert once up front
/// and time only the stencil.
struct HdiffTunedData {
  std::int64_t I = 0, J = 0, K = 0, Jp = 0;
  std::vector<double> in_field;   ///< [K, I+4, Jp]
  std::vector<double> coeff;      ///< [K, I, J]
  std::vector<double> out_field;  ///< [K, I, J]
};

/// Converts canonical-layout inputs into the tuned layout.
HdiffTunedData make_hdiff_tuned_data(const HdiffData& data,
                                     std::int64_t pad_elements = 8);

/// The hand-tuned stencil: fused + [K, I+4, Jp] layout + k-outermost
/// loops + cache-line-padded rows (the paper's final version).
void hdiff_tuned_kernel(HdiffTunedData& data);

/// Convenience wrapper for correctness tests: converts, runs the tuned
/// kernel, and converts the result back to the canonical [I, J, K]
/// layout of `data.out_field`.
void hdiff_tuned(HdiffData& data, std::int64_t pad_elements = 8);

struct BertConfig {
  std::int64_t B = 1, H = 4, SM = 64, I = 128, emb = 512;
  std::int64_t P() const { return I / H; }
};

struct BertData {
  BertConfig config;
  std::vector<float> x;    ///< [B, SM, I]
  std::vector<float> wq, wk, wv;  ///< [H, I, P]
  std::vector<float> wo;   ///< [H, P, I]
  std::vector<float> w1;   ///< [I, emb]
  std::vector<float> b1;   ///< [emb]
  std::vector<float> w2;   ///< [emb, I]
  std::vector<float> b2;   ///< [I]
  std::vector<float> out;  ///< [B, SM, I]
};

BertData make_bert_data(const BertConfig& config);

/// Baseline: every operator materializes its result (NumPy style).
void bert_baseline(BertData& data);
/// First fusion set: elementwise chains (softmax pipeline, bias+GELU,
/// residual+layernorm) fused into single passes.
void bert_fused1(BertData& data);
/// Second fusion set: row-wise fusion of the attention pipeline
/// (scores -> softmax -> context per query row) and FFN tiles.
void bert_fused2(BertData& data);

}  // namespace kernels

}  // namespace dmv::workloads
