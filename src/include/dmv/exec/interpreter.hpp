#pragma once

// Reference interpreter for parameterized SDFGs.
//
// Executes the dataflow graph directly (maps iterated sequentially,
// tasklet ASTs evaluated on doubles) against buffers allocated per the
// containers' concrete layouts — including stride padding, so a padded
// and an unpadded program write the same logical values to different
// physical offsets. Its role in the reproduction is semantic ground
// truth: every transformation test checks that the optimized graph
// computes bit-identical results to the original, which is the guarantee
// the paper's workflow relies on when the engineer applies fusion or
// layout changes suggested by the visualization.

#include <map>
#include <string>
#include <vector>

#include "dmv/ir/sdfg.hpp"
#include "dmv/layout/layout.hpp"

namespace dmv::exec {

using ir::Sdfg;
using layout::ConcreteLayout;
using symbolic::SymbolMap;

/// Named buffers, allocated to each container's concrete layout. Values
/// are doubles regardless of the declared element size (the element size
/// only matters to the cache analyses).
class Buffers {
 public:
  /// Allocates zero-initialized storage for every container.
  Buffers(const Sdfg& sdfg, const SymbolMap& symbols);

  const ConcreteLayout& layout(const std::string& name) const;
  /// Element access by logical indices (applies strides).
  double& at(const std::string& name, std::span<const std::int64_t> indices);
  double at(const std::string& name,
            std::span<const std::int64_t> indices) const;

  /// Raw buffer (allocated length, including padding holes).
  std::vector<double>& raw(const std::string& name);
  const std::vector<double>& raw(const std::string& name) const;

  /// Logical contents in row-major order (reads through strides) — the
  /// layout-independent value vector used to compare program variants.
  std::vector<double> logical(const std::string& name) const;
  /// Fills a container from row-major logical values.
  void set_logical(const std::string& name,
                   const std::vector<double>& values);

 private:
  std::map<std::string, ConcreteLayout> layouts_;
  std::map<std::string, std::vector<double>> storage_;
};

/// Executes all states of the SDFG in order under the given binding.
/// Throws on out-of-bounds accesses, unbound connectors, or unsupported
/// constructs (non-single-element tasklet memlets).
void run(const Sdfg& sdfg, const SymbolMap& symbols, Buffers& buffers);

}  // namespace dmv::exec
