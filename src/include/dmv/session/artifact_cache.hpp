#pragma once

// Process-global shared artifact cache tier.
//
// A Session's memoization (session.hpp) is private: one client, one
// LRU. The serving layer (serve/) multiplexes MANY clients onto one
// process, and their artifacts are highly redundant — every client
// dragging the hdiff `size` slider recomputes the same keyed results.
// This module lifts the cache key — (artifact kind, program content
// hash, pipeline-config hash, binding restricted to the artifact's
// reachable symbols) — into a sharded process-wide tier that sessions
// consult between their local LRU and a real computation:
//
//   local LRU hit   -> return (counts as hit)
//   shared tier hit -> copy the shared_ptr into the local LRU, return
//                      (counts as hit + shared_hit)
//   miss            -> compute, insert into BOTH tiers
//
// Sharding follows the symbolic interner: the key hash picks one of
// `shards` independently locked segments, so concurrent sessions on
// different keys never contend on one mutex. Each shard owns a slice
// of the byte budget (budget_bytes / shards) with LRU eviction inside
// the shard.
//
// Determinism: artifacts are immutable and every producer computes the
// same bytes for the same key (the session determinism contract), so
// which session populates an entry — or whether eviction forces a
// recomputation — can never change returned values, only timing.
//
// Thread safety: all methods are safe to call concurrently.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace dmv::store {
class DiskArtifactCache;
}  // namespace dmv::store

namespace dmv::session {

/// The one cache key shared by the per-session LRU and the shared tier.
/// `binding` must be RESTRICTED to the artifact's reachable symbols and
/// sorted by symbol name — restriction is the invalidation story
/// (session.hpp); sorting makes equal bindings compare equal.
struct ArtifactKey {
  std::uint8_t kind = 0;  ///< session-internal Kind discriminator.
  int aux = -1;           ///< State index for per-state artifacts.
  std::uint64_t program_hash = 0;
  std::uint64_t config_hash = 0;
  std::vector<std::pair<std::string, std::int64_t>> binding;

  bool operator==(const ArtifactKey&) const = default;
};

struct ArtifactKeyHash {
  std::size_t operator()(const ArtifactKey& key) const;
};

/// Serializer pair for one artifact kind, consumed by the optional disk
/// tier. encode() must be exact — decode(encode(x)) reproduces a
/// bit-identical artifact, extending the determinism contract to disk.
/// decode() returns null on malformed bytes; the tier treats that as a
/// miss. Plain function pointers: a codec is registered once in Config
/// and must not capture state.
struct ArtifactCodec {
  std::string (*encode)(const void* artifact) = nullptr;
  std::shared_ptr<const void> (*decode)(const std::string& bytes) = nullptr;
};

/// Counters over all shards, cumulative since construction. A snapshot
/// is internally consistent per shard but not across shards (each shard
/// is locked in turn) — fine for monitoring, not for invariants.
struct SharedCacheStats {
  std::int64_t hits = 0;        ///< lookup() found the key.
  std::int64_t misses = 0;      ///< lookup() did not.
  std::int64_t insertions = 0;  ///< Entries actually added (not races).
  std::int64_t evictions = 0;   ///< Entries dropped by a shard budget.
  std::size_t bytes = 0;        ///< Current payload bytes, all shards.
  std::size_t entries = 0;      ///< Current entry count, all shards.
  // Disk tier (all zero when Config::disk_dir is empty).
  std::int64_t disk_hits = 0;    ///< RAM misses satisfied from disk.
  std::int64_t disk_misses = 0;  ///< Disk probes that found nothing.
  std::int64_t disk_writes = 0;  ///< Artifacts persisted.
  std::size_t disk_bytes = 0;    ///< Current bytes in the cache dir.
  std::size_t disk_entries = 0;  ///< Current files in the cache dir.
};

/// Sharded byte-budgeted LRU of immutable artifacts, keyed by
/// ArtifactKey, holding type-erased shared ownership (the key's `kind`
/// field discriminates the payload type, exactly as in the session
/// LRU).
class SharedArtifactCache {
 public:
  struct Config {
    /// Byte budget over all shards; each shard enforces budget/shards.
    std::size_t budget_bytes = std::size_t{256} << 20;
    /// Independently locked segments; rounded up to at least 1.
    std::size_t shards = 16;
    /// Persistent warm-start tier (store::DiskArtifactCache): empty
    /// disables it. When set, a RAM miss whose kind has a codec probes
    /// this directory (and promotes a hit into the RAM tier), and every
    /// fresh insert of such a kind writes through — so a restarted
    /// process re-serves prior artifacts without recomputing them.
    std::string disk_dir;
    /// Byte budget of the disk tier; oldest files evicted beyond it.
    std::size_t disk_budget_bytes = std::size_t{1} << 30;
    /// (kind, codec) registrations. Kinds without a codec stay
    /// RAM-only regardless of disk_dir.
    std::vector<std::pair<std::uint8_t, ArtifactCodec>> codecs;
  };

  SharedArtifactCache();  ///< Default Config.
  explicit SharedArtifactCache(Config config);
  ~SharedArtifactCache();
  SharedArtifactCache(const SharedArtifactCache&) = delete;
  SharedArtifactCache& operator=(const SharedArtifactCache&) = delete;

  /// Returns the cached value and refreshes its LRU position, or
  /// nullptr on miss. On a hit, `*bytes_out` (when non-null) receives
  /// the payload size recorded at insert — sessions use it to account
  /// the entry when promoting it into their local LRU.
  std::shared_ptr<const void> lookup(const ArtifactKey& key,
                                     std::size_t* bytes_out = nullptr);

  /// Presence probe without touching LRU order or hit/miss counters —
  /// for the prefetcher's "already cached somewhere?" filter.
  bool contains(const ArtifactKey& key) const;

  /// Inserts unless the key is already present (first writer wins —
  /// racing producers computed identical bytes anyway). `bytes` is the
  /// caller's approx payload size, same accounting as the session LRU.
  void insert(const ArtifactKey& key, std::shared_ptr<const void> value,
              std::size_t bytes);

  SharedCacheStats stats() const;
  /// Drops the RAM tier. The disk tier is deliberately untouched —
  /// persistence across clear() (and process restart) is its purpose.
  void clear();

 private:
  struct Shard;
  Config config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<store::DiskArtifactCache> disk_;

  Shard& shard_for(const ArtifactKey& key) const;
  const ArtifactCodec* codec_for(std::uint8_t kind) const;
  bool insert_ram(const ArtifactKey& key, std::shared_ptr<const void> value,
                  std::size_t bytes);
};

}  // namespace dmv::session
