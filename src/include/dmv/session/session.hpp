#pragma once

// Interactive session engine: memoized incremental recomputation.
//
// PR 1–2 made a SINGLE evaluation fast (compiled simulation engine,
// fused streaming metric pipeline). This layer makes the interactive
// loop fast: a `Session` wraps a program, its current parameter
// binding, and a metric subscription set behind a byte-budgeted
// memoization cache, so dragging a slider back over visited values —
// or into values the prefetcher anticipated — returns in cache-lookup
// time instead of re-simulating.
//
// Three mechanisms, mirroring what separates an interactive dataflow
// viewer from a fast batch engine:
//
//   * Memoization — every artifact (metric bundle, symbolic volume,
//     evaluated volume, graph layout, heat-overlay SVG) is cached in
//     one LRU keyed by (program content hash, metric-config hash, and
//     the binding RESTRICTED to the symbols the artifact can reach).
//   * Dependency-restricted keys — the reachability analysis
//     (analysis::simulation_symbols, Expr::depends_on) determines
//     which symbols each artifact actually depends on; symbols outside
//     that set never enter the key. Changing an unused symbol is
//     therefore a cache HIT, not an invalidation, and symbolic-only
//     artifacts (volume expressions, graph layout, SVG structure)
//     survive any amount of re-simulation. Program edits change the
//     content hash; stale entries simply become unreachable and age
//     out of the LRU.
//   * Speculative prefetch — a slider drag moves one symbol with a
//     regular stride. After each metrics() call the session evaluates
//     the neighboring values of the last-moved symbol on the dmv::par
//     pool (one private MetricPipeline per pool slot), so the next
//     drag step hits warm cache.
//
// Determinism contract: every artifact returned by a Session is
// bit-identical to the corresponding uncached evaluation, at any
// thread count, any prefetch depth, and any eviction schedule. Cached
// values are immutable; eviction only ever causes a (deterministic)
// recomputation; prefetch results are inserted in candidate order on
// the calling thread.
//
// Thread safety: a Session is NOT thread-safe — it is the state of one
// interactive client. It uses the dmv::par pool internally for
// prefetch; concurrent clients should each own a Session.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <string>

#include "dmv/analysis/analysis.hpp"
#include "dmv/ir/sdfg.hpp"
#include "dmv/session/artifact_cache.hpp"
#include "dmv/sim/pipeline.hpp"
#include "dmv/viz/graph_layout.hpp"
#include "dmv/viz/heatmap.hpp"

namespace dmv::session {

/// What the session computes and how much it may remember.
struct SessionConfig {
  /// Metric subscription set: which consumers every metrics() call
  /// (and every prefetched evaluation) drives.
  sim::PipelineConfig pipeline;
  /// Simulation engine knobs shared by all evaluations.
  sim::SimulationOptions simulation;
  /// Drive the pipeline in streaming mode (no event vector); turn off
  /// if raw traces are needed elsewhere. Either mode yields
  /// bit-identical artifacts.
  bool streaming = true;
  /// Route metric evaluations through the delta recomputation engine
  /// (sim::MetricPipeline::run_delta): cache misses against a warm
  /// checkpoint splice clean trace chunks and re-simulate only dirty
  /// ones instead of recomputing from scratch (docs/incremental.md).
  /// Takes precedence over `streaming` (the checkpoint is materialized).
  /// Artifacts stay bit-identical either way.
  bool delta = true;

  /// LRU byte budget over all cached artifacts. The most recently
  /// inserted entry is always kept, even when it alone exceeds the
  /// budget (a cache that cannot hold one result would just thrash).
  std::size_t cache_budget_bytes = std::size_t{64} << 20;

  /// Optional process-global second tier (artifact_cache.hpp). When
  /// set, local misses consult it before computing, and every computed
  /// (or prefetched) artifact is also published there — so identical
  /// programs in DIFFERENT sessions share entries while this session's
  /// cache_budget_bytes still bounds its private tier. Artifacts are
  /// immutable and deterministic, so sharing never changes results.
  std::shared_ptr<SharedArtifactCache> shared_cache;

  /// Speculatively evaluate neighboring values of the last-moved
  /// symbol after each metrics() call.
  bool prefetch = true;
  /// Neighbors prefetched ahead in the drag direction (plus one behind,
  /// for direction reversals).
  int prefetch_depth = 2;

  /// Rendering knobs for graph_svg()/layout().
  viz::ColorScheme scheme = viz::ColorScheme::GreenYellowRed;
  viz::ScalingPolicy scaling = viz::ScalingPolicy::MeanCentered;
  viz::LayoutOptions layout;
};

/// Cache accounting, cumulative since construction / reset_stats().
struct SessionStats {
  std::int64_t hits = 0;            ///< Artifact requests served cached.
  std::int64_t misses = 0;          ///< Requests that recomputed.
  std::int64_t prefetch_issued = 0; ///< Speculative evaluations run.
  std::int64_t prefetch_hits = 0;   ///< Hits served by a prefetched entry.
  /// Hits served by the process-global tier (config.shared_cache) after
  /// a local miss — i.e. another session (or an evicted incarnation of
  /// this one) computed the artifact. Subset of `hits`; always 0 when
  /// no shared cache is configured.
  std::int64_t shared_hits = 0;
  std::int64_t evictions = 0;       ///< Entries dropped by the byte budget.
  std::size_t cache_bytes = 0;      ///< Current payload bytes cached.
  std::size_t cache_entries = 0;    ///< Current entry count.
  /// Prefetch mode actually in effect: "speculative" once a speculative
  /// evaluation ran, "skipped (1 worker)" when the thread knob was 1 at
  /// prefetch time (speculation would serialize in front of the next
  /// interaction, so it is skipped), "off" when disabled by config, ""
  /// before the first prefetch decision.
  std::string prefetch;

  // --- Interaction-step classification -------------------------------
  // A STEP is the span between binding changes (set_symbol/set_binding)
  // in which at least one artifact was requested. Each step is
  // classified by the most expensive mechanism it needed:
  //   full-hit       every request served from cache;
  //   symbolic-delta a closed-form/symbolic artifact was (re)evaluated,
  //                  but nothing was simulated;
  //   chunk-delta    the pipeline patched its checkpoint (clean chunks
  //                  spliced, dirty ones re-simulated);
  //   cold           at least one full simulation ran.
  // The in-progress step is classified lazily: at the next binding
  // change or at the next stats() call, whichever comes first.
  // Speculative prefetch evaluations never count toward any step.
  std::int64_t steps_full_hit = 0;
  std::int64_t steps_symbolic = 0;
  std::int64_t steps_chunk_delta = 0;
  std::int64_t steps_cold = 0;

  // --- Pipeline phase breakdown --------------------------------------
  // Accumulated from MetricPipeline::last_timings() over every
  // non-speculative metric evaluation this session ran (cache hits and
  // prefetch evaluations add nothing). Observability only — never part
  // of an artifact or cache key.
  double simulate_ms = 0.0;  ///< Trace generation / patch phase ms.
  double metrics_ms = 0.0;   ///< Metric consumption + finalize ms.
  /// Metric worker partitions of the MOST RECENT evaluation (1 = serial
  /// fused pass; >1 = the mergeable parallel engine ran).
  int metric_partitions = 1;
};

/// One interactive client: a program, a current binding, a metric
/// subscription set, and the memoization state that makes re-visiting
/// bindings (and program versions) cheap. All getters return shared
/// ownership of immutable artifacts — they stay valid after eviction,
/// rebinding, or Session destruction.
class Session {
 public:
  explicit Session(ir::Sdfg program, SessionConfig config = {});
  ~Session();
  Session(Session&&) noexcept;
  Session& operator=(Session&&) noexcept;
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  const SessionConfig& config() const;
  const ir::Sdfg& program() const;

  /// Replaces the program (e.g. after a transform). Artifacts of the
  /// old version stay cached under its content hash — switching back
  /// is cheap until the LRU ages them out.
  void set_program(ir::Sdfg program);
  /// In-place edit: applies `edit` to the owned program, then rehashes.
  void edit_program(const std::function<void(ir::Sdfg&)>& edit);

  const symbolic::SymbolMap& binding() const;
  /// Wholesale rebinding; clears the slider (last-moved) tracking.
  void set_binding(symbolic::SymbolMap binding);
  /// Slider move: binds one symbol and records it (with its stride) as
  /// the prefetch target.
  void set_symbol(const std::string& symbol, std::int64_t value);

  /// The metric bundle for the current binding under config().pipeline.
  /// Cache key: (program, config, binding restricted to
  /// metric_symbols()). Triggers neighbor prefetch after a slider move.
  std::shared_ptr<const sim::PipelineResult> metrics();

  /// Tier-1 delta recomputation: every closed-form metric (event /
  /// execution / flop counts, movement volume, footprint, arithmetic
  /// intensity, per-container access counts) evaluated at the current
  /// binding by plugging values into cached interned expressions — no
  /// simulation at any point. The expression bundle is program-keyed;
  /// the value bundle is keyed by the symbols the expressions reach.
  std::shared_ptr<const analysis::ClosedFormValues> closed_form();

  /// Symbolic total-movement volume — binding-independent; survives
  /// any re-simulation.
  std::shared_ptr<const symbolic::Expr> movement_volume();
  /// movement_volume() evaluated at the current binding; keyed only by
  /// the symbols the volume expression reaches.
  std::int64_t movement_bytes();

  /// Graph layout of one state — depends on graph structure only.
  std::shared_ptr<const viz::StateLayout> layout(int state_index = 0);
  /// Volume-heat SVG of one state. The layout is a separate cached
  /// artifact, so a binding change re-renders at most the heat overlay;
  /// the SVG itself is keyed by the symbols the state's edge volumes
  /// reach.
  std::shared_ptr<const std::string> graph_svg(int state_index = 0);

  /// Symbols that can reach any simulated metric for the current
  /// program (analysis::simulation_symbols).
  const std::set<std::string>& metric_symbols() const;

  /// The exact cache key metrics() would use for the current (program,
  /// config, binding) — the serving layer keys request coalescing on it
  /// so concurrent drags that would simulate the same thing collapse
  /// into one computation (serve/server.hpp).
  ArtifactKey metrics_cache_key() const;

  SessionStats stats() const;
  void reset_stats();
  void clear_cache();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// ArtifactKey::kind value of the metrics artifact (the cached
/// sim::PipelineResult). The serving layer uses it to register the
/// store::pipeline_result_codec() disk codec for exactly this artifact
/// — the one whose recomputation costs a simulation — without exposing
/// the session-internal Kind enum.
std::uint8_t metrics_artifact_kind();

}  // namespace dmv::session
