#pragma once

// Multi-session analysis server core.
//
// The paper's tool is one user dragging sliders against one process;
// the ROADMAP's north star is many. This layer multiplexes independent
// interactive clients — each a session::Session — onto one process and
// one dmv::par pool, behind a line-delimited JSON protocol
// (docs/serving.md):
//
//   {"id":1,"method":"open_program","params":{"session":"a","workload":"hdiff"}}
//   {"id":1,"result":{"program":"hdiff","symbols":["I","J","K"],...}}
//
// `Server` is transport-agnostic: handle() maps one request line to one
// response line, synchronously, on the caller's thread. The dmv_serve
// binary (serve/main.cpp) supplies the transports (stdio, TCP with one
// thread per connection); tests and the load generator drive handle()
// directly from their own threads.
//
// What the server adds over N independent Sessions:
//
//   * Shared artifact tier — every session is constructed with the
//     process-global SharedArtifactCache (artifact_cache.hpp), so a
//     program+binding any client has already simulated is a cache hit
//     for every other client, while per-session budgets still bound
//     each client's private tier.
//   * Request coalescing — concurrent `step` requests from different
//     sessions that resolve to the SAME artifact key (program content
//     hash + pipeline fingerprint + reachable-symbol binding) collapse
//     into one simulation: the first becomes the leader and computes,
//     the rest wait on its flight and are then served from the shared
//     tier. Exactly one simulation runs per distinct key.
//   * Pool admission — the par pool is single-job; with the busy
//     fallback (par.hpp) a session whose parallel evaluation finds the
//     pool occupied degrades to the bit-identical serial path instead
//     of queueing behind a foreign client's job.
//
// Determinism contract under concurrency: every artifact (and its
// checksum in a `step` response) is bit-identical to what a lone
// single-threaded Session would produce for the same request sequence,
// at any thread count and any client interleaving. Concurrency changes
// only WHO computes an artifact and how long requests take — never the
// bytes. Counters (hit/miss/coalesced splits) are interleaving-
// dependent; invariant across interleavings is the total number of
// simulations per distinct key (one).
//
// Thread safety: handle(), stats(), and shutdown() are safe to call
// concurrently. Requests for the same session serialize on a
// per-session mutex; requests for different sessions proceed in
// parallel.

#include <cstdint>
#include <memory>
#include <string>

#include "dmv/session/artifact_cache.hpp"
#include "dmv/session/session.hpp"

namespace dmv::serve {

struct ServerConfig {
  /// Process-global artifact tier shared by every session.
  session::SharedArtifactCache::Config shared_cache;
  /// Template for newly opened sessions (pipeline subscription, engine
  /// knobs, per-session budget). Its shared_cache field is overwritten
  /// with the server's tier; `subscribe` adjusts the rest per session.
  session::SessionConfig session_defaults;
};

/// Cumulative request accounting since construction. Counter totals
/// depend on request interleaving (see determinism note above); the
/// artifacts they describe do not.
struct ServerStats {
  std::int64_t requests = 0;        ///< Lines handled, incl. errors.
  std::int64_t errors = 0;          ///< Responses with an `error` member.
  std::int64_t steps = 0;           ///< `step` requests served.
  /// `step` requests that waited on another session's in-flight
  /// computation of the same artifact key instead of computing.
  std::int64_t coalesced = 0;
  std::int64_t sessions = 0;        ///< Currently open sessions.
  /// par::busy_fallbacks() at snapshot time: parallel jobs that ran
  /// serially inline because another client held the pool.
  std::uint64_t pool_busy_fallbacks = 0;
};

class Server {
 public:
  explicit Server(ServerConfig config = {});
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Handles one request line (a complete JSON object, no newline) and
  /// returns the response line. Never throws: every failure becomes an
  /// `error` response. Safe to call from any thread.
  std::string handle(const std::string& line);

  /// Stops admitting requests (subsequent handle() calls return a
  /// `shutting_down` error) and blocks until every in-flight handle()
  /// has returned. Idempotent. Also triggered by the protocol
  /// `shutdown` method.
  void shutdown();

  /// True once shutdown started — transports use this to stop their
  /// accept/read loops.
  bool shutting_down() const;

  ServerStats stats() const;
  session::SharedCacheStats shared_cache_stats() const;
  const std::shared_ptr<session::SharedArtifactCache>& shared_cache() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Order-insensitive checksum of a metric bundle: total cache misses +
/// executions + per-element cold counts + per-element read counts. The
/// same formula as the sweep benchmark's ablation gate; `step`
/// responses carry it (as a decimal string — JSON numbers lose
/// precision past 2^53) so clients and tests can assert bit-identity
/// against a local Session.
std::int64_t result_checksum(const sim::PipelineResult& result);

/// The workload registry behind open_program's `workload` parameter:
/// hdiff[_reshaped|_reordered|_padded], bert[_fused1|_fused2], matmul,
/// conv2d, outer_product. Throws std::invalid_argument for anything
/// else.
ir::Sdfg workload_by_name(const std::string& name);

}  // namespace dmv::serve
