#pragma once

// Orthogonal metric sources for the heatmap overlays (paper §IV-B:
// "Profiling data could orthogonally be used as metrics, which would be
// crucial for bottleneck analysis of data-dependent programs").
//
// Two sources are provided:
//
//  * RooflineProfile — an analytic per-map time model in the spirit of
//    Kerncraft (which the paper cites as a back-end candidate): each map
//    is classified compute- or memory-bound from its operation count and
//    boundary traffic under a simple machine model, and gets a predicted
//    time. These times feed the same HeatmapScale/renderer pipeline as
//    the static volumes.
//
//  * MetricOverlay — a generic container for externally measured values
//    (hardware counters, timers) keyed by node/edge, with the helper
//    that turns any overlay into normalized heat for the renderer. This
//    is how real profiles would be displayed in-situ.

#include <map>
#include <string>
#include <vector>

#include "dmv/analysis/analysis.hpp"
#include "dmv/viz/heatmap.hpp"

namespace dmv::analysis {

/// Simple machine model for the roofline estimate.
struct MachineModel {
  double flops_per_second = 4e9;   ///< Scalar core, ~1 op/cycle.
  double bytes_per_second = 2e10;  ///< Sustained memory bandwidth.
};

enum class Bound { Compute, Memory };

struct MapProfile {
  NodeRef ref;
  std::string label;
  double operations = 0;
  double boundary_bytes = 0;
  double compute_seconds = 0;
  double memory_seconds = 0;
  Bound bound = Bound::Memory;
  double seconds = 0;  ///< max(compute, memory): the roofline estimate.
};

/// Per-map roofline profile under a parameter binding.
std::vector<MapProfile> roofline_profile(const Sdfg& sdfg,
                                         const SymbolMap& symbols,
                                         const MachineModel& machine = {});

/// Predicted whole-program time (sum of map estimates).
double roofline_total_seconds(const Sdfg& sdfg, const SymbolMap& symbols,
                              const MachineModel& machine = {});

/// Externally supplied measurements, attachable to nodes and edges of
/// one state. Values are free-form (seconds, cache misses, joules, ...).
struct MetricOverlay {
  std::string name;                       ///< e.g. "measured time [s]".
  std::map<ir::NodeId, double> node_values;
  std::map<std::size_t, double> edge_values;  ///< Keyed by edge index.

  /// Normalizes all attached values with the chosen policy and returns
  /// render-ready heat maps (the bridge into GraphRenderOptions).
  struct Heat {
    std::map<ir::NodeId, double> node_heat;
    std::map<std::size_t, double> edge_heat;
  };
  Heat to_heat(viz::ScalingPolicy policy) const;
};

/// Builds a MetricOverlay from a roofline profile of one state, so
/// model-predicted times render exactly like measured ones.
MetricOverlay overlay_from_roofline(const std::vector<MapProfile>& profile,
                                    int state_index);

}  // namespace dmv::analysis
