#pragma once

// Global-view static analyses (paper §IV).
//
// Everything here is computed WITHOUT executing the program: logical data
// movement volumes come from memlet annotations, operation counts from
// tasklet ASTs, and both stay symbolic in the program's input parameters.
// Binding a SymbolMap turns any metric into a number — that is the
// parametric scaling analysis of §IV-D, where the user drags a parameter
// slider and the heatmap re-colors instantly.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dmv/ir/sdfg.hpp"

namespace dmv::analysis {

using ir::Edge;
using ir::NodeId;
using ir::Sdfg;
using ir::State;
using symbolic::Expr;
using symbolic::SymbolMap;

/// Stable reference to an edge of a specific state.
struct EdgeRef {
  int state_index = 0;
  std::size_t edge_index = 0;
};

/// Stable reference to a node of a specific state.
struct NodeRef {
  int state_index = 0;
  NodeId node = ir::kNoNode;
};

/// The map scope an edge executes in: the map entry whose body contains
/// it, or kNoNode for top-level edges.
NodeId edge_scope(const State& state, const Edge& edge);

/// Product of iteration counts of all maps enclosing `scope` (inclusive).
Expr scope_iterations(const State& state, NodeId scope);

/// Total elements moved along an edge over the whole state execution:
/// per-traversal volume times enclosing map iterations.
Expr total_edge_elements(const State& state, const Edge& edge);
/// Same, in bytes (elements * element size of the referenced container).
Expr total_edge_bytes(const Sdfg& sdfg, const State& state, const Edge& edge);

/// Logical data-movement volume of every non-empty edge (the metric
/// behind the paper's global heatmap, Fig 1 and Fig 6).
struct EdgeVolume {
  EdgeRef ref;
  std::string data;
  Expr elements;
  Expr bytes;
};
std::vector<EdgeVolume> edge_volumes(const Sdfg& sdfg);

/// Sum of all logical movement in bytes across the program.
Expr total_movement_bytes(const Sdfg& sdfg);

/// Free-symbol reachability of the simulation inputs: every declared
/// program symbol that occurs in a container shape/stride/offset, a map
/// bound, or a memlet subset/volume. A symbol NOT in this set cannot
/// change any simulated trace or derived metric under any binding, so
/// the session layer keys its simulation caches on exactly this
/// restriction of the binding (changing an unreached symbol is a cache
/// hit, not an invalidation).
std::set<std::string> simulation_symbols(const Sdfg& sdfg);

/// Closed-form metric bundle (delta-recomputation Tier 1): every metric
/// with a simulation-free answer, kept as interned symbolic expressions
/// over the program's declared symbols. Evaluating the bundle under a
/// binding is O(DAG) with memoized simplify — a slider step that only
/// touches these metrics never runs the simulator. The event/execution
/// totals mirror the trace planner's exact counting, so for any binding
/// the planner can model, `total_events` evaluates to
/// TracePlan::total_events (fuzz-checked by incremental_test).
struct ClosedFormMetrics {
  Expr total_events;      ///< Simulated access events (all containers).
  Expr total_executions;  ///< Tasklet-execution instances.
  Expr flops;             ///< total_operations(sdfg).
  Expr movement_bytes;    ///< total_movement_bytes(sdfg) (logical).
  Expr footprint_bytes;   ///< Sum of logical container sizes.
  /// Container names in simulation placement order, index-aligned with
  /// the per-container event expressions below.
  std::vector<std::string> containers;
  std::vector<Expr> reads_per_container;   ///< Simulated read events.
  std::vector<Expr> writes_per_container;  ///< Simulated write events.
  /// Declared program symbols any expression above reaches.
  std::set<std::string> symbols;
  /// True when every expression is closed over the declared symbols.
  /// False for structures whose counts depend on locally-bound map
  /// parameters in a way simplification cannot eliminate (e.g.
  /// triangular iteration spaces) — evaluation would throw.
  bool exact = true;
};
/// Builds the bundle. `wcr_reads` mirrors SimulationOptions::wcr_reads
/// (a WCR output contributes read events when set).
ClosedFormMetrics closed_form_metrics(const Sdfg& sdfg,
                                      bool wcr_reads = false);

/// One evaluation of a ClosedFormMetrics bundle under a binding.
struct ClosedFormValues {
  std::int64_t total_events = 0;
  std::int64_t total_executions = 0;
  std::int64_t flops = 0;
  std::int64_t movement_bytes = 0;
  std::int64_t footprint_bytes = 0;
  /// flops / movement_bytes (0 when no movement).
  double arithmetic_intensity = 0;
  std::vector<std::string> containers;
  std::vector<std::int64_t> reads;
  std::vector<std::int64_t> writes;
};
/// Evaluates every expression of the bundle. Throws
/// symbolic::UnboundSymbolError when the bundle is not exact (or the
/// binding misses a reached symbol).
ClosedFormValues evaluate_closed_form(const ClosedFormMetrics& metrics,
                                      const SymbolMap& symbols);

/// Arithmetic operations executed by one tasklet node over the whole
/// state (per-execution AST count times enclosing map iterations).
Expr tasklet_operations(const State& state, NodeId tasklet);

/// Operation count of every tasklet (the §IV-B arithmetic heatmap).
struct NodeOps {
  NodeRef ref;
  std::string label;
  Expr operations;
};
std::vector<NodeOps> tasklet_operation_counts(const Sdfg& sdfg);

/// Whole-program operation total.
Expr total_operations(const Sdfg& sdfg);

/// Arithmetic intensity of a map scope: operations executed inside the
/// scope divided by bytes crossing its entry/exit boundary (§IV-B). Needs
/// a binding because the ratio is generally not a polynomial.
double map_arithmetic_intensity(const Sdfg& sdfg, const State& state,
                                NodeId map_entry, const SymbolMap& symbols);

/// Per-map intensity across the program, for the intensity heatmap.
struct MapIntensity {
  NodeRef ref;
  std::string label;
  double operations = 0;
  double boundary_bytes = 0;
  double intensity = 0;
};
std::vector<MapIntensity> map_intensities(const Sdfg& sdfg,
                                          const SymbolMap& symbols);

/// Edges ranked by evaluated volume, largest first — the "click the red
/// edges" bottleneck-detection workflow of §VI-A.
struct RankedEdge {
  EdgeRef ref;
  std::string data;
  double bytes = 0;
};
std::vector<RankedEdge> rank_edges_by_volume(const Sdfg& sdfg,
                                             const SymbolMap& symbols);

/// Parametric scaling analysis (§IV-D): numerically probes how a metric
/// grows in each symbol by evaluating at `base` and at the same binding
/// with one symbol scaled by `factor`, reporting the power-law exponent
/// log_factor(m2/m1). Exponent 0 = no influence; 1 = linear; 2 =
/// quadratic; ...
struct SymbolScaling {
  std::string symbol;
  double exponent = 0;
  double base_value = 0;    ///< metric at `base`
  double scaled_value = 0;  ///< metric with this symbol scaled
};
std::vector<SymbolScaling> scaling_exponents(const Expr& metric,
                                             const SymbolMap& base,
                                             std::int64_t factor = 2);

/// Convenience: exponents of the total-movement metric per program symbol.
std::vector<SymbolScaling> movement_scaling(const Sdfg& sdfg,
                                            const SymbolMap& base,
                                            std::int64_t factor = 2);

/// One point of a parameter-slider series (§IV-D).
struct SweepPoint {
  std::int64_t value = 0;  ///< The swept symbol's value.
  double metric = 0;       ///< The metric evaluated at that binding.
};

/// Slider-series generation: evaluates `metric` at every binding formed
/// by setting `symbol` to each entry of `values` on top of `base`. The
/// metric is compiled once (symbolic::CompiledExpr) and the bindings are
/// evaluated in parallel; result order mirrors `values`. Throws
/// std::invalid_argument if `base` plus `symbol` does not cover the
/// metric's free symbols.
std::vector<SweepPoint> sweep_metric(const Expr& metric, const SymbolMap& base,
                                     const std::string& symbol,
                                     const std::vector<std::int64_t>& values);

/// Convenience: the total-movement slider series of the global view.
std::vector<SweepPoint> movement_sweep(const Sdfg& sdfg, const SymbolMap& base,
                                       const std::string& symbol,
                                       const std::vector<std::int64_t>& values);

/// Before/after comparison of two program versions (the Fig 6 panels
/// side by side): per-container logical movement in each version and the
/// delta. Containers present in only one version (e.g. transients that
/// fusion eliminated) appear with a zero on the other side.
struct ContainerDelta {
  std::string data;
  double before_bytes = 0;
  double after_bytes = 0;
  double delta() const { return after_bytes - before_bytes; }
};
struct MovementDiff {
  std::vector<ContainerDelta> containers;  ///< Sorted by |delta|, desc.
  double before_total = 0;
  double after_total = 0;
};
MovementDiff diff_movement(const Sdfg& before, const Sdfg& after,
                           const SymbolMap& symbols);

}  // namespace dmv::analysis
