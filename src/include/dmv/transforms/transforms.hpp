#pragma once

// Graph transformations: the optimizations the paper's case studies apply.
//
// The tool's workflow is analyze -> transform -> re-analyze: the global
// heatmap points at high-volume edges, the engineer fuses the maps around
// them (BERT, §VI-A); the local view exposes bad layouts and loop orders,
// the engineer permutes dimensions, reorders loops, and pads strides
// (hdiff, §VI-B). Each transformation here mutates the IR in place and is
// validated semantics-preserving by the interpreter tests.

#include <string>
#include <vector>

#include "dmv/ir/sdfg.hpp"

namespace dmv::transforms {

using ir::NodeId;
using ir::Sdfg;
using ir::State;

/// A fusible producer/consumer pair: `first` map writes a transient that
/// `second` map reads element-wise with identical iteration domains.
struct FusionCandidate {
  int state_index = 0;
  NodeId first_entry = ir::kNoNode;
  NodeId second_entry = ir::kNoNode;
  std::string transient;  ///< The intermediate array fusion eliminates.
};

/// Finds all candidate pairs in the SDFG. A pair qualifies when:
///  * both maps have identical parameter ranges,
///  * the intermediate container is a transient written only by `first`
///    and read only by `second`,
///  * both sides access it with the same per-iteration subset (after
///    renaming the second map's parameters onto the first's), and
///  * neither access uses write-conflict resolution.
std::vector<FusionCandidate> find_fusion_candidates(const Sdfg& sdfg);

/// Fuses one candidate: moves the consumer's tasklets into the producer's
/// map, replaces the transient round-trip with a direct tasklet-to-
/// tasklet scalar edge, deletes the dead access nodes and (if now unused)
/// the transient container. Throws std::invalid_argument if the
/// candidate no longer applies.
void apply_map_fusion(Sdfg& sdfg, const FusionCandidate& candidate);

/// Applies fusion until fixpoint; returns the number of maps fused.
int fuse_all(Sdfg& sdfg);

/// Reorders the parameters of a map (the hdiff "make k outermost" step,
/// Fig 8b). `order[i]` is the old position of the new i-th parameter.
void loop_interchange(State& state, NodeId map_entry,
                      const std::vector<int>& order);

/// Permutes the dimensions of a data container (the hdiff reshape
/// [I+4,J+4,K] -> [K,I+4,J+4], Fig 8a): shape, strides, and every memlet
/// subset over the container are rewritten; strides are reset to
/// row-major of the permuted shape. `permutation[i]` is the old dimension
/// that becomes new dimension i.
void permute_dimensions(Sdfg& sdfg, const std::string& data,
                        const std::vector<int>& permutation);

/// Pads the stride of dimension `dim-1`... more precisely: rounds the
/// stride of every dimension OUTSIDE `dim` up so that rows along `dim`
/// start at multiples of `multiple_elements` (the Fig 8c post-padding:
/// align each row to the cache line). Only valid when `dim` is the
/// contiguous (stride-1) dimension.
void pad_innermost_stride(Sdfg& sdfg, const std::string& data,
                          std::int64_t multiple_elements);

/// Loop tiling (the optimization §V-C says the related-access view
/// informs): splits map parameter `param` (range [b, e], step 1, with
/// e - b + 1 divisible by `tile_size`) into an OUTERMOST tile counter
/// `<param>_tile` over [0, (e-b+1)/tile_size - 1] and rewrites `param`'s
/// range to the tile window [b + <param>_tile*T, b + <param>_tile*T +
/// T-1]. Memlets stay untouched: they still reference `param`, whose
/// iteration order is what changed. Divisibility is checked when the
/// extent is a constant; for symbolic extents the caller guarantees it.
void tile_map(State& state, NodeId map_entry, const std::string& param,
              std::int64_t tile_size);

}  // namespace dmv::transforms
