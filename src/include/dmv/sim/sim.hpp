#pragma once

// Local-view simulation (paper §V).
//
// Once the user parameterizes a program region (binds its symbols to
// small concrete values), the iteration space of every map becomes
// enumerable, every memlet subset becomes evaluable, and the exact data
// access pattern of the region follows — no execution or profiling of the
// real program required. This module produces that access trace and the
// derived metrics the paper visualizes:
//
//   * per-element access counts (the flattened-time heatmap of Fig 4b),
//   * related-access queries (Fig 4c),
//   * stack/reuse distance at cache-line granularity (Fig 5b), computed
//     in O(log n) per access with a Fenwick-tree formulation of Olken's
//     algorithm,
//   * cold/capacity cache-miss classification with a user-adjustable
//     capacity threshold assuming a fully-associative LRU cache (§V-F),
//   * an exact set-associative LRU simulator used as ground truth to
//     validate that assumption,
//   * estimated physical data movement (misses x line size) that refines
//     the logical volumes of the global view (Fig 5c, Fig 7).
//
// Ownership: every result type here (AccessTrace, StackDistanceResult,
// MissReport, ...) is a self-contained value — it owns its vectors and
// never aliases the inputs it was computed from.
//
// Thread safety & determinism: the pass functions are pure — concurrent
// calls on distinct traces are safe; concurrent calls on the SAME trace
// are safe because traces are only read. Passes that parallelize
// internally do so through dmv::par's block-ordered reduce, so every
// output is bit-identical at any dmv::par::num_threads() setting; see
// dmv/par/par.hpp for the contract and determinism_test for the gate.

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <iterator>
#include <limits>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "dmv/ir/sdfg.hpp"
#include "dmv/layout/layout.hpp"
#include "dmv/symbolic/compiled.hpp"

namespace dmv::sim {

using ir::Sdfg;
using ir::State;
using layout::ConcreteLayout;
using symbolic::SymbolMap;

struct IterationSpace;

namespace detail {

/// Bounds of an IterationSpace compiled to slot-addressed form
/// (symbolic::CompiledExpr) so iteration evaluates them without map
/// lookups. Bounds independent of the space's own parameters are
/// evaluated once on first use and cached — the loop-invariant hoisting
/// that keeps tiled inner maps from re-evaluating outer-constant bounds
/// at every outer point.
class CompiledSpaceBounds {
 public:
  explicit CompiledSpaceBounds(const IterationSpace& space);

  struct Triple {
    std::int64_t begin = 0;
    std::int64_t end = 0;
    std::int64_t step = 1;
  };
  /// Evaluates dimension `dim`'s bounds under the currently bound outer
  /// parameters. Throws UnboundSymbolError / std::domain_error exactly
  /// where the symbolic evaluation would.
  Triple eval(std::size_t dim);
  /// Binds the dim's parameter for inner dimensions.
  void set_param(std::size_t dim, std::int64_t value);

 private:
  struct Dim {
    symbolic::CompiledExpr begin, end, step;
    bool invariant = false;  ///< Independent of the space's own params.
    bool cached = false;
    Triple cache;
  };
  symbolic::SymbolTable table_;
  std::vector<std::int64_t> values_;
  std::vector<char> bound_;
  std::vector<int> param_slots_;
  std::vector<Dim> dims_;
};

}  // namespace detail

/// Concrete iteration space of a map under a symbol binding. Bounds are
/// kept symbolic and evaluated per nesting level DURING iteration, with
/// outer parameters already bound — this is what lets inner ranges
/// depend on outer parameters, as tiled maps produce (e.g. the inner
/// range [i_tile*8 : i_tile*8 + 7] of transforms::tile_map). Iteration
/// compiles the bounds once (slot-addressed evaluation, invariant
/// hoisting) instead of re-evaluating Expr trees per point.
struct IterationSpace {
  std::vector<std::string> params;
  std::vector<ir::Range> ranges;  ///< Symbolic, inclusive ends.
  SymbolMap base;                 ///< The binding iteration starts from.

  /// Number of points. Computed arithmetically from the evaluated bounds
  /// when no range depends on the space's own parameters; falls back to
  /// enumeration for dependent (e.g. triangular or tiled) ranges.
  std::int64_t size() const;
  /// Calls fn(std::span<const int64_t> values) for every point, outer
  /// parameter slowest (lexicographic order).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    detail::CompiledSpaceBounds bounds(*this);
    std::vector<std::int64_t> values(params.size());
    iterate(0, values, bounds, fn);
  }

  /// Iterates the contiguous slice of `outer_count` outermost-parameter
  /// ORDINALS starting at ordinal `outer_begin` (value = begin +
  /// ordinal*step), visiting the inner dimensions in full. This is how a
  /// chunked trace writer starts mid-iteration-space; for_each over the
  /// full outer ordinal range visits the identical point sequence. A
  /// zero-dimensional space counts as one outer ordinal.
  template <typename Fn>
  void for_each_slice(std::int64_t outer_begin, std::int64_t outer_count,
                      Fn&& fn) const {
    detail::CompiledSpaceBounds bounds(*this);
    std::vector<std::int64_t> values(params.size());
    if (params.empty()) {
      if (outer_begin == 0 && outer_count > 0) {
        fn(std::span<const std::int64_t>(values));
      }
      return;
    }
    const auto [begin, end, step] = bounds.eval(0);
    if (step <= 0) {
      throw std::invalid_argument("IterationSpace: non-positive step");
    }
    for (std::int64_t o = outer_begin; o < outer_begin + outer_count; ++o) {
      const std::int64_t v = begin + o * step;
      values[0] = v;
      bounds.set_param(0, v);
      iterate(1, values, bounds, fn);
    }
  }

  static IterationSpace from(const ir::MapInfo& info,
                             const SymbolMap& symbols);

 private:
  template <typename Fn>
  void iterate(std::size_t dim, std::vector<std::int64_t>& values,
               detail::CompiledSpaceBounds& bounds, Fn&& fn) const {
    if (dim == params.size()) {
      fn(std::span<const std::int64_t>(values));
      return;
    }
    const auto [begin, end, step] = bounds.eval(dim);
    if (step <= 0) {
      throw std::invalid_argument("IterationSpace: non-positive step");
    }
    for (std::int64_t v = begin; v <= end; v += step) {
      values[dim] = v;
      bounds.set_param(dim, v);
      iterate(dim + 1, values, bounds, fn);
    }
  }
};

/// One element-granularity access in the simulated execution. This is
/// the VALUE type call sites iterate with; storage is columnar
/// (EventList), so the struct only exists transiently.
struct AccessEvent {
  std::int32_t container = 0;   ///< Index into AccessTrace::layouts.
  std::int64_t flat = 0;        ///< Logical row-major element index.
  bool is_write = false;
  std::int64_t timestep = 0;    ///< Global order of the event.
  std::int64_t execution = 0;   ///< Tasklet-execution instance id.
  ir::NodeId tasklet = ir::kNoNode;  ///< Originating tasklet (or copy).
};

/// Structure-of-arrays event storage. Metric passes touch only the
/// columns they need (stack distance reads container+flat: 12 B/event
/// instead of the 48 B padded AoS struct), and a column never pulls its
/// neighbors into cache. The container interface mirrors
/// std::vector<AccessEvent> — size/reserve/push_back/operator[]/range-for
/// — so pre-SoA call sites compile unchanged; operator[] and the
/// iterator gather an AccessEvent by value.
class EventList {
 public:
  std::size_t size() const { return restore_ ? spilled_size_ : flat_.size(); }
  bool empty() const { return size() == 0; }

  void reserve(std::size_t n) {
    fault_in();
    container_.reserve(n);
    flat_.reserve(n);
    is_write_.reserve(n);
    timestep_.reserve(n);
    execution_.reserve(n);
    tasklet_.reserve(n);
  }

  void clear() {
    // Dropping a spilled list never decodes it: the restore hook (and
    // with it the backing file) is released along with the columns.
    restore_ = nullptr;
    spilled_size_ = 0;
    container_.clear();
    flat_.clear();
    is_write_.clear();
    timestep_.clear();
    execution_.clear();
    tasklet_.clear();
  }

  void push_back(const AccessEvent& event) {
    fault_in();
    container_.push_back(event.container);
    flat_.push_back(event.flat);
    is_write_.push_back(event.is_write ? 1 : 0);
    timestep_.push_back(event.timestep);
    execution_.push_back(event.execution);
    tasklet_.push_back(event.tasklet);
  }

  /// Sizes every column to exactly n events (new slots zero-filled).
  /// The parallel trace writer sizes the list from the plan's total ONCE,
  /// then chunks fill disjoint slices via set() — no writer ever grows
  /// the columns, so concurrent slice stores never invalidate each other.
  void resize(std::size_t n) {
    fault_in();
    container_.resize(n);
    flat_.resize(n);
    is_write_.resize(n);
    timestep_.resize(n);
    execution_.resize(n);
    tasklet_.resize(n);
  }

  /// Copies `count` events from `src` (starting at `src_begin`) into
  /// this list at `dst_begin`, adding `timestep_delta` / `execution_delta`
  /// to the copied stamps. Both lists must already be sized; the payload
  /// columns (container, flat, is_write, tasklet) are copied verbatim.
  /// This is the delta engine's clean-chunk splice: a chunk whose events
  /// are unchanged but whose position in the stream shifted is rebased
  /// with two column-wide adds instead of re-simulation.
  void assign_range(const EventList& src, std::size_t src_begin,
                    std::size_t dst_begin, std::size_t count,
                    std::int64_t timestep_delta,
                    std::int64_t execution_delta) {
    src.fault_in();
    fault_in();
    std::copy_n(src.container_.begin() + src_begin, count,
                container_.begin() + dst_begin);
    std::copy_n(src.flat_.begin() + src_begin, count,
                flat_.begin() + dst_begin);
    std::copy_n(src.is_write_.begin() + src_begin, count,
                is_write_.begin() + dst_begin);
    std::copy_n(src.tasklet_.begin() + src_begin, count,
                tasklet_.begin() + dst_begin);
    for (std::size_t i = 0; i < count; ++i) {
      timestep_[dst_begin + i] = src.timestep_[src_begin + i] + timestep_delta;
      execution_[dst_begin + i] =
          src.execution_[src_begin + i] + execution_delta;
    }
  }

  /// Overwrites event i (must be < size()). Writing DISTINCT indices
  /// from different threads is safe: each store touches only element i
  /// of each pre-sized column. (Pre-sizing via resize() also faulted a
  /// spilled list back in, so parallel writers only ever see the no-op
  /// branch of fault_in().)
  void set(std::size_t i, const AccessEvent& event) {
    fault_in();
    container_[i] = event.container;
    flat_[i] = event.flat;
    is_write_[i] = event.is_write ? 1 : 0;
    timestep_[i] = event.timestep;
    execution_[i] = event.execution;
    tasklet_[i] = event.tasklet;
  }

  AccessEvent operator[](std::size_t i) const {
    fault_in();
    AccessEvent event;
    event.container = container_[i];
    event.flat = flat_[i];
    event.is_write = is_write_[i] != 0;
    event.timestep = timestep_[i];
    event.execution = execution_[i];
    event.tasklet = tasklet_[i];
    return event;
  }

  class const_iterator {
   public:
    using iterator_category = std::random_access_iterator_tag;
    using value_type = AccessEvent;
    using difference_type = std::ptrdiff_t;
    using pointer = void;
    using reference = AccessEvent;

    const_iterator() = default;
    const_iterator(const EventList* list, std::size_t index)
        : list_(list), index_(index) {}
    AccessEvent operator*() const { return (*list_)[index_]; }
    const_iterator& operator++() { ++index_; return *this; }
    const_iterator operator++(int) { return {list_, index_++}; }
    const_iterator& operator--() { --index_; return *this; }
    const_iterator& operator+=(difference_type d) { index_ += d; return *this; }
    friend const_iterator operator+(const_iterator it, difference_type d) {
      return {it.list_, it.index_ + d};
    }
    friend difference_type operator-(const const_iterator& a,
                                     const const_iterator& b) {
      return static_cast<difference_type>(a.index_) -
             static_cast<difference_type>(b.index_);
    }
    friend bool operator==(const const_iterator& a, const const_iterator& b) {
      return a.index_ == b.index_;
    }
    friend bool operator!=(const const_iterator& a, const const_iterator& b) {
      return a.index_ != b.index_;
    }

   private:
    const EventList* list_ = nullptr;
    std::size_t index_ = 0;
  };
  const_iterator begin() const { return {this, 0}; }
  const_iterator end() const { return {this, size()}; }

  /// Column views for the hot metric passes. Accessing a column faults
  /// a spilled list back in first.
  std::span<const std::int32_t> container_column() const {
    fault_in();
    return container_;
  }
  std::span<const std::int64_t> flat_column() const {
    fault_in();
    return flat_;
  }
  std::span<const std::uint8_t> write_column() const {
    fault_in();
    return is_write_;
  }
  std::span<const std::int64_t> timestep_column() const {
    fault_in();
    return timestep_;
  }
  std::span<const std::int64_t> execution_column() const {
    fault_in();
    return execution_;
  }
  std::span<const ir::NodeId> tasklet_column() const {
    fault_in();
    return tasklet_;
  }

  /// Bytes currently RESERVED by the columns — the quantity the
  /// streaming pipeline keeps at zero (O(1)-memory contract). A spilled
  /// list reports zero: nothing is resident.
  std::size_t capacity_bytes() const {
    if (restore_) return 0;
    return container_.capacity() * sizeof(std::int32_t) +
           flat_.capacity() * sizeof(std::int64_t) +
           is_write_.capacity() * sizeof(std::uint8_t) +
           timestep_.capacity() * sizeof(std::int64_t) +
           execution_.capacity() * sizeof(std::int64_t) +
           tasklet_.capacity() * sizeof(ir::NodeId);
  }

  /// Out-of-core backing (installed by store::spill_event_list):
  /// releases the columns NOW and re-decodes them via `restore` on the
  /// next access. While spilled, size()/empty() answer from
  /// `logical_size` without faulting, capacity_bytes() reports the
  /// resident bytes (zero), and clear() discards the backing without
  /// decoding. Every other accessor faults the columns back in first.
  /// Copies share the backing (each copy restores independently);
  /// moving transfers it.
  void spill(std::size_t logical_size,
             std::function<void(EventList&)> restore) {
    container_ = {};
    flat_ = {};
    is_write_ = {};
    timestep_ = {};
    execution_ = {};
    tasklet_ = {};
    spilled_size_ = logical_size;
    restore_ = std::move(restore);
  }

  /// True while the columns live in the spill backing, not in RAM.
  bool spilled() const { return static_cast<bool>(restore_); }

  /// Faults a spilled list back in (no-op when resident). Call this
  /// EXACTLY ONCE, on the calling thread, before any fan-out that hands
  /// column spans (or set()/assign_range slices) to parallel workers:
  /// fault-in itself is not thread-safe, and every accessor assumes a
  /// resident list inside parallel regions. The metric pipeline and the
  /// delta patch phase both follow this contract before dispatching
  /// their chunk/segment workers.
  void ensure_resident() const { fault_in(); }

 private:
  /// Swaps the restore hook out before invoking it so the hook can
  /// rebuild `this` through the public interface (resize/set) without
  /// re-entering fault_in. Logically const: faulting in changes where
  /// the events live, never what they are.
  void fault_in() const {
    if (!restore_) return;
    std::function<void(EventList&)> restore = std::move(restore_);
    restore_ = nullptr;
    spilled_size_ = 0;
    restore(const_cast<EventList&>(*this));
  }

  std::vector<std::int32_t> container_;
  std::vector<std::int64_t> flat_;
  std::vector<std::uint8_t> is_write_;
  std::vector<std::int64_t> timestep_;
  std::vector<std::int64_t> execution_;
  std::vector<ir::NodeId> tasklet_;
  mutable std::function<void(EventList&)> restore_;
  mutable std::size_t spilled_size_ = 0;
};

/// Full simulated access pattern of a parameterized program.
struct AccessTrace {
  std::vector<std::string> containers;       ///< Names, index-aligned.
  std::vector<ConcreteLayout> layouts;       ///< Placed in address space.
  EventList events;                          ///< Ordered by timestep.
  std::int64_t executions = 0;               ///< Total tasklet instances.

  int container_id(const std::string& name) const;
  const ConcreteLayout& layout_of(const std::string& name) const;
};

struct SimulationOptions {
  /// Base-address alignment used when placing containers (bytes).
  std::int64_t placement_alignment = 64;
  /// Include read events for WCR (accumulating) outputs. The paper counts
  /// a WCR update as one access; keep false to match.
  bool wcr_reads = false;
  /// Use the compiled execution engine: map bounds and memlet subsets
  /// flattened to CompiledExpr over a per-state slot environment, no
  /// per-point SymbolMap copies. Produces a bit-identical trace to the
  /// interpreted engine (kept as `compiled = false` for A/B validation
  /// and the ablation benchmark).
  bool compiled = true;
  /// Generate the trace in parallel on the dmv::par pool: a planning
  /// pass (sim/trace_plan.hpp) splits top-level maps into chunks with
  /// exact precomputed event/execution offsets, and each chunk writes
  /// its disjoint EventList slice (or streams through an ordered
  /// sequencer). Output is bit-identical to serial at any thread count;
  /// automatically off at num_threads()==1, inside a pool task, or when
  /// the plan finds nothing worth splitting (see docs/simulation.md).
  bool parallel_trace = true;
  /// Lane width W of the batched compiled engine: innermost map loops
  /// whose scope is pure tasklets advance W iteration points per step
  /// and evaluate each memlet subset expression for all W lanes in one
  /// SoA pass (symbolic/batched.hpp); loop-invariant expressions are
  /// hoisted out of the innermost loop entirely. Output is bit-identical
  /// to the scalar loop at any width — including which exception fires
  /// at which iteration point, via scalar replay of faulting batches —
  /// and composes with parallel_trace (threads x lanes). 1 disables
  /// batching; values are clamped to [1, symbolic::kMaxLaneWidth].
  int lane_width = 8;
};

/// Reusable buffers for parallel trace generation (plan storage and
/// streaming chunk buffers); see sim/trace_plan.hpp. Passing one to
/// simulate_into/simulate_stream lets a sweep pay the chunk-buffer
/// allocations once instead of once per binding.
struct TraceArena;

/// Simulates every state of the SDFG under the given parameter binding
/// and returns the exact access trace (§V-C "iteration space simulation").
AccessTrace simulate(const Sdfg& sdfg, const SymbolMap& symbols,
                     const SimulationOptions& options = {});

/// Same, but (re)filling a caller-owned trace: containers/layouts/events
/// are cleared and rewritten while the event columns KEEP their
/// capacity. This is the sweep-arena entry point — one trace buffer
/// serves every slider position instead of reallocating per binding.
/// `arena` (optional) additionally reuses the parallel-generation plan
/// storage across calls.
void simulate_into(const Sdfg& sdfg, const SymbolMap& symbols,
                   const SimulationOptions& options, AccessTrace& trace,
                   TraceArena* arena = nullptr);

/// Places every container exactly as simulate() does (deterministic
/// sdfg.arrays() order, options.placement_alignment), APPENDING to
/// trace.containers / trace.layouts — callers clear first. Builds the
/// trace header the delta engine and the chunk writers need without
/// generating a single event.
void place_containers(const Sdfg& sdfg, const SymbolMap& symbols,
                      const SimulationOptions& options, AccessTrace& trace);

/// Receiver for streaming simulation: events are delivered in timestep
/// order as they are produced, and no event vector is materialized.
class EventSink {
 public:
  virtual ~EventSink() = default;
  /// Called once after container placement, before any event. `header`
  /// has containers and layouts filled and an EMPTY event list.
  virtual void on_trace_header(const AccessTrace& header) = 0;
  /// Called once per access, in timestep order.
  virtual void on_event(const AccessEvent& event) = 0;
  /// Called once after the last event.
  virtual void on_trace_end(std::int64_t executions) = 0;
};

/// Streaming simulation (§V-C at bounded event memory): identical
/// traversal to simulate(), but every event goes to `sink` instead of a
/// vector. The stream of on_event calls equals simulate()'s event
/// sequence bit for bit — including under parallel_trace, where chunks
/// are generated out of order into reusable buffers and a sequencer
/// drains them to the sink in serial chunk order. `arena` (optional)
/// reuses those chunk buffers across calls.
AccessTrace simulate_stream(const Sdfg& sdfg, const SymbolMap& symbols,
                            EventSink& sink,
                            const SimulationOptions& options = {},
                            TraceArena* arena = nullptr);

/// One-shot materialization of per-event cache-line ids plus the dense
/// line-id range each container spans, computed once per
/// (trace, line_size) and shared by every consumer that needs line ids
/// (stack distance, cache simulation, line-utilization stats) instead of
/// each pass re-deriving layout.unflatten + byte_address per event.
/// Containers are placed at non-overlapping addresses, so
/// [first_line, first_line + line_span) is a dense id range: consumers
/// can index per-line state with a flat array instead of a hash map.
struct LineTable {
  int line_size = 64;
  std::int64_t first_line = 0;  ///< Lowest line id any container spans.
  std::int64_t line_span = 0;   ///< Dense ids cover [first, first+span).
  struct ContainerRange {
    std::int64_t first = 0;  ///< First line id of the container.
    std::int64_t count = 0;  ///< Lines the container's buffer spans.
  };
  std::vector<ContainerRange> per_container;
  std::vector<std::int64_t> lines;  ///< Per-event global cache-line id.
};

LineTable build_line_table(const AccessTrace& trace, int line_size);
/// Arena variant: reuses `out.lines` capacity across sweep steps.
void build_line_table(const AccessTrace& trace, int line_size,
                      LineTable& out);

/// Per-element access counts per container; the flattened-time heatmap.
struct AccessCounts {
  /// [container][flat logical index] -> count.
  std::vector<std::vector<std::int64_t>> reads;
  std::vector<std::vector<std::int64_t>> writes;
  std::vector<std::int64_t> total(int container) const;
};
AccessCounts count_accesses(const AccessTrace& trace);

/// Related-access query (Fig 4c): accumulate, over every tasklet
/// execution that touches one of the selected elements, all accesses that
/// execution makes to OTHER containers/elements. Multiple selected
/// elements stack additively, as in the paper's click-to-stack UI.
struct Selection {
  int container = 0;
  std::vector<std::int64_t> flats;
};
AccessCounts related_accesses(const AccessTrace& trace,
                              const std::vector<Selection>& selected);

/// Stack distance (reuse distance) per event at cache-line granularity:
/// the number of DISTINCT cache lines referenced since the previous
/// reference to this event's line; kInfiniteDistance for first-ever
/// references (cold). Accessing a line "references" every element in it,
/// matching §V-E.
inline constexpr std::int64_t kInfiniteDistance =
    std::numeric_limits<std::int64_t>::max();

struct StackDistanceResult {
  int line_size = 64;
  /// Parallel to trace.events.
  std::vector<std::int64_t> distances;
};

StackDistanceResult stack_distances(const AccessTrace& trace, int line_size);
/// Same, consuming a prebuilt LineTable (no per-event address
/// re-derivation; per-line state lives in a dense array over the
/// table's line span).
StackDistanceResult stack_distances(const AccessTrace& trace,
                                    const LineTable& table);
/// Reference O(n^2) implementation (list scan), kept for validation and
/// for the algorithmic ablation benchmark.
StackDistanceResult stack_distances_naive(const AccessTrace& trace,
                                          int line_size);

/// Distance statistics per element for the Fig 5b heatmap. A value of
/// kInfiniteDistance appears for never-reused elements.
struct ElementDistanceStats {
  std::vector<std::int64_t> min;
  std::vector<std::int64_t> median;
  std::vector<std::int64_t> max;
  std::vector<std::int64_t> cold_count;  ///< Infinite-distance accesses.
};
ElementDistanceStats element_distance_stats(const AccessTrace& trace,
                                            const StackDistanceResult& result,
                                            int container);

/// All finite distances + cold count for one element or a whole
/// container, for the details-panel histogram of Fig 5b.
struct DistanceHistogram {
  std::vector<std::int64_t> distances;  ///< Finite distances, ascending.
  std::int64_t cold_misses = 0;
};
DistanceHistogram distance_histogram(const AccessTrace& trace,
                                     const StackDistanceResult& result,
                                     int container,
                                     std::int64_t flat = -1);

/// Cold/capacity miss classification from stack distances (§V-F). The
/// threshold is in cache lines: an access whose distance is >= threshold
/// is a capacity miss under LRU. Conflict misses are deliberately not
/// modeled (fully-associative assumption).
struct MissStats {
  std::int64_t cold = 0;
  std::int64_t capacity = 0;
  std::int64_t hits = 0;
  std::int64_t misses() const { return cold + capacity; }
  std::int64_t accesses() const { return cold + capacity + hits; }
};

struct MissReport {
  std::int64_t threshold_lines = 0;
  std::vector<MissStats> per_container;
  /// [container][flat] -> predicted misses for that element's accesses.
  std::vector<std::vector<std::int64_t>> element_misses;
  MissStats total;
};
MissReport classify_misses(const AccessTrace& trace,
                           const StackDistanceResult& distances,
                           std::int64_t threshold_lines);

/// Exact cache simulation used as ground truth for the §V-F assumption.
struct CacheConfig {
  int line_size = 64;
  std::int64_t total_size = 32 * 1024;
  /// Associativity; 0 = fully associative.
  int ways = 8;
};
struct CacheSimResult {
  CacheConfig config;
  std::vector<MissStats> per_container;  ///< cold vs non-cold split.
  MissStats total;
};
CacheSimResult simulate_cache(const AccessTrace& trace,
                              const CacheConfig& config);
/// Same, consuming a prebuilt LineTable. Throws std::invalid_argument if
/// table.line_size != config.line_size.
CacheSimResult simulate_cache(const AccessTrace& trace,
                              const CacheConfig& config,
                              const LineTable& table);

/// Spatial-locality statistics at tasklet-execution granularity, the
/// metric behind the Fig 8c padding step: for each execution (one stencil
/// application), how many distinct cache lines does its access
/// neighborhood on `container` touch, and what fraction of each touched
/// line's elements does the SAME execution use? Post-padding aligns rows
/// to lines, so neighborhoods stop pulling in unrelated previous-row
/// elements and utilization rises.
struct IterationLineStats {
  double mean_lines_per_execution = 0;
  /// Mean over executions of (elements accessed) / (line capacity in
  /// elements * lines touched).
  double mean_line_utilization = 0;
  std::int64_t executions = 0;
};
IterationLineStats iteration_line_stats(const AccessTrace& trace,
                                        int container, int line_size);
/// Same, consuming a prebuilt LineTable (must match line_size).
IterationLineStats iteration_line_stats(const AccessTrace& trace,
                                        int container,
                                        const LineTable& table);

/// Physical data-movement estimate (§V-F): predicted misses times line
/// size, per container and total — the refinement shown on the Fig 5c and
/// Fig 7 overlays.
struct MovementEstimate {
  int line_size = 64;
  std::vector<std::int64_t> bytes_per_container;
  std::int64_t total_bytes = 0;
};
MovementEstimate physical_movement(const AccessTrace& trace,
                                   const MissReport& report, int line_size);

/// Per-edge refinement of the GLOBAL view's movement overlay (§V-F:
/// "The resulting value can be used to refine the heatmap on the data
/// movement overlay", Fig 5c): each non-empty edge gets the physical
/// byte estimate of its container, apportioned by the edge's share of
/// that container's logical traffic. Keyed by edge index, ready for
/// GraphRenderOptions::edge_heat after normalization.
std::map<std::size_t, std::int64_t> physical_edge_bytes(
    const State& state, const AccessTrace& trace, const MissReport& report,
    const SymbolMap& symbols, int line_size);

}  // namespace dmv::sim
