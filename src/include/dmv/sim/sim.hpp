#pragma once

// Local-view simulation (paper §V).
//
// Once the user parameterizes a program region (binds its symbols to
// small concrete values), the iteration space of every map becomes
// enumerable, every memlet subset becomes evaluable, and the exact data
// access pattern of the region follows — no execution or profiling of the
// real program required. This module produces that access trace and the
// derived metrics the paper visualizes:
//
//   * per-element access counts (the flattened-time heatmap of Fig 4b),
//   * related-access queries (Fig 4c),
//   * stack/reuse distance at cache-line granularity (Fig 5b), computed
//     in O(log n) per access with a Fenwick-tree formulation of Olken's
//     algorithm,
//   * cold/capacity cache-miss classification with a user-adjustable
//     capacity threshold assuming a fully-associative LRU cache (§V-F),
//   * an exact set-associative LRU simulator used as ground truth to
//     validate that assumption,
//   * estimated physical data movement (misses x line size) that refines
//     the logical volumes of the global view (Fig 5c, Fig 7).

#include <array>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "dmv/ir/sdfg.hpp"
#include "dmv/layout/layout.hpp"
#include "dmv/symbolic/compiled.hpp"

namespace dmv::sim {

using ir::Sdfg;
using ir::State;
using layout::ConcreteLayout;
using symbolic::SymbolMap;

struct IterationSpace;

namespace detail {

/// Bounds of an IterationSpace compiled to slot-addressed form
/// (symbolic::CompiledExpr) so iteration evaluates them without map
/// lookups. Bounds independent of the space's own parameters are
/// evaluated once on first use and cached — the loop-invariant hoisting
/// that keeps tiled inner maps from re-evaluating outer-constant bounds
/// at every outer point.
class CompiledSpaceBounds {
 public:
  explicit CompiledSpaceBounds(const IterationSpace& space);

  struct Triple {
    std::int64_t begin = 0;
    std::int64_t end = 0;
    std::int64_t step = 1;
  };
  /// Evaluates dimension `dim`'s bounds under the currently bound outer
  /// parameters. Throws UnboundSymbolError / std::domain_error exactly
  /// where the symbolic evaluation would.
  Triple eval(std::size_t dim);
  /// Binds the dim's parameter for inner dimensions.
  void set_param(std::size_t dim, std::int64_t value);

 private:
  struct Dim {
    symbolic::CompiledExpr begin, end, step;
    bool invariant = false;  ///< Independent of the space's own params.
    bool cached = false;
    Triple cache;
  };
  symbolic::SymbolTable table_;
  std::vector<std::int64_t> values_;
  std::vector<char> bound_;
  std::vector<int> param_slots_;
  std::vector<Dim> dims_;
};

}  // namespace detail

/// Concrete iteration space of a map under a symbol binding. Bounds are
/// kept symbolic and evaluated per nesting level DURING iteration, with
/// outer parameters already bound — this is what lets inner ranges
/// depend on outer parameters, as tiled maps produce (e.g. the inner
/// range [i_tile*8 : i_tile*8 + 7] of transforms::tile_map). Iteration
/// compiles the bounds once (slot-addressed evaluation, invariant
/// hoisting) instead of re-evaluating Expr trees per point.
struct IterationSpace {
  std::vector<std::string> params;
  std::vector<ir::Range> ranges;  ///< Symbolic, inclusive ends.
  SymbolMap base;                 ///< The binding iteration starts from.

  /// Number of points. Computed arithmetically from the evaluated bounds
  /// when no range depends on the space's own parameters; falls back to
  /// enumeration for dependent (e.g. triangular or tiled) ranges.
  std::int64_t size() const;
  /// Calls fn(std::span<const int64_t> values) for every point, outer
  /// parameter slowest (lexicographic order).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    detail::CompiledSpaceBounds bounds(*this);
    std::vector<std::int64_t> values(params.size());
    iterate(0, values, bounds, fn);
  }

  static IterationSpace from(const ir::MapInfo& info,
                             const SymbolMap& symbols);

 private:
  template <typename Fn>
  void iterate(std::size_t dim, std::vector<std::int64_t>& values,
               detail::CompiledSpaceBounds& bounds, Fn&& fn) const {
    if (dim == params.size()) {
      fn(std::span<const std::int64_t>(values));
      return;
    }
    const auto [begin, end, step] = bounds.eval(dim);
    if (step <= 0) {
      throw std::invalid_argument("IterationSpace: non-positive step");
    }
    for (std::int64_t v = begin; v <= end; v += step) {
      values[dim] = v;
      bounds.set_param(dim, v);
      iterate(dim + 1, values, bounds, fn);
    }
  }
};

/// One element-granularity access in the simulated execution.
struct AccessEvent {
  std::int32_t container = 0;   ///< Index into AccessTrace::layouts.
  std::int64_t flat = 0;        ///< Logical row-major element index.
  bool is_write = false;
  std::int64_t timestep = 0;    ///< Global order of the event.
  std::int64_t execution = 0;   ///< Tasklet-execution instance id.
  ir::NodeId tasklet = ir::kNoNode;  ///< Originating tasklet (or copy).
};

/// Full simulated access pattern of a parameterized program.
struct AccessTrace {
  std::vector<std::string> containers;       ///< Names, index-aligned.
  std::vector<ConcreteLayout> layouts;       ///< Placed in address space.
  std::vector<AccessEvent> events;           ///< Ordered by timestep.
  std::int64_t executions = 0;               ///< Total tasklet instances.

  int container_id(const std::string& name) const;
  const ConcreteLayout& layout_of(const std::string& name) const;
};

struct SimulationOptions {
  /// Base-address alignment used when placing containers (bytes).
  std::int64_t placement_alignment = 64;
  /// Include read events for WCR (accumulating) outputs. The paper counts
  /// a WCR update as one access; keep false to match.
  bool wcr_reads = false;
  /// Use the compiled execution engine: map bounds and memlet subsets
  /// flattened to CompiledExpr over a per-state slot environment, no
  /// per-point SymbolMap copies. Produces a bit-identical trace to the
  /// interpreted engine (kept as `compiled = false` for A/B validation
  /// and the ablation benchmark).
  bool compiled = true;
};

/// Simulates every state of the SDFG under the given parameter binding
/// and returns the exact access trace (§V-C "iteration space simulation").
AccessTrace simulate(const Sdfg& sdfg, const SymbolMap& symbols,
                     const SimulationOptions& options = {});

/// Per-element access counts per container; the flattened-time heatmap.
struct AccessCounts {
  /// [container][flat logical index] -> count.
  std::vector<std::vector<std::int64_t>> reads;
  std::vector<std::vector<std::int64_t>> writes;
  std::vector<std::int64_t> total(int container) const;
};
AccessCounts count_accesses(const AccessTrace& trace);

/// Related-access query (Fig 4c): accumulate, over every tasklet
/// execution that touches one of the selected elements, all accesses that
/// execution makes to OTHER containers/elements. Multiple selected
/// elements stack additively, as in the paper's click-to-stack UI.
struct Selection {
  int container = 0;
  std::vector<std::int64_t> flats;
};
AccessCounts related_accesses(const AccessTrace& trace,
                              const std::vector<Selection>& selected);

/// Stack distance (reuse distance) per event at cache-line granularity:
/// the number of DISTINCT cache lines referenced since the previous
/// reference to this event's line; kInfiniteDistance for first-ever
/// references (cold). Accessing a line "references" every element in it,
/// matching §V-E.
inline constexpr std::int64_t kInfiniteDistance =
    std::numeric_limits<std::int64_t>::max();

struct StackDistanceResult {
  int line_size = 64;
  /// Parallel to trace.events.
  std::vector<std::int64_t> distances;
};

StackDistanceResult stack_distances(const AccessTrace& trace, int line_size);
/// Reference O(n^2) implementation (list scan), kept for validation and
/// for the algorithmic ablation benchmark.
StackDistanceResult stack_distances_naive(const AccessTrace& trace,
                                          int line_size);

/// Distance statistics per element for the Fig 5b heatmap. A value of
/// kInfiniteDistance appears for never-reused elements.
struct ElementDistanceStats {
  std::vector<std::int64_t> min;
  std::vector<std::int64_t> median;
  std::vector<std::int64_t> max;
  std::vector<std::int64_t> cold_count;  ///< Infinite-distance accesses.
};
ElementDistanceStats element_distance_stats(const AccessTrace& trace,
                                            const StackDistanceResult& result,
                                            int container);

/// All finite distances + cold count for one element or a whole
/// container, for the details-panel histogram of Fig 5b.
struct DistanceHistogram {
  std::vector<std::int64_t> distances;  ///< Finite distances, ascending.
  std::int64_t cold_misses = 0;
};
DistanceHistogram distance_histogram(const AccessTrace& trace,
                                     const StackDistanceResult& result,
                                     int container,
                                     std::int64_t flat = -1);

/// Cold/capacity miss classification from stack distances (§V-F). The
/// threshold is in cache lines: an access whose distance is >= threshold
/// is a capacity miss under LRU. Conflict misses are deliberately not
/// modeled (fully-associative assumption).
struct MissStats {
  std::int64_t cold = 0;
  std::int64_t capacity = 0;
  std::int64_t hits = 0;
  std::int64_t misses() const { return cold + capacity; }
  std::int64_t accesses() const { return cold + capacity + hits; }
};

struct MissReport {
  std::int64_t threshold_lines = 0;
  std::vector<MissStats> per_container;
  /// [container][flat] -> predicted misses for that element's accesses.
  std::vector<std::vector<std::int64_t>> element_misses;
  MissStats total;
};
MissReport classify_misses(const AccessTrace& trace,
                           const StackDistanceResult& distances,
                           std::int64_t threshold_lines);

/// Exact cache simulation used as ground truth for the §V-F assumption.
struct CacheConfig {
  int line_size = 64;
  std::int64_t total_size = 32 * 1024;
  /// Associativity; 0 = fully associative.
  int ways = 8;
};
struct CacheSimResult {
  CacheConfig config;
  std::vector<MissStats> per_container;  ///< cold vs non-cold split.
  MissStats total;
};
CacheSimResult simulate_cache(const AccessTrace& trace,
                              const CacheConfig& config);

/// Spatial-locality statistics at tasklet-execution granularity, the
/// metric behind the Fig 8c padding step: for each execution (one stencil
/// application), how many distinct cache lines does its access
/// neighborhood on `container` touch, and what fraction of each touched
/// line's elements does the SAME execution use? Post-padding aligns rows
/// to lines, so neighborhoods stop pulling in unrelated previous-row
/// elements and utilization rises.
struct IterationLineStats {
  double mean_lines_per_execution = 0;
  /// Mean over executions of (elements accessed) / (line capacity in
  /// elements * lines touched).
  double mean_line_utilization = 0;
  std::int64_t executions = 0;
};
IterationLineStats iteration_line_stats(const AccessTrace& trace,
                                        int container, int line_size);

/// Physical data-movement estimate (§V-F): predicted misses times line
/// size, per container and total — the refinement shown on the Fig 5c and
/// Fig 7 overlays.
struct MovementEstimate {
  int line_size = 64;
  std::vector<std::int64_t> bytes_per_container;
  std::int64_t total_bytes = 0;
};
MovementEstimate physical_movement(const AccessTrace& trace,
                                   const MissReport& report, int line_size);

/// Per-edge refinement of the GLOBAL view's movement overlay (§V-F:
/// "The resulting value can be used to refine the heatmap on the data
/// movement overlay", Fig 5c): each non-empty edge gets the physical
/// byte estimate of its container, apportioned by the edge's share of
/// that container's logical traffic. Keyed by edge index, ready for
/// GraphRenderOptions::edge_heat after normalization.
std::map<std::size_t, std::int64_t> physical_edge_bytes(
    const State& state, const AccessTrace& trace, const MissReport& report,
    const SymbolMap& symbols, int line_size);

}  // namespace dmv::sim
