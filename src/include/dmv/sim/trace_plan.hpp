#pragma once

// Deterministic chunk planning for parallel trace generation.
//
// The simulator's event stream is fully determined by the SDFG and the
// symbol binding: every top-level map's iteration counts and every
// tasklet/copy's per-iteration memlet event count are exactly computable
// BEFORE generation. plan_trace() exploits that to split the trace into
// contiguous chunks — one or more per top-level map (sliced along the
// outermost dimension), one per top-level tasklet or copy — each with a
// precomputed (event_offset, event_count, execution_offset,
// execution_count). Because the simulator stamps `timestep` with the
// global event index, event_offset doubles as the chunk's timestep base.
//
// With the plan in hand, generation parallelizes without stitching or
// locks: the EventList is sized to total_events once, and each chunk's
// Simulator clone writes its disjoint column slice (materialized path)
// or fills a reusable buffer drained in chunk order by a sequencer
// (streaming path). Either way the output is bit-identical to serial at
// any thread count. See docs/simulation.md for the full safety argument.
//
// Planning is exact, not estimated: an analytic fast path multiplies
// iteration-count products by per-iteration event counts when extents
// are invariant in the map's own parameters, and falls back to
// enumerating dependent (triangular/tiled) dimensions. Anything the
// planner cannot model exactly — non-positive steps, unbound symbols,
// copy size mismatches — marks the plan non-parallelizable and the
// caller runs the serial engine, which surfaces the identical error
// behavior.

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "dmv/sim/sim.hpp"

namespace dmv::sim {

/// One contiguous slice of the serial event stream.
struct TraceChunk {
  int state = 0;                  ///< Index into sdfg.states().
  ir::NodeId node = ir::kNoNode;  ///< Top-level map entry/tasklet/access.
  /// For map chunks: the half-open range of outermost-dimension ORDINALS
  /// this chunk executes (value = begin + ordinal*step). Serial chunks
  /// (tasklet/copy) use [0, 1).
  std::int64_t outer_begin = 0;
  std::int64_t outer_count = 0;
  /// Position of the chunk's events in the serial stream. event_offset
  /// is also the chunk's first timestep (timestep == global event index).
  std::int64_t event_offset = 0;
  std::int64_t event_count = 0;
  /// Position of the chunk's tasklet-execution ids.
  std::int64_t execution_offset = 0;
  std::int64_t execution_count = 0;
};

struct TracePlan {
  /// False when any part of the program could not be modeled exactly;
  /// the caller must fall back to serial generation.
  bool parallelizable = false;
  std::int64_t total_events = 0;
  std::int64_t total_executions = 0;
  /// Chunks in serial emission order; offsets are contiguous.
  std::vector<TraceChunk> chunks;
};

/// Computes the exact chunk decomposition of simulate()'s event stream
/// under `symbols`. Top-level maps are split along their outermost
/// dimension into at most `max_chunks_per_map` pieces balanced by event
/// count (0 = derive from dmv::par::num_threads()). Never throws: any
/// modeling failure yields parallelizable == false.
TracePlan plan_trace(const Sdfg& sdfg, const SymbolMap& symbols,
                     const SimulationOptions& options,
                     int max_chunks_per_map = 0);

/// Arena variant reusing `plan.chunks` capacity across sweep steps.
void plan_trace_into(const Sdfg& sdfg, const SymbolMap& symbols,
                     const SimulationOptions& options, int max_chunks_per_map,
                     TracePlan& plan);

/// Reusable parallel-generation state, kept alongside the sweep arena so
/// a slider sweep pays the allocations once (sim.hpp forward-declares
/// this for the simulate_into/simulate_stream parameters).
struct TraceArena {
  TracePlan plan;
  /// Streaming sequencer ring: chunk c fills buffers[c % window].
  std::vector<EventList> chunk_buffers;

  std::size_t buffer_bytes() const {
    std::size_t total = 0;
    for (const EventList& buffer : chunk_buffers) {
      total += buffer.capacity_bytes();
    }
    return total;
  }
};

/// Generates exactly `chunk` of a plan for this (sdfg, symbols, options)
/// triple, appending its events — with absolute timestep/execution
/// stamps — to `out`. `header` supplies the placed container layouts
/// (any trace returned by simulate/simulate_stream for the same binding
/// and options). This is the streaming producers' worker and the test
/// hook that validates a plan chunk-by-chunk against serial emission.
/// Throws std::logic_error if the chunk's generated event or execution
/// count disagrees with the plan.
void simulate_chunk(const Sdfg& sdfg, const SymbolMap& symbols,
                    const SimulationOptions& options,
                    const AccessTrace& header, const TraceChunk& chunk,
                    EventList& out);

/// Placement-mode variant: when `absolute`, `out` must be pre-sized to
/// the plan's total and the chunk's events are written AT their absolute
/// [event_offset, event_offset + event_count) slice indices (the
/// delta-recomputation engine's dirty-chunk writer); otherwise appends,
/// exactly like the overload above.
void simulate_chunk(const Sdfg& sdfg, const SymbolMap& symbols,
                    const SimulationOptions& options,
                    const AccessTrace& header, const TraceChunk& chunk,
                    EventList& out, bool absolute);

/// Dependency symbol set of each chunk, index-aligned with plan.chunks:
/// the declared program symbols that can change the chunk's event
/// PAYLOAD (container / flat / is_write columns) while the plan shape
/// stays fixed. Per chunk this is a conservative superset of the free
/// symbols of
///   * the chunk scope's map range expressions — excluding the already-
///     chunked outermost dimension's END bound, whose changes can only
///     add or remove outer ordinals and therefore always surface as a
///     plan-shape difference (chunk counts/offsets change);
///   * every EVENT-GENERATING memlet subset inside the scope — tasklet
///     reads/writes and access-to-access copies (with other_subset).
///     Map-boundary routing memlets never emit events and are excluded;
///   * strides / start offset of every container the scope references
///     (they determine the flat indices). Container SHAPE is excluded:
///     for an in-bounds program it only sizes the placed buffer, which
///     is a metric-layer (layout) concern, not an event-payload one.
/// A chunk whose dependency set is disjoint from a binding delta emits a
/// byte-identical event slice under the new binding — the CLEAN
/// classification of the delta engine. Chunks of the same top-level node
/// share one set.
std::vector<std::set<std::string>> chunk_dependencies(const Sdfg& sdfg,
                                                      const TracePlan& plan);

}  // namespace dmv::sim
