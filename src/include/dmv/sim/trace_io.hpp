#pragma once

// Access-trace serialization (paper §VIII-d).
//
// The Discussion notes that for dynamic or irregular programs — where
// the small-scale simulation cannot derive accesses statically — "the
// global and local visualization techniques ... can similarly be used to
// analyze and explore traditional instrumentation data". This module is
// that path: traces recorded by an external tool (Pin, perf mem, a
// hand-instrumented app) can be imported in a simple CSV format and then
// flow through the SAME stack — access counts, reuse distances, miss
// classification, movement estimates, renderers — as simulated traces.
// Simulated traces export to the same format for archival and diffing.
//
// Format (line oriented):
//   dmvtrace 1
//   container <name> <element_size> <base_address> <shape...> ; <strides...>
//   ...one line per container...
//   events
//   <timestep> <container_index> <flat_index> <r|w> <execution> <tasklet>
//   ...

#include <iosfwd>
#include <string>

#include "dmv/sim/sim.hpp"

namespace dmv::sim {

/// Writes the trace; throws on stream failure.
void write_trace(const AccessTrace& trace, std::ostream& out);
std::string trace_to_string(const AccessTrace& trace);

/// Parses a trace; throws std::runtime_error with a line number on
/// malformed input.
AccessTrace read_trace(std::istream& in);
AccessTrace trace_from_string(const std::string& text);

}  // namespace dmv::sim
