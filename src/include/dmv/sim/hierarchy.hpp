#pragma once

// Multi-level cache hierarchy backend (paper §VIII-a).
//
// The paper's §V-F estimator is a single general-purpose model and the
// Discussion explicitly invites "different, more hardware-specific
// back-ends ... while leveraging the same visual exploration and
// analysis methods". This module provides such a backend: an inclusive
// multi-level LRU hierarchy (e.g. L1 + L2 + L3) simulated exactly over an
// AccessTrace. Per-level hit/miss statistics convert into per-level
// physical traffic, refining the single-level movement estimate of
// sim::physical_movement into a bandwidth breakdown per memory level.

#include <string>
#include <vector>

#include "dmv/sim/sim.hpp"

namespace dmv::sim {

/// Geometry of one cache level.
struct CacheLevel {
  std::string name = "L1";
  std::int64_t total_size = 32 * 1024;
  int ways = 8;  ///< 0 = fully associative.
};

struct HierarchyConfig {
  int line_size = 64;
  /// Ordered from closest to the core (L1 first). Must not be empty;
  /// sizes should be non-decreasing (validated).
  std::vector<CacheLevel> levels;

  /// A typical three-level desktop hierarchy scaled by `divisor` —
  /// matching the paper's advice to scale the model with the
  /// parameterized problem size (§V-F b).
  static HierarchyConfig typical(std::int64_t divisor = 1);
};

/// Per-level outcome counts. An access "reaches" level k if it missed
/// levels 0..k-1; `hits[k]` counts accesses satisfied at level k, and
/// accesses missing the last level go to memory.
struct HierarchyResult {
  HierarchyConfig config;
  /// hits[level][container]; level-major.
  std::vector<std::vector<std::int64_t>> hits;
  /// Accesses that missed every level, per container.
  std::vector<std::int64_t> memory_accesses;
  std::vector<std::string> containers;

  std::int64_t total_hits(int level) const;
  std::int64_t total_memory_accesses() const;
  /// Bytes transferred INTO level `level` from the level below it (or
  /// from memory for the last level): misses at `level` times line size.
  std::int64_t bytes_into_level(int level) const;
};

/// Exact inclusive LRU simulation of the hierarchy over the trace.
HierarchyResult simulate_hierarchy(const AccessTrace& trace,
                                   const HierarchyConfig& config);

}  // namespace dmv::sim
