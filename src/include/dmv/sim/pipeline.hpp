#pragma once

// Fused streaming metric pipeline.
//
// The interactive loop recomputes EVERY derived metric per slider
// position. Run as separate passes, each metric re-walks the event
// vector and several re-derive cache-line ids from scratch; the sweep
// also reallocates every trace buffer, Fenwick tree, and per-element
// scratch array at every binding. MetricPipeline fuses the per-event
// metric consumers (access counts, stack distances, miss
// classification, exact cache simulation, element distance stats,
// physical movement) into ONE pass over the trace that derives each
// event's cache line once, and keeps all working memory in an arena
// that survives across bindings of a sweep.
//
// Two drive modes:
//   * materialized — run over an AccessTrace (existing or simulated
//     into the arena's reusable trace buffer);
//   * streaming — simulate() feeds the consumers directly through an
//     EventSink, so no event vector is ever allocated: event-storage
//     memory is O(1) in trace length. Sweep workloads that never
//     inspect the raw trace use this mode.
//
// Bit-identical contract: every output equals the corresponding
// standalone pass (count_accesses, stack_distances, classify_misses,
// element_distance_stats, simulate_cache, physical_movement) bit for
// bit, in both modes, at any thread count. The fusion is a pure
// performance change — enforced by pipeline_test and the CI ablation
// smoke job.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dmv/sim/sim.hpp"

namespace dmv::sim {

/// Which consumers the fused pass drives. Distances are computed
/// whenever any consumer needs them (misses, element stats, movement,
/// or keep_distances).
struct PipelineConfig {
  int line_size = 64;
  /// Per-element read/write counts (count_accesses).
  bool counts = true;
  /// Cold/capacity classification at this LRU threshold (in lines);
  /// 0 disables (classify_misses).
  std::int64_t miss_threshold_lines = 0;
  /// Store the per-event distance vector (O(events) memory — leave off
  /// in streaming mode unless the raw distances are needed).
  bool keep_distances = false;
  /// Per-container ElementDistanceStats (element_distance_stats).
  bool element_stats = false;
  /// Exact set-associative LRU simulation (simulate_cache).
  std::optional<CacheConfig> cache;
  /// Physical movement estimate; requires miss_threshold_lines > 0
  /// (physical_movement).
  bool movement = false;
  /// Drive materialized runs through the mergeable parallel metric
  /// engine (partitioned cache sets, two-phase stack distances,
  /// per-segment consumer partials). Results are bit-identical to the
  /// serial fused pass, so — like SimulationOptions::parallel_trace —
  /// this is a pure execution strategy: NOT part of fingerprint() and
  /// never in cache keys. The serial pass remains the fallback (and the
  /// identity reference) whenever the engine cannot run.
  bool parallel_metrics = true;
  /// Below this many events the serial fused pass runs even with
  /// parallel_metrics set (engine setup outweighs the win). Tests and
  /// benches set 0 to force the engine. Also excluded from
  /// fingerprint().
  std::int64_t parallel_metrics_min_events = 8192;

  bool needs_distances() const {
    return miss_threshold_lines > 0 || keep_distances || element_stats ||
           movement;
  }
};

/// Outputs of one fused pass. Only the consumers enabled in the config
/// are populated; the rest stay default-constructed. The result owns
/// its payload (no aliasing into pipeline arenas) — safe to retain,
/// share, and cache beyond the pipeline's lifetime.
struct PipelineResult {
  std::int64_t events = 0;
  std::int64_t executions = 0;
  /// Container names, index-aligned with every per-container vector
  /// below — lets consumers resolve names without holding the trace.
  std::vector<std::string> containers;
  /// Index of a named container, or -1 when absent.
  int container_index(const std::string& name) const;
  AccessCounts counts;
  StackDistanceResult distances;
  MissReport misses;
  std::vector<ElementDistanceStats> element_stats;  ///< Per container.
  CacheSimResult cache;
  MovementEstimate movement;
};

/// How run_delta() satisfied one step — the observability record of the
/// delta recomputation engine (surfaced through session::SessionStats
/// and the bench harness).
struct DeltaOutcome {
  enum class Path {
    kCold,        ///< Full simulate + full metric replay.
    kNoChange,    ///< Binding identical to the checkpoint; result reused.
    kChunkDelta,  ///< Clean chunks spliced, dirty chunks re-simulated.
  };
  Path path = Path::kCold;
  /// Chunk-delta only: true when the metric state was RESUMED from the
  /// checkpoint (append-only step) instead of replayed from event 0.
  bool resumed = false;
  std::int64_t chunks_total = 0;
  std::int64_t chunks_clean = 0;
  std::int64_t chunks_dirty = 0;
  /// Why the engine fell back to kCold (static string, never null).
  const char* reason = "";
};

/// Wall-clock breakdown of the most recent run/run_streaming/run_delta
/// call — observability only (surfaced through session::SessionStats
/// and dmv_serve `stats`), never part of a result or cache key.
struct PhaseTimings {
  /// Trace generation / patching ms (0 for run(trace); for the fused
  /// generation+metrics path this covers the overlapped chunk stage,
  /// including per-chunk line derivation; run_streaming interleaves
  /// generation and consumption, so its whole cost lands here).
  double simulate_ms = 0.0;
  /// Metric consumption + finalize ms.
  double metrics_ms = 0.0;
  /// Largest metric worker-partition count used (1 = serial fused pass).
  int partitions = 1;
};

/// Stable 64-bit fingerprint of a config, folding in every field that
/// can change an output. Two configs with equal fingerprints produce
/// identical results for the same trace; the session layer uses it as
/// the metric-config component of its cache keys. parallel_metrics and
/// parallel_metrics_min_events are deliberately excluded — they are
/// bit-identical execution strategies.
std::uint64_t fingerprint(const PipelineConfig& config);

/// Approximate heap footprint of a result's payload (vectors; the
/// struct itself excluded). Used for cache byte budgeting — an estimate,
/// not an allocator-exact measurement.
std::size_t approx_size_bytes(const PipelineResult& result);

/// Drives every enabled metric in one fused pass over a trace.
///
/// Ownership: the pipeline owns an internal arena (trace buffer, line
/// tables, Fenwick tree, per-element scratch) that persists across run
/// calls — that reuse is the point. Returned PipelineResults own their
/// payload outright and never alias the arena; they stay valid after the
/// pipeline is destroyed.
///
/// Thread safety: a MetricPipeline is NOT thread-safe — run/run_streaming/
/// run_sweep mutate the shared arena, so give each concurrent caller its
/// own instance (the session prefetcher keeps one per pool slot). Calls
/// are internally serial; results are bit-identical at any
/// dmv::par::num_threads() setting.
class MetricPipeline {
 public:
  explicit MetricPipeline(PipelineConfig config = {});
  ~MetricPipeline();
  MetricPipeline(MetricPipeline&&) noexcept;
  MetricPipeline& operator=(MetricPipeline&&) noexcept;
  MetricPipeline(const MetricPipeline&) = delete;
  MetricPipeline& operator=(const MetricPipeline&) = delete;

  const PipelineConfig& config() const { return config_; }

  /// Fused single pass over an existing trace. The LineTable and all
  /// per-line/per-element scratch come from the arena (reused across
  /// calls).
  PipelineResult run(const AccessTrace& trace);

  /// Simulates into the arena's reusable trace buffer, then runs the
  /// fused pass. One binding of a materialized sweep.
  PipelineResult run(const Sdfg& sdfg, const SymbolMap& symbols,
                     const SimulationOptions& options = {});

  /// Delta recomputation: bit-identical to run(sdfg, symbols, options)
  /// but reuses the previous call's checkpoint when only `symbols`
  /// changed. The engine plans the trace at fine fixed granularity,
  /// classifies each chunk clean/dirty against the binding delta
  /// (chunk_dependencies), splices clean event slices from the
  /// checkpointed trace, re-simulates only dirty chunks, and patches the
  /// fused metric state — resuming it in place for append-only steps.
  /// `program_version` is the caller's fingerprint of the Sdfg structure
  /// (the session layer passes its program hash); a mismatch, an options
  /// change, or an unparallelizable plan falls back to the cold path.
  /// Interleaving run()/run_streaming() calls invalidates the
  /// checkpoint. Outcome reporting via `outcome` is optional.
  PipelineResult run_delta(const Sdfg& sdfg, std::uint64_t program_version,
                           const SymbolMap& symbols,
                           const SimulationOptions& options = {},
                           DeltaOutcome* outcome = nullptr);

  /// Streaming: the simulator feeds the fused consumers event by event;
  /// no event vector (and no LineTable column) is allocated —
  /// event_storage_bytes() stays 0.
  PipelineResult run_streaming(const Sdfg& sdfg, const SymbolMap& symbols,
                               const SimulationOptions& options = {});

  /// Slider sweep: one result per value, binding `symbol` on top of
  /// `base`. Every arena buffer is reused across steps.
  std::vector<PipelineResult> run_sweep(
      const Sdfg& sdfg, const SymbolMap& base, const std::string& symbol,
      const std::vector<std::int64_t>& values, bool streaming = true,
      const SimulationOptions& options = {});

  /// Bytes reserved by the arena's event columns: >0 after a
  /// materialized run, exactly 0 after streaming-only use — the
  /// O(1)-event-memory contract the streaming test asserts.
  std::size_t event_storage_bytes() const;

  /// Out-of-core mode: after each materialized run whose arena event
  /// columns exceed `budget_bytes`, they are packed to a compressed
  /// store file under `dir` (store::spill_event_list) and released; the
  /// next access — e.g. the delta engine splicing against the
  /// checkpoint — faults them back. budget_bytes == 0 (the default)
  /// disables spilling. The store round trip is exact, so results are
  /// bit-identical with spilling on or off; this knob is therefore NOT
  /// part of fingerprint() and never enters cache keys.
  void set_spill(std::size_t budget_bytes, std::string dir);

  /// Phase breakdown of the most recent run/run_streaming/run_delta
  /// call (see PhaseTimings).
  const PhaseTimings& last_timings() const { return timings_; }

 private:
  PipelineConfig config_;
  struct Arena;
  std::unique_ptr<Arena> arena_;
  std::size_t spill_budget_bytes_ = 0;
  std::string spill_dir_;
  PhaseTimings timings_;

  bool try_run_mergeable(const AccessTrace& trace, PipelineResult& result,
                         int& partitions);
  bool try_run_fused_generation(const Sdfg& sdfg, const SymbolMap& symbols,
                                const SimulationOptions& options,
                                PipelineResult& result);
  void maybe_spill();
};

}  // namespace dmv::sim
