#pragma once

// Persistent artifact storage — the disk tier behind
// session::SharedArtifactCache, plus the binary codec for the metrics
// bundle (sim::PipelineResult) the serving layer persists.
//
// One file per artifact under the cache directory, named by the 64-bit
// FNV-1a hash of the canonical key encoding (16 hex digits + ".dmva").
// Each file embeds the FULL canonical key and an FNV-1a checksum over
// key + payload ("DMVA" v1):
//
//   magic "DMVA" | u32 version | u64 key_size | key bytes |
//   u64 payload_size | payload bytes | u64 checksum
//
// so a filename hash collision decodes as a key mismatch (a miss, never
// a wrong artifact) and a corrupt or truncated file is detected,
// deleted, and re-treated as a miss — the recovery story is "recompute
// and overwrite", never "serve garbage". Writes go through a temp file
// + rename, so concurrent processes sharing a directory never observe
// partial files. Artifact keys hash process-independently (program
// content hash, config fingerprint, restricted binding values), which
// is what makes warm starts across restarts work at all.
//
// docs/storage.md covers the lifecycle (population, eviction by oldest
// mtime past the byte budget, corruption recovery); docs/serving.md
// covers the ops side (--cache-dir).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "dmv/session/artifact_cache.hpp"
#include "dmv/sim/pipeline.hpp"

namespace dmv::store {

inline constexpr std::uint32_t kArtifactFormatVersion = 1;

/// Canonical byte encoding of an ArtifactKey (kind, aux, program hash,
/// config hash, sorted binding). Stable across processes and hosts —
/// both the disk filename hash and the embedded key-equality check are
/// computed over these bytes.
std::string encode_artifact_key(const session::ArtifactKey& key);

/// FNV-1a 64 over encode_artifact_key(key) — the disk filename stem.
std::uint64_t artifact_key_hash64(const session::ArtifactKey& key);

class DiskArtifactCache {
 public:
  struct Config {
    std::string dir;
    /// Oldest-mtime files are evicted once the directory exceeds this.
    std::size_t budget_bytes = std::size_t{1} << 30;
  };

  struct Stats {
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t writes = 0;
    std::int64_t dropped_corrupt = 0;  ///< Files deleted on bad checksum.
    std::size_t bytes = 0;             ///< Current bytes on disk.
    std::size_t files = 0;             ///< Current artifact files.
  };

  /// Creates the directory if missing and scans existing artifacts for
  /// byte accounting (a warm directory from a previous process).
  explicit DiskArtifactCache(Config config);

  /// Reads the artifact stored under `key` into `payload_out`. Returns
  /// false (a miss) when there is no file, the file is corrupt (then
  /// also deletes it), or the embedded key differs (filename-hash
  /// collision).
  bool load(const session::ArtifactKey& key, std::string& payload_out);

  /// Persists `payload` under `key`, overwriting any previous version,
  /// then evicts oldest files while over budget (the fresh file is
  /// exempt, mirroring the RAM tiers' newest-entry exemption).
  void store(const session::ArtifactKey& key, std::string_view payload);

  /// Presence probe by filename only — no key verification, so a
  /// filename-hash collision can answer true; load() is the truth.
  bool contains(const session::ArtifactKey& key) const;

  Stats stats() const;

 private:
  std::string path_for(const session::ArtifactKey& key) const;
  void evict_locked(const std::string& keep_path);

  Config config_;
  mutable std::mutex mutex_;
  Stats stats_;
};

/// Exact binary round trip for the metrics bundle: every field of
/// PipelineResult is integral, so decode(encode(r)) == r bit for bit
/// and serve-layer checksums are stable across a disk round trip.
std::string encode_pipeline_result(const sim::PipelineResult& result);

/// Null when `bytes` is not a valid encoding (wrong magic/version,
/// truncation, checksum mismatch).
std::shared_ptr<const sim::PipelineResult> decode_pipeline_result(
    const std::string& bytes);

/// The (kind = session::metrics_artifact_kind()) codec registration for
/// SharedArtifactCache::Config::codecs.
session::ArtifactCodec pipeline_result_codec();

}  // namespace dmv::store
