#pragma once

// Out-of-core columnar trace store: a compressed, memory-mappable,
// versioned on-disk format for `EventList` columns ("DMVS" v1).
//
// Layout (all integers little-endian):
//
//   magic "DMVS" | u32 version | u64 file_bytes | i64 total_events |
//   i64 executions | u32 container_count | u32 chunk_count |
//   container table | chunk directory | chunk payloads
//
// The container table carries the full `ConcreteLayout` of every
// container (name, rank, shape, strides, element size, start offset,
// base address) so a packed file is self-describing. The chunk
// directory holds one fixed 56-byte record per chunk — event offset /
// count and execution offset / count (the exact offsets `sim::trace_plan`
// computes when a plan is supplied), plus the absolute payload offset,
// payload size, and an FNV-1a checksum over the chunk's *decoded*
// values. Random re-reads seek the directory and decode only the
// chunks they touch; nothing before a payload needs to be scanned.
//
// Per-column chunk encoding (six sections per chunk, fixed order:
// container, flat, is_write, timestep, execution, tasklet):
//   kConst  — arithmetic sequence, stored as (base, delta). The
//             timestep column is the global event index, so under the
//             streaming contract it packs to 16 bytes per chunk.
//   kPacked — first value + zigzag-encoded wrapping deltas, bit-packed
//             at the minimal width for the chunk.
//   kDict   — sorted dictionary + bit-packed indices (container and
//             tasklet ids draw from tiny alphabets).
//   kBitset — one bit per event (is_write).
//
// Determinism contract: chunks are encoded in parallel over `dmv::par`
// into private buffers and assembled serially, so the packed bytes are
// identical at any thread count; decoding writes disjoint absolute
// slices, so a decoded trace is byte-identical to the in-RAM original
// at any (thread, lane) combination. docs/storage.md specifies the
// format; tests/store_test.cpp holds the identity and robustness
// matrix.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dmv/sim/sim.hpp"
#include "dmv/sim/trace_plan.hpp"

namespace dmv::store {

inline constexpr std::uint32_t kTraceFormatVersion = 1;

struct StoreOptions {
  /// Target events per chunk when no trace plan is supplied (and the
  /// split threshold for oversized plan chunks). Smaller chunks decode
  /// with finer granularity; larger chunks compress slightly better.
  std::int64_t chunk_events = std::int64_t{1} << 16;
};

/// One chunk directory entry. `event_offset`/`execution_offset` are
/// absolute positions in the original trace — the same offsets
/// `sim::TraceChunk` carries — so consumers can address events and
/// executions without decoding preceding chunks.
struct ChunkInfo {
  std::int64_t event_offset = 0;
  std::int64_t event_count = 0;
  std::int64_t execution_offset = 0;
  std::int64_t execution_count = 0;
  std::uint64_t payload_offset = 0;  ///< absolute file offset
  std::uint64_t payload_size = 0;
  std::uint64_t checksum = 0;  ///< FNV-1a over the decoded values
};

/// Packs a trace into the in-memory image of a store file. When `plan`
/// is supplied (parallelizable, matching event count), chunk boundaries
/// follow the plan's chunks so the directory carries trace_plan's exact
/// event/execution offsets; oversized plan chunks are split. Encoding
/// parallelizes over `dmv::par`; the output bytes are identical at any
/// thread count.
std::string pack_trace(const sim::AccessTrace& trace,
                       const StoreOptions& options = {},
                       const sim::TracePlan* plan = nullptr);

/// Packs just an event list (no container table) — the spill backing
/// format. The file round-trips through the same reader with an empty
/// container table.
std::string pack_events(const sim::EventList& events,
                        const StoreOptions& options = {});

/// pack_trace + atomic write (temp file + rename) to `path`.
void write_trace_file(const sim::AccessTrace& trace, const std::string& path,
                      const StoreOptions& options = {},
                      const sim::TracePlan* plan = nullptr);

/// Random-access reader over a store file or byte buffer. Opening a
/// path memory-maps it read-only (falling back to a buffered read where
/// mmap is unavailable); headers are validated eagerly, payloads lazily
/// per chunk. Every malformed input — truncation, bad magic, version
/// mismatch, implausible counts, out-of-range directory entries,
/// checksum mismatch — raises std::runtime_error with a
/// "trace_store:" prefix; no input reaches undefined behavior.
class TraceStoreReader {
 public:
  explicit TraceStoreReader(const std::string& path);
  ~TraceStoreReader();
  TraceStoreReader(TraceStoreReader&& other) noexcept;
  TraceStoreReader& operator=(TraceStoreReader&& other) noexcept;
  TraceStoreReader(const TraceStoreReader&) = delete;
  TraceStoreReader& operator=(const TraceStoreReader&) = delete;

  /// Validates and adopts an in-memory file image.
  static TraceStoreReader from_bytes(std::string bytes);

  std::int64_t total_events() const;
  std::int64_t executions() const;
  const std::vector<std::string>& containers() const;
  const std::vector<layout::ConcreteLayout>& layouts() const;
  std::size_t chunk_count() const;
  const ChunkInfo& chunk(std::size_t index) const;
  /// Total file size and the payload portion of it (compressed event
  /// bytes, excluding headers/directory).
  std::size_t file_bytes() const;
  std::size_t payload_bytes() const;

  /// Decodes chunk `index` into its absolute slice of `out`, which must
  /// already be sized to cover [event_offset, event_offset+event_count).
  /// Verifies the chunk checksum; throws on any mismatch.
  void read_chunk_into(std::size_t index, sim::EventList& out) const;

  /// Decodes every chunk into `out` (resized to total_events), chunks
  /// in parallel over disjoint slices.
  void read_events(sim::EventList& out) const;

  /// Reconstructs the full trace (containers, layouts, events,
  /// executions).
  sim::AccessTrace read_trace() const;

  /// Decodes and checksum-verifies every chunk, discarding the events.
  void verify() const;

 private:
  TraceStoreReader();
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Spills `events` to a store file under `dir` (created if missing) and
/// installs a restore callback: the columns are released now and
/// decoded back on the next column access (`EventList::fault_in` via
/// any accessor, or `ensure_resident()`). The backing file is
/// reference-counted — it is deleted once no spilled list (or copy)
/// refers to it. Returns the backing file path. The round trip is
/// exact, so spilling never changes downstream results.
std::string spill_event_list(sim::EventList& events, const std::string& dir,
                             const StoreOptions& options = {});

}  // namespace dmv::store
