#pragma once

// Fluent program construction: the "frontend" substitute.
//
// The paper's workloads arrive as DaCe Python programs; this reproduction
// builds the equivalent SDFGs programmatically. `ProgramBuilder` offers
// the handful of idioms every workload needs — declare symbols and
// arrays, open a state, drop a mapped tasklet — and takes care of the
// structural bookkeeping the IR demands: access-node reuse (so
// producer/consumer chains share one node, giving map fusion its
// exit -> access -> entry pattern), per-level memlet propagation through
// nested map scopes, and connector naming (IN_x / OUT_x on map
// boundaries, plain connector names on tasklets).

#include <string>
#include <vector>

#include "dmv/ir/sdfg.hpp"

namespace dmv::builder {

using ir::Range;
using ir::Sdfg;
using ir::Subset;

/// One map dimension: parameter name plus its inclusive range, written
/// in subset syntax ("0:N-1", "0:N-1:2").
struct MapRange {
  std::string param;
  std::string range;
};

/// One tasklet input or output: connector name, container, and the
/// per-iteration subset (in map parameters), e.g. {"a", "A", "i, k"}.
struct TaskletIo {
  std::string connector;
  std::string data;
  std::string subset;
  ir::Wcr wcr = ir::Wcr::None;
};

/// One stage of a fused multi-tasklet map body (`mapped_chain`). Values
/// listed in `chain_outputs` travel to later stages' `chain_inputs` over
/// register (empty-memlet) edges instead of memory.
struct ChainStage {
  std::string label;
  std::vector<TaskletIo> array_inputs;
  std::vector<std::string> chain_inputs;
  std::string code;
  std::vector<TaskletIo> array_outputs;
  std::vector<std::string> chain_outputs;
};

/// Widens a per-iteration subset over the given map parameters: each
/// parameter is replaced by its range's begin in lower bounds and its
/// range's end in upper bounds (exact for the monotonic affine indices
/// the workloads use). Dimensions not mentioning a parameter pass
/// through unchanged.
Subset propagate_subset(const Subset& per_iteration,
                        const std::vector<std::string>& params,
                        const std::vector<Range>& ranges);

class ProgramBuilder {
 public:
  explicit ProgramBuilder(std::string name);

  /// Declares free program symbols (input parameters).
  void symbols(const std::vector<std::string>& names);

  /// Declares a row-major array; extents are parsed expressions.
  ir::DataDescriptor& array(const std::string& name,
                            const std::vector<std::string>& shape,
                            int element_size = 8);
  /// Declares a program-internal temporary.
  ir::DataDescriptor& transient(const std::string& name,
                                const std::vector<std::string>& shape,
                                int element_size = 8);

  /// Opens a new state; subsequent graph operations build into it.
  /// Throws std::logic_error while a map scope is open.
  ir::State& state(std::string name);

  /// Opens a map scope; nested mapped_tasklet calls build inside it and
  /// their outer memlets are propagated through every open level.
  void begin_map(const std::string& label,
                 const std::vector<MapRange>& ranges);
  /// Closes the innermost open map scope.
  void end_map();

  /// The workhorse: a map over `ranges` containing one tasklet, with
  /// access nodes and propagated memlets wired at every scope level.
  void mapped_tasklet(const std::string& label,
                      const std::vector<MapRange>& ranges,
                      const std::vector<TaskletIo>& inputs,
                      const std::string& code,
                      const std::vector<TaskletIo>& outputs);

  /// A map containing several tasklets connected by register handoffs.
  void mapped_chain(const std::string& label,
                    const std::vector<MapRange>& ranges,
                    const std::vector<ChainStage>& stages);

  /// Access -> access copy edge. Subset element counts must agree.
  void copy(const std::string& src, const std::string& src_subset,
            const std::string& dst, const std::string& dst_subset);

  /// The SDFG under construction (mutable; for surgical test setups).
  Sdfg& sdfg() { return sdfg_; }

  /// Validates and returns the finished program.
  /// Throws std::logic_error if a map scope is open, std::runtime_error
  /// on validation failure.
  Sdfg take();

 private:
  struct OpenMap {
    ir::NodeId entry = ir::kNoNode;
    ir::NodeId exit = ir::kNoNode;
    std::vector<std::string> params;
    std::vector<Range> ranges;
  };

  ir::State& current_state();
  ir::NodeId read_node(const std::string& data);
  ir::NodeId write_node(const std::string& data);
  void require_array(const std::string& data) const;
  static std::pair<std::vector<std::string>, std::vector<Range>>
  parse_map_ranges(const std::vector<MapRange>& ranges);

  /// Routes one tasklet input/output through every open map level,
  /// widening the memlet at each boundary.
  void wire_input(const TaskletIo& io, ir::NodeId tasklet);
  void wire_output(const TaskletIo& io, ir::NodeId tasklet);

  Sdfg sdfg_;
  int current_state_index_ = -1;
  std::vector<OpenMap> scope_stack_;
  /// Latest access node per container in the current state. Reads reuse
  /// it; writes allocate a fresh node (keeping the graph acyclic for
  /// read-modify-write patterns) which subsequent reads then pick up.
  std::map<std::string, ir::NodeId> last_access_;
};

}  // namespace dmv::builder
