#pragma once

// SDFG deserialization from the JSON produced by dmv::ir::to_json.
//
// Together with the writer this gives programs a durable on-disk form:
// analysis sessions can be archived, diffed across optimization steps,
// and fed to the command-line tools (see examples/analyze_cli.cpp)
// without rebuilding the graph from C++.

#include <stdexcept>
#include <string>
#include <string_view>

#include "dmv/ir/sdfg.hpp"

namespace dmv::ir {

class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Parses a JSON document into an SDFG. Throws JsonError on malformed
/// JSON or a document that does not describe a valid SDFG.
Sdfg from_json(std::string_view text);

}  // namespace dmv::ir
