#pragma once

// Data descriptors: the IR-level model of arrays and scalars.
//
// Shapes, strides, and offsets are symbolic expressions, which is what
// makes the whole-program view parametric (paper §IV-D): the same
// descriptor describes in_field[I+4, J+4, K] for every binding of I, J, K.
// Strides are expressed in elements and default to row-major; the hdiff
// case study's layout optimizations (dimension permutation, §VI-B, and
// stride padding, Fig 8c) are pure stride rewrites on these descriptors.

#include <cstdint>
#include <string>
#include <vector>

#include "dmv/symbolic/expr.hpp"

namespace dmv::ir {

using symbolic::Expr;
using symbolic::SymbolMap;

/// Describes one named data container (array or scalar).
struct DataDescriptor {
  std::string name;
  std::vector<Expr> shape;    ///< Extent per dimension; empty = scalar.
  std::vector<Expr> strides;  ///< Element stride per dimension.
  int element_size = 8;       ///< Bytes per element.
  Expr start_offset = 0;      ///< Element offset of [0,...,0] in the buffer.
  bool transient = false;     ///< True for program-internal temporaries.

  int rank() const { return static_cast<int>(shape.size()); }

  /// Number of addressable elements (product of the shape).
  Expr total_elements() const;
  /// Logical size in bytes: total_elements * element_size.
  Expr logical_bytes() const;
  /// Allocated buffer length in elements, honoring strides and padding:
  /// start_offset + 1 + sum((shape[d]-1) * strides[d]).
  Expr allocated_elements() const;
  Expr allocated_bytes() const;

  /// Element offset (in elements, relative to buffer start) of `indices`.
  Expr element_offset(const std::vector<Expr>& indices) const;

  static std::vector<Expr> row_major_strides(const std::vector<Expr>& shape);
  static std::vector<Expr> column_major_strides(
      const std::vector<Expr>& shape);

  /// Row-major array descriptor (the common case).
  static DataDescriptor array(std::string name, std::vector<Expr> shape,
                              int element_size = 8, bool transient = false);
  static DataDescriptor scalar(std::string name, int element_size = 8,
                               bool transient = true);
};

}  // namespace dmv::ir
