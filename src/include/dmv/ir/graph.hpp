#pragma once

// Dataflow state graphs: nodes, edges, and scopes.
//
// A `State` is a directed multigraph following the SDFG structure the
// paper visualizes: access nodes (ovals) reference data containers,
// tasklets (rectangles) compute, and map entry/exit pairs (the trapezoid
// header bars of Fig 3) delimit parallel regions with symbolic bounds.
// Every edge carries a Memlet. Scope membership is explicit — each node
// records the map entry that encloses it — which gives the renderer its
// collapse/expand units (§IV-A) and the simulator its iteration bodies.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dmv/ir/memlet.hpp"
#include "dmv/ir/tasklet_ast.hpp"

namespace dmv::ir {

using NodeId = std::int32_t;
inline constexpr NodeId kNoNode = -1;

enum class NodeKind { Access, Tasklet, MapEntry, MapExit };

/// Parallel-region description shared by a MapEntry/MapExit pair.
struct MapInfo {
  std::string label;
  std::vector<std::string> params;  ///< Iteration variables, outer first.
  std::vector<Range> ranges;        ///< Inclusive bounds per parameter.
  bool collapsed = false;           ///< Rendering hint (§IV-A folding).
};

struct Node {
  NodeId id = kNoNode;
  NodeKind kind = NodeKind::Access;
  std::string label;

  // Access payload.
  std::string data;

  // Tasklet payload.
  TaskletAst code;

  // Map payload (entry carries MapInfo; exit mirrors via `paired`).
  MapInfo map;
  NodeId paired = kNoNode;  ///< Entry <-> exit partner.

  /// Enclosing MapEntry node, or kNoNode at state top level.
  NodeId scope_parent = kNoNode;
};

struct Edge {
  NodeId src = kNoNode;
  NodeId dst = kNoNode;
  std::string src_conn;  ///< Source connector name ("" if unnamed).
  std::string dst_conn;
  Memlet memlet;
};

/// One dataflow state: a scoped multigraph of nodes and memlet edges.
class State {
 public:
  explicit State(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  NodeId add_access(std::string data, NodeId scope = kNoNode);
  NodeId add_tasklet(std::string label, TaskletAst code,
                     NodeId scope = kNoNode);
  NodeId add_tasklet(std::string label, std::string_view code,
                     NodeId scope = kNoNode);
  /// Adds a map entry/exit pair; returns {entry, exit}.
  std::pair<NodeId, NodeId> add_map(MapInfo info, NodeId scope = kNoNode);

  /// Appends a fully-formed node (deserialization path). `node.id` must
  /// equal the next id; cross-references (paired, scope_parent) may point
  /// at nodes added later.
  NodeId add_raw(Node node);

  void add_edge(NodeId src, NodeId dst, Memlet memlet,
                std::string src_conn = "", std::string dst_conn = "");

  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<Edge>& edges() const { return edges_; }
  const Node& node(NodeId id) const { return nodes_.at(id); }
  Node& node(NodeId id) { return nodes_.at(id); }
  std::size_t num_nodes() const { return nodes_.size(); }

  std::vector<const Edge*> in_edges(NodeId id) const;
  std::vector<const Edge*> out_edges(NodeId id) const;
  std::vector<Edge>& mutable_edges() { return edges_; }
  std::vector<Node>& mutable_nodes() { return nodes_; }

  /// Direct children of a scope (kNoNode = top level).
  std::vector<NodeId> scope_children(NodeId scope) const;
  /// Chain of enclosing map entries, innermost first.
  std::vector<NodeId> scope_chain(NodeId id) const;
  /// All map entries whose scope (transitively) contains `id`.
  int scope_depth(NodeId id) const;

  /// Topological order over all nodes (Kahn). Throws std::logic_error on
  /// a cycle, which validation treats as a structural error.
  std::vector<NodeId> topological_order() const;

  /// Removes the given nodes and their edges, compacting ids. Returns the
  /// old-id -> new-id mapping (removed nodes map to kNoNode).
  std::vector<NodeId> erase_nodes(const std::vector<NodeId>& ids);

 private:
  std::string name_;
  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
};

/// Per-state traversal schedule shared by every engine that walks a
/// state's dataflow (the trace simulator, the numeric interpreter, the
/// chunked parallel trace writers): topological node order plus per-node
/// in/out edge adjacency, built once per state instead of once per walk.
/// Edge pointers alias `state.edges()` — the schedule is valid only while
/// the state outlives it unmodified.
struct StateSchedule {
  std::vector<NodeId> order;
  std::vector<std::vector<const Edge*>> in_adjacency;
  std::vector<std::vector<const Edge*>> out_adjacency;

  StateSchedule() = default;
  explicit StateSchedule(const State& state);
};

}  // namespace dmv::ir
