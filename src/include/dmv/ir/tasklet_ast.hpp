#pragma once

// Micro-AST for tasklet code.
//
// Tasklets are the pure-compute leaves of the dataflow graph. Their code
// is a short sequence of scalar assignments over input/output connectors,
// e.g. "out = a * b + c". The paper's arithmetic-intensity overlay
// (§IV-B) is driven by *counting operations in exactly this AST*, and the
// IR interpreter executes it to validate that graph transformations
// preserve program semantics.

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace dmv::ir {

enum class TaskletOp {
  Add,
  Sub,
  Mul,
  Div,
  Neg,
  // Comparisons yield 0.0 / 1.0 so selection idioms stay expressible.
  Less,
  Greater,
  // Intrinsics.
  Exp,
  Log,
  Sqrt,
  Tanh,
  Erf,
  Abs,
  Min,
  Max,
  Select,  ///< select(c, a, b) = c != 0 ? a : b
};

/// One node of a tasklet expression tree.
struct TaskletExpr {
  enum class Kind { Literal, Connector, Operation };
  Kind kind = Kind::Literal;
  double literal = 0.0;
  std::string connector;
  TaskletOp op = TaskletOp::Add;
  std::vector<TaskletExpr> operands;

  static TaskletExpr literal_value(double v);
  static TaskletExpr conn(std::string name);
  static TaskletExpr operation(TaskletOp op, std::vector<TaskletExpr> args);
};

/// One `target = expression` statement.
struct TaskletStatement {
  std::string target;
  TaskletExpr value;
};

/// Operation counts extracted from a tasklet body (paper §IV-B: "parsing
/// the abstract syntax tree of individual computations, counting the
/// number of arithmetic operations").
struct OpCount {
  std::int64_t adds = 0;  ///< Add + Sub + Neg
  std::int64_t muls = 0;
  std::int64_t divs = 0;
  std::int64_t comparisons = 0;
  std::int64_t special = 0;  ///< transcendental / intrinsic calls

  std::int64_t total() const {
    return adds + muls + divs + comparisons + special;
  }
  OpCount& operator+=(const OpCount& other);
};

/// Parsed tasklet body: an ordered list of assignments. A connector that
/// is assigned before being read acts as a local temporary.
struct TaskletAst {
  std::vector<TaskletStatement> statements;
  std::string source;  ///< Original text, kept for display.

  OpCount count_operations() const;
  /// Connector names read before any assignment (the data inputs).
  std::vector<std::string> read_connectors() const;
  /// Connector names assigned (outputs and locals).
  std::vector<std::string> written_connectors() const;

  /// Evaluates the statements over `values` (inputs pre-populated;
  /// outputs and locals written into the same map).
  void execute(std::map<std::string, double>& values) const;
};

class TaskletParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Parses code like "tmp = a * b; out = tmp + c" (';' or newline
/// separated). Functions: exp, log, sqrt, tanh, erf, abs, min, max,
/// select. Operators: + - * / unary- and comparisons < >.
TaskletAst parse_tasklet(std::string_view code);

}  // namespace dmv::ir
