#pragma once

// Structural validation of SDFGs.
//
// Catches malformed graphs early with actionable messages: dangling node
// references, memlets over undeclared containers, rank mismatches between
// subsets and descriptors, unmatched map entry/exit pairs, edges that
// cross scope boundaries without passing through the scope's entry/exit
// nodes, and cyclic dataflow within a state.

#include <string>
#include <vector>

#include "dmv/ir/sdfg.hpp"

namespace dmv::ir {

struct ValidationIssue {
  std::string state;    ///< State name ("" for SDFG-level issues).
  std::string message;  ///< Human-readable description.
};

/// Returns all issues found (empty = valid).
std::vector<ValidationIssue> validate(const Sdfg& sdfg);

/// Throws std::runtime_error listing every issue if the SDFG is invalid.
void validate_or_throw(const Sdfg& sdfg);

}  // namespace dmv::ir
