#pragma once

// JSON serialization of SDFGs, for dumping analysis sessions to disk and
// for interoperability with external viewers. The writer emits a stable,
// human-diffable layout; symbolic expressions serialize to their string
// form and parse back through dmv::symbolic::parse.

#include <string>

#include "dmv/ir/sdfg.hpp"

namespace dmv::ir {

/// Serializes the whole SDFG to a JSON document.
std::string to_json(const Sdfg& sdfg);

/// Graphviz dot export of one state, mainly for debugging graph shapes.
std::string to_dot(const State& state);

}  // namespace dmv::ir
