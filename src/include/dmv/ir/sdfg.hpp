#pragma once

// The top-level program container.
//
// An `Sdfg` owns the data descriptors, the set of free program symbols
// (the paper's tunable input parameters: B, H, SM, I, J, K, ...), and a
// sequence of states executed in order. The full SDFG model allows an
// arbitrary state machine; every program in the paper's evaluation is a
// linear sequence of dataflow states, so this reproduction models exactly
// that and validates it explicitly.

#include <map>
#include <set>
#include <string>
#include <vector>

#include "dmv/ir/data.hpp"
#include "dmv/ir/graph.hpp"

namespace dmv::ir {

class Sdfg {
 public:
  explicit Sdfg(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Declares a free program symbol (input parameter).
  void add_symbol(const std::string& symbol) { symbols_.insert(symbol); }
  const std::set<std::string>& symbols() const { return symbols_; }

  DataDescriptor& add_array(DataDescriptor descriptor);
  bool has_array(const std::string& name) const;
  const DataDescriptor& array(const std::string& name) const;
  DataDescriptor& array(const std::string& name);
  const std::map<std::string, DataDescriptor>& arrays() const {
    return arrays_;
  }
  void remove_array(const std::string& name);

  State& add_state(std::string name);
  const std::vector<State>& states() const { return states_; }
  std::vector<State>& states() { return states_; }

 private:
  std::string name_;
  std::set<std::string> symbols_;
  std::map<std::string, DataDescriptor> arrays_;
  std::vector<State> states_;
};

}  // namespace dmv::ir
