#pragma once

// Memlets: annotated data-movement edges.
//
// A memlet records *what* subset of a container moves along an edge and
// *how much*. Subsets use DaCe's inclusive-range convention
// (begin:end:step, end inclusive), and entries may be symbolic in both
// program symbols and enclosing map parameters — "i, j+1, 0:K" is a valid
// subset inside a map over (i, j). The static volume analysis (§IV-B) and
// the access-pattern simulation (§V-C) both read these annotations; the
// simulation evaluates them exactly once map parameters are bound.

#include <string>
#include <string_view>
#include <vector>

#include "dmv/symbolic/expr.hpp"

namespace dmv::ir {

using symbolic::Expr;
using symbolic::SymbolMap;

/// Inclusive symbolic range begin:end:step along one dimension.
/// A single index i is represented as i:i:1.
struct Range {
  Expr begin = 0;
  Expr end = 0;
  Expr step = 1;

  /// Number of iterates: (end - begin + step) / step for positive steps.
  Expr size() const;
  bool is_single_element() const;
  std::string to_string() const;

  static Range index(Expr at) { return Range{at, at, 1}; }
  /// Half-open convenience: covers [0, extent).
  static Range span(Expr extent) { return Range{0, extent - 1, 1}; }
};

/// N-dimensional subset: one Range per dimension.
struct Subset {
  std::vector<Range> ranges;

  int rank() const { return static_cast<int>(ranges.size()); }
  /// Product of per-dimension sizes.
  Expr num_elements() const;
  bool is_single_element() const;
  Subset substitute(const SymbolMap& symbols) const;
  std::string to_string() const;

  /// Parses "i, 0:N, 2*j+1, 0:K:2". Bare expressions become single
  /// indices; `a:b` is inclusive of b; an optional `:s` sets the step.
  static Subset parse(std::string_view text);
};

/// Write-conflict resolution for parallel accumulation (DaCe `wcr`).
enum class Wcr { None, Sum, Min, Max };

std::string to_string(Wcr wcr);

/// Data movement annotation attached to every dataflow edge.
struct Memlet {
  std::string data;  ///< Container name; empty = pure dependency edge.
  Subset subset;
  /// For access->access copy edges: the subset written on the destination
  /// container (empty = mirrors `subset`).
  Subset other_subset;
  /// Elements moved per single traversal of the edge. Defaults to the
  /// subset's element count; can be overridden for dynamic memlets.
  Expr volume = 0;
  Wcr wcr = Wcr::None;

  bool is_empty() const { return data.empty(); }
  /// Effective per-traversal volume (explicit override or subset count).
  Expr effective_volume() const;
  std::string to_string() const;

  static Memlet simple(std::string data, std::string_view subset_text,
                       Wcr wcr = Wcr::None);
  static Memlet none() { return Memlet{}; }
};

}  // namespace dmv::ir
