#include "dmv/session/session.hpp"

#include <algorithm>
#include <list>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dmv/analysis/analysis.hpp"
#include "dmv/ir/serialize.hpp"
#include "dmv/par/par.hpp"
#include "dmv/viz/render.hpp"

namespace dmv::session {

namespace {

using sim::MetricPipeline;
using sim::PipelineResult;
using symbolic::Expr;
using symbolic::SymbolMap;

std::uint64_t fnv1a(std::uint64_t hash, std::uint64_t value) {
  hash ^= value;
  hash *= 1099511628211ull;
  return hash;
}

std::uint64_t hash_bytes(const std::string& text) {
  std::uint64_t hash = 1469598103934665603ull;
  for (const char c : text) hash = fnv1a(hash, static_cast<unsigned char>(c));
  return hash;
}

/// Rough heap footprint of an expression: one node's worth per DISTINCT
/// interned node reachable from it. Hash-consing makes subtree sharing
/// pervasive, so the DAG footprint (not the tree size, which can be
/// exponentially larger) is the honest budget number — and the nodes are
/// shared with the interner anyway, so this intentionally over-charges
/// the cache for them.
std::size_t expr_bytes(const Expr& e) {
  return e.dag_size() * sizeof(symbolic::ExprNode);
}

/// Artifact discriminator; part of every cache key, so one LRU holds
/// heterogeneous payloads without type confusion.
enum class Kind : std::uint8_t {
  kMetrics,
  kMovementVolume,
  kMovementValue,
  kStateVolumes,
  kLayout,
  kGraphSvg,
  kClosedForm,       ///< Closed-form metric EXPRESSIONS (program-keyed).
  kClosedFormValue,  ///< Those expressions evaluated at a binding.
};

// Step-classification ranks, ordered by cost; a step's class is the max
// rank of the work it needed (SessionStats doc block).
constexpr int kStepFullHit = 0;
constexpr int kStepSymbolic = 1;
constexpr int kStepChunkDelta = 2;
constexpr int kStepCold = 3;

/// The session's cache key is the public ArtifactKey
/// (artifact_cache.hpp) so the same key addresses both the local LRU
/// and the process-global shared tier. The binding component is
/// RESTRICTED to the artifact's reachable symbols before key
/// construction — that restriction is the whole invalidation story
/// (see session.hpp).
using Key = ArtifactKey;
using KeyHash = ArtifactKeyHash;

constexpr std::uint8_t raw(Kind kind) {
  return static_cast<std::uint8_t>(kind);
}

std::vector<std::pair<std::string, std::int64_t>> restrict_binding(
    const SymbolMap& binding, const std::set<std::string>& reachable) {
  std::vector<std::pair<std::string, std::int64_t>> restricted;
  restricted.reserve(reachable.size());
  for (const auto& [symbol, value] : binding) {  // std::map: sorted order.
    if (reachable.contains(symbol)) restricted.emplace_back(symbol, value);
  }
  return restricted;
}

/// Binding-independent edge-volume expressions of one state, plus the
/// program symbols they reach — the dependency set of the heat overlay.
struct StateVolumes {
  std::vector<std::pair<std::size_t, Expr>> bytes_per_edge;
  std::set<std::string> symbols;
};

}  // namespace

struct Session::Impl {
  SessionConfig config;
  std::uint64_t config_hash = 0;

  ir::Sdfg program;
  std::uint64_t program_hash = 0;
  std::set<std::string> metric_symbols;

  SymbolMap binding;
  /// Slider tracking for prefetch: last-moved symbol and its stride.
  std::string moved_symbol;
  std::int64_t moved_delta = 0;

  MetricPipeline pipeline;
  /// One private pipeline per prefetch slot (MetricPipeline is not
  /// thread-safe); arenas persist across drags.
  std::vector<std::unique_ptr<MetricPipeline>> prefetch_pipelines;

  // --- LRU cache -----------------------------------------------------
  struct Entry {
    Key key;
    std::shared_ptr<const void> value;
    std::size_t bytes = 0;
    bool prefetched = false;  ///< Inserted speculatively, not yet hit.
  };
  std::list<Entry> lru;  ///< Front = most recently used.
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index;
  std::size_t cache_bytes = 0;
  SessionStats stats;
  /// Max rank of the work the current step needed; -1 = no artifact
  /// requested since the last binding change (nothing to classify).
  int step_rank = -1;

  void note_step(int rank) { step_rank = std::max(step_rank, rank); }

  void finalize_step() {
    switch (step_rank) {
      case kStepFullHit: ++stats.steps_full_hit; break;
      case kStepSymbolic: ++stats.steps_symbolic; break;
      case kStepChunkDelta: ++stats.steps_chunk_delta; break;
      case kStepCold: ++stats.steps_cold; break;
      default: break;  // -1: idle step, not counted.
    }
    step_rank = -1;
  }

  explicit Impl(ir::Sdfg sdfg, SessionConfig session_config)
      : config(std::move(session_config)),
        program(std::move(sdfg)),
        pipeline(config.pipeline) {
    config_hash = sim::fingerprint(config.pipeline);
    config_hash = fnv1a(config_hash, static_cast<std::uint64_t>(
                                         config.simulation.placement_alignment));
    config_hash = fnv1a(config_hash, config.simulation.wcr_reads ? 1 : 0);
    config_hash = fnv1a(config_hash, config.simulation.compiled ? 1 : 0);
    rehash_program();
  }

  void rehash_program() {
    program_hash = hash_bytes(ir::to_json(program));
    metric_symbols = analysis::simulation_symbols(program);
  }

  // Two-tier lookup with LRU touch and full stats accounting: local
  // LRU first, then the optional process-global tier (a shared hit is
  // promoted into the local LRU so repeats stay lock-free). Returns
  // nullptr on miss in both tiers.
  std::shared_ptr<const void> lookup(const Key& key) {
    auto it = index.find(key);
    if (it != index.end()) {
      ++stats.hits;
      Entry& entry = *it->second;
      if (entry.prefetched) {
        ++stats.prefetch_hits;
        entry.prefetched = false;
      }
      lru.splice(lru.begin(), lru, it->second);
      return entry.value;
    }
    if (config.shared_cache) {
      std::size_t bytes = 0;
      if (std::shared_ptr<const void> value =
              config.shared_cache->lookup(key, &bytes)) {
        ++stats.hits;
        ++stats.shared_hits;
        insert_local(key, value, bytes, /*prefetched=*/false);
        return value;
      }
    }
    ++stats.misses;
    return nullptr;
  }

  bool contains(const Key& key) const {
    return index.contains(key) ||
           (config.shared_cache && config.shared_cache->contains(key));
  }

  /// Local-tier insert only — used directly when promoting a shared hit
  /// (publishing it back would be a no-op churn).
  void insert_local(Key key, std::shared_ptr<const void> value,
                    std::size_t bytes, bool prefetched) {
    auto it = index.find(key);
    if (it != index.end()) return;  // Lost race with an earlier insert.
    lru.push_front(Entry{std::move(key), std::move(value), bytes, prefetched});
    index.emplace(lru.front().key, lru.begin());
    cache_bytes += bytes;
    // Byte-budgeted eviction; the freshly inserted entry is exempt so a
    // single oversized artifact still caches (and recomputing it would
    // be deterministic anyway — eviction never changes results).
    while (cache_bytes > config.cache_budget_bytes && lru.size() > 1) {
      const Entry& victim = lru.back();
      cache_bytes -= victim.bytes;
      index.erase(victim.key);
      lru.pop_back();
      ++stats.evictions;
    }
  }

  /// Computed-artifact insert: local tier plus (when configured) the
  /// process-global tier, so other sessions can skip the computation.
  void insert(Key key, std::shared_ptr<const void> value, std::size_t bytes,
              bool prefetched) {
    if (config.shared_cache) {
      config.shared_cache->insert(key, value, bytes);
    }
    insert_local(std::move(key), std::move(value), bytes, prefetched);
  }

  /// Fetch-or-compute helper: all artifact getters funnel through here.
  template <typename T, typename Compute>
  std::shared_ptr<const T> get(const Key& key, Compute&& compute,
                               std::size_t (*size_of)(const T&)) {
    if (std::shared_ptr<const void> cached = lookup(key)) {
      return std::static_pointer_cast<const T>(cached);
    }
    std::shared_ptr<const T> value =
        std::make_shared<const T>(compute());
    insert(key, value, size_of(*value), /*prefetched=*/false);
    return value;
  }

  // --- Keys ----------------------------------------------------------

  Key metrics_key(const SymbolMap& at) const {
    Key key;
    key.kind = raw(Kind::kMetrics);
    key.program_hash = program_hash;
    key.config_hash = config_hash;
    key.binding = restrict_binding(at, metric_symbols);
    return key;
  }

  Key program_key(Kind kind, int aux = -1) const {
    Key key;
    key.kind = raw(kind);
    key.aux = aux;
    key.program_hash = program_hash;
    return key;
  }

  // --- Artifacts -----------------------------------------------------

  PipelineResult evaluate(MetricPipeline& on, const SymbolMap& at,
                          sim::DeltaOutcome* outcome = nullptr) {
    if (config.delta) {
      return on.run_delta(program, program_hash, at, config.simulation,
                          outcome);
    }
    return config.streaming
               ? on.run_streaming(program, at, config.simulation)
               : on.run(program, at, config.simulation);
  }

  std::shared_ptr<const PipelineResult> metrics() {
    note_step(kStepFullHit);
    const Key key = metrics_key(binding);
    std::shared_ptr<const PipelineResult> result;
    if (std::shared_ptr<const void> cached = lookup(key)) {
      result = std::static_pointer_cast<const PipelineResult>(cached);
    } else {
      sim::DeltaOutcome outcome;  // Defaults to kCold for the non-delta path.
      result = std::make_shared<const PipelineResult>(
          evaluate(pipeline, binding, &outcome));
      note_step(outcome.path == sim::DeltaOutcome::Path::kCold
                    ? kStepCold
                    : kStepChunkDelta);
      const sim::PhaseTimings& timings = pipeline.last_timings();
      stats.simulate_ms += timings.simulate_ms;
      stats.metrics_ms += timings.metrics_ms;
      stats.metric_partitions = timings.partitions;
      insert(key, result, sim::approx_size_bytes(*result),
             /*prefetched=*/false);
    }
    maybe_prefetch();
    return result;
  }

  void maybe_prefetch() {
    if (!config.prefetch || config.prefetch_depth <= 0) {
      stats.prefetch = "off";
      return;
    }
    // With a single worker, speculative evaluation runs serially IN
    // FRONT of the next interaction instead of overlapping it — pure
    // added latency. Skip it and record why, so benchmarks and clients
    // can tell "prefetch never helped" from "prefetch never ran".
    if (par::num_threads() <= 1) {
      stats.prefetch = "skipped (1 worker)";
      return;
    }
    stats.prefetch = "speculative";
    if (moved_symbol.empty() || moved_delta == 0) return;
    // A symbol the metrics cannot reach would prefetch identical keys.
    if (!metric_symbols.contains(moved_symbol)) return;

    const std::int64_t current = binding.at(moved_symbol);
    std::vector<std::int64_t> candidates;
    for (int step = 1; step <= config.prefetch_depth; ++step) {
      candidates.push_back(current + step * moved_delta);
    }
    candidates.push_back(current - moved_delta);  // Direction reversal.
    std::erase_if(candidates, [&](std::int64_t value) {
      SymbolMap speculative = binding;
      speculative[moved_symbol] = value;
      return contains(metrics_key(speculative));
    });
    if (candidates.empty()) return;
    stats.prefetch_issued += static_cast<std::int64_t>(candidates.size());

    while (prefetch_pipelines.size() < candidates.size()) {
      prefetch_pipelines.push_back(
          std::make_unique<MetricPipeline>(config.pipeline));
    }
    std::vector<std::shared_ptr<const PipelineResult>> results(
        candidates.size());
    // One pool task per candidate; each task owns its pipeline slot.
    // Nested metric parallelism falls back to serial inside pool tasks,
    // and each evaluation is deterministic, so results are bit-identical
    // at any thread count. Speculation must not surface errors: a
    // candidate that fails to evaluate (e.g. an empty or invalid
    // iteration space) is simply dropped.
    par::parallel_for(candidates.size(), 1,
                      [&](std::size_t begin, std::size_t end) {
                        for (std::size_t i = begin; i < end; ++i) {
                          SymbolMap speculative = binding;
                          speculative[moved_symbol] = candidates[i];
                          try {
                            results[i] = std::make_shared<const PipelineResult>(
                                evaluate(*prefetch_pipelines[i], speculative));
                          } catch (const std::exception&) {
                            results[i] = nullptr;
                          }
                        }
                      });
    // Serial insertion in candidate order: the eviction schedule is
    // independent of the thread count.
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (!results[i]) continue;
      SymbolMap speculative = binding;
      speculative[moved_symbol] = candidates[i];
      insert(metrics_key(speculative), results[i],
             sim::approx_size_bytes(*results[i]), /*prefetched=*/true);
    }
  }

  std::shared_ptr<const Expr> movement_volume() {
    note_step(kStepFullHit);
    return get<Expr>(
        program_key(Kind::kMovementVolume),
        [&] {
          note_step(kStepSymbolic);
          return analysis::total_movement_bytes(program);
        },
        &expr_bytes);
  }

  std::shared_ptr<const analysis::ClosedFormMetrics> closed_form_exprs() {
    Key key = program_key(Kind::kClosedForm);
    key.config_hash = config_hash;  // wcr_reads changes the expressions.
    return get<analysis::ClosedFormMetrics>(
        key,
        [&] {
          note_step(kStepSymbolic);
          return analysis::closed_form_metrics(program,
                                               config.simulation.wcr_reads);
        },
        +[](const analysis::ClosedFormMetrics& metrics) {
          std::size_t bytes = sizeof(analysis::ClosedFormMetrics);
          bytes += expr_bytes(metrics.total_events) +
                   expr_bytes(metrics.total_executions) +
                   expr_bytes(metrics.flops) +
                   expr_bytes(metrics.movement_bytes) +
                   expr_bytes(metrics.footprint_bytes);
          for (const Expr& e : metrics.reads_per_container) {
            bytes += expr_bytes(e);
          }
          for (const Expr& e : metrics.writes_per_container) {
            bytes += expr_bytes(e);
          }
          for (const std::string& name : metrics.containers) {
            bytes += name.size() + 32;
          }
          for (const std::string& name : metrics.symbols) {
            bytes += name.size() + 32;
          }
          return bytes;
        });
  }

  std::shared_ptr<const analysis::ClosedFormValues> closed_form() {
    note_step(kStepFullHit);
    const std::shared_ptr<const analysis::ClosedFormMetrics> exprs =
        closed_form_exprs();
    Key key = program_key(Kind::kClosedFormValue);
    key.config_hash = config_hash;
    key.binding = restrict_binding(binding, exprs->symbols);
    return get<analysis::ClosedFormValues>(
        key,
        [&] {
          note_step(kStepSymbolic);
          return analysis::evaluate_closed_form(*exprs, binding);
        },
        +[](const analysis::ClosedFormValues& values) {
          std::size_t bytes = sizeof(analysis::ClosedFormValues);
          bytes += (values.reads.size() + values.writes.size()) *
                   sizeof(std::int64_t);
          for (const std::string& name : values.containers) {
            bytes += name.size() + 32;
          }
          return bytes;
        });
  }

  std::shared_ptr<const StateVolumes> state_volumes(int state_index) {
    return get<StateVolumes>(
        program_key(Kind::kStateVolumes, state_index),
        [&] {
          note_step(kStepSymbolic);
          const ir::State& state = program.states().at(
              static_cast<std::size_t>(state_index));
          StateVolumes volumes;
          std::set<std::string> reached;
          for (std::size_t e = 0; e < state.edges().size(); ++e) {
            const ir::Edge& edge = state.edges()[e];
            if (edge.memlet.is_empty()) continue;
            Expr bytes = analysis::total_edge_bytes(program, state, edge);
            bytes.collect_free_symbols(reached);
            volumes.bytes_per_edge.emplace_back(e, std::move(bytes));
          }
          for (const std::string& symbol : program.symbols()) {
            if (reached.contains(symbol)) volumes.symbols.insert(symbol);
          }
          return volumes;
        },
        +[](const StateVolumes& volumes) {
          std::size_t bytes = sizeof(StateVolumes);
          for (const auto& [edge, expr] : volumes.bytes_per_edge) {
            bytes += sizeof(edge) + expr_bytes(expr);
          }
          for (const std::string& symbol : volumes.symbols) {
            bytes += symbol.size() + 32;
          }
          return bytes;
        });
  }

  std::int64_t movement_bytes() {
    note_step(kStepFullHit);
    const std::shared_ptr<const Expr> volume = movement_volume();
    std::set<std::string> reached;
    volume->collect_free_symbols(reached);
    Key key = program_key(Kind::kMovementValue);
    key.binding = restrict_binding(binding, reached);
    return *get<std::int64_t>(
        key,
        [&] {
          note_step(kStepSymbolic);
          return volume->evaluate(binding);
        },
        +[](const std::int64_t&) { return sizeof(std::int64_t); });
  }

  std::shared_ptr<const viz::StateLayout> layout(int state_index) {
    note_step(kStepFullHit);
    return get<viz::StateLayout>(
        program_key(Kind::kLayout, state_index),
        [&] {
          note_step(kStepSymbolic);
          return viz::layout_state(
              program.states().at(static_cast<std::size_t>(state_index)),
              config.layout);
        },
        +[](const viz::StateLayout& layout) {
          return sizeof(viz::StateLayout) +
                 layout.nodes.size() * sizeof(viz::NodeBox) +
                 layout.edges.size() * sizeof(viz::EdgePath);
        });
  }

  std::shared_ptr<const std::string> graph_svg(int state_index) {
    note_step(kStepFullHit);
    const std::shared_ptr<const StateVolumes> volumes =
        state_volumes(state_index);
    Key key = program_key(Kind::kGraphSvg, state_index);
    key.binding = restrict_binding(binding, volumes->symbols);
    return get<std::string>(
        key,
        [&] {
          note_step(kStepSymbolic);
          const ir::State& state = program.states().at(
              static_cast<std::size_t>(state_index));
          std::vector<double> values;
          values.reserve(volumes->bytes_per_edge.size());
          for (const auto& [edge, expr] : volumes->bytes_per_edge) {
            values.push_back(
                static_cast<double>(expr.evaluate(binding)));
          }
          const viz::HeatmapScale scale =
              viz::HeatmapScale::fit(values, config.scaling);
          viz::GraphRenderOptions options;
          options.scheme = config.scheme;
          options.layout = config.layout;
          for (std::size_t v = 0; v < values.size(); ++v) {
            options.edge_heat[volumes->bytes_per_edge[v].first] =
                scale.normalize(values[v]);
          }
          // The Sugiyama layout is the expensive half of a render; it
          // is binding-independent and comes from its own cache slot.
          return viz::render_state_svg(state, *layout(state_index),
                                       options);
        },
        +[](const std::string& svg) { return svg.size() + 32; });
  }
};

Session::Session(ir::Sdfg program, SessionConfig config)
    : impl_(std::make_unique<Impl>(std::move(program), std::move(config))) {}
Session::~Session() = default;
Session::Session(Session&&) noexcept = default;
Session& Session::operator=(Session&&) noexcept = default;

const SessionConfig& Session::config() const { return impl_->config; }
const ir::Sdfg& Session::program() const { return impl_->program; }

void Session::set_program(ir::Sdfg program) {
  impl_->program = std::move(program);
  impl_->rehash_program();
}

void Session::edit_program(const std::function<void(ir::Sdfg&)>& edit) {
  edit(impl_->program);
  impl_->rehash_program();
}

const symbolic::SymbolMap& Session::binding() const { return impl_->binding; }

void Session::set_binding(symbolic::SymbolMap binding) {
  impl_->finalize_step();
  impl_->binding = std::move(binding);
  impl_->moved_symbol.clear();
  impl_->moved_delta = 0;
}

void Session::set_symbol(const std::string& symbol, std::int64_t value) {
  impl_->finalize_step();
  auto it = impl_->binding.find(symbol);
  if (it != impl_->binding.end() && it->second != value) {
    impl_->moved_symbol = symbol;
    impl_->moved_delta = value - it->second;
  }
  impl_->binding[symbol] = value;
}

std::shared_ptr<const sim::PipelineResult> Session::metrics() {
  return impl_->metrics();
}

std::shared_ptr<const analysis::ClosedFormValues> Session::closed_form() {
  return impl_->closed_form();
}

std::shared_ptr<const symbolic::Expr> Session::movement_volume() {
  return impl_->movement_volume();
}

std::int64_t Session::movement_bytes() { return impl_->movement_bytes(); }

std::shared_ptr<const viz::StateLayout> Session::layout(int state_index) {
  return impl_->layout(state_index);
}

std::shared_ptr<const std::string> Session::graph_svg(int state_index) {
  return impl_->graph_svg(state_index);
}

const std::set<std::string>& Session::metric_symbols() const {
  return impl_->metric_symbols;
}

ArtifactKey Session::metrics_cache_key() const {
  return impl_->metrics_key(impl_->binding);
}

SessionStats Session::stats() const {
  impl_->finalize_step();  // Classify the in-progress step (header doc).
  SessionStats stats = impl_->stats;
  stats.cache_bytes = impl_->cache_bytes;
  stats.cache_entries = impl_->lru.size();
  return stats;
}

void Session::reset_stats() {
  impl_->stats = SessionStats{};
  impl_->step_rank = -1;
}

void Session::clear_cache() {
  impl_->lru.clear();
  impl_->index.clear();
  impl_->cache_bytes = 0;
}

std::uint8_t metrics_artifact_kind() { return raw(Kind::kMetrics); }

}  // namespace dmv::session
