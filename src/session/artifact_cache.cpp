#include "dmv/session/artifact_cache.hpp"

#include <list>
#include <mutex>
#include <unordered_map>

namespace dmv::session {

namespace {

std::uint64_t fnv1a(std::uint64_t hash, std::uint64_t value) {
  hash ^= value;
  hash *= 1099511628211ull;
  return hash;
}

std::uint64_t hash_bytes(const std::string& text) {
  std::uint64_t hash = 1469598103934665603ull;
  for (const char c : text) hash = fnv1a(hash, static_cast<unsigned char>(c));
  return hash;
}

}  // namespace

std::size_t ArtifactKeyHash::operator()(const ArtifactKey& key) const {
  std::uint64_t hash = 1469598103934665603ull;
  hash = fnv1a(hash, key.kind);
  hash = fnv1a(hash,
               static_cast<std::uint64_t>(static_cast<std::int64_t>(key.aux)));
  hash = fnv1a(hash, key.program_hash);
  hash = fnv1a(hash, key.config_hash);
  for (const auto& [name, value] : key.binding) {
    hash = fnv1a(hash, hash_bytes(name));
    hash = fnv1a(hash, static_cast<std::uint64_t>(value));
  }
  return static_cast<std::size_t>(hash);
}

struct SharedArtifactCache::Shard {
  struct Entry {
    ArtifactKey key;
    std::shared_ptr<const void> value;
    std::size_t bytes = 0;
  };

  mutable std::mutex mutex;
  std::list<Entry> lru;  ///< Front = most recently used.
  std::unordered_map<ArtifactKey, std::list<Entry>::iterator, ArtifactKeyHash>
      index;
  std::size_t bytes = 0;
  std::size_t budget = 0;
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t insertions = 0;
  std::int64_t evictions = 0;
};

SharedArtifactCache::SharedArtifactCache() : SharedArtifactCache(Config{}) {}

SharedArtifactCache::SharedArtifactCache(Config config) : config_(config) {
  if (config_.shards == 0) config_.shards = 1;
  const std::size_t per_shard = config_.budget_bytes / config_.shards;
  shards_.reserve(config_.shards);
  for (std::size_t s = 0; s < config_.shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
    shards_.back()->budget = per_shard;
  }
}

SharedArtifactCache::~SharedArtifactCache() = default;

SharedArtifactCache::Shard& SharedArtifactCache::shard_for(
    const ArtifactKey& key) const {
  return *shards_[ArtifactKeyHash{}(key) % shards_.size()];
}

std::shared_ptr<const void> SharedArtifactCache::lookup(
    const ArtifactKey& key, std::size_t* bytes_out) {
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    return nullptr;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  if (bytes_out) *bytes_out = it->second->bytes;
  return it->second->value;
}

bool SharedArtifactCache::contains(const ArtifactKey& key) const {
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  return shard.index.contains(key);
}

void SharedArtifactCache::insert(const ArtifactKey& key,
                                 std::shared_ptr<const void> value,
                                 std::size_t bytes) {
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (shard.index.contains(key)) return;  // First writer won the race.
  shard.lru.push_front(Shard::Entry{key, std::move(value), bytes});
  shard.index.emplace(shard.lru.front().key, shard.lru.begin());
  shard.bytes += bytes;
  ++shard.insertions;
  // Same exemption as the session LRU: the freshly inserted entry stays
  // even when it alone blows the shard budget.
  while (shard.bytes > shard.budget && shard.lru.size() > 1) {
    const Shard::Entry& victim = shard.lru.back();
    shard.bytes -= victim.bytes;
    shard.index.erase(victim.key);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

SharedCacheStats SharedArtifactCache::stats() const {
  SharedCacheStats stats;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    stats.hits += shard->hits;
    stats.misses += shard->misses;
    stats.insertions += shard->insertions;
    stats.evictions += shard->evictions;
    stats.bytes += shard->bytes;
    stats.entries += shard->lru.size();
  }
  return stats;
}

void SharedArtifactCache::clear() {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->lru.clear();
    shard->index.clear();
    shard->bytes = 0;
  }
}

}  // namespace dmv::session
