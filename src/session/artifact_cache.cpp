#include "dmv/session/artifact_cache.hpp"

#include <list>
#include <mutex>
#include <unordered_map>

#include "dmv/store/artifact_store.hpp"

namespace dmv::session {

namespace {

std::uint64_t fnv1a(std::uint64_t hash, std::uint64_t value) {
  hash ^= value;
  hash *= 1099511628211ull;
  return hash;
}

std::uint64_t hash_bytes(const std::string& text) {
  std::uint64_t hash = 1469598103934665603ull;
  for (const char c : text) hash = fnv1a(hash, static_cast<unsigned char>(c));
  return hash;
}

}  // namespace

std::size_t ArtifactKeyHash::operator()(const ArtifactKey& key) const {
  std::uint64_t hash = 1469598103934665603ull;
  hash = fnv1a(hash, key.kind);
  hash = fnv1a(hash,
               static_cast<std::uint64_t>(static_cast<std::int64_t>(key.aux)));
  hash = fnv1a(hash, key.program_hash);
  hash = fnv1a(hash, key.config_hash);
  for (const auto& [name, value] : key.binding) {
    hash = fnv1a(hash, hash_bytes(name));
    hash = fnv1a(hash, static_cast<std::uint64_t>(value));
  }
  return static_cast<std::size_t>(hash);
}

struct SharedArtifactCache::Shard {
  struct Entry {
    ArtifactKey key;
    std::shared_ptr<const void> value;
    std::size_t bytes = 0;
  };

  mutable std::mutex mutex;
  std::list<Entry> lru;  ///< Front = most recently used.
  std::unordered_map<ArtifactKey, std::list<Entry>::iterator, ArtifactKeyHash>
      index;
  std::size_t bytes = 0;
  std::size_t budget = 0;
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t insertions = 0;
  std::int64_t evictions = 0;
};

SharedArtifactCache::SharedArtifactCache() : SharedArtifactCache(Config{}) {}

SharedArtifactCache::SharedArtifactCache(Config config)
    : config_(std::move(config)) {
  if (config_.shards == 0) config_.shards = 1;
  const std::size_t per_shard = config_.budget_bytes / config_.shards;
  shards_.reserve(config_.shards);
  for (std::size_t s = 0; s < config_.shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
    shards_.back()->budget = per_shard;
  }
  if (!config_.disk_dir.empty()) {
    store::DiskArtifactCache::Config disk_config;
    disk_config.dir = config_.disk_dir;
    disk_config.budget_bytes = config_.disk_budget_bytes;
    disk_ = std::make_unique<store::DiskArtifactCache>(std::move(disk_config));
  }
}

SharedArtifactCache::~SharedArtifactCache() = default;

SharedArtifactCache::Shard& SharedArtifactCache::shard_for(
    const ArtifactKey& key) const {
  return *shards_[ArtifactKeyHash{}(key) % shards_.size()];
}

const ArtifactCodec* SharedArtifactCache::codec_for(std::uint8_t kind) const {
  for (const auto& [registered_kind, codec] : config_.codecs) {
    if (registered_kind == kind) return &codec;
  }
  return nullptr;
}

std::shared_ptr<const void> SharedArtifactCache::lookup(
    const ArtifactKey& key, std::size_t* bytes_out) {
  {
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      ++shard.hits;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      if (bytes_out) *bytes_out = it->second->bytes;
      return it->second->value;
    }
    ++shard.misses;
  }
  // RAM miss: probe the persistent tier (outside the shard lock — disk
  // I/O must not serialize unrelated keys). A decode failure is a miss;
  // a hit is promoted into the RAM shard WITHOUT writing back to disk.
  if (!disk_) return nullptr;
  const ArtifactCodec* codec = codec_for(key.kind);
  if (codec == nullptr || codec->decode == nullptr) return nullptr;
  std::string payload;
  if (!disk_->load(key, payload)) return nullptr;
  std::shared_ptr<const void> value = codec->decode(payload);
  if (value == nullptr) return nullptr;
  insert_ram(key, value, payload.size());
  if (bytes_out) *bytes_out = payload.size();
  return value;
}

bool SharedArtifactCache::contains(const ArtifactKey& key) const {
  {
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (shard.index.contains(key)) return true;
  }
  return disk_ != nullptr && codec_for(key.kind) != nullptr &&
         disk_->contains(key);
}

bool SharedArtifactCache::insert_ram(const ArtifactKey& key,
                                     std::shared_ptr<const void> value,
                                     std::size_t bytes) {
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (shard.index.contains(key)) return false;  // First writer won the race.
  shard.lru.push_front(Shard::Entry{key, std::move(value), bytes});
  shard.index.emplace(shard.lru.front().key, shard.lru.begin());
  shard.bytes += bytes;
  ++shard.insertions;
  // Same exemption as the session LRU: the freshly inserted entry stays
  // even when it alone blows the shard budget.
  while (shard.bytes > shard.budget && shard.lru.size() > 1) {
    const Shard::Entry& victim = shard.lru.back();
    shard.bytes -= victim.bytes;
    shard.index.erase(victim.key);
    shard.lru.pop_back();
    ++shard.evictions;
  }
  return true;
}

void SharedArtifactCache::insert(const ArtifactKey& key,
                                 std::shared_ptr<const void> value,
                                 std::size_t bytes) {
  const bool inserted = insert_ram(key, value, bytes);
  // Write-through on fresh inserts only (a racing loser's artifact is
  // bit-identical by the determinism contract, so one write suffices).
  if (!inserted || !disk_) return;
  const ArtifactCodec* codec = codec_for(key.kind);
  if (codec == nullptr || codec->encode == nullptr) return;
  disk_->store(key, codec->encode(value.get()));
}

SharedCacheStats SharedArtifactCache::stats() const {
  SharedCacheStats stats;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    stats.hits += shard->hits;
    stats.misses += shard->misses;
    stats.insertions += shard->insertions;
    stats.evictions += shard->evictions;
    stats.bytes += shard->bytes;
    stats.entries += shard->lru.size();
  }
  if (disk_) {
    const store::DiskArtifactCache::Stats disk = disk_->stats();
    stats.disk_hits = disk.hits;
    stats.disk_misses = disk.misses;
    stats.disk_writes = disk.writes;
    stats.disk_bytes = disk.bytes;
    stats.disk_entries = disk.files;
  }
  return stats;
}

void SharedArtifactCache::clear() {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->lru.clear();
    shard->index.clear();
    shard->bytes = 0;
  }
}

}  // namespace dmv::session
