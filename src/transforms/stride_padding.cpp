#include <stdexcept>

#include "dmv/transforms/transforms.hpp"

namespace dmv::transforms {

void pad_innermost_stride(Sdfg& sdfg, const std::string& data,
                          std::int64_t multiple_elements) {
  if (multiple_elements <= 0) {
    throw std::invalid_argument("pad_innermost_stride: bad multiple");
  }
  ir::DataDescriptor& descriptor = sdfg.array(data);
  const int rank = descriptor.rank();
  if (rank < 2) {
    throw std::invalid_argument(
        "pad_innermost_stride: container must be at least 2-D");
  }
  // Assumes a row-major layout (last dimension contiguous). Rebuild the
  // strides with the row length rounded up to the requested multiple, so
  // each row starts on a fresh cache line (Fig 8c post-padding). The
  // padding elements exist in the allocation but are never addressed.
  const symbolic::Expr padded_row =
      symbolic::ceil_div(descriptor.shape[rank - 1],
                         symbolic::Expr(multiple_elements)) *
      multiple_elements;
  std::vector<symbolic::Expr> strides(rank, symbolic::Expr(1));
  strides[rank - 2] = padded_row;
  for (int d = rank - 3; d >= 0; --d) {
    strides[d] = strides[d + 1] * descriptor.shape[d + 1];
  }
  descriptor.strides = std::move(strides);
}

}  // namespace dmv::transforms
