#include <algorithm>
#include <stdexcept>

#include "dmv/transforms/transforms.hpp"

namespace dmv::transforms {

void loop_interchange(State& state, NodeId map_entry,
                      const std::vector<int>& order) {
  ir::Node& entry = state.node(map_entry);
  if (entry.kind != ir::NodeKind::MapEntry) {
    throw std::invalid_argument("loop_interchange: node is not a map entry");
  }
  if (order.size() != entry.map.params.size()) {
    throw std::invalid_argument("loop_interchange: order size mismatch");
  }
  std::vector<int> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (sorted[i] != static_cast<int>(i)) {
      throw std::invalid_argument("loop_interchange: not a permutation");
    }
  }
  std::vector<std::string> params;
  std::vector<ir::Range> ranges;
  params.reserve(order.size());
  ranges.reserve(order.size());
  for (int old_position : order) {
    params.push_back(entry.map.params[old_position]);
    ranges.push_back(entry.map.ranges[old_position]);
  }
  entry.map.params = std::move(params);
  entry.map.ranges = std::move(ranges);
  // Memlets reference parameters by name, so nothing else changes: only
  // the ITERATION ORDER over the same iteration space is different, which
  // is exactly the semantics of loop interchange on a parallel map.
}

}  // namespace dmv::transforms
