#include <algorithm>
#include <stdexcept>

#include "dmv/transforms/transforms.hpp"

namespace dmv::transforms {

void tile_map(State& state, NodeId map_entry, const std::string& param,
              std::int64_t tile_size) {
  if (tile_size <= 0) {
    throw std::invalid_argument("tile_map: tile size must be positive");
  }
  ir::Node& entry = state.node(map_entry);
  if (entry.kind != ir::NodeKind::MapEntry) {
    throw std::invalid_argument("tile_map: node is not a map entry");
  }
  auto it = std::find(entry.map.params.begin(), entry.map.params.end(),
                      param);
  if (it == entry.map.params.end()) {
    throw std::invalid_argument("tile_map: map has no parameter '" + param +
                                "'");
  }
  const std::size_t position = it - entry.map.params.begin();
  // Copy: the insertions below invalidate references into the vector.
  const ir::Range range = entry.map.ranges[position];
  if (!range.step.is_constant(1)) {
    throw std::invalid_argument("tile_map: only unit-step ranges supported");
  }
  const symbolic::Expr extent = range.end - range.begin + 1;
  if (extent.is_constant() && extent.constant_value() % tile_size != 0) {
    throw std::invalid_argument(
        "tile_map: extent " + std::to_string(extent.constant_value()) +
        " not divisible by tile size " + std::to_string(tile_size));
  }
  const std::string tile_param = param + "_tile";
  for (const std::string& existing : entry.map.params) {
    if (existing == tile_param) {
      throw std::invalid_argument("tile_map: parameter '" + tile_param +
                                  "' already exists");
    }
  }

  // Outer tile counter, outermost position.
  ir::Range tile_range;
  tile_range.begin = 0;
  tile_range.end = extent / tile_size - 1;
  tile_range.step = 1;
  entry.map.params.insert(entry.map.params.begin(), tile_param);
  entry.map.ranges.insert(entry.map.ranges.begin(), tile_range);

  // The original parameter now walks one tile window; its bounds depend
  // on the tile counter, which IterationSpace evaluates level by level.
  const symbolic::Expr window_base =
      range.begin + symbolic::Expr::symbol(tile_param) * tile_size;
  ir::Range& inner = entry.map.ranges[position + 1];
  inner.begin = window_base;
  inner.end = window_base + (tile_size - 1);
  inner.step = 1;
}

}  // namespace dmv::transforms
