#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>

#include "dmv/transforms/transforms.hpp"

namespace dmv::transforms {

namespace {

using ir::Edge;
using ir::Memlet;
using ir::Node;
using ir::NodeKind;
using ir::Subset;

bool ranges_equal(const std::vector<ir::Range>& a,
                  const std::vector<ir::Range>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!a[i].begin.equals(b[i].begin) || !a[i].end.equals(b[i].end) ||
        !a[i].step.equals(b[i].step)) {
      return false;
    }
  }
  return true;
}

Subset rename_params(const Subset& subset,
                     const std::map<std::string, symbolic::Expr>& renames) {
  Subset result;
  result.ranges.reserve(subset.ranges.size());
  for (const ir::Range& range : subset.ranges) {
    result.ranges.push_back(ir::Range{range.begin.substitute(renames),
                                      range.end.substitute(renames),
                                      range.step.substitute(renames)});
  }
  return result;
}

bool subsets_equal(const Subset& a, const Subset& b) {
  if (a.ranges.size() != b.ranges.size()) return false;
  for (std::size_t i = 0; i < a.ranges.size(); ++i) {
    if (!a.ranges[i].begin.equals(b.ranges[i].begin) ||
        !a.ranges[i].end.equals(b.ranges[i].end) ||
        !a.ranges[i].step.equals(b.ranges[i].step)) {
      return false;
    }
  }
  return true;
}

// All access nodes of `data` across the whole SDFG.
int count_access_nodes(const Sdfg& sdfg, const std::string& data) {
  int count = 0;
  for (const State& state : sdfg.states()) {
    for (const Node& node : state.nodes()) {
      if (node.kind == NodeKind::Access && node.data == data) ++count;
    }
  }
  return count;
}

// The single edge matching a predicate, or nullptr if zero or many.
template <typename Pred>
const Edge* unique_edge(const State& state, Pred&& pred) {
  const Edge* found = nullptr;
  for (const Edge& edge : state.edges()) {
    if (!pred(edge)) continue;
    if (found != nullptr) return nullptr;
    found = &edge;
  }
  return found;
}

}  // namespace

std::vector<FusionCandidate> find_fusion_candidates(const Sdfg& sdfg) {
  std::vector<FusionCandidate> candidates;
  for (int s = 0; s < static_cast<int>(sdfg.states().size()); ++s) {
    const State& state = sdfg.states()[s];
    for (const Node& node : state.nodes()) {
      // Pattern root: a top-level access node of a transient.
      if (node.kind != NodeKind::Access) continue;
      if (node.scope_parent != ir::kNoNode) continue;
      if (!sdfg.has_array(node.data)) continue;
      if (!sdfg.array(node.data).transient) continue;
      // This must be the transient's only access node in the program.
      if (count_access_nodes(sdfg, node.data) != 1) continue;

      std::vector<const Edge*> in = state.in_edges(node.id);
      std::vector<const Edge*> out = state.out_edges(node.id);
      if (in.size() != 1 || out.size() != 1) continue;
      const Node& producer_exit = state.node(in[0]->src);
      const Node& consumer_entry = state.node(out[0]->dst);
      if (producer_exit.kind != NodeKind::MapExit ||
          consumer_entry.kind != NodeKind::MapEntry) {
        continue;
      }
      const NodeId first_entry = producer_exit.paired;
      const Node& first = state.node(first_entry);
      if (first.scope_parent != ir::kNoNode ||
          consumer_entry.scope_parent != ir::kNoNode) {
        continue;
      }
      if (!ranges_equal(first.map.ranges, consumer_entry.map.ranges)) {
        continue;
      }
      if (first.map.params.size() != consumer_entry.map.params.size()) {
        continue;
      }

      // Inner producer edge: exactly one tasklet writes the transient.
      const Edge* produce = unique_edge(state, [&](const Edge& edge) {
        return edge.dst == producer_exit.id && !edge.memlet.is_empty() &&
               edge.memlet.data == node.data;
      });
      if (produce == nullptr) continue;
      if (produce->memlet.wcr != ir::Wcr::None) continue;
      if (!produce->memlet.subset.is_single_element()) continue;
      if (state.node(produce->src).kind != NodeKind::Tasklet) continue;

      // Inner consumer edges: the consumer map distributes the transient.
      std::map<std::string, symbolic::Expr> renames;
      for (std::size_t p = 0; p < first.map.params.size(); ++p) {
        renames.emplace(consumer_entry.map.params[p],
                        symbolic::Expr::symbol(first.map.params[p]));
      }
      bool compatible = true;
      bool any_consumer = false;
      for (const Edge& edge : state.edges()) {
        if (edge.src != consumer_entry.id || edge.memlet.is_empty() ||
            edge.memlet.data != node.data) {
          continue;
        }
        any_consumer = true;
        if (!edge.memlet.subset.is_single_element() ||
            !subsets_equal(rename_params(edge.memlet.subset, renames),
                           produce->memlet.subset)) {
          compatible = false;
          break;
        }
      }
      if (!compatible || !any_consumer) continue;

      FusionCandidate candidate;
      candidate.state_index = s;
      candidate.first_entry = first_entry;
      candidate.second_entry = consumer_entry.id;
      candidate.transient = node.data;
      candidates.push_back(std::move(candidate));
    }
  }
  return candidates;
}

void apply_map_fusion(Sdfg& sdfg, const FusionCandidate& candidate) {
  State& state = sdfg.states().at(candidate.state_index);
  const Node& first = state.node(candidate.first_entry);
  const Node& second = state.node(candidate.second_entry);
  if (first.kind != NodeKind::MapEntry ||
      second.kind != NodeKind::MapEntry) {
    throw std::invalid_argument("apply_map_fusion: stale candidate");
  }
  const NodeId first_exit = first.paired;
  const NodeId second_exit = second.paired;

  // The transient's access node between the two maps.
  NodeId bridge = ir::kNoNode;
  for (const Node& node : state.nodes()) {
    if (node.kind == NodeKind::Access && node.data == candidate.transient) {
      bridge = node.id;
      break;
    }
  }
  if (bridge == ir::kNoNode) {
    throw std::invalid_argument("apply_map_fusion: transient access gone");
  }

  // Producer tasklet and its output connector for the transient.
  NodeId producer = ir::kNoNode;
  std::string producer_conn;
  for (const Edge& edge : state.edges()) {
    if (edge.dst == first_exit && !edge.memlet.is_empty() &&
        edge.memlet.data == candidate.transient) {
      producer = edge.src;
      producer_conn = edge.src_conn;
      break;
    }
  }
  if (producer == ir::kNoNode) {
    throw std::invalid_argument("apply_map_fusion: producer edge gone");
  }

  // Parameter renaming: second map's params become the first map's.
  std::map<std::string, symbolic::Expr> renames;
  for (std::size_t p = 0; p < first.map.params.size(); ++p) {
    renames.emplace(second.map.params[p],
                    symbolic::Expr::symbol(first.map.params[p]));
  }

  // Nodes transitively inside the second map (before any mutation).
  std::set<NodeId> second_body;
  for (const Node& node : state.nodes()) {
    for (NodeId scope : state.scope_chain(node.id)) {
      if (scope == candidate.second_entry) {
        second_body.insert(node.id);
        break;
      }
    }
  }

  // Rewrite memlets of every edge touching the second map's interior.
  for (Edge& edge : state.mutable_edges()) {
    const bool interior = second_body.contains(edge.src) ||
                          second_body.contains(edge.dst) ||
                          edge.src == candidate.second_entry;
    if (!interior || edge.memlet.is_empty()) continue;
    edge.memlet.subset = rename_params(edge.memlet.subset, renames);
    if (!edge.memlet.other_subset.ranges.empty()) {
      edge.memlet.other_subset =
          rename_params(edge.memlet.other_subset, renames);
    }
  }

  // Re-parent the second map's direct children (except its exit) into the
  // first map.
  for (Node& node : state.mutable_nodes()) {
    if (node.scope_parent == candidate.second_entry &&
        node.id != second_exit) {
      node.scope_parent = candidate.first_entry;
    }
  }

  // Redirect and rewrite edges.
  std::vector<Edge> kept;
  kept.reserve(state.edges().size());
  for (Edge edge : state.edges()) {
    // Drop the producer's write of the transient and the edges adjacent
    // to the bridging access node (the round-trip fusion eliminates).
    if (edge.dst == first_exit && !edge.memlet.is_empty() &&
        edge.memlet.data == candidate.transient) {
      continue;
    }
    if (edge.src == bridge || edge.dst == bridge) continue;

    if (edge.src == candidate.second_entry) {
      if (!edge.memlet.is_empty() &&
          edge.memlet.data == candidate.transient) {
        // Distribution of the transient becomes a direct scalar handoff
        // from the producer tasklet.
        Edge direct;
        direct.src = producer;
        direct.dst = edge.dst;
        direct.src_conn = producer_conn;
        direct.dst_conn = edge.dst_conn;
        direct.memlet = Memlet::none();
        kept.push_back(std::move(direct));
        continue;
      }
      edge.src = candidate.first_entry;
    }
    if (edge.dst == candidate.second_entry) edge.dst = candidate.first_entry;
    if (edge.src == second_exit) edge.src = first_exit;
    if (edge.dst == second_exit) edge.dst = first_exit;
    kept.push_back(std::move(edge));
  }
  state.mutable_edges() = std::move(kept);

  state.erase_nodes({candidate.second_entry, second_exit, bridge});

  // The transient should now be dead; drop its descriptor if so.
  bool still_used = false;
  for (const State& other : sdfg.states()) {
    for (const Node& node : other.nodes()) {
      if (node.kind == NodeKind::Access && node.data == candidate.transient) {
        still_used = true;
      }
    }
    for (const Edge& edge : other.edges()) {
      if (edge.memlet.data == candidate.transient) still_used = true;
    }
  }
  if (!still_used) sdfg.remove_array(candidate.transient);
}

int fuse_all(Sdfg& sdfg) {
  int fused = 0;
  for (;;) {
    std::vector<FusionCandidate> candidates = find_fusion_candidates(sdfg);
    if (candidates.empty()) return fused;
    apply_map_fusion(sdfg, candidates.front());
    ++fused;
  }
}

}  // namespace dmv::transforms
