#include <algorithm>
#include <stdexcept>

#include "dmv/transforms/transforms.hpp"

namespace dmv::transforms {

namespace {

void check_permutation(const std::vector<int>& permutation, int rank,
                       const char* what) {
  if (static_cast<int>(permutation.size()) != rank) {
    throw std::invalid_argument(std::string(what) + ": rank mismatch");
  }
  std::vector<int> sorted = permutation;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < rank; ++i) {
    if (sorted[i] != i) {
      throw std::invalid_argument(std::string(what) + ": not a permutation");
    }
  }
}

}  // namespace

void permute_dimensions(Sdfg& sdfg, const std::string& data,
                        const std::vector<int>& permutation) {
  ir::DataDescriptor& descriptor = sdfg.array(data);
  check_permutation(permutation, descriptor.rank(), "permute_dimensions");

  std::vector<symbolic::Expr> shape;
  shape.reserve(permutation.size());
  for (int old_dim : permutation) shape.push_back(descriptor.shape[old_dim]);
  descriptor.shape = shape;
  // Physical reshape: the permuted logical order becomes the new
  // row-major layout (this is what changes the memory behaviour).
  descriptor.strides = ir::DataDescriptor::row_major_strides(shape);

  for (State& state : sdfg.states()) {
    for (ir::Edge& edge : state.mutable_edges()) {
      const bool src_side = edge.memlet.data == data;
      const bool dst_side =
          !edge.memlet.other_subset.ranges.empty() &&
          state.node(edge.dst).kind == ir::NodeKind::Access &&
          state.node(edge.dst).data == data;
      if (src_side && edge.memlet.subset.rank() ==
                          static_cast<int>(permutation.size())) {
        ir::Subset permuted;
        for (int old_dim : permutation) {
          permuted.ranges.push_back(edge.memlet.subset.ranges[old_dim]);
        }
        edge.memlet.subset = std::move(permuted);
      }
      if (dst_side && edge.memlet.other_subset.rank() ==
                          static_cast<int>(permutation.size())) {
        ir::Subset permuted;
        for (int old_dim : permutation) {
          permuted.ranges.push_back(edge.memlet.other_subset.ranges[old_dim]);
        }
        edge.memlet.other_subset = std::move(permuted);
      }
    }
  }
}

}  // namespace dmv::transforms
