#include "dmv/builder/program_builder.hpp"

#include <stdexcept>
#include <utility>

#include "dmv/ir/validate.hpp"
#include "dmv/symbolic/parser.hpp"

namespace dmv::builder {

namespace {

using ir::Memlet;
using ir::NodeId;
using symbolic::Expr;

Expr parse_expr(const std::string& text) { return symbolic::parse(text); }

}  // namespace

Subset propagate_subset(const Subset& per_iteration,
                        const std::vector<std::string>& params,
                        const std::vector<Range>& ranges) {
  if (params.size() != ranges.size()) {
    throw std::invalid_argument("propagate_subset: params/ranges mismatch");
  }
  std::map<std::string, Expr> lower;
  std::map<std::string, Expr> upper;
  for (std::size_t p = 0; p < params.size(); ++p) {
    lower.emplace(params[p], ranges[p].begin);
    upper.emplace(params[p], ranges[p].end);
  }
  Subset widened;
  widened.ranges.reserve(per_iteration.ranges.size());
  for (const Range& range : per_iteration.ranges) {
    widened.ranges.push_back(Range{range.begin.substitute(lower),
                                   range.end.substitute(upper),
                                   range.step});
  }
  return widened;
}

ProgramBuilder::ProgramBuilder(std::string name) : sdfg_(std::move(name)) {}

void ProgramBuilder::symbols(const std::vector<std::string>& names) {
  for (const std::string& name : names) sdfg_.add_symbol(name);
}

ir::DataDescriptor& ProgramBuilder::array(
    const std::string& name, const std::vector<std::string>& shape,
    int element_size) {
  std::vector<Expr> extents;
  extents.reserve(shape.size());
  for (const std::string& extent : shape) extents.push_back(parse_expr(extent));
  return sdfg_.add_array(
      ir::DataDescriptor::array(name, std::move(extents), element_size));
}

ir::DataDescriptor& ProgramBuilder::transient(
    const std::string& name, const std::vector<std::string>& shape,
    int element_size) {
  ir::DataDescriptor& descriptor = array(name, shape, element_size);
  descriptor.transient = true;
  return descriptor;
}

ir::State& ProgramBuilder::state(std::string name) {
  if (!scope_stack_.empty()) {
    throw std::logic_error(
        "ProgramBuilder: cannot open a state inside a map scope");
  }
  ir::State& state = sdfg_.add_state(std::move(name));
  current_state_index_ = static_cast<int>(sdfg_.states().size()) - 1;
  last_access_.clear();
  return state;
}

ir::State& ProgramBuilder::current_state() {
  if (current_state_index_ < 0) {
    state("main");
  }
  return sdfg_.states()[current_state_index_];
}

void ProgramBuilder::require_array(const std::string& data) const {
  if (!sdfg_.has_array(data)) {
    throw std::invalid_argument("ProgramBuilder: unknown container '" + data +
                                "'");
  }
}

NodeId ProgramBuilder::read_node(const std::string& data) {
  require_array(data);
  auto it = last_access_.find(data);
  if (it != last_access_.end()) return it->second;
  const NodeId id = current_state().add_access(data);
  last_access_[data] = id;
  return id;
}

NodeId ProgramBuilder::write_node(const std::string& data) {
  require_array(data);
  // A write gets a fresh node unless the container has never been
  // touched: reusing the read node would close an entry->...->exit->node
  // cycle on read-modify-write maps. The fresh node becomes the one
  // later reads reuse, producing the exit -> access -> entry chains the
  // fusion matcher recognizes.
  auto it = last_access_.find(data);
  const ir::State& state = current_state();
  if (it != last_access_.end()) {
    const NodeId existing = it->second;
    const bool untouched = state.in_edges(existing).empty() &&
                           state.out_edges(existing).empty();
    if (untouched) return existing;
  }
  const NodeId id = current_state().add_access(data);
  last_access_[data] = id;
  return id;
}

std::pair<std::vector<std::string>, std::vector<Range>>
ProgramBuilder::parse_map_ranges(const std::vector<MapRange>& ranges) {
  std::vector<std::string> params;
  std::vector<Range> parsed;
  params.reserve(ranges.size());
  parsed.reserve(ranges.size());
  for (const MapRange& range : ranges) {
    Subset subset = Subset::parse(range.range);
    if (subset.ranges.size() != 1) {
      throw std::invalid_argument("ProgramBuilder: map range '" +
                                  range.range +
                                  "' must be a single dimension");
    }
    params.push_back(range.param);
    parsed.push_back(subset.ranges[0]);
  }
  return {std::move(params), std::move(parsed)};
}

void ProgramBuilder::begin_map(const std::string& label,
                               const std::vector<MapRange>& ranges) {
  auto [params, parsed] = parse_map_ranges(ranges);
  ir::MapInfo info;
  info.label = label;
  info.params = params;
  info.ranges = parsed;
  const NodeId scope =
      scope_stack_.empty() ? ir::kNoNode : scope_stack_.back().entry;
  auto [entry, exit] = current_state().add_map(std::move(info), scope);
  scope_stack_.push_back(
      OpenMap{entry, exit, std::move(params), std::move(parsed)});
}

void ProgramBuilder::end_map() {
  if (scope_stack_.empty()) {
    throw std::logic_error("ProgramBuilder: end_map without begin_map");
  }
  scope_stack_.pop_back();
}

void ProgramBuilder::wire_input(const TaskletIo& io, NodeId tasklet) {
  require_array(io.data);
  ir::State& state = current_state();
  // Innermost edge: per-iteration subset onto the tasklet connector.
  Subset subset = Subset::parse(io.subset);
  Memlet inner;
  inner.data = io.data;
  inner.subset = subset;
  state.add_edge(scope_stack_.back().entry, tasklet, std::move(inner),
                 "OUT_" + io.data, io.connector);
  // Widen level by level toward the access node.
  Subset widened = subset;
  for (std::size_t level = scope_stack_.size(); level-- > 0;) {
    const OpenMap& map = scope_stack_[level];
    widened = propagate_subset(widened, map.params, map.ranges);
    Memlet memlet;
    memlet.data = io.data;
    memlet.subset = widened;
    const NodeId dst = map.entry;
    const NodeId src =
        level == 0 ? read_node(io.data) : scope_stack_[level - 1].entry;
    state.add_edge(src, dst, std::move(memlet),
                   level == 0 ? "" : "OUT_" + io.data, "IN_" + io.data);
  }
}

void ProgramBuilder::wire_output(const TaskletIo& io, NodeId tasklet) {
  require_array(io.data);
  ir::State& state = current_state();
  Subset subset = Subset::parse(io.subset);
  Memlet inner;
  inner.data = io.data;
  inner.subset = subset;
  inner.wcr = io.wcr;
  state.add_edge(tasklet, scope_stack_.back().exit, std::move(inner),
                 io.connector, "IN_" + io.data);
  Subset widened = subset;
  for (std::size_t level = scope_stack_.size(); level-- > 0;) {
    const OpenMap& map = scope_stack_[level];
    widened = propagate_subset(widened, map.params, map.ranges);
    Memlet memlet;
    memlet.data = io.data;
    memlet.subset = widened;
    memlet.wcr = io.wcr;
    const NodeId src = map.exit;
    const NodeId dst =
        level == 0 ? write_node(io.data) : scope_stack_[level - 1].exit;
    state.add_edge(src, dst, std::move(memlet), "OUT_" + io.data,
                   level == 0 ? "" : "IN_" + io.data);
  }
}

void ProgramBuilder::mapped_tasklet(const std::string& label,
                                    const std::vector<MapRange>& ranges,
                                    const std::vector<TaskletIo>& inputs,
                                    const std::string& code,
                                    const std::vector<TaskletIo>& outputs) {
  ChainStage stage;
  stage.label = label;
  stage.array_inputs = inputs;
  stage.code = code;
  stage.array_outputs = outputs;
  mapped_chain(label, ranges, {stage});
}

void ProgramBuilder::mapped_chain(const std::string& label,
                                  const std::vector<MapRange>& ranges,
                                  const std::vector<ChainStage>& stages) {
  begin_map(label, ranges);
  ir::State& state = current_state();
  // Chain values produced so far: name -> (producer tasklet, connector).
  std::map<std::string, NodeId> produced;
  for (const ChainStage& stage : stages) {
    const NodeId tasklet = state.add_tasklet(
        stage.label, std::string_view(stage.code), scope_stack_.back().entry);
    for (const TaskletIo& io : stage.array_inputs) {
      wire_input(io, tasklet);
    }
    for (const std::string& name : stage.chain_inputs) {
      auto it = produced.find(name);
      if (it == produced.end()) {
        throw std::invalid_argument(
            "ProgramBuilder: chain input '" + name +
            "' is not produced by an earlier stage");
      }
      state.add_edge(it->second, tasklet, Memlet::none(), name, name);
    }
    for (const TaskletIo& io : stage.array_outputs) {
      wire_output(io, tasklet);
    }
    for (const std::string& name : stage.chain_outputs) {
      produced[name] = tasklet;
    }
  }
  end_map();
}

void ProgramBuilder::copy(const std::string& src,
                          const std::string& src_subset,
                          const std::string& dst,
                          const std::string& dst_subset) {
  require_array(src);
  require_array(dst);
  Memlet memlet;
  memlet.data = src;
  memlet.subset = Subset::parse(src_subset);
  memlet.other_subset = Subset::parse(dst_subset);
  if (!memlet.subset.num_elements().equals(
          memlet.other_subset.num_elements())) {
    throw std::invalid_argument(
        "ProgramBuilder::copy: subset volumes differ (" +
        memlet.subset.to_string() + " vs " + memlet.other_subset.to_string() +
        ")");
  }
  const NodeId source = read_node(src);
  const NodeId sink = write_node(dst);
  current_state().add_edge(source, sink, std::move(memlet));
}

Sdfg ProgramBuilder::take() {
  if (!scope_stack_.empty()) {
    throw std::logic_error("ProgramBuilder: take() with an open map scope");
  }
  ir::validate_or_throw(sdfg_);
  return std::move(sdfg_);
}

}  // namespace dmv::builder
