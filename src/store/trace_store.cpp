#include "dmv/store/trace_store.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "byte_io.hpp"
#include "dmv/par/par.hpp"

namespace dmv::store {
namespace {

using detail::ByteReader;

// Column section tags. The writer picks whichever encoding is smallest
// for the data at hand; the reader is tag-driven, so any integer column
// may arrive under any integer tag.
constexpr std::uint8_t kTagConst = 0;
constexpr std::uint8_t kTagPacked = 1;
constexpr std::uint8_t kTagDict = 2;
constexpr std::uint8_t kTagBitset = 3;

// Dictionary encoding stops paying for itself once the alphabet stops
// being tiny; past this, fall back to delta bit-packing.
constexpr std::size_t kMaxDict = 4096;

constexpr std::size_t kDirectoryEntryBytes = 56;

/// Appends bits LSB-first; byte layout is independent of host order.
struct BitWriter {
  explicit BitWriter(std::string& out) : out(out) {}

  void push(std::uint64_t value, int width) {
    acc |= value << bits;
    if (bits + width >= 64) {
      for (int i = 0; i < 8; ++i) {
        out.push_back(static_cast<char>((acc >> (8 * i)) & 0xff));
      }
      const int consumed = 64 - bits;
      acc = consumed >= 64 ? 0 : value >> consumed;
      bits = bits + width - 64;
    } else {
      bits += width;
    }
  }

  void flush() {
    const int pending = (bits + 7) / 8;
    for (int i = 0; i < pending; ++i) {
      out.push_back(static_cast<char>((acc >> (8 * i)) & 0xff));
    }
    acc = 0;
    bits = 0;
  }

  std::string& out;
  std::uint64_t acc = 0;
  int bits = 0;
};

/// Pulls bits LSB-first through the bounds-checked ByteReader, so a
/// truncated bitstream fails like any other truncation.
struct BitReader {
  explicit BitReader(ByteReader& reader) : reader(reader) {}

  std::uint64_t pull(int width) {
    while (bits < width && bits <= 56) {
      acc |= static_cast<std::uint64_t>(reader.u8()) << bits;
      bits += 8;
    }
    if (bits >= width) {
      const std::uint64_t value =
          width == 64 ? acc : acc & ((std::uint64_t{1} << width) - 1);
      acc = width == 64 ? 0 : acc >> width;
      bits -= width;
      return value;
    }
    // width > bits with a near-full accumulator: take what we have and
    // recurse for the remainder (at most once).
    const std::uint64_t low = acc;
    const int have = bits;
    acc = 0;
    bits = 0;
    return low | (pull(width - have) << have);
  }

  ByteReader& reader;
  std::uint64_t acc = 0;
  int bits = 0;
};

/// tag + u64 size prefix with the size patched in on close().
class Section {
 public:
  Section(std::string& out, std::uint8_t tag) : out_(out) {
    detail::put_u8(out_, tag);
    size_pos_ = out_.size();
    detail::put_u64(out_, 0);
  }
  void close() { detail::patch_u64(out_, size_pos_, out_.size() - size_pos_ - 8); }

 private:
  std::string& out_;
  std::size_t size_pos_ = 0;
};

inline std::uint64_t zigzag(std::uint64_t wrapped_delta) {
  const std::int64_t signed_delta = static_cast<std::int64_t>(wrapped_delta);
  return (wrapped_delta << 1) ^ static_cast<std::uint64_t>(signed_delta >> 63);
}

inline std::uint64_t unzigzag(std::uint64_t encoded) {
  return (encoded >> 1) ^ (~(encoded & 1) + 1);
}

template <typename T>
std::uint64_t widened(T value) {
  return static_cast<std::uint64_t>(static_cast<std::int64_t>(value));
}

/// Detects v[i] == base + i*delta in wrapping u64 arithmetic (the
/// timestep column — the global event index — always matches).
template <typename T>
bool is_arithmetic_seq(std::span<const T> values, std::int64_t& base,
                       std::uint64_t& delta) {
  base = static_cast<std::int64_t>(values[0]);
  delta = values.size() > 1 ? widened(values[1]) - widened(values[0]) : 0;
  for (std::size_t i = 2; i < values.size(); ++i) {
    if (widened(values[i]) - widened(values[i - 1]) != delta) return false;
  }
  return true;
}

template <typename T>
void encode_int_column(std::span<const T> values, bool try_dict,
                       std::string& out) {
  if (values.empty()) {
    Section section(out, kTagConst);
    section.close();
    return;
  }
  std::int64_t base = 0;
  std::uint64_t delta = 0;
  if (is_arithmetic_seq(values, base, delta)) {
    Section section(out, kTagConst);
    detail::put_i64(out, base);
    detail::put_u64(out, delta);
    section.close();
    return;
  }
  if (try_dict) {
    std::vector<std::int64_t> dict;
    dict.reserve(64);
    for (const T value : values) {
      dict.push_back(static_cast<std::int64_t>(value));
    }
    std::sort(dict.begin(), dict.end());
    dict.erase(std::unique(dict.begin(), dict.end()), dict.end());
    if (dict.size() <= kMaxDict) {
      Section section(out, kTagDict);
      detail::put_u32(out, static_cast<std::uint32_t>(dict.size()));
      for (const std::int64_t entry : dict) detail::put_i64(out, entry);
      const int width =
          dict.size() == 1 ? 0 : std::bit_width(dict.size() - 1);
      detail::put_u8(out, static_cast<std::uint8_t>(width));
      if (width > 0) {
        BitWriter bits(out);
        for (const T value : values) {
          const auto it = std::lower_bound(dict.begin(), dict.end(),
                                           static_cast<std::int64_t>(value));
          bits.push(static_cast<std::uint64_t>(it - dict.begin()), width);
        }
        bits.flush();
      }
      section.close();
      return;
    }
  }
  // Delta + zigzag, bit-packed at the chunk's minimal width.
  int width = 1;
  std::uint64_t prev = widened(values[0]);
  for (std::size_t i = 1; i < values.size(); ++i) {
    const std::uint64_t current = widened(values[i]);
    width = std::max(width, static_cast<int>(std::bit_width(
                                zigzag(current - prev) | 1)));
    prev = current;
  }
  Section section(out, kTagPacked);
  detail::put_i64(out, static_cast<std::int64_t>(values[0]));
  detail::put_u8(out, static_cast<std::uint8_t>(width));
  BitWriter bits(out);
  prev = widened(values[0]);
  for (std::size_t i = 1; i < values.size(); ++i) {
    const std::uint64_t current = widened(values[i]);
    bits.push(zigzag(current - prev), width);
    prev = current;
  }
  bits.flush();
  section.close();
}

void encode_bitset_column(std::span<const std::uint8_t> values,
                          std::string& out) {
  Section section(out, kTagBitset);
  for (std::size_t i = 0; i < values.size(); i += 8) {
    std::uint8_t byte = 0;
    for (std::size_t j = 0; j < 8 && i + j < values.size(); ++j) {
      if (values[i + j] != 0) byte |= static_cast<std::uint8_t>(1u << j);
    }
    out.push_back(static_cast<char>(byte));
  }
  section.close();
}

void decode_int_column(ByteReader& reader, std::int64_t n,
                       std::vector<std::int64_t>& out) {
  const std::uint8_t tag = reader.u8();
  const std::uint64_t size = reader.u64();
  if (size > reader.remaining()) {
    reader.fail("column section overruns chunk payload");
  }
  const std::size_t start = reader.position();
  out.assign(static_cast<std::size_t>(n), 0);
  switch (tag) {
    case kTagConst: {
      if (n == 0) break;
      const std::int64_t base = reader.i64();
      const std::uint64_t delta = reader.u64();
      std::uint64_t value = static_cast<std::uint64_t>(base);
      for (std::int64_t i = 0; i < n; ++i) {
        out[static_cast<std::size_t>(i)] = static_cast<std::int64_t>(value);
        value += delta;
      }
      break;
    }
    case kTagPacked: {
      if (n == 0) reader.fail("packed column in empty chunk");
      const std::int64_t base = reader.i64();
      const int width = reader.u8();
      if (width < 1 || width > 64) reader.fail("bad packed column width");
      BitReader bits(reader);
      std::uint64_t value = static_cast<std::uint64_t>(base);
      out[0] = base;
      for (std::int64_t i = 1; i < n; ++i) {
        value += unzigzag(bits.pull(width));
        out[static_cast<std::size_t>(i)] = static_cast<std::int64_t>(value);
      }
      break;
    }
    case kTagDict: {
      if (n == 0) reader.fail("dictionary column in empty chunk");
      const std::uint32_t dict_size = reader.u32();
      if (dict_size == 0 || dict_size > kMaxDict) {
        reader.fail("bad dictionary size");
      }
      std::vector<std::int64_t> dict(dict_size);
      for (std::uint32_t i = 0; i < dict_size; ++i) dict[i] = reader.i64();
      const int width = reader.u8();
      if (width > 32) reader.fail("bad dictionary index width");
      if (width == 0) {
        for (std::int64_t i = 0; i < n; ++i) {
          out[static_cast<std::size_t>(i)] = dict[0];
        }
      } else {
        BitReader bits(reader);
        for (std::int64_t i = 0; i < n; ++i) {
          const std::uint64_t index = bits.pull(width);
          if (index >= dict_size) reader.fail("dictionary index out of range");
          out[static_cast<std::size_t>(i)] = dict[index];
        }
      }
      break;
    }
    default:
      reader.fail("unknown column tag " + std::to_string(tag));
  }
  if (reader.position() - start != size) {
    reader.fail("column section size mismatch");
  }
}

void decode_bitset_column(ByteReader& reader, std::int64_t n,
                          std::vector<std::uint8_t>& out) {
  const std::uint8_t tag = reader.u8();
  const std::uint64_t size = reader.u64();
  if (tag != kTagBitset) reader.fail("is_write column is not a bitset");
  const std::uint64_t expected = static_cast<std::uint64_t>((n + 7) / 8);
  if (size != expected) reader.fail("bitset section size mismatch");
  out.assign(static_cast<std::size_t>(n), 0);
  for (std::int64_t i = 0; i < n; i += 8) {
    const std::uint8_t byte = reader.u8();
    for (std::int64_t j = 0; j < 8 && i + j < n; ++j) {
      out[static_cast<std::size_t>(i + j)] =
          (byte >> j) & 1 ? std::uint8_t{1} : std::uint8_t{0};
    }
  }
}

/// FNV-1a over the DECODED values of all six columns (widened to 64
/// bits), in column order — the quantity the per-chunk checksum gates.
template <typename C, typename F, typename W, typename T, typename E,
          typename K>
std::uint64_t columns_checksum(std::int64_t n, C container, F flat, W write,
                               T timestep, E execution, K tasklet) {
  std::uint64_t hash = detail::kFnvOffset;
  hash = detail::fnv1a(hash, static_cast<std::uint64_t>(n));
  for (std::int64_t i = 0; i < n; ++i) hash = detail::fnv1a(hash, container(i));
  for (std::int64_t i = 0; i < n; ++i) hash = detail::fnv1a(hash, flat(i));
  for (std::int64_t i = 0; i < n; ++i) hash = detail::fnv1a(hash, write(i));
  for (std::int64_t i = 0; i < n; ++i) hash = detail::fnv1a(hash, timestep(i));
  for (std::int64_t i = 0; i < n; ++i) hash = detail::fnv1a(hash, execution(i));
  for (std::int64_t i = 0; i < n; ++i) hash = detail::fnv1a(hash, tasklet(i));
  return hash;
}

struct ChunkBound {
  std::int64_t event_offset = 0;
  std::int64_t event_count = 0;
  std::int64_t execution_offset = 0;
  std::int64_t execution_count = 0;
};

struct EncodedChunk {
  std::string payload;
  std::uint64_t checksum = 0;
};

EncodedChunk encode_chunk(const sim::EventList& events, std::int64_t offset,
                          std::int64_t count) {
  const auto off = static_cast<std::size_t>(offset);
  const auto cnt = static_cast<std::size_t>(count);
  const auto container = events.container_column().subspan(off, cnt);
  const auto flat = events.flat_column().subspan(off, cnt);
  const auto write = events.write_column().subspan(off, cnt);
  const auto timestep = events.timestep_column().subspan(off, cnt);
  const auto execution = events.execution_column().subspan(off, cnt);
  const auto tasklet = events.tasklet_column().subspan(off, cnt);

  EncodedChunk chunk;
  encode_int_column(container, /*try_dict=*/true, chunk.payload);
  encode_int_column(flat, /*try_dict=*/false, chunk.payload);
  encode_bitset_column(write, chunk.payload);
  encode_int_column(timestep, /*try_dict=*/false, chunk.payload);
  encode_int_column(execution, /*try_dict=*/false, chunk.payload);
  encode_int_column(tasklet, /*try_dict=*/true, chunk.payload);
  chunk.checksum = columns_checksum(
      count, [&](std::int64_t i) { return widened(container[i]); },
      [&](std::int64_t i) { return widened(flat[i]); },
      [&](std::int64_t i) { return std::uint64_t{write[i] != 0 ? 1u : 0u}; },
      [&](std::int64_t i) { return widened(timestep[i]); },
      [&](std::int64_t i) { return widened(execution[i]); },
      [&](std::int64_t i) { return widened(tasklet[i]); });
  return chunk;
}

/// Chunk boundaries: the trace plan's chunks when one is supplied (its
/// event/execution offsets are exact and free), otherwise fixed event
/// slices with execution offsets read off the execution column.
std::vector<ChunkBound> chunk_bounds(const sim::EventList& events,
                                     const StoreOptions& options,
                                     const sim::TracePlan* plan) {
  const std::int64_t total = static_cast<std::int64_t>(events.size());
  const std::int64_t target = std::max<std::int64_t>(1, options.chunk_events);
  const auto execution = events.execution_column();
  const auto fill_execution = [&](ChunkBound& bound) {
    const std::int64_t first =
        execution[static_cast<std::size_t>(bound.event_offset)];
    const std::int64_t last = execution[static_cast<std::size_t>(
        bound.event_offset + bound.event_count - 1)];
    bound.execution_offset = first;
    bound.execution_count = std::max<std::int64_t>(0, last - first + 1);
  };

  std::vector<ChunkBound> bounds;
  if (plan != nullptr && plan->parallelizable && plan->total_events == total) {
    for (const sim::TraceChunk& chunk : plan->chunks) {
      if (chunk.event_count <= 0) continue;
      if (chunk.event_count <= 2 * target) {
        bounds.push_back({chunk.event_offset, chunk.event_count,
                          chunk.execution_offset, chunk.execution_count});
        continue;
      }
      // Oversized plan chunk: split into target-sized slices whose
      // execution offsets come from the column.
      for (std::int64_t begin = chunk.event_offset;
           begin < chunk.event_offset + chunk.event_count; begin += target) {
        ChunkBound bound;
        bound.event_offset = begin;
        bound.event_count =
            std::min(target, chunk.event_offset + chunk.event_count - begin);
        fill_execution(bound);
        bounds.push_back(bound);
      }
    }
    // Plans tile the event stream by construction; if this one does
    // not (foreign plan, mismatched trace), fall back to plain slices
    // so the directory invariant holds.
    std::int64_t covered = 0;
    bool tiled = true;
    for (const ChunkBound& bound : bounds) {
      if (bound.event_offset != covered) {
        tiled = false;
        break;
      }
      covered += bound.event_count;
    }
    if (tiled && covered == total) return bounds;
    bounds.clear();
  }
  for (std::int64_t begin = 0; begin < total; begin += target) {
    ChunkBound bound;
    bound.event_offset = begin;
    bound.event_count = std::min(target, total - begin);
    fill_execution(bound);
    bounds.push_back(bound);
  }
  return bounds;
}

std::string pack_core(const sim::EventList& events,
                      const std::vector<std::string>& containers,
                      const std::vector<layout::ConcreteLayout>& layouts,
                      std::int64_t executions, const StoreOptions& options,
                      const sim::TracePlan* plan) {
  if (containers.size() != layouts.size()) {
    throw std::invalid_argument(
        "trace_store: container/layout tables differ in size");
  }
  events.ensure_resident();
  const std::vector<ChunkBound> bounds = chunk_bounds(events, options, plan);

  // Encode chunks in parallel into private buffers; assembly below is
  // serial, so the file bytes are identical at any thread count.
  std::vector<EncodedChunk> encoded(bounds.size());
  par::parallel_for(bounds.size(), 1, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      encoded[i] = encode_chunk(events, bounds[i].event_offset,
                                bounds[i].event_count);
    }
  });

  std::string out;
  out += "DMVS";
  detail::put_u32(out, kTraceFormatVersion);
  const std::size_t file_bytes_pos = out.size();
  detail::put_u64(out, 0);  // patched below
  detail::put_i64(out, static_cast<std::int64_t>(events.size()));
  detail::put_i64(out, executions);
  detail::put_u32(out, static_cast<std::uint32_t>(containers.size()));
  detail::put_u32(out, static_cast<std::uint32_t>(bounds.size()));
  for (std::size_t c = 0; c < containers.size(); ++c) {
    const layout::ConcreteLayout& layout = layouts[c];
    if (layout.shape.size() != layout.strides.size()) {
      throw std::invalid_argument("trace_store: layout " + containers[c] +
                                  " has mismatched shape/stride ranks");
    }
    detail::put_u32(out, static_cast<std::uint32_t>(containers[c].size()));
    out += containers[c];
    detail::put_u32(out, static_cast<std::uint32_t>(layout.shape.size()));
    detail::put_i64(out, layout.element_size);
    detail::put_i64(out, layout.start_offset);
    detail::put_i64(out, layout.base_address);
    for (const std::int64_t extent : layout.shape) detail::put_i64(out, extent);
    for (const std::int64_t stride : layout.strides) {
      detail::put_i64(out, stride);
    }
  }
  std::uint64_t payload_offset =
      out.size() + bounds.size() * kDirectoryEntryBytes;
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    detail::put_i64(out, bounds[i].event_offset);
    detail::put_i64(out, bounds[i].event_count);
    detail::put_i64(out, bounds[i].execution_offset);
    detail::put_i64(out, bounds[i].execution_count);
    detail::put_u64(out, payload_offset);
    detail::put_u64(out, encoded[i].payload.size());
    detail::put_u64(out, encoded[i].checksum);
    payload_offset += encoded[i].payload.size();
  }
  for (const EncodedChunk& chunk : encoded) out += chunk.payload;
  detail::patch_u64(out, file_bytes_pos, out.size());
  return out;
}

void write_bytes_file(const std::string& bytes, const std::string& path) {
  namespace fs = std::filesystem;
  const fs::path target(path);
  if (target.has_parent_path()) fs::create_directories(target.parent_path());
  // Temp + rename: readers (including concurrent processes sharing a
  // cache directory) never observe a partially written file.
  fs::path temp = target;
  temp += ".tmp." + std::to_string(::getpid());
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("trace_store: cannot write " + temp.string());
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.close();
    if (!out) {
      std::error_code ec;
      fs::remove(temp, ec);
      throw std::runtime_error("trace_store: short write to " + temp.string());
    }
  }
  fs::rename(temp, target);
}

}  // namespace

std::string pack_trace(const sim::AccessTrace& trace,
                       const StoreOptions& options,
                       const sim::TracePlan* plan) {
  return pack_core(trace.events, trace.containers, trace.layouts,
                   trace.executions, options, plan);
}

std::string pack_events(const sim::EventList& events,
                        const StoreOptions& options) {
  // Bare event lists (the spill backing) carry no container table and
  // no meaningful execution total.
  return pack_core(events, {}, {}, 0, options, nullptr);
}

void write_trace_file(const sim::AccessTrace& trace, const std::string& path,
                      const StoreOptions& options,
                      const sim::TracePlan* plan) {
  write_bytes_file(pack_trace(trace, options, plan), path);
}

struct TraceStoreReader::Impl {
  void* map = nullptr;
  std::size_t map_size = 0;
  std::string owned;
  const char* data = nullptr;
  std::size_t size = 0;

  std::int64_t total_events = 0;
  std::int64_t executions = 0;
  std::vector<std::string> containers;
  std::vector<layout::ConcreteLayout> layouts;
  std::vector<ChunkInfo> chunks;
  std::size_t payload_bytes = 0;

  ~Impl() {
    if (map != nullptr) ::munmap(map, map_size);
  }

  void parse() {
    ByteReader reader(data, size, "trace_store");
    if (size == 0) reader.fail("empty file");
    if (reader.str(4) != "DMVS") {
      reader.fail("bad magic (not a DMVS trace store)");
    }
    const std::uint32_t version = reader.u32();
    if (version != kTraceFormatVersion) {
      reader.fail("unsupported format version " + std::to_string(version) +
                  " (this reader handles version " +
                  std::to_string(kTraceFormatVersion) + ")");
    }
    const std::uint64_t declared = reader.u64();
    if (declared != size) {
      reader.fail("truncated file: header declares " +
                  std::to_string(declared) + " bytes, file has " +
                  std::to_string(size));
    }
    total_events = reader.i64();
    executions = reader.i64();
    if (total_events < 0 || executions < 0) {
      reader.fail("negative count in header");
    }
    const std::uint32_t container_count = reader.u32();
    const std::uint32_t chunk_count = reader.u32();
    if (std::uint64_t{chunk_count} * kDirectoryEntryBytes > size) {
      reader.fail("chunk directory larger than file");
    }
    containers.reserve(container_count);
    layouts.reserve(container_count);
    for (std::uint32_t c = 0; c < container_count; ++c) {
      const std::uint32_t name_length = reader.u32();
      layout::ConcreteLayout layout;
      layout.name = reader.str(name_length);
      const std::uint32_t rank = reader.u32();
      if (rank > 255) reader.fail("implausible container rank");
      layout.element_size = static_cast<int>(reader.i64());
      if (layout.element_size <= 0) {
        reader.fail("non-positive element size for container " + layout.name);
      }
      layout.start_offset = reader.i64();
      layout.base_address = reader.i64();
      layout.shape.resize(rank);
      layout.strides.resize(rank);
      for (std::uint32_t d = 0; d < rank; ++d) layout.shape[d] = reader.i64();
      for (std::uint32_t d = 0; d < rank; ++d) layout.strides[d] = reader.i64();
      containers.push_back(layout.name);
      layouts.push_back(std::move(layout));
    }
    chunks.resize(chunk_count);
    std::int64_t covered = 0;
    for (std::uint32_t i = 0; i < chunk_count; ++i) {
      ChunkInfo& chunk = chunks[i];
      chunk.event_offset = reader.i64();
      chunk.event_count = reader.i64();
      chunk.execution_offset = reader.i64();
      chunk.execution_count = reader.i64();
      chunk.payload_offset = reader.u64();
      chunk.payload_size = reader.u64();
      chunk.checksum = reader.u64();
      if (chunk.event_count <= 0 || chunk.event_offset != covered) {
        reader.fail("chunk directory does not tile the event stream");
      }
      covered += chunk.event_count;
      if (chunk.payload_offset > size ||
          chunk.payload_size > size - chunk.payload_offset) {
        reader.fail("chunk " + std::to_string(i) + " payload out of bounds");
      }
      payload_bytes += chunk.payload_size;
    }
    if (covered != total_events) {
      reader.fail("chunk directory covers " + std::to_string(covered) +
                  " of " + std::to_string(total_events) + " events");
    }
  }

  void decode_chunk(std::size_t index, sim::EventList& out) const {
    const ChunkInfo& info = chunks[index];
    if (out.size() <
        static_cast<std::size_t>(info.event_offset + info.event_count)) {
      throw std::runtime_error(
          "trace_store: output list smaller than chunk slice");
    }
    ByteReader reader(data + info.payload_offset,
                      static_cast<std::size_t>(info.payload_size),
                      "trace_store");
    const std::int64_t n = info.event_count;
    std::vector<std::int64_t> container, flat, timestep, execution, tasklet;
    std::vector<std::uint8_t> write;
    decode_int_column(reader, n, container);
    decode_int_column(reader, n, flat);
    decode_bitset_column(reader, n, write);
    decode_int_column(reader, n, timestep);
    decode_int_column(reader, n, execution);
    decode_int_column(reader, n, tasklet);
    if (reader.remaining() != 0) {
      reader.fail("trailing bytes after chunk columns");
    }
    const std::uint64_t actual = columns_checksum(
        n, [&](std::int64_t i) { return static_cast<std::uint64_t>(container[i]); },
        [&](std::int64_t i) { return static_cast<std::uint64_t>(flat[i]); },
        [&](std::int64_t i) { return std::uint64_t{write[i] != 0 ? 1u : 0u}; },
        [&](std::int64_t i) { return static_cast<std::uint64_t>(timestep[i]); },
        [&](std::int64_t i) { return static_cast<std::uint64_t>(execution[i]); },
        [&](std::int64_t i) { return static_cast<std::uint64_t>(tasklet[i]); });
    if (actual != info.checksum) {
      reader.fail("chunk " + std::to_string(index) +
                  " checksum mismatch (corrupt payload)");
    }
    for (std::int64_t i = 0; i < n; ++i) {
      const std::int64_t raw_container = container[static_cast<std::size_t>(i)];
      const std::int64_t raw_tasklet = tasklet[static_cast<std::size_t>(i)];
      if (raw_container != static_cast<std::int32_t>(raw_container) ||
          raw_tasklet != static_cast<std::int32_t>(raw_tasklet)) {
        reader.fail("32-bit column value out of range in chunk " +
                    std::to_string(index));
      }
      sim::AccessEvent event;
      event.container = static_cast<std::int32_t>(raw_container);
      event.flat = flat[static_cast<std::size_t>(i)];
      event.is_write = write[static_cast<std::size_t>(i)] != 0;
      event.timestep = timestep[static_cast<std::size_t>(i)];
      event.execution = execution[static_cast<std::size_t>(i)];
      event.tasklet = static_cast<ir::NodeId>(raw_tasklet);
      out.set(static_cast<std::size_t>(info.event_offset + i), event);
    }
  }
};

TraceStoreReader::TraceStoreReader() = default;
TraceStoreReader::~TraceStoreReader() = default;
TraceStoreReader::TraceStoreReader(TraceStoreReader&& other) noexcept = default;
TraceStoreReader& TraceStoreReader::operator=(TraceStoreReader&& other) noexcept =
    default;

TraceStoreReader::TraceStoreReader(const std::string& path)
    : impl_(std::make_unique<Impl>()) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw std::runtime_error("trace_store: cannot open " + path);
  }
  struct stat status {};
  if (::fstat(fd, &status) != 0) {
    ::close(fd);
    throw std::runtime_error("trace_store: cannot stat " + path);
  }
  const std::size_t size = static_cast<std::size_t>(status.st_size);
  if (size == 0) {
    ::close(fd);
    throw std::runtime_error("trace_store: empty file " + path);
  }
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  if (map != MAP_FAILED) {
    impl_->map = map;
    impl_->map_size = size;
    impl_->data = static_cast<const char*>(map);
    impl_->size = size;
    ::close(fd);
  } else {
    // Filesystems without mmap support: buffered read of the whole file.
    impl_->owned.resize(size);
    std::size_t have = 0;
    while (have < size) {
      const ::ssize_t got =
          ::read(fd, impl_->owned.data() + have, size - have);
      if (got <= 0) {
        ::close(fd);
        throw std::runtime_error("trace_store: short read on " + path);
      }
      have += static_cast<std::size_t>(got);
    }
    ::close(fd);
    impl_->data = impl_->owned.data();
    impl_->size = size;
  }
  impl_->parse();
}

TraceStoreReader TraceStoreReader::from_bytes(std::string bytes) {
  TraceStoreReader reader;
  reader.impl_ = std::make_unique<Impl>();
  reader.impl_->owned = std::move(bytes);
  reader.impl_->data = reader.impl_->owned.data();
  reader.impl_->size = reader.impl_->owned.size();
  reader.impl_->parse();
  return reader;
}

std::int64_t TraceStoreReader::total_events() const {
  return impl_->total_events;
}
std::int64_t TraceStoreReader::executions() const { return impl_->executions; }
const std::vector<std::string>& TraceStoreReader::containers() const {
  return impl_->containers;
}
const std::vector<layout::ConcreteLayout>& TraceStoreReader::layouts() const {
  return impl_->layouts;
}
std::size_t TraceStoreReader::chunk_count() const {
  return impl_->chunks.size();
}
const ChunkInfo& TraceStoreReader::chunk(std::size_t index) const {
  return impl_->chunks.at(index);
}
std::size_t TraceStoreReader::file_bytes() const { return impl_->size; }
std::size_t TraceStoreReader::payload_bytes() const {
  return impl_->payload_bytes;
}

void TraceStoreReader::read_chunk_into(std::size_t index,
                                       sim::EventList& out) const {
  impl_->decode_chunk(index, out);
}

void TraceStoreReader::read_events(sim::EventList& out) const {
  out.clear();
  out.resize(static_cast<std::size_t>(impl_->total_events));
  const std::size_t chunk_count = impl_->chunks.size();
  // Chunks decode into disjoint absolute slices, so blocks may run in
  // any order. Failures are collected and the lowest-index chunk's
  // error is rethrown, keeping the surfaced message deterministic.
  std::vector<std::string> errors(chunk_count);
  std::atomic<bool> failed{false};
  par::parallel_for(chunk_count, 1, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      try {
        impl_->decode_chunk(i, out);
      } catch (const std::exception& error) {
        errors[i] = error.what();
        failed.store(true, std::memory_order_relaxed);
      }
    }
  });
  if (failed.load(std::memory_order_relaxed)) {
    for (const std::string& message : errors) {
      if (!message.empty()) throw std::runtime_error(message);
    }
  }
}

sim::AccessTrace TraceStoreReader::read_trace() const {
  sim::AccessTrace trace;
  trace.containers = impl_->containers;
  trace.layouts = impl_->layouts;
  trace.executions = impl_->executions;
  read_events(trace.events);
  return trace;
}

void TraceStoreReader::verify() const {
  sim::EventList scratch;
  read_events(scratch);
}

std::string spill_event_list(sim::EventList& events, const std::string& dir,
                             const StoreOptions& options) {
  namespace fs = std::filesystem;
  const std::string directory = dir.empty() ? std::string(".") : dir;
  fs::create_directories(directory);
  static std::atomic<std::uint64_t> counter{0};
  const std::string path = directory + "/dmv-spill-" +
                           std::to_string(::getpid()) + "-" +
                           std::to_string(counter.fetch_add(1)) + ".dmvt";
  const std::size_t logical_size = events.size();
  write_bytes_file(pack_events(events, options), path);

  // The backing file lives as long as any spilled list (or copy of one)
  // still points at it; the last restore/destruction removes it.
  struct Backing {
    std::string path;
    Backing(const Backing&) = delete;
    Backing& operator=(const Backing&) = delete;
    explicit Backing(std::string p) : path(std::move(p)) {}
    ~Backing() {
      std::error_code ec;
      std::filesystem::remove(path, ec);
    }
  };
  auto backing = std::make_shared<Backing>(path);
  events.spill(logical_size, [backing](sim::EventList& self) {
    TraceStoreReader reader(backing->path);
    reader.read_events(self);
  });
  return path;
}

}  // namespace dmv::store
