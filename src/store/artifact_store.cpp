#include "dmv/store/artifact_store.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "byte_io.hpp"

namespace dmv::store {
namespace {

namespace fs = std::filesystem;
using detail::ByteReader;

constexpr char kArtifactExtension[] = ".dmva";

std::string hex16(std::uint64_t value) {
  static const char digits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[value & 0xf];
    value >>= 4;
  }
  return out;
}

bool is_artifact_file(const fs::directory_entry& entry) {
  return entry.is_regular_file() &&
         entry.path().extension() == kArtifactExtension;
}

}  // namespace

std::string encode_artifact_key(const session::ArtifactKey& key) {
  std::string out;
  detail::put_u8(out, key.kind);
  detail::put_i64(out, key.aux);
  detail::put_u64(out, key.program_hash);
  detail::put_u64(out, key.config_hash);
  detail::put_u32(out, static_cast<std::uint32_t>(key.binding.size()));
  for (const auto& [symbol, value] : key.binding) {
    detail::put_u32(out, static_cast<std::uint32_t>(symbol.size()));
    out += symbol;
    detail::put_i64(out, value);
  }
  return out;
}

std::uint64_t artifact_key_hash64(const session::ArtifactKey& key) {
  const std::string bytes = encode_artifact_key(key);
  return detail::fnv1a_bytes(detail::kFnvOffset, bytes.data(), bytes.size());
}

DiskArtifactCache::DiskArtifactCache(Config config)
    : config_(std::move(config)) {
  if (config_.dir.empty()) {
    throw std::invalid_argument("artifact_store: empty cache directory");
  }
  fs::create_directories(config_.dir);
  for (const fs::directory_entry& entry : fs::directory_iterator(config_.dir)) {
    if (!is_artifact_file(entry)) continue;
    std::error_code ec;
    const std::uintmax_t size = entry.file_size(ec);
    if (ec) continue;
    stats_.bytes += static_cast<std::size_t>(size);
    stats_.files += 1;
  }
}

std::string DiskArtifactCache::path_for(
    const session::ArtifactKey& key) const {
  return config_.dir + "/" + hex16(artifact_key_hash64(key)) +
         kArtifactExtension;
}

bool DiskArtifactCache::load(const session::ArtifactKey& key,
                             std::string& payload_out) {
  const std::string path = path_for(key);
  std::string file;
  {
    // One bulk read — artifacts run to tens of megabytes and a
    // byte-at-a-time streambuf walk dominates warm-start latency.
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in) {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.misses;
      return false;
    }
    const std::streamsize size = in.tellg();
    in.seekg(0);
    file.resize(size > 0 ? static_cast<std::size_t>(size) : 0);
    if (!file.empty() && !in.read(file.data(), size)) {
      file.clear();  // Short read: parse below as truncated → corrupt path.
    }
  }
  const std::string expected_key = encode_artifact_key(key);
  try {
    // Parse in place — the checksum and key comparison run over spans
    // of `file`, and the payload is copied out exactly once.
    ByteReader reader(file.data(), file.size(), "artifact_store");
    if (reader.str(4) != "DMVA") reader.fail("bad magic");
    if (reader.u32() != kArtifactFormatVersion) {
      reader.fail("unsupported version");
    }
    const std::uint64_t key_size = reader.u64();
    const char* stored_key = reader.need(key_size);
    const std::uint64_t payload_size = reader.u64();
    const char* payload = reader.need(payload_size);
    const std::uint64_t stored_checksum = reader.u64();
    if (reader.remaining() != 0) reader.fail("trailing bytes");
    std::uint64_t checksum =
        detail::fnv1a_bytes(detail::kFnvOffset, stored_key, key_size);
    checksum = detail::fnv1a_bytes(checksum, payload, payload_size);
    if (checksum != stored_checksum) reader.fail("checksum mismatch");
    if (key_size != expected_key.size() ||
        std::memcmp(stored_key, expected_key.data(), key_size) != 0) {
      // Filename-hash collision: a DIFFERENT key's artifact lives here.
      // Not corruption — leave the file, report a miss.
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.misses;
      return false;
    }
    payload_out.assign(payload, payload_size);
  } catch (const std::exception&) {
    // Corrupt or truncated file (e.g. a crashed writer on a filesystem
    // without atomic rename, bit rot): delete it so the slot heals on
    // the next write, and report a miss so the caller recomputes.
    std::lock_guard<std::mutex> lock(mutex_);
    std::error_code ec;
    fs::remove(path, ec);
    if (!ec) {
      stats_.bytes -= std::min(stats_.bytes, file.size());
      stats_.files -= stats_.files > 0 ? 1 : 0;
    }
    ++stats_.dropped_corrupt;
    ++stats_.misses;
    return false;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.hits;
  return true;
}

void DiskArtifactCache::store(const session::ArtifactKey& key,
                              std::string_view payload) {
  const std::string key_bytes = encode_artifact_key(key);
  std::string file;
  file += "DMVA";
  detail::put_u32(file, kArtifactFormatVersion);
  detail::put_u64(file, key_bytes.size());
  file += key_bytes;
  detail::put_u64(file, payload.size());
  file.append(payload.data(), payload.size());
  std::uint64_t checksum = detail::fnv1a_bytes(
      detail::kFnvOffset, key_bytes.data(), key_bytes.size());
  checksum = detail::fnv1a_bytes(checksum, payload.data(), payload.size());
  detail::put_u64(file, checksum);

  const std::string path = path_for(key);
  std::lock_guard<std::mutex> lock(mutex_);
  std::error_code ec;
  const std::uintmax_t previous = fs::file_size(path, ec);
  const std::size_t previous_bytes =
      ec ? 0 : static_cast<std::size_t>(previous);

  // Temp + rename keeps concurrent readers (and other processes
  // sharing the directory) from ever seeing a partial file.
  const std::string temp = path + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out) return;  // Unwritable cache dir degrades to RAM-only.
    out.write(file.data(), static_cast<std::streamsize>(file.size()));
    out.close();
    if (!out) {
      fs::remove(temp, ec);
      return;
    }
  }
  fs::rename(temp, path, ec);
  if (ec) {
    fs::remove(temp, ec);
    return;
  }
  if (previous_bytes > 0) {
    stats_.bytes -= std::min(stats_.bytes, previous_bytes);
  } else {
    stats_.files += 1;
  }
  stats_.bytes += file.size();
  ++stats_.writes;
  if (stats_.bytes > config_.budget_bytes) evict_locked(path);
}

void DiskArtifactCache::evict_locked(const std::string& keep_path) {
  struct Candidate {
    fs::file_time_type mtime;
    std::string path;
    std::size_t size = 0;
  };
  std::vector<Candidate> candidates;
  std::error_code ec;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(config_.dir, ec)) {
    if (!is_artifact_file(entry)) continue;
    if (entry.path().string() == keep_path) continue;
    std::error_code entry_ec;
    Candidate candidate;
    candidate.mtime = entry.last_write_time(entry_ec);
    if (entry_ec) continue;
    candidate.size = static_cast<std::size_t>(entry.file_size(entry_ec));
    if (entry_ec) continue;
    candidate.path = entry.path().string();
    candidates.push_back(std::move(candidate));
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.mtime != b.mtime ? a.mtime < b.mtime
                                        : a.path < b.path;
            });
  for (const Candidate& candidate : candidates) {
    if (stats_.bytes <= config_.budget_bytes) break;
    std::error_code remove_ec;
    if (fs::remove(candidate.path, remove_ec) && !remove_ec) {
      stats_.bytes -= std::min(stats_.bytes, candidate.size);
      stats_.files -= stats_.files > 0 ? 1 : 0;
    }
  }
}

bool DiskArtifactCache::contains(const session::ArtifactKey& key) const {
  std::error_code ec;
  return fs::exists(path_for(key), ec) && !ec;
}

DiskArtifactCache::Stats DiskArtifactCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

namespace {

void put_i64_vector(std::string& out, const std::vector<std::int64_t>& values) {
  detail::put_u64(out, values.size());
  detail::put_i64_array(out, values.data(), values.size());
}

void put_nested_i64(std::string& out,
                    const std::vector<std::vector<std::int64_t>>& rows) {
  detail::put_u64(out, rows.size());
  for (const std::vector<std::int64_t>& row : rows) put_i64_vector(out, row);
}

void put_miss_stats(std::string& out, const sim::MissStats& stats) {
  detail::put_i64(out, stats.cold);
  detail::put_i64(out, stats.capacity);
  detail::put_i64(out, stats.hits);
}

// Nested sizes are sanity-bounded against the remaining input so a
// corrupt length cannot trigger a pathological allocation before the
// truncation check fires.
std::vector<std::int64_t> get_i64_vector(ByteReader& reader) {
  const std::uint64_t count = reader.u64();
  if (count > reader.remaining() / 8) reader.fail("vector overruns input");
  std::vector<std::int64_t> values(static_cast<std::size_t>(count));
  reader.i64_array(values.data(), values.size());
  return values;
}

std::vector<std::vector<std::int64_t>> get_nested_i64(ByteReader& reader) {
  const std::uint64_t count = reader.u64();
  if (count > reader.remaining()) reader.fail("nested vector overruns input");
  std::vector<std::vector<std::int64_t>> rows(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    rows[static_cast<std::size_t>(i)] = get_i64_vector(reader);
  }
  return rows;
}

sim::MissStats get_miss_stats(ByteReader& reader) {
  sim::MissStats stats;
  stats.cold = reader.i64();
  stats.capacity = reader.i64();
  stats.hits = reader.i64();
  return stats;
}

}  // namespace

std::string encode_pipeline_result(const sim::PipelineResult& result) {
  std::string out;
  out += "DMVR";
  detail::put_u32(out, kArtifactFormatVersion);
  detail::put_i64(out, result.events);
  detail::put_i64(out, result.executions);
  detail::put_u64(out, result.containers.size());
  for (const std::string& name : result.containers) {
    detail::put_u32(out, static_cast<std::uint32_t>(name.size()));
    out += name;
  }
  put_nested_i64(out, result.counts.reads);
  put_nested_i64(out, result.counts.writes);
  detail::put_i64(out, result.distances.line_size);
  put_i64_vector(out, result.distances.distances);
  detail::put_i64(out, result.misses.threshold_lines);
  detail::put_u64(out, result.misses.per_container.size());
  for (const sim::MissStats& stats : result.misses.per_container) {
    put_miss_stats(out, stats);
  }
  put_nested_i64(out, result.misses.element_misses);
  put_miss_stats(out, result.misses.total);
  detail::put_u64(out, result.element_stats.size());
  for (const sim::ElementDistanceStats& stats : result.element_stats) {
    put_i64_vector(out, stats.min);
    put_i64_vector(out, stats.median);
    put_i64_vector(out, stats.max);
    put_i64_vector(out, stats.cold_count);
  }
  detail::put_i64(out, result.cache.config.line_size);
  detail::put_i64(out, result.cache.config.total_size);
  detail::put_i64(out, result.cache.config.ways);
  detail::put_u64(out, result.cache.per_container.size());
  for (const sim::MissStats& stats : result.cache.per_container) {
    put_miss_stats(out, stats);
  }
  put_miss_stats(out, result.cache.total);
  detail::put_i64(out, result.movement.line_size);
  put_i64_vector(out, result.movement.bytes_per_container);
  detail::put_i64(out, result.movement.total_bytes);
  // Trailing checksum over everything before it — lets the codec stand
  // alone (the disk cache file adds its own whole-file checksum on top).
  detail::put_u64(out,
                  detail::fnv1a_bytes(detail::kFnvOffset, out.data(),
                                      out.size()));
  return out;
}

std::shared_ptr<const sim::PipelineResult> decode_pipeline_result(
    const std::string& bytes) {
  try {
    if (bytes.size() < 16) return nullptr;
    const std::size_t body_size = bytes.size() - 8;
    ByteReader reader(bytes.data(), bytes.size(), "artifact_store");
    if (reader.str(4) != "DMVR") return nullptr;
    if (reader.u32() != kArtifactFormatVersion) return nullptr;
    auto result = std::make_shared<sim::PipelineResult>();
    result->events = reader.i64();
    result->executions = reader.i64();
    const std::uint64_t container_count = reader.u64();
    if (container_count > reader.remaining()) return nullptr;
    result->containers.reserve(static_cast<std::size_t>(container_count));
    for (std::uint64_t i = 0; i < container_count; ++i) {
      const std::uint32_t length = reader.u32();
      result->containers.push_back(reader.str(length));
    }
    result->counts.reads = get_nested_i64(reader);
    result->counts.writes = get_nested_i64(reader);
    result->distances.line_size = static_cast<int>(reader.i64());
    result->distances.distances = get_i64_vector(reader);
    result->misses.threshold_lines = reader.i64();
    const std::uint64_t miss_containers = reader.u64();
    if (miss_containers > reader.remaining()) return nullptr;
    result->misses.per_container.resize(
        static_cast<std::size_t>(miss_containers));
    for (auto& stats : result->misses.per_container) {
      stats = get_miss_stats(reader);
    }
    result->misses.element_misses = get_nested_i64(reader);
    result->misses.total = get_miss_stats(reader);
    const std::uint64_t element_stat_count = reader.u64();
    if (element_stat_count > reader.remaining()) return nullptr;
    result->element_stats.resize(
        static_cast<std::size_t>(element_stat_count));
    for (auto& stats : result->element_stats) {
      stats.min = get_i64_vector(reader);
      stats.median = get_i64_vector(reader);
      stats.max = get_i64_vector(reader);
      stats.cold_count = get_i64_vector(reader);
    }
    result->cache.config.line_size = static_cast<int>(reader.i64());
    result->cache.config.total_size = reader.i64();
    result->cache.config.ways = static_cast<int>(reader.i64());
    const std::uint64_t cache_containers = reader.u64();
    if (cache_containers > reader.remaining()) return nullptr;
    result->cache.per_container.resize(
        static_cast<std::size_t>(cache_containers));
    for (auto& stats : result->cache.per_container) {
      stats = get_miss_stats(reader);
    }
    result->cache.total = get_miss_stats(reader);
    result->movement.line_size = static_cast<int>(reader.i64());
    result->movement.bytes_per_container = get_i64_vector(reader);
    result->movement.total_bytes = reader.i64();
    if (reader.position() != body_size) return nullptr;
    const std::uint64_t stored_checksum = reader.u64();
    if (reader.remaining() != 0) return nullptr;
    if (stored_checksum !=
        detail::fnv1a_bytes(detail::kFnvOffset, bytes.data(), body_size)) {
      return nullptr;
    }
    return result;
  } catch (const std::exception&) {
    return nullptr;
  }
}

namespace {

std::string codec_encode(const void* artifact) {
  return encode_pipeline_result(
      *static_cast<const sim::PipelineResult*>(artifact));
}

std::shared_ptr<const void> codec_decode(const std::string& bytes) {
  return decode_pipeline_result(bytes);
}

}  // namespace

session::ArtifactCodec pipeline_result_codec() {
  return {&codec_encode, &codec_decode};
}

}  // namespace dmv::store
