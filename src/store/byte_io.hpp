#pragma once

// Little-endian byte encoding helpers shared by the store writers and
// readers (trace_store.cpp, artifact_store.cpp). Every multi-byte
// integer in the on-disk formats is little-endian regardless of host
// order — values are assembled bytewise, never memcpy'd, so the files
// are portable across hosts.
//
// ByteReader is the single funnel every decode path goes through:
// need() bounds-checks before touching memory, so a truncated or
// corrupt file surfaces as std::runtime_error, never as an
// out-of-bounds read (the reader-robustness suite and the ASan job
// depend on this).

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>

namespace dmv::store::detail {

/// memcpy + compile-time byteswap compiles to a single load/store on
/// little-endian hosts, where the bytewise shift loops defeat the
/// optimizer (~10ns/word measured) — these two carry all bulk paths.
inline std::uint64_t load_le64(const char* p) {
  std::uint64_t value;
  std::memcpy(&value, p, 8);
  if constexpr (std::endian::native == std::endian::big) {
    value = __builtin_bswap64(value);
  }
  return value;
}

inline void store_le64(char* p, std::uint64_t value) {
  if constexpr (std::endian::native == std::endian::big) {
    value = __builtin_bswap64(value);
  }
  std::memcpy(p, &value, 8);
}

inline void put_u8(std::string& out, std::uint8_t value) {
  out.push_back(static_cast<char>(value));
}

inline void put_u32(std::string& out, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

inline void put_u64(std::string& out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

inline void put_i64(std::string& out, std::int64_t value) {
  put_u64(out, static_cast<std::uint64_t>(value));
}

/// Bulk append of `count` little-endian i64 values. One resize + a
/// tight shift loop instead of 8 push_backs per value — the artifact
/// codec serializes multi-megabyte per-element vectors through this.
inline void put_i64_array(std::string& out, const std::int64_t* values,
                          std::size_t count) {
  const std::size_t old_size = out.size();
  out.resize(old_size + count * 8);
  char* p = &out[old_size];
  for (std::size_t i = 0; i < count; ++i) {
    store_le64(p + i * 8, static_cast<std::uint64_t>(values[i]));
  }
}

/// Overwrites the 8 bytes at `offset` with `value` — for patching a
/// placeholder (e.g. the declared file size) after the payload is built.
inline void patch_u64(std::string& out, std::size_t offset,
                      std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out[offset + i] = static_cast<char>((value >> (8 * i)) & 0xff);
  }
}

class ByteReader {
 public:
  ByteReader(const char* data, std::size_t size, const char* what)
      : data_(data), size_(size), what_(what) {}

  std::size_t position() const { return pos_; }
  std::size_t remaining() const { return size_ - pos_; }

  const char* need(std::size_t n) {
    if (n > size_ - pos_) fail("truncated input");
    const char* p = data_ + pos_;
    pos_ += n;
    return p;
  }

  std::uint8_t u8() { return static_cast<std::uint8_t>(*need(1)); }

  std::uint32_t u32() {
    const char* p = need(4);
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      value |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
               << (8 * i);
    }
    return value;
  }

  std::uint64_t u64() { return load_le64(need(8)); }

  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  /// Bulk decode of `count` little-endian i64 values — the read-side
  /// counterpart of put_i64_array. Bounds-checked up front (including
  /// the count * 8 overflow case) before any memory is touched.
  void i64_array(std::int64_t* dest, std::size_t count) {
    if (count > (size_ - pos_) / 8) fail("truncated input");
    const char* p = need(count * 8);
    for (std::size_t i = 0; i < count; ++i) {
      dest[i] = static_cast<std::int64_t>(load_le64(p + i * 8));
    }
  }

  std::string str(std::size_t n) {
    const char* p = need(n);
    return std::string(p, n);
  }

  [[noreturn]] void fail(const std::string& message) const {
    throw std::runtime_error(std::string(what_) + ": " + message);
  }

 private:
  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  const char* what_;
};

// FNV-1a 64, the repo-wide checksum idiom (symbolic interner, artifact
// keys). Mixed per 64-bit word, not per byte, over decoded VALUES — the
// checksum gates the decode result, not the encoded representation.
inline constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;

inline std::uint64_t fnv1a(std::uint64_t hash, std::uint64_t value) {
  hash ^= value;
  hash *= 1099511628211ull;
  return hash;
}

/// Byte-buffer checksum, mixed per 64-bit little-endian word (the tail
/// is zero-padded and the byte length folded in last, so buffers that
/// differ only in trailing zero bytes still hash differently). Word
/// granularity keeps whole-file checksums cheap on multi-megabyte
/// artifacts.
inline std::uint64_t fnv1a_bytes(std::uint64_t hash, const char* data,
                                 std::size_t size) {
  std::size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    hash = fnv1a(hash, load_le64(data + i));
  }
  std::uint64_t tail = 0;
  for (int b = 0; i < size; ++i, ++b) {
    tail |= static_cast<std::uint64_t>(static_cast<unsigned char>(data[i]))
            << (8 * b);
  }
  return fnv1a(fnv1a(hash, tail), static_cast<std::uint64_t>(size));
}

}  // namespace dmv::store::detail
