// dmv_store — offline tooling for the columnar trace store
// (docs/storage.md).
//
//   dmv_store pack --workload NAME [--set S=V ...] [--chunk-events N] -o F
//   dmv_store pack --from-text FILE [--chunk-events N] -o F
//   dmv_store unpack FILE [-o FILE]      text (dmvtrace 1) debug export
//   dmv_store verify FILE                decode every chunk, check sums
//   dmv_store ls FILE                    header + chunk directory
//   dmv_store warm --workload NAME --cache-dir DIR --sweep S=LO:HI[:STEP]
//                  [--set S=V ...]       precompute the dmv_serve
//                                        warm-start tier offline
//
// `pack --workload` simulates the named workload (the dmv_serve
// registry) at its default binding, overridable per symbol with --set,
// and writes the plan-aligned compressed store file. `warm` runs a
// slider sweep through a Session wired to the same persistent disk
// tier dmv_serve uses (--cache-dir), so a server started against that
// directory serves the sweep without simulating anything.

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "dmv/serve/server.hpp"
#include "dmv/session/session.hpp"
#include "dmv/sim/trace_io.hpp"
#include "dmv/sim/trace_plan.hpp"
#include "dmv/store/artifact_store.hpp"
#include "dmv/store/trace_store.hpp"
#include "dmv/workloads/workloads.hpp"

namespace {

using dmv::symbolic::SymbolMap;

int usage() {
  std::cerr
      << "usage: dmv_store <command> [args]\n"
         "  pack --workload NAME [--set S=V ...] [--chunk-events N] -o F\n"
         "  pack --from-text FILE [--chunk-events N] -o F\n"
         "  unpack FILE [-o FILE]\n"
         "  verify FILE\n"
         "  ls FILE\n"
         "  warm --workload NAME --cache-dir DIR --sweep S=LO:HI[:STEP]"
         " [--set S=V ...]\n";
  return 2;
}

/// Default binding of each registry workload — the same parameter sets
/// the tests and docs use for that workload family.
SymbolMap default_binding(const std::string& workload) {
  if (workload.rfind("hdiff", 0) == 0) return dmv::workloads::hdiff_local();
  if (workload.rfind("bert", 0) == 0) return dmv::workloads::bert_small();
  if (workload == "matmul") return dmv::workloads::matmul_fig5();
  if (workload == "conv2d") return dmv::workloads::conv2d_fig4();
  if (workload == "outer_product") {
    return dmv::workloads::outer_product_fig3();
  }
  return {};
}

void apply_set(SymbolMap& binding, const std::string& spec) {
  const std::size_t eq = spec.find('=');
  if (eq == std::string::npos || eq == 0) {
    throw std::runtime_error("bad --set '" + spec + "' (want SYM=VALUE)");
  }
  binding[spec.substr(0, eq)] = std::stoll(spec.substr(eq + 1));
}

struct Sweep {
  std::string symbol;
  std::int64_t lo = 0, hi = 0, step = 1;
};

Sweep parse_sweep(const std::string& spec) {
  Sweep sweep;
  const std::size_t eq = spec.find('=');
  if (eq == std::string::npos || eq == 0) {
    throw std::runtime_error("bad --sweep '" + spec +
                             "' (want SYM=LO:HI[:STEP])");
  }
  sweep.symbol = spec.substr(0, eq);
  std::string range = spec.substr(eq + 1);
  std::replace(range.begin(), range.end(), ':', ' ');
  std::istringstream fields(range);
  if (!(fields >> sweep.lo >> sweep.hi)) {
    throw std::runtime_error("bad --sweep range in '" + spec + "'");
  }
  fields >> sweep.step;
  if (sweep.step <= 0) sweep.step = 1;
  return sweep;
}

int cmd_pack(int argc, char** argv) {
  std::string workload, from_text, output;
  SymbolMap overrides;
  dmv::store::StoreOptions options;
  for (int i = 0; i < argc; ++i) {
    const char* arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (std::strcmp(arg, "--workload") == 0 && has_value) {
      workload = argv[++i];
    } else if (std::strcmp(arg, "--from-text") == 0 && has_value) {
      from_text = argv[++i];
    } else if (std::strcmp(arg, "--set") == 0 && has_value) {
      apply_set(overrides, argv[++i]);
    } else if (std::strcmp(arg, "--chunk-events") == 0 && has_value) {
      options.chunk_events = std::atoll(argv[++i]);
    } else if (std::strcmp(arg, "-o") == 0 && has_value) {
      output = argv[++i];
    } else {
      return usage();
    }
  }
  if (output.empty() || (workload.empty() == from_text.empty())) {
    return usage();
  }

  if (!from_text.empty()) {
    std::ifstream in(from_text);
    if (!in) {
      std::cerr << "dmv_store: cannot open " << from_text << "\n";
      return 1;
    }
    dmv::sim::AccessTrace trace = dmv::sim::read_trace(in);
    dmv::store::write_trace_file(trace, output, options);
    std::cout << "packed " << trace.events.size() << " events -> " << output
              << "\n";
    return 0;
  }

  dmv::ir::Sdfg sdfg = dmv::serve::workload_by_name(workload);
  SymbolMap binding = default_binding(workload);
  for (const auto& [symbol, value] : overrides) binding[symbol] = value;
  dmv::sim::SimulationOptions sim_options;
  dmv::sim::AccessTrace trace = dmv::sim::simulate(sdfg, binding, sim_options);
  // Fixed chunks-per-map (the default derives from the thread count):
  // a packed file must be byte-identical no matter which machine ran
  // the CLI, since store files are meant to be precomputed and shipped.
  constexpr int kPlanChunksPerMap = 16;
  dmv::sim::TracePlan plan =
      dmv::sim::plan_trace(sdfg, binding, sim_options, kPlanChunksPerMap);
  dmv::store::write_trace_file(trace, output, options,
                               plan.parallelizable ? &plan : nullptr);
  dmv::store::TraceStoreReader reader(output);
  std::cout << "packed " << trace.events.size() << " events ("
            << trace.events.capacity_bytes() << " bytes raw) -> " << output
            << " (" << reader.file_bytes() << " bytes, "
            << reader.chunk_count() << " chunks)\n";
  return 0;
}

int cmd_unpack(int argc, char** argv) {
  std::string input, output;
  for (int i = 0; i < argc; ++i) {
    const char* arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (std::strcmp(arg, "-o") == 0 && has_value) {
      output = argv[++i];
    } else if (std::strcmp(arg, "--text") == 0) {
      // The default (and only) export format.
    } else if (input.empty() && arg[0] != '-') {
      input = arg;
    } else {
      return usage();
    }
  }
  if (input.empty()) return usage();
  dmv::store::TraceStoreReader reader(input);
  dmv::sim::AccessTrace trace = reader.read_trace();
  if (output.empty()) {
    dmv::sim::write_trace(trace, std::cout);
  } else {
    std::ofstream out(output);
    if (!out) {
      std::cerr << "dmv_store: cannot write " << output << "\n";
      return 1;
    }
    dmv::sim::write_trace(trace, out);
  }
  return 0;
}

int cmd_verify(int argc, char** argv) {
  if (argc != 1) return usage();
  dmv::store::TraceStoreReader reader(argv[0]);
  reader.verify();
  std::cout << "ok: " << reader.total_events() << " events, "
            << reader.chunk_count() << " chunks, checksums match\n";
  return 0;
}

int cmd_ls(int argc, char** argv) {
  if (argc != 1) return usage();
  dmv::store::TraceStoreReader reader(argv[0]);
  std::cout << "dmvs v1: " << reader.total_events() << " events, "
            << reader.executions() << " executions, "
            << reader.containers().size() << " containers, "
            << reader.chunk_count() << " chunks, " << reader.file_bytes()
            << " file bytes (" << reader.payload_bytes() << " payload)\n";
  for (std::size_t c = 0; c < reader.containers().size(); ++c) {
    std::cout << "  container " << c << ": " << reader.containers()[c]
              << "\n";
  }
  for (std::size_t c = 0; c < reader.chunk_count(); ++c) {
    const dmv::store::ChunkInfo& chunk = reader.chunk(c);
    std::cout << "  chunk " << c << ": events [" << chunk.event_offset
              << ", " << chunk.event_offset + chunk.event_count
              << ") executions [" << chunk.execution_offset << ", "
              << chunk.execution_offset + chunk.execution_count << ") "
              << chunk.payload_size << " bytes\n";
  }
  return 0;
}

int cmd_warm(int argc, char** argv) {
  std::string workload, cache_dir, sweep_spec;
  SymbolMap overrides;
  for (int i = 0; i < argc; ++i) {
    const char* arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (std::strcmp(arg, "--workload") == 0 && has_value) {
      workload = argv[++i];
    } else if (std::strcmp(arg, "--cache-dir") == 0 && has_value) {
      cache_dir = argv[++i];
    } else if (std::strcmp(arg, "--sweep") == 0 && has_value) {
      sweep_spec = argv[++i];
    } else if (std::strcmp(arg, "--set") == 0 && has_value) {
      apply_set(overrides, argv[++i]);
    } else {
      return usage();
    }
  }
  if (workload.empty() || cache_dir.empty() || sweep_spec.empty()) {
    return usage();
  }
  const Sweep sweep = parse_sweep(sweep_spec);

  // Same tier wiring as dmv_serve --cache-dir: artifacts this run
  // computes land in the directory a later server re-serves from.
  dmv::session::SharedArtifactCache::Config shared_config;
  shared_config.disk_dir = cache_dir;
  shared_config.codecs.emplace_back(dmv::session::metrics_artifact_kind(),
                                    dmv::store::pipeline_result_codec());
  dmv::session::SessionConfig session_config;  // dmv_serve defaults.
  session_config.shared_cache =
      std::make_shared<dmv::session::SharedArtifactCache>(shared_config);

  dmv::session::Session session(dmv::serve::workload_by_name(workload),
                                std::move(session_config));
  SymbolMap binding = default_binding(workload);
  for (const auto& [symbol, value] : overrides) binding[symbol] = value;
  session.set_binding(binding);

  std::int64_t steps = 0;
  for (std::int64_t value = sweep.lo; value <= sweep.hi;
       value += sweep.step) {
    session.set_symbol(sweep.symbol, value);
    session.metrics();
    ++steps;
  }
  const dmv::session::SharedCacheStats stats =
      session.config().shared_cache->stats();
  std::cout << "warmed " << steps << " bindings of " << workload << "."
            << sweep.symbol << " -> " << cache_dir << " ("
            << stats.disk_writes << " artifacts written, "
            << stats.disk_bytes << " bytes on disk)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    if (command == "pack") return cmd_pack(argc - 2, argv + 2);
    if (command == "unpack") return cmd_unpack(argc - 2, argv + 2);
    if (command == "verify") return cmd_verify(argc - 2, argv + 2);
    if (command == "ls") return cmd_ls(argc - 2, argv + 2);
    if (command == "warm") return cmd_warm(argc - 2, argv + 2);
  } catch (const std::exception& error) {
    std::cerr << "dmv_store: " << error.what() << "\n";
    return 1;
  }
  return usage();
}
