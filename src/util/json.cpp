#include "dmv/util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <utility>

namespace dmv::json {

Value Value::null() { return Value{}; }

Value Value::of(bool value) {
  Value v;
  v.type = Type::Bool;
  v.boolean = value;
  return v;
}

Value Value::of(double value) {
  Value v;
  v.type = Type::Number;
  v.number = value;
  return v;
}

Value Value::of(std::int64_t value) {
  Value v;
  v.type = Type::Number;
  v.number = static_cast<double>(value);
  return v;
}

Value Value::of(std::string value) {
  Value v;
  v.type = Type::String;
  v.text = std::move(value);
  return v;
}

Value Value::make_array() {
  Value v;
  v.type = Type::Array;
  return v;
}

Value Value::make_object() {
  Value v;
  v.type = Type::Object;
  return v;
}

const Value& Value::at(const std::string& key) const {
  if (!has(key)) throw ParseError("missing key '" + key + "'");
  return object.at(key);
}

Value& Value::operator[](const std::string& key) {
  if (type == Type::Null) type = Type::Object;
  if (type != Type::Object) throw ParseError("expected object");
  return object[key];
}

void Value::push(Value value) {
  if (type == Type::Null) type = Type::Array;
  if (type != Type::Array) throw ParseError("expected array");
  array.push_back(std::move(value));
}

const std::string& Value::as_string() const {
  if (type != Type::String) throw ParseError("expected string");
  return text;
}

double Value::as_number() const {
  if (type != Type::Number) throw ParseError("expected number");
  return number;
}

std::int64_t Value::as_int() const {
  const double value = as_number();
  if (std::floor(value) != value || value < -9.2233720368547758e18 ||
      value > 9.2233720368547758e18) {
    throw ParseError("expected integer");
  }
  return static_cast<std::int64_t>(value);
}

bool Value::as_bool() const {
  if (type != Type::Bool) throw ParseError("expected boolean");
  return boolean;
}

const std::vector<Value>& Value::as_array() const {
  if (type != Type::Array) throw ParseError("expected array");
  return array;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value run() {
    Value value = parse_value();
    skip_whitespace();
    if (position_ != text_.size()) {
      fail("trailing characters after document");
    }
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError("JSON parse error at offset " +
                     std::to_string(position_) + ": " + message);
  }

  void skip_whitespace() {
    while (position_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[position_]))) {
      ++position_;
    }
  }

  char peek() {
    skip_whitespace();
    if (position_ >= text_.size()) fail("unexpected end of input");
    return text_[position_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++position_;
  }

  bool try_consume(char c) {
    skip_whitespace();
    if (position_ < text_.size() && text_[position_] == c) {
      ++position_;
      return true;
    }
    return false;
  }

  bool consume_keyword(std::string_view keyword) {
    skip_whitespace();
    if (text_.substr(position_, keyword.size()) == keyword) {
      position_ += keyword.size();
      return true;
    }
    return false;
  }

  Value parse_value() {
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return parse_string();
    if (consume_keyword("true")) return Value::of(true);
    if (consume_keyword("false")) return Value::of(false);
    if (consume_keyword("null")) return Value{};
    return parse_number();
  }

  Value parse_object() {
    expect('{');
    Value value = Value::make_object();
    if (try_consume('}')) return value;
    for (;;) {
      Value key = parse_string();
      expect(':');
      value.object.emplace(std::move(key.text), parse_value());
      if (try_consume('}')) return value;
      expect(',');
    }
  }

  Value parse_array() {
    expect('[');
    Value value = Value::make_array();
    if (try_consume(']')) return value;
    for (;;) {
      value.array.push_back(parse_value());
      if (try_consume(']')) return value;
      expect(',');
    }
  }

  Value parse_string() {
    expect('"');
    Value value;
    value.type = Value::Type::String;
    while (position_ < text_.size() && text_[position_] != '"') {
      char c = text_[position_++];
      if (c == '\\') {
        if (position_ >= text_.size()) fail("unterminated escape");
        const char escape = text_[position_++];
        switch (escape) {
          case '"':
            c = '"';
            break;
          case '\\':
            c = '\\';
            break;
          case '/':
            c = '/';
            break;
          case 'n':
            c = '\n';
            break;
          case 't':
            c = '\t';
            break;
          case 'r':
            c = '\r';
            break;
          default:
            fail(std::string("unsupported escape '\\") + escape + "'");
        }
      }
      value.text += c;
    }
    if (position_ >= text_.size()) fail("unterminated string");
    ++position_;  // Closing quote.
    return value;
  }

  Value parse_number() {
    skip_whitespace();
    const std::size_t start = position_;
    while (position_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[position_])) ||
            text_[position_] == '-' || text_[position_] == '+' ||
            text_[position_] == '.' || text_[position_] == 'e' ||
            text_[position_] == 'E')) {
      ++position_;
    }
    if (position_ == start) fail("expected a value");
    Value value;
    value.type = Value::Type::Number;
    try {
      value.number =
          std::stod(std::string(text_.substr(start, position_ - start)));
    } catch (const std::exception&) {
      fail("bad number");
    }
    return value;
  }

  std::string_view text_;
  std::size_t position_ = 0;
};

void append_number(std::string& out, double value) {
  // Integers inside the double-exact range print without a fraction so
  // counts stay greppable; everything else round-trips via %.17g.
  constexpr double kExact = 9007199254740992.0;  // 2^53
  if (std::floor(value) == value && value >= -kExact && value <= kExact) {
    out += std::to_string(static_cast<std::int64_t>(value));
    return;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out += buffer;
}

void append(std::string& out, const Value& value) {
  switch (value.type) {
    case Value::Type::Null:
      out += "null";
      return;
    case Value::Type::Bool:
      out += value.boolean ? "true" : "false";
      return;
    case Value::Type::Number:
      append_number(out, value.number);
      return;
    case Value::Type::String:
      out += escape(value.text);
      return;
    case Value::Type::Array: {
      out += '[';
      bool first = true;
      for (const Value& element : value.array) {
        if (!std::exchange(first, false)) out += ',';
        append(out, element);
      }
      out += ']';
      return;
    }
    case Value::Type::Object: {
      out += '{';
      bool first = true;
      for (const auto& [key, element] : value.object) {
        if (!std::exchange(first, false)) out += ',';
        out += escape(key);
        out += ':';
        append(out, element);
      }
      out += '}';
      return;
    }
  }
}

}  // namespace

Value parse(std::string_view text) { return Parser(text).run(); }

std::string dump(const Value& value) {
  std::string out;
  append(out, value);
  return out;
}

std::string escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace dmv::json
