#include "dmv/par/par.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

namespace dmv::par {

namespace {

// Set while this thread executes a pool task. Nested parallel calls
// (e.g. a parallel metric pass inside a parallel binding sweep) run
// serially inline instead of re-entering the single-job pool.
thread_local bool in_pool_task = false;

int env_default_threads() {
  if (const char* env = std::getenv("DMV_NUM_THREADS")) {
    const int value = std::atoi(env);
    if (value > 0) return value;
  }
  return hardware_threads();
}

std::atomic<int>& thread_knob() {
  static std::atomic<int> knob{env_default_threads()};
  return knob;
}

std::atomic<std::uint64_t>& busy_fallback_count() {
  static std::atomic<std::uint64_t> count{0};
  return count;
}

// Persistent pool. Workers are spawned lazily on first parallel call and
// park on a condition variable between jobs; one job at a time (the
// analysis passes never nest parallel regions). The calling thread
// participates in draining the task counter, so `threads` total threads
// work on a job with `threads - 1` workers.
class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  /// `on_caller`, when set, runs on the calling thread INSTEAD of
  /// drain() — the ordered_pipeline consumer loop. Workers handle every
  /// task; the call still waits for all of them before returning.
  /// Returns false WITHOUT running anything when another thread's job
  /// holds the pool: the single-job pool never queues, so a concurrent
  /// caller degrades to its serial fallback instead of blocking for the
  /// whole foreign job (interactive p99 over throughput).
  bool run(std::size_t count, const std::function<void(std::size_t)>& task,
           const std::function<void()>* on_caller = nullptr) {
    std::unique_lock<std::mutex> run_lock(run_mutex_, std::try_to_lock);
    if (!run_lock.owns_lock()) {
      busy_fallback_count().fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    ensure_workers(num_threads() - 1);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      task_ = &task;
      count_ = count;
      next_.store(0, std::memory_order_relaxed);
      completed_.store(0, std::memory_order_relaxed);
      error_ = nullptr;
      ++generation_;
    }
    work_ready_.notify_all();
    if (on_caller) {
      try {
        (*on_caller)();
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!error_) error_ = std::current_exception();
      }
    } else {
      drain();
    }
    {
      // Wait for completion AND for every worker to leave drain(): a
      // straggler from this job must not observe the next job's reset
      // counter mid-flight.
      std::unique_lock<std::mutex> lock(mutex_);
      job_done_.wait(lock, [&] {
        return completed_.load(std::memory_order_acquire) == count_ &&
               draining_ == 0;
      });
      task_ = nullptr;
      if (error_) std::rethrow_exception(std::exchange(error_, nullptr));
    }
    return true;
  }

 private:
  Pool() = default;

  ~Pool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    work_ready_.notify_all();
    for (std::thread& worker : workers_) worker.join();
  }

  void ensure_workers(int target) {
    while (static_cast<int>(workers_.size()) < target) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      work_ready_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      ++draining_;
      lock.unlock();
      drain();
      lock.lock();
      if (--draining_ == 0) job_done_.notify_all();
    }
  }

  // Pulls task indices until the counter runs dry. Shared by workers and
  // the calling thread.
  void drain() {
    in_pool_task = true;
    for (;;) {
      const std::size_t index =
          next_.fetch_add(1, std::memory_order_relaxed);
      if (index >= count_) {
        in_pool_task = false;
        return;
      }
      try {
        (*task_)(index);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!error_) error_ = std::current_exception();
      }
      if (completed_.fetch_add(1, std::memory_order_acq_rel) + 1 == count_) {
        std::lock_guard<std::mutex> lock(mutex_);
        job_done_.notify_all();
      }
    }
  }

  std::mutex run_mutex_;  ///< Serializes whole jobs.
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable job_done_;
  std::vector<std::thread> workers_;
  const std::function<void(std::size_t)>* task_ = nullptr;
  std::size_t count_ = 0;
  std::atomic<std::size_t> next_{0};
  std::atomic<std::size_t> completed_{0};
  std::exception_ptr error_;
  std::uint64_t generation_ = 0;
  int draining_ = 0;  ///< Workers currently inside drain().
  bool stop_ = false;
};

}  // namespace

int hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int num_threads() { return thread_knob().load(std::memory_order_relaxed); }

void set_num_threads(int threads) {
  thread_knob().store(threads < 1 ? hardware_threads() : threads,
                      std::memory_order_relaxed);
}

ThreadScope::ThreadScope(int threads) : previous_(num_threads()) {
  set_num_threads(threads);
}

ThreadScope::~ThreadScope() { set_num_threads(previous_); }

bool in_parallel_region() { return in_pool_task; }

std::uint64_t busy_fallbacks() {
  return busy_fallback_count().load(std::memory_order_relaxed);
}

void ordered_pipeline(std::size_t n, std::size_t window,
                      const std::function<void(std::size_t)>& produce,
                      const std::function<void(std::size_t)>& consume) {
  if (n == 0) return;
  if (window == 0) window = 1;
  if (n == 1 || num_threads() <= 1 || in_pool_task) {
    for (std::size_t i = 0; i < n; ++i) {
      produce(i);
      consume(i);
    }
    return;
  }

  // Ring of `window` slots shared between producers (pool workers) and
  // the consumer (this thread). Producers wait for their slot to be
  // free, fill it, and flag it ready; the consumer drains slots in
  // ascending item order. Slot i % window is free once `consumed > i -
  // window`, i.e. after consume(i - window) returned — so a producer
  // never overwrites data the consumer is still reading. The producer
  // of item `consumed` can never be the one waiting (consumed + window >
  // consumed always holds), which rules out deadlock. Either side's
  // first exception flips `failed`, releasing everyone.
  std::mutex mutex;
  std::condition_variable ready_cv;  // Producer -> consumer: slot filled.
  std::condition_variable free_cv;   // Consumer -> producers: slot freed.
  std::vector<char> ready(window, 0);
  std::size_t consumed = 0;
  bool failed = false;
  std::exception_ptr first_error;

  const std::function<void(std::size_t)> producer = [&](std::size_t i) {
    {
      std::unique_lock<std::mutex> lock(mutex);
      free_cv.wait(lock, [&] { return failed || consumed + window > i; });
      if (failed) return;
    }
    try {
      produce(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex);
      failed = true;
      if (!first_error) first_error = std::current_exception();
      ready_cv.notify_all();
      free_cv.notify_all();
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mutex);
      ready[i % window] = 1;
      ready_cv.notify_all();
    }
  };
  const std::function<void()> consumer = [&] {
    for (std::size_t i = 0; i < n; ++i) {
      {
        std::unique_lock<std::mutex> lock(mutex);
        ready_cv.wait(lock, [&] { return failed || ready[i % window] != 0; });
        if (failed) return;
        ready[i % window] = 0;
      }
      try {
        consume(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        failed = true;
        if (!first_error) first_error = std::current_exception();
        free_cv.notify_all();
        return;
      }
      {
        std::lock_guard<std::mutex> lock(mutex);
        ++consumed;
        free_cv.notify_all();
      }
    }
  };
  if (!detail::run_tasks_with_caller(n, producer, consumer)) {
    // Pool busy with another caller's job: nothing ran, the ring state
    // is untouched — use the plain alternating serial loop (the ring
    // slots cannot represent "everything produced up front" for n >
    // window, so the degenerate fallback is not an option here).
    for (std::size_t i = 0; i < n; ++i) {
      produce(i);
      consume(i);
    }
    return;
  }
  if (first_error) std::rethrow_exception(first_error);
}

namespace detail {

void run_tasks(std::size_t count,
               const std::function<void(std::size_t)>& task) {
  if (count == 0) return;
  if (count == 1 || num_threads() <= 1 || in_pool_task) {
    for (std::size_t i = 0; i < count; ++i) task(i);
    return;
  }
  if (!Pool::instance().run(count, task)) {
    // Pool busy: serial in-order fallback, bit-identical by contract.
    for (std::size_t i = 0; i < count; ++i) task(i);
  }
}

bool run_tasks_with_caller(std::size_t count,
                           const std::function<void(std::size_t)>& task,
                           const std::function<void()>& on_caller) {
  if (num_threads() <= 1 || in_pool_task) {
    // Degenerate fallback: produce everything, then run the caller side
    // (which finds every slot ready). ordered_pipeline normally handles
    // serial execution itself with the cheaper alternating loop.
    for (std::size_t i = 0; i < count; ++i) task(i);
    on_caller();
    return true;
  }
  return Pool::instance().run(count, task, &on_caller);
}

}  // namespace detail

}  // namespace dmv::par
