#include "dmv/analysis/analysis.hpp"

#include <stdexcept>

namespace dmv::analysis {

using ir::Node;
using ir::NodeKind;

namespace {

// Sum of operations of all tasklets transitively inside `map_entry`.
Expr scope_operations(const State& state, NodeId map_entry) {
  Expr total = 0;
  for (const Node& node : state.nodes()) {
    if (node.kind != NodeKind::Tasklet) continue;
    for (NodeId scope : state.scope_chain(node.id)) {
      if (scope == map_entry) {
        total = total + tasklet_operations(state, node.id);
        break;
      }
    }
  }
  return total;
}

// Bytes crossing the boundary of the map: edges into the entry from
// outside plus edges out of the exit to outside.
Expr scope_boundary_bytes(const Sdfg& sdfg, const State& state,
                          NodeId map_entry) {
  const Node& entry = state.node(map_entry);
  Expr total = 0;
  for (const ir::Edge& edge : state.edges()) {
    const bool into_entry =
        edge.dst == map_entry && edge_scope(state, edge) != map_entry;
    const bool out_of_exit = entry.paired != ir::kNoNode &&
                             edge.src == entry.paired &&
                             edge_scope(state, edge) != map_entry;
    if (!(into_entry || out_of_exit)) continue;
    total = total + total_edge_bytes(sdfg, state, edge);
  }
  return total;
}

}  // namespace

double map_arithmetic_intensity(const Sdfg& sdfg, const State& state,
                                NodeId map_entry, const SymbolMap& symbols) {
  if (state.node(map_entry).kind != NodeKind::MapEntry) {
    throw std::invalid_argument(
        "map_arithmetic_intensity: node is not a map entry");
  }
  const double operations = static_cast<double>(
      scope_operations(state, map_entry).evaluate(symbols));
  const double bytes = static_cast<double>(
      scope_boundary_bytes(sdfg, state, map_entry).evaluate(symbols));
  if (bytes == 0) return 0;
  return operations / bytes;
}

std::vector<MapIntensity> map_intensities(const Sdfg& sdfg,
                                          const SymbolMap& symbols) {
  std::vector<MapIntensity> result;
  for (int s = 0; s < static_cast<int>(sdfg.states().size()); ++s) {
    const State& state = sdfg.states()[s];
    for (const Node& node : state.nodes()) {
      if (node.kind != NodeKind::MapEntry) continue;
      // Only top-of-scope maps: nested maps are part of the outer kernel.
      if (node.scope_parent != ir::kNoNode) continue;
      MapIntensity intensity;
      intensity.ref = NodeRef{s, node.id};
      intensity.label = node.map.label;
      intensity.operations = static_cast<double>(
          scope_operations(state, node.id).evaluate(symbols));
      intensity.boundary_bytes = static_cast<double>(
          scope_boundary_bytes(sdfg, state, node.id).evaluate(symbols));
      intensity.intensity =
          intensity.boundary_bytes == 0
              ? 0
              : intensity.operations / intensity.boundary_bytes;
      result.push_back(std::move(intensity));
    }
  }
  return result;
}

}  // namespace dmv::analysis
