#include "dmv/analysis/analysis.hpp"

#include <cmath>
#include <stdexcept>

#include "dmv/par/par.hpp"
#include "dmv/symbolic/compiled.hpp"

namespace dmv::analysis {

std::vector<SymbolScaling> scaling_exponents(const Expr& metric,
                                             const SymbolMap& base,
                                             std::int64_t factor) {
  if (factor <= 1) {
    throw std::invalid_argument("scaling_exponents: factor must exceed 1");
  }
  // Check the binding covers the metric before any evaluation, so the
  // caller gets one actionable error instead of an evaluation failure.
  // free_symbols() reads the metric's intern-time symbol set — O(set),
  // not a tree walk.
  const std::set<std::string> free = metric.free_symbols();
  for (const std::string& symbol : free) {
    if (!base.contains(symbol)) {
      throw std::invalid_argument(
          "scaling_exponents: base binding misses symbol '" + symbol + "'");
    }
  }
  const std::vector<std::string> symbols(free.begin(), free.end());
  std::vector<SymbolScaling> result(symbols.size());
  // Flat (SymbolId, value) binding: probe evaluations copy a contiguous
  // vector and binary-search it instead of copying a string-keyed map.
  const symbolic::SymbolBinding base_binding(base);
  const double base_value =
      static_cast<double>(metric.evaluate(base_binding));
  // Each symbol's probe evaluation is independent; entries land in
  // symbol order regardless of scheduling.
  par::parallel_for(symbols.size(), 1, [&](std::size_t begin,
                                           std::size_t end) {
    for (std::size_t s = begin; s < end; ++s) {
      symbolic::SymbolBinding scaled = base_binding;
      scaled.set(symbols[s], base.at(symbols[s]) * factor);
      SymbolScaling& entry = result[s];
      entry.symbol = symbols[s];
      entry.base_value = base_value;
      entry.scaled_value = static_cast<double>(metric.evaluate(scaled));
      if (base_value > 0 && entry.scaled_value > 0) {
        entry.exponent = std::log(entry.scaled_value / base_value) /
                         std::log(static_cast<double>(factor));
      }
    }
  });
  return result;
}

std::vector<SymbolScaling> movement_scaling(const Sdfg& sdfg,
                                            const SymbolMap& base,
                                            std::int64_t factor) {
  return scaling_exponents(total_movement_bytes(sdfg), base, factor);
}

std::vector<SweepPoint> sweep_metric(const Expr& metric, const SymbolMap& base,
                                     const std::string& symbol,
                                     const std::vector<std::int64_t>& values) {
  for (const std::string& name : metric.free_symbols()) {
    if (name != symbol && !base.contains(name)) {
      throw std::invalid_argument(
          "sweep_metric: base binding misses symbol '" + name + "'");
    }
  }
  // Compile once; every binding evaluation is then an array-indexed pass.
  symbolic::SymbolTable table;
  const symbolic::CompiledExpr compiled =
      symbolic::CompiledExpr::compile(metric, table);
  std::vector<std::int64_t> env;
  std::vector<char> bound;
  table.bind(base, env, bound);
  const int slot = table.lookup(symbol);
  if (slot >= 0) bound[slot] = 1;

  std::vector<SweepPoint> series(values.size());
  par::parallel_for(values.size(), 16, [&](std::size_t begin,
                                           std::size_t end) {
    // Per-block copy of the environment: blocks write disjoint slots of
    // the series, and each binding differs only in the swept slot.
    std::vector<std::int64_t> local = env;
    for (std::size_t i = begin; i < end; ++i) {
      if (slot >= 0) local[slot] = values[i];
      series[i].value = values[i];
      series[i].metric = static_cast<double>(
          compiled.evaluate(local.data(), bound.data(), &table.names()));
    }
  });
  return series;
}

std::vector<SweepPoint> movement_sweep(const Sdfg& sdfg, const SymbolMap& base,
                                       const std::string& symbol,
                                       const std::vector<std::int64_t>& values) {
  return sweep_metric(total_movement_bytes(sdfg), base, symbol, values);
}

}  // namespace dmv::analysis
