#include "dmv/analysis/analysis.hpp"

#include <cmath>
#include <stdexcept>

namespace dmv::analysis {

std::vector<SymbolScaling> scaling_exponents(const Expr& metric,
                                             const SymbolMap& base,
                                             std::int64_t factor) {
  if (factor <= 1) {
    throw std::invalid_argument("scaling_exponents: factor must exceed 1");
  }
  // Check the binding covers the metric before any evaluation, so the
  // caller gets one actionable error instead of an evaluation failure.
  for (const std::string& symbol : metric.free_symbols()) {
    if (!base.contains(symbol)) {
      throw std::invalid_argument(
          "scaling_exponents: base binding misses symbol '" + symbol + "'");
    }
  }
  std::vector<SymbolScaling> result;
  const double base_value =
      static_cast<double>(metric.evaluate(base));
  for (const std::string& symbol : metric.free_symbols()) {
    SymbolMap scaled = base;
    auto it = scaled.find(symbol);
    it->second *= factor;
    SymbolScaling entry;
    entry.symbol = symbol;
    entry.base_value = base_value;
    entry.scaled_value = static_cast<double>(metric.evaluate(scaled));
    if (base_value > 0 && entry.scaled_value > 0) {
      entry.exponent = std::log(entry.scaled_value / base_value) /
                       std::log(static_cast<double>(factor));
    }
    result.push_back(std::move(entry));
  }
  return result;
}

std::vector<SymbolScaling> movement_scaling(const Sdfg& sdfg,
                                            const SymbolMap& base,
                                            std::int64_t factor) {
  return scaling_exponents(total_movement_bytes(sdfg), base, factor);
}

}  // namespace dmv::analysis
