#include "dmv/analysis/analysis.hpp"

namespace dmv::analysis {

using ir::Node;
using ir::NodeKind;

Expr tasklet_operations(const State& state, NodeId tasklet) {
  const Node& node = state.node(tasklet);
  const std::int64_t per_execution = node.code.count_operations().total();
  return Expr(per_execution) * scope_iterations(state, node.scope_parent);
}

std::vector<NodeOps> tasklet_operation_counts(const Sdfg& sdfg) {
  std::vector<NodeOps> result;
  for (int s = 0; s < static_cast<int>(sdfg.states().size()); ++s) {
    const State& state = sdfg.states()[s];
    for (const Node& node : state.nodes()) {
      if (node.kind != NodeKind::Tasklet) continue;
      NodeOps ops;
      ops.ref = NodeRef{s, node.id};
      ops.label = node.label;
      ops.operations = tasklet_operations(state, node.id);
      result.push_back(std::move(ops));
    }
  }
  return result;
}

Expr total_operations(const Sdfg& sdfg) {
  Expr total = 0;
  for (const NodeOps& ops : tasklet_operation_counts(sdfg)) {
    total = total + ops.operations;
  }
  return total;
}

}  // namespace dmv::analysis
