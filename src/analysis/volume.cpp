#include <algorithm>
#include <cmath>
#include <set>

#include "dmv/analysis/analysis.hpp"

namespace dmv::analysis {

using ir::Node;
using ir::NodeKind;

NodeId edge_scope(const State& state, const Edge& edge) {
  const Node& src = state.node(edge.src);
  const Node& dst = state.node(edge.dst);
  // Entry -> body edges run inside the map the entry opens.
  if (src.kind == NodeKind::MapEntry && dst.scope_parent == src.id) {
    return src.id;
  }
  // Exit -> outside edges run in the scope surrounding the map.
  if (src.kind == NodeKind::MapExit && src.paired != ir::kNoNode) {
    return state.node(src.paired).scope_parent;
  }
  return src.scope_parent;
}

Expr scope_iterations(const State& state, NodeId scope) {
  Expr total = 1;
  NodeId current = scope;
  while (current != ir::kNoNode) {
    const Node& entry = state.node(current);
    for (const ir::Range& range : entry.map.ranges) {
      total = total * range.size();
    }
    current = entry.scope_parent;
  }
  return total;
}

Expr total_edge_elements(const State& state, const Edge& edge) {
  if (edge.memlet.is_empty()) return 0;
  return edge.memlet.effective_volume() *
         scope_iterations(state, edge_scope(state, edge));
}

Expr total_edge_bytes(const Sdfg& sdfg, const State& state,
                      const Edge& edge) {
  if (edge.memlet.is_empty()) return 0;
  return total_edge_elements(state, edge) *
         sdfg.array(edge.memlet.data).element_size;
}

std::vector<EdgeVolume> edge_volumes(const Sdfg& sdfg) {
  std::vector<EdgeVolume> result;
  for (int s = 0; s < static_cast<int>(sdfg.states().size()); ++s) {
    const State& state = sdfg.states()[s];
    for (std::size_t e = 0; e < state.edges().size(); ++e) {
      const Edge& edge = state.edges()[e];
      if (edge.memlet.is_empty()) continue;
      EdgeVolume volume;
      volume.ref = EdgeRef{s, e};
      volume.data = edge.memlet.data;
      volume.elements = total_edge_elements(state, edge);
      volume.bytes = volume.elements * sdfg.array(edge.memlet.data).element_size;
      result.push_back(std::move(volume));
    }
  }
  return result;
}

Expr total_movement_bytes(const Sdfg& sdfg) {
  Expr total = 0;
  for (const EdgeVolume& volume : edge_volumes(sdfg)) {
    total = total + volume.bytes;
  }
  return total;
}

std::set<std::string> simulation_symbols(const Sdfg& sdfg) {
  std::set<std::string> reached;
  auto visit = [&](const Expr& e) { e.collect_free_symbols(reached); };
  auto visit_ranges = [&](const std::vector<ir::Range>& ranges) {
    for (const ir::Range& range : ranges) {
      visit(range.begin);
      visit(range.end);
      visit(range.step);
    }
  };
  for (const auto& [name, descriptor] : sdfg.arrays()) {
    for (const Expr& extent : descriptor.shape) visit(extent);
    for (const Expr& stride : descriptor.strides) visit(stride);
    visit(descriptor.start_offset);
  }
  for (const State& state : sdfg.states()) {
    for (const ir::Node& node : state.nodes()) {
      if (node.kind == ir::NodeKind::MapEntry) {
        visit_ranges(node.map.ranges);
      }
    }
    for (const Edge& edge : state.edges()) {
      if (edge.memlet.is_empty()) continue;
      visit_ranges(edge.memlet.subset.ranges);
      visit_ranges(edge.memlet.other_subset.ranges);
      visit(edge.memlet.volume);
    }
  }
  // Map parameters and other locally-bound names show up as free symbols
  // of the inner expressions; only DECLARED program symbols are tunable.
  std::set<std::string> result;
  for (const std::string& symbol : sdfg.symbols()) {
    if (reached.contains(symbol)) result.insert(symbol);
  }
  return result;
}

MovementDiff diff_movement(const Sdfg& before, const Sdfg& after,
                           const SymbolMap& symbols) {
  auto per_container = [&](const Sdfg& sdfg) {
    std::map<std::string, double> totals;
    for (const EdgeVolume& volume : edge_volumes(sdfg)) {
      totals[volume.data] +=
          static_cast<double>(volume.bytes.evaluate(symbols));
    }
    return totals;
  };
  const std::map<std::string, double> before_totals = per_container(before);
  const std::map<std::string, double> after_totals = per_container(after);

  MovementDiff diff;
  std::set<std::string> names;
  for (const auto& [name, bytes] : before_totals) names.insert(name);
  for (const auto& [name, bytes] : after_totals) names.insert(name);
  for (const std::string& name : names) {
    ContainerDelta delta;
    delta.data = name;
    auto b = before_totals.find(name);
    auto a = after_totals.find(name);
    if (b != before_totals.end()) delta.before_bytes = b->second;
    if (a != after_totals.end()) delta.after_bytes = a->second;
    diff.before_total += delta.before_bytes;
    diff.after_total += delta.after_bytes;
    diff.containers.push_back(std::move(delta));
  }
  std::sort(diff.containers.begin(), diff.containers.end(),
            [](const ContainerDelta& a, const ContainerDelta& b) {
              return std::abs(a.delta()) > std::abs(b.delta());
            });
  return diff;
}

std::vector<RankedEdge> rank_edges_by_volume(const Sdfg& sdfg,
                                             const SymbolMap& symbols) {
  std::vector<RankedEdge> ranked;
  for (const EdgeVolume& volume : edge_volumes(sdfg)) {
    RankedEdge entry;
    entry.ref = volume.ref;
    entry.data = volume.data;
    entry.bytes = static_cast<double>(volume.bytes.evaluate(symbols));
    ranked.push_back(std::move(entry));
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const RankedEdge& a, const RankedEdge& b) {
              return a.bytes > b.bytes;
            });
  return ranked;
}

}  // namespace dmv::analysis
