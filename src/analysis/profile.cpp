#include <stdexcept>

#include "dmv/analysis/profile.hpp"

namespace dmv::analysis {

std::vector<MapProfile> roofline_profile(const Sdfg& sdfg,
                                         const SymbolMap& symbols,
                                         const MachineModel& machine) {
  if (machine.flops_per_second <= 0 || machine.bytes_per_second <= 0) {
    throw std::invalid_argument("roofline_profile: bad machine model");
  }
  std::vector<MapProfile> profiles;
  for (const MapIntensity& intensity : map_intensities(sdfg, symbols)) {
    MapProfile profile;
    profile.ref = intensity.ref;
    profile.label = intensity.label;
    profile.operations = intensity.operations;
    profile.boundary_bytes = intensity.boundary_bytes;
    profile.compute_seconds =
        intensity.operations / machine.flops_per_second;
    profile.memory_seconds =
        intensity.boundary_bytes / machine.bytes_per_second;
    profile.bound = profile.compute_seconds >= profile.memory_seconds
                        ? Bound::Compute
                        : Bound::Memory;
    profile.seconds =
        std::max(profile.compute_seconds, profile.memory_seconds);
    profiles.push_back(std::move(profile));
  }
  return profiles;
}

double roofline_total_seconds(const Sdfg& sdfg, const SymbolMap& symbols,
                              const MachineModel& machine) {
  double total = 0;
  for (const MapProfile& profile :
       roofline_profile(sdfg, symbols, machine)) {
    total += profile.seconds;
  }
  return total;
}

MetricOverlay::Heat MetricOverlay::to_heat(viz::ScalingPolicy policy) const {
  std::vector<double> values;
  values.reserve(node_values.size() + edge_values.size());
  for (const auto& [node, value] : node_values) values.push_back(value);
  for (const auto& [edge, value] : edge_values) values.push_back(value);
  viz::HeatmapScale scale = viz::HeatmapScale::fit(values, policy);
  Heat heat;
  for (const auto& [node, value] : node_values) {
    heat.node_heat[node] = scale.normalize(value);
  }
  for (const auto& [edge, value] : edge_values) {
    heat.edge_heat[edge] = scale.normalize(value);
  }
  return heat;
}

MetricOverlay overlay_from_roofline(const std::vector<MapProfile>& profile,
                                    int state_index) {
  MetricOverlay overlay;
  overlay.name = "roofline time [s]";
  for (const MapProfile& map : profile) {
    if (map.ref.state_index != state_index) continue;
    overlay.node_values[map.ref.node] = map.seconds;
  }
  return overlay;
}

}  // namespace dmv::analysis
