#include <utility>

#include "dmv/analysis/analysis.hpp"

// Delta-recomputation Tier 1: closed-form expressions for every metric
// the simulator's exact counting can answer without generating events.
// The counting rules mirror sim/trace_plan.cpp symbolically:
//
//   * trip count of an inclusive range [begin : end : step] is
//     max(0, floor((end - begin) / step) + 1) — identical to the
//     planner's range_trips for positive steps;
//   * a memlet subset visits max(1, trips) elements per dimension (the
//     simulator's odometer emits at least once per dimension, and a
//     scalar subset is one element);
//   * a tasklet's per-execution events are the sum of its input subset
//     sizes plus its output subset sizes (doubled for WCR outputs when
//     wcr_reads), times the product of enclosing map trip counts;
//   * a copy moves 2 * n_src events (read + write) per traversal.
//
// Simplification collapses outer-parameter-dependent bounds for the
// ubiquitous A[i, j:j+2]-style subsets ((i+2) - i = 2); when a count
// genuinely depends on a locally-bound map parameter (triangular
// spaces), the bundle is marked inexact and evaluation throws.

namespace dmv::analysis {

namespace {

using ir::Node;
using ir::NodeKind;

Expr range_trips(const ir::Range& range) {
  return symbolic::max(Expr(0), (range.end - range.begin) / range.step + 1);
}

Expr subset_elements(const ir::Subset& subset) {
  Expr n = 1;
  for (const ir::Range& range : subset.ranges) {
    n = n * symbolic::max(Expr(1), range_trips(range));
  }
  return n;
}

/// Product of trip counts of every map enclosing `scope` (inclusive).
Expr scope_trips(const State& state, NodeId scope) {
  Expr total = 1;
  for (NodeId current = scope; current != ir::kNoNode;
       current = state.node(current).scope_parent) {
    for (const ir::Range& range : state.node(current).map.ranges) {
      total = total * range_trips(range);
    }
  }
  return total;
}

}  // namespace

ClosedFormMetrics closed_form_metrics(const Sdfg& sdfg, bool wcr_reads) {
  ClosedFormMetrics metrics;
  std::map<std::string, int> container_ids;
  for (const auto& [name, descriptor] : sdfg.arrays()) {
    container_ids.emplace(name,
                          static_cast<int>(metrics.containers.size()));
    metrics.containers.push_back(name);
    Expr elements = 1;
    for (const Expr& extent : descriptor.shape) elements = elements * extent;
    metrics.footprint_bytes =
        metrics.footprint_bytes + elements * descriptor.element_size;
  }
  metrics.reads_per_container.assign(metrics.containers.size(), Expr(0));
  metrics.writes_per_container.assign(metrics.containers.size(), Expr(0));

  for (const State& state : sdfg.states()) {
    const ir::StateSchedule schedule(state);
    for (ir::NodeId id : schedule.order) {
      const Node& node = state.node(id);
      if (node.kind == NodeKind::Tasklet) {
        const Expr iterations = scope_trips(state, node.scope_parent);
        metrics.total_executions = metrics.total_executions + iterations;
        for (const ir::Edge* edge : schedule.in_adjacency[id]) {
          if (edge->memlet.is_empty()) continue;
          const Expr n =
              subset_elements(edge->memlet.subset) * iterations;
          const int c = container_ids.at(edge->memlet.data);
          metrics.reads_per_container[c] =
              metrics.reads_per_container[c] + n;
          metrics.total_events = metrics.total_events + n;
        }
        for (const ir::Edge* edge : schedule.out_adjacency[id]) {
          if (edge->memlet.is_empty()) continue;
          const Expr n =
              subset_elements(edge->memlet.subset) * iterations;
          const int c = container_ids.at(edge->memlet.data);
          metrics.writes_per_container[c] =
              metrics.writes_per_container[c] + n;
          metrics.total_events = metrics.total_events + n;
          if (edge->memlet.wcr != ir::Wcr::None && wcr_reads) {
            metrics.reads_per_container[c] =
                metrics.reads_per_container[c] + n;
            metrics.total_events = metrics.total_events + n;
          }
        }
      } else if (node.kind == NodeKind::Access) {
        for (const ir::Edge* edge : schedule.out_adjacency[id]) {
          if (edge->memlet.is_empty()) continue;
          const Node& dst = state.node(edge->dst);
          if (dst.kind != NodeKind::Access) continue;
          const Expr iterations = scope_trips(state, node.scope_parent);
          const Expr n =
              subset_elements(edge->memlet.subset) * iterations;
          const int src = container_ids.at(edge->memlet.data);
          const int dest = container_ids.at(dst.data);
          metrics.reads_per_container[src] =
              metrics.reads_per_container[src] + n;
          metrics.writes_per_container[dest] =
              metrics.writes_per_container[dest] + n;
          metrics.total_events = metrics.total_events + n + n;
          metrics.total_executions = metrics.total_executions + n;
        }
      }
    }
  }

  metrics.flops = total_operations(sdfg);
  metrics.movement_bytes = total_movement_bytes(sdfg);

  std::set<std::string> reached;
  auto visit = [&reached](const Expr& e) { e.collect_free_symbols(reached); };
  visit(metrics.total_events);
  visit(metrics.total_executions);
  visit(metrics.flops);
  visit(metrics.movement_bytes);
  visit(metrics.footprint_bytes);
  for (const Expr& e : metrics.reads_per_container) visit(e);
  for (const Expr& e : metrics.writes_per_container) visit(e);
  const std::set<std::string> declared = sdfg.symbols();
  for (const std::string& symbol : reached) {
    if (declared.contains(symbol)) {
      metrics.symbols.insert(symbol);
    } else {
      // A locally-bound map parameter survived simplification: the
      // count is not closed over the program symbols.
      metrics.exact = false;
    }
  }
  return metrics;
}

ClosedFormValues evaluate_closed_form(const ClosedFormMetrics& metrics,
                                      const SymbolMap& symbols) {
  ClosedFormValues values;
  values.total_events = metrics.total_events.evaluate(symbols);
  values.total_executions = metrics.total_executions.evaluate(symbols);
  values.flops = metrics.flops.evaluate(symbols);
  values.movement_bytes = metrics.movement_bytes.evaluate(symbols);
  values.footprint_bytes = metrics.footprint_bytes.evaluate(symbols);
  values.arithmetic_intensity =
      values.movement_bytes == 0
          ? 0
          : static_cast<double>(values.flops) /
                static_cast<double>(values.movement_bytes);
  values.containers = metrics.containers;
  values.reads.reserve(metrics.reads_per_container.size());
  values.writes.reserve(metrics.writes_per_container.size());
  for (const Expr& e : metrics.reads_per_container) {
    values.reads.push_back(e.evaluate(symbols));
  }
  for (const Expr& e : metrics.writes_per_container) {
    values.writes.push_back(e.evaluate(symbols));
  }
  return values;
}

}  // namespace dmv::analysis
