#include <algorithm>
#include <cmath>
#include <sstream>

#include "dmv/viz/render.hpp"

namespace dmv::viz {

namespace {

constexpr double kGap = 8;  ///< Gap between nested blocks.

// Geometry of the §V-B hierarchical layout: the two innermost dimensions
// form a 2-D tile grid; each further dimension nests those blocks in
// alternating horizontal / vertical 1-D grids.
struct BlockGeometry {
  double width = 0;
  double height = 0;
};

bool level_is_horizontal(int rank, int dim) {
  // dim indexes the outer dimension being laid out (0-based). The level
  // closest to the 2-D core is horizontal, then alternate outward.
  const int level = (rank - 2) - dim;  // 1 = innermost outer level.
  return level % 2 == 1;
}

BlockGeometry measure(const std::vector<std::int64_t>& shape, int dim,
                      double tile) {
  const int rank = static_cast<int>(shape.size());
  if (rank == 0) return {tile, tile};
  if (dim == rank - 1) {
    return {static_cast<double>(shape[dim]) * tile, tile};
  }
  if (dim == rank - 2) {
    return {static_cast<double>(shape[dim + 1]) * tile,
            static_cast<double>(shape[dim]) * tile};
  }
  const BlockGeometry child = measure(shape, dim + 1, tile);
  const double count = static_cast<double>(shape[dim]);
  if (level_is_horizontal(rank, dim)) {
    return {count * child.width + (count - 1) * kGap, child.height};
  }
  return {child.width, count * child.height + (count - 1) * kGap};
}

// Top-left corner of an element's tile.
void locate(const std::vector<std::int64_t>& shape,
            const std::vector<std::int64_t>& indices, double tile,
            double& x, double& y) {
  const int rank = static_cast<int>(shape.size());
  x = 0;
  y = 0;
  if (rank == 0) return;
  for (int d = 0; d < rank - 2; ++d) {
    const BlockGeometry child = measure(shape, d + 1, tile);
    if (level_is_horizontal(rank, d)) {
      x += static_cast<double>(indices[d]) * (child.width + kGap);
    } else {
      y += static_cast<double>(indices[d]) * (child.height + kGap);
    }
  }
  if (rank >= 2) {
    y += static_cast<double>(indices[rank - 2]) * tile;
    x += static_cast<double>(indices[rank - 1]) * tile;
  } else {
    x += static_cast<double>(indices[rank - 1]) * tile;
  }
}

std::string index_text(const std::vector<std::int64_t>& indices) {
  std::string text = "[";
  for (std::size_t d = 0; d < indices.size(); ++d) {
    if (d > 0) text += ", ";
    text += std::to_string(indices[d]);
  }
  return text + "]";
}

}  // namespace

std::string render_tiles_svg(const layout::ConcreteLayout& layout,
                             const TileRenderOptions& options) {
  const double tile = options.tile_size;
  const BlockGeometry geometry = measure(layout.shape, 0, tile);
  const double header = options.show_name ? 22.0 : 0.0;
  std::ostringstream svg;
  svg << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\""
      << geometry.width + 2 << "\" height=\"" << geometry.height + header + 2
      << "\">\n";
  if (options.show_name) {
    svg << "<text x=\"0\" y=\"14\" font-size=\"13\" "
           "font-family=\"monospace\" font-weight=\"bold\">"
        << layout.name << "</text>\n";
  }

  const std::int64_t total = layout.total_elements();
  for (std::int64_t flat = 0; flat < total; ++flat) {
    const layout::Index indices = layout.unflatten(flat);
    double x = 0, y = 0;
    locate(layout.shape, indices, tile, x, y);
    y += header;

    std::string fill = "#e8e8e8";
    if (options.heat != nullptr) {
      fill = sample_color((*options.heat)[flat], options.scheme).hex();
    }
    if (options.highlighted.contains(flat)) fill = "#39b54a";
    const bool selected = options.selected.contains(flat);
    svg << "<rect x=\"" << x + 1 << "\" y=\"" << y + 1 << "\" width=\""
        << tile - 2 << "\" height=\"" << tile - 2 << "\" fill=\"" << fill
        << "\" stroke=\"" << (selected ? "#1565c0" : "#888")
        << "\" stroke-width=\"" << (selected ? 2.5 : 0.6) << "\">";
    svg << "<title>" << layout.name << index_text(indices) << " @byte "
        << layout.byte_address(indices);
    if (options.counts != nullptr) {
      svg << " | accesses: " << (*options.counts)[flat];
    }
    svg << "</title></rect>\n";
    if (options.counts != nullptr && tile >= 16) {
      const std::int64_t count = (*options.counts)[flat];
      if (count != 0 && count < 10000) {
        svg << "<text x=\"" << x + tile / 2 << "\" y=\"" << y + tile / 2 + 3
            << "\" text-anchor=\"middle\" font-size=\"" << tile / 2.4
            << "\" font-family=\"monospace\">" << count << "</text>\n";
      }
    }
  }
  svg << "</svg>\n";
  return svg.str();
}

std::string render_histogram_svg(const std::vector<std::int64_t>& values,
                                 const HistogramRenderOptions& options) {
  std::ostringstream svg;
  svg << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << options.width
      << "\" height=\"" << options.height << "\">\n";
  if (!options.title.empty()) {
    svg << "<text x=\"4\" y=\"14\" font-size=\"12\" "
           "font-family=\"monospace\" font-weight=\"bold\">"
        << options.title << "</text>\n";
  }
  const double top = 24, bottom = options.height - 26, left = 8,
               right = options.width - 8;

  if (!values.empty()) {
    const std::int64_t lo = *std::min_element(values.begin(), values.end());
    const std::int64_t hi = *std::max_element(values.begin(), values.end());
    const int buckets = static_cast<int>(std::min<std::int64_t>(
        options.max_buckets, std::max<std::int64_t>(1, hi - lo + 1)));
    std::vector<std::int64_t> counts(buckets, 0);
    const double span = static_cast<double>(hi - lo + 1);
    for (std::int64_t v : values) {
      int bucket = static_cast<int>(
          std::floor(static_cast<double>(v - lo) / span * buckets));
      bucket = std::clamp(bucket, 0, buckets - 1);
      ++counts[bucket];
    }
    const std::int64_t peak =
        *std::max_element(counts.begin(), counts.end());
    const double bar_width = (right - left) / buckets;
    for (int b = 0; b < buckets; ++b) {
      const double height =
          peak == 0 ? 0
                    : (bottom - top) * static_cast<double>(counts[b]) /
                          static_cast<double>(peak);
      svg << "<rect x=\"" << left + b * bar_width << "\" y=\""
          << bottom - height << "\" width=\"" << bar_width - 1
          << "\" height=\"" << height << "\" fill=\"#4a90d9\"><title>"
          << "distance " << lo + static_cast<std::int64_t>(b * span / buckets)
          << "..: " << counts[b] << " accesses</title></rect>\n";
    }
    svg << "<text x=\"" << left << "\" y=\"" << options.height - 12
        << "\" font-size=\"10\" font-family=\"monospace\">" << lo
        << "</text>\n";
    svg << "<text x=\"" << right << "\" y=\"" << options.height - 12
        << "\" text-anchor=\"end\" font-size=\"10\" "
           "font-family=\"monospace\">"
        << hi << "</text>\n";
  }
  if (options.cold_misses > 0) {
    svg << "<text x=\"" << options.width / 2 << "\" y=\""
        << options.height - 2
        << "\" text-anchor=\"middle\" font-size=\"10\" fill=\"#b00\" "
           "font-family=\"monospace\">"
        << options.cold_misses << " cold miss"
        << (options.cold_misses == 1 ? "" : "es") << "</text>\n";
  }
  svg << "</svg>\n";
  return svg.str();
}

}  // namespace dmv::viz
