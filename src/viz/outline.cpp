#include <sstream>

#include "dmv/viz/render.hpp"

namespace dmv::viz {

namespace {

using ir::Node;
using ir::NodeId;
using ir::NodeKind;
using ir::State;

void outline_scope(const State& state, NodeId scope, int depth,
                   std::ostringstream& out) {
  for (NodeId id : state.scope_children(scope)) {
    const Node& node = state.node(id);
    if (node.kind == NodeKind::MapExit) continue;
    out << std::string(static_cast<std::size_t>(depth) * 2, ' ');
    switch (node.kind) {
      case NodeKind::Access:
        out << "(access) " << node.data << '\n';
        break;
      case NodeKind::Tasklet:
        out << "[tasklet] " << node.label << '\n';
        break;
      case NodeKind::MapEntry: {
        out << "<map> " << node.map.label << " [";
        for (std::size_t p = 0; p < node.map.params.size(); ++p) {
          if (p > 0) out << ", ";
          out << node.map.params[p] << '=' << node.map.ranges[p].to_string();
        }
        out << "]" << (node.map.collapsed ? " (collapsed)" : "") << '\n';
        if (!node.map.collapsed) {
          outline_scope(state, node.id, depth + 1, out);
        }
        break;
      }
      case NodeKind::MapExit:
        break;
    }
  }
}

}  // namespace

std::string outline(const ir::Sdfg& sdfg) {
  std::ostringstream out;
  out << "SDFG " << sdfg.name() << '\n';
  for (const State& state : sdfg.states()) {
    out << "  state " << state.name() << '\n';
    outline_scope(state, ir::kNoNode, 2, out);
  }
  return out.str();
}

}  // namespace dmv::viz
