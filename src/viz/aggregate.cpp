#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "dmv/viz/render.hpp"

namespace dmv::viz {

std::string render_aggregated_tiles_svg(
    const layout::ConcreteLayout& layout, const std::vector<double>& values,
    const AggregatedTileOptions& options) {
  const int rank = layout.rank();
  if (static_cast<std::int64_t>(values.size()) != layout.total_elements()) {
    throw std::invalid_argument(
        "render_aggregated_tiles_svg: values size mismatch");
  }
  if (static_cast<int>(options.prefix.size()) != std::max(0, rank - 2)) {
    throw std::invalid_argument(
        "render_aggregated_tiles_svg: prefix must fix all but the last "
        "two dimensions");
  }
  if (options.max_tiles_per_axis <= 0) {
    throw std::invalid_argument(
        "render_aggregated_tiles_svg: bad max_tiles_per_axis");
  }

  const std::int64_t rows = rank >= 2 ? layout.shape[rank - 2] : 1;
  const std::int64_t cols = rank >= 1 ? layout.shape[rank - 1] : 1;
  const std::int64_t block_rows =
      (rows + options.max_tiles_per_axis - 1) / options.max_tiles_per_axis;
  const std::int64_t block_cols =
      (cols + options.max_tiles_per_axis - 1) / options.max_tiles_per_axis;
  const std::int64_t tile_rows = (rows + block_rows - 1) / block_rows;
  const std::int64_t tile_cols = (cols + block_cols - 1) / block_cols;

  // Reduce each block.
  std::vector<double> aggregated(tile_rows * tile_cols, 0.0);
  std::vector<std::int64_t> population(tile_rows * tile_cols, 0);
  layout::Index indices(options.prefix.begin(), options.prefix.end());
  indices.resize(rank, 0);
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      if (rank >= 2) indices[rank - 2] = r;
      if (rank >= 1) indices[rank - 1] = c;
      const double value = values[layout.flat_index(indices)];
      const std::int64_t tile =
          (r / block_rows) * tile_cols + (c / block_cols);
      switch (options.aggregation) {
        case TileAggregation::Sum:
        case TileAggregation::Mean:
          aggregated[tile] += value;
          break;
        case TileAggregation::Max:
          aggregated[tile] = population[tile] == 0
                                 ? value
                                 : std::max(aggregated[tile], value);
          break;
      }
      ++population[tile];
    }
  }
  if (options.aggregation == TileAggregation::Mean) {
    for (std::size_t t = 0; t < aggregated.size(); ++t) {
      if (population[t] > 0) {
        aggregated[t] /= static_cast<double>(population[t]);
      }
    }
  }

  HeatmapScale scale = HeatmapScale::fit(aggregated, options.scaling);
  std::ostringstream svg;
  const double tile = options.tile_size;
  svg << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\""
      << tile_cols * tile + 2 << "\" height=\"" << tile_rows * tile + 24
      << "\">\n";
  svg << "<text x=\"0\" y=\"14\" font-size=\"13\" "
         "font-family=\"monospace\" font-weight=\"bold\">"
      << layout.name << " (" << block_rows << "x" << block_cols
      << " elements/tile)</text>\n";
  for (std::int64_t tr = 0; tr < tile_rows; ++tr) {
    for (std::int64_t tc = 0; tc < tile_cols; ++tc) {
      const double value = aggregated[tr * tile_cols + tc];
      svg << "<rect x=\"" << tc * tile + 1 << "\" y=\""
          << tr * tile + 23 << "\" width=\"" << tile - 1 << "\" height=\""
          << tile - 1 << "\" fill=\""
          << sample_color(scale.normalize(value), options.scheme).hex()
          << "\"><title>rows " << tr * block_rows << ".."
          << std::min(rows - 1, (tr + 1) * block_rows - 1) << ", cols "
          << tc * block_cols << ".."
          << std::min(cols - 1, (tc + 1) * block_cols - 1) << ": " << value
          << "</title></rect>\n";
    }
  }
  svg << "</svg>\n";
  return svg.str();
}

}  // namespace dmv::viz
