#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "dmv/viz/graph_layout.hpp"

namespace dmv::viz {

namespace {

using ir::Edge;
using ir::Node;
using ir::NodeId;
using ir::NodeKind;
using ir::State;

// Default node geometry per kind; width grows with the label.
void node_size(const Node& node, bool collapsed, double& width,
               double& height) {
  const double label_width = 8.0 * static_cast<double>(node.label.size());
  switch (node.kind) {
    case NodeKind::Access:
      width = std::max(70.0, label_width + 20.0);
      height = 28.0;
      break;
    case NodeKind::Tasklet:
      width = std::max(90.0, label_width + 24.0);
      height = 36.0;
      break;
    case NodeKind::MapEntry:
    case NodeKind::MapExit: {
      double params_width = 0;
      if (node.kind == NodeKind::MapEntry) {
        for (std::size_t p = 0; p < node.map.params.size(); ++p) {
          params_width += 10.0 * (node.map.params[p].size() +
                                  node.map.ranges[p].to_string().size());
        }
      }
      width = std::max(130.0, std::max(label_width, params_width) + 30.0);
      height = collapsed ? 44.0 : 30.0;
      break;
    }
  }
}

// True if the node is hidden inside a collapsed map scope.
bool hidden_by_collapse(const State& state, NodeId id, bool respect) {
  if (!respect) return false;
  for (NodeId scope : state.scope_chain(id)) {
    if (state.node(scope).map.collapsed) return true;
  }
  return false;
}

// For edges touching hidden nodes: remap the endpoint to the outermost
// collapsed map entry that hides it (the summary box). A collapsed map's
// exit also folds onto its entry.
NodeId visible_representative(const State& state, NodeId id, bool respect) {
  if (!respect) return id;
  NodeId representative = id;
  const std::vector<NodeId> chain = state.scope_chain(id);
  // Outermost collapsed scope wins.
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    if (state.node(*it).map.collapsed) {
      representative = *it;
      break;
    }
  }
  const Node& node = state.node(representative);
  if (node.kind == NodeKind::MapExit && node.paired != ir::kNoNode &&
      state.node(node.paired).map.collapsed) {
    representative = node.paired;
  }
  return representative;
}

}  // namespace

const NodeBox* StateLayout::find(ir::NodeId id) const {
  for (const NodeBox& box : nodes) {
    if (box.id == id) return &box;
  }
  return nullptr;
}

StateLayout layout_state(const State& state, const LayoutOptions& options) {
  StateLayout result;
  const std::size_t n = state.num_nodes();

  // Visible nodes and remapped edges.
  std::vector<bool> visible(n, false);
  for (const Node& node : state.nodes()) {
    const bool hidden =
        hidden_by_collapse(state, node.id, options.respect_collapsed);
    const bool folded_exit =
        options.respect_collapsed && node.kind == NodeKind::MapExit &&
        node.paired != ir::kNoNode && state.node(node.paired).map.collapsed;
    visible[node.id] = !hidden && !folded_exit;
  }

  struct VisibleEdge {
    std::size_t index;
    NodeId src;
    NodeId dst;
  };
  std::vector<VisibleEdge> edges;
  for (std::size_t e = 0; e < state.edges().size(); ++e) {
    const Edge& edge = state.edges()[e];
    NodeId src =
        visible_representative(state, edge.src, options.respect_collapsed);
    NodeId dst =
        visible_representative(state, edge.dst, options.respect_collapsed);
    if (options.respect_collapsed) {
      const Node& src_node = state.node(src);
      if (src_node.kind == NodeKind::MapExit && src_node.paired != ir::kNoNode &&
          state.node(src_node.paired).map.collapsed) {
        src = src_node.paired;
      }
      const Node& dst_node = state.node(dst);
      if (dst_node.kind == NodeKind::MapExit && dst_node.paired != ir::kNoNode &&
          state.node(dst_node.paired).map.collapsed) {
        dst = dst_node.paired;
      }
    }
    if (src == dst) continue;  // Edge fully inside a collapsed scope.
    if (!visible[src] || !visible[dst]) continue;
    edges.push_back(VisibleEdge{e, src, dst});
  }

  // Longest-path layering over visible edges.
  std::vector<int> layer(n, 0);
  bool changed = true;
  int guard = 0;
  while (changed && guard++ < static_cast<int>(n) + 2) {
    changed = false;
    for (const VisibleEdge& edge : edges) {
      if (layer[edge.dst] < layer[edge.src] + 1) {
        layer[edge.dst] = layer[edge.src] + 1;
        changed = true;
      }
    }
  }

  int max_layer = 0;
  for (const Node& node : state.nodes()) {
    if (visible[node.id]) max_layer = std::max(max_layer, layer[node.id]);
  }

  // Initial ordering within each layer: node id (deterministic), then
  // barycenter sweeps to reduce crossings.
  std::vector<std::vector<NodeId>> layers(max_layer + 1);
  for (const Node& node : state.nodes()) {
    if (visible[node.id]) layers[layer[node.id]].push_back(node.id);
  }

  std::vector<double> position(n, 0);
  for (auto& row : layers) {
    for (std::size_t i = 0; i < row.size(); ++i) position[row[i]] = i;
  }

  auto barycenter_sweep = [&](bool downward) {
    for (int l = downward ? 1 : max_layer - 1;
         downward ? l <= max_layer : l >= 0; downward ? ++l : --l) {
      std::vector<std::pair<double, NodeId>> keyed;
      for (NodeId id : layers[l]) {
        double sum = 0;
        int count = 0;
        for (const VisibleEdge& edge : edges) {
          if (downward && edge.dst == id) {
            sum += position[edge.src];
            ++count;
          }
          if (!downward && edge.src == id) {
            sum += position[edge.dst];
            ++count;
          }
        }
        keyed.emplace_back(count > 0 ? sum / count : position[id], id);
      }
      std::stable_sort(keyed.begin(), keyed.end(),
                       [](const auto& a, const auto& b) {
                         return a.first < b.first;
                       });
      for (std::size_t i = 0; i < keyed.size(); ++i) {
        layers[l][i] = keyed[i].second;
        position[keyed[i].second] = static_cast<double>(i);
      }
    }
  };
  for (int pass = 0; pass < 3; ++pass) {
    barycenter_sweep(true);
    barycenter_sweep(false);
  }

  // Coordinates: pack each layer left-to-right, then center layers.
  std::vector<double> widths(n, 0), heights(n, 0);
  for (const Node& node : state.nodes()) {
    if (!visible[node.id]) continue;
    node_size(node, options.respect_collapsed && node.map.collapsed,
              widths[node.id], heights[node.id]);
  }
  std::vector<double> layer_width(max_layer + 1, 0);
  std::vector<double> layer_height(max_layer + 1, 0);
  for (int l = 0; l <= max_layer; ++l) {
    double w = 0;
    for (NodeId id : layers[l]) {
      w += widths[id] + options.horizontal_gap;
      layer_height[l] = std::max(layer_height[l], heights[id]);
    }
    layer_width[l] = std::max(0.0, w - options.horizontal_gap);
  }
  const double total_width =
      *std::max_element(layer_width.begin(), layer_width.end()) + 40.0;

  std::vector<double> x(n, 0), y(n, 0);
  double cursor_y = 20.0;
  for (int l = 0; l <= max_layer; ++l) {
    double cursor_x = (total_width - layer_width[l]) / 2.0;
    for (NodeId id : layers[l]) {
      x[id] = cursor_x + widths[id] / 2.0;
      y[id] = cursor_y + layer_height[l] / 2.0;
      cursor_x += widths[id] + options.horizontal_gap;
    }
    cursor_y += layer_height[l] + options.vertical_gap;
  }

  // Relaxation: pull nodes toward the mean x of their neighbors, then
  // resolve overlaps within each layer left to right.
  for (int pass = 0; pass < 4; ++pass) {
    for (int l = 0; l <= max_layer; ++l) {
      for (NodeId id : layers[l]) {
        double sum = 0;
        int count = 0;
        for (const VisibleEdge& edge : edges) {
          if (edge.dst == id) {
            sum += x[edge.src];
            ++count;
          }
          if (edge.src == id) {
            sum += x[edge.dst];
            ++count;
          }
        }
        if (count > 0) x[id] = 0.5 * x[id] + 0.5 * (sum / count);
      }
      // De-overlap, preserving order.
      for (std::size_t i = 1; i < layers[l].size(); ++i) {
        const NodeId left = layers[l][i - 1];
        const NodeId right = layers[l][i];
        const double min_x = x[left] + widths[left] / 2.0 +
                             options.horizontal_gap + widths[right] / 2.0;
        if (x[right] < min_x) x[right] = min_x;
      }
    }
  }

  double max_x = 0;
  for (const Node& node : state.nodes()) {
    if (!visible[node.id]) continue;
    NodeBox box;
    box.id = node.id;
    box.x = x[node.id];
    box.y = y[node.id];
    box.width = widths[node.id];
    box.height = heights[node.id];
    box.collapsed = options.respect_collapsed && node.map.collapsed &&
                    node.kind == NodeKind::MapEntry;
    result.nodes.push_back(box);
    max_x = std::max(max_x, box.x + box.width / 2.0);
  }
  for (const VisibleEdge& edge : edges) {
    EdgePath path;
    path.edge_index = edge.index;
    path.x1 = x[edge.src];
    path.y1 = y[edge.src] + heights[edge.src] / 2.0;
    path.x2 = x[edge.dst];
    path.y2 = y[edge.dst] - heights[edge.dst] / 2.0;
    result.edges.push_back(path);
  }
  result.width = max_x + 20.0;
  result.height = cursor_y;
  return result;
}

}  // namespace dmv::viz
