#include <algorithm>
#include <cctype>
#include <sstream>

#include "dmv/analysis/analysis.hpp"
#include "dmv/viz/query.hpp"

namespace dmv::viz {

namespace {

std::string lowered(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool contains_ci(std::string_view haystack, const std::string& needle) {
  return lowered(haystack).find(needle) != std::string::npos;
}

}  // namespace

std::vector<SearchResult> search(const ir::Sdfg& sdfg,
                                 std::string_view query) {
  const std::string needle = lowered(query);
  std::vector<SearchResult> results;
  if (needle.empty()) return results;
  for (int s = 0; s < static_cast<int>(sdfg.states().size()); ++s) {
    for (const ir::Node& node : sdfg.states()[s].nodes()) {
      bool matches = contains_ci(node.label, needle) ||
                     contains_ci(node.data, needle);
      if (node.kind == ir::NodeKind::Tasklet) {
        matches = matches || contains_ci(node.code.source, needle);
      }
      if (node.kind == ir::NodeKind::MapEntry) {
        for (const std::string& param : node.map.params) {
          matches = matches || contains_ci(param, needle);
        }
      }
      if (matches) {
        results.push_back(
            SearchResult{s, node.id, node.kind, node.label});
      }
    }
  }
  return results;
}

std::string details_panel(const ir::Sdfg& sdfg, int state_index,
                          ir::NodeId node_id) {
  const ir::State& state = sdfg.states().at(state_index);
  const ir::Node& node = state.node(node_id);
  std::ostringstream out;
  switch (node.kind) {
    case ir::NodeKind::Access: {
      const ir::DataDescriptor& descriptor = sdfg.array(node.data);
      out << "container " << descriptor.name << '\n';
      out << "  kind: " << (descriptor.transient ? "transient" : "program")
          << " array, rank " << descriptor.rank() << '\n';
      out << "  shape: [";
      for (int d = 0; d < descriptor.rank(); ++d) {
        out << (d ? ", " : "") << descriptor.shape[d].to_string();
      }
      out << "]\n  strides (elements): [";
      for (int d = 0; d < descriptor.rank(); ++d) {
        out << (d ? ", " : "") << descriptor.strides[d].to_string();
      }
      out << "]\n  element size: " << descriptor.element_size
          << " bytes\n";
      out << "  logical size: " << descriptor.logical_bytes().to_string()
          << " bytes\n";
      out << "  allocated: " << descriptor.allocated_bytes().to_string()
          << " bytes\n";
      break;
    }
    case ir::NodeKind::Tasklet: {
      out << "tasklet " << node.label << '\n';
      out << "  code: " << node.code.source << '\n';
      const ir::OpCount count = node.code.count_operations();
      out << "  operations/execution: " << count.total() << " (" << count.adds
          << " add, " << count.muls << " mul, " << count.divs << " div, "
          << count.comparisons << " cmp, " << count.special
          << " special)\n";
      out << "  total executions x ops: "
          << analysis::tasklet_operations(state, node_id).to_string()
          << '\n';
      break;
    }
    case ir::NodeKind::MapEntry:
    case ir::NodeKind::MapExit: {
      const ir::Node& entry =
          node.kind == ir::NodeKind::MapEntry ? node : state.node(node.paired);
      out << "map " << entry.map.label << '\n';
      for (std::size_t p = 0; p < entry.map.params.size(); ++p) {
        out << "  " << entry.map.params[p] << " in ["
            << entry.map.ranges[p].to_string() << "]\n";
      }
      out << "  iterations: "
          << analysis::scope_iterations(state, entry.id).to_string()
          << '\n';
      break;
    }
  }
  return out.str();
}

int auto_collapse(ir::Sdfg& sdfg, std::size_t max_visible_nodes) {
  int collapsed = 0;
  for (ir::State& state : sdfg.states()) {
    // Count visible nodes under current collapse flags.
    auto visible_count = [&]() {
      std::size_t count = 0;
      for (const ir::Node& node : state.nodes()) {
        bool hidden = false;
        for (ir::NodeId scope : state.scope_chain(node.id)) {
          if (state.node(scope).map.collapsed) hidden = true;
        }
        // A collapsed map's exit folds onto its entry.
        if (node.kind == ir::NodeKind::MapExit &&
            node.paired != ir::kNoNode &&
            state.node(node.paired).map.collapsed) {
          hidden = true;
        }
        if (!hidden) ++count;
      }
      return count;
    };

    // Candidate scopes, biggest body first, outermost before nested.
    std::vector<std::pair<std::size_t, ir::NodeId>> candidates;
    for (const ir::Node& node : state.nodes()) {
      if (node.kind != ir::NodeKind::MapEntry || node.map.collapsed) {
        continue;
      }
      std::size_t body = 0;
      for (const ir::Node& other : state.nodes()) {
        for (ir::NodeId scope : state.scope_chain(other.id)) {
          if (scope == node.id) ++body;
        }
      }
      candidates.emplace_back(body, node.id);
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });

    for (const auto& [body, entry] : candidates) {
      if (visible_count() <= max_visible_nodes) break;
      // Skip scopes already hidden by a collapsed ancestor.
      bool already_hidden = false;
      for (ir::NodeId scope : state.scope_chain(entry)) {
        if (state.node(scope).map.collapsed) already_hidden = true;
      }
      if (already_hidden) continue;
      state.node(entry).map.collapsed = true;
      ++collapsed;
    }
  }
  return collapsed;
}

}  // namespace dmv::viz
