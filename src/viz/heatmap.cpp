#include <algorithm>
#include <cmath>
#include <cstdio>

#include "dmv/viz/heatmap.hpp"

namespace dmv::viz {

std::string to_string(ScalingPolicy policy) {
  switch (policy) {
    case ScalingPolicy::Linear:
      return "linear";
    case ScalingPolicy::Exponential:
      return "exponential";
    case ScalingPolicy::MeanCentered:
      return "mean";
    case ScalingPolicy::MedianCentered:
      return "median";
    case ScalingPolicy::Histogram:
      return "histogram";
  }
  return "?";
}

HeatmapScale HeatmapScale::fit(const std::vector<double>& values,
                               ScalingPolicy policy) {
  HeatmapScale scale;
  scale.policy_ = policy;
  if (values.empty()) return scale;

  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  scale.min_ = sorted.front();
  scale.max_ = sorted.back();

  switch (policy) {
    case ScalingPolicy::Linear:
    case ScalingPolicy::Exponential:
      break;
    case ScalingPolicy::MeanCentered: {
      double sum = 0;
      for (double v : sorted) sum += v;
      scale.center_ = sum / static_cast<double>(sorted.size());
      break;
    }
    case ScalingPolicy::MedianCentered:
      scale.center_ = sorted[sorted.size() / 2];
      break;
    case ScalingPolicy::Histogram: {
      // One bucket per distinct observation (tolerant of tiny float
      // noise): the paper's "each distinct observation a different
      // color".
      for (double v : sorted) {
        if (scale.buckets_.empty() ||
            v > scale.buckets_.back() +
                    1e-9 * std::max(1.0, std::fabs(scale.buckets_.back()))) {
          scale.buckets_.push_back(v);
        }
      }
      break;
    }
  }
  return scale;
}

double HeatmapScale::normalize(double value) const {
  auto clamp01 = [](double t) { return std::clamp(t, 0.0, 1.0); };
  switch (policy_) {
    case ScalingPolicy::Linear: {
      if (max_ <= min_) return 0;
      return clamp01((value - min_) / (max_ - min_));
    }
    case ScalingPolicy::Exponential: {
      // Shift into positive territory if needed, then log interpolate.
      const double shift = min_ <= 0 ? 1.0 - min_ : 0.0;
      const double lo = std::log(min_ + shift);
      const double hi = std::log(max_ + shift);
      if (hi <= lo) return 0;
      return clamp01((std::log(value + shift) - lo) / (hi - lo));
    }
    case ScalingPolicy::MeanCentered:
    case ScalingPolicy::MedianCentered: {
      if (center_ <= 0) return 0;
      // Scale runs [0, 2c]; observations above 2c clamp to the hot end.
      return clamp01(value / (2.0 * center_));
    }
    case ScalingPolicy::Histogram: {
      if (buckets_.size() <= 1) return 0;
      const auto it =
          std::lower_bound(buckets_.begin(), buckets_.end(),
                           value - 1e-9 * std::max(1.0, std::fabs(value)));
      const std::size_t index =
          std::min<std::size_t>(it - buckets_.begin(), buckets_.size() - 1);
      return static_cast<double>(index) /
             static_cast<double>(buckets_.size() - 1);
    }
  }
  return 0;
}

std::string Rgb::hex() const {
  char buffer[8];
  std::snprintf(buffer, sizeof(buffer), "#%02x%02x%02x", r, g, b);
  return buffer;
}

namespace {

Rgb lerp(const Rgb& a, const Rgb& b, double t) {
  auto mix = [&](std::uint8_t x, std::uint8_t y) {
    return static_cast<std::uint8_t>(std::lround(x + (y - x) * t));
  };
  return Rgb{mix(a.r, b.r), mix(a.g, b.g), mix(a.b, b.b)};
}

// Green -> yellow -> red, the paper's ramp with the added yellow midpoint
// for visual separation of mid-range values.
Rgb green_yellow_red(double t) {
  constexpr Rgb kGreen{46, 182, 44};
  constexpr Rgb kYellow{250, 210, 1};
  constexpr Rgb kRed{222, 45, 38};
  if (t < 0.5) return lerp(kGreen, kYellow, t * 2.0);
  return lerp(kYellow, kRed, (t - 0.5) * 2.0);
}

// Viridis control points (perceptually uniform, colorblind safe).
Rgb viridis(double t) {
  static constexpr Rgb kStops[] = {
      {68, 1, 84},   {71, 44, 122},  {59, 81, 139},  {44, 113, 142},
      {33, 144, 141}, {39, 173, 129}, {92, 200, 99},  {170, 220, 50},
      {253, 231, 37},
  };
  constexpr int kCount = static_cast<int>(std::size(kStops));
  const double scaled = t * (kCount - 1);
  const int low = static_cast<int>(scaled);
  if (low >= kCount - 1) return kStops[kCount - 1];
  return lerp(kStops[low], kStops[low + 1], scaled - low);
}

}  // namespace

Rgb sample_color(double t, ColorScheme scheme) {
  t = std::clamp(t, 0.0, 1.0);
  switch (scheme) {
    case ColorScheme::GreenYellowRed:
      return green_yellow_red(t);
    case ColorScheme::Viridis:
      return viridis(t);
  }
  return Rgb{};
}

}  // namespace dmv::viz
