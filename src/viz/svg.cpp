#include <cmath>
#include <sstream>

#include "dmv/viz/render.hpp"

namespace dmv::viz {

namespace {

using ir::Node;
using ir::NodeKind;

std::string xml_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '&':
        out += "&amp;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

void draw_node(std::ostringstream& svg, const ir::State& state,
               const NodeBox& box, const GraphRenderOptions& options) {
  const Node& node = state.node(box.id);
  std::string fill = "#f5f5f5";
  auto heat = options.node_heat.find(box.id);
  if (heat != options.node_heat.end()) {
    fill = sample_color(heat->second, options.scheme).hex();
  }
  const double left = box.x - box.width / 2.0;
  const double top = box.y - box.height / 2.0;

  switch (node.kind) {
    case NodeKind::Access:
      svg << "<ellipse cx=\"" << box.x << "\" cy=\"" << box.y << "\" rx=\""
          << box.width / 2.0 << "\" ry=\"" << box.height / 2.0
          << "\" fill=\"" << fill << "\" stroke=\"#333\"/>";
      break;
    case NodeKind::Tasklet:
      svg << "<rect x=\"" << left << "\" y=\"" << top << "\" width=\""
          << box.width << "\" height=\"" << box.height
          << "\" rx=\"6\" fill=\"" << fill << "\" stroke=\"#333\"/>";
      break;
    case NodeKind::MapEntry: {
      // Trapezoid header bar (wide top), per the paper's map rendering.
      const double inset = std::min(18.0, box.width / 5.0);
      svg << "<polygon points=\"" << left << ',' << top << ' '
          << (left + box.width) << ',' << top << ' '
          << (left + box.width - inset) << ',' << (top + box.height) << ' '
          << (left + inset) << ',' << (top + box.height) << "\" fill=\""
          << fill << "\" stroke=\"#333\"/>";
      break;
    }
    case NodeKind::MapExit: {
      const double inset = std::min(18.0, box.width / 5.0);
      svg << "<polygon points=\"" << (left + inset) << ',' << top << ' '
          << (left + box.width - inset) << ',' << top << ' '
          << (left + box.width) << ',' << (top + box.height) << ' ' << left
          << ',' << (top + box.height) << "\" fill=\"" << fill
          << "\" stroke=\"#333\"/>";
      break;
    }
  }

  if (options.scale >= 0.5) {
    std::string label = node.label;
    if (node.kind == NodeKind::MapEntry) {
      label += " [";
      for (std::size_t p = 0; p < node.map.params.size(); ++p) {
        if (p > 0) label += ", ";
        label += node.map.params[p] + "=" + node.map.ranges[p].to_string();
      }
      label += "]";
    }
    if (box.collapsed) label += " (collapsed)";
    svg << "<text x=\"" << box.x << "\" y=\"" << (box.y + 4)
        << "\" text-anchor=\"middle\" font-size=\"12\" "
           "font-family=\"monospace\">"
        << xml_escape(label) << "</text>";
  }
}

}  // namespace

std::string render_state_svg(const ir::State& state,
                             const GraphRenderOptions& options) {
  return render_state_svg(state, layout_state(state, options.layout),
                          options);
}

std::string render_state_svg(const ir::State& state,
                             const StateLayout& layout,
                             const GraphRenderOptions& options) {
  std::ostringstream svg;
  const double w = layout.width * options.scale;
  const double h = layout.height * options.scale;
  svg << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << w
      << "\" height=\"" << h << "\" viewBox=\"0 0 " << layout.width << ' '
      << layout.height << "\">\n";
  svg << "<defs><marker id=\"arrow\" viewBox=\"0 0 10 10\" refX=\"9\" "
         "refY=\"5\" markerWidth=\"7\" markerHeight=\"7\" "
         "orient=\"auto-start-reverse\"><path d=\"M 0 0 L 10 5 L 0 10 z\" "
         "fill=\"#555\"/></marker></defs>\n";

  auto hidden = [&](ir::NodeId id) {
    return options.hidden_kinds.contains(state.node(id).kind);
  };

  for (const EdgePath& edge : layout.edges) {
    const ir::Edge& endpoints = state.edges()[edge.edge_index];
    if (hidden(endpoints.src) || hidden(endpoints.dst)) continue;
    std::string stroke = "#999";
    double width = 1.5;
    auto heat = options.edge_heat.find(edge.edge_index);
    if (heat != options.edge_heat.end()) {
      stroke = sample_color(heat->second, options.scheme).hex();
      width = 1.5 + 3.5 * heat->second;  // Hotter edges also get thicker.
    }
    svg << "<line x1=\"" << edge.x1 << "\" y1=\"" << edge.y1 << "\" x2=\""
        << edge.x2 << "\" y2=\"" << edge.y2 << "\" stroke=\"" << stroke
        << "\" stroke-width=\"" << width << "\" marker-end=\"url(#arrow)\"";
    const ir::Edge& ir_edge = state.edges()[edge.edge_index];
    if (!ir_edge.memlet.is_empty()) {
      svg << "><title>" << xml_escape(ir_edge.memlet.to_string());
      auto label = options.edge_label.find(edge.edge_index);
      if (label != options.edge_label.end()) {
        svg << " | " << xml_escape(label->second);
      }
      svg << "</title></line>\n";
    } else {
      svg << "/>\n";
    }
    auto label = options.edge_label.find(edge.edge_index);
    if (label != options.edge_label.end() && options.scale >= 0.5) {
      svg << "<text x=\"" << (edge.x1 + edge.x2) / 2.0 + 6 << "\" y=\""
          << (edge.y1 + edge.y2) / 2.0
          << "\" font-size=\"10\" font-family=\"monospace\" fill=\"#444\">"
          << xml_escape(label->second) << "</text>\n";
    }
  }

  for (const NodeBox& box : layout.nodes) {
    if (hidden(box.id)) continue;
    draw_node(svg, state, box, options);
    svg << '\n';
  }
  svg << "</svg>\n";
  return svg.str();
}

std::string render_sdfg_svg(
    const ir::Sdfg& sdfg,
    const std::map<int, GraphRenderOptions>& per_state) {
  // Render each state body, then compose: frames stacked vertically,
  // joined by control-flow arrows.
  struct Panel {
    std::string body;
    double width = 0;
    double height = 0;
    std::string name;
  };
  std::vector<Panel> panels;
  double max_width = 0;
  for (int s = 0; s < static_cast<int>(sdfg.states().size()); ++s) {
    auto it = per_state.find(s);
    const GraphRenderOptions options =
        it == per_state.end() ? GraphRenderOptions{} : it->second;
    const StateLayout layout =
        layout_state(sdfg.states()[s], options.layout);
    Panel panel;
    panel.body = render_state_svg(sdfg.states()[s], layout, options);
    panel.width = layout.width;
    panel.height = layout.height;
    panel.name = sdfg.states()[s].name();
    max_width = std::max(max_width, panel.width);
    panels.push_back(std::move(panel));
  }

  constexpr double kHeader = 26;
  constexpr double kGap = 46;
  double total_height = 20;
  for (const Panel& panel : panels) {
    total_height += kHeader + panel.height + kGap;
  }

  std::ostringstream svg;
  svg << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\""
      << max_width + 40 << "\" height=\"" << total_height << "\">\n";
  svg << "<text x=\"8\" y=\"14\" font-size=\"14\" "
         "font-family=\"monospace\" font-weight=\"bold\">SDFG "
      << xml_escape(sdfg.name()) << "</text>\n";
  double y = 20;
  for (std::size_t s = 0; s < panels.size(); ++s) {
    const Panel& panel = panels[s];
    svg << "<rect x=\"10\" y=\"" << y << "\" width=\"" << max_width + 20
        << "\" height=\"" << panel.height + kHeader
        << "\" fill=\"#fafafa\" stroke=\"#666\" rx=\"8\"/>\n";
    svg << "<text x=\"18\" y=\"" << y + 17
        << "\" font-size=\"12\" font-family=\"monospace\">state "
        << xml_escape(panel.name) << "</text>\n";
    // Inline the state body, stripped of its own <svg> wrapper, inside a
    // translated group.
    std::string body = panel.body;
    const std::size_t open_end = body.find('\n');
    const std::size_t close = body.rfind("</svg>");
    body = body.substr(open_end + 1, close - open_end - 1);
    svg << "<g transform=\"translate(20, " << y + kHeader << ")\">\n"
        << body << "</g>\n";
    y += kHeader + panel.height;
    if (s + 1 < panels.size()) {
      svg << "<line x1=\"" << max_width / 2 + 20 << "\" y1=\"" << y
          << "\" x2=\"" << max_width / 2 + 20 << "\" y2=\"" << y + kGap
          << "\" stroke=\"#333\" stroke-width=\"2\" "
             "marker-end=\"url(#arrow)\"/>\n";
    }
    y += kGap;
  }
  svg << "</svg>\n";
  return svg.str();
}

std::string render_minimap_svg(const ir::State& state, double viewport_x,
                               double viewport_y, double viewport_w,
                               double viewport_h) {
  GraphRenderOptions options;
  options.scale = 0.15;
  std::string body = render_state_svg(state, options);
  // Append a viewport rectangle before the closing tag.
  std::ostringstream rect;
  rect << "<rect x=\"" << viewport_x << "\" y=\"" << viewport_y
       << "\" width=\"" << viewport_w << "\" height=\"" << viewport_h
       << "\" fill=\"none\" stroke=\"#1565c0\" stroke-width=\"4\"/>\n";
  const std::size_t pos = body.rfind("</svg>");
  body.insert(pos, rect.str());
  return body;
}

}  // namespace dmv::viz
