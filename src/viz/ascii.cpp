#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "dmv/viz/render.hpp"

namespace dmv::viz {

std::string ascii_heatmap(const layout::ConcreteLayout& layout,
                          const std::vector<double>& heat,
                          const std::vector<std::int64_t>& prefix) {
  static constexpr char kRamp[] = " .:-=+*#%@";
  constexpr int kLevels = 10;
  const int rank = layout.rank();
  if (static_cast<std::int64_t>(heat.size()) != layout.total_elements()) {
    throw std::invalid_argument("ascii_heatmap: heat size mismatch");
  }
  if (static_cast<int>(prefix.size()) != std::max(0, rank - 2)) {
    throw std::invalid_argument(
        "ascii_heatmap: prefix must fix all but the last two dimensions");
  }

  std::ostringstream out;
  const std::int64_t rows = rank >= 2 ? layout.shape[rank - 2] : 1;
  const std::int64_t cols =
      rank >= 1 ? layout.shape[rank - 1] : 1;
  layout::Index indices(prefix.begin(), prefix.end());
  indices.resize(rank, 0);
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      if (rank >= 2) indices[rank - 2] = r;
      if (rank >= 1) indices[rank - 1] = c;
      const double t =
          std::clamp(heat[layout.flat_index(indices)], 0.0, 1.0);
      const int level =
          std::min(kLevels - 1, static_cast<int>(t * kLevels));
      out << kRamp[level];
    }
    out << '\n';
  }
  return out.str();
}

TextTable::TextTable(std::vector<std::string> header) {
  rows_.push_back(std::move(header));
}

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TextTable::str() const {
  std::vector<std::size_t> widths;
  for (const auto& row : rows_) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    const auto& row = rows_[r];
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << "| " << row[c]
          << std::string(widths[c] - row[c].size() + 1, ' ');
    }
    out << "|\n";
    if (r == 0) {
      for (std::size_t c = 0; c < widths.size(); ++c) {
        out << '|' << std::string(widths[c] + 2, '-');
      }
      out << "|\n";
    }
  }
  return out.str();
}

}  // namespace dmv::viz
