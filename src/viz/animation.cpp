#include <sstream>
#include <stdexcept>

#include "dmv/viz/animation.hpp"
#include "dmv/viz/render.hpp"

namespace dmv::viz {

std::vector<AnimationFrame> animation_frames(
    const sim::AccessTrace& trace, const AnimationOptions& options) {
  std::vector<AnimationFrame> frames;
  std::int64_t current_key = -1;
  for (const sim::AccessEvent& event : trace.events) {
    const std::int64_t key =
        options.granularity == FrameGranularity::PerExecution
            ? event.execution
            : event.timestep;
    if (key != current_key) {
      if (options.max_frames > 0 &&
          static_cast<std::int64_t>(frames.size()) >= options.max_frames) {
        break;
      }
      current_key = key;
      AnimationFrame frame;
      frame.index = key;
      frames.push_back(std::move(frame));
    }
    frames.back().highlighted[event.container].insert(event.flat);
  }
  return frames;
}

std::string render_animated_tiles_svg(
    const sim::AccessTrace& trace, int container,
    const std::vector<AnimationFrame>& frames,
    const AnimationOptions& options) {
  if (container < 0 ||
      container >= static_cast<int>(trace.layouts.size())) {
    throw std::out_of_range("render_animated_tiles_svg: bad container");
  }
  if (frames.empty()) {
    throw std::invalid_argument("render_animated_tiles_svg: no frames");
  }
  const layout::ConcreteLayout& layout = trace.layouts[container];
  const double total_seconds =
      options.seconds_per_frame * static_cast<double>(frames.size());

  // Base grid: the static tile rendering.
  TileRenderOptions base;
  base.tile_size = options.tile_size;
  std::string svg = render_tiles_svg(layout, base);

  // Overlay: per element, a discrete keyframe track turning the fill
  // green during the frames that touch it. Injected before </svg>.
  std::ostringstream overlay;
  for (std::int64_t flat = 0; flat < layout.total_elements(); ++flat) {
    // Collect the frame indices highlighting this element.
    std::vector<std::size_t> active;
    for (std::size_t f = 0; f < frames.size(); ++f) {
      auto it = frames[f].highlighted.find(container);
      if (it != frames[f].highlighted.end() && it->second.contains(flat)) {
        active.push_back(f);
      }
    }
    if (active.empty()) continue;

    // Build the keyTimes/values pair: opaque green exactly during the
    // active slots (calcMode=discrete holds each value until the next
    // key time).
    std::ostringstream key_times, values;
    key_times << "0";
    values << "0";
    for (std::size_t f : active) {
      const double start =
          static_cast<double>(f) / static_cast<double>(frames.size());
      const double end =
          static_cast<double>(f + 1) / static_cast<double>(frames.size());
      key_times << ';' << start << ';' << end;
      values << ";1;0";
    }

    // Positioning: reuse the static renderer's geometry by overlaying an
    // independent rect at the same location. We recompute the location
    // exactly like render_tiles_svg does via a 1-element highlight
    // render and coordinate extraction — instead, simpler: draw a
    // full-cover <rect> that uses the same layout function through a
    // dedicated helper below.
    overlay << "<rect data-flat=\"" << flat << "\" width=\""
            << options.tile_size - 2 << "\" height=\""
            << options.tile_size - 2
            << "\" fill=\"#39b54a\" opacity=\"0\" x=\"REPLACE_X_" << flat
            << "\" y=\"REPLACE_Y_" << flat << "\">"
            << "<animate attributeName=\"opacity\" calcMode=\"discrete\" "
               "dur=\""
            << total_seconds << "s\" repeatCount=\"indefinite\" keyTimes=\""
            << key_times.str() << "\" values=\"" << values.str()
            << "\"/></rect>\n";
  }
  std::string overlay_text = overlay.str();

  // Resolve the REPLACE_ coordinates from the base rendering: the n-th
  // <rect ...> in the base grid corresponds to flat index n.
  std::size_t cursor = 0;
  for (std::int64_t flat = 0; flat < layout.total_elements(); ++flat) {
    cursor = svg.find("<rect", cursor);
    if (cursor == std::string::npos) break;
    const std::size_t x_begin = svg.find("x=\"", cursor) + 3;
    const std::size_t x_end = svg.find('"', x_begin);
    const std::size_t y_begin = svg.find("y=\"", x_end) + 3;
    const std::size_t y_end = svg.find('"', y_begin);
    const std::string x = svg.substr(x_begin, x_end - x_begin);
    const std::string y = svg.substr(y_begin, y_end - y_begin);
    auto replace_all = [&](const std::string& token,
                           const std::string& with) {
      for (std::size_t at = overlay_text.find(token);
           at != std::string::npos; at = overlay_text.find(token)) {
        overlay_text.replace(at, token.size(), with);
      }
    };
    replace_all("\"REPLACE_X_" + std::to_string(flat) + "\"",
                '"' + x + '"');
    replace_all("\"REPLACE_Y_" + std::to_string(flat) + "\"",
                '"' + y + '"');
    cursor += 5;
  }

  const std::size_t closing = svg.rfind("</svg>");
  svg.insert(closing, overlay_text);
  return svg;
}

}  // namespace dmv::viz
