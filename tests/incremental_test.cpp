// Delta-recomputation engine contract tests (docs/incremental.md).
//
// The overarching invariant mirrors the session layer's: the delta
// engine is a pure performance layer. MetricPipeline::run_delta must
// produce results bit-identical to a cold run(sdfg, symbols, options)
// for EVERY binding step — whether the step was satisfied by the
// no-change fast path, a chunk-level splice, a resumed metric
// checkpoint, or a full cold fallback — at any thread count and any
// lane width. On top of identity, the suite pins the classification
// behavior (DeltaOutcome), the chunk dependency analysis that justifies
// clean-chunk reuse, the Tier-1 closed-form bundle against simulated
// ground truth, and the session-level step accounting.

#include <cmath>
#include <cstdint>
#include <map>
#include <numeric>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dmv/analysis/analysis.hpp"
#include "dmv/par/par.hpp"
#include "dmv/session/session.hpp"
#include "dmv/sim/pipeline.hpp"
#include "dmv/sim/trace_plan.hpp"
#include "dmv/symbolic/expr.hpp"
#include "dmv/workloads/workloads.hpp"

namespace dmv::sim {
namespace {

using symbolic::SymbolMap;

// Full metric subscription: every consumer on, so identity failures in
// any fused pass surface.
PipelineConfig full_config() {
  PipelineConfig config;
  config.counts = true;
  config.miss_threshold_lines = 8;
  config.keep_distances = true;
  config.element_stats = true;
  config.movement = true;
  config.cache = CacheConfig{64, 4096, 4};
  return config;
}

void expect_identical(const PipelineResult& a, const PipelineResult& b) {
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.executions, b.executions);
  EXPECT_EQ(a.containers, b.containers);
  EXPECT_EQ(a.counts.reads, b.counts.reads);
  EXPECT_EQ(a.counts.writes, b.counts.writes);
  EXPECT_EQ(a.distances.line_size, b.distances.line_size);
  EXPECT_EQ(a.distances.distances, b.distances.distances);
  EXPECT_EQ(a.misses.threshold_lines, b.misses.threshold_lines);
  EXPECT_EQ(a.misses.element_misses, b.misses.element_misses);
  EXPECT_EQ(a.misses.total.cold, b.misses.total.cold);
  EXPECT_EQ(a.misses.total.capacity, b.misses.total.capacity);
  EXPECT_EQ(a.misses.total.hits, b.misses.total.hits);
  ASSERT_EQ(a.misses.per_container.size(), b.misses.per_container.size());
  for (std::size_t c = 0; c < a.misses.per_container.size(); ++c) {
    EXPECT_EQ(a.misses.per_container[c].cold, b.misses.per_container[c].cold);
    EXPECT_EQ(a.misses.per_container[c].capacity,
              b.misses.per_container[c].capacity);
    EXPECT_EQ(a.misses.per_container[c].hits, b.misses.per_container[c].hits);
  }
  ASSERT_EQ(a.element_stats.size(), b.element_stats.size());
  for (std::size_t c = 0; c < a.element_stats.size(); ++c) {
    EXPECT_EQ(a.element_stats[c].min, b.element_stats[c].min);
    EXPECT_EQ(a.element_stats[c].median, b.element_stats[c].median);
    EXPECT_EQ(a.element_stats[c].max, b.element_stats[c].max);
    EXPECT_EQ(a.element_stats[c].cold_count, b.element_stats[c].cold_count);
  }
  EXPECT_EQ(a.cache.total.cold, b.cache.total.cold);
  EXPECT_EQ(a.cache.total.capacity, b.cache.total.capacity);
  EXPECT_EQ(a.cache.total.hits, b.cache.total.hits);
  ASSERT_EQ(a.cache.per_container.size(), b.cache.per_container.size());
  for (std::size_t c = 0; c < a.cache.per_container.size(); ++c) {
    EXPECT_EQ(a.cache.per_container[c].cold, b.cache.per_container[c].cold);
    EXPECT_EQ(a.cache.per_container[c].capacity,
              b.cache.per_container[c].capacity);
    EXPECT_EQ(a.cache.per_container[c].hits, b.cache.per_container[c].hits);
  }
  EXPECT_EQ(a.movement.line_size, b.movement.line_size);
  EXPECT_EQ(a.movement.bytes_per_container, b.movement.bytes_per_container);
  EXPECT_EQ(a.movement.total_bytes, b.movement.total_bytes);
}

// Cold reference: a fresh pipeline per call, no checkpoint anywhere.
PipelineResult reference(const ir::Sdfg& sdfg, const SymbolMap& binding,
                         const SimulationOptions& options) {
  MetricPipeline pipeline(full_config());
  return pipeline.run(sdfg, binding, options);
}

// The standard interactive-tuning build used throughout this file:
// arrays allocated at capacity KMAX, the K slider restricting only the
// iteration domain. With the Reordered variant k is the OUTERMOST loop,
// so a K move is an append/truncate of whole outer slices.
ir::Sdfg fixed_cap_hdiff() {
  return workloads::fixed_capacity(
      workloads::hdiff(workloads::HdiffVariant::Reordered), {{"K", "KMAX"}});
}

// I=J=20 puts one k-slice at 15*20*20 = 6000 events — above the delta
// planner's per-chunk event target, so every plan chunk is exactly one
// outer ordinal and append/truncate steps reuse every surviving chunk.
SymbolMap cap_binding(std::int64_t k, std::int64_t kmax = 16) {
  return SymbolMap{{"I", 20}, {"J", 20}, {"K", k}, {"KMAX", kmax}};
}

struct WorkloadCase {
  const char* name;
  ir::Sdfg sdfg;
  std::vector<SymbolMap> bindings;
};

std::vector<WorkloadCase> identity_cases() {
  std::vector<WorkloadCase> cases;
  {
    // Stock hdiff: K reaches every container's layout, so slider moves
    // shift placements and the engine must FALL BACK cold — identity
    // still has to hold on every step.
    WorkloadCase c{"hdiff-baseline",
                   workloads::hdiff(workloads::HdiffVariant::Baseline),
                   {}};
    c.bindings.push_back({{"I", 4}, {"J", 4}, {"K", 3}});
    c.bindings.push_back({{"I", 4}, {"J", 4}, {"K", 4}});
    c.bindings.push_back({{"I", 4}, {"J", 4}, {"K", 6}});
    c.bindings.push_back({{"I", 5}, {"J", 6}, {"K", 6}});  // Multi-symbol.
    c.bindings.push_back({{"I", 4}, {"J", 4}, {"K", 3}});
    cases.push_back(std::move(c));
  }
  {
    // Fixed-capacity hdiff: the chunk-delta showcase. Walks up (append,
    // resume), down (truncate), jumps, and a multi-symbol layout move.
    WorkloadCase c{"hdiff-fixed-capacity", fixed_cap_hdiff(), {}};
    c.bindings.push_back(cap_binding(3));
    c.bindings.push_back(cap_binding(4));
    c.bindings.push_back(cap_binding(7));
    c.bindings.push_back(cap_binding(5));
    c.bindings.push_back(cap_binding(16));
    SymbolMap moved = cap_binding(6);
    moved["I"] = 18;
    moved["J"] = 22;
    c.bindings.push_back(moved);  // Layout move: cold fallback.
    c.bindings.push_back(cap_binding(3));
    cases.push_back(std::move(c));
  }
  {
    WorkloadCase c{"matmul", workloads::matmul(), {}};
    SymbolMap base = workloads::matmul_fig5();
    c.bindings.push_back(base);
    SymbolMap m = base;
    m["M"] = base.at("M") + 1;
    c.bindings.push_back(m);
    SymbolMap n = base;
    n["N"] = base.at("N") + 3;
    c.bindings.push_back(n);
    SymbolMap mk = base;
    mk["M"] = base.at("M") - 1;
    mk["K"] = base.at("K") - 2;
    c.bindings.push_back(mk);  // Multi-symbol.
    c.bindings.push_back(base);
    cases.push_back(std::move(c));
  }
  {
    WorkloadCase c{"bert-baseline",
                   workloads::bert_encoder(workloads::BertStage::Baseline),
                   {}};
    SymbolMap base = workloads::bert_small();
    c.bindings.push_back(base);
    SymbolMap sm = base;
    sm["SM"] = base.at("SM") + 2;
    c.bindings.push_back(sm);
    SymbolMap b = base;
    b["B"] = base.at("B") + 1;
    c.bindings.push_back(b);
    c.bindings.push_back(base);
    cases.push_back(std::move(c));
  }
  return cases;
}

// --- Bit-identity across workloads x threads x lanes -----------------

TEST(IncrementalDeltaTest, MatchesColdRecomputeAcrossWorkloadsThreadsLanes) {
  for (WorkloadCase& wc : identity_cases()) {
    for (int threads : {1, 8}) {
      par::ThreadScope scope(threads);
      for (int lanes : {1, 8}) {
        SimulationOptions options;
        options.lane_width = lanes;
        MetricPipeline delta(full_config());  // Persistent across steps.
        for (std::size_t step = 0; step < wc.bindings.size(); ++step) {
          SCOPED_TRACE(std::string(wc.name) + " threads=" +
                       std::to_string(threads) + " lanes=" +
                       std::to_string(lanes) + " step=" +
                       std::to_string(step));
          DeltaOutcome outcome;
          PipelineResult got =
              delta.run_delta(wc.sdfg, 1, wc.bindings[step], options,
                              &outcome);
          expect_identical(got, reference(wc.sdfg, wc.bindings[step],
                                          options));
        }
      }
    }
  }
}

TEST(IncrementalDeltaTest, RepeatedBindingIsBitIdenticalNotJustEqual) {
  // The no-change path must return a result equal to a fresh evaluation
  // even after intervening steps rebuilt the checkpoint buffers.
  ir::Sdfg sdfg = fixed_cap_hdiff();
  SimulationOptions options;
  MetricPipeline delta(full_config());
  delta.run_delta(sdfg, 1, cap_binding(5), options);
  delta.run_delta(sdfg, 1, cap_binding(8), options);
  DeltaOutcome outcome;
  PipelineResult again = delta.run_delta(sdfg, 1, cap_binding(8), options,
                                         &outcome);
  EXPECT_EQ(outcome.path, DeltaOutcome::Path::kNoChange);
  expect_identical(again, reference(sdfg, cap_binding(8), options));
}

// --- Outcome classification ------------------------------------------

TEST(IncrementalDeltaTest, OutcomeClassification) {
  ir::Sdfg sdfg = fixed_cap_hdiff();
  SimulationOptions options;
  MetricPipeline delta(full_config());
  DeltaOutcome outcome;

  // First evaluation: nothing to reuse.
  delta.run_delta(sdfg, 1, cap_binding(6), options, &outcome);
  EXPECT_EQ(outcome.path, DeltaOutcome::Path::kCold);
  EXPECT_STREQ(outcome.reason, "no checkpoint");

  // Identical binding: the checkpointed result is reused outright.
  delta.run_delta(sdfg, 1, cap_binding(6), options, &outcome);
  EXPECT_EQ(outcome.path, DeltaOutcome::Path::kNoChange);

  // Slider up: every existing chunk is clean (one outer k-slice each),
  // only the appended slice simulates, and the metric state RESUMES
  // from the checkpoint instead of replaying from event zero.
  PipelineResult up = delta.run_delta(sdfg, 1, cap_binding(7), options,
                                      &outcome);
  EXPECT_EQ(outcome.path, DeltaOutcome::Path::kChunkDelta);
  EXPECT_TRUE(outcome.resumed);
  EXPECT_GT(outcome.chunks_clean, 0);
  EXPECT_EQ(outcome.chunks_dirty, 1);
  EXPECT_EQ(outcome.chunks_total, outcome.chunks_clean + outcome.chunks_dirty);
  expect_identical(up, reference(sdfg, cap_binding(7), options));

  // Slider down: pure truncation — every surviving chunk is clean, no
  // dirty simulation at all; the metric state replays (no resume).
  PipelineResult down = delta.run_delta(sdfg, 1, cap_binding(5), options,
                                        &outcome);
  EXPECT_EQ(outcome.path, DeltaOutcome::Path::kChunkDelta);
  EXPECT_FALSE(outcome.resumed);
  EXPECT_EQ(outcome.chunks_dirty, 0);
  expect_identical(down, reference(sdfg, cap_binding(5), options));

  // A symbol reaching EVERY chunk (I sits in strides and inner map
  // ranges): nothing is clean, so the engine must detect it and run the
  // canonical cold path.
  SymbolMap moved = cap_binding(5);
  moved["I"] = 21;
  PipelineResult cold = delta.run_delta(sdfg, 1, moved, options, &outcome);
  EXPECT_EQ(outcome.path, DeltaOutcome::Path::kCold);
  EXPECT_STREQ(outcome.reason, "binding delta dirties every chunk");
  expect_identical(cold, reference(sdfg, moved, options));
}

TEST(IncrementalDeltaTest, ProgramOrOptionsChangeInvalidatesCheckpoint) {
  ir::Sdfg sdfg = fixed_cap_hdiff();
  SimulationOptions options;
  MetricPipeline delta(full_config());
  DeltaOutcome outcome;
  delta.run_delta(sdfg, 1, cap_binding(5), options, &outcome);

  // A different program version must not reuse the checkpoint.
  delta.run_delta(sdfg, 2, cap_binding(6), options, &outcome);
  EXPECT_EQ(outcome.path, DeltaOutcome::Path::kCold);
  EXPECT_STREQ(outcome.reason, "program changed");

  // An output-relevant option flip must not either.
  SimulationOptions wcr = options;
  wcr.wcr_reads = true;
  delta.run_delta(sdfg, 2, cap_binding(7), wcr, &outcome);
  EXPECT_EQ(outcome.path, DeltaOutcome::Path::kCold);
  EXPECT_STREQ(outcome.reason, "options changed");

  // Execution-strategy knobs (bit-identical by contract) do NOT: only
  // lane width changes here, and the step stays a chunk delta.
  SimulationOptions lanes = wcr;
  lanes.lane_width = wcr.lane_width == 1 ? 8 : 1;
  PipelineResult got = delta.run_delta(sdfg, 2, cap_binding(8), lanes,
                                       &outcome);
  EXPECT_EQ(outcome.path, DeltaOutcome::Path::kChunkDelta);
  expect_identical(got, reference(sdfg, cap_binding(8), lanes));
}

TEST(IncrementalDeltaTest, InterleavedPublicRunInvalidatesCheckpoint) {
  ir::Sdfg sdfg = fixed_cap_hdiff();
  SimulationOptions options;
  MetricPipeline delta(full_config());
  DeltaOutcome outcome;
  delta.run_delta(sdfg, 1, cap_binding(5), options, &outcome);

  // A public run() reuses the arena buffers; the checkpoint must not
  // survive it (the trace buffer was overwritten).
  delta.run(sdfg, cap_binding(9), options);
  PipelineResult got = delta.run_delta(sdfg, 1, cap_binding(6), options,
                                       &outcome);
  EXPECT_EQ(outcome.path, DeltaOutcome::Path::kCold);
  expect_identical(got, reference(sdfg, cap_binding(6), options));
}

// --- Chunk dependency analysis ---------------------------------------

TEST(IncrementalChunkDepsTest, AlignedWithPlanAndSliderSemantics) {
  ir::Sdfg sdfg = fixed_cap_hdiff();
  SymbolMap binding = cap_binding(6);
  SimulationOptions options;
  TracePlan plan = plan_trace(sdfg, binding, options, 1 << 20);
  ASSERT_TRUE(plan.parallelizable);
  ASSERT_GT(plan.chunks.size(), 1u);

  std::vector<std::set<std::string>> deps = chunk_dependencies(sdfg, plan);
  ASSERT_EQ(deps.size(), plan.chunks.size());
  for (std::size_t c = 0; c < deps.size(); ++c) {
    SCOPED_TRACE("chunk " + std::to_string(c));
    // K only bounds the chunked outermost dimension — excluded, so a
    // K slider move leaves every surviving chunk clean.
    EXPECT_EQ(deps[c].count("K"), 0u);
    // I and J sit in inner map ranges and strides: payload-relevant.
    EXPECT_EQ(deps[c].count("I"), 1u);
    EXPECT_EQ(deps[c].count("J"), 1u);
    // The capacity symbol sits in the substituted strides.
    EXPECT_EQ(deps[c].count("KMAX"), 1u);
    // Map parameters (i, j, k) are locally bound, never dependencies.
    EXPECT_EQ(deps[c].count("i"), 0u);
    EXPECT_EQ(deps[c].count("k"), 0u);
  }
}

TEST(IncrementalChunkDepsTest, StockLayoutKeepsSliderInDependencies) {
  // WITHOUT the fixed-capacity build, K sits in coeff/out_field strides
  // — the dependency analysis must keep it, which is exactly why the
  // stock build can never take the chunk-delta path on a K move.
  ir::Sdfg sdfg = workloads::hdiff(workloads::HdiffVariant::Reordered);
  SymbolMap binding{{"I", 20}, {"J", 20}, {"K", 6}};
  TracePlan plan = plan_trace(sdfg, binding, SimulationOptions{}, 1 << 20);
  ASSERT_TRUE(plan.parallelizable);
  std::vector<std::set<std::string>> deps = chunk_dependencies(sdfg, plan);
  ASSERT_EQ(deps.size(), plan.chunks.size());
  for (const std::set<std::string>& d : deps) {
    EXPECT_EQ(d.count("K"), 1u);
  }
}

// --- Tier 1: closed-form bundle vs simulated ground truth -------------

void fuzz_closed_form(const ir::Sdfg& sdfg, const SymbolMap& binding) {
  analysis::ClosedFormMetrics bundle = analysis::closed_form_metrics(sdfg);
  ASSERT_TRUE(bundle.exact);
  analysis::ClosedFormValues values =
      analysis::evaluate_closed_form(bundle, binding);

  // Event/execution totals mirror the exact trace planner.
  TracePlan plan = plan_trace(sdfg, binding, SimulationOptions{}, 0);
  ASSERT_TRUE(plan.parallelizable);
  EXPECT_EQ(values.total_events, plan.total_events);
  EXPECT_EQ(values.total_executions, plan.total_executions);

  // Per-container read/write events match the simulated counts.
  MetricPipeline pipeline(full_config());
  PipelineResult simulated = pipeline.run(sdfg, binding);
  EXPECT_EQ(values.total_events, simulated.events);
  EXPECT_EQ(values.total_executions, simulated.executions);
  ASSERT_EQ(values.containers, simulated.containers);
  std::int64_t event_sum = 0;
  for (std::size_t c = 0; c < values.containers.size(); ++c) {
    SCOPED_TRACE(values.containers[c]);
    const auto& reads = simulated.counts.reads[c];
    const auto& writes = simulated.counts.writes[c];
    EXPECT_EQ(values.reads[c],
              std::accumulate(reads.begin(), reads.end(), std::int64_t{0}));
    EXPECT_EQ(values.writes[c],
              std::accumulate(writes.begin(), writes.end(), std::int64_t{0}));
    event_sum += values.reads[c] + values.writes[c];
  }
  EXPECT_EQ(event_sum, values.total_events);

  // Footprint matches the placed layouts.
  AccessTrace trace = simulate(sdfg, binding);
  std::int64_t footprint = 0;
  for (const layout::ConcreteLayout& l : trace.layouts) {
    footprint += l.total_elements() * l.element_size;
  }
  EXPECT_EQ(values.footprint_bytes, footprint);

  // Intensity is derived, not independently computed.
  if (values.movement_bytes > 0) {
    EXPECT_DOUBLE_EQ(values.arithmetic_intensity,
                     static_cast<double>(values.flops) /
                         static_cast<double>(values.movement_bytes));
  } else {
    EXPECT_EQ(values.arithmetic_intensity, 0.0);
  }
}

TEST(IncrementalClosedFormTest, MatchesSimulatedGroundTruth) {
  for (std::int64_t k : {2, 3, 5}) {
    SCOPED_TRACE("hdiff K=" + std::to_string(k));
    fuzz_closed_form(workloads::hdiff(workloads::HdiffVariant::Baseline),
                     {{"I", 4}, {"J", 4}, {"K", k}});
    fuzz_closed_form(workloads::hdiff(workloads::HdiffVariant::Padded),
                     {{"I", 4}, {"J", 4}, {"K", k}});
    fuzz_closed_form(fixed_cap_hdiff(),
                     {{"I", 4}, {"J", 4}, {"K", k}, {"KMAX", 8}});
  }
  fuzz_closed_form(workloads::matmul(), workloads::matmul_fig5());
  fuzz_closed_form(workloads::outer_product(),
                   workloads::outer_product_fig3());
  fuzz_closed_form(workloads::conv2d(), workloads::conv2d_fig4());
  fuzz_closed_form(workloads::bert_encoder(workloads::BertStage::Baseline),
                   workloads::bert_small());
  fuzz_closed_form(workloads::bert_encoder(workloads::BertStage::Fused2),
                   workloads::bert_small());
}

TEST(IncrementalClosedFormTest, MissingBindingThrows) {
  analysis::ClosedFormMetrics bundle = analysis::closed_form_metrics(
      workloads::hdiff(workloads::HdiffVariant::Baseline));
  EXPECT_THROW(analysis::evaluate_closed_form(bundle, {{"I", 4}, {"J", 4}}),
               symbolic::UnboundSymbolError);
}

// --- Session-level integration ----------------------------------------

session::SessionConfig delta_session_config() {
  session::SessionConfig config;
  config.pipeline = full_config();
  config.prefetch = false;
  config.delta = true;
  return config;
}

TEST(IncrementalSessionTest, DeltaSessionMatchesUncachedEvaluation) {
  const session::SessionConfig config = delta_session_config();
  session::Session session(fixed_cap_hdiff(), config);
  for (std::int64_t k : {3, 4, 7, 5, 3}) {
    SCOPED_TRACE("K=" + std::to_string(k));
    session.set_binding(cap_binding(k));
    expect_identical(*session.metrics(),
                     reference(fixed_cap_hdiff(), cap_binding(k),
                               config.simulation));
  }
}

TEST(IncrementalSessionTest, StepClassificationCounters) {
  session::Session session(fixed_cap_hdiff(), delta_session_config());

  session.set_binding(cap_binding(6));
  session.metrics();  // First evaluation: cold.

  session.set_symbol("K", 7);
  session.metrics();  // Append step: chunk delta.

  session.set_symbol("K", 8);
  session.metrics();  // Another append: chunk delta.

  session.set_symbol("K", 7);
  session.metrics();  // Seen before: served from the artifact cache.

  session.set_symbol("K", 9);
  session.closed_form();  // Only Tier-1 closed-form metrics touched.

  const session::SessionStats stats = session.stats();
  EXPECT_EQ(stats.steps_cold, 1);
  EXPECT_EQ(stats.steps_chunk_delta, 2);
  EXPECT_EQ(stats.steps_full_hit, 1);
  EXPECT_EQ(stats.steps_symbolic, 1);
}

TEST(IncrementalSessionTest, ClosedFormMatchesMetricsAndIsCached) {
  session::Session session(fixed_cap_hdiff(), delta_session_config());
  session.set_binding(cap_binding(4));
  auto values = session.closed_form();
  auto metrics = session.metrics();
  EXPECT_EQ(values->total_events, metrics->events);
  EXPECT_EQ(values->total_executions, metrics->executions);
  // Cached artifact: shared, not recomputed.
  EXPECT_EQ(values.get(), session.closed_form().get());
  // A slider move re-evaluates (new values), same totals contract.
  session.set_symbol("K", 6);
  auto moved = session.closed_form();
  EXPECT_NE(values.get(), moved.get());
  EXPECT_EQ(moved->total_events, session.metrics()->events);
}

TEST(IncrementalSessionTest, PrefetchRoutesThroughDeltaBitIdentical) {
  // Speculative prefetch shares the delta evaluation path; with a
  // worker pool it must stay bit-identical and keep the serial
  // candidate-order insertion contract (every artifact equals the
  // uncached evaluation regardless of which pool slot computed it).
  par::ThreadScope scope(4);
  session::SessionConfig config = delta_session_config();
  config.prefetch = true;
  session::Session session(fixed_cap_hdiff(), config);
  for (std::int64_t k : {4, 5, 6, 5}) {
    SCOPED_TRACE("K=" + std::to_string(k));
    session.set_binding(cap_binding(k));
    expect_identical(*session.metrics(),
                     reference(fixed_cap_hdiff(), cap_binding(k),
                               config.simulation));
  }
}

}  // namespace
}  // namespace dmv::sim
