#include "dmv/sim/hierarchy.hpp"

#include <gtest/gtest.h>

#include "dmv/workloads/workloads.hpp"

namespace dmv::sim {
namespace {

AccessTrace synthetic_trace(std::int64_t elements,
                            const std::vector<std::int64_t>& sequence) {
  AccessTrace trace;
  ConcreteLayout layout;
  layout.name = "A";
  layout.shape = {elements};
  layout.strides = {1};
  layout.element_size = 8;
  trace.containers = {"A"};
  trace.layouts = {layout};
  for (std::size_t i = 0; i < sequence.size(); ++i) {
    AccessEvent event;
    event.container = 0;
    event.flat = sequence[i];
    event.timestep = static_cast<std::int64_t>(i);
    trace.events.push_back(event);
  }
  return trace;
}

HierarchyConfig two_level(std::int64_t l1_lines, std::int64_t l2_lines,
                          int line = 8) {
  HierarchyConfig config;
  config.line_size = line;
  config.levels = {CacheLevel{"L1", l1_lines * line, 0},
                   CacheLevel{"L2", l2_lines * line, 0}};
  return config;
}

TEST(Hierarchy, HitsBubbleUpward) {
  // Line per element; L1 holds 2 lines, L2 holds 4. Stream 0 1 2 3 then
  // repeat: the repeats hit L2 (still resident) but not L1 (evicted).
  AccessTrace trace = synthetic_trace(8, {0, 1, 2, 3, 0, 1, 2, 3});
  HierarchyResult result = simulate_hierarchy(trace, two_level(2, 4));
  EXPECT_EQ(result.total_hits(0), 0);
  EXPECT_EQ(result.total_hits(1), 4);
  EXPECT_EQ(result.total_memory_accesses(), 4);
}

TEST(Hierarchy, L1HitsWhenWorkingSetFits) {
  AccessTrace trace = synthetic_trace(8, {0, 1, 0, 1, 0, 1});
  HierarchyResult result = simulate_hierarchy(trace, two_level(2, 4));
  EXPECT_EQ(result.total_hits(0), 4);
  EXPECT_EQ(result.total_memory_accesses(), 2);
}

TEST(Hierarchy, BytesIntoLevels) {
  AccessTrace trace = synthetic_trace(8, {0, 1, 2, 3, 0, 1, 2, 3});
  HierarchyResult result = simulate_hierarchy(trace, two_level(2, 4));
  // L1 receives every access that was not an L1 hit: L2 hits + memory.
  EXPECT_EQ(result.bytes_into_level(0), (4 + 4) * 8);
  // L2 receives only the memory accesses.
  EXPECT_EQ(result.bytes_into_level(1), 4 * 8);
}

TEST(Hierarchy, SingleLevelMatchesFlatSimulator) {
  ir::Sdfg sdfg = workloads::matmul();
  AccessTrace trace = simulate(sdfg, workloads::matmul_fig5());
  HierarchyConfig config;
  config.line_size = 64;
  config.levels = {CacheLevel{"L1", 16 * 64, 0}};
  HierarchyResult hierarchy = simulate_hierarchy(trace, config);
  CacheSimResult flat =
      simulate_cache(trace, CacheConfig{64, 16 * 64, 0});
  EXPECT_EQ(hierarchy.total_hits(0), flat.total.hits);
  EXPECT_EQ(hierarchy.total_memory_accesses(), flat.total.misses());
}

TEST(Hierarchy, DeeperLevelsNeverHurt) {
  // Adding an L2 can only reduce memory accesses.
  ir::Sdfg sdfg = workloads::hdiff(workloads::HdiffVariant::Baseline);
  AccessTrace trace = simulate(sdfg, workloads::hdiff_local());
  HierarchyConfig one;
  one.line_size = 64;
  one.levels = {CacheLevel{"L1", 8 * 64, 0}};
  HierarchyConfig two = one;
  two.levels.push_back(CacheLevel{"L2", 64 * 64, 0});
  EXPECT_LE(simulate_hierarchy(trace, two).total_memory_accesses(),
            simulate_hierarchy(trace, one).total_memory_accesses());
}

TEST(Hierarchy, PerContainerAttribution) {
  ir::Sdfg sdfg = workloads::outer_product();
  AccessTrace trace = simulate(sdfg, workloads::outer_product_fig3());
  HierarchyResult result =
      simulate_hierarchy(trace, HierarchyConfig::typical(1024));
  std::int64_t accounted = result.total_memory_accesses();
  for (std::size_t l = 0; l < result.hits.size(); ++l) {
    accounted += result.total_hits(static_cast<int>(l));
  }
  EXPECT_EQ(accounted, static_cast<std::int64_t>(trace.events.size()));
  EXPECT_EQ(result.containers.size(), trace.containers.size());
}

TEST(Hierarchy, TypicalConfigScales) {
  HierarchyConfig full = HierarchyConfig::typical();
  HierarchyConfig scaled = HierarchyConfig::typical(32);
  ASSERT_EQ(full.levels.size(), 3u);
  EXPECT_EQ(full.levels[0].total_size, 32 * 1024);
  EXPECT_LT(scaled.levels[0].total_size, full.levels[0].total_size);
  EXPECT_THROW(HierarchyConfig::typical(0), std::invalid_argument);
}

TEST(Hierarchy, ValidatesConfig) {
  AccessTrace trace = synthetic_trace(4, {0});
  HierarchyConfig empty;
  empty.levels.clear();
  EXPECT_THROW(simulate_hierarchy(trace, empty), std::invalid_argument);

  HierarchyConfig shrinking;
  shrinking.line_size = 8;
  shrinking.levels = {CacheLevel{"L1", 64, 0}, CacheLevel{"L2", 32, 0}};
  EXPECT_THROW(simulate_hierarchy(trace, shrinking), std::invalid_argument);

  HierarchyConfig tiny;
  tiny.line_size = 64;
  tiny.levels = {CacheLevel{"L1", 32, 0}};
  EXPECT_THROW(simulate_hierarchy(trace, tiny), std::invalid_argument);
}

}  // namespace
}  // namespace dmv::sim
