#include "dmv/analysis/profile.hpp"

#include <gtest/gtest.h>

#include "dmv/viz/render.hpp"
#include "dmv/workloads/workloads.hpp"

namespace dmv::analysis {
namespace {

TEST(Roofline, ClassifiesBoundedness) {
  // Matmul with a large K is compute-heavy; the outer product writes a
  // whole element per operation (intensity 1/8 op/byte), which sits
  // under the default machine's ridge (4e9/2e10 = 0.2 op/byte) — so it
  // must come out memory-bound.
  const MachineModel machine;

  ir::Sdfg gemm = workloads::matmul();
  auto gemm_profile =
      roofline_profile(gemm, {{"M", 64}, {"N", 64}, {"K", 512}}, machine);
  ASSERT_EQ(gemm_profile.size(), 1u);
  EXPECT_EQ(gemm_profile[0].bound, Bound::Compute);

  ir::Sdfg outer = workloads::outer_product();
  auto outer_profile =
      roofline_profile(outer, {{"M", 64}, {"N", 64}}, machine);
  ASSERT_EQ(outer_profile.size(), 1u);
  EXPECT_EQ(outer_profile[0].bound, Bound::Memory);
}

TEST(Roofline, SecondsAreTheRooflineMax) {
  ir::Sdfg sdfg = workloads::outer_product();
  auto profile = roofline_profile(sdfg, {{"M", 8}, {"N", 8}});
  ASSERT_EQ(profile.size(), 1u);
  EXPECT_DOUBLE_EQ(
      profile[0].seconds,
      std::max(profile[0].compute_seconds, profile[0].memory_seconds));
  EXPECT_GT(profile[0].seconds, 0);
}

TEST(Roofline, TotalSumsMaps) {
  ir::Sdfg sdfg = workloads::bert_encoder(workloads::BertStage::Baseline);
  auto profile = roofline_profile(sdfg, workloads::bert_small());
  double sum = 0;
  for (const MapProfile& map : profile) sum += map.seconds;
  EXPECT_DOUBLE_EQ(
      roofline_total_seconds(sdfg, workloads::bert_small()), sum);
  EXPECT_EQ(profile.size(), 27u);  // One per top-level map.
}

TEST(Roofline, FusionReducesPredictedTime) {
  // The model agrees with the measurement: fused stages predict faster.
  const symbolic::SymbolMap params = workloads::bert_large();
  const double baseline = roofline_total_seconds(
      workloads::bert_encoder(workloads::BertStage::Baseline), params);
  const double fused = roofline_total_seconds(
      workloads::bert_encoder(workloads::BertStage::Fused2), params);
  EXPECT_LT(fused, baseline);
}

TEST(Roofline, RejectsBadMachine) {
  ir::Sdfg sdfg = workloads::outer_product();
  MachineModel broken;
  broken.flops_per_second = 0;
  EXPECT_THROW(roofline_profile(sdfg, {{"M", 2}, {"N", 2}}, broken),
               std::invalid_argument);
}

TEST(MetricOverlay, NormalizesForRendering) {
  MetricOverlay overlay;
  overlay.name = "measured seconds";
  overlay.node_values[3] = 1.0;
  overlay.node_values[7] = 9.0;
  overlay.edge_values[0] = 5.0;
  MetricOverlay::Heat heat = overlay.to_heat(viz::ScalingPolicy::Linear);
  EXPECT_DOUBLE_EQ(heat.node_heat.at(3), 0.0);
  EXPECT_DOUBLE_EQ(heat.node_heat.at(7), 1.0);
  EXPECT_DOUBLE_EQ(heat.edge_heat.at(0), 0.5);
}

TEST(MetricOverlay, RendersOnTheGraph) {
  // The §IV-B "profiling data as orthogonal metric" path end to end:
  // attach model-predicted times, normalize, render.
  ir::Sdfg sdfg = workloads::bert_encoder(workloads::BertStage::Baseline);
  auto profile = roofline_profile(sdfg, workloads::bert_large());
  MetricOverlay overlay = overlay_from_roofline(profile, 0);
  EXPECT_FALSE(overlay.node_values.empty());
  MetricOverlay::Heat heat =
      overlay.to_heat(viz::ScalingPolicy::MeanCentered);
  viz::GraphRenderOptions options;
  options.node_heat = heat.node_heat;
  std::string svg = render_state_svg(sdfg.states()[0], options);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

}  // namespace
}  // namespace dmv::analysis
