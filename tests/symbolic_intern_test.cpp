// Hash-consing engine tests: intern identity, memoized DAG analyses on
// heavily shared subtrees, Pow folding overflow guards, and property /
// fuzz coverage that the interned engine is observationally identical to
// the legacy tree walks (memoization off).

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <random>
#include <set>
#include <vector>

#include "dmv/symbolic/compiled.hpp"
#include "dmv/symbolic/expr.hpp"

namespace dmv::symbolic {
namespace {

// RAII toggle for the legacy (memo-off) ablation paths, so a failing
// assertion cannot leak the disabled state into other tests.
class ScopedMemoization {
 public:
  explicit ScopedMemoization(bool enabled)
      : previous_(set_symbolic_memoization(enabled)) {}
  ~ScopedMemoization() { set_symbolic_memoization(previous_); }

 private:
  bool previous_;
};

TEST(SymbolicIntern, StructurallyEqualExpressionsShareOneNode) {
  const Expr a = Expr::symbol("N") * 4 + Expr::symbol("M");
  const Expr b = Expr::symbol("N") * 4 + Expr::symbol("M");
  EXPECT_TRUE(a.same_node(b));
  EXPECT_EQ(&a.node(), &b.node());
  // compare()==0 iff same interned node: canonical forms are unique.
  EXPECT_EQ(Expr::compare(a, b), 0);
  const Expr c = Expr::symbol("N") * 4 + Expr::symbol("K");
  EXPECT_FALSE(a.same_node(c));
  EXPECT_NE(Expr::compare(a, c), 0);
}

TEST(SymbolicIntern, EqualsMatchesExpandedPointerIdentity) {
  // (N+1)*(N+1) and N*N + 2*N + 1: structurally different, polynomially
  // equal — equals() must hold, and their expanded forms must intern to
  // the same node.
  const Expr n = Expr::symbol("N");
  const Expr factored = (n + 1) * (n + 1);
  const Expr expanded_form = n * n + 2 * n + 1;
  EXPECT_TRUE(factored.equals(expanded_form));
  EXPECT_TRUE(expanded(factored).same_node(expanded(expanded_form)));
  EXPECT_FALSE(factored.same_node(expanded_form));
}

TEST(SymbolicIntern, ConstantsAndSymbolsIntern) {
  EXPECT_TRUE(Expr(0).same_node(Expr()));
  EXPECT_TRUE(Expr(12345).same_node(Expr::constant(12345)));
  EXPECT_TRUE(Expr::symbol("ZZZ_intern").same_node(Expr::symbol("ZZZ_intern")));
  const SymbolId id = intern_symbol("ZZZ_intern");
  EXPECT_EQ(Expr::symbol("ZZZ_intern").symbol_id(), id);
  EXPECT_EQ(symbol_name_of(id), "ZZZ_intern");
  EXPECT_EQ(find_symbol("ZZZ_intern"), id);
  EXPECT_EQ(find_symbol("ZZZ_never_interned_anywhere"), std::nullopt);
}

TEST(SymbolicIntern, StructuralHashIsStructural) {
  const Expr a = (Expr::symbol("I") + 1) * Expr::symbol("J");
  const Expr b = (Expr::symbol("I") + 1) * Expr::symbol("J");
  EXPECT_EQ(a.structural_hash(), b.structural_hash());
  EXPECT_NE(a.structural_hash(),
            ((Expr::symbol("I") + 2) * Expr::symbol("J")).structural_hash());
}

// The satellite regression: a 40-level expression whose TREE is ~2^40
// nodes but whose DAG is tiny. Every analysis below must run off the
// intern-time metadata in (well under) milliseconds; the legacy
// per-reference walk would never terminate.
TEST(SymbolicIntern, SharedDagAnalysesAreMetadataLookups) {
  Expr e = Expr::symbol("x") + Expr::symbol("y");
  for (int level = 0; level < 40; ++level) {
    e = e * e + e;  // doubles the tree at every level, shares the DAG
  }
  ASSERT_GE(e.tree_size(), 0xffffffffu);  // tree count saturated
  ASSERT_LE(e.dag_size(), 200u);          // DAG stays tiny

  const auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(e.depends_on("x"));
  EXPECT_TRUE(e.depends_on("y"));
  EXPECT_FALSE(e.depends_on("z"));
  EXPECT_EQ(e.free_symbols(), (std::set<std::string>{"x", "y"}));
  EXPECT_TRUE(depends_on_any(e, std::set<std::string>{"q", "x"}));
  EXPECT_FALSE(depends_on_any(e, std::set<std::string>{"q", "r"}));
  // Substitution rewrites each distinct node once (DAG memo), folding
  // the whole thing to a constant without touching 2^40 tree nodes.
  // x = y = 0 keeps every folded level at 0, so constant folding never
  // overflows int64 arithmetic on the way down.
  const Expr folded = e.substitute(SymbolMap{{"x", 0}, {"y", 0}});
  ASSERT_TRUE(folded.is_constant());
  EXPECT_EQ(folded.constant_value(), 0);
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                start)
          .count();
  EXPECT_LT(elapsed_ms, 250.0)
      << "shared-DAG analyses must be metadata lookups, not tree walks";
}

TEST(SymbolicIntern, FreeSymbolIdsMatchNames) {
  const Expr e = Expr::symbol("B") * Expr::symbol("A") + 7;
  std::set<std::string> names;
  for (const SymbolId id : e.free_symbol_ids()) {
    names.insert(symbol_name_of(id));
  }
  EXPECT_EQ(names, e.free_symbols());
  EXPECT_EQ(e.free_symbol_ids().size(), 2u);
  // The interned set is shared: same set object for equal symbol sets.
  const Expr f = Expr::symbol("A") + Expr::symbol("B");
  EXPECT_EQ(&e.free_symbol_ids(), &f.free_symbol_ids());
}

TEST(SymbolicIntern, DependsOnAnyIdSpan) {
  const Expr e = Expr::symbol("I") + Expr::symbol("K");
  std::vector<SymbolId> query{intern_symbol("I"), intern_symbol("J")};
  std::sort(query.begin(), query.end());
  EXPECT_TRUE(depends_on_any(e, std::span<const SymbolId>(query)));
  std::vector<SymbolId> miss{intern_symbol("J"), intern_symbol("Q")};
  std::sort(miss.begin(), miss.end());
  EXPECT_FALSE(depends_on_any(e, std::span<const SymbolId>(miss)));
}

// --- Pow constant-folding guards --------------------------------------

TEST(SymbolicIntern, CheckedPowBoundaries) {
  EXPECT_EQ(checked_pow_i64(2, 62), std::int64_t{1} << 62);
  EXPECT_EQ(checked_pow_i64(2, 63), std::nullopt);  // overflows int64
  EXPECT_EQ(checked_pow_i64(-2, 63), std::nullopt);
  EXPECT_EQ(checked_pow_i64(3, 39), 4052555153018976267);  // max 3^k in i64
  EXPECT_EQ(checked_pow_i64(3, 40), std::nullopt);
  EXPECT_EQ(checked_pow_i64(10, 18), 1000000000000000000);
  EXPECT_EQ(checked_pow_i64(10, 19), std::nullopt);
  EXPECT_EQ(checked_pow_i64(2, -1), std::nullopt);  // negative exponent
  // Trivial bases terminate for any exponent.
  EXPECT_EQ(checked_pow_i64(0, 0), 1);
  EXPECT_EQ(checked_pow_i64(0, 1'000'000'000'000), 0);
  EXPECT_EQ(checked_pow_i64(1, 1'000'000'000'000), 1);
  EXPECT_EQ(checked_pow_i64(-1, 1'000'000'000'001), -1);
  EXPECT_EQ(checked_pow_i64(-1, 1'000'000'000'000), 1);
}

TEST(SymbolicIntern, PowFoldGuardedAgainstOverflow) {
  // In-range powers still fold.
  const Expr folds = pow(Expr(2), Expr(10));
  ASSERT_TRUE(folds.is_constant());
  EXPECT_EQ(folds.constant_value(), 1024);
  // Overflowing powers stay symbolic instead of folding to garbage.
  const Expr overflow = pow(Expr(2), Expr(64));
  EXPECT_FALSE(overflow.is_constant());
  EXPECT_EQ(overflow.kind(), ExprKind::Pow);
  EXPECT_EQ(overflow.to_string(), "2**64");
  // Negative constant exponents stay symbolic (evaluation then raises
  // the documented domain error).
  const Expr negative = pow(Expr(2), Expr(-3));
  EXPECT_FALSE(negative.is_constant());
  EXPECT_THROW(negative.evaluate(SymbolMap{}), std::domain_error);
  // Largest folding power-of-two still folds exactly.
  const Expr max_fold = pow(Expr(2), Expr(62));
  ASSERT_TRUE(max_fold.is_constant());
  EXPECT_EQ(max_fold.constant_value(), std::int64_t{1} << 62);
}

// --- property / fuzz: interned engine == legacy walks ------------------

// Random expression trees over a small symbol pool. Depth-bounded and
// magnitude-bounded; exercises every ExprKind. With |leaf| <= 3, depth 4,
// and pow exponents <= 2, the worst-case magnitude (all multiplications
// of subtracted subtrees) stays below 2^63, so no intermediate — in the
// evaluators or in constant folding — overflows int64.
Expr random_expr(std::mt19937& rng, int depth) {
  std::uniform_int_distribution<int> leaf(0, 3);
  std::uniform_int_distribution<int> kind(0, 7);
  std::uniform_int_distribution<std::int64_t> constant(-3, 3);
  std::uniform_int_distribution<int> symbol(0, 2);
  static const char* kSymbols[] = {"pfA", "pfB", "pfC"};
  if (depth <= 0 || leaf(rng) == 0) {
    if (leaf(rng) < 2) return Expr(constant(rng));
    return Expr::symbol(kSymbols[symbol(rng)]);
  }
  const Expr a = random_expr(rng, depth - 1);
  const Expr b = random_expr(rng, depth - 1);
  switch (kind(rng)) {
    case 0:
      return a + b;
    case 1:
      return a - b;
    case 2:
      return a * b;
    case 3:
      return a / b;
    case 4:
      return a % b;
    case 5:
      return min(a, b);
    case 6:
      return max(a, b);
    default:
      return pow(a, Expr(std::uniform_int_distribution<std::int64_t>(
                       0, 2)(rng)));
  }
}

// Reference evaluator: a plain recursive tree walk over the public node
// structure, sharing only the integer helpers — independent of the
// evaluator under test.
std::int64_t reference_eval(const Expr& e, const SymbolMap& env) {
  switch (e.kind()) {
    case ExprKind::Constant:
      return e.constant_value();
    case ExprKind::Symbol:
      return env.at(e.symbol_name());
    case ExprKind::Add: {
      std::int64_t acc = 0;
      for (const Expr& op : e.operands()) acc += reference_eval(op, env);
      return acc;
    }
    case ExprKind::Mul: {
      std::int64_t acc = 1;
      for (const Expr& op : e.operands()) acc *= reference_eval(op, env);
      return acc;
    }
    case ExprKind::FloorDiv:
      return floor_div_i64(reference_eval(e.operands()[0], env),
                           reference_eval(e.operands()[1], env));
    case ExprKind::CeilDiv:
      return ceil_div_i64(reference_eval(e.operands()[0], env),
                          reference_eval(e.operands()[1], env));
    case ExprKind::Mod:
      return mod_i64(reference_eval(e.operands()[0], env),
                     reference_eval(e.operands()[1], env));
    case ExprKind::Min:
      return std::min(reference_eval(e.operands()[0], env),
                      reference_eval(e.operands()[1], env));
    case ExprKind::Max:
      return std::max(reference_eval(e.operands()[0], env),
                      reference_eval(e.operands()[1], env));
    case ExprKind::Pow:
      return pow_i64(reference_eval(e.operands()[0], env),
                     reference_eval(e.operands()[1], env));
  }
  return 0;
}

std::optional<std::int64_t> reference_try_eval(const Expr& e,
                                               const SymbolMap& env) {
  try {
    return reference_eval(e, env);
  } catch (const std::domain_error&) {
    return std::nullopt;
  }
}

TEST(SymbolicIntern, FuzzEvaluationMatchesReferenceAndBinding) {
  std::mt19937 rng(20260806);
  const SymbolMap env{{"pfA", 3}, {"pfB", -2}, {"pfC", 2}};
  const SymbolBinding binding(env);
  SymbolTable table;
  for (int round = 0; round < 300; ++round) {
    const Expr e = random_expr(rng, 4);
    const std::optional<std::int64_t> expected = reference_try_eval(e, env);
    // Simplification at construction already ran; evaluating the
    // canonical form must agree with the reference walk of that SAME
    // canonical form, across every evaluation engine.
    EXPECT_EQ(e.try_evaluate(env), expected) << e.to_string();
    EXPECT_EQ(e.try_evaluate(binding), expected) << e.to_string();
    if (expected.has_value()) {
      const CompiledExpr compiled = CompiledExpr::compile(e, table);
      std::vector<std::int64_t> values;
      std::vector<char> bound;
      table.bind(env, values, bound);
      EXPECT_EQ(compiled.evaluate(values.data(), bound.data(),
                                  &table.names()),
                *expected)
          << e.to_string();
      // Full substitution folds to the same constant.
      const Expr substituted = e.substitute(env);
      ASSERT_TRUE(substituted.is_constant()) << e.to_string();
      EXPECT_EQ(substituted.constant_value(), *expected) << e.to_string();
    }
  }
}

TEST(SymbolicIntern, FuzzMemoizedAndLegacyPathsAgree) {
  std::mt19937 rng(4242);
  const SymbolMap env{{"pfA", 3}, {"pfB", 2}, {"pfC", -3}};
  const SymbolMap partial{{"pfA", 3}};
  const std::set<std::string> probe{"pfB", "pfQ"};
  for (int round = 0; round < 150; ++round) {
    const Expr e = random_expr(rng, 4);
    // Memoized / metadata answers...
    const std::optional<std::int64_t> eval_fast = e.try_evaluate(env);
    const std::set<std::string> free_fast = e.free_symbols();
    const bool dep_fast = e.depends_on("pfB");
    const bool any_fast = depends_on_any(e, probe);
    const Expr subst_fast = e.substitute(partial);
    {
      // ...must equal the legacy tree walks bit for bit.
      ScopedMemoization legacy(false);
      EXPECT_EQ(e.try_evaluate(env), eval_fast) << e.to_string();
      EXPECT_EQ(e.free_symbols(), free_fast) << e.to_string();
      EXPECT_EQ(e.depends_on("pfB"), dep_fast) << e.to_string();
      EXPECT_EQ(depends_on_any(e, probe), any_fast) << e.to_string();
      EXPECT_TRUE(e.substitute(partial).same_node(subst_fast))
          << e.to_string();
    }
    // Simplification is idempotent and stable under interning.
    const Expr s = simplified(e);
    EXPECT_TRUE(simplified(s).same_node(s)) << e.to_string();
    // a.equals(b) for canonically equal forms means same interned node.
    EXPECT_TRUE(s.same_node(simplified(e))) << e.to_string();
  }
}

TEST(SymbolicIntern, SubstituteMemoHitsAreIdentical) {
  const Expr volume =
      (Expr::symbol("I") + 2) * (Expr::symbol("J") + 2) * Expr::symbol("K") * 8;
  const SymbolMap binding{{"I", 16}, {"J", 16}, {"K", 4}};
  const Expr first = volume.substitute(binding);
  const Expr second = volume.substitute(binding);  // cross-call memo hit
  EXPECT_TRUE(first.same_node(second));
  ASSERT_TRUE(first.is_constant());
  EXPECT_EQ(first.constant_value(), 18 * 18 * 4 * 8);
  // Unreached substitutions return the expression unchanged in O(1).
  EXPECT_TRUE(volume.substitute(SymbolMap{{"ZQ", 1}}).same_node(volume));
}

TEST(SymbolicIntern, CompileMemoReturnsIdenticalCode) {
  const Expr e = Expr::symbol("I") * Expr::symbol("J") + 3;
  SymbolTable table;
  const CompiledExpr first = CompiledExpr::compile(e, table);
  const CompiledExpr second = CompiledExpr::compile(e, table);
  EXPECT_EQ(first.slots(), second.slots());
  std::vector<std::int64_t> values;
  std::vector<char> bound;
  table.bind(SymbolMap{{"I", 6}, {"J", 7}}, values, bound);
  EXPECT_EQ(first.evaluate(values), 45);
  EXPECT_EQ(second.evaluate(values), 45);
}

TEST(SymbolicIntern, SymbolBindingSetAndFind) {
  SymbolBinding binding;
  binding.set("b1", 10);
  binding.set("b2", 20);
  binding.set("b1", 11);  // overwrite keeps the vector sorted and unique
  EXPECT_EQ(binding.size(), 2u);
  ASSERT_NE(binding.find(intern_symbol("b1")), nullptr);
  EXPECT_EQ(*binding.find(intern_symbol("b1")), 11);
  EXPECT_EQ(binding.find(intern_symbol("b_absent")), nullptr);
  // Unbound symbol surfaces the same error type/name as the map path.
  const Expr e = Expr::symbol("b_missing") + 1;
  EXPECT_THROW(e.evaluate(binding), UnboundSymbolError);
}

TEST(SymbolicIntern, InternerStatsProgress) {
  const InternerStats before = interner_stats();
  const Expr e =
      Expr::symbol("stats_only_sym") * 31337 + Expr::symbol("stats_only_sym2");
  (void)e;
  const InternerStats after = interner_stats();
  EXPECT_GT(after.nodes, before.nodes);
  EXPECT_GE(after.symbols, before.symbols + 2);
}

}  // namespace
}  // namespace dmv::symbolic
