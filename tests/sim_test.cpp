#include "dmv/sim/sim.hpp"

#include <gtest/gtest.h>

#include <set>

#include "dmv/builder/program_builder.hpp"
#include "dmv/ir/validate.hpp"
#include "dmv/symbolic/parser.hpp"
#include "dmv/workloads/workloads.hpp"

namespace dmv::sim {
namespace {

using builder::ProgramBuilder;

TEST(IterationSpace, Size) {
  ir::MapInfo info;
  info.params = {"i", "j"};
  info.ranges = {ir::Range{0, symbolic::parse("N-1"), 1},
                 ir::Range{0, 9, 2}};
  IterationSpace space = IterationSpace::from(info, {{"N", 4}});
  EXPECT_EQ(space.size(), 4 * 5);
}

TEST(IterationSpace, LexicographicOrder) {
  ir::MapInfo info;
  info.params = {"i", "j"};
  info.ranges = {ir::Range{0, 1, 1}, ir::Range{0, 2, 1}};
  IterationSpace space = IterationSpace::from(info, {});
  std::vector<std::pair<std::int64_t, std::int64_t>> seen;
  space.for_each([&](std::span<const std::int64_t> values) {
    seen.emplace_back(values[0], values[1]);
  });
  ASSERT_EQ(seen.size(), 6u);
  EXPECT_EQ(seen.front(), (std::pair<std::int64_t, std::int64_t>{0, 0}));
  EXPECT_EQ(seen[1], (std::pair<std::int64_t, std::int64_t>{0, 1}));
  EXPECT_EQ(seen.back(), (std::pair<std::int64_t, std::int64_t>{1, 2}));
}

TEST(IterationSpace, EmptyRange) {
  ir::MapInfo info;
  info.params = {"i"};
  info.ranges = {ir::Range{0, -1, 1}};
  EXPECT_EQ(IterationSpace::from(info, {}).size(), 0);
}

TEST(IterationSpace, RejectsNonPositiveStep) {
  ir::MapInfo info;
  info.params = {"i"};
  info.ranges = {ir::Range{0, 4, 0}};
  EXPECT_THROW(IterationSpace::from(info, {}).size(),
               std::invalid_argument);
}

TEST(IterationSpace, InnerRangeMayDependOnOuterParam) {
  // Triangular space: j in [0, i].
  ir::MapInfo info;
  info.params = {"i", "j"};
  info.ranges = {ir::Range{0, 3, 1},
                 ir::Range{0, symbolic::Expr::symbol("i"), 1}};
  IterationSpace space = IterationSpace::from(info, {});
  EXPECT_EQ(space.size(), 1 + 2 + 3 + 4);
}

TEST(Simulate, OuterProductCounts) {
  // Fig 3/4c ground truth: A[i] read N times, B[j] read M times, C[i,j]
  // written exactly once.
  ir::Sdfg sdfg = workloads::outer_product();
  AccessTrace trace = simulate(sdfg, workloads::outer_product_fig3());
  AccessCounts counts = count_accesses(trace);
  const int a = trace.container_id("A");
  const int b = trace.container_id("B");
  const int c = trace.container_id("C");
  for (std::int64_t e = 0; e < 3; ++e) EXPECT_EQ(counts.reads[a][e], 4);
  for (std::int64_t e = 0; e < 4; ++e) EXPECT_EQ(counts.reads[b][e], 3);
  for (std::int64_t e = 0; e < 12; ++e) {
    EXPECT_EQ(counts.writes[c][e], 1);
    EXPECT_EQ(counts.reads[c][e], 0);
  }
  EXPECT_EQ(trace.executions, 12);
}

TEST(Simulate, ConvAccessDistribution) {
  // Fig 4b: every output element of the 3-channel 9x9 -> 2-channel 6x6
  // convolution accumulates Cin*Ky*Kx = 48 contributions; interior input
  // elements are read most.
  ir::Sdfg sdfg = workloads::conv2d();
  AccessTrace trace = simulate(sdfg, workloads::conv2d_fig4());
  AccessCounts counts = count_accesses(trace);
  const int out = trace.container_id("output");
  for (std::int64_t e = 0; e < 2 * 6 * 6; ++e) {
    EXPECT_EQ(counts.writes[out][e], 3 * 4 * 4);
  }
  const int in = trace.container_id("input");
  const ConcreteLayout& in_layout = trace.layouts[in];
  // Corner [ci, 0, 0] used by one (y, x) position per output channel.
  const std::int64_t corner =
      in_layout.flat_index(std::vector<std::int64_t>{0, 0, 0});
  EXPECT_EQ(counts.reads[in][corner], 2);
  // Center [0, 4, 4] participates in min(4,...) = 16 positions x 2.
  const std::int64_t center =
      in_layout.flat_index(std::vector<std::int64_t>{0, 4, 4});
  EXPECT_EQ(counts.reads[in][center], 2 * 16);
  // Weights: each weight element read once per output position.
  const int w = trace.container_id("weights");
  for (std::int64_t e = 0; e < 2 * 3 * 4 * 4; ++e) {
    EXPECT_EQ(counts.reads[w][e], 36);
  }
}

TEST(Simulate, EventsAreOrderedAndInBounds) {
  ir::Sdfg sdfg = workloads::matmul();
  AccessTrace trace = simulate(sdfg, workloads::matmul_fig5());
  ASSERT_FALSE(trace.events.empty());
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    const AccessEvent& event = trace.events[i];
    EXPECT_EQ(event.timestep, static_cast<std::int64_t>(i));
    EXPECT_GE(event.flat, 0);
    EXPECT_LT(event.flat, trace.layouts[event.container].total_elements());
  }
}

TEST(Simulate, ReadsPrecedeWritesWithinExecution) {
  ir::Sdfg sdfg = workloads::outer_product();
  AccessTrace trace = simulate(sdfg, workloads::outer_product_fig3());
  for (std::size_t i = 1; i < trace.events.size(); ++i) {
    if (trace.events[i].execution == trace.events[i - 1].execution) {
      // Within one execution, never a read after a write.
      EXPECT_FALSE(trace.events[i - 1].is_write &&
                   !trace.events[i].is_write);
    }
  }
}

TEST(Simulate, OutOfBoundsAccessThrows) {
  ProgramBuilder p("bad");
  p.symbols({"N"});
  p.array("A", {"N"});
  p.state("s");
  p.mapped_tasklet("oob", {{"i", "0:N-1"}}, {{"v", "A", "i + 1"}}, "o = v",
                   {{"o", "A", "i"}});
  ir::Sdfg sdfg = p.take();
  EXPECT_THROW(simulate(sdfg, {{"N", 4}}), std::out_of_range);
}

TEST(Simulate, CopyEdgesEmitPairedEvents) {
  ProgramBuilder p("copy");
  p.symbols({"N"});
  p.array("A", {"N"});
  p.array("B", {"N"});
  p.state("s");
  p.copy("A", "0:N-1", "B", "0:N-1");
  ir::Sdfg sdfg = p.take();
  AccessTrace trace = simulate(sdfg, {{"N", 4}});
  ASSERT_EQ(trace.events.size(), 8u);
  AccessCounts counts = count_accesses(trace);
  for (std::int64_t e = 0; e < 4; ++e) {
    EXPECT_EQ(counts.reads[trace.container_id("A")][e], 1);
    EXPECT_EQ(counts.writes[trace.container_id("B")][e], 1);
  }
}

TEST(Simulate, WcrReadsOption) {
  ir::Sdfg sdfg = workloads::matmul();
  SimulationOptions options;
  options.wcr_reads = true;
  AccessTrace with_reads =
      simulate(sdfg, workloads::matmul_fig5(), options);
  AccessTrace without = simulate(sdfg, workloads::matmul_fig5());
  // Each WCR write gains one read companion.
  EXPECT_GT(with_reads.events.size(), without.events.size());
}

TEST(Simulate, PlacementSeparatesContainers) {
  ir::Sdfg sdfg = workloads::matmul();
  AccessTrace trace = simulate(sdfg, workloads::matmul_fig5());
  // Base addresses are distinct and line-aligned.
  std::set<std::int64_t> bases;
  for (const ConcreteLayout& layout : trace.layouts) {
    EXPECT_EQ(layout.base_address % 64, 0);
    bases.insert(layout.base_address);
  }
  EXPECT_EQ(bases.size(), trace.layouts.size());
}

TEST(Related, OuterProductFig4c) {
  // Paper example: in C = A (x) B with i in [0,2], j in [0,3], an access
  // to B[0] is associated with accesses to C[i,0] and A[i] for all i.
  ir::Sdfg sdfg = workloads::outer_product();
  AccessTrace trace = simulate(sdfg, workloads::outer_product_fig3());
  const int a = trace.container_id("A");
  const int b = trace.container_id("B");
  const int c = trace.container_id("C");

  Selection select_b0{b, {0}};
  AccessCounts related = related_accesses(trace, {select_b0});
  // All three A elements related exactly once.
  for (std::int64_t e = 0; e < 3; ++e) EXPECT_EQ(related.reads[a][e], 1);
  // C[i, 0] (flat 0, 4, 8) written once each; other C elements zero.
  const ConcreteLayout& c_layout = trace.layouts[c];
  for (std::int64_t i = 0; i < 3; ++i) {
    for (std::int64_t j = 0; j < 4; ++j) {
      const std::int64_t flat =
          c_layout.flat_index(std::vector<std::int64_t>{i, j});
      EXPECT_EQ(related.writes[c][flat], j == 0 ? 1 : 0);
    }
  }
}

TEST(Related, SelectionsStackAdditively) {
  // Fig 4c: selecting C[3-1,0], C[2,1], C[2,2] stacks the A/B counts.
  ir::Sdfg sdfg = workloads::outer_product();
  AccessTrace trace = simulate(sdfg, workloads::outer_product_fig3());
  const int a = trace.container_id("A");
  const int c = trace.container_id("C");
  const ConcreteLayout& c_layout = trace.layouts[c];
  Selection selection{c,
                      {c_layout.flat_index(std::vector<std::int64_t>{2, 0}),
                       c_layout.flat_index(std::vector<std::int64_t>{2, 1}),
                       c_layout.flat_index(std::vector<std::int64_t>{2, 2})}};
  AccessCounts related = related_accesses(trace, {selection});
  // A[2] participates in all three selected executions.
  EXPECT_EQ(related.reads[a][2], 3);
  EXPECT_EQ(related.reads[a][0], 0);
}

TEST(Related, TotalCombinesReadsAndWrites) {
  ir::Sdfg sdfg = workloads::outer_product();
  AccessTrace trace = simulate(sdfg, workloads::outer_product_fig3());
  AccessCounts counts = count_accesses(trace);
  const int c = trace.container_id("C");
  std::vector<std::int64_t> total = counts.total(c);
  for (std::int64_t e = 0; e < 12; ++e) EXPECT_EQ(total[e], 1);
}

TEST(Trace, ContainerLookup) {
  ir::Sdfg sdfg = workloads::outer_product();
  AccessTrace trace = simulate(sdfg, workloads::outer_product_fig3());
  EXPECT_EQ(trace.layout_of("A").name, "A");
  EXPECT_THROW(trace.container_id("missing"), std::out_of_range);
}

TEST(Simulate, StridedSubsetsEnumerateCorrectly) {
  // A tasklet reading a strided row "0:N-1:2" through a map over rows:
  // every other column of each row, exercising step > 1 end to end.
  ProgramBuilder p("strided");
  p.symbols({"R", "N"});
  p.array("A", {"R", "N"});
  p.array("s", {"R"});
  p.state("main");
  // Map over rows; the tasklet's memlet covers a strided slice of the
  // row, so the simulation must expand it to ceil(N/2) events.
  ir::Sdfg sdfg = [&] {
    ir::Sdfg graph = p.sdfg();
    ir::State& state = graph.states().empty() ? graph.add_state("main")
                                              : graph.states()[0];
    auto [entry, exit] = state.add_map(ir::MapInfo{
        "rows", {"r"}, {ir::Range{0, symbolic::parse("R-1"), 1}}});
    // Tasklet reduces the strided slice; the simulator emits one event
    // per slice element even though the interpreter would reject the
    // non-scalar memlet — simulation is the feature under test.
    ir::NodeId tasklet = state.add_tasklet("sum", "o = v", entry);
    ir::NodeId source = state.add_access("A");
    ir::NodeId sink = state.add_access("s");
    state.add_edge(source, entry, ir::Memlet::simple("A", "0:R-1, 0:N-1:2"),
                   "", "IN_A");
    state.add_edge(entry, tasklet, ir::Memlet::simple("A", "r, 0:N-1:2"),
                   "OUT_A", "v");
    state.add_edge(tasklet, exit, ir::Memlet::simple("s", "r"), "o",
                   "IN_s");
    state.add_edge(exit, sink, ir::Memlet::simple("s", "0:R-1"), "OUT_s",
                   "");
    return graph;
  }();
  ir::validate_or_throw(sdfg);
  AccessTrace trace = simulate(sdfg, {{"R", 3}, {"N", 7}});
  AccessCounts counts = count_accesses(trace);
  const int a = trace.container_id("A");
  const ConcreteLayout& layout = trace.layouts[a];
  for (std::int64_t r = 0; r < 3; ++r) {
    for (std::int64_t n = 0; n < 7; ++n) {
      const std::int64_t flat =
          layout.flat_index(std::vector<std::int64_t>{r, n});
      EXPECT_EQ(counts.reads[a][flat], n % 2 == 0 ? 1 : 0)
          << "r=" << r << " n=" << n;
    }
  }
  // 4 strided reads + 1 write per row.
  EXPECT_EQ(trace.events.size(), 3u * 5u);
}

TEST(IterationLineStats, PerfectUtilizationWhenDense) {
  // An elementwise pass touching one 8-byte element per execution with
  // 8-byte lines: one line per execution, fully used.
  ProgramBuilder p("dense");
  p.symbols({"N"});
  p.array("A", {"N"});
  p.array("B", {"N"});
  p.state("s");
  p.mapped_tasklet("id", {{"i", "0:N-1"}}, {{"v", "A", "i"}}, "o = v",
                   {{"o", "B", "i"}});
  ir::Sdfg sdfg = p.take();
  AccessTrace trace = simulate(sdfg, {{"N", 8}});
  IterationLineStats stats =
      iteration_line_stats(trace, trace.container_id("A"), 8);
  EXPECT_DOUBLE_EQ(stats.mean_lines_per_execution, 1.0);
  EXPECT_DOUBLE_EQ(stats.mean_line_utilization, 1.0);
  EXPECT_EQ(stats.executions, 8);
}

}  // namespace
}  // namespace dmv::sim
