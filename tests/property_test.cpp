// Parameterized property sweeps across the whole stack.

#include <gtest/gtest.h>

#include <random>
#include <set>

#include "dmv/analysis/analysis.hpp"
#include "dmv/exec/interpreter.hpp"
#include "dmv/sim/sim.hpp"
#include "dmv/viz/heatmap.hpp"
#include "dmv/workloads/workloads.hpp"

namespace dmv {
namespace {

// ---------------------------------------------------------------------
// Matmul invariants across sizes.

struct MatmulSize {
  std::int64_t m, k, n;
};

class MatmulSweep : public ::testing::TestWithParam<MatmulSize> {};

TEST_P(MatmulSweep, SimulatedAccessCountsMatchClosedForm) {
  const auto [m, k, n] = GetParam();
  ir::Sdfg sdfg = workloads::matmul();
  symbolic::SymbolMap env{{"M", m}, {"K", k}, {"N", n}};
  sim::AccessTrace trace = sim::simulate(sdfg, env);
  sim::AccessCounts counts = sim::count_accesses(trace);
  const int a = trace.container_id("A");
  const int b = trace.container_id("B");
  const int c = trace.container_id("C");
  // A[i,k] read once per j; B[k,j] once per i; C[i,j] written once per k.
  for (std::int64_t e = 0; e < m * k; ++e) EXPECT_EQ(counts.reads[a][e], n);
  for (std::int64_t e = 0; e < k * n; ++e) EXPECT_EQ(counts.reads[b][e], m);
  for (std::int64_t e = 0; e < m * n; ++e) {
    EXPECT_EQ(counts.writes[c][e], k);
  }
  // Trace length: 3 events per (i,j,k) iteration.
  EXPECT_EQ(static_cast<std::int64_t>(trace.events.size()), 3 * m * k * n);
}

TEST_P(MatmulSweep, StaticVolumeMatchesSimulatedEventCount) {
  // The §IV logical volume and the §V simulation must agree: total
  // simulated element-accesses == total static edge volume on tasklet
  // adjacent edges.
  const auto [m, k, n] = GetParam();
  ir::Sdfg sdfg = workloads::matmul();
  symbolic::SymbolMap env{{"M", m}, {"K", k}, {"N", n}};
  const ir::State& state = sdfg.states()[0];
  std::int64_t static_total = 0;
  for (const ir::Edge& edge : state.edges()) {
    if (edge.memlet.is_empty()) continue;
    const ir::Node& src = state.node(edge.src);
    const ir::Node& dst = state.node(edge.dst);
    if (src.kind == ir::NodeKind::Tasklet ||
        dst.kind == ir::NodeKind::Tasklet) {
      static_total +=
          analysis::total_edge_elements(state, edge).evaluate(env);
    }
  }
  sim::AccessTrace trace = sim::simulate(sdfg, env);
  EXPECT_EQ(static_total, static_cast<std::int64_t>(trace.events.size()));
}

TEST_P(MatmulSweep, InterpreterMatchesNaiveGemm) {
  const auto [m, k, n] = GetParam();
  ir::Sdfg sdfg = workloads::matmul();
  symbolic::SymbolMap env{{"M", m}, {"K", k}, {"N", n}};
  exec::Buffers buffers(sdfg, env);
  std::vector<double> a(m * k), b(k * n);
  std::mt19937 rng(99);
  std::uniform_real_distribution<double> value(-1, 1);
  for (auto& x : a) x = value(rng);
  for (auto& x : b) x = value(rng);
  buffers.set_logical("A", a);
  buffers.set_logical("B", b);
  exec::run(sdfg, env, buffers);
  std::vector<double> c = buffers.logical("C");
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        acc += a[i * k + kk] * b[kk * n + j];
      }
      EXPECT_NEAR(c[i * n + j], acc, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MatmulSweep,
                         ::testing::Values(MatmulSize{1, 1, 1},
                                           MatmulSize{2, 3, 4},
                                           MatmulSize{5, 5, 5},
                                           MatmulSize{9, 10, 15},
                                           MatmulSize{1, 8, 3},
                                           MatmulSize{7, 1, 7}));

// ---------------------------------------------------------------------
// Stack-distance invariants on random traces.

class DistanceSweep : public ::testing::TestWithParam<int> {};

sim::AccessTrace random_trace(int seed, std::int64_t elements,
                              std::size_t length) {
  sim::AccessTrace trace;
  layout::ConcreteLayout layout;
  layout.name = "A";
  layout.shape = {elements};
  layout.strides = {1};
  layout.element_size = 8;
  trace.containers = {"A"};
  trace.layouts = {layout};
  std::mt19937 rng(seed);
  std::uniform_int_distribution<std::int64_t> element(0, elements - 1);
  for (std::size_t i = 0; i < length; ++i) {
    sim::AccessEvent event;
    event.container = 0;
    event.flat = element(rng);
    event.timestep = static_cast<std::int64_t>(i);
    trace.events.push_back(event);
  }
  return trace;
}

TEST_P(DistanceSweep, FastEqualsNaive) {
  sim::AccessTrace trace = random_trace(GetParam(), 64, 500);
  for (int line : {8, 32, 64, 128}) {
    EXPECT_EQ(sim::stack_distances(trace, line).distances,
              sim::stack_distances_naive(trace, line).distances);
  }
}

TEST_P(DistanceSweep, DistanceBoundedByDistinctLines) {
  sim::AccessTrace trace = random_trace(GetParam() + 50, 64, 500);
  sim::StackDistanceResult result = sim::stack_distances(trace, 8);
  std::int64_t colds = 0;
  for (std::int64_t d : result.distances) {
    if (d == sim::kInfiniteDistance) {
      ++colds;
    } else {
      EXPECT_GE(d, 0);
      EXPECT_LT(d, 64);  // Never more than the number of lines.
    }
  }
  EXPECT_GT(colds, 0);
  EXPECT_LE(colds, 64);  // One cold per distinct line at most.
}

TEST_P(DistanceSweep, MissesMonotoneInThreshold) {
  sim::AccessTrace trace = random_trace(GetParam() + 100, 48, 400);
  sim::StackDistanceResult distances = sim::stack_distances(trace, 8);
  std::int64_t previous = std::numeric_limits<std::int64_t>::max();
  for (std::int64_t threshold = 1; threshold <= 64; threshold *= 2) {
    const std::int64_t misses =
        sim::classify_misses(trace, distances, threshold).total.misses();
    EXPECT_LE(misses, previous);
    previous = misses;
  }
}

TEST_P(DistanceSweep, FullyAssociativeSimulatorAgreesExactly) {
  sim::AccessTrace trace = random_trace(GetParam() + 200, 32, 600);
  sim::StackDistanceResult distances = sim::stack_distances(trace, 8);
  for (std::int64_t lines : {1, 2, 4, 8, 16}) {
    sim::MissReport predicted =
        sim::classify_misses(trace, distances, lines);
    sim::CacheConfig config{8, lines * 8, 0};
    sim::CacheSimResult truth = sim::simulate_cache(trace, config);
    EXPECT_EQ(predicted.total.misses(), truth.total.misses());
    EXPECT_EQ(predicted.total.hits, truth.total.hits);
    EXPECT_EQ(predicted.total.cold, truth.total.cold);
  }
}

TEST_P(DistanceSweep, CacheSimulatorInvariants) {
  // (Note: set-associative LRU can beat fully-associative LRU on
  // adversarial cyclic streams, so no ordering is asserted between them —
  // only the per-configuration accounting invariants.)
  sim::AccessTrace trace = random_trace(GetParam() + 300, 32, 600);
  std::set<std::int64_t> distinct;
  for (const sim::AccessEvent& event : trace.events) {
    distinct.insert(event.flat);  // Line == element for this geometry.
  }
  for (int ways : {0, 1, 2, 4}) {
    sim::CacheConfig config{8, 16 * 8, ways};
    sim::CacheSimResult result = sim::simulate_cache(trace, config);
    EXPECT_EQ(result.total.accesses(),
              static_cast<std::int64_t>(trace.events.size()));
    EXPECT_EQ(result.total.cold,
              static_cast<std::int64_t>(distinct.size()));
    EXPECT_GE(result.total.misses(), result.total.cold);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistanceSweep, ::testing::Range(1, 8));

// ---------------------------------------------------------------------
// Heatmap scale properties.

class ScaleSweep
    : public ::testing::TestWithParam<viz::ScalingPolicy> {};

TEST_P(ScaleSweep, NormalizeIsMonotoneAndBounded) {
  std::mt19937 rng(2024);
  std::uniform_real_distribution<double> value(0.0, 1e6);
  std::vector<double> values(200);
  for (auto& v : values) v = value(rng);
  viz::HeatmapScale scale = viz::HeatmapScale::fit(values, GetParam());
  std::sort(values.begin(), values.end());
  double previous = -1;
  for (double v : values) {
    const double t = scale.normalize(v);
    EXPECT_GE(t, 0.0);
    EXPECT_LE(t, 1.0);
    EXPECT_GE(t, previous - 1e-12) << "policy must be monotone";
    previous = t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, ScaleSweep,
    ::testing::Values(viz::ScalingPolicy::Linear,
                      viz::ScalingPolicy::Exponential,
                      viz::ScalingPolicy::MeanCentered,
                      viz::ScalingPolicy::MedianCentered,
                      viz::ScalingPolicy::Histogram));

// ---------------------------------------------------------------------
// hdiff invariants across sizes.

struct HdiffSize {
  std::int64_t i, j, k;
};

class HdiffSweep : public ::testing::TestWithParam<HdiffSize> {};

TEST_P(HdiffSweep, KernelsAgreeAcrossSizes) {
  const auto [I, J, K] = GetParam();
  workloads::kernels::HdiffData baseline =
      workloads::kernels::make_hdiff_data(I, J, K);
  workloads::kernels::HdiffData fused =
      workloads::kernels::make_hdiff_data(I, J, K);
  workloads::kernels::HdiffData tuned =
      workloads::kernels::make_hdiff_data(I, J, K);
  workloads::kernels::hdiff_baseline(baseline);
  workloads::kernels::hdiff_fused(fused);
  workloads::kernels::hdiff_tuned(tuned);
  for (std::size_t idx = 0; idx < baseline.out_field.size(); ++idx) {
    ASSERT_NEAR(baseline.out_field[idx], fused.out_field[idx], 1e-12);
    ASSERT_NEAR(baseline.out_field[idx], tuned.out_field[idx], 1e-12);
  }
}

TEST_P(HdiffSweep, SimulationEventCountIsExact) {
  const auto [I, J, K] = GetParam();
  ir::Sdfg sdfg = workloads::hdiff(workloads::HdiffVariant::Baseline);
  symbolic::SymbolMap env{{"I", I}, {"J", J}, {"K", K}};
  sim::AccessTrace trace = sim::simulate(sdfg, env);
  // 13 in_field reads + 1 coeff read + 1 out write per iteration.
  EXPECT_EQ(static_cast<std::int64_t>(trace.events.size()),
            15 * I * J * K);
}

INSTANTIATE_TEST_SUITE_P(Sizes, HdiffSweep,
                         ::testing::Values(HdiffSize{1, 1, 1},
                                           HdiffSize{2, 3, 2},
                                           HdiffSize{4, 4, 4},
                                           HdiffSize{8, 8, 5},
                                           HdiffSize{3, 9, 2}));

// ---------------------------------------------------------------------
// Scaling analysis consistency: the probed exponent of an explicit
// polynomial matches its symbolic degree.

class DegreeSweep : public ::testing::TestWithParam<int> {};

TEST_P(DegreeSweep, ProbedExponentMatchesDegree) {
  const int degree = GetParam();
  symbolic::Expr metric = 1;
  for (int d = 0; d < degree; ++d) {
    metric = metric * symbolic::Expr::symbol("N");
  }
  auto scaling = analysis::scaling_exponents(metric, {{"N", 16}});
  if (degree == 0) {
    EXPECT_TRUE(scaling.empty());  // No free symbols to probe.
  } else {
    ASSERT_EQ(scaling.size(), 1u);
    EXPECT_NEAR(scaling[0].exponent, degree, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Degrees, DegreeSweep, ::testing::Range(0, 5));

}  // namespace
}  // namespace dmv
