// Mergeable parallel metric engine tests.
//
// The engine (sim/metric_merge) partitions the fused metric pass —
// consumer segments, set-partitioned exact LRU, two-phase stack
// distances — and merges per-partition state in fixed order. Its
// contract is BIT-IDENTITY with the serial fused pass (which is itself
// bit-identical to the standalone passes, see pipeline_test), for every
// PipelineResult field, at any (thread, lane, partition) combination,
// across materialized, fused-generation, streaming, delta, and spilled
// drives. All suites are named MetricMerge so the CI determinism /
// sanitizer / TSan gates pick them up.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include "dmv/par/par.hpp"
#include "dmv/sim/pipeline.hpp"
#include "dmv/sim/sim.hpp"
#include "dmv/store/trace_store.hpp"
#include "dmv/workloads/workloads.hpp"

namespace dmv::sim {
namespace {

namespace fs = std::filesystem;

fs::path scratch_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("dmv_merge_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// Every consumer on, min_events 0 so the engine runs on any trace.
PipelineConfig merge_config() {
  PipelineConfig config;
  config.line_size = 64;
  config.counts = true;
  config.miss_threshold_lines = 64;
  config.keep_distances = true;
  config.element_stats = true;
  config.cache = CacheConfig{};
  config.movement = true;
  config.parallel_metrics = true;
  config.parallel_metrics_min_events = 0;
  return config;
}

/// Same consumers, engine off — the serial identity reference.
PipelineConfig serial_config() {
  PipelineConfig config = merge_config();
  config.parallel_metrics = false;
  return config;
}

void expect_stats_equal(const MissStats& a, const MissStats& b,
                        const char* what) {
  EXPECT_EQ(a.cold, b.cold) << what;
  EXPECT_EQ(a.capacity, b.capacity) << what;
  EXPECT_EQ(a.hits, b.hits) << what;
}

/// EVERY PipelineResult field, exact.
void expect_results_equal(const PipelineResult& actual,
                          const PipelineResult& expected,
                          const std::string& context) {
  SCOPED_TRACE(context);
  EXPECT_EQ(actual.events, expected.events);
  EXPECT_EQ(actual.executions, expected.executions);
  EXPECT_EQ(actual.containers, expected.containers);
  EXPECT_EQ(actual.counts.reads, expected.counts.reads);
  EXPECT_EQ(actual.counts.writes, expected.counts.writes);
  EXPECT_EQ(actual.distances.line_size, expected.distances.line_size);
  EXPECT_EQ(actual.distances.distances, expected.distances.distances);
  EXPECT_EQ(actual.misses.threshold_lines, expected.misses.threshold_lines);
  EXPECT_EQ(actual.misses.element_misses, expected.misses.element_misses);
  ASSERT_EQ(actual.misses.per_container.size(),
            expected.misses.per_container.size());
  for (std::size_t c = 0; c < expected.misses.per_container.size(); ++c) {
    expect_stats_equal(actual.misses.per_container[c],
                       expected.misses.per_container[c], "misses");
  }
  expect_stats_equal(actual.misses.total, expected.misses.total, "misses");
  ASSERT_EQ(actual.element_stats.size(), expected.element_stats.size());
  for (std::size_t c = 0; c < expected.element_stats.size(); ++c) {
    EXPECT_EQ(actual.element_stats[c].min, expected.element_stats[c].min);
    EXPECT_EQ(actual.element_stats[c].median,
              expected.element_stats[c].median);
    EXPECT_EQ(actual.element_stats[c].max, expected.element_stats[c].max);
    EXPECT_EQ(actual.element_stats[c].cold_count,
              expected.element_stats[c].cold_count);
  }
  EXPECT_EQ(actual.cache.config.line_size, expected.cache.config.line_size);
  EXPECT_EQ(actual.cache.config.total_size, expected.cache.config.total_size);
  EXPECT_EQ(actual.cache.config.ways, expected.cache.config.ways);
  ASSERT_EQ(actual.cache.per_container.size(),
            expected.cache.per_container.size());
  for (std::size_t c = 0; c < expected.cache.per_container.size(); ++c) {
    expect_stats_equal(actual.cache.per_container[c],
                       expected.cache.per_container[c], "cache");
  }
  expect_stats_equal(actual.cache.total, expected.cache.total, "cache");
  EXPECT_EQ(actual.movement.line_size, expected.movement.line_size);
  EXPECT_EQ(actual.movement.bytes_per_container,
            expected.movement.bytes_per_container);
  EXPECT_EQ(actual.movement.total_bytes, expected.movement.total_bytes);
}

/// Serial reference at 1 thread vs the engine at {2, 4, 8} threads and
/// lane widths {1, 8}, across the materialized, generating, streaming,
/// and delta drives.
void check_bit_identity(const ir::Sdfg& sdfg,
                        const std::vector<symbolic::SymbolMap>& bindings,
                        const std::string& name) {
  for (std::size_t b = 0; b < bindings.size(); ++b) {
    const symbolic::SymbolMap& binding = bindings[b];
    for (const int lanes : {1, 8}) {
      SimulationOptions options;
      options.lane_width = lanes;
      PipelineResult expected;
      AccessTrace trace;
      {
        par::ThreadScope serial(1);
        trace = simulate(sdfg, binding, options);
        MetricPipeline reference(serial_config());
        expected = reference.run(trace);
      }
      for (const int threads : {2, 4, 8}) {
        par::ThreadScope scope(threads);
        const std::string context = name + " binding " + std::to_string(b) +
                                    " lanes " + std::to_string(lanes) +
                                    " threads " + std::to_string(threads);
        MetricPipeline merged(merge_config());
        expect_results_equal(merged.run(trace), expected,
                             context + " run(trace)");
        expect_results_equal(merged.run(sdfg, binding, options), expected,
                             context + " run(sdfg)");
        expect_results_equal(merged.run_streaming(sdfg, binding, options),
                             expected, context + " streaming");
        expect_results_equal(
            merged.run_delta(sdfg, /*program_version=*/7, binding, options),
            expected, context + " delta");
      }
    }
  }
}

TEST(MetricMerge, SerialVsWorkersBitIdentityHdiff) {
  const ir::Sdfg sdfg = workloads::hdiff(workloads::HdiffVariant::Baseline);
  check_bit_identity(
      sdfg,
      {symbolic::SymbolMap{{"I", 8}, {"J", 8}, {"K", 4}},
       symbolic::SymbolMap{{"I", 12}, {"J", 10}, {"K", 6}},
       symbolic::SymbolMap{{"I", 16}, {"J", 16}, {"K", 3}}},
      "hdiff");
}

TEST(MetricMerge, SerialVsWorkersBitIdentityBert) {
  const ir::Sdfg sdfg = workloads::bert_encoder(workloads::BertStage::Fused1);
  symbolic::SymbolMap small = workloads::bert_small();
  symbolic::SymbolMap wider = small;
  wider["SM"] = small.at("SM") + 6;
  symbolic::SymbolMap deeper = small;
  deeper["H"] = small.at("H") + 2;
  check_bit_identity(sdfg, {small, wider, deeper}, "bert");
}

TEST(MetricMerge, SerialVsWorkersBitIdentityMatmul) {
  const ir::Sdfg sdfg = workloads::matmul();
  symbolic::SymbolMap fig5 = workloads::matmul_fig5();
  symbolic::SymbolMap narrow = fig5;
  narrow["N"] = 6;
  symbolic::SymbolMap tall = fig5;
  tall["M"] = fig5.at("M") + 9;
  check_bit_identity(sdfg, {fig5, narrow, tall}, "matmul");
}

// Set-partition boundary shapes: one set (fully associative), direct
// mapped, more sets than touched lines, and a cache line size different
// from the distance line size.
TEST(MetricMerge, SetPartitionBoundaries) {
  const ir::Sdfg sdfg = workloads::hdiff(workloads::HdiffVariant::Baseline);
  const symbolic::SymbolMap binding{{"I", 12}, {"J", 12}, {"K", 4}};
  struct Shape {
    const char* name;
    CacheConfig cache;
    int line_size;
  };
  const Shape shapes[] = {
      {"fully-associative", CacheConfig{64, 4096, 0}, 64},
      {"direct-mapped", CacheConfig{64, 4096, 1}, 64},
      {"sets-exceed-lines", CacheConfig{64, 1 << 16, 1}, 64},
      {"associativity-1-small", CacheConfig{64, 128, 1}, 64},
      {"cache-line-differs", CacheConfig{32, 8192, 4}, 64},
  };
  for (const Shape& shape : shapes) {
    PipelineConfig config = merge_config();
    config.line_size = shape.line_size;
    config.cache = shape.cache;
    PipelineResult expected;
    AccessTrace trace;
    {
      par::ThreadScope serial(1);
      trace = simulate(sdfg, binding);
      PipelineConfig reference = config;
      reference.parallel_metrics = false;
      MetricPipeline pipeline(reference);
      expected = pipeline.run(trace);
    }
    for (const int threads : {2, 8}) {
      par::ThreadScope scope(threads);
      MetricPipeline merged(config);
      expect_results_equal(merged.run(trace), expected,
                           std::string(shape.name) + " threads " +
                               std::to_string(threads));
    }
  }
}

// Satellite regression: a spilled checkpoint must be faulted back in
// EXACTLY ONCE on the caller before column spans fan out to parallel
// metric workers — both for run(trace) on an externally spilled trace
// and for the delta splice against a spilled checkpoint.
TEST(MetricMerge, SpilledTraceParallelMetrics) {
  const fs::path dir = scratch_dir("spilled_parallel");
  const ir::Sdfg sdfg = workloads::hdiff(workloads::HdiffVariant::Baseline);
  symbolic::SymbolMap binding = workloads::hdiff_local();

  PipelineResult expected;
  {
    par::ThreadScope serial(1);
    const AccessTrace trace = simulate(sdfg, binding);
    MetricPipeline reference(serial_config());
    expected = reference.run(trace);
  }

  par::ThreadScope scope(8);
  // Externally spilled trace straight into the parallel engine.
  AccessTrace spilled = simulate(sdfg, binding);
  store::spill_event_list(spilled.events, (dir / "ext").string());
  ASSERT_TRUE(spilled.events.spilled());
  MetricPipeline merged(merge_config());
  expect_results_equal(merged.run(spilled), expected, "externally spilled");

  // Delta engine over a pipeline that spills its checkpoint after every
  // run: each warm step faults the checkpoint in before the parallel
  // patch phase.
  MetricPipeline plain(serial_config());
  MetricPipeline spilling(merge_config());
  spilling.set_spill(1, (dir / "ckpt").string());
  for (const std::int64_t k : {5, 6, 7, 6}) {
    binding["K"] = k;
    PipelineResult reference;
    {
      par::ThreadScope serial(1);
      reference = plain.run_delta(sdfg, 3, binding);
    }
    expect_results_equal(spilling.run_delta(sdfg, 3, binding), reference,
                         "spilled delta K=" + std::to_string(k));
  }
  fs::remove_all(dir);
}

// Hand-built traces: random layouts and event streams, including the
// degenerate sizes the segment planner must not mishandle.
TEST(MetricMerge, HandBuiltTraceFuzz) {
  std::mt19937 rng(20260809u);
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                              std::size_t{7}, std::size_t{63},
                              std::size_t{1000}, std::size_t{5000}}) {
    AccessTrace trace;
    const int containers = 1 + static_cast<int>(rng() % 3);
    std::int64_t base = 0;
    for (int c = 0; c < containers; ++c) {
      layout::ConcreteLayout layout;
      layout.name = "c" + std::to_string(c);
      const std::int64_t elements = 16 + static_cast<std::int64_t>(rng() % 240);
      layout.shape = {elements};
      layout.strides = {1};
      layout.element_size = (rng() % 2) ? 8 : 4;
      layout.base_address = base;
      base += layout.allocated_bytes() + 64;
      trace.containers.push_back(layout.name);
      trace.layouts.push_back(layout);
    }
    for (std::size_t i = 0; i < n; ++i) {
      AccessEvent event;
      event.container = static_cast<int>(rng() % containers);
      event.flat = static_cast<std::int64_t>(
          rng() % trace.layouts[event.container].shape[0]);
      event.is_write = (rng() % 4) == 0;
      event.timestep = static_cast<std::int64_t>(i);
      event.execution = static_cast<std::int64_t>(i);
      trace.events.push_back(event);
    }
    trace.executions = static_cast<std::int64_t>(n);

    PipelineResult expected;
    {
      par::ThreadScope serial(1);
      MetricPipeline reference(serial_config());
      expected = reference.run(trace);
    }
    for (const int threads : {4, 8}) {
      par::ThreadScope scope(threads);
      MetricPipeline merged(merge_config());
      expect_results_equal(merged.run(trace), expected,
                           "n=" + std::to_string(n) + " threads " +
                               std::to_string(threads));
    }
  }
}

// Phase timing observability: partitions report the engine's use, and
// the breakdown is populated for every drive mode.
TEST(MetricMerge, PhaseTimingsReportPartitions) {
  const ir::Sdfg sdfg = workloads::hdiff(workloads::HdiffVariant::Baseline);
  const symbolic::SymbolMap binding{{"I", 16}, {"J", 16}, {"K", 4}};

  {
    par::ThreadScope serial(1);
    MetricPipeline pipeline(serial_config());
    pipeline.run(sdfg, binding);
    EXPECT_EQ(pipeline.last_timings().partitions, 1);
    EXPECT_GE(pipeline.last_timings().metrics_ms, 0.0);
  }
  {
    par::ThreadScope scope(8);
    MetricPipeline pipeline(merge_config());
    const AccessTrace trace = simulate(sdfg, binding);
    pipeline.run(trace);
    EXPECT_GT(pipeline.last_timings().partitions, 1);
    pipeline.run_streaming(sdfg, binding);
    // Streaming interleaves generation and consumption: the whole cost
    // collapses into simulate_ms and the pass stays serial.
    EXPECT_EQ(pipeline.last_timings().partitions, 1);
    EXPECT_EQ(pipeline.last_timings().metrics_ms, 0.0);
  }
}

}  // namespace
}  // namespace dmv::sim
